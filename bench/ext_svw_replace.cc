/**
 * @file
 * Section 6 future-work extension: SVW as a *replacement* for
 * re-execution. No verification cache accesses at all — a positive SSBF
 * test flushes the pipeline at the load and trains the predictors
 * (store-sets / steering); a negative test commits the load untouched.
 *
 * We compare, under NLQ and SSQ: SVW-filtered re-execution vs pure SVW
 * replacement. Replacement trades re-execution bandwidth for flush
 * cost, so it wins when the filter is precise and loses when aliasing
 * or unfilterable windows inflate the positive rate.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());
    const SweepSpec spec = extSvwReplaceSpec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("SVW as re-execution replacement (section 6): "
                    "% speedup vs the same optimization with filtered "
                    "re-execution",
                    {"NLQ-repl", "NLQ-flushes", "SSQ-repl",
                     "SSQ-flushes"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        std::vector<double> row;
        for (const char *tag : {"nlq", "ssq"}) {
            const RunResult &base =
                res.result(w, std::string(tag) + "-rex");
            const RunResult &r =
                res.result(w, std::string(tag) + "-repl");
            row.push_back(speedupPercent(base, r));
            row.push_back(double(r.rexFlushes));
        }
        tbl.addRow(w, row);
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return sweepFailed ? 1 : 0;
}
