/**
 * @file
 * Section 6 future-work extension: SVW as a *replacement* for
 * re-execution. No verification cache accesses at all — a positive SSBF
 * test flushes the pipeline at the load and trains the predictors
 * (store-sets / steering); a negative test commits the load untouched.
 *
 * We compare, under NLQ and SSQ: SVW-filtered re-execution vs pure SVW
 * replacement. Replacement trades re-execution bandwidth for flush
 * cost, so it wins when the filter is precise and loses when aliasing
 * or unfilterable windows inflate the positive rate.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    FigureTable tbl("SVW as re-execution replacement (section 6): "
                    "% speedup vs the same optimization with filtered "
                    "re-execution",
                    {"NLQ-repl", "NLQ-flushes", "SSQ-repl",
                     "SSQ-flushes"});

    for (const auto &w : suite) {
        std::vector<double> row;
        for (OptMode opt : {OptMode::Nlq, OptMode::Ssq}) {
            ExperimentConfig rex;
            rex.machine = Machine::EightWide;
            rex.opt = opt;
            rex.svw = SvwMode::Upd;
            auto repl = rex;
            repl.svwReplace = true;

            RunRequest rq;
            rq.workload = w;
            rq.targetInsts = args.insts;
            rq.config = rex;
            RunResult base = runOne(rq);
            rq.config = repl;
            RunResult r = runOne(rq);
            row.push_back(speedupPercent(base, r));
            row.push_back(double(r.rexFlushes));
        }
        tbl.addRow(w, row);
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return 0;
}
