/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: command-line
 * sizing and sweep-engine plumbing. The binaries only *declare* their
 * sweeps (harness/sweep.hh, builders in harness/figures.hh) and format
 * tables; execution — including the --jobs worker pool and --shard
 * splits — lives in the sweep engine (harness/session.hh), which every
 * binary drives through runBenchSweep below. The sweepd service daemon
 * is a sibling client of the same session API.
 *
 * Every binary accepts:
 *   --insts=N    dynamic-instruction target per run (default 100000)
 *   --quick      reduce to 20000 instructions per run
 *   --bench=X    restrict to one workload
 *   --families=paper|synth|all
 *                which workload rows to sweep: the figure's paper
 *                suite (default; output byte-identical to before the
 *                flag existed), the synthetic generator suite
 *                ("synth:<kind>:1" per kind), or both
 *   --workload=X restrict to one workload, accepting the full registry
 *                grammar — curated names, "synth:<kind>:<seed>[:k=v]"
 *                generator recipes, and "trace:<file>" replays — and
 *                validating it at parse time (unknown kind, malformed
 *                seed/params, or a missing/corrupt trace file exit 2
 *                instead of failing mid-sweep)
 *   --record-trace=F  record the selected workload's committed stream
 *                (via the golden interpreter, at the --insts sizing) to
 *                trace file F and exit; requires --workload/--bench
 *   --jobs=N     run cells on N worker processes (default 1 =
 *                in-process; output is byte-identical for any N)
 *   --threads=N  run cells on N worker threads in this process,
 *                sharing one program cache and the in-memory result
 *                cache (default 0 = off; output is byte-identical for
 *                any N). Mutually exclusive with --jobs>1: pick
 *                processes *or* threads for one sweep (exit 2 if both)
 *   --batch=K    co-simulate up to K compatible cells of one workload
 *                in lockstep (harness/batch.hh), sharing the program,
 *                base memory image and golden-model pass. Default 0 =
 *                auto; 1 disables. Output is byte-identical for any K.
 *   --shard=i/n  run only shard i of n (partitioned by figure row;
 *                the union over all shards is the full sweep)
 *   --cache-dir=D  persistent result cache: cells whose key
 *                (workload, insts, full machine config, code-version
 *                stamp) is already stored are served from D without
 *                simulating; new results are stored atomically.
 *                Output stays byte-identical to an uncached run.
 *   --no-cache   ignore --cache-dir (debugging escape hatch; useful
 *                when a sweep_driver-style wrapper always passes
 *                --cache-dir)
 *   --cache-max-mb=N  after the sweep, LRU-trim the cache directory
 *                to at most N MB (oldest access stamp first; 0 =
 *                unbounded, the default)
 *   --mem-cache-max-mb=N  cap the process-wide in-memory result cache
 *                at N MB, evicting least-recently-used entries
 *                (default 512; 0 = unbounded). Matters for long-lived
 *                processes (sweepd); a batch binary rarely hits it
 *   --emit-cells=F  after the sweep, write one lossless RunResult JSON
 *                line (serialize.hh) per successful cell, in spec
 *                order, to file F ("-" = stdout) — the same wire
 *                format sweepd streams, so CI can diff daemon against
 *                CLI byte for byte
 *   --progress   stream one "progress: ..." line per completed cell
 *                to stderr (sweep_driver passes this to its shards and
 *                forwards the lines live)
 *   --profile=F  attach the per-stage self-profiler (base/profile.hh)
 *                to every cell and write a flamegraph.pl-compatible
 *                folded-stack file to F at exit. Simulated cycles and
 *                the printed tables are byte-identical with or without
 *                it; host wall times become meaningless, so profiled
 *                sweeps bypass the result cache. An empty or
 *                uncreatable path exits 2.
 *
 * Unrecognized arguments (flags or positionals) are rejected with
 * exit 2 so typos fail fast.
 */

#ifndef SVW_BENCH_BENCH_COMMON_HH
#define SVW_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/profile.hh"
#include "harness/config.hh"
#include "harness/executor.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/serialize.hh"
#include "harness/session.hh"
#include "harness/sweep.hh"
#include "prog/trace.hh"
#include "prog/workloads/workloads.hh"

namespace svw::bench {

struct BenchArgs
{
    std::uint64_t insts = 100'000;
    std::string only;
    harness::Families families = harness::Families::Paper;
    unsigned jobs = 1;
    unsigned threads = 0;   ///< thread-pool width; 0 = off
    unsigned batch = 0;     ///< co-simulation lanes; 0 = auto, 1 = off
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    std::string cacheDir;   ///< empty = result caching off
    bool noCache = false;   ///< --no-cache: override --cache-dir
    std::uint64_t cacheMaxMb = 0;  ///< LRU cache bound; 0 = unbounded
    /** In-memory result cache cap in MB; 0 = unbounded. */
    std::uint64_t memCacheMaxMb = 512;
    std::string emitCells;  ///< --emit-cells target path, if any
    bool progress = false;  ///< stream per-cell completion to stderr
    std::string recordTrace;  ///< --record-trace target path, if any
    bool profile = false;   ///< --profile=: stage profiler armed
};

/** Parse a decimal flag value; a malformed number is a usage error
 * (exit 2), like any other rejected argument. */
inline std::uint64_t
parseFlagNumber(const std::string &text, const char *flag)
{
    // Digits only: stoull would silently sign-wrap "-1" to 2^64-1.
    const bool allDigits = !text.empty() &&
        text.find_first_not_of("0123456789") == std::string::npos;
    if (allDigits) {
        try {
            return std::stoull(text);
        } catch (const std::exception &) {  // out of range
        }
    }
    std::fprintf(stderr, "error: bad number '%s' for %s\n", text.c_str(),
                 flag);
    std::exit(2);
}

/** parseFlagNumber for flags that must fit an unsigned (no silent
 * truncation wrap). */
inline unsigned
parseFlagUnsigned(const std::string &text, const char *flag)
{
    const std::uint64_t v = parseFlagNumber(text, flag);
    if (v > 0xffffffffull) {
        std::fprintf(stderr, "error: %s value '%s' out of range\n", flag,
                     text.c_str());
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--insts=", 0) == 0)
            args.insts = parseFlagNumber(a.substr(8), "--insts");
        else if (a == "--quick")
            args.insts = 20'000;
        else if (a.rfind("--bench=", 0) == 0)
            args.only = a.substr(8);
        else if (a.rfind("--workload=", 0) == 0) {
            args.only = a.substr(11);
            std::string err;
            if (!workloads::validate(args.only, err)) {
                std::fprintf(stderr, "error: --workload: %s\n",
                             err.c_str());
                std::exit(2);
            }
        } else if (a.rfind("--record-trace=", 0) == 0) {
            args.recordTrace = a.substr(15);
            if (args.recordTrace.empty()) {
                std::fprintf(stderr,
                             "error: --record-trace needs a file path\n");
                std::exit(2);
            }
        } else if (a.rfind("--families=", 0) == 0) {
            const std::string fam = a.substr(11);
            if (!harness::parseFamilies(fam, args.families)) {
                std::fprintf(stderr,
                             "error: bad value '%s' for --families"
                             " (want paper|synth|all)\n",
                             fam.c_str());
                std::exit(2);
            }
        } else if (a.rfind("--jobs=", 0) == 0)
            args.jobs = parseFlagUnsigned(a.substr(7), "--jobs");
        else if (a.rfind("--threads=", 0) == 0)
            args.threads = parseFlagUnsigned(a.substr(10), "--threads");
        else if (a.rfind("--batch=", 0) == 0)
            args.batch = parseFlagUnsigned(a.substr(8), "--batch");
        else if (a.rfind("--shard=", 0) == 0) {
            const std::string spec = a.substr(8);
            const std::size_t slash = spec.find('/');
            if (slash != std::string::npos) {
                args.shardIndex = parseFlagUnsigned(
                    spec.substr(0, slash), "--shard");
                args.shardCount = parseFlagUnsigned(
                    spec.substr(slash + 1), "--shard");
            } else {
                args.shardCount = 0;  // force the validity error below
            }
        } else if (a.rfind("--cache-dir=", 0) == 0) {
            args.cacheDir = a.substr(12);
        } else if (a == "--no-cache") {
            args.noCache = true;
        } else if (a.rfind("--cache-max-mb=", 0) == 0) {
            args.cacheMaxMb =
                parseFlagNumber(a.substr(15), "--cache-max-mb");
        } else if (a.rfind("--mem-cache-max-mb=", 0) == 0) {
            args.memCacheMaxMb =
                parseFlagNumber(a.substr(19), "--mem-cache-max-mb");
        } else if (a.rfind("--emit-cells=", 0) == 0) {
            args.emitCells = a.substr(13);
            if (args.emitCells.empty()) {
                std::fprintf(stderr,
                             "error: --emit-cells needs a file path\n");
                std::exit(2);
            }
        } else if (a == "--progress") {
            args.progress = true;
        } else if (a.rfind("--profile=", 0) == 0) {
            const std::string path = a.substr(10);
            if (path.empty()) {
                std::fprintf(stderr,
                             "error: --profile needs a file path\n");
                std::exit(2);
            }
            // Truncate-create now: an unwritable path must fail before
            // a long sweep runs, not after it.
            if (!prof::enableFoldedOutput(path)) {
                std::fprintf(stderr,
                             "error: --profile: cannot create '%s'\n",
                             path.c_str());
                std::exit(2);
            }
            args.profile = true;
        } else if (a.rfind("--benchmark", 0) == 0) {
            continue;  // tolerate google-benchmark flags
        } else {
            std::fprintf(stderr,
                         "error: unknown arg %s\n"
                         "usage: %s [--insts=N] [--quick] [--bench=X]"
                         " [--workload=X] [--families=paper|synth|all]"
                         " [--record-trace=F]"
                         " [--jobs=N] [--threads=N] [--batch=K]"
                         " [--shard=i/n]"
                         " [--cache-dir=D] [--no-cache]"
                         " [--cache-max-mb=N] [--mem-cache-max-mb=N]"
                         " [--emit-cells=F] [--progress]"
                         " [--profile=F]\n",
                         a.c_str(), argv[0]);
            std::exit(2);
        }
    }
    if (args.jobs < 1 || args.shardCount < 1 ||
        args.shardIndex >= args.shardCount) {
        std::fprintf(stderr,
                     "error: need --jobs>=1 and --shard=i/n with i<n\n");
        std::exit(2);
    }
    if (args.jobs > 1 && args.threads > 0) {
        // One sweep parallelizes with processes *or* threads, never a
        // mix; conflicting requests are a usage error, not a silent
        // precedence pick. (--jobs=1 is the default, so --threads=N
        // alone is fine.)
        std::fprintf(stderr, "error: --jobs=%u and --threads=%u are"
                             " mutually exclusive; pick one\n",
                     args.jobs, args.threads);
        std::exit(2);
    }
    if (!args.recordTrace.empty()) {
        // Record mode: capture the committed stream once and exit
        // before the binary's sweep ever builds. Handled here so every
        // bench binary gets record support without per-binary code.
        if (args.only.empty()) {
            std::fprintf(stderr, "error: --record-trace requires a single"
                                 " workload (--workload=X)\n");
            std::exit(2);
        }
        Program prog = workloads::make(args.only, args.insts);
        // Generous halt budget: workloads sized to --insts halt well
        // within a few multiples; a runaway recording is fatal.
        trace::TraceData t =
            trace::record(prog, args.only, args.insts * 16 + 1'000'000);
        trace::writeFile(args.recordTrace, t);
        std::fprintf(stderr,
                     "recorded %llu committed insts of %s to %s\n",
                     static_cast<unsigned long long>(t.insts),
                     args.only.c_str(), args.recordTrace.c_str());
        std::exit(0);
    }
    return args;
}

inline harness::SweepOptions
sweepOptions(const BenchArgs &args)
{
    harness::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.threads = args.threads;
    opts.batch = args.batch;
    opts.shardIndex = args.shardIndex;
    opts.shardCount = args.shardCount;
    opts.profile = args.profile;
    if (!args.noCache) {
        opts.cacheDir = args.cacheDir;
        opts.cacheMaxMb = args.cacheMaxMb;
    }
    return opts;
}

/**
 * The --progress event consumer: one stderr line per completed or
 * cache-served cell, streamed as session events arrive. sweep_driver
 * tees shard output live and forwards lines with this prefix, so a
 * multi-shard sweep shows per-cell progress instead of going dark
 * until merge time.
 */
inline harness::SessionCallback
progressCallback()
{
    return [](const harness::CellEvent &ev) {
        if (ev.kind == harness::CellEventKind::Started)
            return;
        const harness::CellOutcome &o = *ev.outcome;
        const char *how = !o.ok ? "FAIL"
                          : o.cached ? "cached"
                                     : "ok";
        // A failed cell has an empty result; the index still
        // identifies it (reportFailures prints the name).
        std::fprintf(stderr,
                     "progress: cell %zu %s/%s %s (%.3fs)\n",
                     ev.index, o.result.workload.c_str(),
                     o.result.config.c_str(), how, o.seconds);
        std::fflush(stderr);
    };
}

/** Write one lossless RunResult JSON line per successful cell, in
 * spec order ("-" = stdout) — the --emit-cells post-pass. */
inline void
emitCellLines(const std::string &path, const harness::SweepResults &res)
{
    std::FILE *f =
        path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr,
                     "error: --emit-cells: cannot create '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    for (std::size_t i = 0; i < res.spec().size(); ++i) {
        const harness::CellOutcome &o = res.outcome(i);
        if (o.ok)
            std::fprintf(f, "%s\n",
                         harness::runResultToJson(o.result).c_str());
    }
    if (f != stdout)
        std::fclose(f);
    else
        std::fflush(f);
}

/**
 * Run a bench sweep through the session API: cap the process-wide
 * in-memory result cache, open a SweepSession, stream --progress
 * lines from its event callback, and honor --emit-cells. This is the
 * whole execution path of every figure binary; sweepd drives the same
 * session API incrementally.
 */
inline harness::SweepResults
runBenchSweep(const harness::SweepSpec &spec, const BenchArgs &args)
{
    harness::processMemoryResultCache().setMaxBytes(
        args.memCacheMaxMb * 1024ull * 1024ull);
    harness::SweepSession session(spec, sweepOptions(args));
    harness::SessionCallback cb;
    if (args.progress)
        cb = progressCallback();
    harness::SweepResults res = session.run(cb);
    if (!args.emitCells.empty())
        emitCellLines(args.emitCells, res);
    return res;
}

inline std::vector<std::string>
selectSuite(const BenchArgs &args, const std::vector<std::string> &base)
{
    if (!args.only.empty())
        return {args.only};
    return harness::familySuite(args.families, base);
}

/**
 * Print every failed cell to stderr (worker crashes / golden
 * mismatches under --jobs; sequential runs raise instead). Figure rows
 * whose group lost a cell are skipped by the caller via groupOk().
 * @return the number of failures.
 */
inline std::size_t
reportFailures(const harness::SweepResults &res)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < res.spec().size(); ++i) {
        const harness::CellOutcome &o = res.outcome(i);
        if (o.ran && !o.ok) {
            ++n;
            std::fprintf(stderr, "error: sweep cell %s failed: %s\n",
                         res.spec().cell(i).name().c_str(),
                         o.error.c_str());
        }
    }
    return n;
}

} // namespace svw::bench

#endif // SVW_BENCH_BENCH_COMMON_HH
