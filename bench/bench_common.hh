/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: command-line
 * sizing, suite iteration, and figure assembly.
 *
 * Every binary accepts:
 *   --insts=N   dynamic-instruction target per run (default 100000)
 *   --quick     reduce to 20000 instructions per run
 *   --bench=X   restrict to one workload
 *
 * Unrecognized arguments (flags or positionals) are rejected with
 * exit 2 so typos fail fast.
 */

#ifndef SVW_BENCH_BENCH_COMMON_HH
#define SVW_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/config.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "prog/workloads/workloads.hh"

namespace svw::bench {

struct BenchArgs
{
    std::uint64_t insts = 100'000;
    std::string only;
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--insts=", 0) == 0)
            args.insts = std::stoull(a.substr(8));
        else if (a == "--quick")
            args.insts = 20'000;
        else if (a.rfind("--bench=", 0) == 0)
            args.only = a.substr(8);
        else if (a.rfind("--benchmark", 0) == 0)
            continue;  // tolerate google-benchmark flags
        else {
            std::fprintf(stderr,
                         "error: unknown arg %s\n"
                         "usage: %s [--insts=N] [--quick] [--bench=X]\n",
                         a.c_str(), argv[0]);
            std::exit(2);
        }
    }
    return args;
}

/**
 * Monotonic host wall-clock seconds (arbitrary origin). Timing benches
 * report both a best-of-reps figure (noise-resistant throughput) and
 * the total wall time burned per cell — the difference between the two
 * is the signature of a loaded container, diagnosable straight from
 * the committed JSON.
 */
inline double
hostSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

inline std::vector<std::string>
selectSuite(const BenchArgs &args, const std::vector<std::string> &base)
{
    if (args.only.empty())
        return base;
    return {args.only};
}

/**
 * Run one workload under a list of configurations (the first one is the
 * figure's baseline) and return all results, baseline first.
 */
inline std::vector<harness::RunResult>
runConfigs(const std::string &workload, std::uint64_t insts,
           const std::vector<harness::ExperimentConfig> &configs)
{
    std::vector<harness::RunResult> out;
    for (const auto &cfg : configs) {
        harness::RunRequest req;
        req.workload = workload;
        req.targetInsts = insts;
        req.config = cfg;
        out.push_back(harness::runOne(req));
    }
    return out;
}

} // namespace svw::bench

#endif // SVW_BENCH_BENCH_COMMON_HH
