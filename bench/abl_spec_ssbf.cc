/**
 * @file
 * Section 3.6 claim: speculative SSBF updates (stores write the SSBF at
 * their rex SVW stage, before committing; flushes do not undo them) add
 * only 1-2% relative re-executions, while the atomic alternative
 * (update at cache commit, stalling marked loads behind every buffered
 * store) lengthens the serialization. We measure both.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::fig8Names());
    const SweepSpec spec = ablSpecSsbfSpec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("Speculative vs atomic SSBF update (SSQ+SVW+UPD)",
                    {"spec-rex%", "atomic-rex%", "spec-IPC", "atomic-IPC",
                     "spec-speedup%"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &rs = res.result(w, "speculative");
        const RunResult &ra = res.result(w, "atomic");
        tbl.addRow(w, {rs.rexRate, ra.rexRate, rs.ipc, ra.ipc,
                       speedupPercent(ra, rs)});
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return sweepFailed ? 1 : 0;
}
