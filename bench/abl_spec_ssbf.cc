/**
 * @file
 * Section 3.6 claim: speculative SSBF updates (stores write the SSBF at
 * their rex SVW stage, before committing; flushes do not undo them) add
 * only 1-2% relative re-executions, while the atomic alternative
 * (update at cache commit, stalling marked loads behind every buffered
 * store) lengthens the serialization. We measure both.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::fig8Names());

    ExperimentConfig spec8;
    spec8.machine = Machine::EightWide;
    spec8.opt = OptMode::Ssq;
    spec8.svw = SvwMode::Upd;
    spec8.speculativeSsbfUpdate = true;
    auto atomic = spec8;
    atomic.speculativeSsbfUpdate = false;

    SweepSpec spec("abl_spec_ssbf");
    for (const auto &w : suite) {
        SweepCell c;
        c.group = w;
        c.workload = w;
        c.targetInsts = args.insts;
        c.label = "speculative";
        c.config = spec8;
        spec.add(c);
        c.label = "atomic";
        c.config = atomic;
        spec.add(c);
    }
    const SweepResults res = runSweep(spec, sweepOptions(args));
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("Speculative vs atomic SSBF update (SSQ+SVW+UPD)",
                    {"spec-rex%", "atomic-rex%", "spec-IPC", "atomic-IPC",
                     "spec-speedup%"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &rs = res.result(w, "speculative");
        const RunResult &ra = res.result(w, "atomic");
        tbl.addRow(w, {rs.rexRate, ra.rexRate, rs.ipc, ra.ipc,
                       speedupPercent(ra, rs)});
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return sweepFailed ? 1 : 0;
}
