/**
 * @file
 * Section 2.2 ablation: "If the LQ contains values in addition to
 * addresses, some flushes may be avoided as the search procedure could
 * ignore ordering violations from silent stores." We compare the
 * conventional (value-blind) LQ search against the value-aware variant
 * on the baseline machine and report ordering squashes and speedup.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());
    const SweepSpec spec = ablLqValuesSpec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("Value-aware LQ search ablation (baseline machine)",
                    {"blind-squash", "value-squash", "speedup%"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &rb = res.baseline(w);
        const RunResult &ra = res.result(w, "value-aware");
        tbl.addRow(w, {double(rb.orderingSquashes),
                       double(ra.orderingSquashes),
                       speedupPercent(rb, ra)});
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return sweepFailed ? 1 : 0;
}
