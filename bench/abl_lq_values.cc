/**
 * @file
 * Section 2.2 ablation: "If the LQ contains values in addition to
 * addresses, some flushes may be avoided as the search procedure could
 * ignore ordering violations from silent stores." We compare the
 * conventional (value-blind) LQ search against the value-aware variant
 * on the baseline machine and report ordering squashes and speedup.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    FigureTable tbl("Value-aware LQ search ablation (baseline machine)",
                    {"blind-squash", "value-squash", "speedup%"});

    for (const auto &w : suite) {
        ExperimentConfig blind;
        blind.machine = Machine::EightWide;
        blind.opt = OptMode::Baseline;
        auto aware = blind;
        aware.lqValueCheck = true;

        RunRequest rq;
        rq.workload = w;
        rq.targetInsts = args.insts;
        rq.config = blind;
        RunResult rb = runOne(rq);
        rq.config = aware;
        RunResult ra = runOne(rq);
        tbl.addRow(w, {double(rb.orderingSquashes),
                       double(ra.orderingSquashes),
                       speedupPercent(rb, ra)});
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return 0;
}
