/**
 * @file
 * Figure 8 reproduction: SSBF organization sensitivity, measured as the
 * SSQ re-execution rate (SSQ has the highest rates of the three
 * optimizations) over six filter organizations: 128/512/2048-entry
 * simple filters, a dual-hash "Bloom" configuration, 4-byte granularity,
 * and an infinite (exact) filter.
 *
 * Paper expectation (shape): organization barely matters — aliasing in
 * even a 512-entry filter is rare because per-load vulnerability
 * windows only span 5-15 stores.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::fig8Names());

    const SweepSpec spec = fig8Spec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    const std::vector<std::string> cols = {"128", "512", "2048", "Bloom",
                                           "4-byte", "Infinite"};
    FigureTable rex("Figure 8: SSBF organization vs % loads re-executed "
                    "(SSQ+SVW+UPD)",
                    cols);

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        std::vector<double> row;
        for (const auto &c : cols)
            row.push_back(res.result(w, c).rexRate);
        rex.addRow(w, row);
    }
    rex.addAverageRow();
    rex.print(std::cout);
    return sweepFailed ? 1 : 0;
}
