/**
 * @file
 * Figure 8 reproduction: SSBF organization sensitivity, measured as the
 * SSQ re-execution rate (SSQ has the highest rates of the three
 * optimizations) over six filter organizations: 128/512/2048-entry
 * simple filters, a dual-hash "Bloom" configuration, 4-byte granularity,
 * and an infinite (exact) filter.
 *
 * Paper expectation (shape): organization barely matters — aliasing in
 * even a 512-entry filter is rare because per-load vulnerability
 * windows only span 5-15 stores.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::fig8Names());

    auto mk = [](unsigned entries, bool dual, unsigned gran, bool inf) {
        ExperimentConfig c;
        c.machine = Machine::EightWide;
        c.opt = OptMode::Ssq;
        c.svw = SvwMode::Upd;
        c.ssbf.entries = entries;
        c.ssbf.dualHash = dual;
        c.ssbf.granularityBytes = gran;
        c.ssbf.infinite = inf;
        return c;
    };

    const std::vector<ExperimentConfig> configs = {
        mk(128, false, 8, false),
        mk(512, false, 8, false),
        mk(2048, false, 8, false),
        mk(512, true, 8, false),   // "Bloom" (dual hash)
        mk(512, false, 4, false),  // 4-byte granularity
        mk(512, false, 4, true),   // infinite
    };

    FigureTable rex("Figure 8: SSBF organization vs % loads re-executed "
                    "(SSQ+SVW+UPD)",
                    {"128", "512", "2048", "Bloom", "4-byte", "Infinite"});

    for (const auto &w : suite) {
        std::vector<double> row;
        for (const auto &cfg : configs) {
            harness::RunRequest req;
            req.workload = w;
            req.targetInsts = args.insts;
            req.config = cfg;
            row.push_back(harness::runOne(req).rexRate);
        }
        rex.addRow(w, row);
    }
    rex.addAverageRow();
    rex.print(std::cout);
    return 0;
}
