/**
 * @file
 * Statistical perf-regression harness: Mann-Whitney verdicts over
 * per-rep host times, replacing single-snapshot mean comparison.
 *
 * Two modes, sharing one cell matrix (the perf_hotloop workloads ×
 * configs; --cells selects a subset):
 *
 *  --ab          Interleaved A/B of the host-optimization toggles
 *                (base/hostopt.hh): each rep runs arm A (optimized)
 *                then arm B (legacy) back to back, so container noise
 *                — frequency excursions, page cache, sibling load —
 *                hits both arms alike. Per cell, a two-sided
 *                Mann-Whitney U test on the rep times says whether
 *                the optimizations actually moved host time
 *                (p < 0.05), in which direction, and by how much
 *                (median shift). Both arms are simulated in ONE
 *                binary; the toggles are host-side only, so both
 *                arms retire byte-identical cycles (asserted).
 *
 *  --history=F   Append-only per-commit sample history
 *                (BENCH_history.jsonl): --append records this
 *                commit's per-cell rep times as one JSON line per
 *                cell; --check tests the same cells against each
 *                cell's most recent prior entry and exits 3 when any
 *                cell regressed significantly (p < 0.05 AND median
 *                slower) — a statistical CI gate instead of a mean
 *                diff against a lone snapshot.
 *
 * Other flags: --cells=w/CFG[,w/CFG...] | all (default: a 2-cell
 * smoke pair), --reps=N (default 12), --legacy=MASK (which toggles
 * the B arm flips; default all), --commit=SHA (history stamp),
 * --insts=N / --quick (bench_common sizing).
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>

#include "base/hostopt.hh"
#include "bench_common.hh"
#include "harness/perf_stats.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

namespace {

struct AbCell
{
    std::string name;  ///< "workload/CONFIG-LABEL"
    std::string workload;
    ExperimentConfig config;
};

/** The perf_hotloop matrix: 4 workloads x 4 configs. */
std::vector<AbCell>
fullMatrix()
{
    std::vector<ExperimentConfig> configs(4);
    configs[0].opt = OptMode::Baseline;
    configs[1].opt = OptMode::Nlq;
    configs[1].svw = SvwMode::Upd;
    configs[2].opt = OptMode::Ssq;
    configs[2].svw = SvwMode::Upd;
    configs[3].machine = Machine::FourWide;
    configs[3].opt = OptMode::Rle;
    configs[3].svw = SvwMode::Upd;

    std::vector<AbCell> cells;
    for (const std::string w : {"gzip", "mcf", "crafty", "perl.d"}) {
        for (const auto &cfg : configs) {
            AbCell c;
            c.workload = w;
            c.config = cfg;
            c.name = w + "/" + configLabel(cfg);
            cells.push_back(std::move(c));
        }
    }
    return cells;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** One timed rep of @p cell; returns host seconds, accumulates the
 * run's cycle count into @p cycles (byte-identity across arms). */
double
timedRep(const AbCell &cell, const Program &prog, std::uint64_t insts,
         std::uint64_t &cycles)
{
    RunRequest req;
    req.workload = cell.workload;
    req.targetInsts = insts;
    req.config = cell.config;
    req.goldenCheck = false;  // timing loop only, like perf_hotloop
    const double t0 = hostSeconds();
    const RunResult res = runOne(req, prog);
    const double secs = hostSeconds() - t0;
    if (cycles == 0)
        cycles = res.cycles;
    else if (cycles != res.cycles)
        svw_fatal("cycle mismatch across reps/arms in ", cell.name,
                  ": ", cycles, " vs ", res.cycles,
                  " (a hostopt toggle is not host-side-only)");
    return secs;
}

std::string
jsonSampleLine(const std::string &commit, const AbCell &cell,
               std::uint64_t insts, const std::vector<double> &secs)
{
    std::ostringstream os;
    os << "{\"commit\":\"" << commit << "\",\"cell\":\"" << cell.name
       << "\",\"insts\":" << insts << ",\"unix_time\":"
       << static_cast<long long>(std::time(nullptr))
       << ",\"seconds\":[";
    for (std::size_t i = 0; i < secs.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6f", secs[i]);
        os << (i ? "," : "") << buf;
    }
    os << "]}";
    return os.str();
}

/**
 * Minimal extraction of `"cell":"NAME"` and `"seconds":[...]` from one
 * history line (we wrote the format; unknown keys are ignored).
 * @return false on a malformed line (skipped, like a corrupt cache
 * entry).
 */
bool
parseHistoryLine(const std::string &line, std::string &cell,
                 std::vector<double> &secs)
{
    const std::size_t ck = line.find("\"cell\":\"");
    if (ck == std::string::npos)
        return false;
    const std::size_t cs = ck + 8;
    const std::size_t ce = line.find('"', cs);
    if (ce == std::string::npos)
        return false;
    cell = line.substr(cs, ce - cs);

    const std::size_t sk = line.find("\"seconds\":[");
    if (sk == std::string::npos)
        return false;
    std::size_t p = sk + 11;
    secs.clear();
    while (p < line.size() && line[p] != ']') {
        char *end = nullptr;
        const double v = std::strtod(line.c_str() + p, &end);
        if (end == line.c_str() + p)
            return false;
        secs.push_back(v);
        p = static_cast<std::size_t>(end - line.c_str());
        if (p < line.size() && line[p] == ',')
            ++p;
    }
    return !secs.empty();
}

const char *
verdictText(const MannWhitneyResult &mw)
{
    if (mw.p >= 0.05)
        return "no significant difference";
    return mw.medianShift < 0 ? "A faster (significant)"
                              : "B faster (significant)";
}

} // namespace

int
main(int argc, char **argv)
{
    bool modeAb = false;
    std::string historyPath;
    bool historyAppend = false, historyCheck = false;
    std::string cellsArg;
    std::string commit = "unknown";
    unsigned reps = 12;
    unsigned legacyMask =
        hostopt::LegacyRleRelease | hostopt::LegacyWheelDrain;

    std::vector<char *> passDown;
    passDown.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--ab")
            modeAb = true;
        else if (a.rfind("--history=", 0) == 0)
            historyPath = a.substr(10);
        else if (a == "--append")
            historyAppend = true;
        else if (a == "--check")
            historyCheck = true;
        else if (a.rfind("--cells=", 0) == 0)
            cellsArg = a.substr(8);
        else if (a.rfind("--commit=", 0) == 0)
            commit = a.substr(9);
        else if (a.rfind("--reps=", 0) == 0)
            reps = std::max(2u, parseFlagUnsigned(a.substr(7), "--reps"));
        else if (a.rfind("--legacy=", 0) == 0) {
            legacyMask = 0;
            for (const std::string &tok : splitCommas(a.substr(9))) {
                if (tok == "rle_release")
                    legacyMask |= hostopt::LegacyRleRelease;
                else if (tok == "wheel_drain")
                    legacyMask |= hostopt::LegacyWheelDrain;
                else if (tok == "all")
                    legacyMask |= hostopt::LegacyRleRelease |
                                  hostopt::LegacyWheelDrain;
                else {
                    std::fprintf(stderr,
                                 "error: --legacy: unknown toggle '%s'"
                                 " (rle_release, wheel_drain, all)\n",
                                 tok.c_str());
                    return 2;
                }
            }
        } else
            passDown.push_back(argv[i]);
    }
    const BenchArgs args =
        parseArgs(static_cast<int>(passDown.size()), passDown.data());

    if (modeAb + (historyAppend || historyCheck) != 1 ||
        (historyAppend && historyCheck) ||
        ((historyAppend || historyCheck) && historyPath.empty())) {
        std::fprintf(stderr,
                     "error: pick one mode: --ab, or --history=F with"
                     " --append or --check\n");
        return 2;
    }

    // Cell selection: default is a 2-cell smoke pair covering both
    // optimized paths (the wheel drain runs everywhere; the RLE
    // release walk needs the 4-wide RLE machine).
    std::vector<AbCell> cells;
    const std::vector<AbCell> matrix = fullMatrix();
    if (cellsArg.empty()) {
        for (const AbCell &c : matrix)
            if (c.name == "gzip/BASE" || c.name == "perl.d/RLE+SVW+UPD")
                cells.push_back(c);
    } else if (cellsArg == "all") {
        cells = matrix;
    } else {
        for (const std::string &name : splitCommas(cellsArg)) {
            bool found = false;
            for (const AbCell &c : matrix) {
                if (c.name == name) {
                    cells.push_back(c);
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr,
                             "error: --cells: unknown cell '%s'\n",
                             name.c_str());
                return 2;
            }
        }
    }

    // Share each workload's program across its cells and arms.
    ProgramCache &progs = processProgramCache();

    if (modeAb) {
        std::printf("perf_ab: interleaved A/B, %u reps/arm, "
                    "%llu insts, legacy mask 0x%x\n",
                    reps,
                    static_cast<unsigned long long>(args.insts),
                    legacyMask);
        std::printf("%-24s %10s %10s %8s %8s  %s\n", "cell",
                    "A med (s)", "B med (s)", "shift%", "p", "verdict");
        for (const AbCell &cell : cells) {
            const Program &prog = progs.get(cell.workload, args.insts);
            std::vector<double> armA, armB;
            std::uint64_t cycles = 0;
            // One untimed warmup settles page cache and allocator
            // state before either arm is measured.
            hostopt::legacyMask() = 0;
            (void)timedRep(cell, prog, args.insts, cycles);
            for (unsigned r = 0; r < reps; ++r) {
                hostopt::legacyMask() = 0;
                armA.push_back(timedRep(cell, prog, args.insts, cycles));
                hostopt::legacyMask() = legacyMask;
                armB.push_back(timedRep(cell, prog, args.insts, cycles));
            }
            hostopt::legacyMask() = 0;
            const MannWhitneyResult mw = mannWhitneyU(armA, armB);
            const double medA = median(armA), medB = median(armB);
            std::printf("%-24s %10.4f %10.4f %+7.1f%% %8.4f  %s\n",
                        cell.name.c_str(), medA, medB,
                        medB > 0 ? 100.0 * (medA - medB) / medB : 0.0,
                        mw.p, verdictText(mw));
        }
        return 0;
    }

    // History modes: samples are always taken with the optimizations
    // ON (the shipping configuration).
    hostopt::legacyMask() = 0;
    std::map<std::string, std::vector<double>> fresh;
    for (const AbCell &cell : cells) {
        const Program &prog = progs.get(cell.workload, args.insts);
        std::uint64_t cycles = 0;
        (void)timedRep(cell, prog, args.insts, cycles);  // warmup
        std::vector<double> secs;
        for (unsigned r = 0; r < reps; ++r)
            secs.push_back(timedRep(cell, prog, args.insts, cycles));
        fresh[cell.name] = std::move(secs);
    }

    if (historyAppend) {
        std::ofstream out(historyPath, std::ios::app);
        if (!out) {
            std::fprintf(stderr, "error: cannot open %s\n",
                         historyPath.c_str());
            return 2;
        }
        for (const AbCell &cell : cells)
            out << jsonSampleLine(commit, cell, args.insts,
                                  fresh[cell.name])
                << "\n";
        std::printf("appended %zu cell samples to %s (commit %s)\n",
                    cells.size(), historyPath.c_str(), commit.c_str());
        return 0;
    }

    // --check: most recent prior entry per cell.
    std::map<std::string, std::vector<double>> prior;
    {
        std::ifstream in(historyPath);
        if (!in) {
            std::fprintf(stderr,
                         "perf_ab: no history at %s; nothing to check"
                         " against\n",
                         historyPath.c_str());
            return 0;
        }
        std::string line;
        while (std::getline(in, line)) {
            std::string cell;
            std::vector<double> secs;
            if (parseHistoryLine(line, cell, secs))
                prior[cell] = std::move(secs);  // last entry wins
        }
    }

    bool regressed = false;
    std::printf("%-24s %10s %10s %8s %8s  %s\n", "cell", "now (s)",
                "prior (s)", "shift%", "p", "verdict");
    for (const AbCell &cell : cells) {
        const auto it = prior.find(cell.name);
        if (it == prior.end()) {
            std::printf("%-24s  (no prior sample)\n", cell.name.c_str());
            continue;
        }
        const std::vector<double> &now = fresh[cell.name];
        const MannWhitneyResult mw = mannWhitneyU(now, it->second);
        const double medNow = median(now), medPrior = median(it->second);
        const bool slower = mw.p < 0.05 && mw.medianShift > 0;
        if (slower)
            regressed = true;
        std::printf("%-24s %10.4f %10.4f %+7.1f%% %8.4f  %s\n",
                    cell.name.c_str(), medNow, medPrior,
                    medPrior > 0
                        ? 100.0 * (medNow - medPrior) / medPrior : 0.0,
                    mw.p,
                    slower ? "REGRESSION (significant)"
                           : mw.p < 0.05 ? "faster (significant)"
                                         : "no significant change");
    }
    return regressed ? 3 : 0;
}
