/**
 * @file
 * Multi-shard sweep driver: runs any bench binary's sweep as N
 * concurrent `--shard=i/n` invocations and produces the merged full
 * report.
 *
 * The merge medium is the persistent result cache (harness/sweep.hh
 * ResultCache): every shard is launched with a shared `--cache-dir`,
 * so each populates the store with its groups' results; the driver
 * then re-invokes the binary once, unsharded, against the same cache.
 * That merge pass formats the full figure from pure cache reads —
 * zero simulations — and its output is byte-identical to a
 * single-process `--jobs=1` run by construction (the cache stores the
 * engine's lossless wire format). If a shard died, the merge pass
 * transparently re-simulates the missing cells in-process, so the
 * report is still correct; the driver's exit status flags the failure.
 *
 * Shards are local subprocesses by default. `--launch` is a command
 * template for wrapped or remote execution: `{cmd}` expands to the
 * shard command (word-quoted for the *local* shell — right for local
 * wrappers like `nice -n19 {cmd}`), `{qcmd}` to the same command
 * quoted once more into a single word (right for remote shells that
 * re-split, e.g. `--launch='ssh build{i} {qcmd}'`), and `{i}`/`{n}`
 * to the shard index/count. A remote cache dir must be a shared
 * filesystem. ssh is a template, not a dependency: nothing here
 * links or shells to it unless the template says so.
 *
 * usage: sweep_driver --bin=PATH [--shards=N] [--jobs=M | --threads=M]
 *                     [--cache-dir=D] [--launch=TEMPLATE]
 *                     [-- BENCH_ARGS...]
 *
 *   --bin=PATH      bench binary to drive (any of the 13)
 *   --shards=N      number of shard invocations (default 2)
 *   --jobs=M        worker processes per shard (default 1)
 *   --threads=M     worker threads per shard instead of processes
 *                   (mutually exclusive with --jobs>1, like the bench
 *                   binaries' own flags)
 *   --cache-dir=D   shared result cache (default: a private temp
 *                   directory, removed after a fully successful run)
 *   --launch=T      shard command template (default "{cmd}" = local)
 *   -- ARGS         everything after "--" is passed to every bench
 *                   invocation (e.g. --quick, --insts=N, --bench=X)
 *
 * Per-shard stdout/stderr go to <cache-dir>/shard-<i>.log; only the
 * merge pass writes to the driver's stdout. Shard stderr additionally
 * streams through the driver live: every shard is launched with
 * --progress, its stderr rides a pipe, and the driver tees each line
 * into the shard log while forwarding "progress:" (per-cell
 * completion) and "warning:"/"warn:" lines to its own stderr as they
 * arrive — a long multi-shard sweep shows per-cell progress instead
 * of going dark until the merge pass.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hh"

using svw::bench::parseFlagUnsigned;

namespace {

/** Single-quote @p s for /bin/sh. */
std::string
shQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

/** Replace every occurrence of @p what in @p s with @p with. */
std::string
replaceAll(std::string s, const std::string &what, const std::string &with)
{
    std::size_t pos = 0;
    while ((pos = s.find(what, pos)) != std::string::npos) {
        s.replace(pos, what.size(), with);
        pos += with.size();
    }
    return s;
}

/** Fork and run @p cmd via /bin/sh with the driver's own
 * stdout/stderr (the merge pass). @return child pid, or -1. */
pid_t
launch(const std::string &cmd)
{
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
            static_cast<char *>(nullptr));
    ::_exit(127);
}

/** Wait for @p pid; @return its exit status (or 128+signal). */
int
waitStatus(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0)
        return -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

/** Write all of @p data to @p fd, retrying short writes. */
void
writeFull(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n <= 0)
            return;  // log tee is best effort
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

/**
 * One launched shard: its pid, the log file (child stdout writes it
 * directly; the driver tees stderr lines into it through the shared
 * file description, so offsets never collide), the read end of the
 * child's stderr pipe, and a partial-line buffer.
 */
struct Shard
{
    pid_t pid = -1;
    int logFd = -1;
    int errFd = -1;
    std::string buf;
    bool reaped = false;  ///< pumpShardStderr collected the status
    int status = -1;      ///< exit status once reaped
};

/**
 * Tee one complete shard-stderr line into the shard log and forward
 * the interesting prefixes to the driver's stderr as they arrive:
 * "progress:" (per-cell completion — shards run with --progress) and
 * both diagnostic prefixes in use, the executor's plain "warning:"
 * lines and the svw_warn macro's "warn:" lines (e.g. a shard whose
 * cache writes are failing, or a split with more shards than groups).
 */
void
relayLine(const Shard &s, unsigned shard, const std::string &line)
{
    writeFull(s.logFd, line.data(), line.size());
    if (line.rfind("progress:", 0) == 0 ||
        line.rfind("warning:", 0) == 0 || line.rfind("warn:", 0) == 0) {
        std::fprintf(stderr, "shard %u: %s", shard, line.c_str());
        std::fflush(stderr);
    }
}

/**
 * Pump every shard's stderr pipe until all hit EOF (shards run
 * concurrently, so this multiplexes with poll rather than draining
 * them in order). Lines are relayed as they complete; a final
 * unterminated fragment is flushed with a newline appended.
 *
 * A shard is reaped the moment its stderr hits EOF, and a failure is
 * announced on stderr right then — a long multi-shard run (or a log
 * follower on a daemon-era box) sees "# shard i/n FAILED" at failure
 * time, not minutes later after every sibling finishes. The merge
 * pass re-simulates a failed shard's cells, hence "(resimulated)".
 */
void
pumpShardStderr(std::vector<Shard> &procs)
{
    for (;;) {
        std::vector<pollfd> fds;
        std::vector<unsigned> owner;
        for (unsigned i = 0; i < procs.size(); ++i) {
            if (procs[i].errFd >= 0) {
                fds.push_back(pollfd{procs[i].errFd, POLLIN, 0});
                owner.push_back(i);
            }
        }
        if (fds.empty())
            return;
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Shard &s = procs[owner[k]];
            char chunk[4096];
            const ssize_t n = ::read(s.errFd, chunk, sizeof(chunk));
            if (n > 0) {
                s.buf.append(chunk, static_cast<std::size_t>(n));
                std::size_t pos;
                while ((pos = s.buf.find('\n')) != std::string::npos) {
                    relayLine(s, owner[k], s.buf.substr(0, pos + 1));
                    s.buf.erase(0, pos + 1);
                }
            } else if (n == 0 || errno != EINTR) {
                if (!s.buf.empty())
                    relayLine(s, owner[k], s.buf + "\n");
                s.buf.clear();
                ::close(s.errFd);
                s.errFd = -1;
                s.status = waitStatus(s.pid);
                s.reaped = true;
                if (s.status != 0) {
                    std::fprintf(stderr,
                                 "# shard %u/%zu FAILED (resimulated)\n",
                                 owner[k], procs.size());
                    std::fflush(stderr);
                }
            }
        }
    }
}

/**
 * Fork a shard of @p cmd via /bin/sh: stdout to @p logFd, stderr to a
 * fresh pipe whose read end is returned in @p errFdOut for live
 * relaying. Both parent-side fds are close-on-exec so sibling shards
 * never hold a dead shard's pipe open. @return child pid, or -1.
 */
pid_t
launchShard(const std::string &cmd, int logFd, int &errFdOut)
{
    int p[2];
    if (::pipe2(p, O_CLOEXEC) < 0)
        return -1;
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(p[0]);
        ::close(p[1]);
        return -1;
    }
    if (pid != 0) {
        ::close(p[1]);
        errFdOut = p[0];
        return pid;
    }
    ::dup2(logFd, 1);
    ::dup2(p[1], 2);
    ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
            static_cast<char *>(nullptr));
    ::_exit(127);
}

/** Copy the tail of @p path to stderr (shard post-mortem). */
void
dumpLogTail(const std::string &path, std::size_t maxBytes = 2048)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    const long start = size > static_cast<long>(maxBytes)
                           ? size - static_cast<long>(maxBytes)
                           : 0;
    std::fseek(f, start, SEEK_SET);
    std::vector<char> buf(maxBytes);
    const std::size_t n = std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    std::fwrite(buf.data(), 1, n, stderr);
    if (n > 0 && buf[n - 1] != '\n')
        std::fputc('\n', stderr);
}

[[noreturn]] void
usage(const char *argv0, const char *complaint)
{
    std::fprintf(stderr,
                 "error: %s\n"
                 "usage: %s --bin=PATH [--shards=N]"
                 " [--jobs=M | --threads=M]"
                 " [--cache-dir=D] [--launch=TEMPLATE]"
                 " [-- BENCH_ARGS...]\n",
                 complaint, argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bin;
    unsigned shards = 2;
    unsigned jobs = 1;
    unsigned threads = 0;
    std::string cacheDir;
    std::string launchTemplate = "{cmd}";
    std::vector<std::string> benchArgs;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--") {
            for (int j = i + 1; j < argc; ++j) {
                const std::string b = argv[j];
                // The driver owns sharding, job count, and the cache;
                // letting these through would poison the merge pass
                // (a user --shard would make the "full" report
                // partial, --no-cache would discard all shard work).
                if (b.rfind("--shard=", 0) == 0 ||
                    b.rfind("--jobs=", 0) == 0 ||
                    b.rfind("--threads=", 0) == 0 ||
                    b.rfind("--cache-dir=", 0) == 0 ||
                    b == "--no-cache") {
                    usage(argv[0],
                          (b + " is managed by the driver; use its"
                               " --shards=N/--jobs=M/--threads=M/"
                               "--cache-dir=D flags (to bypass the"
                               " cache, run the bench binary directly)")
                              .c_str());
                }
                benchArgs.push_back(b);
            }
            break;
        } else if (a.rfind("--bin=", 0) == 0) {
            bin = a.substr(6);
        } else if (a.rfind("--shards=", 0) == 0) {
            shards = parseFlagUnsigned(a.substr(9), "--shards");
        } else if (a.rfind("--jobs=", 0) == 0) {
            jobs = parseFlagUnsigned(a.substr(7), "--jobs");
        } else if (a.rfind("--threads=", 0) == 0) {
            threads = parseFlagUnsigned(a.substr(10), "--threads");
        } else if (a.rfind("--cache-dir=", 0) == 0) {
            cacheDir = a.substr(12);
        } else if (a.rfind("--launch=", 0) == 0) {
            launchTemplate = a.substr(9);
        } else {
            usage(argv[0], ("unknown arg " + a).c_str());
        }
    }
    if (bin.empty())
        usage(argv[0], "--bin is required");
    if (shards < 1 || jobs < 1)
        usage(argv[0], "need --shards>=1 and --jobs>=1");
    if (jobs > 1 && threads > 0)
        usage(argv[0], "--jobs and --threads are mutually exclusive;"
                       " pick processes or threads per shard");
    if (launchTemplate.find("{cmd}") == std::string::npos &&
        launchTemplate.find("{qcmd}") == std::string::npos) {
        usage(argv[0],
              "--launch template must contain {cmd} (local wrapper)"
              " or {qcmd} (re-quoted for a remote shell)");
    }
    // A remote template with the default private temp cache would
    // scatter each shard's results across machine-local /tmp dirs and
    // leave the local merge pass an empty cache — every cell silently
    // re-simulated. Remote launches must name the shared cache.
    if (launchTemplate != "{cmd}" && cacheDir.empty()) {
        usage(argv[0],
              "--launch requires an explicit --cache-dir on a"
              " filesystem shared with the launched hosts");
    }

    // The cache is the merge medium, so a directory is always needed;
    // without --cache-dir use a private temp store, removed only after
    // a fully clean run (kept for post-mortem otherwise).
    bool tempCache = false;
    if (cacheDir.empty()) {
        char tmpl[] = "/tmp/svw-sweep-cache-XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        if (!dir) {
            std::perror("mkdtemp");
            return 1;
        }
        cacheDir = dir;
        tempCache = true;
    } else {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir, ec);
        if (ec && !std::filesystem::is_directory(cacheDir)) {
            std::fprintf(stderr,
                         "error: cannot create cache dir %s: %s\n",
                         cacheDir.c_str(), ec.message().c_str());
            return 1;
        }
    }

    // Common (quoted) command prefix: binary + user args + cache dir.
    std::string base = shQuote(bin);
    for (const std::string &a : benchArgs)
        base += " " + shQuote(a);
    base += " --cache-dir=" + shQuote(cacheDir);

    // Launch all shards, then pump their stderr pipes until every
    // shard hits EOF (relaying progress/warning lines live) and wait
    // for all of them.
    std::vector<Shard> procs(shards);
    std::vector<std::string> logs(shards);
    for (unsigned i = 0; i < shards; ++i) {
        const std::string parallelFlag =
            threads > 0 ? " --threads=" + std::to_string(threads)
                        : " --jobs=" + std::to_string(jobs);
        const std::string shardCmd =
            base + " --progress" + parallelFlag +
            " --shard=" + std::to_string(i) + "/" +
            std::to_string(shards);
        // Expand {i}/{n} on the template BEFORE inserting the quoted
        // command, so the placeholders stay confined to the template
        // and never rewrite literal braces in user args or paths.
        // {qcmd} goes first for the same reason: it must not re-quote
        // an already-inserted {cmd}.
        std::string cmd = replaceAll(launchTemplate, "{i}",
                                     std::to_string(i));
        cmd = replaceAll(cmd, "{n}", std::to_string(shards));
        cmd = replaceAll(cmd, "{qcmd}", shQuote(shardCmd));
        cmd = replaceAll(cmd, "{cmd}", shardCmd);
        logs[i] = cacheDir + "/shard-" + std::to_string(i) + ".log";
        // The parent owns the log file; the child's stdout writes it
        // directly (shared file description, so the stderr tee and the
        // figure output never overwrite each other). Never fall
        // through to the driver's stdout: a shard's figure output
        // interleaving ahead of the merge pass would break the
        // byte-identity contract — skip the shard instead; the merge
        // pass re-simulates its cells.
        procs[i].logFd = ::open(logs[i].c_str(),
                                O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                                0644);
        if (procs[i].logFd < 0) {
            std::fprintf(stderr,
                         "error: cannot open shard log %s: %s\n",
                         logs[i].c_str(), std::strerror(errno));
            continue;
        }
        procs[i].pid = launchShard(cmd, procs[i].logFd, procs[i].errFd);
        if (procs[i].pid < 0)
            std::fprintf(stderr, "error: fork failed for shard %u\n", i);
    }

    pumpShardStderr(procs);

    unsigned failedShards = 0;
    for (unsigned i = 0; i < shards; ++i) {
        const int st = procs[i].reaped ? procs[i].status
                       : procs[i].pid >= 0 ? waitStatus(procs[i].pid)
                                           : -1;
        if (procs[i].logFd >= 0)
            ::close(procs[i].logFd);
        if (st != 0) {
            ++failedShards;
            std::fprintf(stderr,
                         "error: shard %u/%u exited with status %d;"
                         " log tail (%s):\n",
                         i, shards, st, logs[i].c_str());
            dumpLogTail(logs[i]);
        }
    }
    if (failedShards > 0) {
        std::fprintf(stderr,
                     "warning: %u shard(s) failed; the merge pass will"
                     " re-simulate their cells in-process\n",
                     failedShards);
    }

    // Merge pass: unsharded replay against the populated cache,
    // inheriting the driver's stdout — this is the full report.
    const pid_t mergePid = launch(base);
    const int mergeStatus = mergePid >= 0 ? waitStatus(mergePid) : 1;
    if (mergePid < 0) {
        std::fprintf(stderr, "error: fork failed for merge pass\n");
    } else if (mergeStatus != 0) {
        std::fprintf(stderr, "error: merge pass exited with status %d\n",
                     mergeStatus);
    }

    if (tempCache) {
        if (mergeStatus == 0 && failedShards == 0) {
            std::error_code ec;
            std::filesystem::remove_all(cacheDir, ec);
        } else {
            std::fprintf(stderr, "note: keeping cache/logs in %s\n",
                         cacheDir.c_str());
        }
    }
    if (mergeStatus != 0)
        return mergeStatus > 0 && mergeStatus < 256 ? mergeStatus : 1;
    return failedShards > 0 ? 1 : 0;
}
