/**
 * @file
 * sweepd — the long-lived sweep service daemon. Binds an HTTP/1.1
 * endpoint (service/server.hh) and serves sweep sessions over the
 * process-wide ProgramCache / MemoryResultCache / optional disk
 * ResultCache, so repeated figure requests are served warm without
 * simulating. SIGTERM/SIGINT drain gracefully: in-flight sessions
 * finish streaming, new connections are refused, then the process
 * exits 0.
 *
 *   sweepd [--port=N] [--bind=ADDR] [--cache-dir=D]
 *          [--mem-cache-max-mb=N] [--quiet]
 *
 * Drive it with curl:
 *   curl -s -d 'figure=fig5&quick=1' http://127.0.0.1:8573/sweep
 *   curl -s http://127.0.0.1:8573/status
 */

#include <csignal>
#include <cstdio>
#include <exception>

#include "service/server.hh"

namespace {

svw::service::SweepServer *gServer = nullptr;

extern "C" void
handleStopSignal(int)
{
    if (gServer)
        gServer->requestStop();  // async-signal-safe (pipe write)
}

} // namespace

int
main(int argc, char **argv)
{
    const svw::service::SweepdOptions opts =
        svw::service::parseSweepdArgs(argc, argv);
    try {
        svw::service::SweepServer server(opts);
        gServer = &server;

        struct sigaction sa{};
        sa.sa_handler = handleStopSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        std::fprintf(stderr, "sweepd: listening on %s:%u\n",
                     opts.bindAddr.c_str(), server.port());
        server.run();
        std::fprintf(stderr, "sweepd: drained after %llu session(s);"
                             " exiting\n",
                     static_cast<unsigned long long>(
                         server.sessionsServed()));
        gServer = nullptr;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
