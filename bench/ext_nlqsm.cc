/**
 * @file
 * NLQ-SM extension (paper section 3.2; not evaluated in the paper
 * because its infrastructure ran no shared-memory programs): inter-
 * thread ordering via re-execution of loads in flight during coherence
 * invalidations, with the banked-SSBF invalidation update
 * (SSBF[line] = SSNRENAME + 1).
 *
 * We inject a synthetic invalidation stream (an "other core" silently
 * rewriting workload lines at a configurable interval) and report how
 * many loads NLQ-SM marks versus how many SVW lets skip. Injected
 * writes are value-identical (silent) so the golden model still holds.
 * The injector rides along as the sweep cell's per-cycle hook — worker
 * processes inherit it through fork.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::fig8Names());
    const Cycle intervals[] = {200, 1000, 5000};
    const SweepSpec spec = extNlqsmSpec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("NLQ-SM extension: marked%% / re-executed%% under an "
                    "injected invalidation stream (NLQ+SVW+UPD)",
                    {"mark@200", "rex@200", "mark@1k", "rex@1k",
                     "mark@5k", "rex@5k"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        std::vector<double> row;
        for (Cycle interval : intervals) {
            const RunResult &r =
                res.result(w, "inv@" + std::to_string(interval));
            row.push_back(r.markedRate);
            row.push_back(r.rexRate);
        }
        tbl.addRow(w, row);
    }
    tbl.addAverageRow();
    tbl.print(std::cout);
    return sweepFailed ? 1 : 0;
}
