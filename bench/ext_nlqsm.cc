/**
 * @file
 * NLQ-SM extension (paper section 3.2; not evaluated in the paper
 * because its infrastructure ran no shared-memory programs): inter-
 * thread ordering via re-execution of loads in flight during coherence
 * invalidations, with the banked-SSBF invalidation update
 * (SSBF[line] = SSNRENAME + 1).
 *
 * We inject a synthetic invalidation stream (an "other core" silently
 * rewriting workload lines at a configurable interval) and report how
 * many loads NLQ-SM marks versus how many SVW lets skip. Injected
 * writes are value-identical (silent) so the golden model still holds.
 * The injector rides along as the sweep cell's per-cycle hook — worker
 * processes inherit it through fork.
 */

#include "bench_common.hh"

#include "base/random.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::fig8Names());
    const Cycle intervals[] = {200, 1000, 5000};

    SweepSpec spec("ext_nlqsm");
    for (const auto &w : suite) {
        for (Cycle interval : intervals) {
            SweepCell c;
            c.group = w;
            c.label = "inv@" + std::to_string(interval);
            c.workload = w;
            c.targetInsts = args.insts;
            c.config.machine = Machine::EightWide;
            c.config.opt = OptMode::Nlq;
            c.config.svw = SvwMode::Upd;
            c.config.nlqsm = true;

            // Invalidation injector: every `interval` cycles another
            // agent "writes" (silently) a pseudo-random data line.
            auto rng = std::make_shared<Random>(0x5111d + interval);
            c.hook = [rng, interval](Core &core) {
                if (core.cycle() == 0 || core.cycle() % interval != 0)
                    return;
                const Addr addr = 0x10000 +
                    (rng->nextBounded(1 << 14) & ~Addr(7));
                const std::uint64_t v = core.memory().read(addr, 8);
                core.externalStore(addr, 8, v);  // silent external write
            };
            spec.add(c);
        }
    }
    const SweepResults res = runSweep(spec, sweepOptions(args));
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("NLQ-SM extension: marked%% / re-executed%% under an "
                    "injected invalidation stream (NLQ+SVW+UPD)",
                    {"mark@200", "rex@200", "mark@1k", "rex@1k",
                     "mark@5k", "rex@5k"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        std::vector<double> row;
        for (Cycle interval : intervals) {
            const RunResult &r =
                res.result(w, "inv@" + std::to_string(interval));
            row.push_back(r.markedRate);
            row.push_back(r.rexRate);
        }
        tbl.addRow(w, row);
    }
    tbl.addAverageRow();
    tbl.print(std::cout);
    return sweepFailed ? 1 : 0;
}
