/**
 * @file
 * Host-side simulator throughput tracker.
 *
 * Unlike the figure benches (which reproduce the paper's *simulated*
 * results), this binary measures how fast the simulator itself runs:
 * simulated instructions retired per host second (Minsts/s), the budget
 * that bounds every sweep in bench/. It times the out-of-order core on a
 * representative config matrix — the conventional baseline, NLQ and SSQ
 * with SVW (the hot rex/SVW paths), and RLE on the 4-wide machine — over
 * a small workload subset, and emits BENCH_hotloop.json so the perf
 * trajectory is machine-readable across PRs.
 *
 * Flags (in addition to the bench_common set):
 *   --out=FILE   JSON output path (default BENCH_hotloop.json)
 *   --reps=N     timing repetitions per cell; best-of-N is reported
 */

#include <chrono>
#include <fstream>

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

namespace {

struct Cell
{
    std::string workload;
    std::string config;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;          ///< best single rep (throughput basis)
    double hostWallSeconds = 0.0;  ///< total wall time across all reps
    double minstsPerSec = 0.0;
    double mcyclesPerSec = 0.0;
};

/** Time one (workload, config) run; golden check off: timing loop only. */
Cell
timeCell(const std::string &workload, const ExperimentConfig &cfg,
         std::uint64_t targetInsts, unsigned reps)
{
    Cell cell;
    cell.workload = workload;
    cell.config = configLabel(cfg);
    for (unsigned r = 0; r < reps; ++r) {
        Program prog = workloads::make(workload, targetInsts);
        stats::StatRegistry reg;
        Core core(buildParams(cfg), prog, reg);
        const double t0 = hostSeconds();
        RunOutcome out = core.run(~std::uint64_t(0),
                                  100 * targetInsts + 1'000'000);
        const double secs = hostSeconds() - t0;
        cell.hostWallSeconds += secs;
        if (r == 0 || secs < cell.seconds) {
            cell.seconds = secs;
            cell.insts = out.instructions;
            cell.cycles = out.cycles;
        }
    }
    cell.minstsPerSec = cell.seconds > 0.0
        ? double(cell.insts) / cell.seconds / 1e6 : 0.0;
    cell.mcyclesPerSec = cell.seconds > 0.0
        ? double(cell.cycles) / cell.seconds / 1e6 : 0.0;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_hotloop.json";
    unsigned reps = 3;

    // Pre-filter our private flags; bench_common rejects unknown ones.
    std::vector<char *> passDown;
    passDown.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            outPath = a.substr(6);
        else if (a.rfind("--reps=", 0) == 0)
            reps = static_cast<unsigned>(std::stoul(a.substr(7)));
        else
            passDown.push_back(argv[i]);
    }
    const BenchArgs args =
        parseArgs(static_cast<int>(passDown.size()), passDown.data());

    // Workload subset: dense forwarding (gzip), pointer-chasing misses
    // (mcf), control + silent stores (crafty), RLE redundancy (perl.d).
    const std::vector<std::string> suite =
        selectSuite(args, {"gzip", "mcf", "crafty", "perl.d"});

    // Config matrix: the structures this bench guards (ROB, LQ/SQ
    // searches, completion queue, committed-memory reads) are hot in all
    // of these; SSQ/NLQ add the rex + SVW paths, RLE the 4-wide machine.
    std::vector<ExperimentConfig> configs(4);
    configs[0].opt = OptMode::Baseline;
    configs[1].opt = OptMode::Nlq;
    configs[1].svw = SvwMode::Upd;
    configs[2].opt = OptMode::Ssq;
    configs[2].svw = SvwMode::Upd;
    configs[3].machine = Machine::FourWide;
    configs[3].opt = OptMode::Rle;
    configs[3].svw = SvwMode::Upd;

    std::vector<Cell> cells;
    double totalInsts = 0.0, totalSecs = 0.0;
    for (const auto &w : suite) {
        for (const auto &cfg : configs) {
            Cell c = timeCell(w, cfg, args.insts, reps);
            std::printf("%-8s %-24s %8.3f Minsts/s (%.3fs, %llu insts)\n",
                        c.workload.c_str(), c.config.c_str(),
                        c.minstsPerSec, c.seconds,
                        static_cast<unsigned long long>(c.insts));
            std::fflush(stdout);
            totalInsts += double(c.insts);
            totalSecs += c.seconds;
            cells.push_back(std::move(c));
        }
    }
    const double aggregate =
        totalSecs > 0.0 ? totalInsts / totalSecs / 1e6 : 0.0;
    std::printf("aggregate: %.3f Minsts/s over %zu cells\n", aggregate,
                cells.size());

    std::ofstream js(outPath);
    js << "{\n  \"bench\": \"hotloop\",\n"
       << "  \"unit\": \"Minsts_per_host_second\",\n"
       << "  \"insts_per_run\": " << args.insts << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"dyninst_hot_bytes\": " << sizeof(DynInst) << ",\n"
       << "  \"dyninst_cold_bytes\": " << sizeof(DynInstCold) << ",\n"
       << "  \"aggregate_minsts_per_sec\": " << aggregate << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        js << "    {\"workload\": \"" << c.workload << "\", "
           << "\"config\": \"" << c.config << "\", "
           << "\"insts\": " << c.insts << ", "
           << "\"cycles\": " << c.cycles << ", "
           << "\"seconds\": " << c.seconds << ", "
           << "\"host_wall_seconds\": " << c.hostWallSeconds << ", "
           << "\"minsts_per_sec\": " << c.minstsPerSec << ", "
           << "\"mcycles_per_sec\": " << c.mcyclesPerSec << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
