/**
 * @file
 * Host-side simulator throughput tracker.
 *
 * Unlike the figure benches (which reproduce the paper's *simulated*
 * results), this binary measures how fast the simulator itself runs:
 * simulated instructions retired per host second (Minsts/s), the budget
 * that bounds every sweep in bench/. It times the out-of-order core on a
 * representative config matrix — the conventional baseline, NLQ and SSQ
 * with SVW (the hot rex/SVW paths), and RLE on the 4-wide machine — over
 * a small workload subset, and emits BENCH_hotloop.json so the perf
 * trajectory is machine-readable across PRs.
 *
 * The matrix runs as a sweep (harness/sweep.hh): each (workload,
 * config) cell is one timing cell with `reps` repetitions, the golden
 * check off, and the workload program shared across the workload's four
 * configs via the executor's program cache. The timed region per rep is
 * the whole cell (runOne: params/Core construction + run + stat
 * extraction) — slightly wider than the pre-PR4 core.run()-only clock,
 * so cross-PR comparisons straddling PR 4 read the new numbers as
 * conservative. `--jobs=N` times the cells
 * on N worker processes — per-cell `seconds` then includes host
 * contention, while the `total_wall_seconds` field records the
 * wall-clock win of parallel sweeping; simulated `cycles` are identical
 * for any job count.
 *
 * Flags (in addition to the bench_common set):
 *   --out=FILE   JSON output path (default BENCH_hotloop.json)
 *   --reps=N     timing repetitions per cell; best-of-N is reported
 */

#include <algorithm>
#include <deque>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hh"
#include "harness/batch.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_hotloop.json";
    unsigned reps = 3;

    // Pre-filter our private flags; bench_common rejects unknown ones.
    std::vector<char *> passDown;
    passDown.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            outPath = a.substr(6);
        else if (a.rfind("--reps=", 0) == 0)
            reps = std::max(1u, parseFlagUnsigned(a.substr(7), "--reps"));
        else
            passDown.push_back(argv[i]);
    }
    const BenchArgs args =
        parseArgs(static_cast<int>(passDown.size()), passDown.data());

    // Workload subset: dense forwarding (gzip), pointer-chasing misses
    // (mcf), control + silent stores (crafty), RLE redundancy (perl.d).
    const std::vector<std::string> suite =
        selectSuite(args, {"gzip", "mcf", "crafty", "perl.d"});

    // Config matrix: the structures this bench guards (ROB, LQ/SQ
    // searches, completion queue, committed-memory reads) are hot in all
    // of these; SSQ/NLQ add the rex + SVW paths, RLE the 4-wide machine.
    std::vector<ExperimentConfig> configs(4);
    configs[0].opt = OptMode::Baseline;
    configs[1].opt = OptMode::Nlq;
    configs[1].svw = SvwMode::Upd;
    configs[2].opt = OptMode::Ssq;
    configs[2].svw = SvwMode::Upd;
    configs[3].machine = Machine::FourWide;
    configs[3].opt = OptMode::Rle;
    configs[3].svw = SvwMode::Upd;

    SweepSpec spec("perf_hotloop");
    for (const auto &w : suite) {
        for (const auto &cfg : configs) {
            SweepCell c;
            c.group = w;
            c.label = configLabel(cfg);
            c.workload = w;
            c.targetInsts = args.insts;
            c.config = cfg;
            c.goldenCheck = false;  // timing loop only
            c.timingReps = reps;
            // Wall time is this bench's product: a cached cell would
            // report zero seconds and poison the trajectory. The
            // engine refuses timingReps>1 cells anyway; this covers
            // --reps=1.
            c.neverCache = true;
            spec.add(c);
        }
    }

    // Synth family: seeded generator workloads with behaviors the
    // curated subset undersamples — hashjoin's store-heavy bucket
    // writes and chase's serial long-latency misses stress the
    // completion wheel and SQ/SSQ search differently from gzip/mcf.
    // Two configs keep the addition cheap: the conventional baseline
    // and SSQ+SVW (the hot rex path). Skipped when --bench/--workload
    // restricts the suite (the restriction already names the cells)
    // and when --families already pulls in the synth rows (duplicate
    // cell names would collide).
    if (args.only.empty() && args.families == Families::Paper) {
        const std::vector<std::string> synthSuite = {
            "synth:mix:1", "synth:hashjoin:3", "synth:chase:7"};
        for (const auto &w : synthSuite) {
            for (const ExperimentConfig *cfg : {&configs[0], &configs[2]}) {
                SweepCell c;
                c.group = w;
                c.label = configLabel(*cfg);
                c.workload = w;
                c.targetInsts = args.insts;
                c.config = *cfg;
                c.goldenCheck = false;
                c.timingReps = reps;
                c.neverCache = true;
                spec.add(c);
            }
        }
    }

    // Stream per-cell progress as outcomes arrive (spec order at
    // --jobs=1, completion order under a pool): a multi-minute full
    // sweep must not look hung.
    SweepOptions opts = sweepOptions(args);
    // The timed matrix is never profiled — clock reads at every stage
    // boundary would tax the very seconds this bench publishes.
    // --profile instead runs a separate one-rep attribution pass after
    // the timing sweeps (see below), so the trajectory stays
    // comparable whether or not attribution was requested.
    opts.profile = false;
    // Every cell above is neverCache, so a --cache-dir would have no
    // effect; say so rather than silently idling an advertised flag.
    if (!opts.cacheDir.empty()) {
        std::fprintf(stderr,
                     "warning: perf_hotloop ignores --cache-dir:"
                     " throughput cells are always simulated fresh\n");
        opts.cacheDir.clear();
    }
    opts.onCellDone = [](std::size_t, const CellOutcome &o) {
        if (!o.ok)
            return;
        const double minsts = o.seconds > 0.0
            ? double(o.result.insts) / o.seconds / 1e6 : 0.0;
        std::printf("%-8s %-24s %8.3f Minsts/s (%.3fs, %llu insts)\n",
                    o.result.workload.c_str(), o.result.config.c_str(),
                    minsts, o.seconds,
                    static_cast<unsigned long long>(o.result.insts));
        std::fflush(stdout);
    };

    const double wall0 = hostSeconds();
    const SweepResults res = runSweep(spec, opts);
    const double totalWall = hostSeconds() - wall0;
    const bool sweepFailed = reportFailures(res) != 0;

    // Batched co-simulation A/B: the same matrix in its figure-sweep
    // shape — golden check on (the shared pass is what batching
    // amortizes), one timing rep, batchable — timed at --batch=1 and
    // --batch=2, alternating per rep so host drift hits both sides.
    // Simulated results are byte-identical either way (the CI diff
    // gate holds the figures to that); this records the honest host
    // wall-time ratio next to the per-unit breakdown.
    SweepSpec ab("hotloop_batch_ab");
    for (const auto &w : suite) {
        for (const auto &cfg : configs) {
            SweepCell c;
            c.group = w;
            c.label = configLabel(cfg);
            c.workload = w;
            c.targetInsts = args.insts;
            c.config = cfg;
            c.goldenCheck = true;
            ab.add(c);
        }
    }
    SweepOptions abOpts = opts;
    abOpts.onCellDone = nullptr;
    abOpts.jobs = 1;  // in-process: isolate batching from pool effects
    double abWall1 = 0.0, abWall2 = 0.0;
    std::vector<CellOutcome> abOutcomes;
    for (unsigned r = 0; r < reps; ++r) {
        abOpts.batch = 1;
        double t = hostSeconds();
        (void)runSweep(ab, abOpts);
        const double w1 = hostSeconds() - t;
        abOpts.batch = 2;
        t = hostSeconds();
        SweepResults r2 = runSweep(ab, abOpts);
        const double w2 = hostSeconds() - t;
        if (r == 0 || w1 < abWall1)
            abWall1 = w1;
        if (r == 0 || w2 < abWall2) {
            abWall2 = w2;
            abOutcomes.clear();
            for (std::size_t i = 0; i < ab.size(); ++i)
                abOutcomes.push_back(r2.outcome(i));
        }
    }
    std::printf("batch A/B (--jobs=1, best of %u): batch=1 %.3fs, "
                "batch=2 %.3fs, speedup %.3fx\n",
                reps, abWall1, abWall2,
                abWall2 > 0.0 ? abWall1 / abWall2 : 0.0);

    // Thread-pool scaling: the same matrix (solo lanes, golden check
    // on) timed at --threads=1/2/4, interleaved per rep so host drift
    // hits every width equally; best-of-reps per width. Simulated
    // results are byte-identical at every width (CI gates the figures
    // on that) — this records the honest host wall-clock curve. On a
    // single-CPU container the widths all time ~the same (threads
    // interleave on one core); wall wins need a multi-core host.
    const std::vector<unsigned> threadWidths = {1, 2, 4};
    std::vector<double> threadWall(threadWidths.size(), 0.0);
    {
        SweepOptions tOpts = opts;
        tOpts.onCellDone = nullptr;
        tOpts.jobs = 1;
        tOpts.batch = 1;  // isolate thread scaling from batching
        for (unsigned r = 0; r < reps; ++r) {
            for (std::size_t k = 0; k < threadWidths.size(); ++k) {
                tOpts.threads = threadWidths[k];
                const double t = hostSeconds();
                (void)runSweep(ab, tOpts);
                const double w = hostSeconds() - t;
                if (r == 0 || w < threadWall[k])
                    threadWall[k] = w;
            }
        }
    }
    std::printf("thread scaling (--batch=1, best of %u):", reps);
    for (std::size_t k = 0; k < threadWidths.size(); ++k)
        std::printf(" threads=%u %.3fs%s", threadWidths[k], threadWall[k],
                    k + 1 < threadWidths.size() ? "," : "");
    std::printf(" (speedup vs threads=1: ");
    for (std::size_t k = 0; k < threadWidths.size(); ++k)
        std::printf("%.2fx%s",
                    threadWall[k] > 0.0 ? threadWall[0] / threadWall[k]
                                        : 0.0,
                    k + 1 < threadWidths.size() ? ", " : ")\n");

    // Per-batch breakdown of the batch=2 run: re-derive the planned
    // units (planBatches is deterministic for a fixed spec and K).
    std::deque<std::size_t> abAll;
    for (std::size_t i = 0; i < ab.size(); ++i)
        abAll.push_back(i);
    const std::vector<std::vector<std::size_t>> abUnits =
        planBatches(ab, abAll, 2);

    double totalInsts = 0.0, totalSecs = 0.0;
    std::size_t nCells = 0;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const CellOutcome &o = res.outcome(i);
        if (!o.ran || !o.ok)
            continue;
        totalInsts += double(o.result.insts);
        totalSecs += o.seconds;
        ++nCells;
    }
    const double aggregate =
        totalSecs > 0.0 ? totalInsts / totalSecs / 1e6 : 0.0;
    std::printf("aggregate: %.3f Minsts/s over %zu cells "
                "(%.3fs wall at --jobs=%u)\n",
                aggregate, nCells, totalWall, args.jobs);

    // Attribution pass (--profile): one *profiled* rep per cell in a
    // separate sweep, after all the timing above. Per-stage host-ns
    // attribution lands here as a JSON stanza (wheel_advance nests in
    // complete, lsu_search in issue — the folded-stack file written by
    // bench_common's --profile=F keeps the same shape); "harness" is
    // the cell wall outside the tick loop (program build, core
    // construction, stat extraction).
    std::string profStanza;
    if (args.profile) {
        SweepSpec pspec("perf_hotloop_profile");
        for (std::size_t i = 0; i < spec.size(); ++i) {
            SweepCell c = spec.cell(i);
            c.timingReps = 1;
            pspec.add(c);
        }
        SweepOptions pOpts = opts;
        pOpts.onCellDone = nullptr;
        pOpts.profile = true;
        const SweepResults pres = runSweep(pspec, pOpts);
        std::ostringstream os;
        std::uint64_t agg[prof::NumStages] = {};
        std::uint64_t aggCell = 0;
        os << ",\n  \"profile\": {\n    \"unit\": \"host_ns\",\n"
           << "    \"note\": \"separate 1-rep profiled pass; the timed"
              " cells above never carry the profiler's clock-read"
              " overhead\",\n"
           << "    \"cells\": [\n";
        bool pFirst = true;
        for (std::size_t i = 0; i < pspec.size(); ++i) {
            const CellOutcome &o = pres.outcome(i);
            if (!o.ran || !o.ok || !o.result.profTicks)
                continue;
            std::uint64_t top = 0;
            for (unsigned s = 0; s < prof::NumStages; ++s) {
                agg[s] += o.result.profStageNs[s];
                if (prof::stageParent(static_cast<prof::Stage>(s)) ==
                    prof::NumStages)
                    top += o.result.profStageNs[s];
            }
            aggCell += o.result.profCellNs;
            if (!pFirst)
                os << ",\n";
            pFirst = false;
            os << "      {\"cell\": \"" << pspec.cell(i).name() << "\"";
            for (unsigned s = 0; s < prof::NumStages; ++s)
                os << ", \""
                   << prof::stageName(static_cast<prof::Stage>(s))
                   << "\": " << o.result.profStageNs[s];
            os << ", \"harness\": "
               << (o.result.profCellNs > top ? o.result.profCellNs - top
                                             : 0)
               << ", \"ticks\": " << o.result.profTicks << "}";
        }
        os << "\n    ],\n    \"aggregate\": {";
        std::uint64_t aggTop = 0;
        for (unsigned s = 0; s < prof::NumStages; ++s) {
            os << "\"" << prof::stageName(static_cast<prof::Stage>(s))
               << "\": " << agg[s] << ", ";
            if (prof::stageParent(static_cast<prof::Stage>(s)) ==
                prof::NumStages)
                aggTop += agg[s];
        }
        os << "\"harness\": "
           << (aggCell > aggTop ? aggCell - aggTop : 0)
           << ", \"cell_total\": " << aggCell << "}\n  }";
        profStanza = os.str();
    }

    std::ofstream js(outPath);
    js << "{\n  \"bench\": \"hotloop\",\n"
       << "  \"unit\": \"Minsts_per_host_second\",\n"
       << "  \"insts_per_run\": " << args.insts << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"jobs\": " << args.jobs << ",\n"
       << "  \"total_wall_seconds\": " << totalWall << ",\n"
       << "  \"dyninst_hot_bytes\": " << sizeof(DynInst) << ",\n"
       << "  \"dyninst_cold_bytes\": " << sizeof(DynInstCold) << ",\n"
       << "  \"aggregate_minsts_per_sec\": " << aggregate << ",\n"
       << "  \"cells\": [\n";
    bool first = true;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const CellOutcome &o = res.outcome(i);
        if (!o.ran || !o.ok)
            continue;
        const double minsts = o.seconds > 0.0
            ? double(o.result.insts) / o.seconds / 1e6 : 0.0;
        const double mcycles = o.seconds > 0.0
            ? double(o.result.cycles) / o.seconds / 1e6 : 0.0;
        if (!first)
            js << ",\n";
        first = false;
        js << "    {\"workload\": \"" << o.result.workload << "\", "
           << "\"config\": \"" << o.result.config << "\", "
           << "\"insts\": " << o.result.insts << ", "
           << "\"cycles\": " << o.result.cycles << ", "
           << "\"seconds\": " << o.seconds << ", "
           << "\"host_wall_seconds\": " << o.hostWallSeconds << ", "
           << "\"minsts_per_sec\": " << minsts << ", "
           << "\"mcycles_per_sec\": " << mcycles << "}";
    }
    js << "\n  ],\n";
    js << "  \"batch_ab\": {\n"
       << "    \"jobs\": 1,\n"
       << "    \"golden_check\": true,\n"
       << "    \"batch1_wall_seconds\": " << abWall1 << ",\n"
       << "    \"batch2_wall_seconds\": " << abWall2 << ",\n"
       << "    \"speedup_batch2_over_batch1\": "
       << (abWall2 > 0.0 ? abWall1 / abWall2 : 0.0) << ",\n"
       << "    \"units\": [\n";
    for (std::size_t u = 0; u < abUnits.size(); ++u) {
        double unitWall = 0.0;
        js << "      {\"lanes\": " << abUnits[u].size()
           << ", \"cells\": [";
        for (std::size_t j = 0; j < abUnits[u].size(); ++j) {
            const std::size_t idx = abUnits[u][j];
            const CellOutcome &o = abOutcomes[idx];
            unitWall = std::max(unitWall, o.hostWallSeconds);
            js << (j ? ", " : "") << "\"" << ab.cell(idx).group << "/"
               << ab.cell(idx).label << "\"";
        }
        js << "], \"unit_wall_seconds\": " << unitWall << "}"
           << (u + 1 < abUnits.size() ? ",\n" : "\n");
    }
    js << "    ]\n  },\n";
    js << "  \"thread_scaling\": {\n"
       << "    \"note\": \"wall seconds for the hotloop matrix (solo"
          " lanes, golden check on) on the --threads=N pool, best of "
       << reps << " interleaved reps; byte-identical simulated results"
          " at every width. Single-CPU hosts show ~1.0x — wall wins"
          " require a multi-core host.\",\n"
       << "    \"host_cpus\": "
       << std::thread::hardware_concurrency() << ",\n";
    for (std::size_t k = 0; k < threadWidths.size(); ++k)
        js << "    \"threads" << threadWidths[k]
           << "_wall_seconds\": " << threadWall[k] << ",\n";
    js << "    \"speedup_threads4_over_threads1\": "
       << (threadWall.back() > 0.0 ? threadWall[0] / threadWall.back()
                                   : 0.0)
       << "\n  }"
       << profStanza << "\n}\n";
    std::printf("wrote %s\n", outPath.c_str());
    return sweepFailed ? 1 : 0;
}
