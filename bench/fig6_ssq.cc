/**
 * @file
 * Figure 6 reproduction: SSQ re-execution rate (top; FSQ-steered loads
 * reported separately) and percent speedup over the associative-SQ
 * baseline (bottom).
 *
 * Paper expectations (shape): SSQ without a filter re-executes 100% of
 * loads and loses performance on average (vortex catastrophically);
 * SVW cuts re-execution by ~87% and turns the mean positive, close to
 * PERFECT; vortex stays negative (16-entry FSQ capacity).
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    const SweepSpec spec = fig6Spec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable rex("Figure 6 (top): SSQ % loads re-executed",
                    {"SSQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT",
                     "fsq-loads%"});
    FigureTable speed("Figure 6 (bottom): SSQ % speedup vs assoc-SQ base",
                      {"SSQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &base = res.baseline(w);
        const RunResult &ssq = res.result(w, "SSQ");
        const RunResult &noUpd = res.result(w, "+SVW-UPD");
        const RunResult &upd = res.result(w, "+SVW+UPD");
        const RunResult &perfect = res.result(w, "+PERFECT");
        rex.addRow(w, {ssq.rexRate, noUpd.rexRate, upd.rexRate,
                       perfect.rexRate, upd.fsqLoadShare});
        speed.addRow(w, {speedupPercent(base, ssq),
                         speedupPercent(base, noUpd),
                         speedupPercent(base, upd),
                         speedupPercent(base, perfect)});
    }
    rex.addAverageRow();
    speed.addAverageRow();
    rex.print(std::cout);
    speed.print(std::cout);
    return sweepFailed ? 1 : 0;
}
