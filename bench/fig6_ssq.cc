/**
 * @file
 * Figure 6 reproduction: SSQ re-execution rate (top; FSQ-steered loads
 * reported separately) and percent speedup over the associative-SQ
 * baseline (bottom).
 *
 * Paper expectations (shape): SSQ without a filter re-executes 100% of
 * loads and loses performance on average (vortex catastrophically);
 * SVW cuts re-execution by ~87% and turns the mean positive, close to
 * PERFECT; vortex stays negative (16-entry FSQ capacity).
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::BaselineAssocSq;  // 4-cycle loads (assoc SQ)

    ExperimentConfig ssq = base;
    ssq.opt = OptMode::Ssq;
    ssq.svw = SvwMode::None;
    auto noUpd = ssq;
    noUpd.svw = SvwMode::NoUpd;
    auto upd = ssq;
    upd.svw = SvwMode::Upd;
    auto perfect = ssq;
    perfect.svw = SvwMode::Perfect;

    FigureTable rex("Figure 6 (top): SSQ % loads re-executed",
                    {"SSQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT",
                     "fsq-loads%"});
    FigureTable speed("Figure 6 (bottom): SSQ % speedup vs assoc-SQ base",
                      {"SSQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});

    for (const auto &w : suite) {
        auto rs = runConfigs(w, args.insts,
                             {base, ssq, noUpd, upd, perfect});
        rex.addRow(w, {rs[1].rexRate, rs[2].rexRate, rs[3].rexRate,
                       rs[4].rexRate, rs[3].fsqLoadShare});
        speed.addRow(w, {speedupPercent(rs[0], rs[1]),
                         speedupPercent(rs[0], rs[2]),
                         speedupPercent(rs[0], rs[3]),
                         speedupPercent(rs[0], rs[4])});
    }
    rex.addAverageRow();
    speed.addAverageRow();
    rex.print(std::cout);
    speed.print(std::cout);
    return 0;
}
