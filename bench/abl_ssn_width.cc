/**
 * @file
 * Section 3.6 claim: 16-bit SSNs (64K-store wrap intervals) cost only
 * ~0.2% performance relative to infinite-width SSNs, because the
 * drain-and-clear wrap policy triggers rarely. We sweep SSN width under
 * SSQ+SVW (the heaviest SSN consumer) and report percent slowdown vs
 * 64-bit SSNs plus the number of wrap drains observed.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const std::vector<std::string> suite =
        selectSuite(args, workloads::fig8Names());
    const std::vector<std::string> cols = {"8b", "10b", "12b", "16b",
                                           "64b"};
    const SweepSpec spec = ablSsnWidthSpec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable slow("SSN width ablation: % slowdown vs 64-bit SSNs "
                     "(SSQ+SVW+UPD)",
                     cols);
    FigureTable drains("SSN width ablation: wrap drains per run",
                       cols);

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &ref = res.baseline(w);  // 64-bit
        std::vector<double> srow, drow;
        for (const auto &c : cols) {
            const RunResult &r = res.result(w, c);
            srow.push_back(-speedupPercent(ref, r));  // slowdown vs ref
            drow.push_back(double(r.wrapDrains));
        }
        slow.addRow(w, srow);
        drains.addRow(w, drow);
    }
    slow.addAverageRow();
    drains.addAverageRow();
    slow.print(std::cout, 2);
    drains.print(std::cout, 0);
    return sweepFailed ? 1 : 0;
}
