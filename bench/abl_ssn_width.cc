/**
 * @file
 * Section 3.6 claim: 16-bit SSNs (64K-store wrap intervals) cost only
 * ~0.2% performance relative to infinite-width SSNs, because the
 * drain-and-clear wrap policy triggers rarely. We sweep SSN width under
 * SSQ+SVW (the heaviest SSN consumer) and report percent slowdown vs
 * 64-bit SSNs plus the number of wrap drains observed.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const std::vector<std::string> suite =
        selectSuite(args, workloads::fig8Names());
    const unsigned widths[] = {8, 10, 12, 16, 64};
    const std::vector<std::string> cols = {"8b", "10b", "12b", "16b",
                                           "64b"};

    SweepSpec spec("abl_ssn_width");
    for (const auto &w : suite) {
        for (std::size_t i = 0; i < cols.size(); ++i) {
            SweepCell c;
            c.group = w;
            c.label = cols[i];
            c.workload = w;
            c.targetInsts = args.insts;
            c.config.machine = Machine::EightWide;
            c.config.opt = OptMode::Ssq;
            c.config.svw = SvwMode::Upd;
            c.config.ssnBits = widths[i];
            c.baseline = widths[i] == 64;  // slowdown reference
            spec.add(c);
        }
    }
    const SweepResults res = runSweep(spec, sweepOptions(args));
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable slow("SSN width ablation: % slowdown vs 64-bit SSNs "
                     "(SSQ+SVW+UPD)",
                     cols);
    FigureTable drains("SSN width ablation: wrap drains per run",
                       cols);

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &ref = res.baseline(w);  // 64-bit
        std::vector<double> srow, drow;
        for (const auto &c : cols) {
            const RunResult &r = res.result(w, c);
            srow.push_back(-speedupPercent(ref, r));  // slowdown vs ref
            drow.push_back(double(r.wrapDrains));
        }
        slow.addRow(w, srow);
        drains.addRow(w, drow);
    }
    slow.addAverageRow();
    drains.addAverageRow();
    slow.print(std::cout, 2);
    drains.print(std::cout, 0);
    return sweepFailed ? 1 : 0;
}
