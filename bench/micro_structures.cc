/**
 * @file
 * google-benchmark microbenchmarks of the SVW hardware structures: SSBF
 * update/test, SPCT update/lookup, store-sets dispatch path, and
 * integration-table lookup. These quantify the simulator-side cost of
 * each structure (and document their software interfaces); the paper's
 * hardware cost argument (1 KB SSBF + 16-bit field per LQ entry) is in
 * README.md.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "harness/serialize.hh"
#include "lsu/spct.hh"
#include "lsu/store_sets.hh"
#include "rle/integration_table.hh"
#include "svw/ssbf.hh"

using namespace svw;

static void
BM_SsbfUpdate(benchmark::State &state)
{
    stats::StatRegistry reg;
    SsbfParams p;
    p.entries = static_cast<unsigned>(state.range(0));
    SSBF ssbf(p, reg);
    Random rng(1);
    SSN ssn = 0;
    for (auto _ : state) {
        ssbf.update(rng.next() & 0xffff8, 8, ++ssn & 0xffff);
    }
}
BENCHMARK(BM_SsbfUpdate)->Arg(128)->Arg(512)->Arg(2048);

static void
BM_SsbfTest(benchmark::State &state)
{
    stats::StatRegistry reg;
    SsbfParams p;
    p.entries = 512;
    p.dualHash = state.range(0) != 0;
    SSBF ssbf(p, reg);
    Random rng(2);
    for (SSN s = 1; s < 4096; ++s)
        ssbf.update(rng.next() & 0xffff8, 8, s & 0xffff);
    bool acc = false;
    for (auto _ : state) {
        acc ^= ssbf.test(rng.next() & 0xffff8, 8, 100);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SsbfTest)->Arg(0)->Arg(1);

static void
BM_SpctUpdateLookup(benchmark::State &state)
{
    SPCT spct(512, 8);
    Random rng(3);
    std::uint64_t acc = 0;
    for (auto _ : state) {
        const Addr a = rng.next() & 0xffff8;
        spct.update(a, 8, a ^ 0x123);
        acc += spct.lookup(a);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SpctUpdateLookup);

static void
BM_StoreSetsDispatch(benchmark::State &state)
{
    stats::StatRegistry reg;
    StoreSets ss(4096, 256, reg);
    Random rng(4);
    for (int i = 0; i < 256; ++i)
        ss.train(rng.next() & 0xfff, rng.next() & 0xfff);
    InstSeqNum seq = 0;
    std::uint64_t acc = 0;
    for (auto _ : state) {
        const std::uint64_t pc = rng.next() & 0xfff;
        acc += ss.storeDispatched(pc, ++seq);
        acc += ss.loadDependency(pc ^ 1);
        ss.storeResolved(pc, seq);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_StoreSetsDispatch);

static void
BM_IntegrationTableLookup(benchmark::State &state)
{
    stats::StatRegistry reg;
    RenameState rename(448);
    IntegrationTable it(512, 2, 256, reg);
    Random rng(5);
    std::vector<PhysRegIndex> regs;
    for (int i = 0; i < 64; ++i)
        regs.push_back(rename.alloc());
    for (int i = 0; i < 256; ++i) {
        ItKey k;
        k.op = Opcode::Ld8;
        k.src1 = regs[rng.nextBounded(regs.size())];
        k.src1Gen = rename.regs().generation(k.src1);
        k.imm = static_cast<std::int64_t>(rng.nextBounded(64)) * 8;
        it.insert(k, regs[rng.nextBounded(regs.size())], i, i, rename);
    }
    std::uint64_t acc = 0;
    for (auto _ : state) {
        ItKey k;
        k.op = Opcode::Ld8;
        k.src1 = regs[rng.nextBounded(regs.size())];
        k.src1Gen = rename.regs().generation(k.src1);
        k.imm = static_cast<std::int64_t>(rng.nextBounded(64)) * 8;
        acc += it.lookup(k, rename) != nullptr;
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_IntegrationTableLookup);

/**
 * Sweep-engine worker wire format: serialize + parse of one per-cell
 * RunResult record. This bounds the pool's per-cell protocol overhead
 * (it must stay negligible next to even a --quick simulation cell).
 */
static void
BM_CellRecordRoundTrip(benchmark::State &state)
{
    harness::CellRecord rec;
    rec.cellIndex = 42;
    rec.ok = true;
    rec.seconds = 0.123456789012345;
    rec.hostWallSeconds = 1.0 / 3.0;
    rec.result.workload = "gzip";
    rec.result.config = "SSQ+SVW+UPD";
    rec.result.cycles = 54257;
    rec.result.insts = 100000;
    rec.result.ipc = 100000.0 / 54257.0;
    rec.result.rexRate = 2.0 / 7.0;
    bool acc = true;
    for (auto _ : state) {
        const std::string line = harness::cellRecordToLine(rec);
        harness::CellRecord back;
        acc &= harness::cellRecordFromLine(line, back);
        benchmark::DoNotOptimize(back);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CellRecordRoundTrip);

BENCHMARK_MAIN();
