/**
 * @file
 * Prints the section 4 machine-configuration "table": the two processor
 * shells and the per-figure overlays, as materialized by the harness.
 * Serves both as documentation and as a regression check that the
 * harness builds what the paper describes.
 */

#include <cstdio>

#include "harness/config.hh"

using namespace svw;
using namespace svw::harness;

static void
show(const char *name, const ExperimentConfig &cfg)
{
    CoreParams p = buildParams(cfg);
    std::printf("%-18s width=%u rob=%u iq=%u regs=%u lq=%u sq=%u "
                "ldIssue=%u stIssue=%u ldExtraLat=%u\n",
                name, p.issueWidth, p.robEntries, p.iqEntries,
                p.numPhysRegs, p.lsu.lqEntries, p.lsu.sqEntries,
                p.loadIssue, p.lsu.storeIssueWidth,
                p.lsu.loadExtraLatency);
    std::printf("%-18s rex=%d perfect=%d rexTransit=%u svw=%d +upd=%d "
                "ssn=%ub ssbf=%u%s%s nlq=%d ssq=%d rle=%d\n\n", "",
                p.rex.enabled, p.rex.perfect, p.rexTransit, p.svw.enabled,
                p.svw.updateOnForward, p.svw.ssnBits, p.svw.ssbf.entries,
                p.svw.ssbf.dualHash ? "+dual" : "",
                p.svw.ssbf.infinite ? "(inf)" : "", p.lsu.nlq, p.lsu.ssq,
                p.rle.enabled);
}

int
main()
{
    std::printf("== Section 4 machine configurations ==\n\n");
    std::printf("Common: 32KB/2way/2cyc L1s, 2MB/8way/15cyc L2, 150cyc "
                "memory, 16B buses,\n8K hybrid bpred + 2K BTB, "
                "store-sets, 15-stage base pipe, 1 store retire port.\n\n");

    ExperimentConfig c;
    c.machine = Machine::EightWide;
    c.opt = OptMode::Baseline;
    show("8w BASE", c);
    c.opt = OptMode::BaselineAssocSq;
    show("8w BASE(assocSQ)", c);
    c.opt = OptMode::Nlq;
    c.svw = SvwMode::Upd;
    show("8w NLQ+SVW", c);
    c.opt = OptMode::Ssq;
    show("8w SSQ+SVW", c);
    c.machine = Machine::FourWide;
    c.opt = OptMode::Baseline;
    c.svw = SvwMode::None;
    show("4w BASE", c);
    c.opt = OptMode::Rle;
    c.svw = SvwMode::Upd;
    show("4w RLE+SVW", c);
    return 0;
}
