/**
 * @file
 * Prints the section 4 machine-configuration "table": the two processor
 * shells and the per-figure overlays, as materialized by the harness.
 * The configurations are pulled out of the same declarative sweep specs
 * (harness/figures.hh) the figure binaries execute, so this table is a
 * regression check that the specs build what the paper describes.
 */

#include <cstdio>

#include "harness/config.hh"
#include "harness/figures.hh"

using namespace svw;
using namespace svw::harness;

static void
show(const char *name, const ExperimentConfig &cfg)
{
    CoreParams p = buildParams(cfg);
    std::printf("%-18s width=%u rob=%u iq=%u regs=%u lq=%u sq=%u "
                "ldIssue=%u stIssue=%u ldExtraLat=%u\n",
                name, p.issueWidth, p.robEntries, p.iqEntries,
                p.numPhysRegs, p.lsu.lqEntries, p.lsu.sqEntries,
                p.loadIssue, p.lsu.storeIssueWidth,
                p.lsu.loadExtraLatency);
    std::printf("%-18s rex=%d perfect=%d rexTransit=%u svw=%d +upd=%d "
                "ssn=%ub ssbf=%u%s%s nlq=%d ssq=%d rle=%d\n\n", "",
                p.rex.enabled, p.rex.perfect, p.rexTransit, p.svw.enabled,
                p.svw.updateOnForward, p.svw.ssnBits, p.svw.ssbf.entries,
                p.svw.ssbf.dualHash ? "+dual" : "",
                p.svw.ssbf.infinite ? "(inf)" : "", p.lsu.nlq, p.lsu.ssq,
                p.rle.enabled);
}

static const ExperimentConfig &
specConfig(const SweepSpec &spec, const char *label)
{
    return spec.cell(spec.index(spec.groups().front(), label)).config;
}

int
main()
{
    std::printf("== Section 4 machine configurations ==\n\n");
    std::printf("Common: 32KB/2way/2cyc L1s, 2MB/8way/15cyc L2, 150cyc "
                "memory, 16B buses,\n8K hybrid bpred + 2K BTB, "
                "store-sets, 15-stage base pipe, 1 store retire port.\n\n");

    // One representative row of each figure spec carries the overlays.
    const std::vector<std::string> probe = {"gzip"};
    const SweepSpec f5 = fig5Spec(probe, 1);
    const SweepSpec f6 = fig6Spec(probe, 1);
    const SweepSpec f7 = fig7Spec(probe, 1);

    show("8w BASE", specConfig(f5, "BASE"));
    show("8w BASE(assocSQ)", specConfig(f6, "BASE"));
    show("8w NLQ+SVW", specConfig(f5, "+SVW+UPD"));
    show("8w SSQ+SVW", specConfig(f6, "+SVW+UPD"));
    show("4w BASE", specConfig(f7, "BASE"));
    show("4w RLE+SVW", specConfig(f7, "+SVW"));
    return 0;
}
