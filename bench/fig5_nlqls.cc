/**
 * @file
 * Figure 5 reproduction: NLQ-LS re-execution rate (top) and percent
 * speedup over the conventional baseline (bottom) for four
 * configurations: NLQ (natural filter only), NLQ+SVW without the
 * store-forward update, NLQ+SVW with it, and NLQ with perfect
 * (zero-cost) re-execution.
 *
 * Paper expectations (shape): the natural filter leaves a 7-8% average
 * re-execution rate; SVW-UPD cuts it to ~2%, +UPD to under 1%; speedups
 * are small (the freed LQ port buys ~1%) and +UPD lands within a hair
 * of PERFECT.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::Baseline;

    auto nlq = base;
    nlq.opt = OptMode::Nlq;
    nlq.svw = SvwMode::None;
    auto noUpd = nlq;
    noUpd.svw = SvwMode::NoUpd;
    auto upd = nlq;
    upd.svw = SvwMode::Upd;
    auto perfect = nlq;
    perfect.svw = SvwMode::Perfect;

    FigureTable rex("Figure 5 (top): NLQ-LS % loads re-executed",
                    {"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});
    FigureTable speed("Figure 5 (bottom): NLQ-LS % speedup vs baseline",
                      {"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});

    for (const auto &w : suite) {
        auto rs = runConfigs(w, args.insts, {base, nlq, noUpd, upd, perfect});
        rex.addRow(w, {rs[1].rexRate, rs[2].rexRate, rs[3].rexRate,
                       rs[4].rexRate});
        speed.addRow(w, {speedupPercent(rs[0], rs[1]),
                         speedupPercent(rs[0], rs[2]),
                         speedupPercent(rs[0], rs[3]),
                         speedupPercent(rs[0], rs[4])});
    }
    rex.addAverageRow();
    speed.addAverageRow();
    rex.print(std::cout);
    speed.print(std::cout);
    return 0;
}
