/**
 * @file
 * Figure 5 reproduction: NLQ-LS re-execution rate (top) and percent
 * speedup over the conventional baseline (bottom) for four
 * configurations: NLQ (natural filter only), NLQ+SVW without the
 * store-forward update, NLQ+SVW with it, and NLQ with perfect
 * (zero-cost) re-execution.
 *
 * Paper expectations (shape): the natural filter leaves a 7-8% average
 * re-execution rate; SVW-UPD cuts it to ~2%, +UPD to under 1%; speedups
 * are small (the freed LQ port buys ~1%) and +UPD lands within a hair
 * of PERFECT.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    const SweepSpec spec = fig5Spec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable rex("Figure 5 (top): NLQ-LS % loads re-executed",
                    {"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});
    FigureTable speed("Figure 5 (bottom): NLQ-LS % speedup vs baseline",
                      {"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &base = res.baseline(w);
        const RunResult &nlq = res.result(w, "NLQ");
        const RunResult &noUpd = res.result(w, "+SVW-UPD");
        const RunResult &upd = res.result(w, "+SVW+UPD");
        const RunResult &perfect = res.result(w, "+PERFECT");
        rex.addRow(w, {nlq.rexRate, noUpd.rexRate, upd.rexRate,
                       perfect.rexRate});
        speed.addRow(w, {speedupPercent(base, nlq),
                         speedupPercent(base, noUpd),
                         speedupPercent(base, upd),
                         speedupPercent(base, perfect)});
    }
    rex.addAverageRow();
    speed.addAverageRow();
    rex.print(std::cout);
    speed.print(std::cout);
    return sweepFailed ? 1 : 0;
}
