/**
 * @file
 * Section 4 remark: dual store-retirement ports improve only vortex
 * (+6% on the paper's 8-wide machine). We sweep the shared D$
 * commit/re-execution port width under the conventional baseline and
 * under SSQ+SVW, where extra port bandwidth also absorbs re-executions.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());
    const SweepSpec spec = ablStorePortsSpec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("Store retirement port ablation: % speedup of 2 ports "
                    "over 1",
                    {"BASE", "SSQ+SVW+UPD"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        tbl.addRow(w, {speedupPercent(res.result(w, "base-1p"),
                                      res.result(w, "base-2p")),
                       speedupPercent(res.result(w, "ssq-1p"),
                                      res.result(w, "ssq-2p"))});
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return sweepFailed ? 1 : 0;
}
