/**
 * @file
 * Section 4 remark: dual store-retirement ports improve only vortex
 * (+6% on the paper's 8-wide machine). We sweep the shared D$
 * commit/re-execution port width under the conventional baseline and
 * under SSQ+SVW, where extra port bandwidth also absorbs re-executions.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    FigureTable tbl("Store retirement port ablation: % speedup of 2 ports "
                    "over 1",
                    {"BASE", "SSQ+SVW+UPD"});

    for (const auto &w : suite) {
        std::vector<double> row;
        for (OptMode opt : {OptMode::Baseline, OptMode::Ssq}) {
            ExperimentConfig one;
            one.machine = Machine::EightWide;
            one.opt = opt;
            one.svw = opt == OptMode::Baseline ? SvwMode::None
                                               : SvwMode::Upd;
            one.dcachePorts = 1;
            auto two = one;
            two.dcachePorts = 2;

            RunRequest rq;
            rq.workload = w;
            rq.targetInsts = args.insts;
            rq.config = one;
            RunResult r1 = runOne(rq);
            rq.config = two;
            RunResult r2 = runOne(rq);
            row.push_back(speedupPercent(r1, r2));
        }
        tbl.addRow(w, row);
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return 0;
}
