/**
 * @file
 * Section 4 remark: dual store-retirement ports improve only vortex
 * (+6% on the paper's 8-wide machine). We sweep the shared D$
 * commit/re-execution port width under the conventional baseline and
 * under SSQ+SVW, where extra port bandwidth also absorbs re-executions.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    SweepSpec spec("abl_store_ports");
    for (const auto &w : suite) {
        for (OptMode opt : {OptMode::Baseline, OptMode::Ssq}) {
            const char *tag = opt == OptMode::Baseline ? "base" : "ssq";
            ExperimentConfig cfg;
            cfg.machine = Machine::EightWide;
            cfg.opt = opt;
            cfg.svw = opt == OptMode::Baseline ? SvwMode::None
                                               : SvwMode::Upd;
            for (unsigned ports = 1; ports <= 2; ++ports) {
                SweepCell c;
                c.group = w;
                c.label = std::string(tag) + "-" +
                    std::to_string(ports) + "p";
                c.workload = w;
                c.targetInsts = args.insts;
                cfg.dcachePorts = ports;
                c.config = cfg;
                spec.add(c);
            }
        }
    }
    const SweepResults res = runSweep(spec, sweepOptions(args));
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable tbl("Store retirement port ablation: % speedup of 2 ports "
                    "over 1",
                    {"BASE", "SSQ+SVW+UPD"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        tbl.addRow(w, {speedupPercent(res.result(w, "base-1p"),
                                      res.result(w, "base-2p")),
                       speedupPercent(res.result(w, "ssq-1p"),
                                      res.result(w, "ssq-2p"))});
    }
    tbl.addAverageRow();
    tbl.print(std::cout, 2);
    return sweepFailed ? 1 : 0;
}
