/**
 * @file
 * Figure 7 reproduction: RLE re-execution rate (top; memory-bypassing
 * share reported separately) and percent speedup over the 4-wide
 * baseline (bottom), plus the SVW-SQU configuration that disables
 * squash reuse.
 *
 * Paper expectations (shape): RLE's re-execution rate equals its
 * elimination rate (~28% average); SVW filters ~78% of it; disabling
 * squash reuse (-SQU) removes most of the remaining re-executions but
 * costs a little performance; vortex's unfiltered slowdown disappears.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    ExperimentConfig base;
    base.machine = Machine::FourWide;
    base.opt = OptMode::Baseline;

    ExperimentConfig rle = base;
    rle.opt = OptMode::Rle;
    rle.svw = SvwMode::None;
    auto withSvw = rle;
    withSvw.svw = SvwMode::Upd;
    auto noSqu = withSvw;
    noSqu.rleSquashReuse = false;
    auto perfect = rle;
    perfect.svw = SvwMode::Perfect;

    FigureTable rex("Figure 7 (top): RLE % loads re-executed",
                    {"RLE", "+SVW", "+SVW-SQU", "+PERFECT", "elim%",
                     "bypass-frac"});
    FigureTable speed("Figure 7 (bottom): RLE % speedup vs 4-wide base",
                      {"RLE", "+SVW", "+SVW-SQU", "+PERFECT"});

    for (const auto &w : suite) {
        auto rs = runConfigs(w, args.insts,
                             {base, rle, withSvw, noSqu, perfect});
        rex.addRow(w, {rs[1].rexRate, rs[2].rexRate, rs[3].rexRate,
                       rs[4].rexRate, rs[2].elimRate, rs[2].bypassShare});
        speed.addRow(w, {speedupPercent(rs[0], rs[1]),
                         speedupPercent(rs[0], rs[2]),
                         speedupPercent(rs[0], rs[3]),
                         speedupPercent(rs[0], rs[4])});
    }
    rex.addAverageRow();
    speed.addAverageRow();
    rex.print(std::cout);
    speed.print(std::cout);
    return 0;
}
