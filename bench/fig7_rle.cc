/**
 * @file
 * Figure 7 reproduction: RLE re-execution rate (top; memory-bypassing
 * share reported separately) and percent speedup over the 4-wide
 * baseline (bottom), plus the SVW-SQU configuration that disables
 * squash reuse.
 *
 * Paper expectations (shape): RLE's re-execution rate equals its
 * elimination rate (~28% average); SVW filters ~78% of it; disabling
 * squash reuse (-SQU) removes most of the remaining re-executions but
 * costs a little performance; vortex's unfiltered slowdown disappears.
 */

#include "bench_common.hh"

using namespace svw;
using namespace svw::bench;
using namespace svw::harness;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseArgs(argc, argv);
    const auto suite = selectSuite(args, workloads::suiteNames());

    const SweepSpec spec = fig7Spec(suite, args.insts);
    const SweepResults res = runBenchSweep(spec, args);
    const bool sweepFailed = reportFailures(res) != 0;

    FigureTable rex("Figure 7 (top): RLE % loads re-executed",
                    {"RLE", "+SVW", "+SVW-SQU", "+PERFECT", "elim%",
                     "bypass-frac"});
    FigureTable speed("Figure 7 (bottom): RLE % speedup vs 4-wide base",
                      {"RLE", "+SVW", "+SVW-SQU", "+PERFECT"});

    for (const auto &w : res.shardGroups()) {
        if (!res.groupOk(w))
            continue;
        const RunResult &base = res.baseline(w);
        const RunResult &rle = res.result(w, "RLE");
        const RunResult &withSvw = res.result(w, "+SVW");
        const RunResult &noSqu = res.result(w, "+SVW-SQU");
        const RunResult &perfect = res.result(w, "+PERFECT");
        rex.addRow(w, {rle.rexRate, withSvw.rexRate, noSqu.rexRate,
                       perfect.rexRate, withSvw.elimRate,
                       withSvw.bypassShare});
        speed.addRow(w, {speedupPercent(base, rle),
                         speedupPercent(base, withSvw),
                         speedupPercent(base, noSqu),
                         speedupPercent(base, perfect)});
    }
    rex.addAverageRow();
    speed.addAverageRow();
    rex.print(std::cout);
    speed.print(std::cout);
    return sweepFailed ? 1 : 0;
}
