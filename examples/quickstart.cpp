/**
 * @file
 * Quickstart: build a tiny program with ProgramBuilder, run it on the
 * paper's 8-wide machine with the SSQ optimization and SVW filtering,
 * cross-check it against the functional golden model, and print the
 * SVW-related statistics.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "cpu/core.hh"
#include "func/interp.hh"
#include "harness/config.hh"
#include "prog/builder.hh"

using namespace svw;
using namespace svw::harness;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Write a program: a loop that stores a value and reloads it
    //    (dense store-to-load forwarding, the pattern SVW filters best).
    // ------------------------------------------------------------------
    ProgramBuilder b("quickstart");
    const Addr buf = b.allocData(4096);
    b.loadAddr(1, buf);        // r1 = buffer base
    b.movi(2, 0);              // r2 = i
    b.movi(3, 5000);           // r3 = trip count
    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(4, 2, 255);         // r4 = slot index
    b.slli(4, 4, 3);
    b.add(4, 4, 1);            // r4 = &buf[i % 256]
    b.st8(2, 4, 0);            // store i ...
    b.ld8(5, 4, 0);            // ... and read it right back
    b.add(6, 6, 5);            // checksum
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    Program prog = b.finish();

    // ------------------------------------------------------------------
    // 2. Configure the machine: paper section 4's 8-wide core with the
    //    speculative store queue, verified by SVW-filtered re-execution.
    // ------------------------------------------------------------------
    ExperimentConfig cfg;
    cfg.machine = Machine::EightWide;
    cfg.opt = OptMode::Ssq;
    cfg.svw = SvwMode::Upd;   // SVW with the store-forward update

    stats::StatRegistry stats;
    Core core(buildParams(cfg), prog, stats);
    RunOutcome out = core.run(~0ull, 10'000'000);

    std::cout << "halted:        " << std::boolalpha << out.halted << "\n"
              << "cycles:        " << out.cycles << "\n"
              << "instructions:  " << out.instructions << "\n"
              << "IPC:           "
              << double(out.instructions) / double(out.cycles) << "\n\n";

    // ------------------------------------------------------------------
    // 3. Check the timing model against the in-order golden model.
    // ------------------------------------------------------------------
    Interp golden(prog);
    golden.run(out.instructions);
    bool ok = core.memory().identicalTo(golden.memory());
    for (RegIndex r = 0; r < numArchRegs; ++r)
        ok = ok && core.archReg(r) == golden.reg(r);
    std::cout << "golden check:  " << (ok ? "PASS" : "FAIL") << "\n";
    std::cout << "checksum (r6): " << core.archReg(6) << "\n\n";

    // ------------------------------------------------------------------
    // 4. The SVW story in numbers: SSQ marks every load, SVW filters
    //    almost all of the re-executions.
    // ------------------------------------------------------------------
    for (const char *name :
         {"core.retiredLoads", "rex.loadsMarked", "rex.loadsRexSkippedSvw",
          "rex.loadsReExecuted", "core.rexFlushes", "lsu.fsqForwards"}) {
        if (const auto *s = stats.find(name))
            s->print(std::cout);
    }
    return ok ? 0 : 1;
}
