/**
 * @file
 * Domain example: redundant load elimination via register integration
 * on the 4-wide machine — how eliminated loads form a re-execution
 * stream and what SVW filters out of it.
 *
 * Uses a pointer-reload kernel (the gap stand-in: loop-invariant
 * descriptor reloads a compiler cannot hoist) plus gzip (memory
 * bypassing through a cursor round-trip), and prints the elimination /
 * re-execution / flush counters under RLE, RLE+SVW, and RLE+SVW-SQU.
 *
 * Build & run:  ./build/examples/rle_elimination
 */

#include <cstdio>

#include "harness/runner.hh"

using namespace svw;
using namespace svw::harness;

static void
runOneWorkload(const char *workload)
{
    const std::uint64_t insts = 50'000;

    ExperimentConfig base;
    base.machine = Machine::FourWide;
    base.opt = OptMode::Baseline;

    ExperimentConfig rle = base;
    rle.opt = OptMode::Rle;
    rle.svw = SvwMode::None;
    ExperimentConfig rleSvw = rle;
    rleSvw.svw = SvwMode::Upd;
    ExperimentConfig noSqu = rleSvw;
    noSqu.rleSquashReuse = false;

    std::printf("RLE on %s\n", workload);
    std::printf("  %-18s %8s %8s %10s %10s %10s\n", "config", "IPC",
                "elim%", "rex-rate%", "flushes", "speedup%");

    RunRequest req;
    req.workload = workload;
    req.targetInsts = insts;
    req.config = base;
    RunResult b = runOne(req);

    for (const ExperimentConfig &cfg : {rle, rleSvw, noSqu}) {
        req.config = cfg;
        RunResult r = runOne(req);
        std::printf("  %-18s %8.2f %8.1f %10.1f %10llu %10.1f\n",
                    r.config.c_str(), r.ipc, r.elimRate, r.rexRate,
                    static_cast<unsigned long long>(r.rexFlushes),
                    speedupPercent(b, r));
    }
    std::printf("\n");
}

int
main()
{
    runOneWorkload("gap");    // load reuse of descriptor pointers
    runOneWorkload("gzip");   // speculative memory bypassing
    runOneWorkload("twolf");  // squash reuse (SVW-unfilterable residue)

    std::printf(
        "Reading the tables: RLE's re-execution rate IS its elimination\n"
        "rate (every eliminated load must verify). SVW filters verified\n"
        "eliminations whose window saw no conflicting store; what's left\n"
        "is mostly squash reuse, for which SVW is disabled (section 4.3)\n"
        "- disable squash reuse (-SQU) and the re-executions vanish, at\n"
        "a small performance cost.\n");
    return 0;
}
