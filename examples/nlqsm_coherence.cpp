/**
 * @file
 * Domain example: NLQ-SM — inter-thread memory ordering enforced by
 * re-execution instead of associative LQ search (paper section 3.2),
 * exercised with a synthetic coherence agent.
 *
 * A polling loop reads a set of flags while an injected "other core"
 * rewrites cache lines. Every load in flight during an invalidation is
 * marked for re-execution; the banked SSBF write (SSNRENAME+1 to every
 * granule of the line) lets SVW skip the loads whose addresses the
 * invalidation did not touch.
 *
 * Build & run:  ./build/examples/nlqsm_coherence
 */

#include <cstdio>

#include "base/random.hh"
#include "cpu/core.hh"
#include "harness/config.hh"
#include "prog/builder.hh"

using namespace svw;
using namespace svw::harness;

namespace {

Program
pollingLoop(Addr &flagsOut)
{
    ProgramBuilder b("poll");
    const Addr flags = b.allocData(4096);  // 64 lines of flags
    flagsOut = flags;
    b.loadAddr(1, flags);
    b.movi(2, 0);
    b.movi(3, 20'000);
    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(4, 2, 511);
    b.slli(4, 4, 3);
    b.add(4, 4, 1);
    b.ld8(5, 4, 0);       // poll one flag
    b.add(6, 6, 5);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

} // namespace

int
main()
{
    for (bool withSvw : {false, true}) {
        Addr flags = 0;
        Program prog = pollingLoop(flags);

        ExperimentConfig cfg;
        cfg.machine = Machine::EightWide;
        cfg.opt = OptMode::Nlq;
        cfg.svw = withSvw ? SvwMode::Upd : SvwMode::None;
        cfg.nlqsm = true;

        stats::StatRegistry reg;
        Core core(buildParams(cfg), prog, reg);

        // The coherence agent: every 250 cycles, rewrite one random
        // flag line with its current value (a silent external store:
        // all the ordering machinery fires, yet any value the program
        // observes is still correct).
        Random rng(0xc0);
        core.perCycleHook = [&](Core &c) {
            if (c.cycle() % 250 != 249)
                return;
            const Addr line = flags + 64 * rng.nextBounded(64);
            c.externalStore(line, 8, c.memory().read(line, 8));
        };

        RunOutcome out = core.run(~0ull, 10'000'000);

        auto stat = [&](const char *n) {
            auto *s = dynamic_cast<const stats::Scalar *>(reg.find(n));
            return s ? s->value() : 0ull;
        };
        std::printf("NLQ-SM %-9s halted=%d cycles=%-8llu "
                    "invalidations=%-4llu marked=%-6llu "
                    "re-executed=%-6llu svw-filtered=%llu\n",
                    withSvw ? "with SVW" : "no SVW", out.halted,
                    static_cast<unsigned long long>(out.cycles),
                    static_cast<unsigned long long>(
                        stat("core.invalidationsSeen")),
                    static_cast<unsigned long long>(stat("rex.loadsMarked")),
                    static_cast<unsigned long long>(
                        stat("rex.loadsReExecuted")),
                    static_cast<unsigned long long>(
                        stat("rex.loadsRexSkippedSvw")));
    }

    std::printf(
        "\nWithout SVW, every load in the window at each invalidation\n"
        "re-executes. With SVW, only loads whose address granules the\n"
        "invalidated line actually covers test positive; the rest skip\n"
        "the cache port. This is the filtering Cain & Lipasti's NLQ-SM\n"
        "heuristic cannot do by itself.\n");
    return 0;
}
