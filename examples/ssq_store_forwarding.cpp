/**
 * @file
 * Domain example: the speculative store queue (SSQ) on a forwarding-
 * heavy workload — why re-execution without a filter erases the SSQ's
 * latency win, and how SVW restores it.
 *
 * Runs the paper's eon stand-in (stack push/pop through memory, the
 * FSQ-heaviest kernel) under four configurations and prints a small
 * comparison table: the associative-SQ baseline (4-cycle loads), SSQ
 * with unfiltered re-execution, SSQ+SVW, and SSQ with ideal
 * re-execution.
 *
 * Build & run:  ./build/examples/ssq_store_forwarding
 */

#include <cstdio>

#include "harness/runner.hh"

using namespace svw;
using namespace svw::harness;

int
main()
{
    const char *workload = "eon.c";
    const std::uint64_t insts = 60'000;

    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::BaselineAssocSq;

    ExperimentConfig ssq = base;
    ssq.opt = OptMode::Ssq;
    ssq.svw = SvwMode::None;
    ExperimentConfig ssqSvw = ssq;
    ssqSvw.svw = SvwMode::Upd;
    ExperimentConfig perfect = ssq;
    perfect.svw = SvwMode::Perfect;

    std::printf("SSQ on %s (%llu dynamic instructions)\n\n", workload,
                static_cast<unsigned long long>(insts));
    std::printf("%-22s %10s %10s %12s %12s\n", "config", "IPC",
                "rex-rate%", "fsq-loads%", "speedup%");

    RunResult baseRes;
    for (const ExperimentConfig *cfg :
         {&base, &ssq, &ssqSvw, &perfect}) {
        RunRequest req;
        req.workload = workload;
        req.targetInsts = insts;
        req.config = *cfg;
        RunResult r = runOne(req);
        if (cfg == &base)
            baseRes = r;
        std::printf("%-22s %10.2f %10.1f %12.1f %12.1f\n",
                    r.config.c_str(), r.ipc, r.rexRate, r.fsqLoadShare,
                    cfg == &base ? 0.0 : speedupPercent(baseRes, r));
    }

    std::printf(
        "\nReading the table: the SSQ cuts load latency from 4 to 2\n"
        "cycles, but re-executing 100%% of loads through the single\n"
        "cache port serializes store commit behind load verification.\n"
        "SVW filters the verified-safe loads (store-forwarded ones via\n"
        "the +UPD window shrink), recovering most of the ideal gain.\n");
    return 0;
}
