/**
 * @file
 * Bench command-line parsing tests (bench/bench_common.hh). Death
 * tests pin the exit-2 rejection contract: malformed numbers —
 * including trailing garbage like `--jobs=4x`, which a raw strtoull
 * would silently truncate to 4 — out-of-range values, and invalid
 * shard splits must all fail fast, never run a wrong sweep.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/bench_common.hh"
#include "service/server.hh"

using namespace svw::bench;

namespace {

/** Run parseArgs over a writable argv copy. */
BenchArgs
parse(std::vector<std::string> args)
{
    std::vector<std::string> storage;
    storage.push_back("bench_test");
    for (auto &a : args)
        storage.push_back(std::move(a));
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    return parseArgs(static_cast<int>(argv.size()), argv.data());
}

/** Same, for sweepd's flag parser (service/server.hh). */
svw::service::SweepdOptions
parseDaemon(std::vector<std::string> args)
{
    std::vector<std::string> storage;
    storage.push_back("sweepd_test");
    for (auto &a : args)
        storage.push_back(std::move(a));
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    return svw::service::parseSweepdArgs(static_cast<int>(argv.size()),
                                         argv.data());
}

} // namespace

TEST(BenchArgs, ParsesWellFormedFlags)
{
    const BenchArgs a = parse({"--insts=50000", "--bench=mcf", "--jobs=4",
                               "--shard=1/3", "--cache-dir=/tmp/c"});
    EXPECT_EQ(a.insts, 50'000u);
    EXPECT_EQ(a.only, "mcf");
    EXPECT_EQ(a.jobs, 4u);
    EXPECT_EQ(a.shardIndex, 1u);
    EXPECT_EQ(a.shardCount, 3u);
    EXPECT_EQ(a.cacheDir, "/tmp/c");
    EXPECT_FALSE(a.noCache);
    EXPECT_EQ(sweepOptions(a).cacheDir, "/tmp/c");

    EXPECT_EQ(parse({}).jobs, 1u);
    EXPECT_EQ(parse({"--quick"}).insts, 20'000u);
    EXPECT_EQ(parseFlagNumber("007", "--x"), 7u);
}

TEST(BenchArgs, ThreadsFlagParsesAndPlumbs)
{
    const BenchArgs a = parse({"--threads=4"});
    EXPECT_EQ(a.threads, 4u);
    EXPECT_EQ(a.jobs, 1u);
    EXPECT_EQ(sweepOptions(a).threads, 4u);
    EXPECT_EQ(parse({}).threads, 0u);  // default: thread pool off

    // --jobs=1 is the do-nothing default, so pairing it with
    // --threads is not a conflict.
    const BenchArgs b = parse({"--jobs=1", "--threads=2"});
    EXPECT_EQ(b.threads, 2u);
}

TEST(BenchArgs, NoCacheOverridesCacheDir)
{
    const BenchArgs a = parse({"--cache-dir=/tmp/c", "--no-cache"});
    EXPECT_TRUE(a.noCache);
    EXPECT_EQ(sweepOptions(a).cacheDir, "");
}

using BenchArgsDeath = ::testing::Test;

TEST(BenchArgsDeath, TrailingGarbageIsRejectedNotTruncated)
{
    // The regression this file exists for: "--jobs=4x" must exit 2,
    // not silently run with jobs=4.
    EXPECT_EXIT(parse({"--jobs=4x"}), ::testing::ExitedWithCode(2),
                "bad number '4x' for --jobs");
    EXPECT_EXIT(parse({"--insts=100k"}), ::testing::ExitedWithCode(2),
                "bad number '100k' for --insts");
    EXPECT_EXIT(parse({"--shard=1x/2"}), ::testing::ExitedWithCode(2),
                "bad number '1x' for --shard");
    EXPECT_EXIT(parse({"--shard=0/2x"}), ::testing::ExitedWithCode(2),
                "bad number '2x' for --shard");
    EXPECT_EXIT(parse({"--jobs= 4"}), ::testing::ExitedWithCode(2),
                "bad number");
    EXPECT_EXIT(parse({"--jobs=0x10"}), ::testing::ExitedWithCode(2),
                "bad number");
    EXPECT_EXIT(parse({"--insts=1e6"}), ::testing::ExitedWithCode(2),
                "bad number");
}

TEST(BenchArgsDeath, SignsEmptiesAndOverflowAreRejected)
{
    EXPECT_EXIT(parse({"--jobs=-1"}), ::testing::ExitedWithCode(2),
                "bad number");
    EXPECT_EXIT(parse({"--jobs="}), ::testing::ExitedWithCode(2),
                "bad number");
    // Beyond uint64.
    EXPECT_EXIT(parse({"--insts=18446744073709551616"}),
                ::testing::ExitedWithCode(2), "bad number");
    // Fits uint64 but not unsigned: no silent truncation wrap.
    EXPECT_EXIT(parse({"--jobs=4294967296"}),
                ::testing::ExitedWithCode(2), "out of range");
}

TEST(BenchArgsDeath, InvalidCombinationsAndUnknownFlagsExit2)
{
    EXPECT_EXIT(parse({"--jobs=0"}), ::testing::ExitedWithCode(2),
                "need --jobs>=1");
    EXPECT_EXIT(parse({"--shard=2/2"}), ::testing::ExitedWithCode(2),
                "--shard=i/n with i<n");
    EXPECT_EXIT(parse({"--shard=3"}), ::testing::ExitedWithCode(2),
                "--shard=i/n with i<n");
    EXPECT_EXIT(parse({"--jobs=2", "--threads=2"}),
                ::testing::ExitedWithCode(2), "mutually exclusive");
    EXPECT_EXIT(parse({"--threads=4x"}), ::testing::ExitedWithCode(2),
                "bad number '4x' for --threads");
    EXPECT_EXIT(parse({"--frobnicate"}), ::testing::ExitedWithCode(2),
                "unknown arg --frobnicate");
    EXPECT_EXIT(parse({"positional"}), ::testing::ExitedWithCode(2),
                "unknown arg positional");
}

TEST(BenchArgs, WorkloadFlagAcceptsTheFullRegistryGrammar)
{
    EXPECT_EQ(parse({"--workload=mcf"}).only, "mcf");
    EXPECT_EQ(parse({"--workload=synth:chase:7"}).only, "synth:chase:7");
    EXPECT_EQ(parse({"--workload=synth:hashjoin:3:buckets=128"}).only,
              "synth:hashjoin:3:buckets=128");
}

TEST(BenchArgsDeath, WorkloadFlagValidatesAtParseTime)
{
    // Unknown names and malformed synth recipes must exit 2 at the
    // flag, not svw_fatal mid-sweep.
    EXPECT_EXIT(parse({"--workload=gzip2"}), ::testing::ExitedWithCode(2),
                "unknown workload 'gzip2'");
    EXPECT_EXIT(parse({"--workload=synth:quicksort:1"}),
                ::testing::ExitedWithCode(2), "unknown synth kind");
    EXPECT_EXIT(parse({"--workload=synth:chase"}),
                ::testing::ExitedWithCode(2), "needs a seed");
    EXPECT_EXIT(parse({"--workload=synth:chase:banana"}),
                ::testing::ExitedWithCode(2), "malformed synth seed");
    EXPECT_EXIT(parse({"--workload=synth:chase:1:nodes"}),
                ::testing::ExitedWithCode(2), "want key=value");
    EXPECT_EXIT(parse({"--workload=synth:chase:1:slots=4"}),
                ::testing::ExitedWithCode(2), "unknown synth param");
    // Trace replays need a readable, well-formed file.
    EXPECT_EXIT(parse({"--workload=trace:/nonexistent/x.svwtrace"}),
                ::testing::ExitedWithCode(2), "cannot open trace file");
}

TEST(BenchArgsDeath, RecordTraceNeedsAPathAndAWorkload)
{
    EXPECT_EXIT(parse({"--record-trace="}), ::testing::ExitedWithCode(2),
                "--record-trace needs a file path");
    EXPECT_EXIT(parse({"--record-trace=/tmp/t.svwtrace"}),
                ::testing::ExitedWithCode(2),
                "--record-trace requires a single workload");
}

TEST(BenchArgsDeath, ProfileFlagValidatesItsPath)
{
    EXPECT_EXIT(parse({"--profile="}), ::testing::ExitedWithCode(2),
                "--profile needs a file path");
    // Fail fast on an uncreatable path — before the sweep, not after.
    EXPECT_EXIT(parse({"--profile=/nonexistent-dir/p.folded"}),
                ::testing::ExitedWithCode(2), "cannot create");
}

TEST(BenchArgsDeath, ProfileFlagArmsAndPlumbs)
{
    // Success path runs inside the death fork so the armed atexit
    // writer and process-global output path never leak into the other
    // tests in this binary.
    const std::string path =
        ::testing::TempDir() + "bench_args_profile.folded";
    EXPECT_EXIT(
        {
            const BenchArgs a = parse({"--profile=" + path});
            const bool ok = a.profile && sweepOptions(a).profile &&
                svw::prof::foldedOutputPath() == path;
            std::exit(ok ? 0 : 1);
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(BenchArgs, FamiliesAndMemCacheFlagsParseAndDefault)
{
    using svw::harness::Families;
    EXPECT_EQ(parse({}).families, Families::Paper);
    EXPECT_EQ(parse({"--families=paper"}).families, Families::Paper);
    EXPECT_EQ(parse({"--families=synth"}).families, Families::Synth);
    EXPECT_EQ(parse({"--families=all"}).families, Families::All);

    // Generous default so batch binaries never notice the cap; 0
    // turns the bound off entirely.
    EXPECT_EQ(parse({}).memCacheMaxMb, 512u);
    EXPECT_EQ(parse({"--mem-cache-max-mb=64"}).memCacheMaxMb, 64u);
    EXPECT_EQ(parse({"--mem-cache-max-mb=0"}).memCacheMaxMb, 0u);

    EXPECT_EQ(parse({"--emit-cells=/tmp/c.jsonl"}).emitCells,
              "/tmp/c.jsonl");
    EXPECT_EQ(parse({}).emitCells, "");
}

TEST(BenchArgsDeath, FamiliesAndMemCacheFlagsValidate)
{
    EXPECT_EXIT(parse({"--families=banana"}),
                ::testing::ExitedWithCode(2),
                "bad value 'banana' for --families");
    EXPECT_EXIT(parse({"--families="}), ::testing::ExitedWithCode(2),
                "bad value '' for --families");
    EXPECT_EXIT(parse({"--mem-cache-max-mb=64x"}),
                ::testing::ExitedWithCode(2),
                "bad number '64x' for --mem-cache-max-mb");
    EXPECT_EXIT(parse({"--emit-cells="}), ::testing::ExitedWithCode(2),
                "--emit-cells needs a file path");
}

TEST(BenchArgs, SweepdFlagsParseAndDefault)
{
    const auto d = parseDaemon({});
    EXPECT_EQ(d.port, 8573u);
    EXPECT_EQ(d.bindAddr, "127.0.0.1");
    EXPECT_EQ(d.memCacheMaxMb, 512u);
    EXPECT_FALSE(d.quiet);

    const auto e = parseDaemon({"--port=0", "--bind=0.0.0.0",
                                "--cache-dir=/tmp/c",
                                "--mem-cache-max-mb=32", "--quiet"});
    EXPECT_EQ(e.port, 0u);
    EXPECT_EQ(e.bindAddr, "0.0.0.0");
    EXPECT_EQ(e.cacheDir, "/tmp/c");
    EXPECT_EQ(e.memCacheMaxMb, 32u);
    EXPECT_TRUE(e.quiet);
}

TEST(BenchArgsDeath, SweepdFlagsValidate)
{
    EXPECT_EXIT(parseDaemon({"--port=http"}),
                ::testing::ExitedWithCode(2),
                "bad number 'http' for --port");
    EXPECT_EXIT(parseDaemon({"--port=70000"}),
                ::testing::ExitedWithCode(2),
                "--port value '70000' out of range");
    EXPECT_EXIT(parseDaemon({"--mem-cache-max-mb=1e3"}),
                ::testing::ExitedWithCode(2),
                "bad number '1e3' for --mem-cache-max-mb");
    EXPECT_EXIT(parseDaemon({"--bind="}), ::testing::ExitedWithCode(2),
                "--bind needs an address");
    EXPECT_EXIT(parseDaemon({"--frobnicate"}),
                ::testing::ExitedWithCode(2),
                "unknown arg --frobnicate");
}

TEST(BenchArgsDeath, RecordTraceRecordsAndExitsZero)
{
    // Success path: records via the interpreter and exits 0 before any
    // sweep runs. Uses a tiny sizing to stay fast inside the death
    // fork.
    const std::string path =
        ::testing::TempDir() + "bench_args_record.svwtrace";
    EXPECT_EXIT(parse({"--workload=synth:branchstorm:1", "--insts=2000",
                       "--record-trace=" + path}),
                ::testing::ExitedWithCode(0), "recorded");
}
