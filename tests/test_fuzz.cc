/**
 * @file
 * Randomized-program fuzzing: generate random (but halting) programs
 * with dense memory conflicts — random-size loads and stores over a
 * tiny address pool, data-dependent store addresses, unpredictable
 * branches, call/return pairs — and require exact golden-model
 * equivalence under the aggressive machine configurations.
 *
 * This is the adversarial counterpart to the curated workload suite:
 * the tiny address pool maximizes partial overlaps, silent stores,
 * forwarding, ordering violations, false eliminations, and SSBF
 * conflicts all at once.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "base/random.hh"
#include "cpu/core.hh"
#include "func/interp.hh"
#include "harness/config.hh"
#include "harness/runner.hh"
#include "harness/serialize.hh"
#include "prog/builder.hh"
#include "prog/synth.hh"
#include "prog/trace.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;
using namespace svw::harness;

namespace {

// The adversarial generator lives in the shared prog/synth module (it
// doubles as the "mix" workload kind); this file only drives it.
using synth::randomProgram;

struct FuzzCase
{
    std::uint64_t seed;
    const char *configName;
    ExperimentConfig config;
};

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    auto cfg = [](Machine m, OptMode o, SvwMode s) {
        ExperimentConfig c;
        c.machine = m;
        c.opt = o;
        c.svw = s;
        return c;
    };
    const std::pair<const char *, ExperimentConfig> configs[] = {
        {"base", cfg(Machine::EightWide, OptMode::Baseline,
                     SvwMode::None)},
        {"nlqSvw", cfg(Machine::EightWide, OptMode::Nlq, SvwMode::Upd)},
        {"ssqSvw", cfg(Machine::EightWide, OptMode::Ssq, SvwMode::Upd)},
        {"rleSvw", cfg(Machine::FourWide, OptMode::Rle, SvwMode::Upd)},
        {"composed", cfg(Machine::EightWide, OptMode::Composed,
                         SvwMode::Upd)},
    };
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        for (const auto &[name, c] : configs)
            cases.push_back({seed, name, c});
    // A couple of hostile SVW shapes on one seed each.
    ExperimentConfig wrap = cfg(Machine::EightWide, OptMode::Ssq,
                                SvwMode::Upd);
    wrap.ssnBits = 8;
    cases.push_back({7, "ssqWrap8b", wrap});
    ExperimentConfig tiny = wrap;
    tiny.ssnBits = 16;
    tiny.ssbf.entries = 32;
    cases.push_back({8, "ssqTinySsbf", tiny});
    ExperimentConfig repl = cfg(Machine::EightWide, OptMode::Ssq,
                                SvwMode::Upd);
    repl.svwReplace = true;
    cases.push_back({9, "ssqSvwReplace", repl});
    ExperimentConfig replNlq = cfg(Machine::EightWide, OptMode::Nlq,
                                   SvwMode::Upd);
    replNlq.svwReplace = true;
    cases.push_back({10, "nlqSvwReplace", replNlq});
    return cases;
}

} // namespace

class FuzzGolden : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FuzzGolden, RandomProgramMatchesInterpreter)
{
    const FuzzCase fc = fuzzCases()[GetParam()];
    Program prog = randomProgram(fc.seed, 24, 150);

    stats::StatRegistry reg;
    Core core(buildParams(fc.config), prog, reg);
    RunOutcome out = core.run(~0ull, 3'000'000);
    ASSERT_TRUE(out.halted)
        << "seed " << fc.seed << " config " << fc.configName;

    Interp golden(prog);
    ASSERT_TRUE(golden.run(out.instructions + 1));
    EXPECT_EQ(out.instructions, golden.counts().insts);
    for (RegIndex a = 0; a < numArchRegs; ++a) {
        ASSERT_EQ(core.archReg(a), golden.reg(a))
            << "r" << a << " seed " << fc.seed << " config "
            << fc.configName;
    }
    ASSERT_TRUE(core.memory().identicalTo(golden.memory()))
        << "seed " << fc.seed << " config " << fc.configName;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzGolden,
    ::testing::Range<std::size_t>(0, fuzzCases().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        const FuzzCase fc = fuzzCases()[info.param];
        return std::string("seed") + std::to_string(fc.seed) + "_" +
            fc.configName;
    });

// ---------------------------------------------------------------------
// Synthetic-generator differential fuzz: every synth kind across a
// seed range, each seed run under one of the aggressive machine
// configurations (rotated so every kind meets every config), with the
// out-of-order core required to match the golden interpreter exactly.
// SVW_FUZZ_SEEDS widens the range (the CI fuzz job sets it; the
// default keeps tier-1 fast while still meeting the >=32-seed bar).
// ---------------------------------------------------------------------

namespace {

unsigned
fuzzSeedCount()
{
    if (const char *env = std::getenv("SVW_FUZZ_SEEDS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 32;
}

const std::vector<std::pair<const char *, ExperimentConfig>> &
aggressiveConfigs()
{
    static const auto configs = [] {
        auto cfg = [](Machine m, OptMode o, SvwMode s) {
            ExperimentConfig c;
            c.machine = m;
            c.opt = o;
            c.svw = s;
            return c;
        };
        return std::vector<std::pair<const char *, ExperimentConfig>>{
            {"base", cfg(Machine::EightWide, OptMode::Baseline,
                         SvwMode::None)},
            {"nlqSvw", cfg(Machine::EightWide, OptMode::Nlq,
                           SvwMode::Upd)},
            {"ssqSvw", cfg(Machine::EightWide, OptMode::Ssq,
                           SvwMode::Upd)},
            {"rleSvw", cfg(Machine::FourWide, OptMode::Rle,
                           SvwMode::Upd)},
            {"composed", cfg(Machine::EightWide, OptMode::Composed,
                             SvwMode::Upd)},
        };
    }();
    return configs;
}

} // namespace

class SynthDifferential : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SynthDifferential, CoreMatchesInterpreterAcrossSeeds)
{
    const std::string kind = synth::kindNames()[GetParam()];
    const unsigned seeds = fuzzSeedCount();
    const auto &configs = aggressiveConfigs();

    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        synth::SynthParams p;
        p.kind = kind;
        p.seed = seed;
        const std::string name = synth::canonicalName(p);
        // Through the registry, so the dispatch path is what's fuzzed.
        Program prog = workloads::make(name, 3'000);

        const auto &[cfgName, cfg] = configs[seed % configs.size()];
        stats::StatRegistry reg;
        Core core(buildParams(cfg), prog, reg);
        RunOutcome out = core.run(~0ull, 3'000'000);
        ASSERT_TRUE(out.halted) << name << " config " << cfgName;

        Interp golden(prog);
        ASSERT_TRUE(golden.run(out.instructions + 1))
            << name << " config " << cfgName;
        ASSERT_EQ(out.instructions, golden.counts().insts)
            << name << " config " << cfgName;
        for (RegIndex r = 0; r < numArchRegs; ++r) {
            ASSERT_EQ(core.archReg(r), golden.reg(r))
                << "r" << static_cast<unsigned>(r) << " " << name
                << " config " << cfgName;
        }
        ASSERT_TRUE(core.memory().identicalTo(golden.memory()))
            << name << " config " << cfgName;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SynthDifferential,
    ::testing::Range<std::size_t>(0, synth::kindNames().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        return synth::kindNames()[info.param];
    });

// ---------------------------------------------------------------------
// Trace record -> replay differential: replaying a recorded trace
// through the full runner must produce a RunResult byte-identical
// (every field of the JSON wire form, cycles included) to the live
// front end's, because the reconstructed program is bit-exact. Also
// cross-checks the recording itself against a fresh interpreter run.
// ---------------------------------------------------------------------

namespace {

struct TraceCase
{
    const char *workload;
    const char *configName;
};

const std::vector<TraceCase> &
traceCases()
{
    static const std::vector<TraceCase> cases = {
        // The 4 paper kernels (acceptance criterion) under two machine
        // shapes each, plus synth recipes under the composed machine.
        {"gzip", "base"},     {"gzip", "ssqSvw"},
        {"mcf", "base"},      {"mcf", "nlqSvw"},
        {"crafty", "base"},   {"crafty", "rleSvw"},
        {"perl.d", "base"},   {"perl.d", "composed"},
        {"synth:chase:3", "composed"},
        {"synth:hashjoin:5:buckets=128", "ssqSvw"},
    };
    return cases;
}

const ExperimentConfig &
configByName(const std::string &name)
{
    for (const auto &[n, c] : aggressiveConfigs())
        if (name == n)
            return c;
    throw std::runtime_error("unknown config " + name);
}

} // namespace

class TraceReplayDifferential
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TraceReplayDifferential, ReplayByteIdenticalToLiveFrontEnd)
{
    const TraceCase tc = traceCases()[GetParam()];
    const std::uint64_t insts = 8'000;
    const std::string path = ::testing::TempDir() + "fuzz_replay_" +
        std::to_string(GetParam()) + ".svwtrace";

    Program live = workloads::make(tc.workload, insts);

    // Record once via the interpreter; sanity-check the recording
    // against an independent interpreter run.
    trace::TraceData t = trace::record(live, tc.workload, 100'000'000);
    {
        Interp check(live);
        ASSERT_TRUE(check.run(t.insts + 1));
        EXPECT_EQ(check.counts().insts, t.counts.insts);
        EXPECT_EQ(check.counts().silentStores, t.counts.silentStores);
        for (unsigned r = 0; r < numArchRegs; ++r)
            ASSERT_EQ(check.reg(r), t.finalRegs[r]) << "r" << r;
    }
    trace::writeFile(path, t);

    const std::string replayName = "trace:" + path;
    Program replay = workloads::make(replayName, insts);

    RunRequest req;
    req.config = configByName(tc.configName);
    req.targetInsts = insts;
    req.goldenCheck = true;

    req.workload = tc.workload;
    RunResult liveRes = runOne(req, live);

    req.workload = replayName;
    RunResult replayRes = runOne(req, replay);

    // Byte-identical modulo the workload name the result is stamped
    // with (the name is the only thing that legitimately differs).
    replayRes.workload = liveRes.workload;
    EXPECT_EQ(runResultToJson(liveRes), runResultToJson(replayRes))
        << tc.workload << " under " << tc.configName;

    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    RecordReplay, TraceReplayDifferential,
    ::testing::Range<std::size_t>(0, traceCases().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        const TraceCase tc = traceCases()[info.param];
        std::string n = std::string(tc.workload) + "_" + tc.configName;
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Checkpoint-recovery equivalence: restore must be indistinguishable
// from the youngest-first walk, at both the unit and the whole-core
// level, on randomly chosen squash points.
// ---------------------------------------------------------------------

namespace {

/** Mirror of one speculative definition, for the reference walk. */
struct DefRecord
{
    RegIndex rd;
    PhysRegIndex prd;
    PhysRegIndex prevPrd;
    bool shared;
};

/** Drain both free lists in allocation order and compare; leaves both
 * states equally exhausted, which is itself part of the comparison. */
void
expectIdenticalRenameState(RenameState &a, RenameState &b,
                           unsigned numPhysRegs, std::uint64_t seed)
{
    for (RegIndex r = 0; r < numArchRegs; ++r)
        ASSERT_EQ(a.map(r), b.map(r)) << "map r" << r << " seed " << seed;
    for (unsigned p = 0; p < numPhysRegs; ++p) {
        ASSERT_EQ(a.regs().refCount(p), b.regs().refCount(p))
            << "refs p" << p << " seed " << seed;
        ASSERT_EQ(a.regs().generation(p), b.regs().generation(p))
            << "gen p" << p << " seed " << seed;
    }
    ASSERT_EQ(a.freeRegs(), b.freeRegs()) << "seed " << seed;
    while (a.hasFreeReg()) {
        ASSERT_EQ(a.alloc(), b.alloc())
            << "free-list order diverged, seed " << seed;
    }
}

} // namespace

TEST(FuzzCheckpointRecovery, RestoreEquivalentToWalkOnRandomSquashes)
{
    constexpr unsigned numPhysRegs = 96;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Random rng(seed * 0x9e3779b9ull + 7);
        RenameState ckpt(numPhysRegs, 8);   // recovers via checkpoint
        RenameState walk(numPhysRegs, 8);   // recovers via the walk
        std::vector<DefRecord> defs;        // since run start
        std::size_t ckptAt = 0;             // defs.size() at checkpoint

        // Random prologue of definitions, some register-sharing
        // (integration-style), some commit-time releases of displaced
        // registers — then a checkpoint, more definitions, a squash.
        const unsigned pre = 1 + rng.nextBounded(20);
        const unsigned post = 1 + rng.nextBounded(30);
        auto makeDef = [&]() {
            DefRecord rec;
            rec.rd = static_cast<RegIndex>(1 + rng.nextBounded(10));
            // One in four definitions shares an earlier definition's
            // register (every recorded prd is still referenced during
            // the definition phase — nothing frees until later).
            rec.shared = !defs.empty() && rng.nextBounded(4) == 0;
            rec.prevPrd = ckpt.map(rec.rd);
            if (rec.shared) {
                rec.prd = defs[rng.nextBounded(static_cast<std::uint32_t>(
                                   defs.size()))].prd;
                ckpt.addRef(rec.prd);
                walk.addRef(rec.prd);
            } else {
                rec.prd = ckpt.alloc();
                const PhysRegIndex w = walk.alloc();
                ASSERT_EQ(w, rec.prd) << "states diverged pre-squash";
            }
            ckpt.speculativeDef(rec.rd, rec.prd);
            walk.speculativeDef(rec.rd, rec.prd);
            defs.push_back(rec);
        };

        for (unsigned i = 0; i < pre; ++i)
            makeDef();
        ckptAt = defs.size();
        ckpt.takeCheckpoint(1000, BPredCheckpoint{});
        for (unsigned i = 0; i < post; ++i)
            makeDef();

        // Commit-style releases of displaced registers are legal only
        // for definitions older than the checkpointed branch (in-order
        // commit cannot pass an unresolved branch).
        for (std::size_t i = 0; i < ckptAt; ++i) {
            if (rng.nextBounded(3) == 0) {
                ckpt.deref(defs[i].prevPrd);
                walk.deref(defs[i].prevPrd);
            }
        }

        // Recover: checkpoint restore on one state, reference
        // youngest-first walk on the other.
        ckpt.discardCheckpointsAfter(1000);
        const RenameCheckpoint *ck = ckpt.findCheckpoint(1000);
        ASSERT_NE(ck, nullptr) << "seed " << seed;
        ckpt.restoreCheckpoint(*ck);
        for (std::size_t i = defs.size(); i-- > ckptAt;)
            walk.undoLastDef();

        expectIdenticalRenameState(ckpt, walk, numPhysRegs, seed);
    }
}

namespace {

/**
 * Assert two same-shaped stat registries print identically except for
 * the recovery-mechanism counters themselves (core.ckptRestores /
 * core.ckptWalks legitimately differ between the two recovery modes).
 * Everything else — squash counts, RLE eliminations and squash-reuse
 * splits, rename/IT-sensitive rex outcomes — must be bit-identical.
 */
void
expectIdenticalStatsModuloRecovery(const stats::StatRegistry &a,
                                   const stats::StatRegistry &b,
                                   const char *name, std::uint64_t seed)
{
    ASSERT_EQ(a.all().size(), b.all().size());
    for (std::size_t i = 0; i < a.all().size(); ++i) {
        const stats::StatBase *sa = a.all()[i];
        const stats::StatBase *sb = b.all()[i];
        ASSERT_EQ(sa->name(), sb->name());
        if (sa->name() == "core.ckptRestores" ||
            sa->name() == "core.ckptWalks") {
            continue;
        }
        std::ostringstream osa, osb;
        sa->print(osa);
        sb->print(osb);
        ASSERT_EQ(osa.str(), osb.str())
            << sa->name() << " diverged: " << name << " seed " << seed;
    }
}

} // namespace

TEST(FuzzCheckpointRecovery, CoreTimingIdenticalWithAndWithoutCheckpoints)
{
    // Same random programs, same config, checkpoints on vs off: cycle
    // counts, architectural state, memory, and every stat except the
    // recovery counters must match exactly. This is the
    // bit-identical-timing invariant the recovery path must preserve
    // (docs/ARCHITECTURE.md "Squash recovery"). The RLE config
    // exercises the journaled IT squash-hygiene markers: checkpoint
    // replay must kill exactly the same IntegrationTable entries the
    // walk would, or eliminations (and thus rex flushes and squash
    // reuse) diverge downstream.
    const std::pair<const char *, ExperimentConfig> configs[] = {
        {"base", {}},
        {"ssqSvw",
         [] {
             ExperimentConfig c;
             c.opt = OptMode::Ssq;
             c.svw = SvwMode::Upd;
             return c;
         }()},
        {"rleSvw",
         [] {
             ExperimentConfig c;
             c.machine = Machine::FourWide;
             c.opt = OptMode::Rle;
             c.svw = SvwMode::Upd;
             return c;
         }()},
        {"composed",
         [] {
             ExperimentConfig c;
             c.opt = OptMode::Composed;
             c.svw = SvwMode::Upd;
             return c;
         }()},
    };
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
        Program prog = randomProgram(seed, 24, 120);
        for (const auto &[name, cfg] : configs) {
            CoreParams on = buildParams(cfg);
            CoreParams off = buildParams(cfg);
            off.renameCheckpoints = 0;

            stats::StatRegistry regOn, regOff;
            Core coreOn(on, prog, regOn);
            Core coreOff(off, prog, regOff);
            RunOutcome a = coreOn.run(~0ull, 3'000'000);
            RunOutcome b = coreOff.run(~0ull, 3'000'000);

            ASSERT_TRUE(a.halted) << name << " seed " << seed;
            ASSERT_TRUE(b.halted) << name << " seed " << seed;
            EXPECT_GT(coreOn.ckptRestores.value(), 0u)
                << name << " seed " << seed
                << " (no squash ever hit a checkpoint; the equivalence "
                   "check exercised nothing)";
            EXPECT_EQ(coreOff.ckptRestores.value(), 0u);
            ASSERT_EQ(a.cycles, b.cycles) << name << " seed " << seed;
            ASSERT_EQ(a.instructions, b.instructions)
                << name << " seed " << seed;
            for (RegIndex r = 0; r < numArchRegs; ++r) {
                ASSERT_EQ(coreOn.archReg(r), coreOff.archReg(r))
                    << "r" << r << " " << name << " seed " << seed;
            }
            ASSERT_TRUE(coreOn.memory().identicalTo(coreOff.memory()))
                << name << " seed " << seed;
            expectIdenticalStatsModuloRecovery(regOn, regOff, name, seed);
        }
    }
}
