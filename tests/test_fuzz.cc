/**
 * @file
 * Randomized-program fuzzing: generate random (but halting) programs
 * with dense memory conflicts — random-size loads and stores over a
 * tiny address pool, data-dependent store addresses, unpredictable
 * branches, call/return pairs — and require exact golden-model
 * equivalence under the aggressive machine configurations.
 *
 * This is the adversarial counterpart to the curated workload suite:
 * the tiny address pool maximizes partial overlaps, silent stores,
 * forwarding, ordering violations, false eliminations, and SSBF
 * conflicts all at once.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cpu/core.hh"
#include "func/interp.hh"
#include "harness/config.hh"
#include "prog/builder.hh"

using namespace svw;
using namespace svw::harness;

namespace {

/**
 * Build a random program: an outer counted loop whose body is a random
 * mix of ALU ops, loads/stores of random sizes into a 256-byte pool,
 * data-dependent addressing, branches over the body, and a random
 * helper function call. Always halts.
 */
Program
randomProgram(std::uint64_t seed, unsigned bodyOps, unsigned iters)
{
    Random rng(seed);
    ProgramBuilder b("fuzz" + std::to_string(seed));
    const Addr pool = b.allocWords(
        [&] {
            std::vector<std::uint64_t> init(32);
            for (auto &v : init)
                v = rng.next() & 0xffff;
            return init;
        }());

    // Register conventions: r1 pool base, r2 loop counter, r3 bound,
    // r4-r19 random data regs, r20 scratch address reg.
    Label helper = b.newLabel();
    Label entry = b.newLabel();
    b.jmp(entry);

    // Helper: a small function touching the pool through the stack.
    b.bind(helper);
    b.pushLink({4, 5});
    b.ld8(4, 1, 0);
    b.addi(4, 4, 1);
    b.st8(4, 1, 0);
    b.popLinkAndRet({4, 5});

    b.bind(entry);
    b.loadAddr(1, pool);
    b.movi(2, 0);
    b.movi(3, iters);
    for (RegIndex r = 4; r <= 19; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.nextBounded(1000)));

    Label loop = b.newLabel();
    b.bind(loop);
    for (unsigned i = 0; i < bodyOps; ++i) {
        const RegIndex rd = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const RegIndex ra = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const RegIndex rb = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const unsigned size = 1u << rng.nextBounded(4);
        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
            b.add(rd, ra, rb);
            break;
          case 3:
            b.xor_(rd, ra, rb);
            break;
          case 4: {
            // Load from a register-dependent pool slot.
            b.andi(20, ra, 255 - 8);
            b.add(20, 20, 1);
            b.ld(size, rd, 20, 0);
            break;
          }
          case 5:
          case 6: {
            // Store to a register-dependent pool slot (late address).
            b.andi(20, ra, 255 - 8);
            b.add(20, 20, 1);
            b.st(size, rb, 20, 0);
            break;
          }
          case 7: {
            // Fixed-slot load/store pair (forwarding + silent stores).
            const std::int64_t off =
                static_cast<std::int64_t>(rng.nextBounded(31)) * 8;
            b.st8(ra, 1, off);
            b.ld8(rd, 1, off);
            break;
          }
          case 8: {
            // Unpredictable short forward branch.
            Label skip = b.newLabel();
            b.andi(20, ra, 1);
            b.beq(20, 0, skip);
            b.addi(rd, rd, 3);
            b.bind(skip);
            break;
          }
          case 9:
            b.call(helper);
            break;
        }
    }
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

struct FuzzCase
{
    std::uint64_t seed;
    const char *configName;
    ExperimentConfig config;
};

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    auto cfg = [](Machine m, OptMode o, SvwMode s) {
        ExperimentConfig c;
        c.machine = m;
        c.opt = o;
        c.svw = s;
        return c;
    };
    const std::pair<const char *, ExperimentConfig> configs[] = {
        {"base", cfg(Machine::EightWide, OptMode::Baseline,
                     SvwMode::None)},
        {"nlqSvw", cfg(Machine::EightWide, OptMode::Nlq, SvwMode::Upd)},
        {"ssqSvw", cfg(Machine::EightWide, OptMode::Ssq, SvwMode::Upd)},
        {"rleSvw", cfg(Machine::FourWide, OptMode::Rle, SvwMode::Upd)},
        {"composed", cfg(Machine::EightWide, OptMode::Composed,
                         SvwMode::Upd)},
    };
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        for (const auto &[name, c] : configs)
            cases.push_back({seed, name, c});
    // A couple of hostile SVW shapes on one seed each.
    ExperimentConfig wrap = cfg(Machine::EightWide, OptMode::Ssq,
                                SvwMode::Upd);
    wrap.ssnBits = 8;
    cases.push_back({7, "ssqWrap8b", wrap});
    ExperimentConfig tiny = wrap;
    tiny.ssnBits = 16;
    tiny.ssbf.entries = 32;
    cases.push_back({8, "ssqTinySsbf", tiny});
    ExperimentConfig repl = cfg(Machine::EightWide, OptMode::Ssq,
                                SvwMode::Upd);
    repl.svwReplace = true;
    cases.push_back({9, "ssqSvwReplace", repl});
    ExperimentConfig replNlq = cfg(Machine::EightWide, OptMode::Nlq,
                                   SvwMode::Upd);
    replNlq.svwReplace = true;
    cases.push_back({10, "nlqSvwReplace", replNlq});
    return cases;
}

} // namespace

class FuzzGolden : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FuzzGolden, RandomProgramMatchesInterpreter)
{
    const FuzzCase fc = fuzzCases()[GetParam()];
    Program prog = randomProgram(fc.seed, 24, 150);

    stats::StatRegistry reg;
    Core core(buildParams(fc.config), prog, reg);
    RunOutcome out = core.run(~0ull, 3'000'000);
    ASSERT_TRUE(out.halted)
        << "seed " << fc.seed << " config " << fc.configName;

    Interp golden(prog);
    ASSERT_TRUE(golden.run(out.instructions + 1));
    EXPECT_EQ(out.instructions, golden.counts().insts);
    for (RegIndex a = 0; a < numArchRegs; ++a) {
        ASSERT_EQ(core.archReg(a), golden.reg(a))
            << "r" << a << " seed " << fc.seed << " config "
            << fc.configName;
    }
    ASSERT_TRUE(core.memory().identicalTo(golden.memory()))
        << "seed " << fc.seed << " config " << fc.configName;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzGolden,
    ::testing::Range<std::size_t>(0, fuzzCases().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        const FuzzCase fc = fuzzCases()[info.param];
        return std::string("seed") + std::to_string(fc.seed) + "_" +
            fc.configName;
    });
