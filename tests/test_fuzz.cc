/**
 * @file
 * Randomized-program fuzzing: generate random (but halting) programs
 * with dense memory conflicts — random-size loads and stores over a
 * tiny address pool, data-dependent store addresses, unpredictable
 * branches, call/return pairs — and require exact golden-model
 * equivalence under the aggressive machine configurations.
 *
 * This is the adversarial counterpart to the curated workload suite:
 * the tiny address pool maximizes partial overlaps, silent stores,
 * forwarding, ordering violations, false eliminations, and SSBF
 * conflicts all at once.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cpu/core.hh"
#include "func/interp.hh"
#include "harness/config.hh"
#include "prog/builder.hh"

using namespace svw;
using namespace svw::harness;

namespace {

/**
 * Build a random program: an outer counted loop whose body is a random
 * mix of ALU ops, loads/stores of random sizes into a 256-byte pool,
 * data-dependent addressing, branches over the body, and a random
 * helper function call. Always halts.
 */
Program
randomProgram(std::uint64_t seed, unsigned bodyOps, unsigned iters)
{
    Random rng(seed);
    ProgramBuilder b("fuzz" + std::to_string(seed));
    const Addr pool = b.allocWords(
        [&] {
            std::vector<std::uint64_t> init(32);
            for (auto &v : init)
                v = rng.next() & 0xffff;
            return init;
        }());

    // Register conventions: r1 pool base, r2 loop counter, r3 bound,
    // r4-r19 random data regs, r20 scratch address reg.
    Label helper = b.newLabel();
    Label entry = b.newLabel();
    b.jmp(entry);

    // Helper: a small function touching the pool through the stack.
    b.bind(helper);
    b.pushLink({4, 5});
    b.ld8(4, 1, 0);
    b.addi(4, 4, 1);
    b.st8(4, 1, 0);
    b.popLinkAndRet({4, 5});

    b.bind(entry);
    b.loadAddr(1, pool);
    b.movi(2, 0);
    b.movi(3, iters);
    for (RegIndex r = 4; r <= 19; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.nextBounded(1000)));

    Label loop = b.newLabel();
    b.bind(loop);
    for (unsigned i = 0; i < bodyOps; ++i) {
        const RegIndex rd = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const RegIndex ra = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const RegIndex rb = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const unsigned size = 1u << rng.nextBounded(4);
        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
            b.add(rd, ra, rb);
            break;
          case 3:
            b.xor_(rd, ra, rb);
            break;
          case 4: {
            // Load from a register-dependent pool slot.
            b.andi(20, ra, 255 - 8);
            b.add(20, 20, 1);
            b.ld(size, rd, 20, 0);
            break;
          }
          case 5:
          case 6: {
            // Store to a register-dependent pool slot (late address).
            b.andi(20, ra, 255 - 8);
            b.add(20, 20, 1);
            b.st(size, rb, 20, 0);
            break;
          }
          case 7: {
            // Fixed-slot load/store pair (forwarding + silent stores).
            const std::int64_t off =
                static_cast<std::int64_t>(rng.nextBounded(31)) * 8;
            b.st8(ra, 1, off);
            b.ld8(rd, 1, off);
            break;
          }
          case 8: {
            // Unpredictable short forward branch.
            Label skip = b.newLabel();
            b.andi(20, ra, 1);
            b.beq(20, 0, skip);
            b.addi(rd, rd, 3);
            b.bind(skip);
            break;
          }
          case 9:
            b.call(helper);
            break;
        }
    }
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

struct FuzzCase
{
    std::uint64_t seed;
    const char *configName;
    ExperimentConfig config;
};

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    auto cfg = [](Machine m, OptMode o, SvwMode s) {
        ExperimentConfig c;
        c.machine = m;
        c.opt = o;
        c.svw = s;
        return c;
    };
    const std::pair<const char *, ExperimentConfig> configs[] = {
        {"base", cfg(Machine::EightWide, OptMode::Baseline,
                     SvwMode::None)},
        {"nlqSvw", cfg(Machine::EightWide, OptMode::Nlq, SvwMode::Upd)},
        {"ssqSvw", cfg(Machine::EightWide, OptMode::Ssq, SvwMode::Upd)},
        {"rleSvw", cfg(Machine::FourWide, OptMode::Rle, SvwMode::Upd)},
        {"composed", cfg(Machine::EightWide, OptMode::Composed,
                         SvwMode::Upd)},
    };
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        for (const auto &[name, c] : configs)
            cases.push_back({seed, name, c});
    // A couple of hostile SVW shapes on one seed each.
    ExperimentConfig wrap = cfg(Machine::EightWide, OptMode::Ssq,
                                SvwMode::Upd);
    wrap.ssnBits = 8;
    cases.push_back({7, "ssqWrap8b", wrap});
    ExperimentConfig tiny = wrap;
    tiny.ssnBits = 16;
    tiny.ssbf.entries = 32;
    cases.push_back({8, "ssqTinySsbf", tiny});
    ExperimentConfig repl = cfg(Machine::EightWide, OptMode::Ssq,
                                SvwMode::Upd);
    repl.svwReplace = true;
    cases.push_back({9, "ssqSvwReplace", repl});
    ExperimentConfig replNlq = cfg(Machine::EightWide, OptMode::Nlq,
                                   SvwMode::Upd);
    replNlq.svwReplace = true;
    cases.push_back({10, "nlqSvwReplace", replNlq});
    return cases;
}

} // namespace

class FuzzGolden : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FuzzGolden, RandomProgramMatchesInterpreter)
{
    const FuzzCase fc = fuzzCases()[GetParam()];
    Program prog = randomProgram(fc.seed, 24, 150);

    stats::StatRegistry reg;
    Core core(buildParams(fc.config), prog, reg);
    RunOutcome out = core.run(~0ull, 3'000'000);
    ASSERT_TRUE(out.halted)
        << "seed " << fc.seed << " config " << fc.configName;

    Interp golden(prog);
    ASSERT_TRUE(golden.run(out.instructions + 1));
    EXPECT_EQ(out.instructions, golden.counts().insts);
    for (RegIndex a = 0; a < numArchRegs; ++a) {
        ASSERT_EQ(core.archReg(a), golden.reg(a))
            << "r" << a << " seed " << fc.seed << " config "
            << fc.configName;
    }
    ASSERT_TRUE(core.memory().identicalTo(golden.memory()))
        << "seed " << fc.seed << " config " << fc.configName;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzGolden,
    ::testing::Range<std::size_t>(0, fuzzCases().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        const FuzzCase fc = fuzzCases()[info.param];
        return std::string("seed") + std::to_string(fc.seed) + "_" +
            fc.configName;
    });

// ---------------------------------------------------------------------
// Checkpoint-recovery equivalence: restore must be indistinguishable
// from the youngest-first walk, at both the unit and the whole-core
// level, on randomly chosen squash points.
// ---------------------------------------------------------------------

namespace {

/** Mirror of one speculative definition, for the reference walk. */
struct DefRecord
{
    RegIndex rd;
    PhysRegIndex prd;
    PhysRegIndex prevPrd;
    bool shared;
};

/** Drain both free lists in allocation order and compare; leaves both
 * states equally exhausted, which is itself part of the comparison. */
void
expectIdenticalRenameState(RenameState &a, RenameState &b,
                           unsigned numPhysRegs, std::uint64_t seed)
{
    for (RegIndex r = 0; r < numArchRegs; ++r)
        ASSERT_EQ(a.map(r), b.map(r)) << "map r" << r << " seed " << seed;
    for (unsigned p = 0; p < numPhysRegs; ++p) {
        ASSERT_EQ(a.regs().refCount(p), b.regs().refCount(p))
            << "refs p" << p << " seed " << seed;
        ASSERT_EQ(a.regs().generation(p), b.regs().generation(p))
            << "gen p" << p << " seed " << seed;
    }
    ASSERT_EQ(a.freeRegs(), b.freeRegs()) << "seed " << seed;
    while (a.hasFreeReg()) {
        ASSERT_EQ(a.alloc(), b.alloc())
            << "free-list order diverged, seed " << seed;
    }
}

} // namespace

TEST(FuzzCheckpointRecovery, RestoreEquivalentToWalkOnRandomSquashes)
{
    constexpr unsigned numPhysRegs = 96;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Random rng(seed * 0x9e3779b9ull + 7);
        RenameState ckpt(numPhysRegs, 8);   // recovers via checkpoint
        RenameState walk(numPhysRegs, 8);   // recovers via the walk
        std::vector<DefRecord> defs;        // since run start
        std::size_t ckptAt = 0;             // defs.size() at checkpoint

        // Random prologue of definitions, some register-sharing
        // (integration-style), some commit-time releases of displaced
        // registers — then a checkpoint, more definitions, a squash.
        const unsigned pre = 1 + rng.nextBounded(20);
        const unsigned post = 1 + rng.nextBounded(30);
        auto makeDef = [&]() {
            DefRecord rec;
            rec.rd = static_cast<RegIndex>(1 + rng.nextBounded(10));
            // One in four definitions shares an earlier definition's
            // register (every recorded prd is still referenced during
            // the definition phase — nothing frees until later).
            rec.shared = !defs.empty() && rng.nextBounded(4) == 0;
            rec.prevPrd = ckpt.map(rec.rd);
            if (rec.shared) {
                rec.prd = defs[rng.nextBounded(static_cast<std::uint32_t>(
                                   defs.size()))].prd;
                ckpt.addRef(rec.prd);
                walk.addRef(rec.prd);
            } else {
                rec.prd = ckpt.alloc();
                const PhysRegIndex w = walk.alloc();
                ASSERT_EQ(w, rec.prd) << "states diverged pre-squash";
            }
            ckpt.speculativeDef(rec.rd, rec.prd);
            walk.speculativeDef(rec.rd, rec.prd);
            defs.push_back(rec);
        };

        for (unsigned i = 0; i < pre; ++i)
            makeDef();
        ckptAt = defs.size();
        ckpt.takeCheckpoint(1000, BPredCheckpoint{});
        for (unsigned i = 0; i < post; ++i)
            makeDef();

        // Commit-style releases of displaced registers are legal only
        // for definitions older than the checkpointed branch (in-order
        // commit cannot pass an unresolved branch).
        for (std::size_t i = 0; i < ckptAt; ++i) {
            if (rng.nextBounded(3) == 0) {
                ckpt.deref(defs[i].prevPrd);
                walk.deref(defs[i].prevPrd);
            }
        }

        // Recover: checkpoint restore on one state, reference
        // youngest-first walk on the other.
        ckpt.discardCheckpointsAfter(1000);
        const RenameCheckpoint *ck = ckpt.findCheckpoint(1000);
        ASSERT_NE(ck, nullptr) << "seed " << seed;
        ckpt.restoreCheckpoint(*ck);
        for (std::size_t i = defs.size(); i-- > ckptAt;)
            walk.undoLastDef();

        expectIdenticalRenameState(ckpt, walk, numPhysRegs, seed);
    }
}

namespace {

/**
 * Assert two same-shaped stat registries print identically except for
 * the recovery-mechanism counters themselves (core.ckptRestores /
 * core.ckptWalks legitimately differ between the two recovery modes).
 * Everything else — squash counts, RLE eliminations and squash-reuse
 * splits, rename/IT-sensitive rex outcomes — must be bit-identical.
 */
void
expectIdenticalStatsModuloRecovery(const stats::StatRegistry &a,
                                   const stats::StatRegistry &b,
                                   const char *name, std::uint64_t seed)
{
    ASSERT_EQ(a.all().size(), b.all().size());
    for (std::size_t i = 0; i < a.all().size(); ++i) {
        const stats::StatBase *sa = a.all()[i];
        const stats::StatBase *sb = b.all()[i];
        ASSERT_EQ(sa->name(), sb->name());
        if (sa->name() == "core.ckptRestores" ||
            sa->name() == "core.ckptWalks") {
            continue;
        }
        std::ostringstream osa, osb;
        sa->print(osa);
        sb->print(osb);
        ASSERT_EQ(osa.str(), osb.str())
            << sa->name() << " diverged: " << name << " seed " << seed;
    }
}

} // namespace

TEST(FuzzCheckpointRecovery, CoreTimingIdenticalWithAndWithoutCheckpoints)
{
    // Same random programs, same config, checkpoints on vs off: cycle
    // counts, architectural state, memory, and every stat except the
    // recovery counters must match exactly. This is the
    // bit-identical-timing invariant the recovery path must preserve
    // (docs/ARCHITECTURE.md "Squash recovery"). The RLE config
    // exercises the journaled IT squash-hygiene markers: checkpoint
    // replay must kill exactly the same IntegrationTable entries the
    // walk would, or eliminations (and thus rex flushes and squash
    // reuse) diverge downstream.
    const std::pair<const char *, ExperimentConfig> configs[] = {
        {"base", {}},
        {"ssqSvw",
         [] {
             ExperimentConfig c;
             c.opt = OptMode::Ssq;
             c.svw = SvwMode::Upd;
             return c;
         }()},
        {"rleSvw",
         [] {
             ExperimentConfig c;
             c.machine = Machine::FourWide;
             c.opt = OptMode::Rle;
             c.svw = SvwMode::Upd;
             return c;
         }()},
        {"composed",
         [] {
             ExperimentConfig c;
             c.opt = OptMode::Composed;
             c.svw = SvwMode::Upd;
             return c;
         }()},
    };
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
        Program prog = randomProgram(seed, 24, 120);
        for (const auto &[name, cfg] : configs) {
            CoreParams on = buildParams(cfg);
            CoreParams off = buildParams(cfg);
            off.renameCheckpoints = 0;

            stats::StatRegistry regOn, regOff;
            Core coreOn(on, prog, regOn);
            Core coreOff(off, prog, regOff);
            RunOutcome a = coreOn.run(~0ull, 3'000'000);
            RunOutcome b = coreOff.run(~0ull, 3'000'000);

            ASSERT_TRUE(a.halted) << name << " seed " << seed;
            ASSERT_TRUE(b.halted) << name << " seed " << seed;
            EXPECT_GT(coreOn.ckptRestores.value(), 0u)
                << name << " seed " << seed
                << " (no squash ever hit a checkpoint; the equivalence "
                   "check exercised nothing)";
            EXPECT_EQ(coreOff.ckptRestores.value(), 0u);
            ASSERT_EQ(a.cycles, b.cycles) << name << " seed " << seed;
            ASSERT_EQ(a.instructions, b.instructions)
                << name << " seed " << seed;
            for (RegIndex r = 0; r < numArchRegs; ++r) {
                ASSERT_EQ(coreOn.archReg(r), coreOff.archReg(r))
                    << "r" << r << " " << name << " seed " << seed;
            }
            ASSERT_TRUE(coreOn.memory().identicalTo(coreOff.memory()))
                << name << " seed " << seed;
            expectIdenticalStatsModuloRecovery(regOn, regOff, name, seed);
        }
    }
}
