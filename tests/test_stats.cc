/**
 * @file
 * Unit tests: statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

using namespace svw::stats;

TEST(Stats, ScalarCountsAndResets)
{
    StatRegistry reg;
    Scalar s(reg, "s", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 11u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageMean)
{
    StatRegistry reg;
    Average a(reg, "a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBuckets)
{
    StatRegistry reg;
    Distribution d(reg, "d", "dist", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(99);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.totalSamples(), 4u);
}

TEST(Stats, DistributionOverUnderflow)
{
    StatRegistry reg;
    Distribution d(reg, "d", "dist", 10, 20, 5);
    d.sample(5);
    d.sample(25);
    d.sample(15);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 15.0);
}

TEST(Stats, DistributionReset)
{
    StatRegistry reg;
    Distribution d(reg, "d", "dist", 0, 10, 5);
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.totalSamples(), 0u);
    EXPECT_EQ(d.bucketCount(1), 0u);
}

TEST(Stats, RegistryFindsByName)
{
    StatRegistry reg;
    Scalar s1(reg, "alpha", "");
    Scalar s2(reg, "beta", "");
    EXPECT_EQ(reg.find("alpha"), &s1);
    EXPECT_EQ(reg.find("beta"), &s2);
    EXPECT_EQ(reg.find("gamma"), nullptr);
}

TEST(Stats, RegistryResetAll)
{
    StatRegistry reg;
    Scalar s1(reg, "a", "");
    Scalar s2(reg, "b", "");
    s1 += 5;
    s2 += 7;
    reg.resetAll();
    EXPECT_EQ(s1.value(), 0u);
    EXPECT_EQ(s2.value(), 0u);
}

TEST(Stats, PrintContainsNameValueDesc)
{
    StatRegistry reg;
    Scalar s(reg, "core.widgets", "number of widgets");
    s += 42;
    std::ostringstream os;
    reg.printAll(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.widgets"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("number of widgets"), std::string::npos);
}

TEST(Stats, DistributionPrintSkipsEmptyBuckets)
{
    StatRegistry reg;
    Distribution d(reg, "d", "dist", 0, 100, 10);
    d.sample(55);
    std::ostringstream os;
    d.print(os);
    EXPECT_NE(os.str().find("[50,60)"), std::string::npos);
    EXPECT_EQ(os.str().find("[0,10)"), std::string::npos);
}

TEST(Stats, BadDistributionShapePanics)
{
    StatRegistry reg;
    EXPECT_THROW(Distribution(reg, "d", "", 10, 10, 5), std::logic_error);
    EXPECT_THROW(Distribution(reg, "d", "", 0, 10, 0), std::logic_error);
}

TEST(Stats, RegistryOrderPreserved)
{
    StatRegistry reg;
    Scalar s1(reg, "first", "");
    Scalar s2(reg, "second", "");
    ASSERT_EQ(reg.all().size(), 2u);
    EXPECT_EQ(reg.all()[0]->name(), "first");
    EXPECT_EQ(reg.all()[1]->name(), "second");
}

// ---------------------------------------------------------------------
// Hot-loop accumulator batching (Scalar::bind): the printed stat block
// must be byte-identical between direct counting and batched counting,
// through every observation path — mid-run value(), printAll with
// unflushed accumulators, an explicit flush boundary, and a mid-run
// reset() (the warm-up boundary).
// ---------------------------------------------------------------------

namespace {

/** Two registries with the same shape: A counts directly, B through
 * bound accumulators. Drives both with the same event sequence. */
struct BatchingRig
{
    StatRegistry regA, regB;
    Scalar a1, a2, b1, b2;
    std::uint64_t acc1 = 0, acc2 = 0;

    BatchingRig()
        : a1(regA, "core.events", "events observed"),
          a2(regA, "core.other", "other events"),
          b1(regB, "core.events", "events observed"),
          b2(regB, "core.other", "other events")
    {
        b1.bind(&acc1);
        b2.bind(&acc2);
    }

    void bump1(std::uint64_t n)
    {
        a1 += n;
        acc1 += n;  // hot path: plain field increment
    }
    void bump2(std::uint64_t n)
    {
        a2 += n;
        acc2 += n;
    }

    std::string printA() const
    {
        std::ostringstream os;
        regA.printAll(os);
        return os.str();
    }
    std::string printB() const
    {
        std::ostringstream os;
        regB.printAll(os);
        return os.str();
    }
};

} // namespace

TEST(StatsBatching, PrintByteIdenticalWithUnflushedAccumulators)
{
    BatchingRig r;
    r.bump1(37);
    r.bump2(5);
    EXPECT_EQ(r.b1.value(), 37u);
    EXPECT_EQ(r.b2.value(), 5u);
    EXPECT_EQ(r.printA(), r.printB());  // nothing flushed yet
}

TEST(StatsBatching, PrintByteIdenticalAcrossFlushBoundary)
{
    BatchingRig r;
    r.bump1(11);
    r.regB.flushAll();
    EXPECT_EQ(r.acc1, 0u) << "flush must drain the accumulator";
    r.bump1(4);             // post-boundary increments land on top
    ++r.a1;
    ++r.b1;                 // direct increment on a bound Scalar is legal
    r.bump2(9);
    EXPECT_EQ(r.b1.value(), 16u);
    EXPECT_EQ(r.printA(), r.printB());
}

TEST(StatsBatching, MidRunResetMatchesDirectCounters)
{
    BatchingRig r;
    // Warm-up phase.
    r.bump1(123);
    r.bump2(7);
    // Warm-up boundary: both registries reset; B's accumulators carry
    // unflushed counts that must die with the reset.
    r.regA.resetAll();
    r.regB.resetAll();
    EXPECT_EQ(r.acc1, 0u);
    EXPECT_EQ(r.b1.value(), 0u);
    // Measurement phase.
    r.bump1(31);
    r.bump2(2);
    EXPECT_EQ(r.b1.value(), 31u);
    EXPECT_EQ(r.printA(), r.printB());
    // Individual reset() of a bound Scalar also clears its accumulator.
    r.a1.reset();
    r.b1.reset();
    EXPECT_EQ(r.b1.value(), 0u);
    EXPECT_EQ(r.printA(), r.printB());
}
