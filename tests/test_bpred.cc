/**
 * @file
 * Unit tests: branch direction prediction, BTB, RAS, checkpointing.
 */

#include <gtest/gtest.h>

#include "cpu/bpred.hh"

using namespace svw;

namespace {

BPred
mkPred(stats::StatRegistry &reg)
{
    return BPred(BPredParams{}, reg);
}

} // namespace

TEST(BPred, LearnsAlwaysTaken)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    for (int i = 0; i < 8; ++i) {
        bp.train(0x40, true, bp.ghist());
        bp.speculativeUpdate(true);
    }
    EXPECT_TRUE(bp.predictDirection(0x40));
}

TEST(BPred, LearnsAlwaysNotTaken)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    for (int i = 0; i < 8; ++i)
        bp.train(0x40, false, bp.ghist());
    EXPECT_FALSE(bp.predictDirection(0x40));
}

TEST(BPred, GshareLearnsAlternatingPattern)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    // T N T N ... is history-predictable; train until stable then check.
    bool outcome = false;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        bp.train(0x80, outcome, bp.ghist());
        bp.speculativeUpdate(outcome);
    }
    int correct = 0;
    for (int i = 0; i < 40; ++i) {
        outcome = !outcome;
        correct += bp.predictDirection(0x80) == outcome;
        bp.train(0x80, outcome, bp.ghist());
        bp.speculativeUpdate(outcome);
    }
    EXPECT_GE(correct, 36);  // near perfect with history
}

TEST(BPred, BtbMissReturnsZero)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    EXPECT_EQ(bp.btbLookup(0x123), 0u);
}

TEST(BPred, BtbStoresAndUpdatesTargets)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    bp.btbUpdate(0x123, 0x777);
    EXPECT_EQ(bp.btbLookup(0x123), 0x777u);
    bp.btbUpdate(0x123, 0x888);
    EXPECT_EQ(bp.btbLookup(0x123), 0x888u);
}

TEST(BPred, BtbSetConflictEvictsLru)
{
    stats::StatRegistry reg;
    BPredParams p;
    p.btbEntries = 4;
    p.btbAssoc = 2;  // 2 sets
    BPred bp(p, reg);
    // Three PCs in the same set (set = pc & 1).
    bp.btbUpdate(0x10, 1);
    bp.btbUpdate(0x12, 2);
    bp.btbLookup(0x10);        // lookups don't refresh LRU; update does
    bp.btbUpdate(0x10, 1);
    bp.btbUpdate(0x14, 3);     // evicts 0x12
    EXPECT_EQ(bp.btbLookup(0x10), 1u);
    EXPECT_EQ(bp.btbLookup(0x14), 3u);
    EXPECT_EQ(bp.btbLookup(0x12), 0u);
}

TEST(BPred, RasPushPop)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    bp.rasPush(100);
    bp.rasPush(200);
    EXPECT_EQ(bp.rasPop(), 200u);
    EXPECT_EQ(bp.rasPop(), 100u);
}

TEST(BPred, RasRestoreAfterWrongPath)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    bp.rasPush(100);
    const auto ghist = bp.ghist();
    const auto top = bp.rasTop();
    const auto topVal = bp.rasTopValue();
    // Wrong path wrecks the stack.
    bp.rasPop();
    bp.rasPush(999);
    bp.rasPush(888);
    bp.restore(ghist, top, topVal);
    EXPECT_EQ(bp.rasPop(), 100u);
}

TEST(BPred, GhistSpeculativeUpdateAndRestore)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    const auto before = bp.ghist();
    bp.speculativeUpdate(true);
    bp.speculativeUpdate(false);
    EXPECT_EQ(bp.ghist(), ((before << 1 | 1) << 1));
    bp.restore(before, bp.rasTop(), bp.rasTopValue());
    EXPECT_EQ(bp.ghist(), before);
}

TEST(BPred, StatsCount)
{
    stats::StatRegistry reg;
    BPred bp = mkPred(reg);
    bp.predictDirection(1);
    bp.predictDirection(2);
    EXPECT_EQ(bp.lookups.value(), 2u);
}
