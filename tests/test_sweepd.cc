/**
 * @file
 * sweepd service-layer tests (service/server.hh). The daemon runs
 * in-process on an ephemeral port with the event loop on a background
 * thread, driven by raw blocking client sockets — no HTTP library, so
 * the tests see exactly the bytes a curl client would. Pinned
 * contracts: the streamed result lines are byte-identical to the
 * engine's sequential results (and hence to the CLI binaries), a warm
 * repeat request simulates nothing, N concurrent clients each receive
 * complete well-formed streams, a mid-stream client disconnect aborts
 * only that session and leaves the daemon serving, and malformed or
 * oversized requests are rejected with 400 without crashing.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/executor.hh"
#include "harness/figures.hh"
#include "harness/serialize.hh"
#include "harness/sweep.hh"
#include "service/server.hh"

using namespace svw;
using namespace svw::service;

namespace {

/** One in-process daemon on an ephemeral port, loop on a thread. */
class SweepdTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        SweepdOptions opts;
        opts.port = 0;
        opts.quiet = true;
        server_ = std::make_unique<SweepServer>(opts);
        loop_ = std::thread([this] { server_->run(); });
    }

    void TearDown() override
    {
        server_->requestStop();
        loop_.join();
        server_.reset();
    }

    unsigned port() const { return server_->port(); }

    std::unique_ptr<SweepServer> server_;
    std::thread loop_;
};

int
connectTo(unsigned port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    timeval tv{60, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
}

std::string
readAll(int fd)
{
    std::string out;
    char chunk[8192];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
}

std::string
request(unsigned port, const std::string &raw)
{
    const int fd = connectTo(port);
    EXPECT_GE(fd, 0);
    sendAll(fd, raw);
    const std::string resp = readAll(fd);
    ::close(fd);
    return resp;
}

std::string
postSweep(unsigned port, const std::string &body)
{
    return request(port,
                   "POST /sweep HTTP/1.1\r\n"
                   "Host: localhost\r\n"
                   "Content-Type: application/x-www-form-urlencoded\r\n"
                   "Content-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string
getPath(unsigned port, const std::string &path)
{
    return request(port, "GET " + path +
                             " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

/** Split a raw response into (head, chunk-decoded body). The body
 * must be complete: a missing terminating chunk fails the test. */
std::string
decodeChunkedBody(const std::string &raw, bool *complete = nullptr)
{
    const std::size_t headEnd = raw.find("\r\n\r\n");
    EXPECT_NE(headEnd, std::string::npos);
    std::string body;
    bool sawFinal = false;
    std::size_t pos = headEnd + 4;
    while (pos < raw.size()) {
        const std::size_t lineEnd = raw.find("\r\n", pos);
        if (lineEnd == std::string::npos)
            break;
        const std::size_t len =
            std::stoull(raw.substr(pos, lineEnd - pos), nullptr, 16);
        pos = lineEnd + 2;
        if (len == 0) {
            sawFinal = true;
            break;
        }
        body += raw.substr(pos, len);
        pos += len + 2;  // skip chunk data and its trailing CRLF
    }
    if (complete)
        *complete = sawFinal;
    else
        EXPECT_TRUE(sawFinal) << "stream not terminated";
    return body;
}

/** The lossless per-cell result lines of a stream, in stream order. */
std::vector<std::string>
streamResultLines(const std::string &body)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t end = body.find('\n', pos);
        if (end == std::string::npos)
            end = body.size();
        const std::string line = body.substr(pos, end - pos);
        pos = end + 1;
        if (line.rfind("{\"workload\"", 0) == 0)
            lines.push_back(line);
    }
    return lines;
}

} // namespace

TEST_F(SweepdTest, StatusAndFiguresEndpointsRespond)
{
    const std::string status = getPath(port(), "/status");
    EXPECT_NE(status.find("200 OK"), std::string::npos);
    EXPECT_NE(status.find("\"memCacheEntries\""), std::string::npos);
    EXPECT_NE(status.find("\"programBuilds\""), std::string::npos);

    const std::string figures = getPath(port(), "/figures");
    EXPECT_NE(figures.find("\"fig5\""), std::string::npos);
    EXPECT_NE(figures.find("\"ext_svw_replace\""), std::string::npos);

    EXPECT_NE(getPath(port(), "/nope").find("404"), std::string::npos);
}

TEST_F(SweepdTest, StreamedResultsMatchEngineByteForByte)
{
    // The CLI binaries serialize the same engine outcomes with the
    // same runResultToJson, so matching the engine's sequential
    // results in spec order IS matching the CLI at --jobs=1.
    const harness::SweepSpec spec =
        harness::fig5Spec({"gzip"}, 11'000);
    const harness::SweepResults direct =
        runSweep(spec, harness::SweepOptions{});
    std::vector<std::string> expect;
    for (std::size_t i = 0; i < spec.size(); ++i)
        expect.push_back(
            harness::runResultToJson(direct.outcome(i).result));

    const std::string resp =
        postSweep(port(), "figure=fig5&insts=11000&bench=gzip");
    EXPECT_NE(resp.find("200 OK"), std::string::npos);
    const std::string body = decodeChunkedBody(resp);
    EXPECT_EQ(streamResultLines(body), expect);
    EXPECT_NE(body.find("\"event\":\"finished\""), std::string::npos);
}

TEST_F(SweepdTest, WarmRepeatRequestSimulatesNothing)
{
    const std::string req = "figure=fig6&insts=9000&bench=mcf";
    const std::string cold = postSweep(port(), req);
    const std::string coldBody = decodeChunkedBody(cold);
    const std::uint64_t callsAfterCold = harness::runCellCalls();
    ASSERT_FALSE(streamResultLines(coldBody).empty());

    const std::string warm = postSweep(port(), req);
    const std::string warmBody = decodeChunkedBody(warm);
    EXPECT_EQ(harness::runCellCalls(), callsAfterCold)
        << "warm repeat re-simulated cells";
    EXPECT_NE(warmBody.find("\"event\":\"cached\""), std::string::npos);
    EXPECT_EQ(warmBody.find("\"event\":\"done\""), std::string::npos);
    // Same results, bit for bit, out of the memory cache.
    EXPECT_EQ(streamResultLines(warmBody), streamResultLines(coldBody));
}

TEST_F(SweepdTest, ConcurrentClientsEachGetCompleteStreams)
{
    const std::vector<std::string> benches = {"gzip", "mcf", "crafty"};
    std::vector<std::string> responses(benches.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        clients.emplace_back([this, i, &benches, &responses] {
            responses[i] = postSweep(
                port(),
                "figure=fig7&insts=5000&bench=" + benches[i]);
        });
    }
    for (auto &t : clients)
        t.join();

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string body = decodeChunkedBody(responses[i]);
        EXPECT_NE(body.find("\"event\":\"finished\""),
                  std::string::npos)
            << benches[i];
        // fig7 has five configs per row: five result lines, each for
        // this client's own workload only.
        const auto lines = streamResultLines(body);
        EXPECT_EQ(lines.size(), 5u) << benches[i];
        for (const auto &l : lines)
            EXPECT_NE(
                l.find("\"workload\":\"" + benches[i] + "\""),
                std::string::npos);
    }
}

TEST_F(SweepdTest, MidStreamDisconnectAbortsOnlyThatSession)
{
    const std::uint64_t callsBefore = harness::runCellCalls();

    // A full-suite sweep (80 cells) the client walks away from after
    // the first bytes arrive.
    const std::string body = "figure=fig5&insts=21000";
    const int fd = connectTo(port());
    ASSERT_GE(fd, 0);
    sendAll(fd,
            "POST /sweep HTTP/1.1\r\nHost: localhost\r\n"
            "Content-Length: " +
                std::to_string(body.size()) + "\r\n\r\n" + body);
    char first[64];
    ASSERT_GT(::read(fd, first, sizeof(first)), 0);  // stream started
    ::close(fd);  // mid-stream disconnect

    // The daemon must notice, abort that session alone, and keep
    // serving. Poll /status until the session is gone.
    bool aborted = false;
    for (int i = 0; i < 600 && !aborted; ++i) {
        const std::string status = getPath(port(), "/status");
        ASSERT_NE(status.find("200 OK"), std::string::npos);
        aborted =
            status.find("\"activeSessions\":0") != std::string::npos;
        if (!aborted)
            ::usleep(50'000);
    }
    EXPECT_TRUE(aborted);

    // Abort discarded pending units: nowhere near all 80 cells ran.
    EXPECT_LT(harness::runCellCalls() - callsBefore, 40u);

    // And an unrelated request still completes.
    const std::string ok =
        postSweep(port(), "figure=fig5&insts=5000&bench=vortex");
    EXPECT_NE(decodeChunkedBody(ok).find("\"event\":\"finished\""),
              std::string::npos);
}

TEST_F(SweepdTest, MalformedAndOversizedRequestsGet400)
{
    EXPECT_NE(request(port(), "BOGUS\r\n\r\n").find("400 Bad Request"),
              std::string::npos);
    EXPECT_NE(request(port(), "GET /status TELNET/9\r\n\r\n")
                  .find("400 Bad Request"),
              std::string::npos);

    // Declared body far over the cap: rejected up front, not buffered.
    EXPECT_NE(request(port(),
                      "POST /sweep HTTP/1.1\r\n"
                      "Content-Length: 10000000\r\n\r\n")
                  .find("400 Bad Request"),
              std::string::npos);

    // Unknown figure and malformed knobs are request errors too.
    EXPECT_NE(postSweep(port(), "figure=fig99").find("400"),
              std::string::npos);
    EXPECT_NE(postSweep(port(), "figure=fig5&insts=ten").find("400"),
              std::string::npos);
    EXPECT_NE(postSweep(port(), "figure=fig5&bench=gzip2").find("400"),
              std::string::npos);

    // The daemon survived all of it.
    EXPECT_NE(getPath(port(), "/status").find("200 OK"),
              std::string::npos);
}

TEST_F(SweepdTest, ThreadedSessionStreamsIdenticalResults)
{
    // Cold request on session worker threads first (exercises the
    // wakeFd drain path), then a sequential warm repeat of the same
    // cells. Completion order differs; the result bytes must not —
    // compare sorted.
    const std::string thr = postSweep(
        port(), "figure=fig8&insts=6000&bench=vpr.r&threads=2");
    const std::string seq =
        postSweep(port(), "figure=fig8&insts=6000&bench=vpr.r");
    auto a = streamResultLines(decodeChunkedBody(thr));
    auto b = streamResultLines(decodeChunkedBody(seq));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    ASSERT_FALSE(a.empty());
}
