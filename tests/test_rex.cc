/**
 * @file
 * Unit tests: the re-execution engine driven directly through a
 * hand-built ROB — SVW-stage ordering, filtering, port arbitration,
 * store buffering, value comparison, and the store-commit
 * serialization rule.
 */

#include <gtest/gtest.h>

#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "func/memory_image.hh"
#include "mem/port.hh"
#include "rex/rex_engine.hh"
#include "svw/svw.hh"

using namespace svw;

namespace {

struct RexFixture : ::testing::Test
{
    RexFixture()
        : rename(64), rob(32), port(1)
    {
    }

    void build(bool svwEnabled, bool perfect = false,
               bool speculativeUpdates = true)
    {
        SvwConfig sc;
        sc.enabled = svwEnabled;
        sc.speculativeSsbfUpdate = speculativeUpdates;
        svwUnit = std::make_unique<SvwUnit>(sc, reg);
        RexParams rp;
        rp.enabled = true;
        rp.perfect = perfect;
        rp.cacheLatency = 2;
        rp.storeBufferEntries = 4;
        rex = std::make_unique<RexEngine>(rp, mem, *svwUnit, port, reg);
    }

    /** Append a completed load with a recorded value. */
    DynInst &addLoad(InstSeqNum seq, Addr addr, std::uint64_t val,
                     bool marked, SSN svw = 0)
    {
        DynInst d;
        d.setStatic(&ld8);
        d.seq = seq;
        d.addr = addr;
        d.size = 8;
        d.addrResolved = true;
        d.loadValue = val;
        d.completed = true;
        d.issued = true;
        if (marked)
            d.rexReasons = RexSsqAll;
        d.svw = svw;
        d.svwValid = true;
        return rob.push(std::move(d));
    }

    /** Append a completed store. */
    DynInst &addStore(InstSeqNum seq, Addr addr, std::uint64_t val,
                      SSN ssn)
    {
        DynInst d;
        d.setStatic(&st8);
        d.seq = seq;
        d.addr = addr;
        d.size = 8;
        d.addrResolved = true;
        d.dataResolved = true;
        d.storeData = val;
        d.completed = true;
        d.issued = true;
        d.ssn = ssn;
        return rob.push(std::move(d));
    }

    StaticInst ld8{Opcode::Ld8, 1, 2, 0, 0};
    StaticInst st8{Opcode::St8, 0, 2, 3, 0};

    stats::StatRegistry reg;
    MemoryImage mem;
    RenameState rename;
    ROB rob;
    CyclePort port;
    std::unique_ptr<SvwUnit> svwUnit;
    std::unique_ptr<RexEngine> rex;
};

} // namespace

TEST_F(RexFixture, UnmarkedLoadPassesWithoutCacheAccess)
{
    build(false);
    addLoad(1, 0x100, 7, /*marked=*/false);
    rex->tick(rob, rename, 10);
    DynInst *ld = rob.findBySeq(1);
    EXPECT_TRUE(ld->rexProcessed);
    EXPECT_TRUE(ld->rexPassed);
    EXPECT_EQ(rex->loadsReExecuted.value(), 0u);
}

TEST_F(RexFixture, MarkedLoadReExecutesAndPasses)
{
    build(false);
    mem.write(0x100, 8, 7);
    addLoad(1, 0x100, 7, true);
    rex->tick(rob, rename, 10);
    DynInst *ld = rob.findBySeq(1);
    EXPECT_TRUE(ld->rexDone);
    EXPECT_TRUE(ld->rexPassed);
    EXPECT_EQ(ld->rexDoneCycle, 12u);  // 2-cycle cache access
    EXPECT_EQ(rex->loadsReExecuted.value(), 1u);
}

TEST_F(RexFixture, ValueMismatchFails)
{
    build(false);
    mem.write(0x100, 8, 99);
    addLoad(1, 0x100, 7, true);  // original execution read 7
    rex->tick(rob, rename, 10);
    EXPECT_FALSE(rob.findBySeq(1)->rexPassed);
    EXPECT_EQ(rex->loadsRexFailed.value(), 1u);
}

TEST_F(RexFixture, SilentStoreDifferenceInvisible)
{
    build(false);
    // Memory already holds what the (silent) store wrote: values match.
    mem.write(0x100, 8, 7);
    addLoad(1, 0x100, 7, true);
    rex->tick(rob, rename, 10);
    EXPECT_TRUE(rob.findBySeq(1)->rexPassed);
}

TEST_F(RexFixture, InOrderStallAtIncompleteMemOp)
{
    build(false);
    DynInst &st = addStore(1, 0x200, 5, 1);
    st.completed = false;  // address known, data still in flight
    st.dataResolved = false;
    addLoad(2, 0x100, 0, true);
    rex->tick(rob, rename, 10);
    EXPECT_FALSE(rob.findBySeq(2)->rexProcessed)
        << "rex must not pass the incomplete older store";
}

TEST_F(RexFixture, StoreUpdatesSsbfAtSvwStage)
{
    build(true);
    addStore(1, 0x300, 5, 7);
    rex->tick(rob, rename, 10);
    EXPECT_TRUE(rob.findBySeq(1)->rexProcessed);
    EXPECT_EQ(svwUnit->ssbf().updates.value(), 1u);
}

TEST_F(RexFixture, SvwFiltersInvulnerableLoad)
{
    build(true);
    mem.write(0x100, 8, 7);
    addLoad(1, 0x100, 7, true, /*svw=*/50);  // nothing newer wrote 0x100
    rex->tick(rob, rename, 10);
    DynInst *ld = rob.findBySeq(1);
    EXPECT_TRUE(ld->rexFiltered);
    EXPECT_TRUE(ld->rexPassed);
    EXPECT_EQ(rex->loadsReExecuted.value(), 0u);
    EXPECT_EQ(rex->loadsRexSkippedSvw.value(), 1u);
}

TEST_F(RexFixture, SvwForcesReExecutionOnConflict)
{
    build(true);
    mem.write(0x100, 8, 7);
    addStore(1, 0x100, 7, 60);
    addLoad(2, 0x100, 7, true, /*svw=*/50);  // vulnerable to SSN 60
    rex->tick(rob, rename, 10);
    DynInst *ld = rob.findBySeq(2);
    EXPECT_FALSE(ld->rexFiltered);
    EXPECT_EQ(rex->loadsReExecuted.value(), 1u);
}

TEST_F(RexFixture, RexLoadReadsBufferedOlderStore)
{
    build(false);
    mem.write(0x100, 8, 1);       // stale committed value
    addStore(1, 0x100, 42, 7);    // passed rex, not yet committed
    addLoad(2, 0x100, 42, true);  // original execution forwarded 42
    rex->tick(rob, rename, 10);
    rex->tick(rob, rename, 11);
    EXPECT_TRUE(rob.findBySeq(2)->rexPassed)
        << "re-execution must see the in-order store buffer";
}

TEST_F(RexFixture, PartialOverlapOverlayBytewise)
{
    build(false);
    mem.write(0x100, 8, 0);
    DynInst &st = addStore(1, 0x104, 0xdd, 7);
    st.size = 4;  // 4-byte store over the upper half of the quadword
    addLoad(2, 0x100, 0x000000dd00000000ull, true);
    rex->tick(rob, rename, 10);
    rex->tick(rob, rename, 11);
    EXPECT_TRUE(rob.findBySeq(2)->rexPassed);
}

TEST_F(RexFixture, PortContentionStallsRex)
{
    build(false);
    mem.write(0x100, 8, 7);
    addLoad(1, 0x100, 7, true);
    ASSERT_TRUE(port.tryClaim(10));  // commit already took the port
    rex->tick(rob, rename, 10);
    EXPECT_FALSE(rob.findBySeq(1)->rexDone);
    EXPECT_EQ(rex->portConflictStalls.value(), 1u);
    rex->tick(rob, rename, 11);  // port free next cycle
    EXPECT_TRUE(rob.findBySeq(1)->rexDone);
}

TEST_F(RexFixture, StoreBufferCapacityStalls)
{
    build(false);
    for (InstSeqNum s = 1; s <= 5; ++s)
        addStore(s, 0x100 + 8 * s, s, s);
    rex->tick(rob, rename, 10);  // width 4: stores 1-4 fill the buffer
    rex->tick(rob, rename, 11);  // store 5 stalls on the full buffer
    EXPECT_TRUE(rob.findBySeq(4)->rexProcessed);
    EXPECT_FALSE(rob.findBySeq(5)->rexProcessed);  // buffer holds 4
    EXPECT_GT(rex->storeBufferStalls.value(), 0u);
    // Committing the head store frees a slot.
    rex->storeCommitted(*rob.findBySeq(1));
    rob.popHead();
    rex->tick(rob, rename, 12);
    EXPECT_TRUE(rob.findBySeq(5)->rexProcessed);
}

TEST_F(RexFixture, StoreCommitWaitsForOlderLoadRex)
{
    build(false);
    mem.write(0x100, 8, 7);
    addLoad(1, 0x100, 7, true);
    addStore(2, 0x200, 5, 1);
    rex->tick(rob, rename, 10);  // load takes the port at cycle 10
    rex->tick(rob, rename, 11);  // store passes rex
    DynInst *st = rob.findBySeq(2);
    ASSERT_TRUE(st->rexProcessed);
    // The load's re-execution completes at 12; the store may not
    // commit earlier (the paper's critical serialization).
    EXPECT_GE(rex->storeCommitReadyCycle(*st), 12u);
}

TEST_F(RexFixture, PerfectRexIsFreeAndStillDetects)
{
    build(false, /*perfect=*/true);
    mem.write(0x100, 8, 99);
    addLoad(1, 0x100, 7, true);
    ASSERT_TRUE(port.tryClaim(10));  // port busy: perfect doesn't care
    rex->tick(rob, rename, 10);
    DynInst *ld = rob.findBySeq(1);
    EXPECT_TRUE(ld->rexDone);
    EXPECT_FALSE(ld->rexPassed);
    EXPECT_EQ(ld->rexDoneCycle, 10u);
}

TEST_F(RexFixture, AtomicSsbfUpdateSerializesBehindStores)
{
    build(true, false, /*speculativeUpdates=*/false);
    mem.write(0x100, 8, 7);
    addStore(1, 0x200, 5, 1);
    addLoad(2, 0x100, 7, true, 50);
    rex->tick(rob, rename, 10);  // store buffered; SSBF NOT yet updated
    EXPECT_EQ(svwUnit->ssbf().updates.value(), 0u);
    rex->tick(rob, rename, 11);
    EXPECT_FALSE(rob.findBySeq(2)->rexProcessed)
        << "marked load must wait for older store's commit-time update";
    rex->storeCommitted(*rob.findBySeq(1));
    EXPECT_EQ(svwUnit->ssbf().updates.value(), 1u);
    rob.popHead();
    rex->tick(rob, rename, 12);
    EXPECT_TRUE(rob.findBySeq(2)->rexProcessed);
}

TEST_F(RexFixture, SquashRewindsRexState)
{
    build(false);
    addStore(1, 0x100, 5, 1);
    addStore(2, 0x108, 6, 2);
    rex->tick(rob, rename, 10);
    rex->squashAfter(1);
    while (!rob.empty() && rob.tail().seq > 1)
        rob.popTail();
    // Seq 2 is gone; a new store with seq 3 processes cleanly.
    addStore(3, 0x110, 7, 2);
    rex->tick(rob, rename, 11);
    EXPECT_TRUE(rob.findBySeq(3)->rexProcessed);
    // Commit order: 1 then 3.
    rex->storeCommitted(*rob.findBySeq(1));
    rex->storeCommitted(*rob.findBySeq(3));
}

TEST_F(RexFixture, WidthLimitsSvwStageThroughput)
{
    build(false);
    SvwConfig sc;
    RexParams rp;
    rp.enabled = true;
    rp.width = 2;
    svwUnit = std::make_unique<SvwUnit>(sc, reg);
    rex = std::make_unique<RexEngine>(rp, mem, *svwUnit, port, reg);
    for (InstSeqNum s = 1; s <= 4; ++s)
        addLoad(s, 0x100 + 8 * s, 0, /*marked=*/false);
    // Unmarked loads still occupy rex slots? No: they are free transit.
    rex->tick(rob, rename, 10);
    EXPECT_TRUE(rob.findBySeq(4)->rexProcessed);
}
