/**
 * @file
 * Unit tests: base utilities (logging, random, intmath).
 */

#include <gtest/gtest.h>

#include <set>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/random.hh"

using namespace svw;

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(svw_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(svw_fatal("user error ", "x"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(svw_assert(1 + 1 == 2, "fine"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(svw_assert(false, "nope"), std::logic_error);
}

TEST(Random, DeterministicFromSeed)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Random, ZeroSeedRemapped)
{
    Random a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Random, BoundedStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Random, BoundedZeroPanics)
{
    Random r(7);
    EXPECT_THROW(r.nextBounded(0), std::logic_error);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        auto v = r.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(Random, ChancePermilleExtremes)
{
    Random r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chancePermille(0));
        EXPECT_TRUE(r.chancePermille(1000));
    }
}

TEST(Random, DoubleInUnitInterval)
{
    Random r(13);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, ReSeedRestartsSequence)
{
    Random r(21);
    auto v1 = r.next();
    r.seed(21);
    EXPECT_EQ(r.next(), v1);
}

TEST(IntMath, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(IntMath, ExactLog2PanicsOnNonPower)
{
    EXPECT_EQ(exactLog2(64), 6u);
    EXPECT_THROW(exactLog2(65), std::logic_error);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
    EXPECT_EQ(alignDown(0x1240, 16), 0x1240u);
}

TEST(IntMath, RangesOverlap)
{
    EXPECT_TRUE(rangesOverlap(0, 8, 4, 8));
    EXPECT_TRUE(rangesOverlap(4, 8, 0, 8));
    EXPECT_TRUE(rangesOverlap(0, 8, 0, 1));
    EXPECT_FALSE(rangesOverlap(0, 8, 8, 8));
    EXPECT_FALSE(rangesOverlap(8, 8, 0, 8));
    EXPECT_FALSE(rangesOverlap(0, 1, 1, 1));
}

TEST(IntMath, RangeContains)
{
    EXPECT_TRUE(rangeContains(0, 8, 0, 8));
    EXPECT_TRUE(rangeContains(0, 8, 4, 4));
    EXPECT_TRUE(rangeContains(0, 8, 7, 1));
    EXPECT_FALSE(rangeContains(0, 8, 4, 8));
    EXPECT_FALSE(rangeContains(4, 4, 0, 8));
    EXPECT_FALSE(rangeContains(4, 4, 3, 1));
}

/** Property: alignDown(a) <= a < alignDown(a) + align. */
class AlignProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AlignProperty, DownUpInvariants)
{
    Random r(GetParam());
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = r.next() >> 8;
        const std::uint64_t al = 1ull << r.nextBounded(12);
        EXPECT_LE(alignDown(a, al), a);
        EXPECT_LT(a - alignDown(a, al), al);
        EXPECT_GE(alignUp(a, al), a);
        EXPECT_LT(alignUp(a, al) - a, al);
        EXPECT_EQ(alignDown(a, al) % al, 0u);
        EXPECT_EQ(alignUp(a, al) % al, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));
