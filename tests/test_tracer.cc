/**
 * @file
 * Unit tests: the pipeline event tracer — event counts are consistent
 * with retirement stats, the text formatter produces the documented
 * format, and detaching the tracer is safe.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "cpu/core.hh"
#include "cpu/tracer.hh"
#include "harness/config.hh"
#include "prog/builder.hh"

using namespace svw;
using namespace svw::harness;

namespace {

Program
smallLoop(int iters)
{
    ProgramBuilder b("traced");
    Addr buf = b.allocData(256);
    b.loadAddr(1, buf);
    b.movi(2, 0);
    b.movi(3, iters);
    Label loop = b.newLabel();
    b.bind(loop);
    b.st8(2, 1, 0);
    b.ld8(4, 1, 0);
    b.add(5, 5, 4);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

} // namespace

TEST(Tracer, EventNamesDistinct)
{
    std::set<std::string> names;
    for (unsigned e = 0; e < 8; ++e)
        names.insert(traceEventName(static_cast<TraceEvent>(e)));
    EXPECT_EQ(names.size(), 8u);
}

TEST(Tracer, CountsMatchRetirementStats)
{
    Program prog = smallLoop(50);
    stats::StatRegistry reg;
    ExperimentConfig cfg;
    cfg.opt = OptMode::Ssq;
    cfg.svw = SvwMode::Upd;
    Core core(buildParams(cfg), prog, reg);
    CountingTracer tracer;
    core.setTracer(&tracer);
    RunOutcome out = core.run(~0ull, 1'000'000);
    ASSERT_TRUE(out.halted);

    EXPECT_EQ(tracer.count(TraceEvent::Commit), out.instructions);
    // Everything committed was fetched and dispatched at least once.
    EXPECT_GE(tracer.count(TraceEvent::Fetch), out.instructions);
    EXPECT_GE(tracer.count(TraceEvent::Dispatch), out.instructions);
    // Issue excludes nop/halt/eliminated; it is bounded by dispatch.
    EXPECT_LE(tracer.count(TraceEvent::Issue),
              tracer.count(TraceEvent::Dispatch));
    // Marked loads that retire cleanly report a rex pass.
    const auto *marked = dynamic_cast<const stats::Scalar *>(
        reg.find("core.retiredLoads"));
    EXPECT_GE(tracer.count(TraceEvent::RexPass), marked->value() - 2);
}

TEST(Tracer, SquashEventsOnMispredicts)
{
    Program prog = smallLoop(100);
    stats::StatRegistry reg;
    ExperimentConfig cfg;
    Core core(buildParams(cfg), prog, reg);
    CountingTracer tracer;
    core.setTracer(&tracer);
    core.run(~0ull, 1'000'000);
    const auto *sq = dynamic_cast<const stats::Scalar *>(
        reg.find("core.branchSquashes"));
    if (sq->value() > 0) {
        EXPECT_GT(tracer.count(TraceEvent::Squash), 0u);
    }
}

TEST(Tracer, TextFormat)
{
    std::ostringstream os;
    Tracer tracer(os);
    StaticInst ld{Opcode::Ld8, 3, 1, 0, 16};
    DynInst d;
    d.setStatic(&ld);
    d.seq = 7;
    d.pc = 42;
    d.addr = 0x1000;
    d.size = 8;
    d.addrResolved = true;
    d.rexReasons = RexSsqAll;
    d.svw = 99;
    tracer.event(123, TraceEvent::Issue, d);
    tracer.note(124, "wrapDrain", 1);
    const std::string s = os.str();
    EXPECT_NE(s.find("123"), std::string::npos);
    EXPECT_NE(s.find("seq=7"), std::string::npos);
    EXPECT_NE(s.find("pc=42"), std::string::npos);
    EXPECT_NE(s.find("ld8 r3, 16(r1)"), std::string::npos);
    EXPECT_NE(s.find("addr=0x1000"), std::string::npos);
    EXPECT_NE(s.find("svw=99"), std::string::npos);
    EXPECT_NE(s.find("wrapDrain"), std::string::npos);
}

TEST(Tracer, DetachingIsSafe)
{
    Program prog = smallLoop(20);
    stats::StatRegistry reg;
    ExperimentConfig cfg;
    Core core(buildParams(cfg), prog, reg);
    CountingTracer tracer;
    core.setTracer(&tracer);
    for (int i = 0; i < 50; ++i)
        core.tick();
    core.setTracer(nullptr);
    RunOutcome out = core.run(~0ull, 1'000'000);
    EXPECT_TRUE(out.halted);
}
