/**
 * @file
 * Unit tests: the load-store unit driven directly — SQ forwarding and
 * extraction, partial overlaps, ambiguity detection, LQ violation
 * search (value-blind and value-aware), FSQ search and port limits,
 * best-effort buffers, steering, and queue management.
 */

#include <gtest/gtest.h>

#include "cpu/rob.hh"
#include "lsu/lsu.hh"

using namespace svw;

namespace {

struct LsuFixture : ::testing::Test
{
    LsuFixture() : rob(64) {}

    void build(LsuParams p = LsuParams{})
    {
        svwUnit = std::make_unique<SvwUnit>(SvwConfig{}, reg);
        lsu = std::make_unique<LoadStoreUnit>(p, mem, *svwUnit, reg);
    }

    DynInst &addStore(InstSeqNum seq, Addr addr, unsigned size,
                      std::uint64_t data, bool resolved = true,
                      SSN ssn = 0)
    {
        DynInst d;
        d.setStatic(&st8);
        d.seq = seq;
        d.pc = seq;  // unique PCs
        d.addr = addr;
        d.size = size;
        d.storeData = data;
        d.addrResolved = resolved;
        d.dataResolved = resolved;
        d.issued = resolved;
        d.ssn = ssn ? ssn : seq;
        DynInst &r = rob.push(std::move(d));
        lsu->dispatchStore(r);
        return r;
    }

    DynInst &addLoad(InstSeqNum seq, Addr addr, unsigned size)
    {
        DynInst d;
        d.setStatic(&ld8);
        d.seq = seq;
        d.pc = seq;
        d.addr = addr;
        d.size = size;
        DynInst &r = rob.push(std::move(d));
        lsu->dispatchLoad(r);
        return r;
    }

    StaticInst ld8{Opcode::Ld8, 1, 2, 0, 0};
    StaticInst st8{Opcode::St8, 0, 2, 3, 0};

    stats::StatRegistry reg;
    MemoryImage mem;
    ROB rob;
    std::unique_ptr<SvwUnit> svwUnit;
    std::unique_ptr<LoadStoreUnit> lsu;
};

} // namespace

TEST_F(LsuFixture, LoadReadsCommittedMemoryWithoutStores)
{
    build();
    mem.write(0x100, 8, 0x1234);
    DynInst &ld = addLoad(1, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_EQ(res.status, LoadExecResult::Status::Done);
    EXPECT_EQ(res.value, 0x1234u);
    EXPECT_FALSE(res.forwarded);
}

TEST_F(LsuFixture, FullCoverForwarding)
{
    build();
    addStore(1, 0x100, 8, 0xabcdef);
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_TRUE(res.forwarded);
    EXPECT_EQ(res.value, 0xabcdefu);
    EXPECT_EQ(res.fwdSsn, 1u);
    EXPECT_EQ(lsu->forwards.value(), 1u);
}

TEST_F(LsuFixture, SubsetForwardExtractsAndZeroExtends)
{
    build();
    addStore(1, 0x100, 8, 0x8877665544332211ull);
    DynInst &ld4 = addLoad(2, 0x104, 4);
    auto res = lsu->executeLoad(ld4, 0);
    EXPECT_TRUE(res.forwarded);
    EXPECT_EQ(res.value, 0x88776655u);
    DynInst &ld1 = addLoad(3, 0x103, 1);
    res = lsu->executeLoad(ld1, 0);
    EXPECT_EQ(res.value, 0x44u);
}

TEST_F(LsuFixture, YoungestMatchingStoreWins)
{
    build();
    addStore(1, 0x100, 8, 111);
    addStore(2, 0x100, 8, 222);
    DynInst &ld = addLoad(3, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_EQ(res.value, 222u);
    EXPECT_EQ(res.fwdSsn, 2u);
}

TEST_F(LsuFixture, YoungerStoreInvisibleToOlderLoad)
{
    build();
    mem.write(0x100, 8, 5);
    DynInst &ld = addLoad(1, 0x100, 8);
    addStore(2, 0x100, 8, 999);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_FALSE(res.forwarded);
    EXPECT_EQ(res.value, 5u);
}

TEST_F(LsuFixture, PartialOverlapBlocks)
{
    build();
    addStore(1, 0x104, 4, 0xdead);
    DynInst &ld = addLoad(2, 0x100, 8);  // store covers only half
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_EQ(res.status, LoadExecResult::Status::BlockedPartial);
    EXPECT_EQ(lsu->partialBlocks.value(), 1u);
}

TEST_F(LsuFixture, MatchingStoreWithoutDataBlocks)
{
    build();
    DynInst &st = addStore(1, 0x100, 8, 0, true);
    st.dataResolved = false;  // address known, data still in flight
    lsu->refreshSqMirror(st);
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_EQ(res.status, LoadExecResult::Status::BlockedPartial);
}

TEST_F(LsuFixture, AmbiguousOlderStoreReported)
{
    build();
    addStore(1, 0, 8, 0, /*resolved=*/false);
    mem.write(0x100, 8, 9);
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_EQ(res.status, LoadExecResult::Status::Done);
    EXPECT_TRUE(res.sawAmbiguousOlderStore);
    EXPECT_EQ(res.value, 9u);  // speculative read of committed state
}

TEST_F(LsuFixture, AmbiguityHiddenBehindYoungerForwarder)
{
    build();
    addStore(1, 0, 8, 0, /*resolved=*/false);  // older ambiguous
    addStore(2, 0x100, 8, 77);                 // younger, resolved
    DynInst &ld = addLoad(3, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_TRUE(res.forwarded);
    // The forwarder is younger than the ambiguity: the load is NOT
    // vulnerable to the unresolved store (natural-filter precision).
    EXPECT_FALSE(res.sawAmbiguousOlderStore);
}

TEST_F(LsuFixture, LqSearchFindsPrematureLoad)
{
    build();
    DynInst &st = addStore(1, 0x100, 8, 1, /*resolved=*/false);
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    ld.issued = true;
    ld.addrResolved = true;
    ld.loadValue = res.value;
    // The store now resolves to the same address: violation.
    st.addr = 0x100;
    st.size = 8;
    st.addrResolved = true;
    EXPECT_EQ(lsu->storeResolved(st), 2u);
    EXPECT_EQ(lsu->lqViolations.value(), 1u);
}

TEST_F(LsuFixture, LqSearchSkipsUnissuedAndNonOverlapping)
{
    build();
    DynInst &st = addStore(1, 0x100, 8, 1);
    addLoad(2, 0x100, 8);            // never issued
    DynInst &far = addLoad(3, 0x900, 8);
    far.issued = true;
    far.addrResolved = true;
    EXPECT_EQ(lsu->storeResolved(st), 0u);
}

TEST_F(LsuFixture, LqSearchSkipsForwardedFromYoungerStore)
{
    build();
    DynInst &st1 = addStore(1, 0x100, 8, 1, false);
    addStore(2, 0x100, 8, 2);
    DynInst &ld = addLoad(3, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    ld.issued = true;
    ld.addrResolved = true;
    ld.forwarded = res.forwarded;
    ld.fwdStoreSSN = res.fwdSsn;
    ASSERT_TRUE(res.forwarded);
    st1.addr = 0x100;
    st1.addrResolved = true;
    EXPECT_EQ(lsu->storeResolved(st1), 0u)
        << "load took its value from a younger store; no violation";
}

TEST_F(LsuFixture, ValueAwareLqSearchIgnoresSilentStores)
{
    LsuParams p;
    p.lqValueCheck = true;
    build(p);
    mem.write(0x100, 8, 42);
    DynInst &st = addStore(1, 0x100, 8, 42, /*resolved=*/false);
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    ld.issued = true;
    ld.addrResolved = true;
    ld.loadValue = res.value;  // 42 from memory
    st.addr = 0x100;
    st.addrResolved = true;
    st.dataResolved = true;
    st.storeData = 42;  // silent store
    EXPECT_EQ(lsu->storeResolved(st), 0u);
    st.storeData = 43;  // now a real conflict
    EXPECT_EQ(lsu->storeResolved(st), 2u);
}

TEST_F(LsuFixture, NlqDisablesLqSearch)
{
    LsuParams p;
    p.nlq = true;
    build(p);
    DynInst &st = addStore(1, 0x100, 8, 1, false);
    DynInst &ld = addLoad(2, 0x100, 8);
    lsu->executeLoad(ld, 0);
    ld.issued = true;
    ld.addrResolved = true;
    st.addr = 0x100;
    st.addrResolved = true;
    EXPECT_EQ(lsu->storeResolved(st), 0u);
    EXPECT_EQ(lsu->lqSearches.value(), 0u);
}

TEST_F(LsuFixture, QueueCapacityAndInOrderRelease)
{
    LsuParams p;
    p.lqEntries = 2;
    p.sqEntries = 2;
    build(p);
    addLoad(1, 0x100, 8);
    DynInst &l2 = addLoad(2, 0x108, 8);
    EXPECT_TRUE(lsu->lqFull());
    lsu->commitLoad(*rob.findBySeq(1));
    EXPECT_FALSE(lsu->lqFull());
    // Out-of-order commit is a bug.
    DynInst other = l2;
    other.seq = 99;
    EXPECT_THROW(lsu->commitLoad(other), std::logic_error);
}

TEST_F(LsuFixture, SquashDropsYoungEntries)
{
    build();
    addLoad(1, 0x100, 8);
    addStore(2, 0x200, 8, 1);
    addLoad(3, 0x108, 8);
    addStore(4, 0x208, 8, 2);
    lsu->squashAfter(2);
    EXPECT_EQ(lsu->lqSize(), 1u);
    EXPECT_EQ(lsu->sqSize(), 1u);
    EXPECT_EQ(lsu->youngestStoreSeq(), 2u);
}

// ---------------------------------------------------------------------
// SSQ structures
// ---------------------------------------------------------------------

namespace {

LsuParams
ssqParams()
{
    LsuParams p;
    p.ssq = true;
    p.fsqEntries = 2;
    return p;
}

} // namespace

TEST_F(LsuFixture, SsqUnsteeredLoadIgnoresInFlightStores)
{
    build(ssqParams());
    mem.write(0x100, 8, 5);
    addStore(1, 0x100, 8, 999);       // in flight, unsteered
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_FALSE(res.forwarded);
    EXPECT_EQ(res.value, 5u) << "stale read; re-execution must catch it";
    EXPECT_TRUE(res.sawAmbiguousOlderStore || true);
}

TEST_F(LsuFixture, SsqBestEffortServesCommittedStores)
{
    build(ssqParams());
    DynInst &st = addStore(1, 0x100, 8, 31);
    mem.write(0x100, 8, 31);   // commit applies the value...
    lsu->commitStore(st);      // ...and inserts the buffer entry
    DynInst &ld = addLoad(2, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_TRUE(res.bestEffort);
    EXPECT_EQ(res.value, 31u);
    EXPECT_EQ(lsu->bestEffortHits.value(), 1u);
}

TEST_F(LsuFixture, SsqBestEffortMasksSubwordStoreData)
{
    // The buffer entry must hold the bytes the store wrote, not the
    // raw source register: a 1-byte store of 0x14E writes 0x4E, and an
    // exact-match 1-byte load must read 0x4E zero-extended. (An SVW-
    // filtered load is never re-executed, so a wrong buffer value
    // would be architecturally visible — found by differential fuzz.)
    build(ssqParams());
    DynInst &st = addStore(1, 0x100, 1, 0x14E);
    mem.write(0x100, 1, 0x14E);
    lsu->commitStore(st);
    DynInst &ld = addLoad(2, 0x100, 1);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_TRUE(res.bestEffort);
    EXPECT_EQ(res.value, 0x4Eu);
}

TEST_F(LsuFixture, SsqBestEffortDropsEntriesStaleAfterOverlappingCommit)
{
    // A younger committed store partially overlapping an entry makes
    // that entry stale relative to committed memory; serving it would
    // hand an SVW-filtered load a value the cache no longer holds. The
    // overlapped entry must be invalidated, the load served from the
    // cache. (Also found by differential fuzz.)
    build(ssqParams());
    DynInst &st1 = addStore(1, 0x100, 8, 0x1111111111111111ull);
    mem.write(0x100, 8, 0x1111111111111111ull);
    lsu->commitStore(st1);
    DynInst &st2 = addStore(2, 0x101, 2, 0x2222);
    mem.write(0x101, 2, 0x2222);
    lsu->commitStore(st2);

    DynInst &ld = addLoad(3, 0x100, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_FALSE(res.bestEffort) << "stale entry must not be served";
    EXPECT_EQ(res.value, mem.read(0x100, 8));

    // The overlapping store's own entry survives and is exact-match
    // servable.
    DynInst &ld2 = addLoad(4, 0x101, 2);
    res = lsu->executeLoad(ld2, 0);
    EXPECT_TRUE(res.bestEffort);
    EXPECT_EQ(res.value, 0x2222u);
}

TEST_F(LsuFixture, SteeringBitsRouteLoadsToFsq)
{
    build(ssqParams());
    lsu->trainSteering(/*loadPc=*/7, /*storePc=*/3);
    EXPECT_TRUE(lsu->loadSteeredToFsq(7));
    EXPECT_TRUE(lsu->storeSteeredToFsq(3));
    EXPECT_FALSE(lsu->loadSteeredToFsq(8));

    DynInst &st = addStore(3, 0x100, 8, 55);
    EXPECT_TRUE(st.fsqStore);
    EXPECT_EQ(lsu->fsqSize(), 1u);
    DynInst &ld = addLoad(7, 0x100, 8);
    EXPECT_TRUE(ld.fsqLoad);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_TRUE(res.forwarded);
    EXPECT_FALSE(res.bestEffort);
    EXPECT_EQ(res.value, 55u);
    EXPECT_EQ(lsu->fsqForwards.value(), 1u);
}

TEST_F(LsuFixture, FsqPortLimitsOneSearchPerCycle)
{
    build(ssqParams());
    lsu->trainSteering(7, 3);
    lsu->trainSteering(8, 3);
    addStore(3, 0x100, 8, 55);
    DynInst &l1 = addLoad(7, 0x100, 8);
    DynInst &l2 = addLoad(8, 0x100, 8);
    auto r1 = lsu->executeLoad(l1, 5);
    auto r2 = lsu->executeLoad(l2, 5);
    EXPECT_EQ(r1.status, LoadExecResult::Status::Done);
    EXPECT_EQ(r2.status, LoadExecResult::Status::BlockedPort);
    // Next cycle the second load gets the port.
    r2 = lsu->executeLoad(l2, 6);
    EXPECT_EQ(r2.status, LoadExecResult::Status::Done);
}

TEST_F(LsuFixture, FsqCapacityGatesSteeredStores)
{
    build(ssqParams());
    lsu->trainSteering(7, 3);
    lsu->trainSteering(7, 4);
    DynInst probe;
    StaticInst st8b{Opcode::St8, 0, 2, 3, 0};
    probe.setStatic(&st8b);
    probe.pc = 3;
    EXPECT_FALSE(lsu->fsqFullFor(probe));
    addStore(3, 0x100, 8, 1);
    DynInst &s2 = addStore(4, 0x108, 8, 2);
    EXPECT_TRUE(s2.fsqStore);
    probe.pc = 4;
    EXPECT_TRUE(lsu->fsqFullFor(probe)) << "2-entry FSQ is full";
    probe.pc = 99;  // unsteered stores never stall on the FSQ
    EXPECT_FALSE(lsu->fsqFullFor(probe));
}

TEST_F(LsuFixture, FsqEntryFreedAtCommit)
{
    build(ssqParams());
    lsu->trainSteering(7, 3);
    DynInst &st = addStore(3, 0x100, 8, 1);
    EXPECT_EQ(lsu->fsqSize(), 1u);
    lsu->commitStore(st);
    EXPECT_EQ(lsu->fsqSize(), 0u);
}

TEST_F(LsuFixture, SteeredLoadWithoutFsqProducerReadsCache)
{
    build(ssqParams());
    lsu->trainSteering(7, 3);
    mem.write(0x200, 8, 17);
    DynInst &ld = addLoad(7, 0x200, 8);
    auto res = lsu->executeLoad(ld, 0);
    EXPECT_EQ(res.status, LoadExecResult::Status::Done);
    EXPECT_FALSE(res.forwarded);
    EXPECT_EQ(res.value, 17u);
}
