/**
 * @file
 * The heavyweight integration property: for EVERY workload and EVERY
 * machine/optimization/SVW configuration, the out-of-order core must
 * retire the exact architectural state the in-order golden model
 * produces. This is the test that guarantees SVW never filters a
 * re-execution it needed (no false negatives end to end), that the
 * optimizations' speculation is always verified, and that squash
 * recovery is exact.
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "harness/config.hh"
#include "harness/runner.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;
using namespace svw::harness;

namespace {

struct GoldenCase
{
    const char *configName;
    ExperimentConfig config;
};

std::vector<GoldenCase>
goldenConfigs()
{
    std::vector<GoldenCase> cases;
    auto add = [&](const char *name, Machine m, OptMode o, SvwMode s) {
        ExperimentConfig c;
        c.machine = m;
        c.opt = o;
        c.svw = s;
        cases.push_back({name, c});
    };
    add("base8", Machine::EightWide, OptMode::Baseline, SvwMode::None);
    add("baseAssocSq", Machine::EightWide, OptMode::BaselineAssocSq,
        SvwMode::None);
    add("nlq", Machine::EightWide, OptMode::Nlq, SvwMode::None);
    add("nlqSvw", Machine::EightWide, OptMode::Nlq, SvwMode::Upd);
    add("nlqSvwNoUpd", Machine::EightWide, OptMode::Nlq, SvwMode::NoUpd);
    add("nlqPerfect", Machine::EightWide, OptMode::Nlq, SvwMode::Perfect);
    add("ssq", Machine::EightWide, OptMode::Ssq, SvwMode::None);
    add("ssqSvw", Machine::EightWide, OptMode::Ssq, SvwMode::Upd);
    add("rle", Machine::FourWide, OptMode::Rle, SvwMode::None);
    add("rleSvw", Machine::FourWide, OptMode::Rle, SvwMode::Upd);
    add("composed", Machine::EightWide, OptMode::Composed, SvwMode::Upd);
    // Narrow-SSN configuration exercises wrap drains end to end.
    ExperimentConfig wrap;
    wrap.machine = Machine::EightWide;
    wrap.opt = OptMode::Ssq;
    wrap.svw = SvwMode::Upd;
    wrap.ssnBits = 10;
    cases.push_back({"ssqSvwWrap10b", wrap});
    // Tiny SSBF maximizes aliasing (false positives must stay safe).
    ExperimentConfig tiny = wrap;
    tiny.ssnBits = 16;
    tiny.ssbf.entries = 32;
    cases.push_back({"ssqSvwTinySsbf", tiny});
    // Atomic SSBF updates.
    ExperimentConfig atomic;
    atomic.machine = Machine::EightWide;
    atomic.opt = OptMode::Ssq;
    atomic.svw = SvwMode::Upd;
    atomic.speculativeSsbfUpdate = false;
    cases.push_back({"ssqSvwAtomic", atomic});
    // RLE without squash reuse.
    ExperimentConfig nosqu;
    nosqu.machine = Machine::FourWide;
    nosqu.opt = OptMode::Rle;
    nosqu.svw = SvwMode::Upd;
    nosqu.rleSquashReuse = false;
    cases.push_back({"rleSvwNoSqu", nosqu});
    return cases;
}

using GoldenParam = std::tuple<std::string, std::size_t>;

} // namespace

class GoldenMatrix : public ::testing::TestWithParam<GoldenParam>
{
};

TEST_P(GoldenMatrix, ArchStateMatchesInterpreter)
{
    const auto &[workload, cfgIdx] = GetParam();
    const GoldenCase gc = goldenConfigs()[cfgIdx];

    RunRequest req;
    req.workload = workload;
    req.targetInsts = 8'000;
    req.config = gc.config;
    req.goldenCheck = true;  // runOne fatals on mismatch
    RunResult r = runOne(req);
    EXPECT_TRUE(r.halted) << workload << "/" << gc.configName;
    EXPECT_TRUE(r.goldenOk);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllConfigs, GoldenMatrix,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::suiteNames()),
        ::testing::Range<std::size_t>(0, goldenConfigs().size())),
    [](const ::testing::TestParamInfo<GoldenParam> &info) {
        std::string n = std::get<0>(info.param);
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n + "_" + goldenConfigs()[std::get<1>(info.param)].configName;
    });
