/**
 * @file
 * Mann-Whitney U tests (harness/perf_stats.hh), pinned against
 * hand-computed values so the perf-regression verdicts in
 * bench/perf_ab stay trustworthy: a broken rank sum or tie correction
 * would silently turn the gate into noise.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/perf_stats.hh"

using namespace svw::harness;

TEST(PerfStats, MedianOddEvenAndEmpty)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(PerfStats, FullySeparatedSamples)
{
    // a entirely below b: U1 = 0. Hand computation: r1 = 15,
    // U1 = 15 - 5*6/2 = 0, mu = 12.5, var = 25/12 * 11 = 22.9167,
    // continuity-corrected z = -12/4.7871 = -2.5067, two-sided
    // p = erfc(2.5067/sqrt(2)) = 0.01218.
    const std::vector<double> a = {1, 2, 3, 4, 5};
    const std::vector<double> b = {6, 7, 8, 9, 10};
    const MannWhitneyResult r = mannWhitneyU(a, b);
    EXPECT_DOUBLE_EQ(r.u1, 0.0);
    EXPECT_DOUBLE_EQ(r.u2, 25.0);
    EXPECT_NEAR(r.z, -2.5067, 1e-3);
    EXPECT_NEAR(r.p, 0.01218, 5e-4);
    EXPECT_DOUBLE_EQ(r.medianShift, 3.0 - 8.0);
    EXPECT_LT(r.p, 0.05);  // the perf_ab significance threshold

    // Symmetry: swapping the samples swaps U1/U2 and negates z.
    const MannWhitneyResult s = mannWhitneyU(b, a);
    EXPECT_DOUBLE_EQ(s.u1, r.u2);
    EXPECT_DOUBLE_EQ(s.u2, r.u1);
    EXPECT_NEAR(s.z, -r.z, 1e-12);
    EXPECT_NEAR(s.p, r.p, 1e-12);
}

TEST(PerfStats, TieCorrection)
{
    // Pooled {1,1,1,2,2,2}: the 1s share rank 2, the 2s share rank 5.
    // r1 = 2+2+5 = 9, U1 = 9 - 6 = 3, mu = 4.5,
    // tieTerm = 2*(27-3) = 48, var = 9/12 * (7 - 48/30) = 4.05,
    // corrected z = -1.0/2.0125 = -0.4969, p = 0.6193.
    const std::vector<double> a = {1, 1, 2};
    const std::vector<double> b = {1, 2, 2};
    const MannWhitneyResult r = mannWhitneyU(a, b);
    EXPECT_DOUBLE_EQ(r.u1, 3.0);
    EXPECT_DOUBLE_EQ(r.u2, 6.0);
    EXPECT_NEAR(r.z, -0.4969, 1e-3);
    EXPECT_NEAR(r.p, 0.6193, 5e-4);
}

TEST(PerfStats, DegenerateSamplesAreNotSignificant)
{
    // Every observation tied: zero variance, no evidence of a shift.
    const MannWhitneyResult tied =
        mannWhitneyU({5.0, 5.0}, {5.0, 5.0});
    EXPECT_DOUBLE_EQ(tied.z, 0.0);
    EXPECT_DOUBLE_EQ(tied.p, 1.0);

    // Empty samples: the harness treats "no data" as "no verdict".
    EXPECT_DOUBLE_EQ(mannWhitneyU({}, {1.0}).p, 1.0);
    EXPECT_DOUBLE_EQ(mannWhitneyU({1.0}, {}).p, 1.0);
    EXPECT_DOUBLE_EQ(mannWhitneyU({}, {}).p, 1.0);
}

TEST(PerfStats, InterleavedNoiseIsNotSignificant)
{
    // Same distribution, alternating observations — the shape perf_ab
    // sees when an "optimization" does nothing. U1 + U2 = n1*n2 always.
    const std::vector<double> a = {10.1, 10.3, 10.2, 10.4, 10.25};
    const std::vector<double> b = {10.2, 10.1, 10.35, 10.3, 10.15};
    const MannWhitneyResult r = mannWhitneyU(a, b);
    EXPECT_DOUBLE_EQ(r.u1 + r.u2, 25.0);
    EXPECT_GT(r.p, 0.05);
}

TEST(PerfStats, ConsistentShiftIsSignificant)
{
    // A ~3% consistent improvement over 12 interleaved reps — the
    // effect size perf_ab is built to resolve.
    std::vector<double> fast, slow;
    for (int i = 0; i < 12; ++i) {
        fast.push_back(1.00 + 0.002 * (i % 5));
        slow.push_back(1.03 + 0.002 * ((i + 3) % 5));
    }
    const MannWhitneyResult r = mannWhitneyU(fast, slow);
    EXPECT_LT(r.p, 0.05);
    EXPECT_LT(r.medianShift, 0.0);  // fast arm is faster
}
