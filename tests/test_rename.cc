/**
 * @file
 * Unit tests: physical register file, rename map, free list, reference
 * counting and generations (the substrate register integration relies
 * on), the speculative-definition journal, and the squash-recovery
 * checkpoint pool.
 */

#include <gtest/gtest.h>

#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "cpu/iq.hh"

using namespace svw;

TEST(Rename, InitialMapIsIdentity)
{
    RenameState rs(64);
    for (RegIndex a = 0; a < numArchRegs; ++a)
        EXPECT_EQ(rs.map(a), a);
    EXPECT_EQ(rs.freeRegs(), 64u - numArchRegs);
}

TEST(Rename, AllocTakesFromFreeList)
{
    RenameState rs(64);
    const auto before = rs.freeRegs();
    PhysRegIndex p = rs.alloc();
    EXPECT_GE(p, numArchRegs);
    EXPECT_EQ(rs.freeRegs(), before - 1);
    EXPECT_EQ(rs.regs().refCount(p), 1u);
    EXPECT_EQ(rs.regs().readyAt(p), notReady);
}

TEST(Rename, DerefFreesAtZero)
{
    RenameState rs(64);
    PhysRegIndex p = rs.alloc();
    const auto gen = rs.regs().generation(p);
    rs.addRef(p);
    rs.deref(p);
    EXPECT_EQ(rs.regs().refCount(p), 1u);
    EXPECT_EQ(rs.regs().generation(p), gen);  // still alive
    rs.deref(p);
    EXPECT_EQ(rs.regs().refCount(p), 0u);
    EXPECT_EQ(rs.regs().generation(p), gen + 1);  // recycled
}

TEST(Rename, FreedRegisterIsReallocated)
{
    RenameState rs(numArchRegs + 9);
    std::vector<PhysRegIndex> all;
    while (rs.hasFreeReg())
        all.push_back(rs.alloc());
    EXPECT_EQ(all.size(), 9u);
    rs.deref(all[4]);
    ASSERT_TRUE(rs.hasFreeReg());
    EXPECT_EQ(rs.alloc(), all[4]);
}

TEST(Rename, AllocOnEmptyFreeListPanics)
{
    RenameState rs(numArchRegs + 9);
    while (rs.hasFreeReg())
        rs.alloc();
    EXPECT_THROW(rs.alloc(), std::logic_error);
}

TEST(Rename, DoubleFreePanics)
{
    RenameState rs(64);
    PhysRegIndex p = rs.alloc();
    rs.deref(p);
    EXPECT_THROW(rs.deref(p), std::logic_error);
}

TEST(Rename, ValuesAndReadiness)
{
    RenameState rs(64);
    PhysRegIndex p = rs.alloc();
    EXPECT_FALSE(rs.regs().isReady(p, 1000));
    rs.regs().setValue(p, 0xabcd);
    rs.regs().setReadyAt(p, 50);
    EXPECT_FALSE(rs.regs().isReady(p, 49));
    EXPECT_TRUE(rs.regs().isReady(p, 50));
    EXPECT_EQ(rs.regs().value(p), 0xabcdu);
}

TEST(Rename, MapUpdate)
{
    RenameState rs(64);
    PhysRegIndex p = rs.alloc();
    rs.speculativeDef(5, p);
    EXPECT_EQ(rs.map(5), p);
}

TEST(Rename, TooFewRegsPanics)
{
    EXPECT_THROW(RenameState rs(numArchRegs), std::logic_error);
}

// ---------------------------------------------------------------------
// Definition journal and checkpoints
// ---------------------------------------------------------------------

TEST(RenameCkpt, UndoLastDefRestoresMapAndFrees)
{
    RenameState rs(64);
    const PhysRegIndex orig = rs.map(5);
    PhysRegIndex p = rs.alloc();
    rs.speculativeDef(5, p);
    EXPECT_EQ(rs.map(5), p);
    EXPECT_EQ(rs.journalPos(), 1u);
    rs.undoLastDef();
    EXPECT_EQ(rs.map(5), orig);
    EXPECT_EQ(rs.regs().refCount(p), 0u);  // released
    EXPECT_EQ(rs.journalPos(), 0u);
}

TEST(RenameCkpt, RestoreRewindsMapAndFreeListInWalkOrder)
{
    RenameState rs(64, 4);
    PhysRegIndex p1 = rs.alloc();
    rs.speculativeDef(3, p1);
    rs.takeCheckpoint(10, BPredCheckpoint{});
    const auto freeBefore = rs.freeRegs();

    // Two wrong-path definitions after the checkpoint.
    PhysRegIndex p2 = rs.alloc();
    rs.speculativeDef(4, p2);
    PhysRegIndex p3 = rs.alloc();
    rs.speculativeDef(5, p3);

    rs.discardCheckpointsAfter(10);
    const RenameCheckpoint *ck = rs.findCheckpoint(10);
    ASSERT_NE(ck, nullptr);
    rs.restoreCheckpoint(*ck);

    EXPECT_EQ(rs.map(3), p1);   // pre-checkpoint def survives
    EXPECT_EQ(rs.map(4), 4u);   // post-checkpoint defs undone
    EXPECT_EQ(rs.map(5), 5u);
    EXPECT_EQ(rs.freeRegs(), freeBefore);
    // Free-list order must equal the youngest-first walk's: p3 released
    // first, p2 on top — so allocation hands p2 back first.
    EXPECT_EQ(rs.alloc(), p2);
    EXPECT_EQ(rs.alloc(), p3);
}

TEST(RenameCkpt, RestoreDropsSharedReferenceWithoutFreeing)
{
    RenameState rs(64, 4);
    PhysRegIndex p = rs.alloc();
    rs.speculativeDef(3, p);
    rs.takeCheckpoint(20, BPredCheckpoint{});
    // An integration-style shared definition of the same register.
    rs.addRef(p);
    rs.speculativeDef(4, p);
    EXPECT_EQ(rs.regs().refCount(p), 2u);

    rs.discardCheckpointsAfter(20);
    const RenameCheckpoint *ck = rs.findCheckpoint(20);
    ASSERT_NE(ck, nullptr);
    const auto gen = rs.regs().generation(p);
    rs.restoreCheckpoint(*ck);
    EXPECT_EQ(rs.regs().refCount(p), 1u);       // still pinned by map(3)
    EXPECT_EQ(rs.regs().generation(p), gen);    // never recycled
    EXPECT_EQ(rs.map(3), p);
    EXPECT_EQ(rs.map(4), 4u);
}

TEST(RenameCkpt, PoolExhaustionDropsOldest)
{
    RenameState rs(64, 2);
    rs.takeCheckpoint(1, BPredCheckpoint{});
    rs.takeCheckpoint(2, BPredCheckpoint{});
    EXPECT_EQ(rs.checkpointsPooled(), 2u);
    rs.takeCheckpoint(3, BPredCheckpoint{});
    EXPECT_EQ(rs.checkpointsPooled(), 2u);  // oldest (seq 1) evicted

    // A squash keeping seq 1 pops 2 and 3 and finds nothing: the walk
    // fallback covers it.
    rs.discardCheckpointsAfter(1);
    EXPECT_EQ(rs.checkpointsPooled(), 0u);
    EXPECT_EQ(rs.findCheckpoint(1), nullptr);
}

TEST(RenameCkpt, DiscardPopsOnlyYoungerCheckpoints)
{
    RenameState rs(64, 4);
    rs.takeCheckpoint(5, BPredCheckpoint{});
    rs.takeCheckpoint(8, BPredCheckpoint{});
    rs.takeCheckpoint(11, BPredCheckpoint{});
    rs.discardCheckpointsAfter(8);
    EXPECT_EQ(rs.checkpointsPooled(), 2u);
    const RenameCheckpoint *ck = rs.findCheckpoint(8);
    ASSERT_NE(ck, nullptr);
    EXPECT_EQ(ck->seq, 8u);
    // Only the youngest survivor can match a squash point.
    EXPECT_EQ(rs.findCheckpoint(5), nullptr);
}

TEST(RenameCkpt, ZeroPoolNeverCheckpoints)
{
    RenameState rs(64, 0);
    EXPECT_EQ(rs.takeCheckpoint(1, BPredCheckpoint{}), 0u);
    EXPECT_EQ(rs.checkpointsPooled(), 0u);
    rs.discardCheckpointsAfter(0);
    EXPECT_EQ(rs.findCheckpoint(1), nullptr);
}

TEST(RenameCkpt, TagsNameDistinctPoolSlots)
{
    RenameState rs(64, 4);
    const auto t1 = rs.takeCheckpoint(1, BPredCheckpoint{});
    const auto t2 = rs.takeCheckpoint(2, BPredCheckpoint{});
    EXPECT_NE(t1, 0u);
    EXPECT_NE(t2, 0u);
    EXPECT_NE(t1, t2);
}

TEST(RenameCkpt, TagResolvesOwnSlotAndRejectsRewrites)
{
    RenameState rs(64, 2);
    const auto t1 = rs.takeCheckpoint(1, BPredCheckpoint{});
    const auto t2 = rs.takeCheckpoint(2, BPredCheckpoint{});
    const RenameCheckpoint *ck = rs.checkpointByTag(t1, 1);
    ASSERT_NE(ck, nullptr);
    EXPECT_EQ(ck->seq, 1u);
    EXPECT_EQ(rs.checkpointByTag(0, 1), nullptr);   // untagged branch
    EXPECT_EQ(rs.checkpointByTag(t1, 5), nullptr);  // wrong seq

    // Overflow rewrites the oldest slot for a younger branch; the old
    // tag must no longer resolve.
    const auto t3 = rs.takeCheckpoint(3, BPredCheckpoint{});
    EXPECT_EQ(t3, t1);  // slot reused
    EXPECT_EQ(rs.checkpointByTag(t1, 1), nullptr);
    ASSERT_NE(rs.checkpointByTag(t3, 3), nullptr);
    ASSERT_NE(rs.checkpointByTag(t2, 2), nullptr);
}

// ---------------------------------------------------------------------
// ROB and IQ
// ---------------------------------------------------------------------

namespace {

StaticInst nopInst{Opcode::Nop, 0, 0, 0, 0};

DynInst
mkInst(InstSeqNum seq)
{
    DynInst d;
    d.seq = seq;
    d.setStatic(&nopInst);
    return d;
}

} // namespace

TEST(Rob, FifoOrderAndCapacity)
{
    ROB rob(4);
    EXPECT_TRUE(rob.empty());
    for (InstSeqNum s = 1; s <= 4; ++s)
        rob.push(mkInst(s));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 1u);
    EXPECT_EQ(rob.tail().seq, 4u);
    rob.popHead();
    EXPECT_EQ(rob.head().seq, 2u);
    EXPECT_FALSE(rob.full());
}

TEST(Rob, FindBySeqHandlesGaps)
{
    ROB rob(8);
    rob.push(mkInst(2));
    rob.push(mkInst(5));
    rob.push(mkInst(9));
    EXPECT_EQ(rob.findBySeq(5)->seq, 5u);
    EXPECT_EQ(rob.findBySeq(3), nullptr);
    EXPECT_EQ(rob.findBySeq(10), nullptr);
}

TEST(Rob, LowerBound)
{
    ROB rob(8);
    rob.push(mkInst(2));
    rob.push(mkInst(5));
    EXPECT_EQ(rob.lowerBound(1)->seq, 2u);
    EXPECT_EQ(rob.lowerBound(3)->seq, 5u);
    EXPECT_EQ(rob.lowerBound(6), nullptr);
}

TEST(Rob, ReferencesStableAcrossPush)
{
    ROB rob(64);
    DynInst &first = rob.push(mkInst(1));
    for (InstSeqNum s = 2; s < 50; ++s)
        rob.push(mkInst(s));
    EXPECT_EQ(first.seq, 1u);  // deque reference stability
}

TEST(Iq, InsertRemoveSquash)
{
    IssueQueue iq(8);
    ROB rob(8);
    DynInst &a = rob.push(mkInst(1));
    DynInst &b = rob.push(mkInst(2));
    DynInst &c = rob.push(mkInst(3));
    iq.insert(&a);
    iq.insert(&b);
    iq.insert(&c);
    EXPECT_EQ(iq.size(), 3u);
    for (std::size_t i = 0; i < iq.slotCount(); ++i)
        if (iq.slot(i).inst && iq.slot(i).seq == 2)
            iq.removeAt(i);
    EXPECT_EQ(iq.size(), 2u);
    iq.squashAfter(1);
    ASSERT_EQ(iq.size(), 1u);
    // First live slot is the surviving oldest entry.
    const IssueQueue::Entry *survivor = nullptr;
    for (std::size_t i = 0; i < iq.slotCount() && !survivor; ++i)
        if (iq.slot(i).inst)
            survivor = &iq.slot(i);
    ASSERT_NE(survivor, nullptr);
    EXPECT_EQ(survivor->seq, 1u);
}

TEST(Iq, FullReflectsCapacity)
{
    IssueQueue iq(2);
    ROB rob(4);
    DynInst &a = rob.push(mkInst(1));
    DynInst &b = rob.push(mkInst(2));
    iq.insert(&a);
    EXPECT_FALSE(iq.full());
    iq.insert(&b);
    EXPECT_TRUE(iq.full());
}

// ---------------------------------------------------------------------
// Squash-hygiene journal markers (RLE checkpoint recovery) and the ROB
// cold-record arena.
// ---------------------------------------------------------------------

TEST(Rename, HygieneMarkersAreSkippedByWalkUndo)
{
    RenameState rs(64);
    const PhysRegIndex p1 = rs.alloc();
    rs.speculativeDef(1, p1);
    rs.journalSquashHygiene(42);
    const PhysRegIndex p2 = rs.alloc();
    rs.speculativeDef(2, p2);
    rs.journalSquashHygiene(43);

    rs.undoLastDef();  // discards marker 43, undoes the r2 definition
    EXPECT_EQ(rs.map(2), 2);
    EXPECT_EQ(rs.regs().refCount(p2), 0u);
    EXPECT_EQ(rs.map(1), p1) << "older definition must survive";

    rs.undoLastDef();  // discards marker 42, undoes the r1 definition
    EXPECT_EQ(rs.map(1), 1);
    EXPECT_EQ(rs.regs().refCount(p1), 0u);
}

TEST(Rename, CheckpointReplayFiresHygieneYoungestFirstInterleaved)
{
    RenameState rs(64, 4);
    const PhysRegIndex pKept = rs.alloc();
    rs.speculativeDef(1, pKept);
    rs.takeCheckpoint(100, BPredCheckpoint{});

    const PhysRegIndex p2 = rs.alloc();
    rs.speculativeDef(2, p2);
    rs.journalSquashHygiene(10);
    const PhysRegIndex p3 = rs.alloc();
    rs.speculativeDef(3, p3);
    rs.journalSquashHygiene(11);

    rs.discardCheckpointsAfter(100);
    const RenameCheckpoint *ck = rs.findCheckpoint(100);
    ASSERT_NE(ck, nullptr);

    std::vector<InstSeqNum> fired;
    rs.restoreCheckpoint(*ck, [&](InstSeqNum seq) {
        fired.push_back(seq);
        if (seq == 11) {
            // Marker 11 replays *before* the release of load 11's own
            // definition — exactly the walk's hygiene-then-undo order.
            EXPECT_EQ(rs.regs().refCount(p3), 1u);
        } else if (seq == 10) {
            // By marker 10, load 11's definition has been released.
            EXPECT_EQ(rs.regs().refCount(p3), 0u);
            EXPECT_EQ(rs.regs().refCount(p2), 1u);
        }
    });

    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 11u);
    EXPECT_EQ(fired[1], 10u);
    EXPECT_EQ(rs.map(1), pKept);
    EXPECT_EQ(rs.map(2), 2);
    EXPECT_EQ(rs.map(3), 3);
    EXPECT_EQ(rs.regs().refCount(p2), 0u);
    EXPECT_EQ(rs.regs().refCount(p3), 0u);
}

TEST(Rob, ColdRecordsTravelWithRingSlots)
{
    ROB rob(4);
    DynInstCold c1;
    c1.bpredSnap.ghist = 0xabcull;
    DynInst &r1 = rob.push(mkInst(1), c1);
    DynInstCold c2;
    c2.bpredSnap.ghist = 0xdefull;
    DynInst &r2 = rob.push(mkInst(2), c2);
    EXPECT_EQ(rob.cold(r1).bpredSnap.ghist, 0xabcull);
    EXPECT_EQ(rob.cold(r2).bpredSnap.ghist, 0xdefull);

    // Wrap the ring: cold records stay glued to their entries' slots.
    rob.popHead();
    rob.popHead();
    for (InstSeqNum s = 3; s <= 6; ++s) {
        DynInstCold c;
        c.bpredSnap.ghist = s * 100;
        rob.push(mkInst(s), c);
    }
    for (InstSeqNum s = 3; s <= 6; ++s) {
        DynInst *d = rob.findBySeq(s);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(rob.cold(*d).bpredSnap.ghist, s * 100);
    }
}
