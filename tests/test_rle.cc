/**
 * @file
 * Unit tests: integration table and the RLE policy unit — load reuse,
 * memory bypassing, squash reuse, pin budgeting, and SSN carrying.
 */

#include <gtest/gtest.h>

#include <deque>

#include "rle/integration_table.hh"
#include "rle/rle.hh"

using namespace svw;

namespace {

struct RleFixture : ::testing::Test
{
    RleFixture() : rename(128) {}

    RleUnit mkUnit(bool squashReuse = true, bool alu = true,
                   unsigned pins = 64)
    {
        RleParams p;
        p.enabled = true;
        p.squashReuse = squashReuse;
        p.integrateAlu = alu;
        p.maxPinnedRegs = pins;
        return RleUnit(p, reg);
    }

    DynInst mkLoadInst(const StaticInst *si, PhysRegIndex base,
                       InstSeqNum seq)
    {
        DynInst d;
        d.setStatic(si);
        d.seq = seq;
        d.prs1 = base;
        d.prd = rename.alloc();
        return d;
    }

    stats::StatRegistry reg;
    RenameState rename;

    StaticInst ld8{Opcode::Ld8, 3, 2, 0, 16};
    StaticInst ld8Other{Opcode::Ld8, 4, 2, 0, 24};
    StaticInst st8{Opcode::St8, 0, 2, 5, 16};
    StaticInst addOp{Opcode::Add, 6, 2, 5, 0};
};

} // namespace

TEST_F(RleFixture, LoadReuseHitsOnIdenticalSignature)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();

    DynInst first = mkLoadInst(&ld8, base, 1);
    EXPECT_FALSE(rle.tryIntegrate(ld8, base, 0, rename).has_value());
    rle.createEntry(first, rename, /*ssnRename=*/5, 0);

    auto integ = rle.tryIntegrate(ld8, base, 0, rename);
    ASSERT_TRUE(integ.has_value());
    EXPECT_EQ(integ->dst, first.prd);
    EXPECT_EQ(integ->ssn, 5u);
    EXPECT_FALSE(integ->fromSquash);
    EXPECT_FALSE(integ->fromStore);
    EXPECT_EQ(rle.loadsEliminated.value(), 1u);
    EXPECT_EQ(rle.elimByReuse.value(), 1u);
}

TEST_F(RleFixture, DifferentOffsetDoesNotMatch)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);
    EXPECT_FALSE(rle.tryIntegrate(ld8Other, base, 0, rename).has_value());
}

TEST_F(RleFixture, DifferentBaseRegDoesNotMatch)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    PhysRegIndex other = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);
    EXPECT_FALSE(rle.tryIntegrate(ld8, other, 0, rename).has_value());
}

TEST_F(RleFixture, StoreCreatesBypassEntry)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    PhysRegIndex data = rename.alloc();

    DynInst st;
    st.setStatic(&st8);
    st.seq = 1;
    st.prs1 = base;
    st.prs2 = data;
    st.ssn = 42;
    rle.createEntry(st, rename, 40, st.ssn);

    // A matching ld8 integrates the store's data register.
    auto integ = rle.tryIntegrate(ld8, base, 0, rename);
    ASSERT_TRUE(integ.has_value());
    EXPECT_EQ(integ->dst, data);
    EXPECT_EQ(integ->ssn, 42u);  // window starts at the bypassing store
    EXPECT_TRUE(integ->fromStore);
    EXPECT_EQ(rle.elimByBypass.value(), 1u);
}

TEST_F(RleFixture, SubQuadStoresDoNotBypass)
{
    RleUnit rle = mkUnit();
    StaticInst st4{Opcode::St4, 0, 2, 5, 16};
    PhysRegIndex base = rename.alloc();
    PhysRegIndex data = rename.alloc();
    DynInst st;
    st.setStatic(&st4);
    st.seq = 1;
    st.prs1 = base;
    st.prs2 = data;
    rle.createEntry(st, rename, 40, 42);
    StaticInst ld4{Opcode::Ld4, 3, 2, 0, 16};
    EXPECT_FALSE(rle.tryIntegrate(ld4, base, 0, rename).has_value());
}

TEST_F(RleFixture, SquashReuseFlagsIntegration)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 10);
    rename.regs().setReadyAt(first.prd, 1);  // value was produced
    rle.createEntry(first, rename, 5, 0);

    rle.onSquash(/*keepSeq=*/9, rename);  // seq 10 squashed

    auto integ = rle.tryIntegrate(ld8, base, 0, rename);
    ASSERT_TRUE(integ.has_value());
    EXPECT_TRUE(integ->fromSquash);
    EXPECT_EQ(integ->ssn, 0u);  // SVW disabled for squash reuse
    EXPECT_EQ(rle.elimBySquashReuse.value(), 1u);
}

TEST_F(RleFixture, SquashReuseDisabledConfig)
{
    RleUnit rle = mkUnit(/*squashReuse=*/false);
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 10);
    rename.regs().setReadyAt(first.prd, 1);
    rle.createEntry(first, rename, 5, 0);
    rle.onSquash(9, rename);
    EXPECT_FALSE(rle.tryIntegrate(ld8, base, 0, rename).has_value());
}

TEST_F(RleFixture, SquashedNeverProducedEntryIsDead)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 10);
    // prd never became ready (producer squashed before issue).
    rle.createEntry(first, rename, 5, 0);
    rle.onSquash(9, rename);
    EXPECT_FALSE(rle.tryIntegrate(ld8, base, 0, rename).has_value());
}

TEST_F(RleFixture, ItPinsKeepSquashedRegistersAlive)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 10);
    rename.regs().setReadyAt(first.prd, 1);
    rle.createEntry(first, rename, 5, 0);
    EXPECT_EQ(rename.regs().refCount(first.prd), 2u);  // inst + IT
    rename.deref(first.prd);  // squash walk releases the inst's ref
    EXPECT_EQ(rename.regs().refCount(first.prd), 1u);  // IT keeps it
}

TEST_F(RleFixture, FalseEliminationKillsEntry)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);

    DynInst victim = mkLoadInst(&ld8, base, 2);
    rle.onFalseElimination(victim, rename);
    EXPECT_FALSE(rle.tryIntegrate(ld8, base, 0, rename).has_value());
}

TEST_F(RleFixture, VerifiedEliminationRefreshesWindow)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);

    DynInst consumer = mkLoadInst(&ld8, base, 2);
    rename.deref(consumer.prd);  // drop the fixture's allocation
    consumer.prd = first.prd;    // shares the entry's register
    rle.onVerifiedElimination(consumer, rename, /*ssnRetire=*/99);

    auto integ = rle.tryIntegrate(ld8, base, 0, rename);
    ASSERT_TRUE(integ.has_value());
    EXPECT_EQ(integ->ssn, 99u);
}

TEST_F(RleFixture, AluIntegrationSharesResult)
{
    RleUnit rle = mkUnit();
    PhysRegIndex s1 = rename.alloc();
    PhysRegIndex s2 = rename.alloc();
    DynInst add;
    add.setStatic(&addOp);
    add.seq = 1;
    add.prs1 = s1;
    add.prs2 = s2;
    add.prd = rename.alloc();
    rle.createEntry(add, rename, 5, 0);
    auto integ = rle.tryIntegrate(addOp, s1, s2, rename);
    ASSERT_TRUE(integ.has_value());
    EXPECT_EQ(integ->dst, add.prd);
    EXPECT_EQ(rle.aluIntegrated.value(), 1u);
}

TEST_F(RleFixture, AluIntegrationCanBeDisabled)
{
    RleUnit rle = mkUnit(true, /*alu=*/false);
    PhysRegIndex s1 = rename.alloc();
    PhysRegIndex s2 = rename.alloc();
    DynInst add;
    add.setStatic(&addOp);
    add.seq = 1;
    add.prs1 = s1;
    add.prs2 = s2;
    add.prd = rename.alloc();
    rle.createEntry(add, rename, 5, 0);
    EXPECT_FALSE(rle.tryIntegrate(addOp, s1, s2, rename).has_value());
}

TEST_F(RleFixture, GenerationGuardInvalidatesRecycledSources)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);

    // Recycle the base register: free it and re-allocate.
    rename.deref(base);
    PhysRegIndex recycled = rename.alloc();
    ASSERT_EQ(recycled, base);  // same index, new generation
    EXPECT_FALSE(rle.tryIntegrate(ld8, recycled, 0, rename).has_value());
}

TEST_F(RleFixture, PinBudgetEvictsBeforeInserting)
{
    RleUnit rle = mkUnit(true, true, /*pins=*/4);
    PhysRegIndex base = rename.alloc();
    std::vector<DynInst> loads;
    std::deque<StaticInst> sis;  // stable addresses for DynInst::si
    for (int i = 0; i < 8; ++i) {
        sis.push_back(StaticInst{Opcode::Ld8, 3, 2, 0, 8 * i});
        DynInst d = mkLoadInst(&sis.back(), base, i + 1);
        rle.createEntry(d, rename, 5, 0);
        loads.push_back(d);
    }
    EXPECT_LE(rle.it().liveEntries(), 4u);
    EXPECT_GT(rle.it().pressureReleases.value(), 0u);
}

TEST_F(RleFixture, RelievePressureFreesRegisters)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);
    rename.deref(first.prd);  // only the IT pin remains

    // Drain the free list completely.
    std::vector<PhysRegIndex> hogs;
    while (rename.hasFreeReg())
        hogs.push_back(rename.alloc());

    EXPECT_TRUE(rle.relievePressure(rename));
    EXPECT_TRUE(rename.hasFreeReg());
}

TEST_F(RleFixture, DisabledUnitDoesNothing)
{
    RleParams p;  // enabled = false
    RleUnit rle(p, reg);
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);
    EXPECT_FALSE(rle.tryIntegrate(ld8, base, 0, rename).has_value());
    EXPECT_FALSE(rle.relievePressure(rename));
}

TEST_F(RleFixture, WrapClearEmptiesTable)
{
    RleUnit rle = mkUnit();
    PhysRegIndex base = rename.alloc();
    DynInst first = mkLoadInst(&ld8, base, 1);
    rle.createEntry(first, rename, 5, 0);
    rle.wrapClear(rename);
    EXPECT_EQ(rle.it().liveEntries(), 0u);
    EXPECT_FALSE(rle.tryIntegrate(ld8, base, 0, rename).has_value());
}
