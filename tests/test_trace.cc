/**
 * @file
 * Unit tests for the committed-instruction trace format (prog/trace):
 * record/write/read round-trip fidelity, the fail-loudly guarantees
 * for truncated / corrupt / wrong-version / missing files, the
 * compactness of the committed-PC stream encoding, and the
 * content-checksum hook the persistent ResultCache keys off.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "func/interp.hh"
#include "prog/trace.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;

namespace {

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

trace::TraceData
recordKernel(const std::string &workload, std::uint64_t insts)
{
    Program prog = workloads::make(workload, insts);
    return trace::record(prog, workload, 100'000'000);
}

} // namespace

TEST(TraceRecord, CapturesCommittedStreamAndFinalState)
{
    Program prog = workloads::make("gzip", 5'000);
    trace::TraceData t = trace::record(prog, "gzip", 100'000'000);

    EXPECT_EQ(t.sourceWorkload, "gzip");
    EXPECT_EQ(t.insts, t.counts.insts);
    ASSERT_EQ(t.committedPcs.size(), t.insts);
    EXPECT_GT(t.insts, 1'000u);

    // The stream must be exactly the interpreter's PC sequence.
    Interp sim(prog);
    for (std::uint64_t pc : t.committedPcs) {
        ASSERT_EQ(sim.pc(), pc);
        ASSERT_TRUE(sim.step() || pc == t.committedPcs.back());
    }
    EXPECT_TRUE(sim.halted());
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(sim.reg(r), t.finalRegs[r]) << "r" << r;
}

TEST(TraceRecord, FatalOnNonHaltingBudget)
{
    Program prog = workloads::make("mcf", 50'000);
    // A budget far below the program's length must refuse to record.
    EXPECT_THROW(trace::record(prog, "mcf", 100), std::runtime_error);
}

TEST(TraceFile, RoundTripIsLossless)
{
    const std::string path = tempPath("roundtrip.svwtrace");
    trace::TraceData t = recordKernel("crafty", 4'000);
    trace::writeFile(path, t);

    trace::TraceData r = trace::readFile(path);
    EXPECT_EQ(r.sourceWorkload, t.sourceWorkload);
    EXPECT_EQ(r.insts, t.insts);
    EXPECT_EQ(r.counts.loads, t.counts.loads);
    EXPECT_EQ(r.counts.stores, t.counts.stores);
    EXPECT_EQ(r.counts.branches, t.counts.branches);
    EXPECT_EQ(r.counts.takenBranches, t.counts.takenBranches);
    EXPECT_EQ(r.counts.silentStores, t.counts.silentStores);
    EXPECT_EQ(r.finalRegs, t.finalRegs);
    EXPECT_EQ(r.committedPcs, t.committedPcs);

    // Program reconstruction is bit-exact.
    const Program &a = t.program, &b = r.program;
    ASSERT_EQ(a.textSize(), b.textSize());
    EXPECT_EQ(a.entry(), b.entry());
    EXPECT_EQ(a.stackTop(), b.stackTop());
    for (std::size_t i = 0; i < a.textSize(); ++i) {
        EXPECT_EQ(a.text()[i].op, b.text()[i].op) << i;
        EXPECT_EQ(a.text()[i].rd, b.text()[i].rd) << i;
        EXPECT_EQ(a.text()[i].rs1, b.text()[i].rs1) << i;
        EXPECT_EQ(a.text()[i].rs2, b.text()[i].rs2) << i;
        EXPECT_EQ(a.text()[i].imm, b.text()[i].imm) << i;
    }
    ASSERT_EQ(a.segments().size(), b.segments().size());
    for (std::size_t i = 0; i < a.segments().size(); ++i) {
        EXPECT_EQ(a.segments()[i].base, b.segments()[i].base) << i;
        EXPECT_EQ(a.segments()[i].bytes, b.segments()[i].bytes) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, StreamEncodingIsCompact)
{
    // Loop-dominated code is almost entirely sequential runs plus one
    // back-edge per iteration; the RLE+delta stream must land far
    // under one byte per committed instruction, and the whole file far
    // under a naive 8-bytes-per-PC dump.
    const std::string path = tempPath("compact.svwtrace");
    trace::TraceData t = recordKernel("synth:memcpy:1", 50'000);
    trace::writeFile(path, t);
    const std::vector<char> file = slurp(path);
    EXPECT_LT(file.size(), t.insts);      // < 1 byte/inst overall
    EXPECT_GT(t.insts, 40'000u);          // the bound actually bites
    std::remove(path.c_str());
}

TEST(TraceFile, LoadProgramReplaysIdentically)
{
    const std::string path = tempPath("replay.svwtrace");
    trace::TraceData t = recordKernel("perl.d", 4'000);
    trace::writeFile(path, t);

    Program replay = trace::loadProgram(path);
    EXPECT_EQ(replay.name(), "trace:" + path);
    replay.validate();

    Interp sim(replay);
    ASSERT_TRUE(sim.run(t.insts + 1));
    EXPECT_EQ(sim.counts().insts, t.counts.insts);
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(sim.reg(r), t.finalRegs[r]) << "r" << r;
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileFailsLoudly)
{
    const std::string path = tempPath("never_written.svwtrace");
    std::string err;
    EXPECT_FALSE(trace::probeFile(path, err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
    EXPECT_THROW(trace::readFile(path), std::runtime_error);
    EXPECT_THROW(trace::loadProgram(path), std::runtime_error);
}

TEST(TraceFile, TruncationFailsLoudly)
{
    const std::string path = tempPath("truncated.svwtrace");
    trace::writeFile(path, recordKernel("gzip", 3'000));
    std::vector<char> file = slurp(path);
    file.resize(file.size() / 2);
    spit(path, file);

    std::string err;
    EXPECT_FALSE(trace::probeFile(path, err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    EXPECT_THROW(trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, BitRotFailsChecksum)
{
    const std::string path = tempPath("bitrot.svwtrace");
    trace::writeFile(path, recordKernel("gzip", 3'000));
    std::vector<char> file = slurp(path);
    file[file.size() / 2] ^= 0x40;  // flip one payload bit
    spit(path, file);

    std::string err;
    EXPECT_FALSE(trace::probeFile(path, err));
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;
    EXPECT_THROW(trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, WrongMagicAndStaleVersionRejected)
{
    const std::string path = tempPath("badmagic.svwtrace");
    trace::writeFile(path, recordKernel("gzip", 3'000));
    std::vector<char> file = slurp(path);

    std::vector<char> wrongMagic = file;
    wrongMagic[0] = 'X';
    spit(path, wrongMagic);
    std::string err;
    EXPECT_FALSE(trace::probeFile(path, err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;

    // Bump the version field (first payload u32, after magic+len) and
    // re-seal the checksum so only the version check can reject it.
    std::vector<char> stale = file;
    stale[16] = static_cast<char>(trace::traceVersion + 1);
    {
        std::uint64_t h = 14695981039346656037ull;
        for (std::size_t i = 16; i < stale.size() - 8; ++i) {
            h ^= static_cast<unsigned char>(stale[i]);
            h *= 1099511628211ull;
        }
        for (int i = 0; i < 8; ++i)
            stale[stale.size() - 8 + i] = static_cast<char>(h >> (8 * i));
    }
    spit(path, stale);
    EXPECT_FALSE(trace::probeFile(path, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
    EXPECT_THROW(trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, ChecksumTracksContent)
{
    const std::string path = tempPath("content.svwtrace");
    trace::writeFile(path, recordKernel("gzip", 3'000));
    const std::uint64_t sumA = trace::fileChecksum(path);

    // Same workload, different sizing: same name on disk, different
    // content, different checksum.
    trace::writeFile(path, recordKernel("gzip", 6'000));
    const std::uint64_t sumB = trace::fileChecksum(path);
    EXPECT_NE(sumA, sumB);

    // Registry plumbing: trace workloads get a content-bearing cache
    // augment, and rewriting the file changes it.
    const std::string name = "trace:" + path;
    ASSERT_TRUE(workloads::isKnown(name));
    const std::string augB = workloads::cacheKeyAugment(name);
    EXPECT_NE(augB.find("trace.payload="), std::string::npos) << augB;
    trace::writeFile(path, recordKernel("mcf", 3'000));
    EXPECT_NE(workloads::cacheKeyAugment(name), augB);
    std::remove(path.c_str());
}

TEST(TraceRegistry, RegistryBuildsReplayWorkload)
{
    const std::string path = tempPath("registry.svwtrace");
    trace::writeFile(path, recordKernel("synth:chase:2", 3'000));

    const std::string name = "trace:" + path;
    std::string err;
    ASSERT_TRUE(workloads::validate(name, err)) << err;
    Program prog = workloads::make(name, 999'999);  // sizing is ignored
    EXPECT_EQ(prog.name(), name);

    Interp sim(prog);
    ASSERT_TRUE(sim.run(10'000'000));
    std::remove(path.c_str());

    EXPECT_FALSE(workloads::isKnown(name));  // gone with the file
}
