/**
 * @file
 * Unit tests: SPCT (store PC table) and the store-sets dependence
 * predictor.
 */

#include <gtest/gtest.h>

#include "lsu/spct.hh"
#include "lsu/store_sets.hh"

using namespace svw;

// ---------------------------------------------------------------------
// SPCT
// ---------------------------------------------------------------------

TEST(Spct, EmptyLookupReturnsSentinel)
{
    SPCT spct(512, 8);
    EXPECT_EQ(spct.lookup(0x1000), ~std::uint64_t(0));
}

TEST(Spct, RemembersLastStorePc)
{
    SPCT spct(512, 8);
    spct.update(0x1000, 8, 0x40);
    EXPECT_EQ(spct.lookup(0x1000), 0x40u);
    spct.update(0x1000, 8, 0x44);
    EXPECT_EQ(spct.lookup(0x1000), 0x44u);
}

TEST(Spct, GranularityIsEightBytes)
{
    SPCT spct(512, 8);
    spct.update(0x1000, 1, 0x40);
    EXPECT_EQ(spct.lookup(0x1007), 0x40u);  // same quadword
    EXPECT_EQ(spct.lookup(0x1008), ~std::uint64_t(0));
}

TEST(Spct, MultiGranuleStoreUpdatesBoth)
{
    SPCT spct(512, 8);
    spct.update(0x1004, 8, 0x40);  // spans two granules
    EXPECT_EQ(spct.lookup(0x1000), 0x40u);
    EXPECT_EQ(spct.lookup(0x1008), 0x40u);
}

TEST(Spct, TaglessAliasing)
{
    SPCT spct(64, 8);  // 64 entries x 8 B = 512 B span
    spct.update(0x0000, 8, 0xa);
    EXPECT_EQ(spct.lookup(0x200), 0xau);  // alias maps to the same entry
}

// ---------------------------------------------------------------------
// Store sets
// ---------------------------------------------------------------------

namespace {

StoreSets
mkSets(stats::StatRegistry &reg)
{
    return StoreSets(4096, 256, reg);
}

} // namespace

TEST(StoreSets, UntrainedLoadsUnconstrained)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    EXPECT_EQ(ss.loadDependency(0x100), 0u);
}

TEST(StoreSets, TrainingCreatesDependence)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    ss.train(0x40 /*store*/, 0x100 /*load*/);
    ss.storeDispatched(0x40, 7);
    EXPECT_EQ(ss.loadDependency(0x100), 7u);
}

TEST(StoreSets, ResolutionClearsDependence)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    ss.train(0x40, 0x100);
    ss.storeDispatched(0x40, 7);
    ss.storeResolved(0x40, 7);
    EXPECT_EQ(ss.loadDependency(0x100), 0u);
}

TEST(StoreSets, SquashClearsDependence)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    ss.train(0x40, 0x100);
    ss.storeDispatched(0x40, 7);
    ss.storeSquashed(0x40, 7);
    EXPECT_EQ(ss.loadDependency(0x100), 0u);
}

TEST(StoreSets, YoungerStoreReplacesOlderInLfst)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    ss.train(0x40, 0x100);
    ss.storeDispatched(0x40, 7);
    const InstSeqNum prev = ss.storeDispatched(0x40, 9);
    EXPECT_EQ(prev, 7u);  // store-store ordering within the set
    EXPECT_EQ(ss.loadDependency(0x100), 9u);
    // Resolution of the OLD store must not clear the new claim.
    ss.storeResolved(0x40, 7);
    EXPECT_EQ(ss.loadDependency(0x100), 9u);
}

TEST(StoreSets, MergeMovesTrainedPair)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    ss.train(0x40, 0x100);
    ss.train(0x44, 0x104);
    // A cross violation merges the trained pair into one set. Classic
    // store-sets only reassigns the two PCs involved in the violation,
    // so train the store against the load we will query.
    ss.train(0x44, 0x100);
    ss.storeDispatched(0x44, 11);
    EXPECT_EQ(ss.loadDependency(0x100), 11u)
        << "the merged pair must share a set";
    // The store also still constrains its original partner.
    ss.storeResolved(0x44, 11);
    ss.storeDispatched(0x44, 13);
    EXPECT_EQ(ss.loadDependency(0x100), 13u);
}

TEST(StoreSets, UntrainedStoreHasNoSideEffects)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    EXPECT_EQ(ss.storeDispatched(0x888, 3), 0u);
    ss.storeResolved(0x888, 3);  // no-op, no crash
}

TEST(StoreSets, TrainingsCounted)
{
    stats::StatRegistry reg;
    StoreSets ss = mkSets(reg);
    ss.train(1, 2);
    ss.train(3, 4);
    EXPECT_EQ(ss.trainings.value(), 2u);
}
