/**
 * @file
 * Workload-suite tests: every kernel builds, validates, halts under the
 * functional interpreter, scales with the instruction target, and
 * exhibits the memory behaviour its benchmark mapping claims
 * (DESIGN.md section 3).
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;
using namespace svw::workloads;

TEST(Workloads, SuiteHasSixteenPaperNames)
{
    const auto &names = suiteNames();
    ASSERT_EQ(names.size(), 16u);
    EXPECT_EQ(names.front(), "bzip2");
    EXPECT_EQ(names.back(), "vpr.r");
    for (const auto &n : names)
        EXPECT_TRUE(isKnown(n));
    EXPECT_FALSE(isKnown("quake"));
}

TEST(Workloads, Fig8SubsetIsInSuite)
{
    for (const auto &n : fig8Names())
        EXPECT_TRUE(isKnown(n));
    EXPECT_EQ(fig8Names().size(), 5u);
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(make("nonesuch", 1000), std::runtime_error);
}

/** Per-workload checks parameterized over the full suite. */
class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, BuildsAndValidates)
{
    Program p = make(GetParam(), 10'000);
    EXPECT_EQ(p.name(), GetParam());
    EXPECT_GT(p.textSize(), 4u);
    EXPECT_NO_THROW(p.validate());
}

TEST_P(WorkloadSuite, HaltsNearTarget)
{
    Program p = make(GetParam(), 10'000);
    Interp in(p);
    ASSERT_TRUE(in.run(2'000'000)) << "did not halt";
    // Within a loose band of the requested dynamic size.
    EXPECT_GT(in.counts().insts, 2'000u);
    EXPECT_LT(in.counts().insts, 200'000u);
}

TEST_P(WorkloadSuite, DeterministicAcrossBuilds)
{
    Program p1 = make(GetParam(), 5'000);
    Program p2 = make(GetParam(), 5'000);
    Interp a(p1), b(p2);
    a.run(1'000'000);
    b.run(1'000'000);
    ASSERT_EQ(a.counts().insts, b.counts().insts);
    for (RegIndex r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "r" << r;
    EXPECT_TRUE(a.memory().identicalTo(b.memory()));
}

TEST_P(WorkloadSuite, ScalesWithTarget)
{
    Program small = make(GetParam(), 5'000);
    Program big = make(GetParam(), 40'000);
    Interp is(small), ib(big);
    is.run(10'000'000);
    ib.run(10'000'000);
    EXPECT_GT(ib.counts().insts, is.counts().insts * 3);
}

TEST_P(WorkloadSuite, HasLoadsAndStores)
{
    Program p = make(GetParam(), 10'000);
    Interp in(p);
    in.run(2'000'000);
    EXPECT_GT(in.counts().loads, 0u);
    EXPECT_GT(in.counts().stores, 0u);
    EXPECT_GT(in.counts().branches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite, ::testing::ValuesIn(suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Behavioural claims from the DESIGN.md mapping
// ---------------------------------------------------------------------

namespace {

InterpCounts
countsOf(const std::string &name, std::uint64_t target = 20'000)
{
    Program p = make(name, target);
    Interp in(p);
    in.run(5'000'000);
    return in.counts();
}

} // namespace

TEST(WorkloadBehaviour, TwolfAndVprHaveSilentStores)
{
    EXPECT_GT(countsOf("twolf").silentStores, 50u);
    EXPECT_GT(countsOf("vpr.p").silentStores, 50u);
    EXPECT_GT(countsOf("vpr.r").silentStores, 50u);
}

TEST(WorkloadBehaviour, EonIsCallAndStoreHeavy)
{
    auto c = countsOf("eon.c");
    // Stack push/pop plus object writes: stores are a sizable fraction.
    EXPECT_GT(double(c.stores) / double(c.insts), 0.12);
}

TEST(WorkloadBehaviour, VortexIsStoreDense)
{
    auto c = countsOf("vortex");
    EXPECT_GT(double(c.stores) / double(c.insts), 0.2);
    EXPECT_GT(double(c.loads) / double(c.insts), 0.3);
}

TEST(WorkloadBehaviour, McfIsLoadSerial)
{
    auto c = countsOf("mcf");
    EXPECT_GT(double(c.loads) / double(c.insts), 0.2);
    // Few stores: write-back is periodic.
    EXPECT_LT(double(c.stores) / double(c.insts), 0.1);
}

TEST(WorkloadBehaviour, CraftyIsComputeBound)
{
    auto c = countsOf("crafty");
    EXPECT_LT(double(c.loads + c.stores) / double(c.insts), 0.2);
}

TEST(WorkloadBehaviour, TwolfIsBranchy)
{
    auto c = countsOf("twolf");
    EXPECT_GT(double(c.branches) / double(c.insts), 0.05);
}

TEST(WorkloadBehaviour, EonVariantsDiffer)
{
    Program c = make("eon.c", 10'000);
    Program k = make("eon.k", 10'000);
    Interp ic(c), ik(k);
    ic.run(1'000'000);
    ik.run(1'000'000);
    // Same kernel skeleton, different parameters: different results.
    bool differ = false;
    for (RegIndex r = 0; r < numArchRegs && !differ; ++r)
        differ = ic.reg(r) != ik.reg(r);
    EXPECT_TRUE(differ);
}
