/**
 * @file
 * Batched co-simulation tests: the byte-identity invariant (merged
 * sweep results identical for every --batch x --jobs combination),
 * the planBatches grouping rule (units never cross workloads,
 * instruction budgets, or golden-check settings; hook/timing/
 * neverCache cells always run solo), engagement instrumentation, and
 * the copy-on-write MemoryImage backing the lanes share.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "func/memory_image.hh"
#include "harness/batch.hh"
#include "harness/executor.hh"
#include "harness/serialize.hh"
#include "harness/sweep.hh"

using namespace svw;
using namespace svw::harness;

namespace {

SweepCell
makeCell(const std::string &group, const std::string &label,
         const std::string &workload, std::uint64_t insts,
         bool baseline = false)
{
    SweepCell c;
    c.group = group;
    c.label = label;
    c.workload = workload;
    c.targetInsts = insts;
    c.baseline = baseline;
    return c;
}

/** Fig5-shaped spec: two workload rows, three config columns. */
SweepSpec
figSpec(std::uint64_t insts = 3'000)
{
    SweepSpec spec("batch-test");
    for (const std::string w : {"gzip", "crafty"}) {
        spec.add(makeCell(w, "BASE", w, insts, true));
        SweepCell nlq = makeCell(w, "NLQ", w, insts);
        nlq.config.opt = OptMode::Nlq;
        spec.add(nlq);
        SweepCell svw = makeCell(w, "NLQ+SVW", w, insts);
        svw.config.opt = OptMode::Nlq;
        svw.config.svw = SvwMode::Upd;
        spec.add(svw);
    }
    return spec;
}

std::deque<std::size_t>
allIndices(const SweepSpec &spec)
{
    std::deque<std::size_t> out;
    for (std::size_t i = 0; i < spec.size(); ++i)
        out.push_back(i);
    return out;
}

std::vector<std::string>
resultsJson(const SweepResults &res)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < res.spec().size(); ++i)
        out.push_back(runResultToJson(res.outcome(i).result));
    return out;
}

} // namespace

TEST(BatchPlan, ResolveBatchK)
{
    EXPECT_GE(resolveBatchK(0), 2u) << "auto must actually batch";
    EXPECT_EQ(resolveBatchK(1), 1u);
    EXPECT_EQ(resolveBatchK(7), 7u);
}

TEST(BatchPlan, Batchability)
{
    SweepCell plain = makeCell("g", "l", "gzip", 2'000);
    EXPECT_TRUE(cellBatchable(plain));

    SweepCell hooked = plain;
    hooked.hook = [](Core &) {};
    EXPECT_FALSE(cellBatchable(hooked));

    SweepCell timed = plain;
    timed.timingReps = 3;
    EXPECT_FALSE(cellBatchable(timed));

    SweepCell perf = plain;
    perf.neverCache = true;
    EXPECT_FALSE(cellBatchable(perf));

    // goldenCheck=false cells batch — just never with checked ones.
    SweepCell unchecked = plain;
    unchecked.goldenCheck = false;
    EXPECT_TRUE(cellBatchable(unchecked));
}

TEST(BatchPlan, UnitsPartitionPendingAndNeverMixIncompatibleCells)
{
    SweepSpec spec = figSpec();
    // Incompatible riders: another budget, an unchecked cell, and the
    // three solo-only kinds.
    spec.add(makeCell("gzip", "SHORT", "gzip", 1'000));
    SweepCell nogold = makeCell("gzip", "NOGOLD", "gzip", 3'000);
    nogold.goldenCheck = false;
    spec.add(nogold);
    SweepCell hooked = makeCell("gzip", "HOOK", "gzip", 3'000);
    hooked.hook = [](Core &) {};
    spec.add(hooked);
    SweepCell timed = makeCell("gzip", "TIMED", "gzip", 3'000);
    timed.timingReps = 2;
    spec.add(timed);
    SweepCell perf = makeCell("gzip", "PERF", "gzip", 3'000);
    perf.neverCache = true;
    spec.add(perf);

    const std::deque<std::size_t> pending = allIndices(spec);
    const auto units = planBatches(spec, pending, 4);

    // Exact partition of the pending set.
    std::multiset<std::size_t> seen;
    for (const auto &unit : units) {
        ASSERT_FALSE(unit.empty());
        EXPECT_LE(unit.size(), 4u);
        seen.insert(unit.begin(), unit.end());
    }
    EXPECT_EQ(seen.size(), pending.size());
    for (std::size_t i : pending)
        EXPECT_EQ(seen.count(i), 1u) << "cell " << i;

    // Units are ordered by first member, members ascending.
    for (std::size_t u = 0; u + 1 < units.size(); ++u)
        EXPECT_LT(units[u][0], units[u + 1][0]);

    for (const auto &unit : units) {
        EXPECT_TRUE(std::is_sorted(unit.begin(), unit.end()));
        const SweepCell &first = spec.cell(unit[0]);
        for (std::size_t i : unit) {
            const SweepCell &c = spec.cell(i);
            EXPECT_EQ(c.workload, first.workload)
                << "unit crosses workloads";
            EXPECT_EQ(c.targetInsts, first.targetInsts);
            EXPECT_EQ(c.goldenCheck, first.goldenCheck);
            if (unit.size() > 1)
                EXPECT_TRUE(cellBatchable(c));
        }
    }

    // The solo-only cells came out as singletons.
    for (const char *label : {"HOOK", "TIMED", "PERF"}) {
        const std::size_t idx = spec.index("gzip", label);
        for (const auto &unit : units) {
            if (std::find(unit.begin(), unit.end(), idx) != unit.end())
                EXPECT_EQ(unit.size(), 1u) << label;
        }
    }

    // k<=1 disables batching entirely.
    for (const auto &unit : planBatches(spec, pending, 1))
        EXPECT_EQ(unit.size(), 1u);

    // Wide k still cuts units at the bucket boundary: the six
    // compatible fig cells split 3+3 by workload, never 6.
    for (const auto &unit : planBatches(spec, pending, 16))
        EXPECT_LE(unit.size(), 3u);
}

TEST(Batch, ByteIdenticalAcrossBatchAndJobs)
{
    const SweepSpec spec = figSpec();

    SweepOptions ref;
    ref.batch = 1;
    const std::uint64_t solo = batchedCells();
    const SweepResults base = runSweep(spec, ref);
    EXPECT_EQ(batchedCells() - solo, 0u) << "--batch=1 must not batch";
    const std::vector<std::string> want = resultsJson(base);
    for (std::size_t i = 0; i < spec.size(); ++i)
        EXPECT_TRUE(base.outcome(i).ok);

    for (unsigned batch : {0u, 2u, 4u}) {
        for (unsigned jobs : {1u, 4u}) {
            SweepOptions opts;
            opts.batch = batch;
            opts.jobs = jobs;
            const SweepResults got = runSweep(spec, opts);
            EXPECT_EQ(resultsJson(got), want)
                << "batch=" << batch << " jobs=" << jobs;
        }
    }
}

TEST(Batch, InProcessSweepEngagesBatchingAndCountsLanes)
{
    const SweepSpec spec = figSpec();
    SweepOptions opts;
    opts.batch = 4;

    const std::uint64_t runs0 = batchRuns();
    const std::uint64_t lanes0 = batchedCells();
    const std::uint64_t cells0 = runCellCalls();
    runSweep(spec, opts);
    // Two rows of three compatible cells: one 3-lane unit per row.
    EXPECT_EQ(batchRuns() - runs0, 2u);
    EXPECT_EQ(batchedCells() - lanes0, 6u);
    // Batched lanes still count as cell executions.
    EXPECT_EQ(runCellCalls() - cells0, spec.size());
}

TEST(Batch, SoloOnlyCellsRunUnbatchedAndStillSucceed)
{
    SweepSpec spec("solo");
    SweepCell hooked = makeCell("g", "HOOK", "gzip", 2'000, true);
    hooked.hook = [](Core &) {};
    spec.add(hooked);
    SweepCell timed = makeCell("g", "TIMED", "gzip", 2'000);
    timed.timingReps = 2;
    spec.add(timed);

    SweepOptions opts;
    opts.batch = 8;
    const std::uint64_t runs0 = batchRuns();
    const SweepResults res = runSweep(spec, opts);
    EXPECT_EQ(batchRuns() - runs0, 0u);
    for (std::size_t i = 0; i < spec.size(); ++i)
        EXPECT_TRUE(res.outcome(i).ok);
}

TEST(Batch, RunBatchMatchesRunCellExactly)
{
    const SweepSpec spec = figSpec();
    ProgramCache cache;

    // Reference: each cell solo.
    std::vector<std::string> want;
    for (std::size_t i = 0; i < spec.size(); ++i)
        want.push_back(
            runResultToJson(runCell(spec.cell(i), cache).result));

    // One 3-lane unit per workload row, straight through runBatch.
    const auto units = planBatches(spec, allIndices(spec), 4);
    ASSERT_EQ(units.size(), 2u);
    for (const auto &unit : units) {
        const std::vector<CellOutcome> outs = runBatch(spec, unit, cache);
        ASSERT_EQ(outs.size(), unit.size());
        for (std::size_t i = 0; i < unit.size(); ++i) {
            EXPECT_TRUE(outs[i].ok);
            EXPECT_EQ(runResultToJson(outs[i].result), want[unit[i]])
                << spec.cell(unit[i]).name();
        }
    }
}

TEST(MemoryImageBacking, ReadsFallThroughAndWritesCopyOnWrite)
{
    MemoryImage base;
    base.write(0x1000, 8, 0x1122334455667788ull);
    base.write(0x2000, 4, 0xdeadbeef);

    MemoryImage lane;
    lane.setBacking(&base);

    // Read-through without copying any page in.
    EXPECT_EQ(lane.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(lane.read(0x2000, 4), 0xdeadbeefull);
    EXPECT_EQ(lane.read(0x3000, 4), 0u);  // untouched reads as zero
    EXPECT_EQ(lane.pageCount(), 0u);

    // First write copies the page; the rest of the page rides along
    // and the backing never changes.
    lane.write(0x1004, 2, 0xaaaa);
    EXPECT_EQ(lane.pageCount(), 1u);
    EXPECT_EQ(lane.read(0x1000, 4), 0x55667788ull);
    EXPECT_EQ(lane.read(0x1004, 2), 0xaaaaull);
    EXPECT_EQ(base.read(0x1004, 2), 0x3344ull);

    // A second lane over the same backing is isolated from the first.
    MemoryImage lane2;
    lane2.setBacking(&base);
    EXPECT_EQ(lane2.read(0x1004, 2), 0x3344ull);
    lane2.write(0x2000, 1, 0x01);
    EXPECT_EQ(lane.read(0x2000, 4), 0xdeadbeefull);

    // clear() drops the copies but keeps the pristine backed view.
    lane.clear();
    EXPECT_EQ(lane.pageCount(), 0u);
    EXPECT_EQ(lane.read(0x1004, 2), 0x3344ull);
}

TEST(MemoryImageBacking, IdenticalToSeesThroughBackings)
{
    MemoryImage base;
    base.write(0x1000, 8, 0x1122334455667788ull);
    base.write(0x5000, 8, 0xfeedfacecafef00dull);

    // Two backed lanes with no writes are identical to each other and
    // to a flat copy of the base.
    MemoryImage a, b, flat;
    a.setBacking(&base);
    b.setBacking(&base);
    flat.write(0x1000, 8, 0x1122334455667788ull);
    flat.write(0x5000, 8, 0xfeedfacecafef00dull);
    EXPECT_TRUE(a.identicalTo(b));
    EXPECT_TRUE(b.identicalTo(a));
    EXPECT_TRUE(a.identicalTo(flat));
    EXPECT_TRUE(flat.identicalTo(a));

    // Same value written into an owned copy keeps them identical;
    // a differing byte breaks it both ways round.
    a.write(0x1000, 1, 0x88);
    EXPECT_TRUE(a.identicalTo(b));
    a.write(0x1000, 1, 0x00);
    EXPECT_FALSE(a.identicalTo(b));
    EXPECT_FALSE(b.identicalTo(a));
    a.write(0x1000, 1, 0x88);
    EXPECT_TRUE(a.identicalTo(b));

    // A write on a page the backing lacks counts too.
    b.write(0x9000, 1, 0x5a);
    EXPECT_FALSE(a.identicalTo(b));
    a.write(0x9000, 1, 0x5a);
    EXPECT_TRUE(a.identicalTo(b));
}
