/**
 * @file
 * SweepSession engine-API tests (harness/session.hh): the blocking
 * path must match runSweep byte for byte, both incremental driving
 * styles (in-caller step() and threaded wakeFd draining) must converge
 * to the same merged results, cache-served cells must surface as
 * CachedHit events without re-simulating, abort() must discard pending
 * work only, and the LRU-bounded MemoryResultCache must evict oldest
 * first while never evicting the newest entry.
 */

#include <gtest/gtest.h>

#include <poll.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/figures.hh"
#include "harness/serialize.hh"
#include "harness/session.hh"
#include "harness/sweep.hh"

using namespace svw;
using namespace svw::harness;

namespace {

/** A small but non-trivial spec: two workloads, five configs each. */
SweepSpec
smallSpec(std::uint64_t insts)
{
    return fig5Spec({"gzip", "mcf"}, insts);
}

/** Serialize every successful outcome, in spec order. */
std::vector<std::string>
resultLines(const SweepResults &res)
{
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < res.spec().size(); ++i) {
        const CellOutcome &o = res.outcome(i);
        if (o.ok)
            lines.push_back(runResultToJson(o.result));
    }
    return lines;
}

/** Event-stream recorder shared by the tests. */
struct Recorder
{
    std::vector<CellEventKind> kinds;
    std::vector<std::size_t> indices;
    std::vector<std::string> lines;  ///< non-empty resultLine payloads

    SessionCallback callback()
    {
        return [this](const CellEvent &ev) {
            kinds.push_back(ev.kind);
            indices.push_back(ev.index);
            if (!ev.resultLine.empty())
                lines.push_back(ev.resultLine);
        };
    }

    std::size_t count(CellEventKind k) const
    {
        return static_cast<std::size_t>(
            std::count(kinds.begin(), kinds.end(), k));
    }
};

} // namespace

TEST(SweepSession, BlockingRunMatchesRunSweepAndStreamsEvents)
{
    const SweepSpec spec = smallSpec(3000);
    const SweepResults direct = runSweep(spec, SweepOptions{});

    Recorder rec;
    SweepSession session(spec, SweepOptions{});
    const SweepResults viaSession = session.run(rec.callback());

    EXPECT_EQ(resultLines(direct), resultLines(viaSession));
    EXPECT_EQ(rec.count(CellEventKind::Started), spec.size());
    EXPECT_EQ(rec.count(CellEventKind::Done), spec.size());
    EXPECT_EQ(rec.count(CellEventKind::CachedHit), 0u);
    // Every successful Done event carried the lossless result line.
    std::vector<std::string> expect = resultLines(direct);
    std::vector<std::string> got = rec.lines;
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(expect, got);
}

TEST(SweepSession, IncrementalInCallerMatchesBlocking)
{
    const SweepSpec spec = smallSpec(3200);
    const SweepResults direct = runSweep(spec, SweepOptions{});

    Recorder rec;
    SweepSession session(spec, SweepOptions{});
    session.start(rec.callback());
    EXPECT_TRUE(session.started());
    std::size_t steps = 0;
    while (session.step())
        ++steps;
    EXPECT_TRUE(session.finished());
    const SweepResults res = session.finish();

    EXPECT_GE(steps, 1u);
    EXPECT_EQ(resultLines(direct), resultLines(res));
    EXPECT_EQ(session.cellsDone(), spec.size());
    EXPECT_EQ(rec.count(CellEventKind::Done), spec.size());

    // Each cell's Started precedes its Done.
    for (std::size_t i = 0; i < rec.kinds.size(); ++i) {
        if (rec.kinds[i] != CellEventKind::Done)
            continue;
        bool startedBefore = false;
        for (std::size_t j = 0; j < i; ++j)
            if (rec.kinds[j] == CellEventKind::Started &&
                rec.indices[j] == rec.indices[i])
                startedBefore = true;
        EXPECT_TRUE(startedBefore) << "cell " << rec.indices[i];
    }
}

TEST(SweepSession, IncrementalThreadedDrainsViaWakeFd)
{
    const SweepSpec spec = smallSpec(3400);
    const SweepResults direct = runSweep(spec, SweepOptions{});

    SweepOptions opts;
    opts.threads = 2;
    Recorder rec;
    SweepSession session(spec, opts);
    session.start(rec.callback());
    const int wake = session.wakeFd();
    ASSERT_GE(wake, 0);

    while (!session.finished()) {
        pollfd p{wake, POLLIN, 0};
        ASSERT_GE(::poll(&p, 1, 30'000), 0);
        ASSERT_TRUE(p.revents & POLLIN) << "wakeFd timed out";
        session.step();
    }
    const SweepResults res = session.finish();
    EXPECT_EQ(resultLines(direct), resultLines(res));
    EXPECT_EQ(rec.count(CellEventKind::Done), spec.size());
}

TEST(SweepSession, WarmMemoryCacheServesCachedHitsWithoutSimulating)
{
    processMemoryResultCache().clear();
    const SweepSpec spec = smallSpec(3600);
    SweepOptions opts;
    opts.memCache = true;

    const SweepResults cold = SweepSession(spec, opts).run();
    const std::uint64_t callsAfterCold = runCellCalls();

    Recorder rec;
    SweepSession warm(spec, opts);
    warm.start(rec.callback());
    EXPECT_TRUE(warm.finished());  // every cell probed out of memory
    const SweepResults res = warm.finish();

    EXPECT_EQ(runCellCalls(), callsAfterCold);
    EXPECT_EQ(rec.count(CellEventKind::CachedHit), spec.size());
    EXPECT_EQ(warm.cacheHits(), spec.size());
    EXPECT_EQ(resultLines(cold), resultLines(res));
    for (std::size_t i = 0; i < spec.size(); ++i)
        EXPECT_TRUE(res.outcome(i).cached);
}

TEST(SweepSession, AbortDiscardsPendingUnitsOnly)
{
    const SweepSpec spec = smallSpec(3800);
    SweepOptions opts;
    opts.batch = 1;  // one cell per unit: a precise abort boundary
    SweepSession session(spec, opts);
    session.start();
    EXPECT_TRUE(session.step());  // run exactly one cell
    session.abort();
    EXPECT_TRUE(session.finished());
    const SweepResults res = session.finish();

    std::size_t ran = 0;
    for (std::size_t i = 0; i < spec.size(); ++i)
        if (res.outcome(i).ran)
            ++ran;
    EXPECT_EQ(ran, 1u);
    EXPECT_EQ(session.cellsDone(), 1u);
}

TEST(MemoryResultCacheLru, EvictsOldestFirstAndKeepsNewest)
{
    MemoryResultCache cache;
    RunResult r;
    r.workload = "w";

    auto key = [](const std::string &mat) {
        CellKey k;
        k.material = mat;
        k.hash = std::hash<std::string>{}(mat);
        return k;
    };

    cache.put(key("a"), r);
    cache.put(key("b"), r);
    cache.put(key("c"), r);
    EXPECT_EQ(cache.entries(), 3u);
    const std::size_t threeBytes = cache.bytes();

    // Refresh "a", then cap to roughly two entries: "b" (the least
    // recently used) must go; "a" and the newest insert survive.
    RunResult out;
    EXPECT_TRUE(cache.get(key("a"), out));
    cache.setMaxBytes(threeBytes - 1);
    EXPECT_LT(cache.entries(), 3u);
    EXPECT_TRUE(cache.get(key("a"), out));
    EXPECT_FALSE(cache.get(key("b"), out));
    EXPECT_GE(cache.evictions(), 1u);

    // A cap smaller than any single entry degrades to a cache of one:
    // the newest put must always be servable back.
    cache.setMaxBytes(1);
    cache.put(key("d"), r);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_TRUE(cache.get(key("d"), out));

    // Hash collisions with different material never serve wrongly.
    CellKey collide = key("e");
    cache.put(collide, r);
    CellKey other = collide;
    other.material = "different";
    EXPECT_FALSE(cache.get(other, out));
}

TEST(SweepSession, IncrementalRejectsForkPool)
{
    SweepOptions opts;
    opts.jobs = 4;
    SweepSession session(smallSpec(100), opts);
    EXPECT_THROW(session.start(), std::logic_error);
}
