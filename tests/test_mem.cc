/**
 * @file
 * Unit tests: cache model, ports/buses, and the two-level hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/port.hh"
#include "stats/stats.hh"

using namespace svw;

namespace {

CacheParams
smallCache()
{
    return CacheParams{1024, 2, 64, 2};  // 1 KB, 2-way, 8 sets
}

} // namespace

TEST(Cache, MissThenHit)
{
    stats::StatRegistry reg;
    Cache c("c", smallCache(), reg);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
    EXPECT_EQ(c.misses.value(), 2u);
    EXPECT_EQ(c.hits.value(), 2u);
}

TEST(Cache, AssociativityHoldsTwoWays)
{
    stats::StatRegistry reg;
    Cache c("c", smallCache(), reg);
    // Same set: addresses 8 sets * 64 B = 512 B apart.
    c.access(0x0000, false);
    c.access(0x0200, false);
    EXPECT_TRUE(c.access(0x0000, false).hit);
    EXPECT_TRUE(c.access(0x0200, false).hit);
    // A third line in the set evicts the LRU (0x0000 after the touch
    // order above is... 0x0000 was touched more recently than 0x0200).
    c.access(0x0200, false);  // make 0x0000 the LRU
    c.access(0x0400, false);  // evicts 0x0000
    EXPECT_FALSE(c.access(0x0000, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    stats::StatRegistry reg;
    Cache c("c", smallCache(), reg);
    c.access(0x0000, true);   // dirty
    c.access(0x0200, false);
    c.access(0x0000, true);   // keep dirty line MRU
    auto res = c.access(0x0400, false);  // evicts 0x0200 (clean)
    EXPECT_FALSE(res.writebackVictim);
    c.access(0x0400, false);
    c.access(0x0600, false);  // evicts the dirty 0x0000
    EXPECT_EQ(c.writebacks.value(), 1u);
}

TEST(Cache, InvalidateRemovesLine)
{
    stats::StatRegistry reg;
    Cache c("c", smallCache(), reg);
    c.access(0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));  // already gone
}

TEST(Cache, ProbeHasNoSideEffects)
{
    stats::StatRegistry reg;
    Cache c("c", smallCache(), reg);
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.misses.value(), 0u);
}

TEST(Cache, LineAddrAndBank)
{
    stats::StatRegistry reg;
    Cache c("c", smallCache(), reg);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(c.bank(0x0000, 2), 0u);
    EXPECT_EQ(c.bank(0x0040, 2), 1u);
    EXPECT_EQ(c.bank(0x0080, 2), 0u);
}

TEST(Cache, BadGeometryPanics)
{
    stats::StatRegistry reg;
    CacheParams p{1000, 2, 64, 2};  // non power of two
    EXPECT_THROW(Cache("c", p, reg), std::logic_error);
}

TEST(CyclePort, WidthEnforcedPerCycle)
{
    CyclePort p(2);
    EXPECT_TRUE(p.tryClaim(10));
    EXPECT_TRUE(p.tryClaim(10));
    EXPECT_FALSE(p.tryClaim(10));
    EXPECT_TRUE(p.tryClaim(11));  // new cycle
    EXPECT_EQ(p.freeSlots(11), 1u);
    EXPECT_EQ(p.freeSlots(12), 2u);
}

TEST(Bus, SerializesTransfers)
{
    Bus bus(4);
    EXPECT_EQ(bus.schedule(10), 14u);
    EXPECT_EQ(bus.schedule(10), 18u);  // queued behind the first
    EXPECT_EQ(bus.schedule(100), 104u);  // idle gap
}

TEST(Hierarchy, LatenciesLayer)
{
    stats::StatRegistry reg;
    MemParams p;
    MemHierarchy m(p, reg);
    // Cold: L1 miss -> L2 miss -> memory.
    Cycle t0 = m.accessData(0x1000, false, 0);
    EXPECT_GT(t0, 150u);
    // Now hot in L1.
    Cycle t1 = m.accessData(0x1000, false, 1000);
    EXPECT_EQ(t1, 1000u + p.l1d.latency);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    stats::StatRegistry reg;
    MemParams p;
    p.l1d.sizeBytes = 1024;  // tiny L1 to force eviction
    MemHierarchy m(p, reg);
    m.accessData(0x0000, false, 0);
    // Walk far past L1 capacity.
    for (Addr a = 64; a < 16 * 1024; a += 64)
        m.accessData(a, false, 1000);
    // 0x0000 is out of L1 but still in L2: latency = L1 + bus + L2.
    Cycle t = m.accessData(0x0000, false, 100000);
    EXPECT_GT(t, 100000u + p.l1d.latency);
    EXPECT_LT(t, 100000u + p.memLatency);
}

TEST(Hierarchy, InstAndDataSeparateL1s)
{
    stats::StatRegistry reg;
    MemParams p;
    MemHierarchy m(p, reg);
    m.accessInst(0x2000, 0);
    // Same address on the data side still misses L1D (hits L2).
    Cycle t = m.accessData(0x2000, false, 1000);
    EXPECT_GT(t, 1000u + p.l1d.latency);
}

TEST(Hierarchy, InvalidateLineDropsData)
{
    stats::StatRegistry reg;
    MemParams p;
    MemHierarchy m(p, reg);
    m.accessData(0x3000, true, 0);
    m.invalidateLine(0x3000);
    // Next access misses all the way to memory (L2 dropped it too).
    Cycle t = m.accessData(0x3000, false, 1000);
    EXPECT_GT(t, 1000u + p.memLatency);
}

TEST(Hierarchy, DataBankInterleave)
{
    stats::StatRegistry reg;
    MemParams p;
    MemHierarchy m(p, reg);
    EXPECT_NE(m.dataBank(0x0000), m.dataBank(0x0040));
    EXPECT_EQ(m.dataBank(0x0000), m.dataBank(0x0080));
    EXPECT_EQ(m.numDataBanks(), 2u);
}
