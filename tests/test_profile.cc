/**
 * @file
 * Self-profiler (base/profile.hh) and host-optimization toggle
 * (base/hostopt.hh) tests.
 *
 * The profiler's contract is observational purity: a profiled run
 * retires byte-identical cycles and metrics, attribution accounts for
 * the tick loop within the cell's wall time, and the folded-stack
 * rendering is deterministic. The hostopt contract is the same purity
 * for the legacy/optimized path pairs that bench/perf_ab A/B-times:
 * a toggle may change speed, never results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "base/hostopt.hh"
#include "base/profile.hh"
#include "cpu/completion_wheel.hh"
#include "harness/config.hh"
#include "harness/runner.hh"

using namespace svw;
using namespace svw::harness;

namespace {

/** RAII save/restore of the process-global legacy mask. */
struct LegacyMaskGuard
{
    unsigned saved = hostopt::legacyMask();
    ~LegacyMaskGuard() { hostopt::legacyMask() = saved; }
};

RunRequest
smallRequest(const char *workload)
{
    RunRequest req;
    req.workload = workload;
    req.targetInsts = 5'000;
    return req;
}

/** The result fields a host-side toggle/profiler must never change. */
void
expectSameSimulation(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.loadsMarked, b.loadsMarked);
    EXPECT_EQ(a.loadsReExecuted, b.loadsReExecuted);
    EXPECT_EQ(a.rexFlushes, b.rexFlushes);
    EXPECT_EQ(a.branchSquashes, b.branchSquashes);
    EXPECT_EQ(a.orderingSquashes, b.orderingSquashes);
    EXPECT_DOUBLE_EQ(a.elimRate, b.elimRate);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

} // namespace

TEST(Profile, AttributionAccountsForTheTickLoop)
{
    RunRequest req = smallRequest("gap");
    req.config.opt = OptMode::Ssq;
    req.config.svw = SvwMode::Upd;
    req.profile = true;
    const RunResult r = runOne(req);
    ASSERT_TRUE(r.halted);

    // Every simulated cycle is one profiled tick.
    EXPECT_EQ(r.profTicks, r.cycles);

    // Top-level stages all ran and their sum fits inside the cell wall
    // (the wall additionally holds construction + golden + extraction).
    std::uint64_t top = 0;
    for (unsigned s = 0; s < prof::NumStages; ++s)
        if (prof::stageParent(prof::Stage(s)) == prof::NumStages) {
            EXPECT_GT(r.profStageNs[s], 0u)
                << prof::stageName(prof::Stage(s));
            top += r.profStageNs[s];
        }
    EXPECT_GT(top, 0u);
    EXPECT_LE(top, r.profCellNs);

    // Nested scopes are measured inside their parents on one monotonic
    // clock, so child <= parent holds exactly.
    EXPECT_LE(r.profStageNs[prof::WheelAdvance],
              r.profStageNs[prof::Complete]);
    EXPECT_LE(r.profStageNs[prof::LsuSearch], r.profStageNs[prof::Issue]);
}

TEST(Profile, DisabledRunLeavesCountersZero)
{
    RunRequest req = smallRequest("gap");
    const RunResult r = runOne(req);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.profTicks, 0u);
    EXPECT_EQ(r.profCellNs, 0u);
    for (unsigned s = 0; s < prof::NumStages; ++s)
        EXPECT_EQ(r.profStageNs[s], 0u);
}

TEST(Profile, ProfiledRunIsSimulationIdentical)
{
    RunRequest req = smallRequest("twolf");
    req.config.opt = OptMode::Nlq;
    req.config.svw = SvwMode::Upd;
    const RunResult off = runOne(req);
    req.profile = true;
    const RunResult on = runOne(req);
    expectSameSimulation(off, on);
}

TEST(Profile, TotalNsSumsTopLevelOnly)
{
    prof::StageTimes t;
    t.ns[prof::Commit] = 10;
    t.ns[prof::Complete] = 30;
    t.ns[prof::WheelAdvance] = 20;  // nested: already inside Complete
    t.ns[prof::Issue] = 5;
    t.ns[prof::LsuSearch] = 5;      // nested: already inside Issue
    EXPECT_EQ(t.totalNs(), 45u);
}

TEST(Profile, FoldedOutputIsDeterministicAndParses)
{
    prof::Collector c;
    prof::StageTimes t;
    t.ns[prof::Commit] = 100;
    t.ns[prof::Complete] = 70;
    t.ns[prof::WheelAdvance] = 30;
    t.ns[prof::Issue] = 50;
    t.ns[prof::LsuSearch] = 50;  // parent self time collapses to zero
    t.ticks = 7;
    c.add("b/cell", t, 300);
    c.add("a/cell", t, 250);
    c.add("a/cell", t, 250);  // accumulates, not duplicates

    // Cells sorted by name, stages in enum order, parents emitting
    // self time (counter minus children), zero-self lines omitted,
    // and the harness residual closing each cell.
    const std::string expect =
        "svw_sim;a/cell;tick;commit 200\n"
        "svw_sim;a/cell;tick;complete 80\n"
        "svw_sim;a/cell;tick;complete;wheel_advance 60\n"
        "svw_sim;a/cell;tick;issue;lsu_search 100\n"
        "svw_sim;a/cell;harness 60\n"
        "svw_sim;b/cell;tick;commit 100\n"
        "svw_sim;b/cell;tick;complete 40\n"
        "svw_sim;b/cell;tick;complete;wheel_advance 30\n"
        "svw_sim;b/cell;tick;issue;lsu_search 50\n"
        "svw_sim;b/cell;harness 80\n";
    EXPECT_EQ(c.folded(), expect);
    EXPECT_EQ(c.folded(), expect);  // rendering is pure

    // Every line is flamegraph.pl grammar: "frame(;frame)* <count>".
    std::istringstream in(c.folded());
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_EQ(line.rfind("svw_sim;", 0), 0u) << line;
        const std::string count = line.substr(sp + 1);
        EXPECT_EQ(count.find_first_not_of("0123456789"),
                  std::string::npos)
            << line;
        EXPECT_GT(std::stoull(count), 0u) << line;
    }

    c.clear();
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.folded(), "");
}

TEST(Profile, StageTaxonomyIsStable)
{
    // The names are wire format (folded frames, prof_* JSON keys,
    // BENCH_hotloop.json attribution); renaming one breaks downstream
    // diffing, so pin the taxonomy.
    EXPECT_STREQ(prof::stageName(prof::Commit), "commit");
    EXPECT_STREQ(prof::stageName(prof::Rex), "rex");
    EXPECT_STREQ(prof::stageName(prof::Complete), "complete");
    EXPECT_STREQ(prof::stageName(prof::WheelAdvance), "wheel_advance");
    EXPECT_STREQ(prof::stageName(prof::Issue), "issue");
    EXPECT_STREQ(prof::stageName(prof::LsuSearch), "lsu_search");
    EXPECT_STREQ(prof::stageName(prof::Dispatch), "dispatch");
    EXPECT_STREQ(prof::stageName(prof::Fetch), "fetch");
    EXPECT_EQ(prof::stageParent(prof::WheelAdvance), prof::Complete);
    EXPECT_EQ(prof::stageParent(prof::LsuSearch), prof::Issue);
    EXPECT_EQ(prof::stageParent(prof::Commit), prof::NumStages);
}

TEST(Hostopt, RleReleaseToggleIsHostSideOnly)
{
    LegacyMaskGuard guard;
    // perl.d on the 4-wide RLE machine drives IT pin pressure, so
    // releaseOnePinned runs both victim walks for real.
    RunRequest req = smallRequest("perl.d");
    req.config.machine = Machine::FourWide;
    req.config.opt = OptMode::Rle;
    req.config.svw = SvwMode::Upd;

    hostopt::legacyMask() = hostopt::LegacyRleRelease;
    const RunResult legacy = runOne(req);
    hostopt::legacyMask() = 0;
    const RunResult fast = runOne(req);
    expectSameSimulation(legacy, fast);
    EXPECT_GT(legacy.elimRate, 0.0);  // RLE actually exercised
}

TEST(Hostopt, WheelDrainToggleIsHostSideOnly)
{
    LegacyMaskGuard guard;
    // mcf's cache misses spread completions across the wheel horizon.
    RunRequest req = smallRequest("mcf");
    req.config.opt = OptMode::Ssq;
    req.config.svw = SvwMode::Upd;

    hostopt::legacyMask() = hostopt::LegacyWheelDrain;
    const RunResult legacy = runOne(req);
    hostopt::legacyMask() = 0;
    const RunResult fast = runOne(req);
    expectSameSimulation(legacy, fast);
}

TEST(Hostopt, WheelDrainOrderMatchesLegacyAndSurvivesMidRunFlip)
{
    LegacyMaskGuard guard;
    // Event pattern covering same-cycle order, past-due clamping and
    // the overflow map, drained once per mode and once flipping modes
    // mid-drain (the A/B harness interleaves arms in one process, so a
    // bucket filled under one mode may drain under the other).
    const auto runPattern = [](unsigned startMask, unsigned flipMask) {
        hostopt::legacyMask() = startMask;
        CompletionWheel w(64);
        std::vector<std::pair<Cycle, InstSeqNum>> fired;
        Cycle now = 0;
        w.schedule(now, 3, 1);
        w.schedule(now, 3, 2);      // same-cycle: insertion order
        w.schedule(now, 0, 3);      // past due: clamps to now + 1
        w.schedule(now, 200, 4);    // beyond horizon: overflow map
        w.schedule(now, 63, 5);
        for (now = 1; now <= 210; ++now) {
            if (now == 2)           // mid-run A/B flip
                hostopt::legacyMask() = flipMask;
            w.drain(now, [&](InstSeqNum seq) {
                fired.emplace_back(now, seq);
                if (seq == 3)       // completions may reschedule
                    w.schedule(now, now + 5, 6);
            });
        }
        EXPECT_TRUE(w.empty());
        return fired;
    };
    const unsigned L = hostopt::LegacyWheelDrain;
    const std::vector<std::pair<Cycle, InstSeqNum>> expect = {
        {1, 3}, {3, 1}, {3, 2}, {6, 6}, {63, 5}, {200, 4}};
    EXPECT_EQ(runPattern(0, 0), expect);
    EXPECT_EQ(runPattern(L, L), expect);
    // Legacy drains never clear occupancy bits; a flip to the bitmap
    // path must still fire (and merely re-check) everything.
    EXPECT_EQ(runPattern(L, 0), expect);
    EXPECT_EQ(runPattern(0, L), expect);
}
