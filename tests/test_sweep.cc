/**
 * @file
 * Sweep-engine tests: spec bookkeeping, wire-format exactness, the
 * parallel-execution determinism invariant (--jobs=N output ==
 * --jobs=1 output == the pre-refactor sequential runOne loop), shard
 * partitioning, worker-crash isolation, and the workload-program
 * cache.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <unistd.h>

#include "harness/executor.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "harness/serialize.hh"
#include "harness/sweep.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;
using namespace svw::harness;

namespace {

SweepCell
makeCell(const std::string &group, const std::string &label,
         const std::string &workload, std::uint64_t insts,
         bool baseline = false)
{
    SweepCell c;
    c.group = group;
    c.label = label;
    c.workload = workload;
    c.targetInsts = insts;
    c.baseline = baseline;
    return c;
}

} // namespace

TEST(SweepSpec, IndexesGroupsAndBaselines)
{
    SweepSpec spec("demo");
    EXPECT_EQ(spec.add(makeCell("g1", "a", "gzip", 1000, true)), 0u);
    EXPECT_EQ(spec.add(makeCell("g1", "b", "gzip", 1000)), 1u);
    EXPECT_EQ(spec.add(makeCell("g2", "a", "mcf", 1000, true)), 2u);
    EXPECT_EQ(spec.size(), 3u);
    EXPECT_EQ(spec.groups(), (std::vector<std::string>{"g1", "g2"}));
    EXPECT_EQ(spec.groupIndex("g2"), 1u);
    EXPECT_EQ(spec.index("g1", "b"), 1u);
    EXPECT_EQ(spec.baselineIndex("g1"), 0u);
    EXPECT_EQ(spec.baselineIndex("g2"), 2u);
    EXPECT_THROW(spec.index("g1", "zzz"), std::logic_error);
    EXPECT_THROW(spec.add(makeCell("g1", "a", "gzip", 1000)),
                 std::logic_error);
    // Second baseline in one group is rejected.
    EXPECT_THROW(spec.add(makeCell("g2", "b2", "mcf", 1000, true)),
                 std::logic_error);
}

TEST(SweepSerialize, RunResultRoundTripsExactly)
{
    RunResult r;
    r.workload = "perl.d";
    r.config = "SSQ+SVW+UPD";
    r.halted = true;
    r.goldenOk = false;
    r.cycles = 0xdeadbeefcafe;
    r.insts = 123456789;
    r.loads = 42;
    r.stores = 7;
    r.ipc = 1.0 / 3.0;
    r.loadsMarked = 11;
    r.loadsReExecuted = 5;
    r.loadsFilteredBySvw = 6;
    r.rexFlushes = 1;
    r.rexRate = 2.0 / 7.0;
    r.markedRate = 1e-17;
    r.elimRate = 99.999999999999986;
    r.bypassShare = 0.1;
    r.fsqLoadShare = 123.4567890123456789;
    r.branchSquashes = 100;
    r.orderingSquashes = 0;
    r.wrapDrains = 3;

    RunResult back;
    ASSERT_TRUE(runResultFromJson(runResultToJson(r), back));
    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.config, r.config);
    EXPECT_EQ(back.halted, r.halted);
    EXPECT_EQ(back.goldenOk, r.goldenOk);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.insts, r.insts);
    EXPECT_EQ(back.loads, r.loads);
    EXPECT_EQ(back.stores, r.stores);
    // Exact bit equality, not near: the figure output depends on it.
    EXPECT_EQ(back.ipc, r.ipc);
    EXPECT_EQ(back.rexRate, r.rexRate);
    EXPECT_EQ(back.markedRate, r.markedRate);
    EXPECT_EQ(back.elimRate, r.elimRate);
    EXPECT_EQ(back.bypassShare, r.bypassShare);
    EXPECT_EQ(back.fsqLoadShare, r.fsqLoadShare);
    EXPECT_EQ(back.loadsMarked, r.loadsMarked);
    EXPECT_EQ(back.loadsReExecuted, r.loadsReExecuted);
    EXPECT_EQ(back.loadsFilteredBySvw, r.loadsFilteredBySvw);
    EXPECT_EQ(back.rexFlushes, r.rexFlushes);
    EXPECT_EQ(back.branchSquashes, r.branchSquashes);
    EXPECT_EQ(back.orderingSquashes, r.orderingSquashes);
    EXPECT_EQ(back.wrapDrains, r.wrapDrains);
}

TEST(SweepSerialize, NonFiniteDoublesAreValidJsonAndRoundTrip)
{
    // %.17g would print bare nan/inf tokens — not JSON, so a cached
    // entry would not re-parse in an external reader. They are encoded
    // as distinguished strings instead, and the round trip is exact.
    RunResult r;
    r.ipc = std::numeric_limits<double>::quiet_NaN();
    r.rexRate = std::numeric_limits<double>::infinity();
    r.markedRate = -std::numeric_limits<double>::infinity();

    const std::string json = runResultToJson(r);
    EXPECT_EQ(json.find(":nan"), std::string::npos) << json;
    EXPECT_EQ(json.find(":inf"), std::string::npos) << json;
    EXPECT_EQ(json.find(":-inf"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ipc\":\"NaN\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"rex_rate\":\"Infinity\""), std::string::npos);
    EXPECT_NE(json.find("\"marked_rate\":\"-Infinity\""),
              std::string::npos);

    RunResult back;
    ASSERT_TRUE(runResultFromJson(json, back));
    EXPECT_TRUE(std::isnan(back.ipc));
    EXPECT_EQ(back.rexRate, std::numeric_limits<double>::infinity());
    EXPECT_EQ(back.markedRate, -std::numeric_limits<double>::infinity());

    // Finite values keep the plain %.17g path.
    EXPECT_EQ(jsonDouble(0.5), "0.5");
    EXPECT_EQ(jsonDouble(std::numeric_limits<double>::quiet_NaN()),
              "\"NaN\"");

    RunResult junk;
    EXPECT_FALSE(
        runResultFromJson("{\"ipc\":\"NotANumberSpelledWrong\"}", junk));
}

TEST(SweepSerialize, CellRecordRoundTripsWithEscapes)
{
    CellRecord rec;
    rec.cellIndex = 9;
    rec.ok = false;
    rec.error = "panic: \"quote\"\n\ttab \\ backslash";
    rec.seconds = 0.123;
    rec.hostWallSeconds = 4.5e-9;
    rec.result.workload = "gzip";

    CellRecord back;
    ASSERT_TRUE(cellRecordFromLine(cellRecordToLine(rec), back));
    EXPECT_EQ(back.cellIndex, rec.cellIndex);
    EXPECT_EQ(back.ok, rec.ok);
    EXPECT_EQ(back.error, rec.error);
    EXPECT_EQ(back.seconds, rec.seconds);
    EXPECT_EQ(back.hostWallSeconds, rec.hostWallSeconds);
    EXPECT_EQ(back.result.workload, rec.result.workload);

    CellRecord junk;
    EXPECT_FALSE(cellRecordFromLine("{\"cell\":", junk));
    EXPECT_FALSE(cellRecordFromLine("not json", junk));
}

TEST(SweepProgramCache, BuildsEachProgramOnce)
{
    ProgramCache cache;
    const Program &a = cache.get("gzip", 5000);
    const Program &b = cache.get("gzip", 5000);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.builds(), 1u);
    const Program &c = cache.get("gzip", 6000);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(cache.builds(), 2u);

    // The by-reference runOne over the cached program is the same code
    // path (and result) as the build-it-yourself overload.
    RunRequest req;
    req.workload = "gzip";
    req.targetInsts = 5000;
    req.config.opt = OptMode::Nlq;
    req.config.svw = SvwMode::Upd;
    const RunResult viaCache = runOne(req, a);
    const RunResult rebuilt = runOne(req);
    EXPECT_EQ(runResultToJson(viaCache), runResultToJson(rebuilt));
}

/**
 * The ISSUE acceptance test: a fig5 --quick sweep produces the same
 * per-cell results at --jobs=4 as at --jobs=1, and both equal the
 * pre-refactor behavior (a plain sequential runOne loop over the same
 * cells). Compared through the lossless wire format, so equality is
 * bit-exact — which makes the formatted figure byte-identical too.
 */
TEST(SweepExecutor, Fig5QuickParallelMatchesSequentialAndGolden)
{
    const SweepSpec spec = fig5Spec(workloads::suiteNames(), 20'000);

    SweepOptions seq;
    const SweepResults rSeq = runSweep(spec, seq);

    SweepOptions par;
    par.jobs = 4;
    const SweepResults rPar = runSweep(spec, par);

    ASSERT_EQ(rSeq.spec().size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        // Pre-refactor golden: build the program and run the cell
        // directly, exactly like the old per-binary runConfigs loop.
        RunRequest req;
        req.workload = spec.cell(i).workload;
        req.targetInsts = spec.cell(i).targetInsts;
        req.config = spec.cell(i).config;
        const std::string golden = runResultToJson(runOne(req));

        ASSERT_TRUE(rSeq.outcome(i).ok) << spec.cell(i).name();
        ASSERT_TRUE(rPar.outcome(i).ok) << spec.cell(i).name();
        EXPECT_EQ(runResultToJson(rSeq.outcome(i).result), golden)
            << spec.cell(i).name();
        EXPECT_EQ(runResultToJson(rPar.outcome(i).result), golden)
            << spec.cell(i).name();
    }

    // And the assembled figure (what fig5_nlqls prints) is
    // byte-identical between job counts.
    auto renderFig5 = [&](const SweepResults &res) {
        FigureTable rex("Figure 5 (top): NLQ-LS % loads re-executed",
                        {"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"});
        for (const auto &w : res.shardGroups()) {
            rex.addRow(w, {res.result(w, "NLQ").rexRate,
                           res.result(w, "+SVW-UPD").rexRate,
                           res.result(w, "+SVW+UPD").rexRate,
                           res.result(w, "+PERFECT").rexRate});
        }
        rex.addAverageRow();
        std::ostringstream os;
        rex.print(os);
        return os.str();
    };
    EXPECT_EQ(renderFig5(rSeq), renderFig5(rPar));
}

TEST(SweepExecutor, ShardUnionEqualsUnshardedCellSet)
{
    const std::vector<std::string> suite = {"gzip", "mcf", "crafty"};
    const SweepSpec spec = fig5Spec(suite, 3'000);

    SweepOptions all;
    const SweepResults rAll = runSweep(spec, all);

    SweepOptions s0, s1;
    s0.jobs = s1.jobs = 2;
    s0.shardCount = s1.shardCount = 2;
    s0.shardIndex = 0;
    s1.shardIndex = 1;
    const SweepResults r0 = runSweep(spec, s0);
    const SweepResults r1 = runSweep(spec, s1);

    std::size_t ran0 = 0, ran1 = 0;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const bool in0 = r0.outcome(i).ran;
        const bool in1 = r1.outcome(i).ran;
        // Partition: every cell in exactly one shard.
        EXPECT_NE(in0, in1) << spec.cell(i).name();
        ran0 += in0;
        ran1 += in1;
        const CellOutcome &picked = in0 ? r0.outcome(i) : r1.outcome(i);
        ASSERT_TRUE(picked.ok);
        EXPECT_EQ(runResultToJson(picked.result),
                  runResultToJson(rAll.outcome(i).result));
        // Rows stay whole: a cell's shard is its group's shard.
        EXPECT_EQ(in0, spec.groupIndex(spec.cell(i).group) % 2 == 0);
    }
    EXPECT_EQ(ran0 + ran1, spec.size());
    EXPECT_GT(ran0, 0u);
    EXPECT_GT(ran1, 0u);
}

TEST(SweepExecutor, WorkerCrashFailsOnlyItsCell)
{
    SweepSpec spec("crashy");
    for (const std::string w : {"gzip", "crafty"}) {
        SweepCell a = makeCell(w, "ok1", w, 3'000, true);
        SweepCell b = makeCell(w, "ok2", w, 3'000);
        spec.add(a);
        spec.add(b);
    }
    SweepCell boom = makeCell("boom", "crash", "gzip", 3'000, true);
    // Simulate a hard worker death mid-cell (no exception, no
    // protocol goodbye): the pool must report it and keep going.
    boom.hook = [](Core &core) {
        if (core.cycle() == 50)
            ::_exit(17);
    };
    const std::size_t boomIdx = spec.add(boom);

    SweepOptions opts;
    opts.jobs = 2;
    const SweepResults res = runSweep(spec, opts);

    EXPECT_EQ(res.failures(), 1u);
    const CellOutcome &dead = res.outcome(boomIdx);
    EXPECT_TRUE(dead.ran);
    EXPECT_FALSE(dead.ok);
    EXPECT_NE(dead.error.find("boom/crash"), std::string::npos)
        << dead.error;
    EXPECT_FALSE(res.groupOk("boom"));

    // Every other cell survived with a valid result, so the merged
    // report is intact. (No sequential reference pass here: in-process
    // execution would run the crash hook inside this test binary.)
    for (const std::string w : {"gzip", "crafty"}) {
        EXPECT_TRUE(res.groupOk(w));
        for (const char *l : {"ok1", "ok2"}) {
            const CellOutcome &o = res.outcome(w, l);
            ASSERT_TRUE(o.ran && o.ok);
            EXPECT_TRUE(o.result.halted);
            EXPECT_TRUE(o.result.goldenOk);
            EXPECT_GT(o.result.cycles, 0u);
        }
    }
}

TEST(SweepExecutor, WorkerDeathMidLineDiscardsTruncatedRecord)
{
    // Regression: a worker that dies halfway through writing its
    // result line leaves a truncated trailing line (no '\n') in the
    // parent's drain buffer. The merge path must discard it and fail
    // the cell with the death diagnosis — never feed the fragment to
    // the deserializer or let it corrupt another cell's outcome.
    SweepSpec spec("truncated");
    for (const std::string w : {"gzip", "crafty"}) {
        spec.add(makeCell(w, "ok1", w, 3'000, true));
        spec.add(makeCell(w, "ok2", w, 3'000));
    }
    SweepCell boom = makeCell("boom", "midwrite", "gzip", 3'000, true);
    boom.hook = [](Core &core) {
        if (core.cycle() == 40) {
            // A plausible record prefix — cut off mid-field, no
            // newline — straight onto the worker's result pipe, then
            // a hard death.
            static const char partial[] =
                "{\"cell\":0,\"ok\":true,\"seconds\":0.25";
            (void)!::write(workerResultFd(), partial,
                           sizeof(partial) - 1);
            ::_exit(3);
        }
    };
    const std::size_t boomIdx = spec.add(boom);

    SweepOptions opts;
    opts.jobs = 2;
    const SweepResults res = runSweep(spec, opts);

    EXPECT_EQ(res.failures(), 1u);
    const CellOutcome &dead = res.outcome(boomIdx);
    EXPECT_TRUE(dead.ran);
    EXPECT_FALSE(dead.ok);
    EXPECT_NE(dead.error.find("exited with status 3"),
              std::string::npos)
        << dead.error;
    EXPECT_NE(dead.error.find("boom/midwrite"), std::string::npos);
    // The fragment's values never reached the outcome.
    EXPECT_EQ(dead.result.cycles, 0u);
    EXPECT_EQ(dead.seconds, 0.0);
    for (const std::string w : {"gzip", "crafty"}) {
        EXPECT_TRUE(res.groupOk(w));
        for (const char *l : {"ok1", "ok2"}) {
            const CellOutcome &o = res.outcome(w, l);
            ASSERT_TRUE(o.ran && o.ok);
            EXPECT_TRUE(o.result.goldenOk);
            EXPECT_GT(o.result.cycles, 0u);
        }
    }
}

TEST(SweepExecutor, CompleteLineForWrongCellIsProtocolCorruption)
{
    // A complete line with a bogus cell index (a worker gone insane)
    // must be treated as protocol corruption: the in-flight cell
    // fails, the worker is retired, and the rest of the sweep merges.
    SweepSpec spec("corrupt");
    spec.add(makeCell("gzip", "ok1", "gzip", 3'000, true));
    spec.add(makeCell("gzip", "ok2", "gzip", 3'000));
    SweepCell liar = makeCell("liar", "wrongidx", "gzip", 3'000, true);
    liar.hook = [](Core &core) {
        if (core.cycle() == 40) {
            static const char bogus[] =
                "{\"cell\":999,\"ok\":true,\"error\":\"\","
                "\"seconds\":0.1,\"host_wall_seconds\":0.1,"
                "\"result\":{}}\n";
            (void)!::write(workerResultFd(), bogus, sizeof(bogus) - 1);
            ::_exit(0);
        }
    };
    const std::size_t liarIdx = spec.add(liar);

    SweepOptions opts;
    opts.jobs = 2;
    const SweepResults res = runSweep(spec, opts);

    EXPECT_EQ(res.failures(), 1u);
    const CellOutcome &bad = res.outcome(liarIdx);
    EXPECT_TRUE(bad.ran);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("malformed worker record"),
              std::string::npos)
        << bad.error;
    EXPECT_TRUE(res.groupOk("gzip"));
}

TEST(SweepExecutor, OversplitShardWarnsAndRunsNothing)
{
    const SweepSpec spec = fig5Spec({"gzip"}, 2'000);  // one group
    SweepOptions opts;
    opts.shardIndex = 3;
    opts.shardCount = 5;

    ::testing::internal::CaptureStderr();
    const SweepResults res = runSweep(spec, opts);
    const std::string err = ::testing::internal::GetCapturedStderr();

    EXPECT_NE(err.find("--shard=3/5 selects no groups"),
              std::string::npos)
        << err;
    for (std::size_t i = 0; i < spec.size(); ++i)
        EXPECT_FALSE(res.outcome(i).ran);
    EXPECT_EQ(res.failures(), 0u);
    EXPECT_TRUE(res.shardGroups().empty());
}

TEST(SweepExecutor, MoreJobsThanCellsAndGoldenFailureIsReported)
{
    // jobs far beyond the cell count must not hang or leak workers,
    // and a thrown failure inside a worker (not a crash) comes back as
    // a failed cell with the exception text.
    SweepSpec spec("tiny");
    SweepCell good = makeCell("g", "good", "gzip", 2'000, true);
    spec.add(good);
    SweepCell bad = makeCell("g", "bad", "gzip", 2'000);
    bad.hook = [](Core &) {
        throw std::runtime_error("injected cell failure");
    };
    const std::size_t badIdx = spec.add(bad);

    SweepOptions opts;
    opts.jobs = 8;
    const SweepResults res = runSweep(spec, opts);
    EXPECT_TRUE(res.outcome(0).ok);
    EXPECT_FALSE(res.outcome(badIdx).ok);
    EXPECT_NE(res.outcome(badIdx).error.find("injected cell failure"),
              std::string::npos)
        << res.outcome(badIdx).error;
    EXPECT_FALSE(res.groupOk("g"));
    EXPECT_EQ(res.failures(), 1u);
}
