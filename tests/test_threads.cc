/**
 * @file
 * Thread-pool executor tests (--threads=N): the byte-identity
 * invariant across the sequential path, every thread width, and the
 * fork pool; the shared-ProgramCache build-once guarantee; the
 * in-memory ResultCache front short-circuiting runCell without
 * touching the disk store; exception containment per thread-pool
 * unit; and the jobs/threads mutual-exclusion guard.
 *
 * The fork-pool comparison leg is compiled out under ThreadSanitizer:
 * TSan does not follow fork(), and the sanitized CI job runs this
 * binary — the thread widths are the code under test there.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "harness/executor.hh"
#include "harness/figures.hh"
#include "harness/serialize.hh"
#include "harness/sweep.hh"
#include "prog/workloads/workloads.hh"

#if defined(__SANITIZE_THREAD__)
#define SVW_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SVW_TSAN 1
#endif
#endif

using namespace svw;
using namespace svw::harness;

namespace {

SweepCell
makeCell(const std::string &group, const std::string &label,
         const std::string &workload, std::uint64_t insts,
         bool baseline = false)
{
    SweepCell c;
    c.group = group;
    c.label = label;
    c.workload = workload;
    c.targetInsts = insts;
    c.baseline = baseline;
    return c;
}

std::vector<std::string>
resultsJson(const SweepResults &res)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < res.spec().size(); ++i)
        out.push_back(runResultToJson(res.outcome(i).result));
    return out;
}

/** Fresh private temp directory, removed on destruction. */
struct TempDir
{
    std::string path = make();
    ~TempDir() { std::filesystem::remove_all(path); }

    static std::string make()
    {
        char tmpl[] = "/tmp/svw-threads-test-XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        return dir ? dir : "";
    }
};

} // namespace

/**
 * The ISSUE acceptance test: fig5 --quick merged results are
 * bit-identical (through the lossless wire format) across the
 * sequential path, every thread width, and the fork pool — parallelism
 * reorders when cells run, never what they compute.
 */
TEST(ThreadPool, Fig5QuickByteIdenticalAcrossAllModes)
{
    const SweepSpec spec = fig5Spec(workloads::suiteNames(), 20'000);

    const SweepResults rSeq = runSweep(spec, SweepOptions{});
    const std::vector<std::string> golden = resultsJson(rSeq);
    for (std::size_t i = 0; i < spec.size(); ++i)
        ASSERT_TRUE(rSeq.outcome(i).ok) << spec.cell(i).name();

    for (unsigned threads : {1u, 2u, 4u}) {
        SweepOptions opts;
        opts.threads = threads;
        const SweepResults r = runSweep(spec, opts);
        EXPECT_EQ(r.failures(), 0u) << "threads=" << threads;
        EXPECT_EQ(resultsJson(r), golden) << "threads=" << threads;
    }

#ifndef SVW_TSAN
    SweepOptions fork;
    fork.jobs = 4;
    const SweepResults rFork = runSweep(spec, fork);
    EXPECT_EQ(rFork.failures(), 0u);
    EXPECT_EQ(resultsJson(rFork), golden);
#endif
}

/**
 * All thread workers share one ProgramCache: K cells of one workload
 * across 4 threads decode the program exactly once. The (workload,
 * insts) pair is unique to this test so entries from other tests in
 * this binary cannot mask a second build.
 */
TEST(ThreadPool, SharedProgramCacheBuildsOnceAcrossWorkers)
{
    constexpr std::uint64_t kInsts = 7'777;
    SweepSpec spec("build-once");
    const char *labels[] = {"BASE", "NLQ", "SSQ", "SSQ12", "NLQ12",
                            "BASE12"};
    for (std::size_t i = 0; i < 6; ++i) {
        SweepCell c = makeCell("gzip", labels[i], "gzip", kInsts, i == 0);
        if (i == 1 || i == 4)
            c.config.opt = OptMode::Nlq;
        if (i == 2 || i == 3)
            c.config.opt = OptMode::Ssq;
        if (i == 1 || i == 2 || i == 3 || i == 4)
            c.config.svw = SvwMode::Upd;
        if (i >= 3)
            c.config.ssnBits = 12;
        spec.add(c);
    }

    SweepOptions opts;
    opts.threads = 4;
    opts.batch = 1;  // singleton units: every cell is its own deal
    const std::uint64_t builds0 = processProgramCache().builds();
    const SweepResults res = runSweep(spec, opts);
    EXPECT_EQ(res.failures(), 0u);
    EXPECT_EQ(processProgramCache().builds() - builds0, 1u)
        << "the shared cache must decode (gzip, " << kInsts
        << ") exactly once for all workers";
}

/**
 * A warm in-memory ResultCache front serves hits without running
 * runCell or touching the filesystem: after the cold run, the disk
 * store is wiped, and the rerun still serves every cell (cached=true,
 * zero simulations, identical payloads) while writing nothing back to
 * the emptied directory.
 */
TEST(ThreadPool, MemoryResultCacheHitShortCircuitsRunCellAndDisk)
{
    namespace fs = std::filesystem;
    processMemoryResultCache().clear();
    TempDir dir;

    SweepSpec spec("mem-front");
    for (const std::string w : {"gzip", "crafty"}) {
        SweepCell base = makeCell(w, "BASE", w, 4'321, true);
        SweepCell nlq = makeCell(w, "NLQ", w, 4'321);
        nlq.config.opt = OptMode::Nlq;
        nlq.config.svw = SvwMode::Upd;
        spec.add(base);
        spec.add(nlq);
    }

    SweepOptions opts;
    opts.cacheDir = dir.path;
    const SweepResults cold = runSweep(spec, opts);
    EXPECT_EQ(cold.failures(), 0u);
    EXPECT_EQ(processMemoryResultCache().entries(), spec.size());

    // Wipe the disk store entirely; the memory front alone must carry
    // the warm rerun.
    fs::remove_all(dir.path);
    fs::create_directories(dir.path);

    const std::uint64_t hits0 = processMemoryResultCache().hits();
    const std::uint64_t calls0 = runCellCalls();
    const SweepResults warm = runSweep(spec, opts);
    EXPECT_EQ(runCellCalls() - calls0, 0u) << "warm run simulated";
    EXPECT_EQ(processMemoryResultCache().hits() - hits0, spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        EXPECT_TRUE(warm.outcome(i).ok);
        EXPECT_TRUE(warm.outcome(i).cached);
    }
    EXPECT_EQ(resultsJson(cold), resultsJson(warm));

    // Memory hits never re-populate the disk store.
    EXPECT_TRUE(fs::is_empty(dir.path))
        << "a memory hit wrote through to disk";

    // The front is only consulted when a sweep opts into caching: with
    // no cacheDir the same cells simulate from scratch.
    const std::uint64_t calls1 = runCellCalls();
    const SweepResults uncached = runSweep(spec, SweepOptions{});
    EXPECT_EQ(runCellCalls() - calls1, spec.size());
    EXPECT_EQ(resultsJson(uncached), resultsJson(cold));
}

/**
 * Exception containment, thread edition: a cell whose hook throws
 * fails only itself — the worker thread survives, every other cell
 * completes, and the merged report carries the exception text
 * (mirroring the fork-pool crash-containment test in test_sweep.cc;
 * --threads=1 gets the same protocol, unlike the sequential path
 * where the throw propagates).
 */
TEST(ThreadPool, WorkerExceptionFailsOnlyItsCell)
{
    SweepSpec spec("thread-boom");
    for (const std::string w : {"gzip", "crafty"}) {
        spec.add(makeCell(w, "ok1", w, 3'000, true));
        spec.add(makeCell(w, "ok2", w, 3'000));
    }
    SweepCell boom = makeCell("boom", "throw", "gzip", 3'000, true);
    boom.hook = [](Core &core) {
        if (core.cycle() == 50)
            throw std::runtime_error("injected thread failure");
    };
    const std::size_t boomIdx = spec.add(boom);

    for (unsigned threads : {1u, 2u}) {
        SweepOptions opts;
        opts.threads = threads;
        const SweepResults res = runSweep(spec, opts);

        EXPECT_EQ(res.failures(), 1u) << "threads=" << threads;
        const CellOutcome &dead = res.outcome(boomIdx);
        EXPECT_TRUE(dead.ran);
        EXPECT_FALSE(dead.ok);
        EXPECT_NE(dead.error.find("injected thread failure"),
                  std::string::npos)
            << dead.error;
        EXPECT_FALSE(res.groupOk("boom"));

        for (const std::string w : {"gzip", "crafty"}) {
            EXPECT_TRUE(res.groupOk(w));
            for (const char *l : {"ok1", "ok2"}) {
                const CellOutcome &o = res.outcome(w, l);
                ASSERT_TRUE(o.ran && o.ok) << w << "/" << l;
                EXPECT_TRUE(o.result.halted);
                EXPECT_TRUE(o.result.goldenOk);
            }
        }
    }
}

/** An onCellDone callback that throws stops the pool and propagates
 * to the caller, like the in-process path. */
TEST(ThreadPool, CallbackExceptionPropagates)
{
    SweepSpec spec("cb-throw");
    spec.add(makeCell("gzip", "BASE", "gzip", 3'000, true));

    SweepOptions opts;
    opts.threads = 2;
    opts.onCellDone = [](std::size_t, const CellOutcome &) {
        throw std::runtime_error("callback boom");
    };
    EXPECT_THROW(runSweep(spec, opts), std::runtime_error);
}

/** Conflicting nonzero --jobs/--threads is a usage error at the flag
 * layer (exit 2, test_bench_args.cc) and a hard assert at the engine
 * layer — never a silent precedence pick. */
TEST(ThreadPool, JobsAndThreadsAreMutuallyExclusive)
{
    SweepSpec spec("conflict");
    spec.add(makeCell("gzip", "BASE", "gzip", 2'000, true));

    SweepOptions both;
    both.jobs = 4;
    both.threads = 2;
    EXPECT_THROW(runSweep(spec, both), std::logic_error);

    // jobs=1 is the in-process default, so threads alone is fine.
    SweepOptions ok;
    ok.jobs = 1;
    ok.threads = 2;
    EXPECT_EQ(runSweep(spec, ok).failures(), 0u);
}
