/**
 * @file
 * Unit tests: the ring-buffer ROB (wrap-around across squash/refill
 * cycles, seq lookup with gaps, capacity behavior, pointer stability)
 * and the completion event wheel (insertion-order same-cycle drain,
 * squashed-entry skip, horizon overflow).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/completion_wheel.hh"
#include "cpu/rob.hh"

using namespace svw;

namespace {

StaticInst nopInst{Opcode::Nop, 0, 0, 0, 0};

DynInst
mkInst(InstSeqNum seq)
{
    DynInst d;
    d.seq = seq;
    d.setStatic(&nopInst);
    return d;
}

} // namespace

// ---------------------------------------------------------------------
// Ring ROB
// ---------------------------------------------------------------------

TEST(RobRing, WrapAroundManyTimes)
{
    ROB rob(8);
    InstSeqNum next = 1;
    // Push/pop far past the ring size so every slot is reused many
    // times; FIFO order and head/tail identity must hold throughout.
    for (int round = 0; round < 100; ++round) {
        while (!rob.full())
            rob.push(mkInst(next++));
        EXPECT_EQ(rob.size(), 8u);
        EXPECT_EQ(rob.tail().seq, next - 1);
        EXPECT_EQ(rob.head().seq, next - 8);
        // Commit a few from the head.
        rob.popHead();
        rob.popHead();
        rob.popHead();
        EXPECT_EQ(rob.head().seq, next - 5);
    }
}

TEST(RobRing, SquashRefillCyclesWithSeqGaps)
{
    ROB rob(8);
    InstSeqNum fetchCounter = 0;
    // Model the core's squash pattern: the fetch counter keeps running
    // while the ROB suffix is discarded, leaving seq gaps in the window.
    for (int round = 0; round < 50; ++round) {
        while (!rob.full())
            rob.push(mkInst(++fetchCounter));
        // Squash everything younger than the fourth-oldest entry; burn
        // fetch seqs for the killed wrong-path instructions that never
        // reached dispatch.
        auto it = rob.begin();
        ++it;
        ++it;
        ++it;
        const InstSeqNum keep = (*it).seq;
        while (!rob.empty() && rob.tail().seq > keep)
            rob.popTail();
        fetchCounter += 5;
        // Refill past the gap.
        rob.push(mkInst(++fetchCounter));
        // Ordering and lookup must survive the gap.
        EXPECT_EQ(rob.tail().seq, fetchCounter);
        EXPECT_EQ(rob.findBySeq(keep)->seq, keep);
        EXPECT_EQ(rob.findBySeq(fetchCounter)->seq, fetchCounter);
        EXPECT_EQ(rob.findBySeq(keep + 1), nullptr) << "squashed seq";
        // Drain a few so the ring head keeps advancing.
        rob.popHead();
        rob.popHead();
    }
}

TEST(RobRing, FindBySeqAbsentAndSquashed)
{
    ROB rob(8);
    rob.push(mkInst(2));
    rob.push(mkInst(5));
    rob.push(mkInst(9));
    EXPECT_EQ(rob.findBySeq(2)->seq, 2u);
    EXPECT_EQ(rob.findBySeq(5)->seq, 5u);
    EXPECT_EQ(rob.findBySeq(9)->seq, 9u);
    EXPECT_EQ(rob.findBySeq(1), nullptr);   // older than head
    EXPECT_EQ(rob.findBySeq(3), nullptr);   // in a gap
    EXPECT_EQ(rob.findBySeq(8), nullptr);   // in a gap near tail
    EXPECT_EQ(rob.findBySeq(10), nullptr);  // younger than tail
    rob.popTail();
    EXPECT_EQ(rob.findBySeq(9), nullptr) << "squashed entry";
}

TEST(RobRing, LowerBoundWithGaps)
{
    ROB rob(8);
    rob.push(mkInst(2));
    rob.push(mkInst(5));
    rob.push(mkInst(9));
    EXPECT_EQ(rob.lowerBound(1)->seq, 2u);
    EXPECT_EQ(rob.lowerBound(2)->seq, 2u);
    EXPECT_EQ(rob.lowerBound(3)->seq, 5u);
    EXPECT_EQ(rob.lowerBound(6)->seq, 9u);
    EXPECT_EQ(rob.lowerBound(9)->seq, 9u);
    EXPECT_EQ(rob.lowerBound(10), nullptr);
}

TEST(RobRing, CapacityFullBlocksDispatch)
{
    // Non-power-of-two capacity: the ring rounds up internally but the
    // architectural limit must stay exact (dispatch stalls at full()).
    ROB rob(6);
    for (InstSeqNum s = 1; s <= 6; ++s) {
        EXPECT_FALSE(rob.full());
        rob.push(mkInst(s));
    }
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.size(), 6u);
    rob.popHead();
    EXPECT_FALSE(rob.full());
    rob.push(mkInst(7));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 2u);
    EXPECT_EQ(rob.tail().seq, 7u);
}

TEST(RobRing, SlotPointersStableForEntryLifetime)
{
    ROB rob(16);
    DynInst &first = rob.push(mkInst(1));
    std::vector<DynInst *> ptrs{&first};
    for (InstSeqNum s = 2; s <= 16; ++s)
        ptrs.push_back(&rob.push(mkInst(s)));
    // Pushing up to capacity must not move earlier entries (the IQ, LSU
    // queues and rex store buffer hold these pointers).
    for (std::size_t i = 0; i < ptrs.size(); ++i)
        EXPECT_EQ(ptrs[i]->seq, i + 1);
    // Pop + refill reuses the head slots, not the live ones.
    rob.popHead();
    rob.popHead();
    rob.push(mkInst(17));
    EXPECT_EQ(ptrs[2]->seq, 3u) << "live entry must not move";
}

TEST(RobRing, IterationIsAgeOrdered)
{
    ROB rob(4);
    // Force wrap: fill, drain, refill.
    for (InstSeqNum s = 1; s <= 4; ++s)
        rob.push(mkInst(s));
    rob.popHead();
    rob.popHead();
    rob.push(mkInst(7));
    std::vector<InstSeqNum> seen;
    for (const DynInst &d : rob)
        seen.push_back(d.seq);
    EXPECT_EQ(seen, (std::vector<InstSeqNum>{3, 4, 7}));
}

// ---------------------------------------------------------------------
// Completion event wheel
// ---------------------------------------------------------------------

TEST(CompletionWheel, SameCycleEventsFireInInsertionOrder)
{
    CompletionWheel wheel(16);
    wheel.schedule(0, 3, 11);
    wheel.schedule(0, 3, 22);
    wheel.schedule(1, 3, 33);
    std::vector<InstSeqNum> fired;
    for (Cycle c = 0; c <= 4; ++c)
        wheel.drain(c, [&](InstSeqNum s) { fired.push_back(s); });
    EXPECT_EQ(fired, (std::vector<InstSeqNum>{11, 22, 33}));
    EXPECT_TRUE(wheel.empty());
}

TEST(CompletionWheel, SquashedEntriesAreSkippedByConsumer)
{
    // The core never prunes the wheel at squash: the drain callback
    // looks the seq up in the ROB and skips it. Model that contract.
    ROB rob(8);
    rob.push(mkInst(1));
    rob.push(mkInst(2));
    rob.push(mkInst(3));
    CompletionWheel wheel(16);
    wheel.schedule(0, 2, 1);
    wheel.schedule(0, 2, 3);
    rob.popTail();  // squash seq 3
    std::vector<InstSeqNum> completed;
    for (Cycle c = 1; c <= 2; ++c) {
        wheel.drain(c, [&](InstSeqNum s) {
            if (rob.findBySeq(s))
                completed.push_back(s);
        });
    }
    EXPECT_EQ(completed, (std::vector<InstSeqNum>{1}));
}

TEST(CompletionWheel, PastDueFiresNextDrainNotNever)
{
    CompletionWheel wheel(16);
    wheel.schedule(5, 5, 42);  // due <= now: clamp to now + 1
    bool fired = false;
    wheel.drain(5, [&](InstSeqNum) { fired = true; });
    EXPECT_FALSE(fired);
    wheel.drain(6, [&](InstSeqNum) { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(CompletionWheel, BeyondHorizonOverflowStillFiresOnTime)
{
    CompletionWheel wheel(8);
    wheel.schedule(0, 100, 7);   // way past the 8-cycle horizon
    wheel.schedule(0, 5, 1);     // in-wheel
    std::vector<std::pair<Cycle, InstSeqNum>> fired;
    for (Cycle c = 0; c <= 110; ++c) {
        if (c == 97)
            wheel.schedule(c, 100, 9);  // same due cycle, later insert
        wheel.drain(c, [&](InstSeqNum s) { fired.emplace_back(c, s); });
    }
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], (std::pair<Cycle, InstSeqNum>{5, 1}));
    // Overflow (inserted first) fires before the in-wheel event of the
    // same cycle: global insertion order is preserved.
    EXPECT_EQ(fired[1], (std::pair<Cycle, InstSeqNum>{100, 7}));
    EXPECT_EQ(fired[2], (std::pair<Cycle, InstSeqNum>{100, 9}));
    EXPECT_TRUE(wheel.empty());
}

TEST(CompletionWheel, DrainCallbackMaySchedule)
{
    CompletionWheel wheel(8);
    wheel.schedule(0, 2, 1);
    std::vector<InstSeqNum> fired;
    for (Cycle c = 1; c <= 5; ++c) {
        wheel.drain(c, [&](InstSeqNum s) {
            fired.push_back(s);
            if (s == 1)
                wheel.schedule(c, c + 1, 2);  // store-data capture pattern
        });
    }
    EXPECT_EQ(fired, (std::vector<InstSeqNum>{1, 2}));
}
