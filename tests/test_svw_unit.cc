/**
 * @file
 * Unit tests: SvwUnit policy glue — per-optimization SVW assignment,
 * forwarding updates, the re-execution filter test, invalidations, and
 * wrap clears.
 */

#include <gtest/gtest.h>

#include "cpu/dyninst.hh"
#include "svw/svw.hh"

using namespace svw;

namespace {

StaticInst ld8Inst{Opcode::Ld8, 1, 2, 0, 0};
StaticInst st8Inst{Opcode::St8, 0, 2, 3, 0};

SvwUnit
mkUnit(stats::StatRegistry &reg, bool upd = true)
{
    SvwConfig c;
    c.enabled = true;
    c.updateOnForward = upd;
    return SvwUnit(c, reg);
}

DynInst
mkLoad(Addr addr, SSN svw)
{
    DynInst d;
    d.setStatic(&ld8Inst);
    d.addr = addr;
    d.size = 8;
    d.svw = svw;
    d.svwValid = true;
    return d;
}

DynInst
mkStore(Addr addr, SSN ssn)
{
    DynInst d;
    d.setStatic(&st8Inst);
    d.addr = addr;
    d.size = 8;
    d.ssn = ssn;
    return d;
}

} // namespace

TEST(SvwUnit, DispatchWindowIsSsnRetire)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    u.ssn().assign();
    u.ssn().assign();
    u.ssn().onRetire(1);
    EXPECT_EQ(u.svwAtDispatch(), 1u);
}

TEST(SvwUnit, UnwrittenAddressNeverReExecutes)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    DynInst ld = mkLoad(0x1000, 0);
    EXPECT_FALSE(u.mustReExecute(ld));
    EXPECT_EQ(u.loadsFiltered.value(), 1u);
}

TEST(SvwUnit, VulnerableStoreForcesReExecution)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    // Working example of Figure 4a: load svw=62, store 66 writes A.
    DynInst st = mkStore(0xA00, 66);
    u.storeUpdate(st);
    DynInst ld = mkLoad(0xA00, 62);
    EXPECT_TRUE(u.mustReExecute(ld));
}

TEST(SvwUnit, FigureFourBAlternative)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    // Store 64 (older than the forwarding store 65) writes A; the load
    // forwarded from 65 so ld.svw=65 and must NOT re-execute.
    DynInst st = mkStore(0xA00, 64);
    u.storeUpdate(st);
    DynInst ld = mkLoad(0xA00, 62);
    u.onStoreForward(ld, 65);
    EXPECT_EQ(ld.svw, 65u);
    EXPECT_FALSE(u.mustReExecute(ld));
}

TEST(SvwUnit, ForwardUpdateDisabledInNoUpdMode)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg, /*upd=*/false);
    DynInst ld = mkLoad(0xA00, 62);
    u.onStoreForward(ld, 65);
    EXPECT_EQ(ld.svw, 62u);  // -UPD: window unchanged
}

TEST(SvwUnit, ForwardUpdateNeverShrinksWindow)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    DynInst ld = mkLoad(0xA00, 70);
    u.onStoreForward(ld, 65);  // older than current window start
    EXPECT_EQ(ld.svw, 70u);
}

TEST(SvwUnit, ComposeTakesMin)
{
    EXPECT_EQ(SvwUnit::composeSvw(10, 20), 10u);
    EXPECT_EQ(SvwUnit::composeSvw(20, 10), 10u);
}

TEST(SvwUnit, InvalidationMarksWholeLineYoung)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    for (int i = 0; i < 5; ++i)
        u.ssn().assign();  // SSNRENAME = 5
    u.invalidation(0x2000, 64);
    // Every load in flight (svw <= SSNRENAME) is vulnerable.
    DynInst ld = mkLoad(0x2010, 5);
    EXPECT_TRUE(u.mustReExecute(ld));
    DynInst ld2 = mkLoad(0x2040, 5);  // next line untouched
    EXPECT_FALSE(u.mustReExecute(ld2));
}

TEST(SvwUnit, WrapClearResetsFilter)
{
    stats::StatRegistry reg;
    SvwUnit u = mkUnit(reg);
    u.storeUpdate(mkStore(0xA00, 66));
    u.wrapClear();
    DynInst ld = mkLoad(0xA00, 0);
    EXPECT_FALSE(u.mustReExecute(ld));
    EXPECT_EQ(u.wrapDrains.value(), 1u);
}

TEST(SvwUnit, TruncatedComparisonWithinEpoch)
{
    stats::StatRegistry reg;
    SvwConfig c;
    c.enabled = true;
    c.ssnBits = 8;
    SvwUnit u(c, reg);
    // SSNs near the top of the 8-bit range still compare correctly
    // within an epoch (the wrap drain prevents cross-epoch compares).
    DynInst st = mkStore(0xA00, 250);
    u.storeUpdate(st);
    EXPECT_TRUE(u.mustReExecute(mkLoad(0xA00, 249)));
    EXPECT_FALSE(u.mustReExecute(mkLoad(0xA00, 250)));
}

TEST(SvwUnit, DisabledUnitSkipsStoreUpdates)
{
    stats::StatRegistry reg;
    SvwConfig c;
    c.enabled = false;
    SvwUnit u(c, reg);
    u.storeUpdate(mkStore(0xA00, 5));
    EXPECT_EQ(u.ssbf().updates.value(), 0u);
}
