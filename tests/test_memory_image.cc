/**
 * @file
 * Unit tests: sparse memory image.
 */

#include <gtest/gtest.h>

#include "func/memory_image.hh"
#include "prog/builder.hh"

using namespace svw;

TEST(MemoryImage, UnwrittenReadsZero)
{
    MemoryImage m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.read(0xffff'ffff'0000ull, 4), 0u);
    EXPECT_EQ(m.pageCount(), 0u);  // reads do not allocate
}

TEST(MemoryImage, WriteReadAllSizes)
{
    MemoryImage m;
    m.write(0x100, 8, 0x8877665544332211ull);
    EXPECT_EQ(m.read(0x100, 8), 0x8877665544332211ull);
    EXPECT_EQ(m.read(0x100, 4), 0x44332211u);
    EXPECT_EQ(m.read(0x104, 4), 0x88776655u);
    EXPECT_EQ(m.read(0x100, 2), 0x2211u);
    EXPECT_EQ(m.read(0x107, 1), 0x88u);
}

TEST(MemoryImage, LittleEndianByteOrder)
{
    MemoryImage m;
    m.write(0x200, 4, 0x0a0b0c0d);
    EXPECT_EQ(m.read(0x200, 1), 0x0du);
    EXPECT_EQ(m.read(0x203, 1), 0x0au);
}

TEST(MemoryImage, PartialOverwrite)
{
    MemoryImage m;
    m.write(0x300, 8, ~0ull);
    m.write(0x302, 2, 0);
    EXPECT_EQ(m.read(0x300, 8), 0xffffffff0000ffffull);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage m;
    const Addr a = MemoryImage::pageBytes - 4;
    m.write(a, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(MemoryImage::pageBytes, 4), 0x11223344u);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(MemoryImage, BadSizePanics)
{
    MemoryImage m;
    EXPECT_THROW(m.read(0, 3), std::logic_error);
    EXPECT_THROW(m.write(0, 5, 0), std::logic_error);
}

TEST(MemoryImage, BytesRoundTrip)
{
    MemoryImage m;
    std::uint8_t out[16], in[16];
    for (int i = 0; i < 16; ++i)
        out[i] = static_cast<std::uint8_t>(i * 7);
    m.writeBytes(0x4ffa, out, 16);  // crosses a page
    m.readBytes(0x4ffa, in, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(in[i], out[i]);
}

TEST(MemoryImage, IdenticalToSelfAndCopies)
{
    MemoryImage a, b;
    EXPECT_TRUE(a.identicalTo(b));
    a.write(0x100, 8, 42);
    EXPECT_FALSE(a.identicalTo(b));
    b.write(0x100, 8, 42);
    EXPECT_TRUE(a.identicalTo(b));
}

TEST(MemoryImage, IdenticalTreatsZeroPagesAsAbsent)
{
    MemoryImage a, b;
    a.write(0x100, 8, 0);  // allocates a page of zeros
    EXPECT_TRUE(a.identicalTo(b));
    EXPECT_TRUE(b.identicalTo(a));
}

TEST(MemoryImage, ClearDropsEverything)
{
    MemoryImage m;
    m.write(0x100, 8, 7);
    m.clear();
    EXPECT_EQ(m.read(0x100, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

// ---------------------------------------------------------------------------
// Copy-on-write backing (batched co-simulation lanes)
// ---------------------------------------------------------------------------

TEST(MemoryImageCow, ReadsFallThroughWithoutCopying)
{
    MemoryImage base, lane;
    base.write(0x100, 8, 0xdeadbeefcafef00dull);
    lane.setBacking(&base);

    EXPECT_EQ(lane.read(0x100, 8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(lane.read(0x104, 2), 0xbeefu);
    // Pure reads never materialise an owned page.
    EXPECT_EQ(lane.pageCount(), 0u);
}

TEST(MemoryImageCow, FirstWriteCopiesThePageAndPreservesNeighbours)
{
    MemoryImage base, lane;
    base.write(0x100, 8, 0x1111'1111'1111'1111ull);
    base.write(0x108, 8, 0x2222'2222'2222'2222ull);
    lane.setBacking(&base);

    lane.write(0x100, 1, 0xff);
    EXPECT_EQ(lane.pageCount(), 1u);
    // The rest of the copied-in page still shows the backing's bytes.
    EXPECT_EQ(lane.read(0x100, 8), 0x1111'1111'1111'11ffull);
    EXPECT_EQ(lane.read(0x108, 8), 0x2222'2222'2222'2222ull);
    // The backing itself is never mutated.
    EXPECT_EQ(base.read(0x100, 8), 0x1111'1111'1111'1111ull);
    EXPECT_EQ(base.pageCount(), 1u);
}

TEST(MemoryImageCow, StraddlingWriteCopiesBothPages)
{
    // A write across the page boundary of a backed region must copy in
    // both pages and splice the value correctly over backing content.
    MemoryImage base, lane;
    const Addr edge = MemoryImage::pageBytes - 4;
    base.write(edge - 4, 8, ~0ull);                   // tail of page 0
    base.write(MemoryImage::pageBytes, 8, ~0ull);     // head of page 1
    lane.setBacking(&base);

    lane.write(edge, 8, 0x8877665544332211ull);
    EXPECT_EQ(lane.pageCount(), 2u);
    EXPECT_EQ(lane.read(edge, 8), 0x8877665544332211ull);
    // Backing bytes around the write survive the page copies.
    EXPECT_EQ(lane.read(edge - 4, 4), 0xffffffffu);
    EXPECT_EQ(lane.read(MemoryImage::pageBytes + 4, 4), 0xffffffffu);
    // Both backing pages are untouched.
    EXPECT_EQ(base.read(edge, 8), ~0ull);
}

TEST(MemoryImageCow, WriteToNeverTouchedSharedPageStartsFromZero)
{
    // A write to a page the backing never touched must come up as a
    // fresh zero page, not garbage — and not allocate in the backing.
    MemoryImage base, lane;
    base.write(0x100, 8, 42);
    lane.setBacking(&base);

    lane.write(0x10'0000, 2, 0xabcd);
    EXPECT_EQ(lane.read(0x10'0000, 8), 0xabcdu);  // high bytes zero
    EXPECT_EQ(base.read(0x10'0000, 8), 0u);
    EXPECT_EQ(base.pageCount(), 1u);
}

TEST(MemoryImageCow, LanesAreIsolatedFromEachOther)
{
    // Two lanes over one backing: each sees its own writes plus the
    // shared image, never the sibling's writes.
    MemoryImage base, laneA, laneB;
    base.write(0x100, 8, 7);
    laneA.setBacking(&base);
    laneB.setBacking(&base);

    laneA.write(0x100, 8, 111);
    laneB.write(0x200, 8, 222);
    EXPECT_EQ(laneA.read(0x100, 8), 111u);
    EXPECT_EQ(laneA.read(0x200, 8), 0u);
    EXPECT_EQ(laneB.read(0x100, 8), 7u);
    EXPECT_EQ(laneB.read(0x200, 8), 222u);
}

TEST(MemoryImageCow, ClearRestoresThePristineBackedView)
{
    // clear() models lane recycling (squash to checkpoint / next cell):
    // all private pages drop and the lane reads the backing again, with
    // the lookup caches correctly invalidated.
    MemoryImage base, lane;
    base.write(0x100, 8, 7);
    lane.setBacking(&base);

    lane.write(0x100, 8, 99);          // CoW copy, also primes caches
    ASSERT_EQ(lane.read(0x100, 8), 99u);
    lane.clear();
    EXPECT_EQ(lane.pageCount(), 0u);
    EXPECT_EQ(lane.read(0x100, 8), 7u);  // backing shines through again
    lane.write(0x100, 1, 1);             // CoW works a second time
    EXPECT_EQ(lane.read(0x100, 8), 1u);  // low byte replaced, rest 0
    EXPECT_EQ(base.read(0x100, 8), 7u);
}

TEST(MemoryImageCow, IdenticalToSeesThroughBacking)
{
    // Comparison walks the union of touched pages with the backing
    // folded in on both sides: a lane that only shadows pages with
    // identical bytes equals a flat image with the same content.
    MemoryImage base, lane, flat;
    base.write(0x100, 8, 7);
    lane.setBacking(&base);
    flat.write(0x100, 8, 7);
    EXPECT_TRUE(lane.identicalTo(flat));
    EXPECT_TRUE(flat.identicalTo(lane));

    lane.write(0x100, 1, 8);  // diverge from the backing
    EXPECT_FALSE(lane.identicalTo(flat));
    flat.write(0x100, 1, 8);
    EXPECT_TRUE(lane.identicalTo(flat));
}

TEST(MemoryImage, LoadProgramAppliesSegments)
{
    ProgramBuilder b("t");
    Addr a = b.allocWords({11, 22});
    Addr c = b.allocBytes({0xaa, 0xbb});
    b.halt();
    Program p = b.finish();
    MemoryImage m;
    m.loadProgram(p);
    EXPECT_EQ(m.read(a, 8), 11u);
    EXPECT_EQ(m.read(a + 8, 8), 22u);
    EXPECT_EQ(m.read(c, 1), 0xaau);
    EXPECT_EQ(m.read(c + 1, 1), 0xbbu);
}
