/**
 * @file
 * Unit tests: sparse memory image.
 */

#include <gtest/gtest.h>

#include "func/memory_image.hh"
#include "prog/builder.hh"

using namespace svw;

TEST(MemoryImage, UnwrittenReadsZero)
{
    MemoryImage m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.read(0xffff'ffff'0000ull, 4), 0u);
    EXPECT_EQ(m.pageCount(), 0u);  // reads do not allocate
}

TEST(MemoryImage, WriteReadAllSizes)
{
    MemoryImage m;
    m.write(0x100, 8, 0x8877665544332211ull);
    EXPECT_EQ(m.read(0x100, 8), 0x8877665544332211ull);
    EXPECT_EQ(m.read(0x100, 4), 0x44332211u);
    EXPECT_EQ(m.read(0x104, 4), 0x88776655u);
    EXPECT_EQ(m.read(0x100, 2), 0x2211u);
    EXPECT_EQ(m.read(0x107, 1), 0x88u);
}

TEST(MemoryImage, LittleEndianByteOrder)
{
    MemoryImage m;
    m.write(0x200, 4, 0x0a0b0c0d);
    EXPECT_EQ(m.read(0x200, 1), 0x0du);
    EXPECT_EQ(m.read(0x203, 1), 0x0au);
}

TEST(MemoryImage, PartialOverwrite)
{
    MemoryImage m;
    m.write(0x300, 8, ~0ull);
    m.write(0x302, 2, 0);
    EXPECT_EQ(m.read(0x300, 8), 0xffffffff0000ffffull);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage m;
    const Addr a = MemoryImage::pageBytes - 4;
    m.write(a, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(MemoryImage::pageBytes, 4), 0x11223344u);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(MemoryImage, BadSizePanics)
{
    MemoryImage m;
    EXPECT_THROW(m.read(0, 3), std::logic_error);
    EXPECT_THROW(m.write(0, 5, 0), std::logic_error);
}

TEST(MemoryImage, BytesRoundTrip)
{
    MemoryImage m;
    std::uint8_t out[16], in[16];
    for (int i = 0; i < 16; ++i)
        out[i] = static_cast<std::uint8_t>(i * 7);
    m.writeBytes(0x4ffa, out, 16);  // crosses a page
    m.readBytes(0x4ffa, in, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(in[i], out[i]);
}

TEST(MemoryImage, IdenticalToSelfAndCopies)
{
    MemoryImage a, b;
    EXPECT_TRUE(a.identicalTo(b));
    a.write(0x100, 8, 42);
    EXPECT_FALSE(a.identicalTo(b));
    b.write(0x100, 8, 42);
    EXPECT_TRUE(a.identicalTo(b));
}

TEST(MemoryImage, IdenticalTreatsZeroPagesAsAbsent)
{
    MemoryImage a, b;
    a.write(0x100, 8, 0);  // allocates a page of zeros
    EXPECT_TRUE(a.identicalTo(b));
    EXPECT_TRUE(b.identicalTo(a));
}

TEST(MemoryImage, ClearDropsEverything)
{
    MemoryImage m;
    m.write(0x100, 8, 7);
    m.clear();
    EXPECT_EQ(m.read(0x100, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(MemoryImage, LoadProgramAppliesSegments)
{
    ProgramBuilder b("t");
    Addr a = b.allocWords({11, 22});
    Addr c = b.allocBytes({0xaa, 0xbb});
    b.halt();
    Program p = b.finish();
    MemoryImage m;
    m.loadProgram(p);
    EXPECT_EQ(m.read(a, 8), 11u);
    EXPECT_EQ(m.read(a + 8, 8), 22u);
    EXPECT_EQ(m.read(c, 1), 0xaau);
    EXPECT_EQ(m.read(c + 1, 1), 0xbbu);
}
