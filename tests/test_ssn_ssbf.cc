/**
 * @file
 * Unit tests: SSN numbering with wrap-around (section 3.6) and the
 * SSBF in all Figure 8 organizations.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "base/random.hh"
#include "svw/ssbf.hh"
#include "svw/ssn.hh"

using namespace svw;

// ---------------------------------------------------------------------
// SSN
// ---------------------------------------------------------------------

TEST(Ssn, MonotonicAssignment)
{
    SsnState s(16);
    EXPECT_EQ(s.assign(), 1u);
    EXPECT_EQ(s.assign(), 2u);
    EXPECT_EQ(s.ssnRename(), 2u);
}

TEST(Ssn, TruncationMasksWidth)
{
    SsnState s(8);
    EXPECT_EQ(s.trunc(0x1ff), 0xffu);
    EXPECT_EQ(s.trunc(0x100), 0u);
    SsnState wide(64);
    EXPECT_EQ(wide.trunc(~SSN(0)), ~SSN(0));
}

TEST(Ssn, WrapDetectedAtWidthBoundary)
{
    SsnState s(8);
    for (int i = 1; i < 255; ++i)
        s.assign();
    EXPECT_FALSE(s.nextAssignWraps());
    s.assign();  // 255
    EXPECT_TRUE(s.nextAssignWraps());
    EXPECT_THROW(s.assign(), std::logic_error);
    s.ackWrap();  // skips the reserved truncated-zero value
    EXPECT_EQ(s.trunc(s.assign()), 1u);
}

TEST(Ssn, AckWithoutPendingWrapPanics)
{
    SsnState s(16);
    EXPECT_THROW(s.ackWrap(), std::logic_error);
}

TEST(Ssn, RollbackRestoresAllocationPoint)
{
    SsnState s(16);
    s.assign();
    s.assign();
    SSN save = s.ssnRename();
    s.assign();
    s.assign();
    s.rollbackTo(save);
    EXPECT_EQ(s.assign(), save + 1);
}

TEST(Ssn, RetirementTracked)
{
    SsnState s(16);
    SSN a = s.assign();
    EXPECT_EQ(s.retired(), 0u);
    s.onRetire(a);
    EXPECT_EQ(s.retired(), a);
}

TEST(Ssn, SixtyFourBitNeverWraps)
{
    SsnState s(64);
    for (int i = 0; i < 100000; ++i)
        s.assign();
    EXPECT_FALSE(s.nextAssignWraps());
}

TEST(Ssn, BadWidthPanics)
{
    EXPECT_THROW(SsnState(2), std::logic_error);
    EXPECT_THROW(SsnState(65), std::logic_error);
}

// ---------------------------------------------------------------------
// SSBF
// ---------------------------------------------------------------------

namespace {

SSBF
mkSsbf(stats::StatRegistry &reg, unsigned entries = 512, bool dual = false,
       unsigned gran = 8, bool inf = false)
{
    SsbfParams p;
    p.entries = entries;
    p.dualHash = dual;
    p.granularityBytes = gran;
    p.infinite = inf;
    return SSBF(p, reg);
}

} // namespace

TEST(Ssbf, FreshFilterNeverForcesReExecution)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    EXPECT_FALSE(f.test(0x1000, 8, 0));
    EXPECT_FALSE(f.test(0x1000, 8, 100));
}

TEST(Ssbf, StoreMakesVulnerableLoadsTestPositive)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    f.update(0x1000, 8, 50);
    EXPECT_TRUE(f.test(0x1000, 8, 49));   // vulnerable (svw < 50)
    EXPECT_FALSE(f.test(0x1000, 8, 50));  // not vulnerable
    EXPECT_FALSE(f.test(0x1000, 8, 51));
}

TEST(Ssbf, EightByteGranularityFalseSharing)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    f.update(0x1000, 1, 50);  // one byte
    // A non-overlapping byte in the same quadword still tests positive
    // ("false sharing due to non-overlapping sub-quad writes").
    EXPECT_TRUE(f.test(0x1007, 1, 10));
    // The next quadword does not.
    EXPECT_FALSE(f.test(0x1008, 1, 10));
}

TEST(Ssbf, FourByteGranularitySeparatesSubQuad)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg, 512, false, 4);
    f.update(0x1000, 1, 50);
    EXPECT_TRUE(f.test(0x1003, 1, 10));
    EXPECT_FALSE(f.test(0x1004, 1, 10));  // other half of the quadword
}

TEST(Ssbf, MultiGranuleAccessChecksAllGranules)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    f.update(0x1008, 8, 50);
    // An unaligned 8-byte load spanning 0x1004-0x100b overlaps the
    // written granule.
    EXPECT_TRUE(f.test(0x1004, 8, 10));
}

TEST(Ssbf, AliasingOnlyFalsePositives)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg, 128);
    f.update(0x0000, 8, 70);
    // 128 entries x 8 B granules: 0x400 aliases to the same slot.
    EXPECT_TRUE(f.test(0x400, 8, 10));  // false positive (conservative)
    // But a slot nothing mapped to stays clean: never false negative.
    EXPECT_FALSE(f.test(0x8, 8, 10));
}

TEST(Ssbf, DualHashFiltersSingleTableAliases)
{
    stats::StatRegistry reg;
    SSBF simple = mkSsbf(reg, 128, false);
    SSBF dual = mkSsbf(reg, 128, true);
    simple.update(0x0000, 8, 70);
    dual.update(0x0000, 8, 70);
    // Table-1 alias (same low bits, different high bits).
    EXPECT_TRUE(simple.test(0x400, 8, 10));
    EXPECT_FALSE(dual.test(0x400, 8, 10));  // second hash disambiguates
    // True match still positive in both.
    EXPECT_TRUE(dual.test(0x0000, 8, 10));
}

TEST(Ssbf, InfiniteFilterExact)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg, 512, false, 4, true);
    f.update(0x123450, 4, 99);
    EXPECT_TRUE(f.test(0x123450, 4, 98));
    EXPECT_FALSE(f.test(0x123450, 4, 99));
    // No aliasing anywhere.
    for (Addr a = 0; a < 0x4000; a += 4)
        EXPECT_FALSE(f.test(a, 4, 0));
}

TEST(Ssbf, YoungerStoreOverwritesOlderSsn)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    f.update(0x1000, 8, 10);
    f.update(0x1000, 8, 90);
    EXPECT_TRUE(f.test(0x1000, 8, 50));  // vulnerable to the younger one
}

TEST(Ssbf, InvalidateLineWritesEveryGranule)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    f.invalidateLine(0x2000, 64, 77);
    for (Addr a = 0x2000; a < 0x2040; a += 8)
        EXPECT_TRUE(f.test(a, 8, 76)) << std::hex << a;
    EXPECT_FALSE(f.test(0x2040, 8, 76));
    EXPECT_EQ(f.invalidationUpdates.value(), 8u);
}

TEST(Ssbf, ClearResetsEverything)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg);
    f.update(0x1000, 8, 50);
    f.clear();
    EXPECT_FALSE(f.test(0x1000, 8, 0));
}

TEST(Ssbf, StorageCostMatchesPaper)
{
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg, 512);
    // 512 entries x 16-bit SSNs = 1 KB: the paper's headline cost.
    EXPECT_EQ(f.storageBits(16), 512u * 16u);
    EXPECT_EQ(f.storageBits(16) / 8, 1024u);
}

/**
 * Property: the SSBF is conservative. For any update/test sequence, a
 * test on an address whose granule was written with SSN > svw MUST be
 * positive (no false negatives), for every organization.
 */
class SsbfConservative
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, unsigned>>
{
};

TEST_P(SsbfConservative, NoFalseNegatives)
{
    auto [entries, dual, gran] = GetParam();
    stats::StatRegistry reg;
    SSBF f = mkSsbf(reg, entries, dual, gran);
    Random rng(entries * 31 + gran);

    // Ground truth: exact map from granule to last SSN.
    std::unordered_map<Addr, SSN> truth;
    for (SSN ssn = 1; ssn <= 2000; ++ssn) {
        const Addr addr = rng.nextBounded(1 << 14) & ~Addr(7);
        f.update(addr, 8, ssn);
        for (Addr g = addr / gran; g <= (addr + 7) / gran; ++g)
            truth[g] = ssn;

        if (ssn % 7 == 0) {
            const Addr la = rng.nextBounded(1 << 14) & ~Addr(7);
            const SSN svw = rng.nextBounded(ssn);
            bool mustRex = false;
            for (Addr g = la / gran; g <= (la + 7) / gran; ++g) {
                auto it = truth.find(g);
                if (it != truth.end() && it->second > svw)
                    mustRex = true;
            }
            if (mustRex) {
                EXPECT_TRUE(f.test(la, 8, svw));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, SsbfConservative,
    ::testing::Values(std::make_tuple(128u, false, 8u),
                      std::make_tuple(512u, false, 8u),
                      std::make_tuple(2048u, false, 8u),
                      std::make_tuple(512u, true, 8u),
                      std::make_tuple(512u, false, 4u)));
