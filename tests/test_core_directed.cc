/**
 * @file
 * Directed core tests: hand-built programs that force specific pipeline
 * events (forwarding, ordering violations, re-execution flushes, SSN
 * wrap drains, NLQ-SM invalidations) and check both the event counts
 * and the architectural outcome.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cpu/core.hh"
#include "func/interp.hh"
#include "harness/config.hh"
#include "prog/builder.hh"

using namespace svw;
using namespace svw::harness;

namespace {

struct CoreHarness
{
    CoreHarness(Program &&prog, const ExperimentConfig &cfg)
        : program(std::move(prog)),
          core(buildParams(cfg), program, reg)
    {
    }

    CoreHarness(Program &&prog, const CoreParams &params)
        : program(std::move(prog)),
          core(params, program, reg)
    {
    }

    RunOutcome run(std::uint64_t maxCycles = 1'000'000)
    {
        return core.run(~std::uint64_t(0), maxCycles);
    }

    bool matchesGolden()
    {
        Interp golden(program);
        golden.run(core.retiredInstCount());
        for (RegIndex a = 0; a < numArchRegs; ++a)
            if (core.archReg(a) != golden.reg(a))
                return false;
        return core.memory().identicalTo(golden.memory());
    }

    std::uint64_t scalar(const std::string &name)
    {
        auto *s = dynamic_cast<const stats::Scalar *>(reg.find(name));
        return s ? s->value() : 0;
    }

    Program program;
    stats::StatRegistry reg;
    Core core;
};

ExperimentConfig
cfgOf(OptMode opt, SvwMode svw = SvwMode::None,
      Machine m = Machine::EightWide)
{
    ExperimentConfig c;
    c.machine = m;
    c.opt = opt;
    c.svw = svw;
    return c;
}

/** Store->load forwarding microkernel: every load hits a younger store. */
Program
forwardingProgram(int iters)
{
    ProgramBuilder b("fwd");
    Addr buf = b.allocData(64);
    b.loadAddr(1, buf);
    b.movi(2, 0);
    b.movi(3, iters);
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(4, 2, 100);
    b.st8(4, 1, 0);
    b.ld8(5, 1, 0);     // forwards from the store above
    b.add(6, 6, 5);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

/**
 * Ordering-violation kernel: a store's address comes off a (slow)
 * dependence chain while a younger load to the same address is ready
 * immediately — the load speculates and reads stale data.
 */
Program
violationProgram(int iters)
{
    ProgramBuilder b("viol");
    Addr slot = b.allocWords({0});
    Addr ptr = b.allocWords({slot});
    b.loadAddr(1, ptr);
    b.loadAddr(7, slot);
    b.movi(2, 0);
    b.movi(3, iters);
    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(4, 1, 0);       // slow: pointer load produces the store address
    b.mul(5, 2, 2);
    b.addi(5, 5, 1);
    b.st8(5, 4, 0);       // store through the loaded pointer
    b.ld8(6, 7, 0);       // younger load to the same address, ready now
    b.add(8, 8, 6);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

} // namespace

TEST(CoreDirected, ForwardingSuppliesValues)
{
    CoreHarness h(forwardingProgram(200), cfgOf(OptMode::Baseline));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("lsu.forwards"), 150u);
}

TEST(CoreDirected, BaselineLqSearchCatchesViolations)
{
    CoreHarness h(violationProgram(100), cfgOf(OptMode::Baseline));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    // Early iterations violate until store-sets learns the pair.
    EXPECT_GT(h.scalar("core.orderingSquashes"), 0u);
    EXPECT_GT(h.scalar("storesets.trainings"), 0u);
}

TEST(CoreDirected, NlqCatchesViolationsByReExecution)
{
    CoreHarness h(violationProgram(100), cfgOf(OptMode::Nlq));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_EQ(h.scalar("core.orderingSquashes"), 0u);  // no LQ CAM
    EXPECT_GT(h.scalar("core.rexFlushes"), 0u);
    EXPECT_GT(h.scalar("rex.loadsMarked"), 0u);
}

TEST(CoreDirected, NlqMarksOnlySpeculativeLoads)
{
    CoreHarness h(forwardingProgram(300), cfgOf(OptMode::Nlq));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    // Forwarding loads see resolved stores: the natural filter keeps
    // the marked-rate far below 100%.
    EXPECT_LT(h.scalar("rex.loadsMarked"),
              h.scalar("core.retiredLoads") / 2);
}

TEST(CoreDirected, SsqMarksEveryLoad)
{
    CoreHarness h(forwardingProgram(300), cfgOf(OptMode::Ssq));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GE(h.scalar("rex.loadsMarked"), h.scalar("core.retiredLoads"));
}

TEST(CoreDirected, SsqSteeringTrainsAndForwards)
{
    CoreHarness h(forwardingProgram(500), cfgOf(OptMode::Ssq));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    // The missed first forwarding flushes, trains the steering bits,
    // and subsequent instances use the FSQ.
    EXPECT_GT(h.scalar("lsu.steeringTrainings"), 0u);
    EXPECT_GT(h.scalar("lsu.fsqForwards"), 100u);
    EXPECT_GT(h.scalar("core.fsqLoadsRetired"), 100u);
}

TEST(CoreDirected, SvwFiltersForwardedLoads)
{
    ExperimentConfig cfg = cfgOf(OptMode::Ssq, SvwMode::Upd);
    CoreHarness h(forwardingProgram(500), cfg);
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    // +UPD: FSQ-forwarded loads shrink their windows and skip rex.
    EXPECT_GT(h.scalar("rex.loadsRexSkippedSvw"),
              h.scalar("core.retiredLoads") / 3);
}

TEST(CoreDirected, RleEliminatesRedundantLoads)
{
    ProgramBuilder b("redundant");
    Addr g = b.allocWords({77});
    b.loadAddr(1, g);
    b.movi(2, 0);
    b.movi(3, 300);
    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(4, 1, 0);   // same signature every iteration
    b.add(5, 5, 4);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();

    CoreHarness h(b.finish(), cfgOf(OptMode::Rle, SvwMode::None,
                                    Machine::FourWide));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("core.loadsEliminatedRetired"), 200u);
    // Eliminated loads re-execute (RLE's natural filter).
    EXPECT_GT(h.scalar("rex.loadsReExecuted"), 200u);
}

TEST(CoreDirected, RleBypassesStoreToLoad)
{
    CoreHarness h(forwardingProgram(300),
                  cfgOf(OptMode::Rle, SvwMode::None, Machine::FourWide));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("core.elimBypassRetired"), 100u);
}

TEST(CoreDirected, RleSvwFiltersVerifiedEliminations)
{
    CoreHarness h(forwardingProgram(400),
                  cfgOf(OptMode::Rle, SvwMode::Upd, Machine::FourWide));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("rex.loadsRexSkippedSvw"), 100u);
}

TEST(CoreDirected, RleCatchesFalseEliminations)
{
    // A load is eliminated against an older load, but a store to the
    // same address intervenes: re-execution must flush.
    ProgramBuilder b("falseElim");
    Addr g = b.allocWords({1});
    Addr idx = b.allocWords({0});
    b.loadAddr(1, g);
    b.loadAddr(9, idx);
    b.movi(2, 0);
    b.movi(3, 200);
    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(4, 1, 0);     // candidate for reuse
    b.ld8(10, 9, 0);    // slow chain producing the store address...
    b.ld8(11, 10, 0);   // (idx holds 0 -> reads address 0: zero)
    b.add(12, 1, 11);
    b.st8(2, 12, 0);    // store to g through the chain
    b.ld8(5, 1, 0);     // redundant with seq-older load, but stale now
    b.add(6, 6, 5);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();

    CoreHarness h(b.finish(), cfgOf(OptMode::Rle, SvwMode::None,
                                    Machine::FourWide));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("core.rexFlushes"), 0u);
}

TEST(CoreDirected, WrapDrainTriggersAndStaysCorrect)
{
    // 8-bit SSNs wrap every 255 stores; a store-heavy kernel forces
    // several drains.
    ProgramBuilder b("wrap");
    Addr buf = b.allocData(4096);
    b.loadAddr(1, buf);
    b.movi(2, 0);
    b.movi(3, 2000);
    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(4, 2, 511);
    b.slli(4, 4, 3);
    b.add(4, 4, 1);
    b.st8(2, 4, 0);
    b.ld8(5, 4, 0);
    b.add(6, 6, 5);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();

    ExperimentConfig cfg = cfgOf(OptMode::Ssq, SvwMode::Upd);
    cfg.ssnBits = 8;
    CoreHarness h(b.finish(), cfg);
    auto out = h.run(4'000'000);
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("svw.wrapDrains"), 5u);
    EXPECT_GT(h.scalar("core.wrapDrainCycles"), 0u);
}

TEST(CoreDirected, ExternalStoreInvalidationMarksLoads)
{
    // NLQ-SM: an external agent rewrites a flag the program polls.
    ProgramBuilder b("poll");
    Addr flag = b.allocWords({0});
    b.loadAddr(1, flag);
    b.movi(2, 0);
    b.movi(3, 400);
    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(4, 1, 0);
    b.add(5, 5, 4);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();

    ExperimentConfig cfg = cfgOf(OptMode::Nlq, SvwMode::Upd);
    cfg.nlqsm = true;
    CoreHarness h(b.finish(), cfg);
    // Inject a SILENT external write periodically (value unchanged), so
    // the golden model still applies but the machinery must fire.
    h.core.perCycleHook = [&](Core &c) {
        if (c.cycle() % 100 == 50) {
            const std::uint64_t v = c.memory().read(0, 8);
            (void)v;
            c.externalStore(h.program.segments()[0].base, 8,
                            c.memory().read(h.program.segments()[0].base,
                                            8));
        }
    };
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("core.invalidationsSeen"), 0u);
    EXPECT_GT(h.scalar("rex.loadsMarked"), 0u);
    EXPECT_GT(h.scalar("ssbf.invalidationUpdates"), 0u);
}

TEST(CoreDirected, ExternalStoreValueVisibleToLaterLoads)
{
    // Non-silent external write: the program spins until it observes it
    // (no golden comparison; the observation IS the check).
    ProgramBuilder b("spin");
    Addr flag = b.allocWords({0});
    b.loadAddr(1, flag);
    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(2, 1, 0);
    b.beq(2, 0, loop);
    b.halt();

    ExperimentConfig cfg = cfgOf(OptMode::Nlq, SvwMode::Upd);
    cfg.nlqsm = true;
    CoreHarness h(b.finish(), cfg);
    Addr flagAddr = h.program.segments()[0].base;
    h.core.perCycleHook = [flagAddr](Core &c) {
        if (c.cycle() == 500)
            c.externalStore(flagAddr, 8, 1);
    };
    auto out = h.run(100'000);
    EXPECT_TRUE(out.halted) << "spin loop never saw the external store";
}

TEST(CoreDirected, DualStorePortsDrainFaster)
{
    // Pure store stream: commit is port-bound.
    ProgramBuilder b("stores");
    Addr buf = b.allocData(1 << 14);
    b.loadAddr(1, buf);
    b.movi(2, 0);
    b.movi(3, 1500);
    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(4, 2, 255);
    b.slli(4, 4, 5);
    b.add(4, 4, 1);
    b.st8(2, 4, 0);   // four stores per iteration: the single commit
    b.st8(2, 4, 8);   // port is the bottleneck
    b.st8(2, 4, 16);
    b.st8(2, 4, 24);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    Program prog = b.finish();

    // Both configurations issue two stores per cycle so that the commit
    // port is the binding constraint.
    CoreParams one = buildParams(cfgOf(OptMode::Baseline));
    one.lsu.storeIssueWidth = 2;
    one.dcachePorts = 1;
    CoreParams two = one;
    two.dcachePorts = 2;

    Program p1 = prog;
    CoreHarness h1(std::move(p1), one);
    auto o1 = h1.run();
    Program p2 = std::move(prog);
    CoreHarness h2(std::move(p2), two);
    auto o2 = h2.run();
    ASSERT_TRUE(o1.halted && o2.halted);
    EXPECT_LT(o2.cycles, o1.cycles * 9 / 10)
        << "second commit port should help a store-bound kernel";
}

TEST(CoreDirected, MispredictRecoveryExact)
{
    // Data-dependent unpredictable branches with register state that
    // differs across paths: recovery must be exact.
    ProgramBuilder b("branchy");
    std::vector<std::uint64_t> vals(256);
    Random rng(42);
    for (auto &v : vals)
        v = rng.nextBounded(2);
    const Addr tbl = b.allocWords(vals);
    b.loadAddr(1, tbl);
    b.movi(2, 0);
    b.movi(3, 400);
    Label loop = b.newLabel();
    Label odd = b.newLabel();
    Label next = b.newLabel();
    b.bind(loop);
    b.andi(4, 2, 255);
    b.slli(4, 4, 3);
    b.add(4, 4, 1);
    b.ld8(5, 4, 0);
    b.beq(5, 0, odd);
    b.addi(6, 6, 3);
    b.jmp(next);
    b.bind(odd);
    b.addi(6, 6, 7);
    b.bind(next);
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();

    CoreHarness h(b.finish(), cfgOf(OptMode::Baseline));
    auto out = h.run();
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(h.matchesGolden());
    EXPECT_GT(h.scalar("core.branchSquashes"), 20u);
}

TEST(CoreDirected, CapsStopRunawayRuns)
{
    ProgramBuilder b("forever");
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.jmp(loop);
    b.halt();
    CoreHarness h(b.finish(), cfgOf(OptMode::Baseline));
    auto out = h.core.run(1'000, 10'000'000);
    EXPECT_FALSE(out.halted);
    EXPECT_GE(out.instructions, 1'000u);
}
