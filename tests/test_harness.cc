/**
 * @file
 * Unit tests: experiment configuration expansion, the runner, speedup
 * arithmetic, and the figure-table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/config.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace svw;
using namespace svw::harness;

TEST(Config, EightWideShellMatchesPaper)
{
    ExperimentConfig c;
    c.machine = Machine::EightWide;
    c.opt = OptMode::Baseline;
    CoreParams p = buildParams(c);
    EXPECT_EQ(p.issueWidth, 8u);
    EXPECT_EQ(p.robEntries, 512u);
    EXPECT_EQ(p.iqEntries, 200u);
    EXPECT_EQ(p.numPhysRegs, 448u);
    EXPECT_EQ(p.lsu.lqEntries, 128u);
    EXPECT_EQ(p.lsu.sqEntries, 64u);
    EXPECT_EQ(p.loadIssue, 2u);
    EXPECT_EQ(p.intIssue, 5u);
    EXPECT_FALSE(p.rex.enabled);
    EXPECT_FALSE(p.svw.enabled);
}

TEST(Config, FourWideShellMatchesPaper)
{
    ExperimentConfig c;
    c.machine = Machine::FourWide;
    c.opt = OptMode::Rle;
    c.svw = SvwMode::Upd;
    CoreParams p = buildParams(c);
    EXPECT_EQ(p.issueWidth, 4u);
    EXPECT_EQ(p.robEntries, 128u);
    EXPECT_EQ(p.iqEntries, 50u);
    EXPECT_EQ(p.numPhysRegs, 160u);
    EXPECT_EQ(p.lsu.lqEntries, 32u);
    EXPECT_EQ(p.lsu.sqEntries, 16u);
    EXPECT_TRUE(p.rle.enabled);
    EXPECT_TRUE(p.rex.enabled);
    EXPECT_EQ(p.rex.regfileReadLatency, 2u);
}

TEST(Config, NlqFreesTheLqPort)
{
    ExperimentConfig c;
    c.opt = OptMode::Nlq;
    CoreParams p = buildParams(c);
    EXPECT_TRUE(p.lsu.nlq);
    EXPECT_EQ(p.lsu.storeIssueWidth, 2u);
    ExperimentConfig base;
    EXPECT_EQ(buildParams(base).lsu.storeIssueWidth, 1u);
}

TEST(Config, AssocSqBaselineSlowsLoads)
{
    ExperimentConfig c;
    c.opt = OptMode::BaselineAssocSq;
    EXPECT_EQ(buildParams(c).lsu.loadExtraLatency, 2u);
    c.opt = OptMode::Ssq;
    EXPECT_EQ(buildParams(c).lsu.loadExtraLatency, 0u);
}

TEST(Config, SvwModesMapToFlags)
{
    ExperimentConfig c;
    c.opt = OptMode::Ssq;
    c.svw = SvwMode::None;
    EXPECT_FALSE(buildParams(c).svw.enabled);
    c.svw = SvwMode::NoUpd;
    EXPECT_TRUE(buildParams(c).svw.enabled);
    EXPECT_FALSE(buildParams(c).svw.updateOnForward);
    c.svw = SvwMode::Upd;
    EXPECT_TRUE(buildParams(c).svw.updateOnForward);
    c.svw = SvwMode::Perfect;
    EXPECT_FALSE(buildParams(c).svw.enabled);
    EXPECT_TRUE(buildParams(c).rex.perfect);
}

TEST(Config, LabelsAreDescriptive)
{
    ExperimentConfig c;
    c.opt = OptMode::Nlq;
    c.svw = SvwMode::Upd;
    EXPECT_EQ(configLabel(c), "NLQ+SVW+UPD");
    c.opt = OptMode::Rle;
    c.rleSquashReuse = false;
    EXPECT_EQ(configLabel(c), "RLE+SVW+UPD-SQU");
    c.opt = OptMode::Baseline;
    c.svw = SvwMode::None;
    c.rleSquashReuse = true;
    EXPECT_EQ(configLabel(c), "BASE");
}

TEST(Config, ComposedEnablesEverything)
{
    ExperimentConfig c;
    c.opt = OptMode::Composed;
    c.svw = SvwMode::Upd;
    CoreParams p = buildParams(c);
    EXPECT_TRUE(p.lsu.nlq);
    EXPECT_TRUE(p.lsu.ssq);
    EXPECT_TRUE(p.rle.enabled);
}

TEST(Runner, ProducesConsistentMetrics)
{
    RunRequest req;
    req.workload = "gap";
    req.targetInsts = 5'000;
    req.config.opt = OptMode::Ssq;
    req.config.svw = SvwMode::Upd;
    RunResult r = runOne(req);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.goldenOk);
    EXPECT_GT(r.insts, 1'000u);
    EXPECT_GT(r.loads, 0u);
    EXPECT_NEAR(r.ipc, double(r.insts) / double(r.cycles), 1e-9);
    EXPECT_GE(r.markedRate, r.rexRate - 1e-9);
}

TEST(Runner, DeterministicAcrossRuns)
{
    RunRequest req;
    req.workload = "twolf";
    req.targetInsts = 5'000;
    req.config.opt = OptMode::Nlq;
    req.config.svw = SvwMode::Upd;
    RunResult a = runOne(req);
    RunResult b = runOne(req);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.loadsReExecuted, b.loadsReExecuted);
}

TEST(Runner, SpeedupArithmetic)
{
    RunResult base, test;
    base.workload = test.workload = "x";
    base.cycles = 1100;
    test.cycles = 1000;
    EXPECT_NEAR(speedupPercent(base, test), 10.0, 1e-9);
    EXPECT_NEAR(speedupPercent(test, base), -100.0 / 11.0, 1e-9);
}

TEST(Runner, SpeedupAcrossWorkloadsPanics)
{
    RunResult a, b;
    a.workload = "x";
    b.workload = "y";
    a.cycles = b.cycles = 1;
    EXPECT_THROW(speedupPercent(a, b), std::logic_error);
}

TEST(Report, TableFormatsRowsAndAverage)
{
    FigureTable t("demo", {"c1", "c2"});
    t.addRow("a", {1.0, 2.0});
    t.addRow("b", {3.0, 4.0});
    t.addAverageRow();
    ASSERT_EQ(t.numRows(), 3u);
    EXPECT_DOUBLE_EQ(t.row(2)[0], 2.0);
    EXPECT_DOUBLE_EQ(t.row(2)[1], 3.0);

    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("avg"), std::string::npos);
    EXPECT_NE(os.str().find("c2"), std::string::npos);
}

TEST(Report, RowWidthMismatchPanics)
{
    FigureTable t("demo", {"c1", "c2"});
    EXPECT_THROW(t.addRow("a", {1.0}), std::logic_error);
}

TEST(Report, AverageOfEmptyTableIsANoOp)
{
    // An empty table is a legitimate state: an oversplit --shard
    // invocation selects no rows and must print an empty table rather
    // than abort the shard.
    FigureTable t("demo", {"c1"});
    t.addAverageRow();
    EXPECT_EQ(t.numRows(), 0u);
}
