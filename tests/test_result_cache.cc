/**
 * @file
 * Persistent result-cache tests: key derivation and sensitivity, the
 * cold-populate / warm-serve cycle (warm must be byte-identical with
 * zero simulations), invalidation on any configuration or budget
 * change, atomic concurrent writers, corruption tolerance, and the
 * cache-off path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/executor.hh"
#include "harness/serialize.hh"
#include "harness/sweep.hh"
#include "prog/trace.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;
using namespace svw::harness;

namespace {

SweepCell
makeCell(const std::string &group, const std::string &label,
         const std::string &workload, std::uint64_t insts,
         bool baseline = false)
{
    SweepCell c;
    c.group = group;
    c.label = label;
    c.workload = workload;
    c.targetInsts = insts;
    c.baseline = baseline;
    return c;
}

/** Two-group, four-cell spec, small enough for unit-test budgets. */
SweepSpec
smallSpec(std::uint64_t insts = 3'000)
{
    SweepSpec spec("cache-test");
    for (const std::string w : {"gzip", "crafty"}) {
        SweepCell base = makeCell(w, "BASE", w, insts, true);
        SweepCell nlq = makeCell(w, "NLQ", w, insts);
        nlq.config.opt = OptMode::Nlq;
        nlq.config.svw = SvwMode::Upd;
        spec.add(base);
        spec.add(nlq);
    }
    return spec;
}

/** Fresh private temp directory. */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/svw-result-cache-test-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "";
}

struct TempDir
{
    std::string path = makeTempDir();
    ~TempDir() { std::filesystem::remove_all(path); }
};

std::vector<std::string>
resultsJson(const SweepResults &res)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < res.spec().size(); ++i)
        out.push_back(runResultToJson(res.outcome(i).result));
    return out;
}

} // namespace

TEST(CellKey, StableAndNameIndependent)
{
    SweepCell a = makeCell("g", "l", "gzip", 5'000);
    const CellKey k = cellKey(a);
    EXPECT_EQ(cellKey(a).hash, k.hash);
    EXPECT_EQ(cellKey(a).material, k.material);
    EXPECT_EQ(k.fileName().size(), 16u + 5u);

    // Naming and presentation fields are not identity: the same
    // (workload, insts, config) in another figure shares the entry.
    SweepCell renamed = a;
    renamed.group = "other";
    renamed.label = "column";
    renamed.baseline = true;
    EXPECT_EQ(cellKey(renamed).hash, k.hash);
    EXPECT_EQ(cellKey(renamed).material, k.material);

    // The material embeds the code-version stamp and every knob.
    EXPECT_NE(k.material.find(resultCacheCodeVersion), std::string::npos);
    EXPECT_NE(k.material.find("workload=gzip"), std::string::npos);
    EXPECT_NE(k.material.find("rle.maxPinnedRegs="), std::string::npos);
}

TEST(CellKey, EverySimulationInputChangesTheKey)
{
    SweepCell base = makeCell("g", "l", "gzip", 5'000);
    base.config.opt = OptMode::Nlq;
    base.config.svw = SvwMode::Upd;
    const CellKey k0 = cellKey(base);

    auto differs = [&k0](SweepCell c, const char *what) {
        const CellKey k = cellKey(c);
        EXPECT_NE(k.material, k0.material) << what;
        EXPECT_NE(k.hash, k0.hash) << what;
    };

    {
        SweepCell c = base;
        c.workload = "mcf";
        differs(c, "workload");
    }
    {
        SweepCell c = base;
        c.targetInsts = 5'001;
        differs(c, "insts");
    }
    {
        SweepCell c = base;
        c.goldenCheck = false;
        differs(c, "goldenCheck");
    }
    {
        SweepCell c = base;
        c.config.machine = Machine::FourWide;
        differs(c, "machine");
    }
    {
        SweepCell c = base;
        c.config.opt = OptMode::Ssq;
        differs(c, "opt");
    }
    {
        SweepCell c = base;
        c.config.svw = SvwMode::NoUpd;
        differs(c, "svw mode");
    }
    {
        SweepCell c = base;
        c.config.ssnBits = 12;
        differs(c, "ssnBits");
    }
    {
        SweepCell c = base;
        c.config.ssbf.entries = 128;
        differs(c, "ssbf.entries");
    }
    {
        SweepCell c = base;
        c.config.ssbf.dualHash = true;
        differs(c, "ssbf.dualHash");
    }
    {
        SweepCell c = base;
        c.config.dcachePorts = 2;
        differs(c, "dcachePorts");
    }
    {
        SweepCell c = base;
        c.config.rleSquashReuse = false;
        differs(c, "rleSquashReuse");
    }
    {
        SweepCell c = base;
        c.config.nlqsm = true;
        differs(c, "nlqsm");
    }
    {
        SweepCell c = base;
        c.config.svwReplace = true;
        differs(c, "svwReplace");
    }
    {
        SweepCell c = base;
        c.config.lqValueCheck = true;
        differs(c, "lqValueCheck");
    }
    {
        SweepCell c = base;
        c.config.speculativeSsbfUpdate = false;
        differs(c, "speculativeSsbfUpdate");
    }
}

TEST(CellKey, SynthRecipeIsIdentity)
{
    // Synthetic workloads are addressed by their full recipe: kind,
    // seed, and every parameter override must distinguish cache
    // entries, while spelling variants of the same recipe must not.
    SweepCell base = makeCell("g", "l", "synth:hashjoin:7", 5'000);
    const CellKey k0 = cellKey(base);

    auto keyFor = [&base](const std::string &workload) {
        SweepCell c = base;
        c.workload = workload;
        return cellKey(c);
    };
    EXPECT_NE(keyFor("synth:hashjoin:8").hash, k0.hash) << "seed";
    EXPECT_NE(keyFor("synth:chase:7").hash, k0.hash) << "kind";
    EXPECT_NE(keyFor("synth:hashjoin:7:buckets=128").hash, k0.hash)
        << "param override";
    EXPECT_NE(keyFor("synth:hashjoin:7:buckets=128").hash,
              keyFor("synth:hashjoin:7:buckets=64").hash)
        << "param value";

    // Cells carry the workload name verbatim, so the canonical recipe
    // spelled by the spec builders maps to the same entry.
    EXPECT_EQ(keyFor("synth:hashjoin:7").material, k0.material);
    // Synth names are self-describing: no content augment is added.
    EXPECT_EQ(workloads::cacheKeyAugment("synth:hashjoin:7"), "");
}

TEST(CellKey, TraceWorkloadKeyTracksFileContent)
{
    // A trace workload's name is just a path — the same path can hold
    // different recordings over time, so the key embeds the file's
    // payload checksum. Rewriting the file must miss; an untouched
    // file must keep hitting.
    TempDir dir;
    const std::string path = dir.path + "/key.svwtrace";
    auto writeTrace = [&path](const std::string &kernel,
                              std::uint64_t insts) {
        Program prog = workloads::make(kernel, insts);
        trace::writeFile(path, trace::record(prog, kernel, 100'000'000));
    };

    writeTrace("gzip", 2'000);
    SweepCell cell = makeCell("g", "l", "trace:" + path, 2'000);
    const CellKey k0 = cellKey(cell);
    EXPECT_EQ(cellKey(cell).hash, k0.hash) << "stable while untouched";
    EXPECT_NE(k0.material.find("trace.payload="), std::string::npos)
        << k0.material;

    writeTrace("gzip", 4'000);  // same path, different recording
    const CellKey k1 = cellKey(cell);
    EXPECT_NE(k1.hash, k0.hash);
    EXPECT_NE(k1.material, k0.material);

    writeTrace("mcf", 2'000);  // different source kernel entirely
    const CellKey k2 = cellKey(cell);
    EXPECT_NE(k2.hash, k0.hash);
    EXPECT_NE(k2.hash, k1.hash);
}

TEST(CellKey, Cacheability)
{
    SweepCell plain = makeCell("g", "l", "gzip", 2'000);
    EXPECT_TRUE(cellCacheable(plain));

    SweepCell hooked = plain;
    hooked.hook = [](Core &) {};
    EXPECT_FALSE(cellCacheable(hooked));

    SweepCell timed = plain;
    timed.timingReps = 3;
    EXPECT_FALSE(cellCacheable(timed));

    // A spec builder can opt out explicitly (perf cells at --reps=1).
    SweepCell optOut = plain;
    optOut.neverCache = true;
    EXPECT_FALSE(cellCacheable(optOut));
}

TEST(ResultCache, ColdPopulatesWarmServesByteIdenticalWithZeroRuns)
{
    // The process-wide memory front (harness/executor.hh
    // MemoryResultCache) is keyed by material, not directory, so a
    // cell simulated by an earlier test would hit it and never reach
    // the fresh disk store this test is exercising. Drop it first.
    processMemoryResultCache().clear();
    TempDir dir;
    const SweepSpec spec = smallSpec();

    SweepOptions opts;
    opts.cacheDir = dir.path;

    const std::uint64_t calls0 = runCellCalls();
    const SweepResults cold = runSweep(spec, opts);
    EXPECT_EQ(runCellCalls() - calls0, spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        EXPECT_TRUE(cold.outcome(i).ok);
        EXPECT_FALSE(cold.outcome(i).cached);
    }
    // One entry file per cell, named by the key hash.
    for (std::size_t i = 0; i < spec.size(); ++i) {
        EXPECT_TRUE(std::filesystem::exists(
            dir.path + "/" + cellKey(spec.cell(i)).fileName()));
    }

    const std::uint64_t calls1 = runCellCalls();
    const SweepResults warm = runSweep(spec, opts);
    EXPECT_EQ(runCellCalls() - calls1, 0u) << "warm run simulated";
    for (std::size_t i = 0; i < spec.size(); ++i) {
        EXPECT_TRUE(warm.outcome(i).ok);
        EXPECT_TRUE(warm.outcome(i).cached);
    }
    EXPECT_EQ(resultsJson(cold), resultsJson(warm));

    // The pool path serves hits identically (nothing left to deal).
    SweepOptions par = opts;
    par.jobs = 4;
    const std::uint64_t calls2 = runCellCalls();
    const SweepResults warmPar = runSweep(spec, par);
    EXPECT_EQ(runCellCalls() - calls2, 0u);
    EXPECT_EQ(resultsJson(cold), resultsJson(warmPar));
}

TEST(ResultCache, AnyInputChangeMissesOnlyThatCell)
{
    processMemoryResultCache().clear();  // test the disk store
    TempDir dir;
    SweepOptions opts;
    opts.cacheDir = dir.path;
    runSweep(smallSpec(), opts);  // populate

    // Same spec, one cell's config nudged: only that cell re-runs.
    SweepSpec changed("cache-test");
    for (const std::string w : {"gzip", "crafty"}) {
        SweepCell base = makeCell(w, "BASE", w, 3'000, true);
        SweepCell nlq = makeCell(w, "NLQ", w, 3'000);
        nlq.config.opt = OptMode::Nlq;
        nlq.config.svw = SvwMode::Upd;
        if (w == "crafty")
            nlq.config.ssnBits = 12;
        changed.add(base);
        changed.add(nlq);
    }
    const std::uint64_t calls0 = runCellCalls();
    const SweepResults res = runSweep(changed, opts);
    EXPECT_EQ(runCellCalls() - calls0, 1u);
    EXPECT_FALSE(res.outcome(changed.index("crafty", "NLQ")).cached);
    EXPECT_TRUE(res.outcome(changed.index("gzip", "NLQ")).cached);

    // An insts change misses every cell.
    const std::uint64_t calls1 = runCellCalls();
    runSweep(smallSpec(2'000), opts);
    EXPECT_EQ(runCellCalls() - calls1, smallSpec(2'000).size());
}

TEST(ResultCache, DisabledAndNonCacheableCellsAlwaysRun)
{
    TempDir dir;
    SweepOptions cached;
    cached.cacheDir = dir.path;
    runSweep(smallSpec(), cached);  // populate

    // Empty cacheDir (the --no-cache mapping) bypasses a warm store.
    SweepOptions off;
    const std::uint64_t calls0 = runCellCalls();
    const SweepResults res = runSweep(smallSpec(), off);
    EXPECT_EQ(runCellCalls() - calls0, smallSpec().size());
    for (std::size_t i = 0; i < res.spec().size(); ++i)
        EXPECT_FALSE(res.outcome(i).cached);

    // Hooked / timing cells run even with a warm cache directory.
    SweepSpec hooked("hooked");
    SweepCell h = makeCell("g", "h", "gzip", 3'000, true);
    h.hook = [](Core &) {};
    hooked.add(h);
    SweepCell t = makeCell("g", "t", "gzip", 3'000);
    t.timingReps = 2;
    hooked.add(t);
    for (int round = 0; round < 2; ++round) {
        const std::uint64_t c0 = runCellCalls();
        const SweepResults r = runSweep(hooked, cached);
        EXPECT_EQ(runCellCalls() - c0, 2u) << "round " << round;
        EXPECT_FALSE(r.outcome(0).cached);
        EXPECT_FALSE(r.outcome(1).cached);
    }
}

TEST(ResultCache, CorruptOrMismatchedEntriesDegradeToMisses)
{
    processMemoryResultCache().clear();  // test the disk store
    TempDir dir;
    const SweepSpec spec = smallSpec();
    SweepOptions opts;
    opts.cacheDir = dir.path;
    const SweepResults cold = runSweep(spec, opts);

    const CellKey key = cellKey(spec.cell(0));
    const std::string file = dir.path + "/" + key.fileName();

    // Truncated/garbage file: miss, re-run, and the entry heals.
    {
        std::ofstream out(file, std::ios::trunc);
        out << "{\"v\":1,\"material\":\"trunc";
    }
    RunResult ignored;
    EXPECT_FALSE(ResultCache(dir.path).get(key, ignored));
    // The cold run promoted every result into the memory front, which
    // would serve the corrupted cell without ever reading (or healing)
    // the disk entry — drop it so the heal path is what runs.
    processMemoryResultCache().clear();
    const std::uint64_t c0 = runCellCalls();
    const SweepResults healed = runSweep(spec, opts);
    EXPECT_EQ(runCellCalls() - c0, 1u);
    EXPECT_EQ(resultsJson(cold), resultsJson(healed));
    EXPECT_TRUE(ResultCache(dir.path).get(key, ignored));

    // A well-formed entry whose material does not match the key (hash
    // collision stand-in) is rejected, not served.
    {
        std::ofstream out(file, std::ios::trunc);
        out << cacheEntryToLine("not the right material",
                                cold.outcome(0).result);
    }
    EXPECT_FALSE(ResultCache(dir.path).get(key, ignored));
}

TEST(ResultCache, ConcurrentWritersNeverExposeAPartialEntry)
{
    TempDir dir;
    SweepCell cell = makeCell("g", "l", "gzip", 4'000);
    const CellKey key = cellKey(cell);
    const std::string file = dir.path + "/" + key.fileName();

    RunResult payload;
    payload.workload = "gzip";
    payload.config = "BASE";
    payload.ipc = 1.0 / 3.0;
    // Long error-free filler so a torn write would be observable.
    payload.cycles = 0x0123456789abcdefull;

    // Four writer processes hammer the same key...
    constexpr int kWriters = 4, kRounds = 200;
    std::vector<pid_t> pids;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ResultCache cache(dir.path);
            RunResult mine = payload;
            mine.insts = static_cast<std::uint64_t>(w);
            for (int r = 0; r < kRounds; ++r)
                cache.put(key, mine);
            ::_exit(0);
        }
        pids.push_back(pid);
    }

    // ...while the parent reads: every observed file content must be a
    // complete, parseable entry with the right material (rename(2)
    // atomicity), and every successful get() a valid payload.
    ResultCache cache(dir.path);
    int observed = 0;
    for (int r = 0; r < 2'000; ++r) {
        std::ifstream in(file);
        if (!in) {
            ::usleep(50);  // writers may not have renamed yet
            continue;
        }
        std::string line;
        if (!std::getline(in, line) || line.empty())
            continue;
        std::string material;
        RunResult got;
        ASSERT_TRUE(cacheEntryFromLine(line, material, got))
            << "torn cache entry: " << line;
        EXPECT_EQ(material, key.material);
        EXPECT_LT(got.insts, static_cast<std::uint64_t>(kWriters));
        EXPECT_EQ(got.cycles, payload.cycles);
        ++observed;
        RunResult viaGet;
        ASSERT_TRUE(cache.get(key, viaGet));
        EXPECT_EQ(viaGet.cycles, payload.cycles);
    }
    EXPECT_GT(observed, 0);

    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // No temp droppings: every writer renamed its file into place.
    int tmpFiles = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir.path)) {
        if (e.path().filename().string().find(".tmp.") !=
            std::string::npos) {
            ++tmpFiles;
        }
    }
    EXPECT_EQ(tmpFiles, 0);
}

TEST(ResultCache, TrimEvictsOldestEntriesFirstAndSparesTempFiles)
{
    namespace fs = std::filesystem;
    TempDir dir;
    ResultCache cache(dir.path);

    RunResult payload;
    payload.workload = "gzip";
    payload.config = "BASE";
    payload.cycles = 42;

    // Five entries with strictly increasing access stamps (explicit
    // mtimes — filesystem timestamp granularity could otherwise tie).
    std::vector<std::string> files;
    std::uint64_t entryBytes = 0;
    const auto now = fs::file_time_type::clock::now();
    for (int i = 0; i < 5; ++i) {
        SweepCell cell = makeCell("g", "l", "gzip", 1'000 + i);
        const CellKey key = cellKey(cell);
        cache.put(key, payload);
        const std::string file = dir.path + "/" + key.fileName();
        ASSERT_TRUE(fs::exists(file));
        fs::last_write_time(file, now - std::chrono::minutes(50 - i));
        files.push_back(file);
        entryBytes = fs::file_size(file);  // all payloads identical
    }
    // An in-flight writer's temp file and a user dropping, both older
    // than every entry: neither is a trim candidate.
    const std::string tmp = files[0] + ".tmp.otherhost.123";
    const std::string foreign = dir.path + "/README";
    for (const std::string &f : {tmp, foreign}) {
        std::ofstream(f) << "not an entry";
        fs::last_write_time(f, now - std::chrono::hours(10));
    }

    // Room for two entries: the three oldest go, newest two stay.
    cache.trimToBytes(2 * entryBytes);
    EXPECT_FALSE(fs::exists(files[0]));
    EXPECT_FALSE(fs::exists(files[1]));
    EXPECT_FALSE(fs::exists(files[2]));
    EXPECT_TRUE(fs::exists(files[3]));
    EXPECT_TRUE(fs::exists(files[4]));
    EXPECT_TRUE(fs::exists(tmp));
    EXPECT_TRUE(fs::exists(foreign));

    // A bound that already holds is a no-op.
    cache.trimToBytes(2 * entryBytes);
    EXPECT_TRUE(fs::exists(files[3]));
    EXPECT_TRUE(fs::exists(files[4]));

    // Zero evicts every entry but still never touches non-entries.
    cache.trimToBytes(0);
    EXPECT_FALSE(fs::exists(files[3]));
    EXPECT_FALSE(fs::exists(files[4]));
    EXPECT_TRUE(fs::exists(tmp));
    EXPECT_TRUE(fs::exists(foreign));
}

TEST(ResultCache, GetRefreshesRecencySoHitEntriesSurviveTrim)
{
    namespace fs = std::filesystem;
    TempDir dir;
    ResultCache cache(dir.path);

    RunResult payload;
    payload.workload = "gzip";
    payload.config = "BASE";

    const SweepCell oldCell = makeCell("g", "a", "gzip", 1'000);
    const SweepCell newCell = makeCell("g", "b", "gzip", 2'000);
    cache.put(cellKey(oldCell), payload);
    cache.put(cellKey(newCell), payload);
    const std::string oldFile =
        dir.path + "/" + cellKey(oldCell).fileName();
    const std::string newFile =
        dir.path + "/" + cellKey(newCell).fileName();

    // Backdate both, then hit only the older entry: the hit must
    // refresh its stamp past the unread one's.
    const auto now = fs::file_time_type::clock::now();
    fs::last_write_time(oldFile, now - std::chrono::hours(2));
    fs::last_write_time(newFile, now - std::chrono::hours(1));
    RunResult got;
    ASSERT_TRUE(cache.get(cellKey(oldCell), got));

    cache.trimToBytes(fs::file_size(oldFile));
    EXPECT_TRUE(fs::exists(oldFile)) << "served entry was evicted";
    EXPECT_FALSE(fs::exists(newFile));
}

TEST(ResultCache, CacheEntryLineRoundTripsMaterialAndResult)
{
    RunResult r;
    r.workload = "perl.d";
    r.config = "RLE+SVW+UPD";
    r.cycles = 987654321;
    r.ipc = 2.0 / 7.0;
    const std::string material = "version=x|workload=perl.d|quote\"\\|";

    std::string backMaterial;
    RunResult back;
    ASSERT_TRUE(cacheEntryFromLine(cacheEntryToLine(material, r),
                                   backMaterial, back));
    EXPECT_EQ(backMaterial, material);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.ipc, r.ipc);
    EXPECT_EQ(back.workload, r.workload);

    std::string m;
    RunResult rr;
    EXPECT_FALSE(cacheEntryFromLine("", m, rr));
    EXPECT_FALSE(cacheEntryFromLine("{\"v\":2,\"material\":\"a\","
                                    "\"result\":{}}",
                                    m, rr));
    EXPECT_FALSE(cacheEntryFromLine("{\"v\":1}", m, rr));
}
