/**
 * @file
 * Unit tests: mini-RISC instruction set semantics and classification.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "isa/disasm.hh"
#include "isa/inst.hh"

using namespace svw;

namespace {

StaticInst
mk(Opcode op, RegIndex rd = 0, RegIndex rs1 = 0, RegIndex rs2 = 0,
   std::int64_t imm = 0)
{
    return StaticInst{op, rd, rs1, rs2, imm};
}

} // namespace

TEST(Isa, Classification)
{
    EXPECT_EQ(mk(Opcode::Add).cls(), InstClass::IntAlu);
    EXPECT_EQ(mk(Opcode::Mul).cls(), InstClass::IntMul);
    EXPECT_EQ(mk(Opcode::Ld8).cls(), InstClass::Load);
    EXPECT_EQ(mk(Opcode::St1).cls(), InstClass::Store);
    EXPECT_EQ(mk(Opcode::Beq).cls(), InstClass::Branch);
    EXPECT_EQ(mk(Opcode::Jmp).cls(), InstClass::Jump);
    EXPECT_EQ(mk(Opcode::Jal).cls(), InstClass::Jump);
    EXPECT_EQ(mk(Opcode::Jr).cls(), InstClass::JumpReg);
    EXPECT_EQ(mk(Opcode::Nop).cls(), InstClass::Nop);
    EXPECT_EQ(mk(Opcode::Halt).cls(), InstClass::Halt);
}

TEST(Isa, MemPredicatesAndSizes)
{
    EXPECT_TRUE(mk(Opcode::Ld1).isLoad());
    EXPECT_TRUE(mk(Opcode::St8).isStore());
    EXPECT_TRUE(mk(Opcode::Ld4).isMem());
    EXPECT_FALSE(mk(Opcode::Add).isMem());
    EXPECT_EQ(mk(Opcode::Ld1).memSize(), 1u);
    EXPECT_EQ(mk(Opcode::Ld2).memSize(), 2u);
    EXPECT_EQ(mk(Opcode::Ld4).memSize(), 4u);
    EXPECT_EQ(mk(Opcode::Ld8).memSize(), 8u);
    EXPECT_EQ(mk(Opcode::St2).memSize(), 2u);
    EXPECT_EQ(mk(Opcode::Add).memSize(), 0u);
}

TEST(Isa, CtrlPredicates)
{
    EXPECT_TRUE(mk(Opcode::Beq).isCondBranch());
    EXPECT_TRUE(mk(Opcode::Jmp).isDirectCtrl());
    EXPECT_TRUE(mk(Opcode::Jal).isDirectCtrl());
    EXPECT_TRUE(mk(Opcode::Jal).isCall());
    EXPECT_TRUE(mk(Opcode::Jr).isIndirectCtrl());
    EXPECT_TRUE(mk(Opcode::Bge).isCtrl());
    EXPECT_FALSE(mk(Opcode::Ld8).isCtrl());
}

TEST(Isa, WritesRegRules)
{
    EXPECT_TRUE(mk(Opcode::Add, 5).writesReg());
    EXPECT_FALSE(mk(Opcode::Add, 0).writesReg());  // r0 discard
    EXPECT_TRUE(mk(Opcode::Ld8, 3).writesReg());
    EXPECT_FALSE(mk(Opcode::St8, 3).writesReg());
    EXPECT_TRUE(mk(Opcode::Jal, regLink).writesReg());
    EXPECT_FALSE(mk(Opcode::Jmp, 5).writesReg());
    EXPECT_FALSE(mk(Opcode::Beq, 5).writesReg());
}

TEST(Isa, SourceRules)
{
    EXPECT_TRUE(mk(Opcode::Add).readsRs1());
    EXPECT_TRUE(mk(Opcode::Add).readsRs2());
    EXPECT_TRUE(mk(Opcode::AddI).readsRs1());
    EXPECT_FALSE(mk(Opcode::AddI).readsRs2());
    EXPECT_FALSE(mk(Opcode::MovI).readsRs1());
    EXPECT_TRUE(mk(Opcode::St8).readsRs2());
    EXPECT_TRUE(mk(Opcode::Ld8).readsRs1());
    EXPECT_FALSE(mk(Opcode::Ld8).readsRs2());
    EXPECT_FALSE(mk(Opcode::Jal).readsRs1());
    EXPECT_TRUE(mk(Opcode::Jr).readsRs1());
}

TEST(Isa, AluArithmetic)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Add), 3, 4, 0), 7u);
    EXPECT_EQ(evalAlu(mk(Opcode::Sub), 3, 4, 0), ~std::uint64_t(0));
    EXPECT_EQ(evalAlu(mk(Opcode::Mul), 6, 7, 0), 42u);
    EXPECT_EQ(evalAlu(mk(Opcode::And), 0xf0, 0x3c, 0), 0x30u);
    EXPECT_EQ(evalAlu(mk(Opcode::Or), 0xf0, 0x0f, 0), 0xffu);
    EXPECT_EQ(evalAlu(mk(Opcode::Xor), 0xff, 0x0f, 0), 0xf0u);
}

TEST(Isa, AluShifts)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Sll), 1, 8, 0), 256u);
    EXPECT_EQ(evalAlu(mk(Opcode::Srl), 256, 8, 0), 1u);
    // Arithmetic shift preserves sign.
    EXPECT_EQ(evalAlu(mk(Opcode::Sra), static_cast<std::uint64_t>(-16), 2,
                      0),
              static_cast<std::uint64_t>(-4));
    // Shift amounts are masked to 6 bits.
    EXPECT_EQ(evalAlu(mk(Opcode::Sll), 1, 64, 0), 1u);
}

TEST(Isa, AluComparisons)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Slt), static_cast<std::uint64_t>(-1), 0,
                      0),
              1u);
    EXPECT_EQ(evalAlu(mk(Opcode::Sltu), static_cast<std::uint64_t>(-1), 0,
                      0),
              0u);
    EXPECT_EQ(evalAlu(mk(Opcode::SltI, 0, 0, 0, 5), 4, 0, 0), 1u);
    EXPECT_EQ(evalAlu(mk(Opcode::SltI, 0, 0, 0, 5), 5, 0, 0), 0u);
}

TEST(Isa, AluImmediates)
{
    EXPECT_EQ(evalAlu(mk(Opcode::AddI, 0, 0, 0, -3), 10, 0, 0), 7u);
    EXPECT_EQ(evalAlu(mk(Opcode::AndI, 0, 0, 0, 0xff), 0x1234, 0, 0),
              0x34u);
    EXPECT_EQ(evalAlu(mk(Opcode::MovI, 0, 0, 0, -1), 99, 99, 0),
              ~std::uint64_t(0));
    EXPECT_EQ(evalAlu(mk(Opcode::SllI, 0, 0, 0, 4), 3, 0, 0), 48u);
    EXPECT_EQ(evalAlu(mk(Opcode::SraI, 0, 0, 0, 1),
                      static_cast<std::uint64_t>(-2), 0, 0),
              static_cast<std::uint64_t>(-1));
}

TEST(Isa, JalLinkValue)
{
    EXPECT_EQ(evalAlu(mk(Opcode::Jal, regLink), 0, 0, 41), 42u);
}

TEST(Isa, BranchSemantics)
{
    EXPECT_TRUE(evalBranchTaken(mk(Opcode::Beq), 5, 5));
    EXPECT_FALSE(evalBranchTaken(mk(Opcode::Beq), 5, 6));
    EXPECT_TRUE(evalBranchTaken(mk(Opcode::Bne), 5, 6));
    EXPECT_TRUE(evalBranchTaken(mk(Opcode::Blt),
                                static_cast<std::uint64_t>(-1), 0));
    EXPECT_FALSE(evalBranchTaken(mk(Opcode::Blt), 0,
                                 static_cast<std::uint64_t>(-1)));
    EXPECT_TRUE(evalBranchTaken(mk(Opcode::Bge), 5, 5));
}

TEST(Isa, BranchEvalOnNonBranchPanics)
{
    EXPECT_THROW(evalBranchTaken(mk(Opcode::Add), 0, 0), std::logic_error);
}

TEST(Isa, EffectiveAddr)
{
    EXPECT_EQ(effectiveAddr(mk(Opcode::Ld8, 1, 2, 0, 16), 100), 116u);
    EXPECT_EQ(effectiveAddr(mk(Opcode::St4, 0, 2, 3, -4), 100), 96u);
}

TEST(Isa, ExecLatency)
{
    EXPECT_EQ(mk(Opcode::Add).execLatency(), 1u);
    EXPECT_EQ(mk(Opcode::Mul).execLatency(), 3u);
}

TEST(Isa, DisassembleForms)
{
    EXPECT_EQ(disassemble(mk(Opcode::Add, 3, 1, 2)), "add r3, r1, r2");
    EXPECT_EQ(disassemble(mk(Opcode::AddI, 3, 1, 0, 5)), "addi r3, r1, 5");
    EXPECT_EQ(disassemble(mk(Opcode::Ld8, 4, 2, 0, 8)), "ld8 r4, 8(r2)");
    EXPECT_EQ(disassemble(mk(Opcode::St8, 0, 2, 4, 8)), "st8 r4, 8(r2)");
    EXPECT_EQ(disassemble(mk(Opcode::Beq, 0, 1, 2, 7)), "beq r1, r2, @7");
    EXPECT_EQ(disassemble(mk(Opcode::Jr, 0, regLink)), "jr r31");
    EXPECT_EQ(disassemble(mk(Opcode::Nop)), "nop");
}

/** Every opcode has a distinct printable mnemonic. */
TEST(Isa, OpcodeNamesDistinct)
{
    std::set<std::string> names;
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NumOpcodes); ++op) {
        names.insert(opcodeName(static_cast<Opcode>(op)));
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(Opcode::NumOpcodes));
}

/** Property sweep: ALU ops are pure functions (same inputs, same output). */
class AluPurity : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(AluPurity, Deterministic)
{
    const StaticInst si = mk(GetParam(), 1, 2, 3, 13);
    for (std::uint64_t a : {0ull, 1ull, ~0ull, 0x8000000000000000ull}) {
        for (std::uint64_t b : {0ull, 5ull, 63ull, ~0ull}) {
            EXPECT_EQ(evalAlu(si, a, b, 7), evalAlu(si, a, b, 7));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlu, AluPurity,
    ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                      Opcode::Xor, Opcode::Sll, Opcode::Srl, Opcode::Sra,
                      Opcode::Mul, Opcode::Slt, Opcode::Sltu, Opcode::AddI,
                      Opcode::AndI, Opcode::OrI, Opcode::XorI, Opcode::SllI,
                      Opcode::SrlI, Opcode::SraI, Opcode::SltI,
                      Opcode::MovI));
