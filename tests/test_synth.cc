/**
 * @file
 * Unit tests for the synthetic workload generator (prog/synth): the
 * name grammar, determinism and recipe-completeness guarantees, size
 * scaling, the declared behaviour profiles (checked against the golden
 * interpreter's dynamic counts), and the sweep-spec builder that turns
 * the generator into a differential-fuzz grid.
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "harness/executor.hh"
#include "harness/figures.hh"
#include "prog/synth.hh"
#include "prog/workloads/workloads.hh"

using namespace svw;

namespace {

/** Text + segments + entry state equality (what "bit-identical" means
 * for a Program). */
bool
samePrograms(const Program &a, const Program &b)
{
    if (a.textSize() != b.textSize() || a.entry() != b.entry() ||
        a.stackTop() != b.stackTop() ||
        a.segments().size() != b.segments().size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.textSize(); ++i) {
        const StaticInst &x = a.text()[i], &y = b.text()[i];
        if (x.op != y.op || x.rd != y.rd || x.rs1 != y.rs1 ||
            x.rs2 != y.rs2 || x.imm != y.imm) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.segments().size(); ++i) {
        if (a.segments()[i].base != b.segments()[i].base ||
            a.segments()[i].bytes != b.segments()[i].bytes) {
            return false;
        }
    }
    return true;
}

} // namespace

TEST(SynthRegistry, KindsArePresentAndProfiled)
{
    const auto &kinds = synth::kindNames();
    const std::vector<std::string> expected = {
        "chase", "hashjoin", "prodcons", "memcpy", "branchstorm", "mix",
    };
    EXPECT_EQ(kinds, expected);
    for (const std::string &k : kinds) {
        EXPECT_TRUE(synth::isKind(k));
        const synth::Profile &p = synth::profile(k);
        EXPECT_STREQ(p.kind, k.c_str());
        EXPECT_NE(p.summary, nullptr);
        EXPECT_LE(p.minLoadFrac, p.maxLoadFrac);
        EXPECT_LE(p.minStoreFrac, p.maxStoreFrac);
        EXPECT_LE(p.minBranchFrac, p.maxBranchFrac);
    }
    EXPECT_FALSE(synth::isKind("quicksort"));
}

TEST(SynthName, ParseAndCanonicalRoundTrip)
{
    synth::SynthParams p;
    std::string err;

    ASSERT_TRUE(synth::parseName("synth:chase:7", p, err)) << err;
    EXPECT_EQ(p.kind, "chase");
    EXPECT_EQ(p.seed, 7u);
    EXPECT_TRUE(p.extra.empty());
    EXPECT_EQ(synth::canonicalName(p), "synth:chase:7");

    ASSERT_TRUE(
        synth::parseName("synth:hashjoin:3:buckets=128", p, err)) << err;
    EXPECT_EQ(p.kind, "hashjoin");
    EXPECT_EQ(p.seed, 3u);
    ASSERT_EQ(p.extra.count("buckets"), 1u);
    EXPECT_EQ(p.extra["buckets"], 128u);
    EXPECT_EQ(synth::canonicalName(p), "synth:hashjoin:3:buckets=128");
}

TEST(SynthName, RejectsMalformedNames)
{
    synth::SynthParams p;
    std::string err;

    EXPECT_FALSE(synth::parseName("gzip", p, err));
    EXPECT_NE(err.find("not a synth name"), std::string::npos) << err;

    EXPECT_FALSE(synth::parseName("synth:chase", p, err));
    EXPECT_NE(err.find("needs a seed"), std::string::npos) << err;

    EXPECT_FALSE(synth::parseName("synth:quicksort:1", p, err));
    EXPECT_NE(err.find("unknown synth kind"), std::string::npos) << err;

    EXPECT_FALSE(synth::parseName("synth:chase:banana", p, err));
    EXPECT_NE(err.find("malformed synth seed"), std::string::npos) << err;

    EXPECT_FALSE(synth::parseName("synth:chase:1:nodes", p, err));
    EXPECT_NE(err.find("want key=value"), std::string::npos) << err;

    EXPECT_FALSE(synth::parseName("synth:chase:1:bukets=64", p, err));
    EXPECT_NE(err.find("unknown synth param"), std::string::npos) << err;
}

TEST(SynthBuild, EqualNamesBuildBitIdenticalPrograms)
{
    for (const std::string &kind : synth::kindNames()) {
        synth::SynthParams p;
        p.kind = kind;
        p.seed = 11;
        const std::string name = synth::canonicalName(p);
        Program a = synth::make(name, 20'000);
        Program b = synth::make(name, 20'000);
        EXPECT_TRUE(samePrograms(a, b)) << name;
        EXPECT_EQ(a.name(), name);
        a.validate();
    }
}

TEST(SynthBuild, SeedAndParamsChangeThePlacedProgram)
{
    Program s1 = synth::make("synth:mix:1", 10'000);
    Program s2 = synth::make("synth:mix:2", 10'000);
    EXPECT_FALSE(samePrograms(s1, s2));

    Program b64 = synth::make("synth:hashjoin:1:buckets=64", 10'000);
    Program b256 = synth::make("synth:hashjoin:1:buckets=256", 10'000);
    EXPECT_FALSE(samePrograms(b64, b256));
}

TEST(SynthBuild, TargetInstsScalesDynamicLength)
{
    for (const std::string &kind : synth::kindNames()) {
        synth::SynthParams p;
        p.kind = kind;
        p.seed = 2;
        Program small = synth::make(p, 5'000);
        Program large = synth::make(p, 50'000);

        Interp a(small), b(large);
        ASSERT_TRUE(a.run(10'000'000)) << kind;
        ASSERT_TRUE(b.run(10'000'000)) << kind;
        // Within a factor of ~3 of the target and ordered by target.
        EXPECT_GT(b.counts().insts, a.counts().insts) << kind;
        EXPECT_GT(a.counts().insts, 5'000u / 3) << kind;
        EXPECT_LT(b.counts().insts, 150'000u) << kind;
    }
}

TEST(SynthProfile, DeclaredMixBoundsHoldAcrossSeeds)
{
    // The profile is a contract: a generator edit that shifts a kind's
    // dynamic mix outside its declared envelope fails here rather than
    // silently changing what every figure built on it measures.
    for (const std::string &kind : synth::kindNames()) {
        const synth::Profile &pr = synth::profile(kind);
        for (std::uint64_t seed : {1ull, 5ull, 23ull}) {
            synth::SynthParams p;
            p.kind = kind;
            p.seed = seed;
            Program prog = synth::make(p, 20'000);
            Interp sim(prog);
            ASSERT_TRUE(sim.run(10'000'000)) << kind << " seed " << seed;
            const InterpCounts &c = sim.counts();
            ASSERT_GT(c.insts, 0u);
            const double insts = static_cast<double>(c.insts);
            const double loadFrac = c.loads / insts;
            const double storeFrac = c.stores / insts;
            const double branchFrac = c.branches / insts;
            EXPECT_GE(loadFrac, pr.minLoadFrac) << kind << " seed " << seed;
            EXPECT_LE(loadFrac, pr.maxLoadFrac) << kind << " seed " << seed;
            EXPECT_GE(storeFrac, pr.minStoreFrac)
                << kind << " seed " << seed;
            EXPECT_LE(storeFrac, pr.maxStoreFrac)
                << kind << " seed " << seed;
            EXPECT_GE(branchFrac, pr.minBranchFrac)
                << kind << " seed " << seed;
            EXPECT_LE(branchFrac, pr.maxBranchFrac)
                << kind << " seed " << seed;
        }
    }
}

TEST(SynthRegistryDispatch, WorkloadRegistryAcceptsSynthNames)
{
    EXPECT_TRUE(workloads::isKnown("synth:chase:1"));
    EXPECT_TRUE(workloads::isKnown("synth:memcpy:9:bytes=1024"));
    EXPECT_FALSE(workloads::isKnown("synth:chase"));
    EXPECT_FALSE(workloads::isKnown("synth:nope:1"));

    std::string err;
    EXPECT_FALSE(workloads::validate("synth:chase:x", err));
    EXPECT_NE(err.find("malformed synth seed"), std::string::npos) << err;

    Program prog = workloads::make("synth:prodcons:4", 8'000);
    EXPECT_EQ(prog.name(), "synth:prodcons:4");
    prog.validate();

    // Names are complete recipes, so no cache-key augment is needed.
    EXPECT_EQ(workloads::cacheKeyAugment("synth:prodcons:4"), "");
    EXPECT_EQ(workloads::cacheKeyAugment("gzip"), "");

    const auto &suite = workloads::synthSuiteNames();
    ASSERT_EQ(suite.size(), synth::kindNames().size());
    for (const std::string &name : suite)
        EXPECT_TRUE(workloads::isKnown(name)) << name;
}

TEST(SynthDiffSpec, GridCoversEveryKindAndRunsClean)
{
    using namespace svw::harness;
    // Small grid (2 seeds per kind) through the real executor: every
    // cell golden-checked, grouped by canonical workload name.
    SweepSpec spec = synthDiffSpec(2, 2'000);
    EXPECT_EQ(spec.size(), 2 * synth::kindNames().size());

    SweepResults res = runSweep(spec, SweepOptions{});
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const CellOutcome &o = res.outcome(i);
        EXPECT_TRUE(o.ran && o.ok) << spec.cell(i).name() << ": "
                                   << o.error;
        EXPECT_TRUE(o.result.goldenOk) << spec.cell(i).name();
        EXPECT_TRUE(o.result.halted) << spec.cell(i).name();
    }
}
