/**
 * @file
 * Unit tests: Program container, ProgramBuilder (labels, data
 * allocation, validation) and the functional interpreter on small
 * directed programs.
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "prog/builder.hh"
#include "prog/program.hh"

using namespace svw;

TEST(Builder, EmitsAndFinishes)
{
    ProgramBuilder b("t");
    b.movi(1, 42);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.textSize(), 2u);
    EXPECT_EQ(p.inst(0).op, Opcode::MovI);
    EXPECT_EQ(p.inst(0).imm, 42);
}

TEST(Builder, ForwardLabelPatched)
{
    ProgramBuilder b("t");
    Label skip = b.newLabel();
    b.jmp(skip);
    b.movi(1, 1);  // skipped
    b.bind(skip);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.inst(0).imm, 2);
}

TEST(Builder, BackwardLabelPatched)
{
    ProgramBuilder b("t");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.bind(top);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.inst(2).imm, 1);
}

TEST(Builder, UnboundLabelPanics)
{
    ProgramBuilder b("t");
    Label l = b.newLabel();
    b.jmp(l);
    b.halt();
    EXPECT_THROW(b.finish(), std::logic_error);
}

TEST(Builder, DoubleBindPanics)
{
    ProgramBuilder b("t");
    Label l = b.newLabel();
    b.bind(l);
    EXPECT_THROW(b.bind(l), std::logic_error);
}

TEST(Builder, DataAllocationAlignedAndDisjoint)
{
    ProgramBuilder b("t");
    Addr a1 = b.allocData(100, 8);
    Addr a2 = b.allocData(10, 64);
    Addr a3 = b.allocData(1, 8);
    EXPECT_EQ(a1 % 8, 0u);
    EXPECT_EQ(a2 % 64, 0u);
    EXPECT_GE(a2, a1 + 100);
    EXPECT_GE(a3, a2 + 10);
}

TEST(Builder, AllocWordsInitialMemory)
{
    ProgramBuilder b("t");
    Addr a = b.allocWords({1, 2, 0xdeadbeef});
    b.halt();
    Program p = b.finish();
    Interp in(p);
    EXPECT_EQ(in.memory().read(a, 8), 1u);
    EXPECT_EQ(in.memory().read(a + 8, 8), 2u);
    EXPECT_EQ(in.memory().read(a + 16, 8), 0xdeadbeefu);
}

TEST(Builder, ValidationCatchesMissingHalt)
{
    ProgramBuilder b("t");
    b.movi(1, 1);
    EXPECT_THROW(b.finish(), std::logic_error);
}

TEST(Program, ValidateChecksBranchTargets)
{
    Program p("bad");
    p.text().push_back({Opcode::Beq, 0, 1, 2, 99});
    p.text().push_back({Opcode::Halt, 0, 0, 0, 0});
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Program, ValidateChecksRegisterRange)
{
    Program p("bad");
    p.text().push_back({Opcode::Add, 40, 1, 2, 0});
    p.text().push_back({Opcode::Halt, 0, 0, 0, 0});
    EXPECT_THROW(p.validate(), std::logic_error);
}

// ---------------------------------------------------------------------
// Interpreter semantics
// ---------------------------------------------------------------------

TEST(Interp, SimpleArithmetic)
{
    ProgramBuilder b("t");
    b.movi(1, 6);
    b.movi(2, 7);
    b.mul(3, 1, 2);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    EXPECT_TRUE(in.run(100));
    EXPECT_EQ(in.reg(3), 42u);
}

TEST(Interp, R0AlwaysZero)
{
    ProgramBuilder b("t");
    b.movi(0, 55);
    b.addi(1, 0, 1);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.reg(0), 0u);
    EXPECT_EQ(in.reg(1), 1u);
}

TEST(Interp, LoadStoreRoundTrip)
{
    ProgramBuilder b("t");
    Addr buf = b.allocData(64);
    b.loadAddr(1, buf);
    b.movi(2, 0x1122334455667788);
    b.st8(2, 1, 0);
    b.ld8(3, 1, 0);
    b.ld4(4, 1, 0);
    b.ld2(5, 1, 0);
    b.ld1(6, 1, 0);
    b.ld1(7, 1, 7);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.reg(3), 0x1122334455667788u);
    EXPECT_EQ(in.reg(4), 0x55667788u);  // zero-extended
    EXPECT_EQ(in.reg(5), 0x7788u);
    EXPECT_EQ(in.reg(6), 0x88u);
    EXPECT_EQ(in.reg(7), 0x11u);        // little endian high byte
}

TEST(Interp, SubWordStoreLeavesNeighbours)
{
    ProgramBuilder b("t");
    Addr buf = b.allocWords({~0ull});
    b.loadAddr(1, buf);
    b.movi(2, 0);
    b.st1(2, 1, 3);
    b.ld8(3, 1, 0);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.reg(3), 0xffffffff00ffffffu);
}

TEST(Interp, LoopCountsAndHalts)
{
    ProgramBuilder b("t");
    b.movi(1, 0);
    b.movi(2, 10);
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    EXPECT_TRUE(in.run(1000));
    EXPECT_EQ(in.reg(1), 10u);
    EXPECT_EQ(in.counts().branches, 10u);
    EXPECT_EQ(in.counts().takenBranches, 9u);
}

TEST(Interp, CallAndReturn)
{
    ProgramBuilder b("t");
    Label fn = b.newLabel();
    Label entry = b.newLabel();
    b.jmp(entry);
    b.bind(fn);
    b.addi(5, 5, 100);
    b.ret();
    b.bind(entry);
    b.movi(5, 1);
    b.call(fn);
    b.addi(5, 5, 10);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    EXPECT_TRUE(in.run(100));
    EXPECT_EQ(in.reg(5), 111u);
}

TEST(Interp, NestedCallsWithStack)
{
    ProgramBuilder b("t");
    Label inner = b.newLabel();
    Label outer = b.newLabel();
    Label entry = b.newLabel();
    b.jmp(entry);

    b.bind(inner);
    b.addi(5, 5, 1);
    b.ret();

    b.bind(outer);
    b.pushLink();
    b.call(inner);
    b.call(inner);
    b.popLinkAndRet();

    b.bind(entry);
    b.movi(5, 0);
    b.call(outer);
    b.call(outer);
    b.halt();
    Program p = b.finish();
    Interp in(p);
    EXPECT_TRUE(in.run(1000));
    EXPECT_EQ(in.reg(5), 4u);
}

TEST(Interp, SilentStoreCounted)
{
    ProgramBuilder b("t");
    Addr buf = b.allocWords({7});
    b.loadAddr(1, buf);
    b.movi(2, 7);
    b.st8(2, 1, 0);   // silent: writes existing value
    b.movi(2, 8);
    b.st8(2, 1, 0);   // not silent
    b.halt();
    Program p = b.finish();
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.counts().silentStores, 1u);
    EXPECT_EQ(in.counts().stores, 2u);
}

TEST(Interp, RunBudgetStopsEarly)
{
    ProgramBuilder b("t");
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(1, 1, 1);
    b.jmp(loop);
    b.halt();  // unreachable but required
    Program p = b.finish();
    Interp in(p);
    EXPECT_FALSE(in.run(50));
    EXPECT_EQ(in.counts().insts, 50u);
    EXPECT_FALSE(in.halted());
}

TEST(Interp, StackPointerInitialized)
{
    ProgramBuilder b("t");
    b.halt();
    Program p = b.finish();
    Interp in(p);
    EXPECT_EQ(in.reg(regSp), p.stackTop());
}
