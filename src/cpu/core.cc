#include "cpu/core.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/profile.hh"

namespace svw {

Core::Core(const CoreParams &p, const Program &program,
           stats::StatRegistry &reg, const MemoryImage *sharedImage)
    : retired(reg, "core.retired", "instructions retired"),
      retiredLoads(reg, "core.retiredLoads", "loads retired"),
      retiredStores(reg, "core.retiredStores", "stores retired"),
      retiredBranches(reg, "core.retiredBranches",
                      "conditional branches retired"),
      cyclesStat(reg, "core.cycles", "cycles simulated"),
      branchSquashes(reg, "core.branchSquashes", "control mispredictions"),
      orderingSquashes(reg, "core.orderingSquashes",
                       "LQ-search ordering violations"),
      rexFlushes(reg, "core.rexFlushes", "re-execution mismatch flushes"),
      loadsEliminatedRetired(reg, "core.loadsEliminatedRetired",
                             "retired loads that were RLE-eliminated"),
      elimReuseRetired(reg, "core.elimReuseRetired",
                       "retired eliminations via load reuse"),
      elimBypassRetired(reg, "core.elimBypassRetired",
                        "retired eliminations via memory bypassing"),
      fsqLoadsRetired(reg, "core.fsqLoadsRetired",
                      "retired loads steered to the FSQ"),
      wrapDrainCycles(reg, "core.wrapDrainCycles",
                      "cycles dispatch stalled for SSN wrap drains"),
      invalidationsSeen(reg, "core.invalidationsSeen",
                        "external invalidations observed"),
      ckptRestores(reg, "core.ckptRestores",
                   "squashes recovered from a rename checkpoint"),
      ckptWalks(reg, "core.ckptWalks",
                "squashes recovered by the youngest-first walk"),
      prm(p),
      prog(program),
      mem(p.mem, reg),
      bpred(p.bpred, reg),
      rename(p.numPhysRegs, p.renameCheckpoints,
             // Journal capacity: one definition per in-flight
             // instruction plus one hygiene marker per in-flight load
             // (RLE checkpoint recovery).
             2 * p.robEntries),
      rob(p.robEntries),
      iq(p.iqEntries),
      svw(p.svw, reg),
      lsu(p.lsu, committedMem, svw, reg),
      rex(p.rex, committedMem, svw, dcachePort, reg),
      rle(p.rle, reg),
      storeSets(4096, 256, reg),
      spct(512, 8),
      dcachePort(p.dcachePorts),
      storeIssuePorts(p.lsu.storeIssueWidth),
      hygieneJournalOn(p.rle.enabled && p.renameCheckpoints > 0),
      fetchPc(program.entry()),
      fetchQueue(static_cast<std::size_t>(p.frontendDepth + 1) *
                 p.fetchWidth),
      fetchColds(static_cast<std::size_t>(p.frontendDepth + 1) *
                 p.fetchWidth)
{
    preText = prog.predecoded().data();
    if (sharedImage)
        committedMem.setBacking(sharedImage);
    else
        committedMem.loadProgram(program);
    rename.regs().setValue(rename.map(regSp), program.stackTop());
    for (unsigned b = 0; b < p.mem.l1dBanks; ++b)
        loadBankPorts.emplace_back(1);
    archMap.fill(0);
    for (RegIndex a = 0; a < numArchRegs; ++a)
        archMap[a] = rename.map(a);

    retired.bind(&hot.retired);
    retiredLoads.bind(&hot.retiredLoads);
    retiredStores.bind(&hot.retiredStores);
    retiredBranches.bind(&hot.retiredBranches);
    cyclesStat.bind(&hot.cycles);
    branchSquashes.bind(&hot.branchSquashes);
    orderingSquashes.bind(&hot.orderingSquashes);
    rexFlushes.bind(&hot.rexFlushes);
    loadsEliminatedRetired.bind(&hot.loadsEliminatedRetired);
    elimReuseRetired.bind(&hot.elimReuseRetired);
    elimBypassRetired.bind(&hot.elimBypassRetired);
    fsqLoadsRetired.bind(&hot.fsqLoadsRetired);
    wrapDrainCycles.bind(&hot.wrapDrainCycles);
    invalidationsSeen.bind(&hot.invalidationsSeen);
    ckptRestores.bind(&hot.ckptRestores);
    ckptWalks.bind(&hot.ckptWalks);
}

std::uint64_t
Core::archReg(RegIndex a) const
{
    return rename.regs().value(archMap[a]);
}

RunOutcome
Core::run(std::uint64_t maxInsts, std::uint64_t maxCycles)
{
    advance(maxInsts, maxCycles, ~std::uint64_t(0));
    return outcome();
}

bool
Core::advance(std::uint64_t maxInsts, std::uint64_t maxCycles,
              std::uint64_t quantum)
{
    if (now >= maxCycles)
        return true;
    const std::uint64_t stop =
        quantum < maxCycles - now ? now + quantum : maxCycles;
    while (!haltCommitted && retired.value() < maxInsts && now < stop)
        tick();
    return haltCommitted || retired.value() >= maxInsts ||
           now >= maxCycles;
}

void
Core::tick()
{
    if (stageProf) {
        tickProfiled();
        return;
    }
    if (perCycleHook)
        perCycleHook(*this);
    commitStage();
    rex.tick(rob, rename, now);
    completeStage();
    issueStage();
    dispatchStage();
    fetchStage();
    ++now;
    ++hot.cycles;
}

void
Core::tickProfiled()
{
    // Same stage sequence as tick(), with a monotonic-clock read at
    // each boundary. Host-side observation only: no simulated state
    // depends on the readings, so cycles and metrics are bit-identical
    // to the unprofiled body.
    prof::StageTimes &st = *stageProf;
    if (perCycleHook)
        perCycleHook(*this);
    std::uint64_t t = prof::nowNs(), u;
    commitStage();
    u = prof::nowNs(); st.ns[prof::Commit] += u - t; t = u;
    rex.tick(rob, rename, now);
    u = prof::nowNs(); st.ns[prof::Rex] += u - t; t = u;
    completeStage();
    u = prof::nowNs(); st.ns[prof::Complete] += u - t; t = u;
    issueStage();
    u = prof::nowNs(); st.ns[prof::Issue] += u - t; t = u;
    dispatchStage();
    u = prof::nowNs(); st.ns[prof::Dispatch] += u - t; t = u;
    fetchStage();
    u = prof::nowNs(); st.ns[prof::Fetch] += u - t;
    ++st.ticks;
    ++now;
    ++hot.cycles;
}

// --------------------------------------------------------------------
// Complete: results arriving this cycle; branch resolution.
// --------------------------------------------------------------------

void
Core::drainCompletions()
{
    completionQueue.drain(now, [this](InstSeqNum seq) {
        DynInst *inst = rob.findBySeq(seq);
        if (!inst)
            return;  // squashed
        inst->completed = true;
        if (tracer)
            tracer->event(now, TraceEvent::Complete, *inst);
        if (inst->isCtrl())
            finishBranch(*inst);
    });
}

void
Core::completeStage()
{
    if (stageProf) {
        const std::uint64_t t0 = prof::nowNs();
        drainCompletions();
        stageProf->ns[prof::WheelAdvance] += prof::nowNs() - t0;
    } else {
        drainCompletions();
    }

    // Stores whose address issued early capture data as it arrives.
    for (std::size_t i = 0; i < storesAwaitingData.size();) {
        DynInst *st = rob.findBySeq(storesAwaitingData[i]);
        if (!st) {
            storesAwaitingData[i] = storesAwaitingData.back();
            storesAwaitingData.pop_back();
            continue;
        }
        if (rename.regs().isReady(st->prs2, now)) {
            captureStoreData(*st);
            storesAwaitingData[i] = storesAwaitingData.back();
            storesAwaitingData.pop_back();
            continue;
        }
        ++i;
    }

    // Eliminated instructions complete when their shared register does.
    for (std::size_t i = 0; i < elimPending.size();) {
        DynInst *inst = rob.findBySeq(elimPending[i]);
        if (!inst) {
            elimPending[i] = elimPending.back();
            elimPending.pop_back();
            continue;
        }
        if (rename.regs().isReady(inst->prd, now)) {
            inst->completed = true;
            inst->completeCycle = now;
            elimPending[i] = elimPending.back();
            elimPending.pop_back();
            continue;
        }
        ++i;
    }
}

void
Core::captureStoreData(DynInst &store)
{
    store.storeData = srcVal(store.prs2);
    store.dataResolved = true;
    store.completeCycle = now + 1;
    completionQueue.schedule(now, now + 1, store.seq);
    lsu.storeDataReady(store);
}

void
Core::finishBranch(DynInst &inst)
{
    if (inst.actualNextPc == inst.predNextPc)
        return;
    inst.mispredicted = true;
    ++hot.branchSquashes;
    if (inst.isIndirectCtrl())
        bpred.btbUpdate(inst.pc, inst.actualNextPc);
    squashAfter(inst.seq, inst.actualNextPc, &inst);
}

// --------------------------------------------------------------------
// Issue: age-ordered scan of the issue queue.
// --------------------------------------------------------------------

void
Core::issueStage()
{
    // Fire this cycle's recorded sleep expiries; the scan then visits
    // only awake slots. A visit outcome is identical to the full
    // screened walk's — sleeping entries are skipped either way, and
    // the wake conditions (value-arrival cycle, producer issue) are
    // exact — so the scan is O(awake) instead of O(queue) per cycle
    // with bit-identical issue decisions.
    iq.drainWakes(now);

    unsigned globalUsed = 0;
    unsigned intUsed = 0, loadUsed = 0, storeUsed = 0, branchUsed = 0;
    const unsigned storeWidth = prm.lsu.storeIssueWidth;

    // On an unready gating source, record what the entry waits for in
    // its own slot — the cycle the value arrives (producer issued,
    // readyAt known) or the blocking register itself (producer not
    // issued yet; wakes exactly at that producer's issue). The failed
    // wakeup check reads and writes only the IQ entry, never the
    // DynInst.
    auto entryBlocked = [&](IssueQueue::Entry &e, PhysRegIndex p) {
        if (rename.regs().isReady(p, now))
            return false;
        const Cycle r = rename.regs().readyAt(p);
        if (r == notReady) {
            e.sleepReg = p;
            e.sleepRetry = 0;
        } else {
            e.sleepRetry = r;
            e.sleepReg = invalidPhysReg;
        }
        return true;
    };

    // In-place oldest-first scan: issue tombstones the slot under the
    // scan (indices never shift mid-cycle; squash only pops the young
    // suffix, and the scan breaks right after any squash). Sleep state,
    // issue class, and the gating renamed sources are read from the
    // compact IQ entry mirror; the DynInst itself is touched only when
    // every register gate passes and the entry might really issue.
    // nextAwake reads the live bitmap, so consumers woken by an issue
    // earlier in this very scan (always at higher slots: age order)
    // are visited this cycle, exactly like the full walk.
    for (std::size_t idx = iq.nextAwake(0); idx != IssueQueue::npos;
         idx = iq.nextAwake(idx + 1)) {
        if (globalUsed >= prm.issueWidth)
            break;
        if (intUsed >= prm.intIssue && loadUsed >= prm.loadIssue &&
            storeUsed >= storeWidth && branchUsed >= prm.branchIssue) {
            break;  // every class cap saturated: nothing more can issue
        }
        IssueQueue::Entry &e = iq.slotRef(idx);
        if (!e.inst)
            continue;  // tombstone
        if (e.sleepRetry > now) {
            // Spuriously woken (stale record): value still in flight;
            // go back to sleep on the recorded arrival cycle.
            iq.noteAsleep(idx, now);
            continue;
        }
        if (e.sleepReg != invalidPhysReg &&
            rename.regs().readyAt(e.sleepReg) == notReady) {
            // Spuriously woken: the blocking source's producer is
            // still unissued; re-arm on that register.
            iq.noteAsleep(idx, now);
            continue;
        }
        // A capped class would fail tryIssue's first check; skip the
        // call (and the DynInst access) outright.
        switch (e.clsGroup) {
          case IssueQueue::ClsInt:
            if (intUsed >= prm.intIssue)
                continue;
            break;
          case IssueQueue::ClsBranch:
            if (branchUsed >= prm.branchIssue)
                continue;
            break;
          case IssueQueue::ClsLoad:
            if (loadUsed >= prm.loadIssue)
                continue;
            break;
          case IssueQueue::ClsStore:
            if (storeUsed >= storeWidth)
                continue;
            break;
        }
        // Source-readiness gates, evaluated on the entry's prs1/prs2
        // mirrors: a blocked source records its sleep state above and
        // leaves the bitmap with its exact wake armed, the DynInst
        // untouched.
        if ((e.gates & IssueQueue::GateRs1) && entryBlocked(e, e.prs1)) {
            iq.noteAsleep(idx, now);
            continue;
        }
        if ((e.gates & IssueQueue::GateRs2) && entryBlocked(e, e.prs2)) {
            iq.noteAsleep(idx, now);
            continue;
        }
        DynInst *inst = e.inst;
        if (inst->issued)
            continue;
        const std::uint64_t squashesBefore =
            hot.branchSquashes + hot.orderingSquashes;
        if (tryIssue(*inst, intUsed, loadUsed, storeUsed, branchUsed)) {
            ++globalUsed;
            iq.removeAt(idx);
            if (tracer)
                tracer->event(now, TraceEvent::Issue, *inst);
        }
        // Every register gate passed, so a failure has no recorded
        // wake (port conflict, store-set wait, partial overlap): the
        // entry keeps its awake bit and is re-polled every cycle.
        // A store issue may have triggered an ordering squash that
        // invalidated the scan; stop for this cycle.
        if (hot.branchSquashes + hot.orderingSquashes != squashesBefore)
            break;
    }
}

bool
Core::tryIssue(DynInst &inst, unsigned &intUsed, unsigned &loadUsed,
               unsigned &storeUsed, unsigned &branchUsed)
{
    const StaticInst &si = *inst.si;

    switch (inst.cls()) {
      case InstClass::IntAlu:
      case InstClass::IntMul: {
        if (intUsed >= prm.intIssue)
            return false;
        if (inst.readsRs1() && !srcReady(inst.prs1))
            return false;
        if (inst.readsRs2() && !srcReady(inst.prs2))
            return false;
        const std::uint64_t r = evalAluOp(inst.opc(), si.imm,
                                          srcVal(inst.prs1),
                                          srcVal(inst.prs2), inst.pc);
        const Cycle done = now + inst.execLatency();
        if (inst.writesReg()) {
            rename.regs().setValue(inst.prd, r);
            noteReadyAt(inst.prd, done);
        }
        inst.issued = true;
        inst.completeCycle = done;
        completionQueue.schedule(now, done, inst.seq);
        ++intUsed;
        return true;
      }

      case InstClass::Branch:
      case InstClass::Jump:
      case InstClass::JumpReg: {
        if (branchUsed >= prm.branchIssue)
            return false;
        if (inst.readsRs1() && !srcReady(inst.prs1))
            return false;
        if (inst.readsRs2() && !srcReady(inst.prs2))
            return false;
        if (inst.isCondBranch()) {
            inst.actualTaken = evalBranchTakenOp(inst.opc(),
                                                 srcVal(inst.prs1),
                                                 srcVal(inst.prs2));
            inst.actualNextPc = inst.actualTaken
                ? static_cast<std::uint32_t>(si.imm) : inst.pc + 1;
        } else if (inst.isDirectCtrl()) {
            inst.actualNextPc = static_cast<std::uint32_t>(si.imm);
            if (inst.isCall()) {
                rename.regs().setValue(inst.prd, inst.pc + 1);
                noteReadyAt(inst.prd, now + 1);
            }
        } else {
            inst.actualNextPc =
                static_cast<std::uint32_t>(srcVal(inst.prs1));
        }
        inst.issued = true;
        inst.completeCycle = now + 1;
        completionQueue.schedule(now, now + 1, inst.seq);
        ++branchUsed;
        return true;
      }

      case InstClass::Load: {
        if (loadUsed >= prm.loadIssue)
            return false;
        if (!srcReady(inst.prs1))
            return false;
        // Store-sets: wait for the predicted-conflicting store.
        if (inst.storeSetDep != 0) {
            DynInst *dep = rob.findBySeq(inst.storeSetDep);
            if (dep && !dep->addrResolved)
                return false;
        }
        inst.addr = effectiveAddr(si, srcVal(inst.prs1));
        const unsigned bank = mem.dataBank(inst.addr);
        if (loadBankPorts[bank].freeSlots(now) == 0)
            return false;
        issueLoad(inst);
        if (!inst.issued)
            return false;  // blocked (partial overlap / FSQ port)
        loadBankPorts[bank].tryClaim(now);
        ++loadUsed;
        return true;
      }

      case InstClass::Store: {
        // Stores issue (generate their address, search the LQ) as soon
        // as the base register is ready; the data is captured whenever
        // it arrives. Early address resolution is what keeps the NLQ
        // ambiguous-store windows short.
        if (storeUsed >= prm.lsu.storeIssueWidth)
            return false;
        if (!srcReady(inst.prs1))
            return false;
        if (inst.storeSetDep != 0) {
            DynInst *dep = rob.findBySeq(inst.storeSetDep);
            if (dep && !dep->addrResolved)
                return false;
        }
        issueStore(inst);
        ++storeUsed;
        return true;
      }

      default:
        svw_panic("unexpected class in IQ");
    }
}

void
Core::issueLoad(DynInst &load)
{
    LoadExecResult res;
    if (stageProf) {
        const std::uint64_t t0 = prof::nowNs();
        res = lsu.executeLoad(load, now);
        stageProf->ns[prof::LsuSearch] += prof::nowNs() - t0;
    } else {
        res = lsu.executeLoad(load, now);
    }
    if (res.status != LoadExecResult::Status::Done)
        return;  // retry next cycle

    load.issued = true;
    load.addrResolved = true;
    load.loadValue = res.value;
    load.specExecuted = res.sawAmbiguousOlderStore || res.bestEffort;

    // NLQ-LS marking: issued in the presence of older ambiguous stores.
    if (nlq::shouldMarkLoad(prm.lsu.nlq, res))
        load.rexReasons |= RexNlqSpec;

    Cycle done;
    if (res.forwarded) {
        done = now + mem.l1dLatency() + prm.lsu.loadExtraLatency;
    } else {
        done = mem.accessData(load.addr, false, now) +
            prm.lsu.loadExtraLatency;
    }
    load.completeCycle = done;
    if (load.writesReg()) {
        rename.regs().setValue(load.prd, load.loadValue);
        noteReadyAt(load.prd, done);
    }
    completionQueue.schedule(now, done, load.seq);
}

void
Core::issueStore(DynInst &store)
{
    store.addr = effectiveAddr(*store.si, srcVal(store.prs1));
    store.addrResolved = true;
    store.issued = true;
    storeSets.storeResolved(store.pc, store.seq);

    if (srcReady(store.prs2)) {
        captureStoreData(store);
    } else {
        storesAwaitingData.push_back(store.seq);
    }

    InstSeqNum victim;
    if (stageProf) {
        const std::uint64_t t0 = prof::nowNs();
        victim = lsu.storeResolved(store);
        stageProf->ns[prof::LsuSearch] += prof::nowNs() - t0;
    } else {
        victim = lsu.storeResolved(store);
    }
    if (victim != 0) {
        // Associative LQ search found a premature load: flush at the
        // load and train store-sets with the exact store-load pair.
        DynInst *load = rob.findBySeq(victim);
        svw_assert(load, "violating load vanished");
        ++hot.orderingSquashes;
        storeSets.train(store.pc, load->pc);
        const std::uint64_t loadPc = load->pc;
        squashAfter(victim - 1, loadPc, nullptr);
    }
}

// --------------------------------------------------------------------
// Dispatch: rename, allocate, RLE integration, SSN/SVW assignment.
// --------------------------------------------------------------------

void
Core::dispatchStage()
{
    if (drainPending) {
        ++hot.wrapDrainCycles;
        if (rob.empty()) {
            svw.wrapClear();
            rle.wrapClear(rename);
            svw.ssn().ackWrap();
            drainPending = false;
        } else {
            return;
        }
    }

    unsigned n = 0;
    while (n < prm.dispatchWidth && !fetchQueue.empty()) {
        DynInst &head = fetchQueue.front();
        if (head.fetchReadyCycle > now)
            break;
        if (!dispatchOne(head, fetchColds.front()))
            break;
        fetchQueue.pop_front();
        fetchColds.pop_front();
        ++n;
    }
}

bool
Core::dispatchOne(DynInst &d, const DynInstCold &cold)
{
    const StaticInst &si = *d.si;

    // ---- resource checks (no state change before all pass) ----------
    if (rob.full())
        return false;
    const bool trivial = d.cls() == InstClass::Nop ||
        d.cls() == InstClass::Halt;
    if (!trivial && iq.full())
        return false;
    if (d.isLoad() && lsu.lqFull())
        return false;
    if (d.isStore()) {
        if (lsu.sqFull())
            return false;
        if (lsu.fsqFullFor(d)) {
            ++lsu.fsqAllocStalls;
            return false;
        }
        if (svw.ssn().nextAssignWraps()) {
            drainPending = true;
            return false;
        }
    }

    // ---- rename sources ----------------------------------------------
    d.prs1 = rename.map(si.rs1);
    d.prs2 = rename.map(si.rs2);

    // ---- RLE integration -----------------------------------------------
    bool integrated = false;
    if (rle.enabled() && d.writesReg()) {
        if (auto integ = rle.tryIntegrate(si, d.prs1, d.prs2, rename)) {
            integrated = true;
            d.eliminated = true;
            d.elimFromSquash = integ->fromSquash;
            d.elimFromBypass = integ->fromStore;
            d.prd = integ->dst;
            rename.addRef(d.prd);
            d.prevPrd = rename.map(si.rd);
            rename.speculativeDef(si.rd, d.prd);
            if (d.isLoad()) {
                d.rexReasons |= RexRleElim;
                // Section 3.4: the window starts at the IT entry,
                // ld.SVW = IT-ENTRY.SSN. Only when NLQ-SM is active does
                // section 3.5's composition with SSNRETIRE apply
                // (eliminated loads stay subject to invalidations).
                d.svw = prm.nlqsm
                    ? SvwUnit::composeSvw(integ->ssn, svw.svwAtDispatch())
                    : integ->ssn;
                d.svwValid = !integ->fromSquash;
            }
        }
    }

    if (!integrated && d.writesReg()) {
        if (!rename.hasFreeReg() && !rle.relievePressure(rename))
            return false;
        if (!rename.hasFreeReg())
            return false;
        d.prevPrd = rename.map(si.rd);
        d.prd = rename.alloc();
        rename.speculativeDef(si.rd, d.prd);
    }

    // ---- squash-hygiene marker for checkpoint recovery ------------------
    // On RLE cores the youngest-first walk inspects every squashed load
    // for IT invalidation; journal a marker right after the load's own
    // definition so a checkpoint replay performs the same check at the
    // same point (RenameState::restoreCheckpoint).
    if (hygieneJournalOn && d.isLoad() && !d.eliminated)
        rename.journalSquashHygiene(d.seq);

    // ---- recovery checkpoint at low-confidence control ------------------
    // Taken after this instruction's own definition so the snapshot is
    // exactly the state a squash keeping d.seq must restore. Pure
    // host-side recovery machinery; never affects timing.
    if (d.isCtrl() && d.predLowConf)
        d.ckptTag = rename.takeCheckpoint(d.seq, cold.bpredSnap);

    // ---- class-specific dispatch ---------------------------------------
    if (d.isStore()) {
        d.ssn = svw.ssn().assign();
        d.storeSetDep = storeSets.storeDispatched(d.pc, d.seq);
    } else if (d.isLoad() && !d.eliminated) {
        d.svw = svw.svwAtDispatch();
        d.svwValid = true;
        if (prm.lsu.ssq)
            d.rexReasons |= RexSsqAll;
        d.storeSetDep = storeSets.loadDependency(d.pc);
        if (prm.rex.svwReplacesReExecution) {
            auto it = replaceFlushStreak.find(d.pc);
            if (it != replaceFlushStreak.end() &&
                it->second >= replaceStreakLimit) {
                d.forceRealRex = true;
            }
        }
    }

    if (trivial) {
        d.completed = true;
        d.issued = true;
        d.completeCycle = now;
    }

    d.dispatched = true;
    DynInst &r = rob.push(std::move(d), cold);
    if (tracer)
        tracer->event(now, TraceEvent::Dispatch, r);

    if (r.isLoad())
        lsu.dispatchLoad(r);
    else if (r.isStore())
        lsu.dispatchStore(r);

    if (r.eliminated) {
        elimPending.push_back(r.seq);
    } else {
        if (!trivial) {
            iq.insert(&r);
        }
        if (rle.enabled()) {
            rle.createEntry(r, rename, svw.ssn().ssnRename(),
                            r.isStore() ? r.ssn : 0);
        }
    }
    return true;
}

// --------------------------------------------------------------------
// Squash.
// --------------------------------------------------------------------

void
Core::squashAfter(InstSeqNum keepSeq, std::uint64_t newFetchPc,
                  const DynInst *replay)
{
    // Checkpoints younger than the squash point snapshot wrong-path
    // state; drop them before looking for a covering one. With a tracer
    // attached the walk must run anyway (it emits the Squash events), so
    // the checkpoint is ignored — recovered state is identical either
    // way.
    rename.discardCheckpointsAfter(keepSeq);
    // A resolving branch finds its checkpoint through the tag it was
    // handed at dispatch; non-branch squash points can only match the
    // pool's youngest survivor.
    const RenameCheckpoint *ckpt = nullptr;
    if (!tracer) {
        ckpt = replay ? rename.checkpointByTag(replay->ckptTag, keepSeq)
                      : rename.findCheckpoint(keepSeq);
    }

    // ---- branch predictor state repair --------------------------------
    if (replay) {
        // On a checkpoint hit the pooled snapshot is the same fetch-time
        // state the replay instruction carries (wired by checkpoint tag
        // at dispatch); otherwise read it from the instruction's cold
        // side-record.
        bpred.restore(ckpt ? ckpt->bpred : rob.cold(*replay).bpredSnap);
        if (replay->isCondBranch())
            bpred.speculativeUpdate(replay->actualTaken);
        if (replay->isCall())
            bpred.rasPush(replay->pc + 1);
        if (replay->isIndirectCtrl() && replay->si->rs1 == regLink)
            bpred.rasPop();
    } else {
        if (const DynInst *oldest = rob.lowerBound(keepSeq + 1))
            bpred.restore(rob.cold(*oldest).bpredSnap);
        else if (!fetchQueue.empty())
            bpred.restore(fetchColds.front().bpredSnap);
    }

    // ---- IT entries of squashed creators become squash-reusable -------
    rle.onSquash(keepSeq, rename);

    if (ckpt) {
        // The store-set LFST claims of squashed stores must still be
        // released one by one; the squashed stores are exactly the SQ's
        // age-ordered suffix, released youngest-first like the walk.
        const auto &sq = lsu.storeQueue();
        for (std::size_t i = sq.size(); i-- > 0 && sq[i]->seq > keepSeq;)
            storeSets.storeSquashed(sq[i]->pc, sq[i]->seq);
    }

    // ---- pointer-holder prune precedes ROB pops (IQ, LSU queues, and
    //      the rex store buffer all hold ROB slot pointers) -------------
    iq.squashAfter(keepSeq);
    lsu.squashAfter(keepSeq);
    rex.squashAfter(keepSeq);

    if (ckpt) {
        // ---- checkpoint recovery: map snapshot + journal replay -------
        // Hygiene markers in the journal suffix re-run the walk's
        // squashed-speculative-load check (see below) at the exact
        // replay position the walk would, so IT state and free-list
        // order come out bit-identical. No-op closure on non-RLE cores
        // (no markers are journaled).
        rename.restoreCheckpoint(*ckpt, [this](InstSeqNum seq) {
            DynInst *t = rob.findBySeq(seq);
            if (t && t->issued && !t->eliminated &&
                (t->specExecuted || t->forwarded)) {
                rle.onSquashedSpeculativeLoad(*t, rename);
            }
        });
        rob.squashTail(keepSeq);
        ++hot.ckptRestores;
    } else {
        // ---- fallback: youngest-first walk ----------------------------
        ++hot.ckptWalks;
        while (!rob.empty() && rob.tail().seq > keepSeq) {
            DynInst &t = rob.tail();
            if (tracer)
                tracer->event(now, TraceEvent::Squash, t);
            // Squash-reuse hygiene: a load that executed speculatively or
            // forwarded from an in-flight (now squashed) store holds a
            // value the correct path may never see; kill its IT entry
            // rather than offering it for reuse. This is exactly the
            // "forwarding store exists on the squashed path but not the
            // correct path" corner case of section 4.3.
            if (t.isLoad() && t.issued && !t.eliminated &&
                (t.specExecuted || t.forwarded)) {
                rle.onSquashedSpeculativeLoad(t, rename);
            }
            if (t.writesReg())
                rename.undoLastDef();
            if (t.isStore())
                storeSets.storeSquashed(t.pc, t.seq);
            rob.popTail();
        }
    }

    // ---- SSN allocation rollback ----------------------------------------
    SSN lastSsn = svw.ssn().retired();
    if (const DynInst *st = lsu.youngestStore())
        lastSsn = st->ssn;
    svw.ssn().rollbackTo(lastSsn);

    // ---- front end redirect ----------------------------------------------
    fetchQueue.clear();
    fetchColds.clear();
    fetchPc = newFetchPc;
    fetchStopped = newFetchPc >= prog.textSize();
    fetchResumeCycle = now + prm.mispredictRedirect;
    lastFetchLine = ~Addr(0);
    drainPending = false;
}

// --------------------------------------------------------------------
// External (other-agent) store: the NLQ-SM stimulus.
// --------------------------------------------------------------------

void
Core::externalStore(Addr addr, unsigned size, std::uint64_t value)
{
    ++hot.invalidationsSeen;
    committedMem.write(addr, size, value);
    const unsigned lineBytes = mem.lineBytes();
    const Addr firstLine = alignDownAddr(addr, lineBytes);
    const Addr lastLine = alignDownAddr(addr + size - 1, lineBytes);
    for (Addr line = firstLine; line <= lastLine; line += lineBytes) {
        mem.invalidateLine(line);
        svw.invalidation(line, lineBytes);
    }
    if (prm.nlqsm) {
        // NLQ-SM: every load in the window at invalidation time must
        // re-execute (identified in hardware by remembering the LQ tail).
        for (DynInst &inst : rob) {
            if (inst.isLoad() && !inst.rexSvwStageDone)
                inst.rexReasons |= RexNlqSm;
        }
    }
}

} // namespace svw
