#include "cpu/tracer.hh"

#include <iomanip>
#include <sstream>

#include "cpu/dyninst.hh"
#include "isa/disasm.hh"

namespace svw {

const char *
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Fetch: return "F";
      case TraceEvent::Dispatch: return "D";
      case TraceEvent::Issue: return "I";
      case TraceEvent::Complete: return "C";
      case TraceEvent::RexPass: return "Rp";
      case TraceEvent::RexFail: return "Rx";
      case TraceEvent::Commit: return "R";
      case TraceEvent::Squash: return "S";
    }
    return "?";
}

void
Tracer::event(Cycle cycle, TraceEvent ev, const DynInst &inst)
{
    std::ostringstream os;
    os << std::setw(8) << cycle << " " << std::setw(2)
       << traceEventName(ev) << " seq=" << inst.seq << " pc=" << inst.pc
       << " " << disassemble(*inst.si);
    if (inst.si->isMem() && inst.addrResolved) {
        os << " addr=0x" << std::hex << inst.addr << std::dec;
    }
    if (inst.isLoad() && inst.marked()) {
        os << " marked=0x" << std::hex << unsigned(inst.rexReasons)
           << std::dec << " svw=" << inst.svw;
    }
    if (inst.eliminated)
        os << " elim";
    *out << os.str() << "\n";
}

void
Tracer::note(Cycle cycle, const char *what, std::uint64_t arg)
{
    *out << std::setw(8) << cycle << " !! " << what << " " << arg << "\n";
}

void
CountingTracer::event(Cycle, TraceEvent ev, const DynInst &)
{
    ++counts[static_cast<unsigned>(ev)];
}

void
CountingTracer::note(Cycle, const char *, std::uint64_t)
{
    ++notes;
}

std::ostream &
CountingTracer::nullStream()
{
    // thread_local: every CountingTracer on a --threads=N worker writes
    // here; a shared sink would be a (benign-looking but real) data
    // race on the stringstream's buffer.
    thread_local std::ostringstream sink;
    sink.str("");
    return sink;
}

} // namespace svw
