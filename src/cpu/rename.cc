#include "cpu/rename.hh"

#include "base/logging.hh"

namespace svw {

namespace {

std::uint64_t
ringSize(std::uint64_t atLeast)
{
    std::uint64_t n = 1;
    while (n < atLeast)
        n <<= 1;
    return n;
}

} // namespace

PhysRegFile::PhysRegFile(unsigned n)
    : vals(n, 0), ready(n, 0), refs(n, 0), gens(n, 0)
{
}


RenameState::RenameState(unsigned numPhysRegs, unsigned checkpointPool,
                         unsigned journalCapacity)
    : file(numPhysRegs)
{
    svw_assert(numPhysRegs > numArchRegs + 8,
               "too few physical registers: ", numPhysRegs);
    // Registers [0, numArchRegs) start as the architectural state;
    // they carry one reference held by the map table.
    for (RegIndex a = 0; a < numArchRegs; ++a) {
        mapTable[a] = a;
        file.addRef(a);
        file.setReadyAt(a, 0);
    }
    for (unsigned p = numPhysRegs; p-- > numArchRegs;)
        freeList.push_back(static_cast<PhysRegIndex>(p));

    const std::uint64_t jcap =
        journalCapacity ? journalCapacity : numPhysRegs;
    journal.resize(ringSize(jcap));
    journalMask = journal.size() - 1;

    if (checkpointPool > 0) {
        pool.resize(ringSize(checkpointPool));
        poolMask = pool.size() - 1;
        // Tags are slot + 1 in a uint16; a wider pool would silently
        // break tag resolution (takeCheckpoint).
        svw_assert(pool.size() <= 0xffff,
                   "checkpoint pool too large for tags: ", pool.size());
    }
}



void
RenameState::undoLastDef()
{
    for (;;) {
        svw_assert(journalTail > 0, "rename journal underflow");
        const RenameJournalEntry &e =
            journal[(--journalTail) & journalMask];
        if (e.hygiene)
            continue;  // walk hygiene runs off the ROB, not the journal
        mapTable[e.rd] = e.prevPrd;
        deref(e.prd);
        return;
    }
}

std::uint16_t
RenameState::takeCheckpoint(InstSeqNum seq, const BPredCheckpoint &bp)
{
    if (pool.empty())
        return 0;
    if (poolTail - poolHead == pool.size())
        ++poolHead;  // overwrite the oldest
    const std::uint64_t slot = poolTail & poolMask;
    RenameCheckpoint &ck = pool[slot];
    ck.seq = seq;
    ck.journalPos = journalTail;
    ck.bpred = bp;
    ck.map = mapTable;
    ++poolTail;
    return static_cast<std::uint16_t>(slot + 1);
}

void
RenameState::discardCheckpointsAfter(InstSeqNum keepSeq)
{
    while (poolTail > poolHead &&
           pool[(poolTail - 1) & poolMask].seq > keepSeq) {
        --poolTail;
    }
}

const RenameCheckpoint *
RenameState::findCheckpoint(InstSeqNum keepSeq) const
{
    if (poolTail == poolHead)
        return nullptr;
    const RenameCheckpoint &ck = pool[(poolTail - 1) & poolMask];
    return ck.seq == keepSeq ? &ck : nullptr;
}

void
RenameState::restoreCheckpoint(const RenameCheckpoint &ck,
                               const std::function<void(InstSeqNum)> &hygiene)
{
    svw_assert(journalTail >= ck.journalPos,
               "checkpoint journal cursor ahead of the journal");
    // Release squashed definitions youngest-first: identical free-list
    // push order, reference counting, and generation bumps to the walk.
    // Hygiene markers fire in place so IT invalidations interleave with
    // the releases exactly as they do in the walk (an invalidation can
    // drop the last pin on a register and push it to the free list; the
    // order of that push relative to the definition releases matters).
    while (journalTail > ck.journalPos) {
        const RenameJournalEntry &e =
            journal[(--journalTail) & journalMask];
        if (e.hygiene) {
            if (hygiene)
                hygiene(e.seq);
        } else {
            deref(e.prd);
        }
    }
    mapTable = ck.map;
}

} // namespace svw
