#include "cpu/rename.hh"

#include "base/logging.hh"

namespace svw {

PhysRegFile::PhysRegFile(unsigned n)
    : vals(n, 0), ready(n, 0), refs(n, 0), gens(n, 0)
{
}

bool
PhysRegFile::dropRef(PhysRegIndex p)
{
    svw_assert(refs[p] > 0, "dropRef of free register ", p);
    return --refs[p] == 0;
}

RenameState::RenameState(unsigned numPhysRegs)
    : file(numPhysRegs)
{
    svw_assert(numPhysRegs > numArchRegs + 8,
               "too few physical registers: ", numPhysRegs);
    // Registers [0, numArchRegs) start as the architectural state;
    // they carry one reference held by the map table.
    for (RegIndex a = 0; a < numArchRegs; ++a) {
        mapTable[a] = a;
        file.addRef(a);
        file.setReadyAt(a, 0);
    }
    for (unsigned p = numPhysRegs; p-- > numArchRegs;)
        freeList.push_back(static_cast<PhysRegIndex>(p));
}

PhysRegIndex
RenameState::alloc()
{
    svw_assert(!freeList.empty(), "physical register underflow");
    PhysRegIndex p = freeList.back();
    freeList.pop_back();
    file.addRef(p);
    file.setReadyAt(p, notReady);
    return p;
}

void
RenameState::deref(PhysRegIndex p)
{
    if (file.dropRef(p)) {
        file.bumpGeneration(p);
        freeList.push_back(p);
    }
}

} // namespace svw
