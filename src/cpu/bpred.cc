#include "cpu/bpred.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

namespace {

/** Saturating 2-bit counter update. */
void
bump(std::uint8_t &ctr, bool up)
{
    if (up) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace

BPred::BPred(const BPredParams &p, stats::StatRegistry &reg)
    : lookups(reg, "bpred.lookups", "conditional direction lookups"),
      condMispredicts(reg, "bpred.condMispredicts",
                      "conditional branches trained as mispredicted"),
      btbMisses(reg, "bpred.btbMisses", "BTB lookup misses"),
      btbAssoc(p.btbAssoc)
{
    svw_assert(isPowerOf2(p.hybridEntries), "hybrid size");
    tableMask = p.hybridEntries - 1;
    bimodal.assign(p.hybridEntries, 1);
    gshare.assign(p.hybridEntries, 1);
    chooser.assign(p.hybridEntries, 2);

    svw_assert(p.btbEntries % p.btbAssoc == 0, "btb geometry");
    btbSets = p.btbEntries / p.btbAssoc;
    btbShift = exactLog2(btbSets);
    svw_assert(isPowerOf2(btbSets), "btb sets");
    btb.resize(p.btbEntries);

    ras.assign(p.rasEntries, 0);

    lookups.bind(&hot.lookups);
}

bool
BPred::predictDirection(std::uint64_t pc)
{
    ++hot.lookups;
    const unsigned bi = static_cast<unsigned>(pc & tableMask);
    const unsigned gi = static_cast<unsigned>((pc ^ _ghist) & tableMask);
    const bool bPred = bimodal[bi] >= 2;
    const bool gPred = gshare[gi] >= 2;
    const std::uint8_t used = chooser[bi] >= 2 ? gshare[gi] : bimodal[bi];
    lastLowConf = used == 1 || used == 2;
    return chooser[bi] >= 2 ? gPred : bPred;
}

void
BPred::speculativeUpdate(bool taken)
{
    _ghist = (_ghist << 1) | (taken ? 1 : 0);
}

void
BPred::train(std::uint64_t pc, bool taken, std::uint64_t ghistAtPredict)
{
    const unsigned bi = static_cast<unsigned>(pc & tableMask);
    const unsigned gi =
        static_cast<unsigned>((pc ^ ghistAtPredict) & tableMask);
    const bool bWas = bimodal[bi] >= 2;
    const bool gWas = gshare[gi] >= 2;
    if (bWas != gWas)
        bump(chooser[bi], gWas == taken);
    bump(bimodal[bi], taken);
    bump(gshare[gi], taken);
}

std::uint64_t
BPred::btbLookup(std::uint64_t pc) const
{
    const unsigned set = static_cast<unsigned>(pc & (btbSets - 1));
    const std::uint64_t tag = pc >> btbShift;
    for (unsigned w = 0; w < btbAssoc; ++w) {
        const BtbEntry &e = btb[set * btbAssoc + w];
        if (e.valid && e.tag == tag)
            return e.target;
    }
    return 0;
}

void
BPred::btbUpdate(std::uint64_t pc, std::uint64_t target)
{
    const unsigned set = static_cast<unsigned>(pc & (btbSets - 1));
    const std::uint64_t tag = pc >> btbShift;
    // Hit: refresh in place.
    for (unsigned w = 0; w < btbAssoc; ++w) {
        BtbEntry &e = btb[set * btbAssoc + w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lru = ++btbLru;
            return;
        }
    }
    // Miss: fill an invalid way, else the LRU way.
    BtbEntry *victim = &btb[set * btbAssoc];
    for (unsigned w = 0; w < btbAssoc; ++w) {
        BtbEntry &e = btb[set * btbAssoc + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = ++btbLru;
}

void
BPred::rasPush(std::uint64_t returnPc)
{
    rasPtr = (rasPtr + 1) % ras.size();
    ras[rasPtr] = returnPc;
}

std::uint64_t
BPred::rasPop()
{
    const std::uint64_t v = ras[rasPtr];
    rasPtr = (rasPtr + ras.size() - 1) % ras.size();
    return v;
}

void
BPred::restore(std::uint64_t ghist, std::uint32_t rasTop,
               std::uint64_t rasTopVal)
{
    _ghist = ghist;
    rasPtr = rasTop % ras.size();
    ras[rasPtr] = rasTopVal;
}

} // namespace svw
