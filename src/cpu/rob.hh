/**
 * @file
 * Reorder buffer: an age-ordered window of in-flight DynInsts, addressed
 * by sequence number. Also the structure the re-execution engine walks
 * (its rex-head pointer is a sequence number into this window).
 */

#ifndef SVW_CPU_ROB_HH
#define SVW_CPU_ROB_HH

#include <deque>

#include "cpu/dyninst.hh"

namespace svw {

/** Age-ordered instruction window. Entries are sorted by seq. */
class ROB
{
  public:
    explicit ROB(unsigned capacity) : cap(capacity) {}

    bool full() const { return insts.size() >= cap; }
    bool empty() const { return insts.empty(); }
    std::size_t size() const { return insts.size(); }
    unsigned capacity() const { return cap; }

    DynInst &push(DynInst &&inst)
    {
        insts.push_back(std::move(inst));
        return insts.back();
    }

    DynInst &head() { return insts.front(); }
    const DynInst &head() const { return insts.front(); }
    DynInst &tail() { return insts.back(); }

    void popHead() { insts.pop_front(); }
    void popTail() { insts.pop_back(); }

    /** Find by sequence number (binary search). nullptr if absent. */
    DynInst *findBySeq(InstSeqNum seq);

    /** First entry with seq >= @p seq (nullptr if none). */
    DynInst *lowerBound(InstSeqNum seq);

    std::deque<DynInst>::iterator begin() { return insts.begin(); }
    std::deque<DynInst>::iterator end() { return insts.end(); }
    std::deque<DynInst>::const_iterator begin() const { return insts.begin(); }
    std::deque<DynInst>::const_iterator end() const { return insts.end(); }

  private:
    unsigned cap;
    std::deque<DynInst> insts;
};

} // namespace svw

#endif // SVW_CPU_ROB_HH
