/**
 * @file
 * Reorder buffer: an age-ordered window of in-flight DynInsts, addressed
 * by sequence number. Also the structure the re-execution engine walks
 * (its rex-head pointer is a sequence number into this window).
 *
 * Storage is a fixed-capacity power-of-two ring buffer: slot addresses
 * are stable for an entry's whole lifetime (the IQ, LSU queues, and rex
 * store buffer hold raw DynInst pointers into it), pushes and pops are
 * O(1), and iteration is a contiguous cache-friendly walk. Each ring
 * slot has a parallel DynInstCold side-record (cold()) so the walked
 * array carries only the hot two-cache-line records.
 *
 * Lookup by sequence number exploits the seq->slot invariant: entries
 * are strictly increasing in seq, and seqs are dense (+1 per slot)
 * except across squash points, where the fetch counter keeps running
 * while the squashed instructions disappear. The slot guess
 * `head + (seq - headSeq)` is therefore exact in the common dense case
 * (O(1)); a gap only ever moves the target to an *older* slot, so a
 * miss falls back to a binary search of `[head, guess]`.
 */

#ifndef SVW_CPU_ROB_HH
#define SVW_CPU_ROB_HH

#include <cstddef>
#include <type_traits>
#include <vector>

#include "base/logging.hh"
#include "cpu/dyninst.hh"

namespace svw {

/** Age-ordered instruction window. Entries are sorted by seq. */
class ROB
{
  public:
    explicit ROB(unsigned capacity)
        : cap(capacity)
    {
        std::size_t ring = 1;
        while (ring < cap)
            ring <<= 1;
        mask = ring - 1;
        slots.resize(ring);
        colds.resize(ring);
    }

    bool full() const { return count >= cap; }
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    unsigned capacity() const { return cap; }

    DynInst &push(DynInst &&inst, const DynInstCold &cold)
    {
        svw_assert(count < cap, "ROB overflow");
        DynInst &slot = at(count);
        slot = std::move(inst);
        colds[(headPos + count) & mask] = cold;
        ++count;
        return slot;
    }

    DynInst &push(DynInst &&inst)
    {
        return push(std::move(inst), DynInstCold{});
    }

    /** Cold side-record of a live ROB entry (parallel arena, same ring
     * slot). @p inst must be a reference into this ROB's storage. */
    DynInstCold &cold(const DynInst &inst)
    {
        return colds[static_cast<std::size_t>(&inst - slots.data())];
    }
    const DynInstCold &cold(const DynInst &inst) const
    {
        return colds[static_cast<std::size_t>(&inst - slots.data())];
    }

    DynInst &head() { return at(0); }
    const DynInst &head() const { return at(0); }
    DynInst &tail() { return at(count - 1); }
    const DynInst &tail() const { return at(count - 1); }

    void popHead()
    {
        ++headPos;
        --count;
    }

    void popTail() { --count; }

    /**
     * Drop every entry younger than @p keepSeq without touching the
     * entries themselves (checkpoint recovery's bulk pop; the walk
     * fallback pops per entry). O(log n) binary search on seq.
     */
    void squashTail(InstSeqNum keepSeq)
    {
        std::size_t lo = 0, hi = count;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (at(mid).seq <= keepSeq)
                lo = mid + 1;
            else
                hi = mid;
        }
        count = lo;
    }

    /** Find by sequence number; O(1) when seqs are dense from the head.
     * nullptr if absent (younger, older, or squashed out). */
    DynInst *findBySeq(InstSeqNum seq)
    {
        DynInst *inst = lowerBound(seq);
        return inst && inst->seq == seq ? inst : nullptr;
    }

    /** First entry with seq >= @p seq (nullptr if none). */
    DynInst *lowerBound(InstSeqNum seq)
    {
        if (count == 0)
            return nullptr;
        const InstSeqNum headSeq = at(0).seq;
        if (seq <= headSeq)
            return &at(0);
        const std::uint64_t offset = seq - headSeq;
        // Entry k has seq >= headSeq + k, so the answer (if any) lies at
        // an index <= offset. Dense fast path: the guess slot hits.
        std::size_t hi = count - 1;
        if (offset <= hi) {
            DynInst &guess = at(offset);
            if (guess.seq == seq)
                return &guess;
            hi = offset;
        } else if (at(hi).seq < seq) {
            return nullptr;
        }
        // Gap from a squash: binary search [lo, hi] for the first entry
        // with seq' >= seq (at(hi).seq >= seq holds here).
        std::size_t lo = 0;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (at(mid).seq < seq)
                lo = mid + 1;
            else
                hi = mid;
        }
        return &at(lo);
    }

    /** Forward iterator over [head, tail] in age order. */
    template <bool IsConst>
    class Iter
    {
        using RobT = std::conditional_t<IsConst, const ROB, ROB>;
        using ValueT = std::conditional_t<IsConst, const DynInst, DynInst>;

      public:
        Iter(RobT *r, std::size_t i) : rob(r), idx(i) {}
        ValueT &operator*() const { return rob->at(idx); }
        ValueT *operator->() const { return &rob->at(idx); }
        Iter &operator++() { ++idx; return *this; }
        bool operator==(const Iter &o) const { return idx == o.idx; }
        bool operator!=(const Iter &o) const { return idx != o.idx; }

      private:
        RobT *rob;
        std::size_t idx;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, count); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count); }

  private:
    DynInst &at(std::size_t idx)
    {
        return slots[(headPos + idx) & mask];
    }
    const DynInst &at(std::size_t idx) const
    {
        return slots[(headPos + idx) & mask];
    }

    unsigned cap;
    std::size_t mask = 0;
    std::uint64_t headPos = 0;  ///< monotonic; slot = pos & mask
    std::size_t count = 0;
    std::vector<DynInst> slots;
    std::vector<DynInstCold> colds;  ///< parallel cold arena (by slot)
};

} // namespace svw

#endif // SVW_CPU_ROB_HH
