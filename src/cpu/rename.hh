/**
 * @file
 * MIPS R10000-style register renaming: map table, free list, and a
 * physical register file that carries values, readiness, reference
 * counts (register integration shares registers), and generation
 * numbers (for O(1) integration-table invalidation).
 */

#ifndef SVW_CPU_RENAME_HH
#define SVW_CPU_RENAME_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"

namespace svw {

/** Sentinel ready-cycle meaning "value not yet scheduled". */
constexpr Cycle notReady = ~Cycle(0);

/**
 * Physical register file with values and scheduling metadata. Register 0
 * is permanently mapped to architectural r0 and always reads zero.
 */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned numRegs);

    std::uint64_t value(PhysRegIndex p) const { return vals[p]; }
    void setValue(PhysRegIndex p, std::uint64_t v) { vals[p] = v; }

    Cycle readyAt(PhysRegIndex p) const { return ready[p]; }
    void setReadyAt(PhysRegIndex p, Cycle c) { ready[p] = c; }
    bool isReady(PhysRegIndex p, Cycle now) const { return ready[p] <= now; }

    unsigned refCount(PhysRegIndex p) const { return refs[p]; }
    void addRef(PhysRegIndex p) { ++refs[p]; }
    /** @return true if the count dropped to zero (register is dead). */
    bool dropRef(PhysRegIndex p);

    /** Generation bumps on every free; stale consumers can detect reuse. */
    std::uint64_t generation(PhysRegIndex p) const { return gens[p]; }
    void bumpGeneration(PhysRegIndex p) { ++gens[p]; }

    unsigned size() const { return static_cast<unsigned>(vals.size()); }

  private:
    std::vector<std::uint64_t> vals;
    std::vector<Cycle> ready;
    std::vector<unsigned> refs;
    std::vector<std::uint64_t> gens;
};

/**
 * Rename state: speculative map table plus free list. Recovery is done
 * by the core walking squashed instructions youngest-first and undoing
 * their mappings (each DynInst records prevPrd).
 */
class RenameState
{
  public:
    /**
     * @param numPhysRegs total physical registers (paper: 448 / 160)
     */
    explicit RenameState(unsigned numPhysRegs);

    PhysRegFile &regs() { return file; }
    const PhysRegFile &regs() const { return file; }

    PhysRegIndex map(RegIndex arch) const { return mapTable[arch]; }
    void setMap(RegIndex arch, PhysRegIndex p) { mapTable[arch] = p; }

    bool hasFreeReg() const { return !freeList.empty(); }
    std::size_t freeRegs() const { return freeList.size(); }

    /** Allocate a register (ref count 1, not ready). */
    PhysRegIndex alloc();

    /** Release one reference; frees (and bumps generation) at zero. */
    void deref(PhysRegIndex p);

    /** Extra reference for sharing (register integration). */
    void addRef(PhysRegIndex p) { file.addRef(p); }

  private:
    PhysRegFile file;
    std::array<PhysRegIndex, numArchRegs> mapTable;
    std::vector<PhysRegIndex> freeList;
};

} // namespace svw

#endif // SVW_CPU_RENAME_HH
