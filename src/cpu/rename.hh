/**
 * @file
 * MIPS R10000-style register renaming: map table, free list, and a
 * physical register file that carries values, readiness, reference
 * counts (register integration shares registers), and generation
 * numbers (for O(1) integration-table invalidation).
 *
 * Squash recovery is checkpoint-based with a walk fallback. Every
 * speculative map update is journaled ({rd, new, old} records in a
 * ring); a bounded pool of full map-table snapshots is taken at
 * low-confidence branches. Recovering at a checkpointed branch restores
 * the map by copy and releases the squashed definitions by replaying
 * the journal suffix youngest-first — producing bit-identical free-list
 * order, reference counts, and generations to the per-instruction
 * youngest-first walk it replaces.
 */

#ifndef SVW_CPU_RENAME_HH
#define SVW_CPU_RENAME_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hh"
#include "cpu/bpred.hh"
#include "isa/inst.hh"

namespace svw {

/** Sentinel ready-cycle meaning "value not yet scheduled". */
constexpr Cycle notReady = ~Cycle(0);

/**
 * Physical register file with values and scheduling metadata. Register 0
 * is permanently mapped to architectural r0 and always reads zero.
 */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned numRegs);

    std::uint64_t value(PhysRegIndex p) const { return vals[p]; }
    void setValue(PhysRegIndex p, std::uint64_t v) { vals[p] = v; }

    Cycle readyAt(PhysRegIndex p) const { return ready[p]; }
    void setReadyAt(PhysRegIndex p, Cycle c) { ready[p] = c; }
    bool isReady(PhysRegIndex p, Cycle now) const { return ready[p] <= now; }

    unsigned refCount(PhysRegIndex p) const { return refs[p]; }
    void addRef(PhysRegIndex p) { ++refs[p]; }
    /** @return true if the count dropped to zero (register is dead). */
    bool dropRef(PhysRegIndex p)
    {
        svw_assert(refs[p] > 0, "dropRef of free register ", p);
        return --refs[p] == 0;
    }

    /** Generation bumps on every free; stale consumers can detect reuse. */
    std::uint64_t generation(PhysRegIndex p) const { return gens[p]; }
    void bumpGeneration(PhysRegIndex p) { ++gens[p]; }

    unsigned size() const { return static_cast<unsigned>(vals.size()); }

  private:
    std::vector<std::uint64_t> vals;
    std::vector<Cycle> ready;
    std::vector<unsigned> refs;
    std::vector<std::uint64_t> gens;
};

/**
 * One journaled rename-time event. Two kinds share the ring so their
 * relative order — which squash recovery must replay exactly — is the
 * order they happened in:
 *
 *  - A speculative definition: arch register @c rd was pointed at
 *    @c prd, displacing @c prevPrd. Undoing it (walk) restores the map
 *    entry and releases @c prd; releasing it (checkpoint replay) only
 *    drops the @c prd reference, because the map is restored wholesale
 *    from the snapshot.
 *  - A squash-hygiene marker (@c hygiene set): load @c seq dispatched
 *    on an RLE core. The youngest-first walk inspects each squashed
 *    load directly (Core's loop) to decide whether its IntegrationTable
 *    entry must die (speculative/forwarded value, section 4.3); a
 *    checkpoint replay has no per-instruction loop, so it replays these
 *    markers instead, invoking the same check at the exact point the
 *    walk would — just before the load's own definition is released.
 */
struct RenameJournalEntry
{
    InstSeqNum seq;        ///< hygiene marker: the load's seq
    RegIndex rd;
    PhysRegIndex prd;
    PhysRegIndex prevPrd;
    bool hygiene;
};

/**
 * A recovery checkpoint: the complete speculative map table as of the
 * dispatch of instruction @c seq (inclusive of its own definition),
 * the journal cursor at that moment, and the branch's fetch-time
 * predictor snapshot. Restoring it recreates the exact rename state a
 * squash keeping @c seq would reach by walking.
 *
 * Snapshots stay valid across commits: retirement never modifies the
 * speculative map table, and every journal entry younger than a
 * *reachable* squash point necessarily belongs to an instruction still
 * in the window, so the journal suffix cannot have been overwritten.
 */
struct RenameCheckpoint
{
    InstSeqNum seq = 0;
    std::uint64_t journalPos = 0;
    BPredCheckpoint bpred{};
    std::array<PhysRegIndex, numArchRegs> map{};
};

/**
 * Rename state: speculative map table, free list, definition journal,
 * and the checkpoint pool. The core recovers from a squash either by
 * restoring a checkpoint taken at the squash point or by walking the
 * squashed instructions youngest-first and undoing each definition
 * (undoLastDef); both leave identical state.
 */
class RenameState
{
  public:
    /**
     * @param numPhysRegs total physical registers (paper: 448 / 160)
     * @param checkpointPool max pooled map snapshots (0 = no checkpoints)
     * @param journalCapacity max simultaneously squashable definitions;
     *        0 sizes it from numPhysRegs (every non-shared in-flight
     *        definition holds a distinct physical register). Pass the
     *        ROB capacity when register sharing (RLE) is possible.
     */
    explicit RenameState(unsigned numPhysRegs, unsigned checkpointPool = 0,
                         unsigned journalCapacity = 0);

    PhysRegFile &regs() { return file; }
    const PhysRegFile &regs() const { return file; }

    PhysRegIndex map(RegIndex arch) const { return mapTable[arch]; }

    bool hasFreeReg() const { return !freeList.empty(); }
    std::size_t freeRegs() const { return freeList.size(); }

    /** Allocate a register (ref count 1, not ready). */
    PhysRegIndex alloc()
    {
        svw_assert(!freeList.empty(), "physical register underflow");
        PhysRegIndex p = freeList.back();
        freeList.pop_back();
        file.addRef(p);
        file.setReadyAt(p, notReady);
        return p;
    }

    /** Release one reference; frees (and bumps generation) at zero.
     * Header-inlined with dropRef: commit releases a displaced mapping
     * per retired writer, so this pair is a per-instruction cost. */
    void deref(PhysRegIndex p)
    {
        if (file.dropRef(p)) {
            file.bumpGeneration(p);
            freeList.push_back(p);
        }
    }

    /** Extra reference for sharing (register integration). */
    void addRef(PhysRegIndex p) { file.addRef(p); }

    // --- speculative definitions (journaled) --------------------------

    /** Point arch reg @p rd at @p p, journaling the displaced mapping. */
    void speculativeDef(RegIndex rd, PhysRegIndex p)
    {
        journal[journalTail & journalMask] =
            RenameJournalEntry{0, rd, p, mapTable[rd], false};
        ++journalTail;
        mapTable[rd] = p;
    }

    /**
     * Journal a squash-hygiene marker for load @p seq (RLE cores; see
     * RenameJournalEntry). Dispatch appends it right after the load's
     * own definition so a checkpoint replay visits it youngest-first in
     * exactly the walk's position: hygiene check, then the release of
     * the load's definition.
     */
    void journalSquashHygiene(InstSeqNum seq)
    {
        journal[journalTail & journalMask] =
            RenameJournalEntry{seq, 0, invalidPhysReg, invalidPhysReg,
                               true};
        ++journalTail;
    }

    /** Journal cursor (monotonic; one unit per speculativeDef). */
    std::uint64_t journalPos() const { return journalTail; }

    /**
     * Walk-recovery step: undo the youngest journaled definition
     * (restore the displaced mapping, release the defined register).
     * The caller walks squashed instructions youngest-first and invokes
     * this once per register-writing instruction. Hygiene markers above
     * the definition are discarded — the walk performs its hygiene
     * directly from the ROB entries it visits.
     */
    void undoLastDef();

    // --- checkpoints ---------------------------------------------------

    /**
     * Pool a checkpoint covering a future squash that keeps @p seq.
     * Call directly after @p seq's own definition (if any). Evicts the
     * oldest pooled checkpoint when full; no-op when the pool size is 0.
     * @return slot tag (slot index + 1), 0 if not pooled.
     */
    std::uint16_t takeCheckpoint(InstSeqNum seq, const BPredCheckpoint &bp);

    /** Drop checkpoints younger than @p keepSeq (their snapshots
     * describe squashed state). Call at every squash, before lookup. */
    void discardCheckpointsAfter(InstSeqNum keepSeq);

    /**
     * The checkpoint covering exactly @p keepSeq, if pooled (nullptr
     * otherwise). Only the youngest surviving entry can match — call
     * after discardCheckpointsAfter.
     */
    const RenameCheckpoint *findCheckpoint(InstSeqNum keepSeq) const;

    /**
     * Resolve a branch's dispatch-time checkpoint tag: the named pool
     * slot, if it still holds that branch's checkpoint. Pool slots
     * never move, so a live branch's checkpoint is wherever its tag
     * says — unless the slot was evicted and rewritten for a younger
     * branch, which the seq compare rejects (a tail-discarded
     * checkpoint implies the branch itself was squashed, so a live
     * @p keepSeq can never name one).
     */
    const RenameCheckpoint *checkpointByTag(std::uint16_t tag,
                                            InstSeqNum keepSeq) const
    {
        if (tag == 0)
            return nullptr;
        const RenameCheckpoint &ck = pool[tag - 1u];
        return ck.seq == keepSeq ? &ck : nullptr;
    }

    /**
     * Checkpoint recovery: release every journaled definition younger
     * than the checkpoint (youngest-first, preserving free-list order),
     * then restore the map table from the snapshot. Hygiene markers in
     * the replayed suffix invoke @p hygiene (may be null) with the
     * journaled load seq, interleaved exactly where the walk would have
     * performed the check — the callback may release IT register pins
     * (deref) but must not touch the journal.
     */
    void restoreCheckpoint(const RenameCheckpoint &ck,
                           const std::function<void(InstSeqNum)> &hygiene =
                               nullptr);

    /** Pooled checkpoints (diagnostics / tests). */
    unsigned checkpointsPooled() const
    {
        return static_cast<unsigned>(poolTail - poolHead);
    }

  private:
    PhysRegFile file;
    std::array<PhysRegIndex, numArchRegs> mapTable;
    std::vector<PhysRegIndex> freeList;

    // Definition journal: ring addressed by monotonic cursor.
    std::vector<RenameJournalEntry> journal;
    std::uint64_t journalMask = 0;
    std::uint64_t journalTail = 0;

    // Checkpoint pool: ring deque ordered by seq (allocation order).
    // Head-drops on overflow, tail-drops on squash keep it sorted.
    std::vector<RenameCheckpoint> pool;
    std::uint64_t poolMask = 0;
    std::uint64_t poolHead = 0;
    std::uint64_t poolTail = 0;
};

} // namespace svw

#endif // SVW_CPU_RENAME_HH
