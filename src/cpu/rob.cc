#include "cpu/rob.hh"

#include <algorithm>

namespace svw {

DynInst *
ROB::findBySeq(InstSeqNum seq)
{
    DynInst *inst = lowerBound(seq);
    return inst && inst->seq == seq ? inst : nullptr;
}

DynInst *
ROB::lowerBound(InstSeqNum seq)
{
    auto it = std::lower_bound(
        insts.begin(), insts.end(), seq,
        [](const DynInst &d, InstSeqNum s) { return d.seq < s; });
    return it == insts.end() ? nullptr : &*it;
}

} // namespace svw
