/**
 * @file
 * Completion event wheel: the core's "result arrives at cycle C" queue.
 *
 * A bucketed timing wheel replaces the old std::multimap<Cycle, seq>:
 * scheduling and per-cycle drain are O(1) plus the events themselves,
 * with no node allocation on the hot path. The wheel is sized past the
 * worst common completion latency (memory access + buses + extra load
 * latency); the rare event beyond the horizon goes to a sorted overflow
 * map.
 *
 * Ordering matches the multimap exactly. Events for the same cycle fire
 * in insertion order: an overflow event due at cycle C was necessarily
 * inserted before any in-wheel event due at C (its insertion cycle
 * precedes C - horizon), so draining overflow first preserves global
 * insertion order; std::multimap keeps equal keys in insertion order.
 *
 * The drain contract assumes the owner calls drain(now) every cycle with
 * `now` advancing by one — exactly what Core::tick does. Events
 * scheduled for the current or a past cycle fire on the next drain (the
 * multimap behaved the same way: completeStage had already run by the
 * time issue inserted them).
 */

#ifndef SVW_CPU_COMPLETION_WHEEL_HH
#define SVW_CPU_COMPLETION_WHEEL_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "base/hostopt.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace svw {

/** Bucketed event wheel keyed by completion cycle. */
class CompletionWheel
{
  public:
    /** @p horizon must be a power of two and exceed the largest common
     * scheduling delta (larger deltas still work via overflow). */
    explicit CompletionWheel(std::size_t horizon = 1024)
        : mask(horizon - 1), buckets(horizon), busy((horizon + 63) / 64, 0)
    {
        svw_assert(horizon > 1 && (horizon & (horizon - 1)) == 0,
                   "wheel horizon must be a power of two");
    }

    /** Schedule @p seq to fire at cycle @p due (clamped to now + 1: an
     * already-due event fires on the next drain, like the multimap). */
    void schedule(Cycle now, Cycle due, InstSeqNum seq)
    {
        if (due <= now)
            due = now + 1;
        if (due - now <= mask) {
            const std::size_t b = due & mask;
            buckets[b].push_back(seq);
            busy[b >> 6] |= std::uint64_t(1) << (b & 63);
        } else {
            overflow.emplace(due, seq);
        }
        ++pending;
    }

    bool empty() const { return pending == 0; }
    std::size_t size() const { return pending; }

    /**
     * Fire every event due at (or before) @p now, in insertion order,
     * invoking @p fn(seq). @p fn may schedule new events (they are due
     * strictly after @p now) but must not call drain reentrantly.
     */
    template <typename F>
    void drain(Cycle now, F &&fn)
    {
        while (!overflow.empty() && overflow.begin()->first <= now) {
            const InstSeqNum seq = overflow.begin()->second;
            overflow.erase(overflow.begin());
            --pending;
            fn(seq);
        }
        const std::size_t b = now & mask;
        if (!hostopt::legacy(hostopt::LegacyWheelDrain)) {
            // Occupancy bitmap: 16 hot words cover the 1024 buckets, so
            // the common no-event tick skips the scattered load of this
            // slot's vector header (profiling put the per-tick wheel
            // advance at ~10% of host time; most ticks drain nothing).
            // A set bit over an empty bucket (left by a legacy-mode
            // drain in A/B runs) just falls through to the empty check.
            const std::uint64_t bit = std::uint64_t(1) << (b & 63);
            if (!(busy[b >> 6] & bit))
                return;
            busy[b >> 6] &= ~bit;
        }
        auto &bucket = buckets[b];
        if (bucket.empty())
            return;
        // Swap out the bucket: fn may schedule, but never for this slot
        // (deltas are clamped to [1, mask]), so scratch sees it all.
        scratch.clear();
        scratch.swap(bucket);
        pending -= scratch.size();
        for (const InstSeqNum seq : scratch)
            fn(seq);
    }

  private:
    std::size_t mask;
    std::vector<std::vector<InstSeqNum>> buckets;
    std::vector<std::uint64_t> busy;  ///< one bit per bucket: non-empty
    std::multimap<Cycle, InstSeqNum> overflow;
    std::vector<InstSeqNum> scratch;  ///< reused drain buffer
    std::size_t pending = 0;
};

} // namespace svw

#endif // SVW_CPU_COMPLETION_WHEEL_HH
