/**
 * @file
 * Branch prediction: 8K-entry hybrid (bimodal + gshare + chooser),
 * 2K-entry 2-way BTB, and a return address stack — the paper's front end.
 */

#ifndef SVW_CPU_BPRED_HH
#define SVW_CPU_BPRED_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "stats/stats.hh"

namespace svw {

/** Parameters for the branch prediction unit. */
struct BPredParams
{
    unsigned hybridEntries = 8192;
    unsigned btbEntries = 2048;
    unsigned btbAssoc = 2;
    unsigned rasEntries = 32;
};

/**
 * Speculative front-end predictor state at one point in the instruction
 * stream: the global history register and the RAS top. Taken per branch
 * at fetch; squash recovery restores from it (directly for the walk
 * path, or via the rename checkpoint that embeds it).
 *
 * Restoring only the RAS *top* (not the whole stack) is the paper-era
 * approximation: a wrong-path call/return imbalance deeper than one
 * entry can still corrupt lower stack slots, which real RAS repair
 * schemes accept too.
 */
struct BPredCheckpoint
{
    std::uint64_t ghist = 0;
    std::uint32_t rasTop = 0;
    std::uint64_t rasTopVal = 0;
};

/**
 * Direction + target prediction with checkpoint/restore of speculative
 * history state (global history register and RAS top).
 */
class BPred
{
  public:
    BPred(const BPredParams &params, stats::StatRegistry &reg);

    /** Predict a conditional branch's direction at @p pc. */
    bool predictDirection(std::uint64_t pc);

    /**
     * Confidence of the most recent predictDirection: true when the
     * selected counter was weak (1 or 2 of the 2-bit range). Weak
     * counters supply the bulk of mispredictions, so low-confidence
     * branches are where rename checkpoints pay off. Host-side heuristic
     * only — never feeds back into timing.
     */
    bool lowConfidence() const { return lastLowConf; }

    /** Speculatively update global history with outcome @p taken. */
    void speculativeUpdate(bool taken);

    /** Commit-time training of the direction tables. */
    void train(std::uint64_t pc, bool taken, std::uint64_t ghistAtPredict);

    /** BTB lookup; @return target or 0 if missing. */
    std::uint64_t btbLookup(std::uint64_t pc) const;
    void btbUpdate(std::uint64_t pc, std::uint64_t target);

    /** RAS push (call) / pop (return). Pop of empty stack returns 0. */
    void rasPush(std::uint64_t returnPc);
    std::uint64_t rasPop();

    // --- checkpoint/restore for squash recovery -----------------------
    std::uint64_t ghist() const { return _ghist; }
    std::uint32_t rasTop() const { return rasPtr; }
    std::uint64_t rasTopValue() const
    {
        // rasPtr is kept in [0, size) by push/pop/restore; no modulo on
        // this per-fetch path.
        return ras.empty() ? 0 : ras[rasPtr];
    }

    /** Snapshot the speculative state (fetch takes one per branch). */
    BPredCheckpoint save() const
    {
        return BPredCheckpoint{_ghist, rasPtr, rasTopValue()};
    }

    void restore(const BPredCheckpoint &ck)
    {
        restore(ck.ghist, ck.rasTop, ck.rasTopVal);
    }

    void restore(std::uint64_t ghist, std::uint32_t rasTop,
                 std::uint64_t rasTopVal);

  public:
    stats::Scalar lookups;
    stats::Scalar condMispredicts;
    stats::Scalar btbMisses;

  private:
    /** Dense hot-loop accumulator for the per-fetch lookup counter,
     * bound to the Scalar above (stats::Scalar::bind). */
    struct HotCounters
    {
        std::uint64_t lookups = 0;
    };
    HotCounters hot;

    struct BtbEntry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        std::uint64_t lru = 0;
    };

    unsigned tableMask;
    bool lastLowConf = false;
    std::vector<std::uint8_t> bimodal;  ///< 2-bit counters
    std::vector<std::uint8_t> gshare;
    std::vector<std::uint8_t> chooser;  ///< 0..3, >=2 favours gshare
    std::uint64_t _ghist = 0;

    unsigned btbSets;
    unsigned btbShift;  ///< exactLog2(btbSets), cached (tag extraction)
    unsigned btbAssoc;
    std::vector<BtbEntry> btb;
    std::uint64_t btbLru = 0;

    std::vector<std::uint64_t> ras;
    std::uint32_t rasPtr = 0;
};

} // namespace svw

#endif // SVW_CPU_BPRED_HH
