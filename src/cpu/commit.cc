/**
 * @file
 * Commit stage: in-order retirement, the store-commit cache-port claim
 * (shared with re-execution; commit has priority by running first each
 * cycle), the "no store commits before all older loads re-executed"
 * serialization, and re-execution failure flushes.
 */

#include "base/logging.hh"
#include "cpu/core.hh"

namespace svw {

void
Core::commitStage()
{
    const bool rexOn = prm.rex.enabled;

    for (unsigned n = 0; n < prm.commitWidth && !rob.empty(); ++n) {
        DynInst &d = rob.head();

        if (!d.completed)
            return;
        // Model the elongated pre-commit pipe (rex + SVW stages).
        if (now < d.completeCycle + prm.rexTransit)
            return;
        if (rexOn && !d.rexProcessed)
            return;

        if (d.isLoad() && d.marked() && rexOn) {
            if (!d.rexDone || now < d.rexDoneCycle)
                return;
            if (!d.rexPassed) {
                handleRexFailure(d);
                return;
            }
            if (tracer)
                tracer->event(now, TraceEvent::RexPass, d);
            // Replacement-mode livelock guard: a clean commit ends the
            // flush streak for this PC.
            if (prm.rex.svwReplacesReExecution)
                replaceFlushStreak.erase(d.pc);
        }

        if (d.isStore()) {
            if (rexOn && now < rex.storeCommitReadyCycle(d))
                return;
            if (!dcachePort.tryClaim(now))
                return;  // one cache write per port per cycle
            committedMem.write(d.addr, d.size, d.storeData);
            mem.accessData(d.addr, true, now);
            spct.update(d.addr, d.size, d.pc);
            svw.ssn().onRetire(d.ssn);
            rex.storeCommitted(d);
            lsu.commitStore(d);
            ++hot.retiredStores;
        }

        if (d.isLoad()) {
            lsu.commitLoad(d);
            ++hot.retiredLoads;
            if (d.eliminated) {
                // The elimination was verified (or SVW proved it safe):
                // restart the feeding entry's vulnerability window here.
                rle.onVerifiedElimination(d, rename, svw.ssn().retired());
                ++hot.loadsEliminatedRetired;
                if (d.elimFromBypass)
                    ++hot.elimBypassRetired;
                else if (!d.elimFromSquash)
                    ++hot.elimReuseRetired;
            }
            if (d.fsqLoad)
                ++hot.fsqLoadsRetired;
        }

        if (d.isCondBranch()) {
            bpred.train(d.pc, d.actualTaken, rob.cold(d).bpredSnap.ghist);
            ++hot.retiredBranches;
        }

        if (d.writesReg()) {
            archMap[d.archRd] = d.prd;
            rename.deref(d.prevPrd);
        }

        if (tracer)
            tracer->event(now, TraceEvent::Commit, d);

        const bool halt = d.isHalt();
        ++hot.retired;
        rob.popHead();
        if (halt) {
            haltCommitted = true;
            return;
        }
    }
}

void
Core::handleRexFailure(DynInst &load)
{
    ++hot.rexFlushes;
    if (tracer)
        tracer->event(now, TraceEvent::RexFail, load);
    if (prm.rex.svwReplacesReExecution && !load.forceRealRex)
        ++replaceFlushStreak[load.pc];

    // Identify the colliding store through the SPCT (section 2.2) and
    // train the store-set (and, under SSQ, the steering) predictors.
    const std::uint64_t storePc = spct.lookup(load.addr);
    if (storePc != ~std::uint64_t(0) && !load.eliminated)
        storeSets.train(storePc, load.pc);
    if (prm.lsu.ssq && !load.eliminated)
        lsu.trainSteering(load.pc, storePc);
    // A false elimination: the IT entry that fed this load is stale.
    if (load.eliminated)
        rle.onFalseElimination(load, rename);

    // Flush the load and everything younger; refetch from the load.
    const std::uint64_t loadPc = load.pc;
    squashAfter(load.seq - 1, loadPc, nullptr);
}

} // namespace svw
