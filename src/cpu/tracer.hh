/**
 * @file
 * Pipeline event tracer: an optional, gem5-`--debug`-style textual log
 * of per-instruction pipeline events (fetch, dispatch, issue, complete,
 * rex, commit, squash), for debugging workloads and machine
 * configurations.
 *
 * The tracer is attached to a Core via Core::setTracer and costs nothing
 * when absent. Events are a stable, parseable one-line format:
 *
 *   <cycle> <event> seq=<n> pc=<n> <disasm> [key=value ...]
 */

#ifndef SVW_CPU_TRACER_HH
#define SVW_CPU_TRACER_HH

#include <cstdint>
#include <ostream>

#include "base/types.hh"

namespace svw {

struct DynInst;

/** Event kinds the core reports. */
enum class TraceEvent : std::uint8_t
{
    Fetch,
    Dispatch,
    Issue,
    Complete,
    RexPass,      ///< passed the rex SVW stage (filtered or verified)
    RexFail,      ///< re-execution value mismatch
    Commit,
    Squash,       ///< instruction discarded
};

/** Name of a trace event. */
const char *traceEventName(TraceEvent ev);

/**
 * Sink for pipeline events. The default implementation formats to an
 * ostream; tests subclass it to capture events programmatically.
 */
class Tracer
{
  public:
    explicit Tracer(std::ostream &os) : out(&os) {}
    virtual ~Tracer() = default;

    /** Report one event for one instruction at @p cycle. */
    virtual void event(Cycle cycle, TraceEvent ev, const DynInst &inst);

    /** Report a free-form core-level note (squash causes, drains). */
    virtual void note(Cycle cycle, const char *what, std::uint64_t arg);

  protected:
    std::ostream *out;
};

/** Tracer that counts events per kind (used by tests). */
class CountingTracer : public Tracer
{
  public:
    CountingTracer() : Tracer(nullStream()) {}

    void event(Cycle cycle, TraceEvent ev, const DynInst &inst) override;
    void note(Cycle cycle, const char *what, std::uint64_t arg) override;

    std::uint64_t count(TraceEvent ev) const
    {
        return counts[static_cast<unsigned>(ev)];
    }
    std::uint64_t noteCount() const { return notes; }

  private:
    static std::ostream &nullStream();

    std::uint64_t counts[8] = {};
    std::uint64_t notes = 0;
};

} // namespace svw

#endif // SVW_CPU_TRACER_HH
