/**
 * @file
 * Issue queue: holds dispatched, un-issued instructions in age order;
 * the scheduler scans it oldest-first each cycle.
 *
 * Entries carry a raw DynInst pointer: ROB ring slots are stable for an
 * entry's lifetime, and the core prunes the IQ before popping squashed
 * ROB entries.
 *
 * The scheduler iterates the slot array in place (no per-cycle snapshot
 * copy). Issue removal tombstones the slot (inst = nullptr); compaction
 * is deferred to insert time, so slot indices never shift while the
 * issue scan is live. Squash only pops from the back (squashed entries
 * are the age-ordered suffix), which also leaves earlier indices intact.
 *
 * Wakeup-driven scan (host-side only — issue decisions are bit-exact
 * with a full walk): an "awake" bitmap marks the slots the scan must
 * visit. A sleeping entry's wake condition is exact, so it leaves the
 * bitmap and is re-armed through one of two structures:
 *
 *  - sleepRetry = r (producer issued, value due at r): a time wheel
 *    sets the bit again at exactly cycle r (drainWakes).
 *  - sleepReg = p (producer un-issued, readyAt == notReady): a
 *    per-register waiter list, fired by the core's noteReadyAt — the
 *    only operation that ever moves a register out of notReady.
 *
 * Wake records carry {slot, seq} and are validated when they fire, so
 * records left stale by a squash or compaction are simply dropped; a
 * spurious wake only makes the scan re-screen (pure reads) and re-arm.
 * Missed wakes cannot happen: the two conditions above are the only
 * ways a sleeping entry's screen can start passing.
 */

#ifndef SVW_CPU_IQ_HH
#define SVW_CPU_IQ_HH

#include <array>
#include <bit>
#include <map>
#include <vector>

#include "base/types.hh"
#include "cpu/dyninst.hh"

namespace svw {

/** Age-ordered issue queue. */
class IssueQueue
{
  public:
    /** Issue-resource class of an entry (which per-class cap gates it). */
    enum ClsGroup : std::uint8_t
    {
        ClsInt = 0,
        ClsBranch,
        ClsLoad,
        ClsStore,
    };

    /**
     * Gate bits: which renamed sources an entry must see ready before
     * it can issue. Stores and loads gate only on rs1 (the address
     * base; store data is captured after issue), ALU ops and branches
     * on whichever of rs1/rs2 the opcode really reads.
     */
    enum GateBit : std::uint8_t
    {
        GateRs1 = 1 << 0,
        GateRs2 = 1 << 1,
    };

    /**
     * One slot. Besides the instruction pointer the entry mirrors every
     * scan-relevant DynInst fact (class group, issue-gating renamed
     * sources at insert; sleep state after every failed wakeup check)
     * so the per-cycle scan — including the failed-issue path — runs
     * entirely over this compact sequential array and touches the
     * two-cache-line DynInst only when an entry actually issues (or
     * fails for a non-register reason: port conflict, store-set wait).
     */
    struct Entry
    {
        InstSeqNum seq;
        DynInst *inst;  ///< nullptr = tombstone (already issued)
        Cycle sleepRetry;        ///< earliest possible issue cycle
        PhysRegIndex sleepReg;   ///< unissued-producer blocking register
        PhysRegIndex prs1;       ///< mirror of DynInst::prs1
        PhysRegIndex prs2;       ///< mirror of DynInst::prs2
        std::uint8_t clsGroup;   ///< issue-resource class
        std::uint8_t gates;      ///< GateBit mask of issue-gating sources
    };

    explicit IssueQueue(unsigned capacity) : cap(capacity) {}

    bool full() const { return live >= cap; }
    std::size_t size() const { return live; }
    unsigned capacity() const { return cap; }

    static std::uint8_t classGroup(const DynInst &inst)
    {
        switch (inst.cls()) {
          case InstClass::Load:
            return ClsLoad;
          case InstClass::Store:
            return ClsStore;
          case InstClass::Branch:
          case InstClass::Jump:
          case InstClass::JumpReg:
            return ClsBranch;
          default:
            return ClsInt;
        }
    }

    /** Issue-gating source mask (see GateBit). */
    static std::uint8_t gateMask(const DynInst &inst)
    {
        std::uint8_t g = 0;
        if (inst.readsRs1())
            g |= GateRs1;
        // Memory ops issue on the address base alone: a store's rs2 is
        // data, captured whenever it arrives after issue.
        if (inst.readsRs2() && !inst.isMem())
            g |= GateRs2;
        return g;
    }

    void insert(DynInst *inst)
    {
        // Deferred compaction: reclaim tombstones outside the issue
        // scan (dispatch never runs mid-scan).
        if (entries_.size() - live > compactThreshold)
            compact();
        entries_.push_back(Entry{inst->seq, inst, 0, invalidPhysReg,
                                 inst->prs1, inst->prs2,
                                 classGroup(*inst), gateMask(*inst)});
        ++live;
        const std::size_t idx = entries_.size() - 1;
        if ((idx >> 6) >= awake_.size())
            awake_.push_back(0);
        awake_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    /** Number of slots to scan (live entries + tombstones). */
    std::size_t slotCount() const { return entries_.size(); }

    /** Slot @p idx; check .inst for nullptr (tombstone). */
    const Entry &slot(std::size_t idx) const { return entries_[idx]; }

    /** Mutable slot access (the scan refreshes the sleep mirror). */
    Entry &slotRef(std::size_t idx) { return entries_[idx]; }

    /** Tombstone the (live) entry at slot @p idx after it issued. */
    void removeAt(std::size_t idx)
    {
        entries_[idx].inst = nullptr;
        --live;
        awake_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }

    static constexpr std::size_t npos = ~std::size_t(0);

    /**
     * Next awake slot at index >= @p from (npos when none). Reads the
     * live bitmap, not a snapshot: a producer issuing at slot i wakes
     * its consumers' (strictly higher, age order) slots mid-scan, and
     * the same scan visits them — exactly like the screened full walk.
     */
    std::size_t nextAwake(std::size_t from) const
    {
        std::size_t wi = from >> 6;
        if (wi >= awake_.size())
            return npos;
        std::uint64_t w = awake_[wi] &
                          (~std::uint64_t(0) << (from & 63));
        while (!w) {
            if (++wi >= awake_.size())
                return npos;
            w = awake_[wi];
        }
        return (wi << 6) + std::countr_zero(w);
    }

    /**
     * The scan recorded (or re-confirmed) a sleep in slot @p idx: drop
     * the awake bit and arm the exact wake — sleepReg goes on that
     * register's waiter list, otherwise sleepRetry (> @p now) goes on
     * the time wheel. Re-arming after a spurious wake may duplicate a
     * record; fires are validated and idempotent, so that is harmless.
     */
    void noteAsleep(std::size_t idx, Cycle now)
    {
        const Entry &e = entries_[idx];
        awake_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        const WakeRec rec{e.seq, static_cast<std::uint32_t>(idx)};
        if (e.sleepReg != invalidPhysReg) {
            if (regWaiters_.size() <= std::size_t(e.sleepReg))
                regWaiters_.resize(std::size_t(e.sleepReg) + 1);
            regWaiters_[e.sleepReg].push_back(rec);
        } else if (e.sleepRetry - now <= wheelMask) {
            const Cycle b = e.sleepRetry & wheelMask;
            wheel_[b].push_back(rec);
            wheelBusy_[b >> 6] |= std::uint64_t(1) << (b & 63);
        } else {
            wheelOverflow_.emplace(e.sleepRetry, rec);
        }
    }

    /** Fire every wheel record due at cycle @p now. Must run once per
     * cycle (buckets alias every wheelMask+1 cycles). The occupancy
     * bitmap keeps the common no-wake cycle to two hot-word tests
     * instead of a scattered bucket load. */
    void drainWakes(Cycle now)
    {
        while (!wheelOverflow_.empty() &&
               wheelOverflow_.begin()->first <= now) {
            wakeValidated(wheelOverflow_.begin()->second);
            wheelOverflow_.erase(wheelOverflow_.begin());
        }
        const Cycle b = now & wheelMask;
        if (wheelBusy_[b >> 6] & (std::uint64_t(1) << (b & 63))) {
            wheelBusy_[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
            auto &bucket = wheel_[b];
            for (const WakeRec &r : bucket)
                wakeValidated(r);
            bucket.clear();
        }
    }

    /** Register @p p left notReady (its producer issued): wake the
     * entries sleeping on it. */
    void wakeReg(PhysRegIndex p)
    {
        if (std::size_t(p) >= regWaiters_.size())
            return;
        auto &list = regWaiters_[p];
        if (!list.empty()) {
            for (const WakeRec &r : list)
                wakeValidated(r);
            list.clear();
        }
    }

    /** Drop all entries with seq > @p keepSeq (squash). Must run before
     * the ROB discards the squashed instructions. Only pops from the
     * back: surviving slot indices are unchanged. */
    void squashAfter(InstSeqNum keepSeq);

  private:
    /** A pending wake for slot @p idx; @p seq guards against the slot
     * having been squashed, re-used, or shifted by compaction. */
    struct WakeRec
    {
        InstSeqNum seq;
        std::uint32_t idx;
    };

    void compact();

    /** Set the awake bit iff the record still names its entry. */
    void wakeValidated(const WakeRec &r)
    {
        if (r.idx < entries_.size() && entries_[r.idx].inst &&
            entries_[r.idx].seq == r.seq) {
            awake_[r.idx >> 6] |= std::uint64_t(1) << (r.idx & 63);
        }
    }

    static constexpr std::size_t compactThreshold = 32;
    static constexpr Cycle wheelMask = 255;  ///< wheel horizon - 1

    unsigned cap;
    std::size_t live = 0;
    std::vector<Entry> entries_;  ///< kept in insertion (age) order
    /** One bit per slot: the scan must visit it (bits past slotCount
     * are kept zero by squashAfter/compact). */
    std::vector<std::uint64_t> awake_;
    /** sleepRetry wakes, bucketed by due cycle & wheelMask. */
    std::vector<std::vector<WakeRec>> wheel_{wheelMask + 1};
    /** Occupancy bit per wheel bucket. */
    std::array<std::uint64_t, (wheelMask + 1) / 64> wheelBusy_{};
    std::multimap<Cycle, WakeRec> wheelOverflow_;
    /** sleepReg wakes, indexed by physical register (grown lazily). */
    std::vector<std::vector<WakeRec>> regWaiters_;
};

} // namespace svw

#endif // SVW_CPU_IQ_HH
