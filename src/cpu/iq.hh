/**
 * @file
 * Issue queue: holds dispatched, un-issued instructions in age order;
 * the scheduler scans it oldest-first each cycle.
 *
 * Entries carry a raw DynInst pointer: ROB storage is a std::deque, so
 * references stay valid until the element is erased, and the core prunes
 * the IQ before popping squashed ROB entries.
 */

#ifndef SVW_CPU_IQ_HH
#define SVW_CPU_IQ_HH

#include <vector>

#include "base/types.hh"
#include "cpu/dyninst.hh"

namespace svw {

/** Age-ordered issue queue. */
class IssueQueue
{
  public:
    struct Entry
    {
        InstSeqNum seq;
        DynInst *inst;
    };

    explicit IssueQueue(unsigned capacity) : cap(capacity) {}

    bool full() const { return entries_.size() >= cap; }
    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return cap; }

    void insert(DynInst *inst)
    {
        entries_.push_back(Entry{inst->seq, inst});
    }

    /** Remove an issued entry by sequence number. */
    void remove(InstSeqNum seq);

    /** Drop all entries with seq > @p keepSeq (squash). Must run before
     * the ROB discards the squashed instructions. */
    void squashAfter(InstSeqNum keepSeq);

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    unsigned cap;
    std::vector<Entry> entries_;  ///< kept in insertion (age) order
};

} // namespace svw

#endif // SVW_CPU_IQ_HH
