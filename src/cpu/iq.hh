/**
 * @file
 * Issue queue: holds dispatched, un-issued instructions in age order;
 * the scheduler scans it oldest-first each cycle.
 *
 * Entries carry a raw DynInst pointer: ROB ring slots are stable for an
 * entry's lifetime, and the core prunes the IQ before popping squashed
 * ROB entries.
 *
 * The scheduler iterates the slot array in place (no per-cycle snapshot
 * copy). Issue removal tombstones the slot (inst = nullptr); compaction
 * is deferred to insert time, so slot indices never shift while the
 * issue scan is live. Squash only pops from the back (squashed entries
 * are the age-ordered suffix), which also leaves earlier indices intact.
 */

#ifndef SVW_CPU_IQ_HH
#define SVW_CPU_IQ_HH

#include <vector>

#include "base/types.hh"
#include "cpu/dyninst.hh"

namespace svw {

/** Age-ordered issue queue. */
class IssueQueue
{
  public:
    /** Issue-resource class of an entry (which per-class cap gates it). */
    enum ClsGroup : std::uint8_t
    {
        ClsInt = 0,
        ClsBranch,
        ClsLoad,
        ClsStore,
    };

    /**
     * One slot. Besides the instruction pointer the entry mirrors the
     * scan-relevant DynInst state (class group at insert; sleep state
     * after every failed issue attempt) so the per-cycle scan can skip
     * blocked entries from this compact sequential array without
     * touching the ~4-cache-line DynInst at all.
     */
    struct Entry
    {
        InstSeqNum seq;
        DynInst *inst;  ///< nullptr = tombstone (already issued)
        Cycle sleepRetry;        ///< mirror of DynInst::issueRetryCycle
        PhysRegIndex sleepReg;   ///< mirror of DynInst::issueWaitReg
        std::uint8_t clsGroup;   ///< issue-resource class
    };

    explicit IssueQueue(unsigned capacity) : cap(capacity) {}

    bool full() const { return live >= cap; }
    std::size_t size() const { return live; }
    unsigned capacity() const { return cap; }

    static std::uint8_t classGroup(const DynInst &inst)
    {
        switch (inst.cls()) {
          case InstClass::Load:
            return ClsLoad;
          case InstClass::Store:
            return ClsStore;
          case InstClass::Branch:
          case InstClass::Jump:
          case InstClass::JumpReg:
            return ClsBranch;
          default:
            return ClsInt;
        }
    }

    void insert(DynInst *inst)
    {
        // Deferred compaction: reclaim tombstones outside the issue
        // scan (dispatch never runs mid-scan).
        if (entries_.size() - live > compactThreshold)
            compact();
        entries_.push_back(Entry{inst->seq, inst, inst->issueRetryCycle,
                                 inst->issueWaitReg,
                                 classGroup(*inst)});
        ++live;
    }

    /** Number of slots to scan (live entries + tombstones). */
    std::size_t slotCount() const { return entries_.size(); }

    /** Slot @p idx; check .inst for nullptr (tombstone). */
    const Entry &slot(std::size_t idx) const { return entries_[idx]; }

    /** Mutable slot access (the scan refreshes the sleep mirror). */
    Entry &slotRef(std::size_t idx) { return entries_[idx]; }

    /** Tombstone the (live) entry at slot @p idx after it issued. */
    void removeAt(std::size_t idx)
    {
        entries_[idx].inst = nullptr;
        --live;
    }

    /** Drop all entries with seq > @p keepSeq (squash). Must run before
     * the ROB discards the squashed instructions. Only pops from the
     * back: surviving slot indices are unchanged. */
    void squashAfter(InstSeqNum keepSeq);

  private:
    void compact();

    static constexpr std::size_t compactThreshold = 32;

    unsigned cap;
    std::size_t live = 0;
    std::vector<Entry> entries_;  ///< kept in insertion (age) order
};

} // namespace svw

#endif // SVW_CPU_IQ_HH
