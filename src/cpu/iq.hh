/**
 * @file
 * Issue queue: holds dispatched, un-issued instructions in age order;
 * the scheduler scans it oldest-first each cycle.
 *
 * Entries carry a raw DynInst pointer: ROB ring slots are stable for an
 * entry's lifetime, and the core prunes the IQ before popping squashed
 * ROB entries.
 *
 * The scheduler iterates the slot array in place (no per-cycle snapshot
 * copy). Issue removal tombstones the slot (inst = nullptr); compaction
 * is deferred to insert time, so slot indices never shift while the
 * issue scan is live. Squash only pops from the back (squashed entries
 * are the age-ordered suffix), which also leaves earlier indices intact.
 */

#ifndef SVW_CPU_IQ_HH
#define SVW_CPU_IQ_HH

#include <vector>

#include "base/types.hh"
#include "cpu/dyninst.hh"

namespace svw {

/** Age-ordered issue queue. */
class IssueQueue
{
  public:
    /** Issue-resource class of an entry (which per-class cap gates it). */
    enum ClsGroup : std::uint8_t
    {
        ClsInt = 0,
        ClsBranch,
        ClsLoad,
        ClsStore,
    };

    /**
     * Gate bits: which renamed sources an entry must see ready before
     * it can issue. Stores and loads gate only on rs1 (the address
     * base; store data is captured after issue), ALU ops and branches
     * on whichever of rs1/rs2 the opcode really reads.
     */
    enum GateBit : std::uint8_t
    {
        GateRs1 = 1 << 0,
        GateRs2 = 1 << 1,
    };

    /**
     * One slot. Besides the instruction pointer the entry mirrors every
     * scan-relevant DynInst fact (class group, issue-gating renamed
     * sources at insert; sleep state after every failed wakeup check)
     * so the per-cycle scan — including the failed-issue path — runs
     * entirely over this compact sequential array and touches the
     * two-cache-line DynInst only when an entry actually issues (or
     * fails for a non-register reason: port conflict, store-set wait).
     */
    struct Entry
    {
        InstSeqNum seq;
        DynInst *inst;  ///< nullptr = tombstone (already issued)
        Cycle sleepRetry;        ///< earliest possible issue cycle
        PhysRegIndex sleepReg;   ///< unissued-producer blocking register
        PhysRegIndex prs1;       ///< mirror of DynInst::prs1
        PhysRegIndex prs2;       ///< mirror of DynInst::prs2
        std::uint8_t clsGroup;   ///< issue-resource class
        std::uint8_t gates;      ///< GateBit mask of issue-gating sources
    };

    explicit IssueQueue(unsigned capacity) : cap(capacity) {}

    bool full() const { return live >= cap; }
    std::size_t size() const { return live; }
    unsigned capacity() const { return cap; }

    static std::uint8_t classGroup(const DynInst &inst)
    {
        switch (inst.cls()) {
          case InstClass::Load:
            return ClsLoad;
          case InstClass::Store:
            return ClsStore;
          case InstClass::Branch:
          case InstClass::Jump:
          case InstClass::JumpReg:
            return ClsBranch;
          default:
            return ClsInt;
        }
    }

    /** Issue-gating source mask (see GateBit). */
    static std::uint8_t gateMask(const DynInst &inst)
    {
        std::uint8_t g = 0;
        if (inst.readsRs1())
            g |= GateRs1;
        // Memory ops issue on the address base alone: a store's rs2 is
        // data, captured whenever it arrives after issue.
        if (inst.readsRs2() && !inst.isMem())
            g |= GateRs2;
        return g;
    }

    void insert(DynInst *inst)
    {
        // Deferred compaction: reclaim tombstones outside the issue
        // scan (dispatch never runs mid-scan).
        if (entries_.size() - live > compactThreshold)
            compact();
        entries_.push_back(Entry{inst->seq, inst, 0, invalidPhysReg,
                                 inst->prs1, inst->prs2,
                                 classGroup(*inst), gateMask(*inst)});
        ++live;
    }

    /** Number of slots to scan (live entries + tombstones). */
    std::size_t slotCount() const { return entries_.size(); }

    /** Slot @p idx; check .inst for nullptr (tombstone). */
    const Entry &slot(std::size_t idx) const { return entries_[idx]; }

    /** Mutable slot access (the scan refreshes the sleep mirror). */
    Entry &slotRef(std::size_t idx) { return entries_[idx]; }

    /** Tombstone the (live) entry at slot @p idx after it issued. */
    void removeAt(std::size_t idx)
    {
        entries_[idx].inst = nullptr;
        --live;
    }

    /** Drop all entries with seq > @p keepSeq (squash). Must run before
     * the ROB discards the squashed instructions. Only pops from the
     * back: surviving slot indices are unchanged. */
    void squashAfter(InstSeqNum keepSeq);

  private:
    void compact();

    static constexpr std::size_t compactThreshold = 32;

    unsigned cap;
    std::size_t live = 0;
    std::vector<Entry> entries_;  ///< kept in insertion (age) order
};

} // namespace svw

#endif // SVW_CPU_IQ_HH
