#include "cpu/iq.hh"

#include <algorithm>

namespace svw {

void
IssueQueue::squashAfter(InstSeqNum keepSeq)
{
    // Squashed entries are the age-ordered suffix; dead tombstones in
    // that suffix go with them.
    while (!entries_.empty() &&
           (!entries_.back().inst || entries_.back().seq > keepSeq)) {
        if (entries_.back().inst)
            --live;
        entries_.pop_back();
    }
}

void
IssueQueue::compact()
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [](const Entry &e) { return !e.inst; }),
                   entries_.end());
}

} // namespace svw
