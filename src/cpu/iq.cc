#include "cpu/iq.hh"

#include <algorithm>

namespace svw {

void
IssueQueue::remove(InstSeqNum seq)
{
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [seq](const Entry &e) { return e.seq == seq; });
    if (it != entries_.end())
        entries_.erase(it);
}

void
IssueQueue::squashAfter(InstSeqNum keepSeq)
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [keepSeq](const Entry &e) {
                                      return e.seq > keepSeq;
                                  }),
                   entries_.end());
}

} // namespace svw
