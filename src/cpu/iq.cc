#include "cpu/iq.hh"

#include <algorithm>

namespace svw {

void
IssueQueue::squashAfter(InstSeqNum keepSeq)
{
    // Squashed entries are the age-ordered suffix; dead tombstones in
    // that suffix go with them.
    while (!entries_.empty() &&
           (!entries_.back().inst || entries_.back().seq > keepSeq)) {
        if (entries_.back().inst)
            --live;
        entries_.pop_back();
    }
    // Clear awake bits past the new end (the slots no longer exist);
    // wake records for them now fail seq validation and just drop.
    const std::size_t n = entries_.size();
    std::size_t wi = n >> 6;
    if (wi < awake_.size()) {
        awake_[wi] &= (n & 63)
            ? (std::uint64_t(1) << (n & 63)) - 1 : 0;
        while (++wi < awake_.size())
            awake_[wi] = 0;
    }
}

void
IssueQueue::compact()
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [](const Entry &e) { return !e.inst; }),
                   entries_.end());
    // Indices shifted: outstanding wake records are stale (validation
    // drops them). Mark every survivor awake so the next scan
    // re-screens and re-arms each sleeper under its new index.
    const std::size_t n = entries_.size();
    awake_.assign((n + 63) >> 6, ~std::uint64_t(0));
    if (n & 63)
        awake_.back() = (std::uint64_t(1) << (n & 63)) - 1;
}

} // namespace svw
