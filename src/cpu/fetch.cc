/**
 * @file
 * Fetch stage: follows the branch predictor down (possibly wrong) paths,
 * snapshots predictor state for recovery, and models I-cache timing.
 */

#include "base/logging.hh"
#include "cpu/core.hh"

namespace svw {

namespace {

constexpr Addr textBase = 0x8000'0000ull;

} // namespace

void
Core::fetchStage()
{
    if (haltCommitted || fetchStopped || now < fetchResumeCycle)
        return;

    if (fetchQueue.full())
        return;

    // I-cache: probe the line holding the first instruction.
    const Addr line = alignDownAddr(textBase + fetchPc * 4,
                                    prm.mem.l1i.lineBytes);
    if (line != lastFetchLine) {
        const Cycle done = mem.accessInst(line, now);
        lastFetchLine = line;
        if (done > now + prm.mem.l1i.latency) {
            fetchResumeCycle = done;
            return;
        }
    }

    for (unsigned i = 0; i < prm.fetchWidth; ++i) {
        if (fetchPc >= prog.textSize()) {
            // Ran off the program text on a wrong path; wait for the
            // squash that must be coming.
            fetchStopped = true;
            return;
        }

        DynInst d;
        d.seq = ++seqCounter;
        d.pc = static_cast<std::uint32_t>(fetchPc);
        d.setStatic(&prog.inst(fetchPc), preText[fetchPc]);
        DynInstCold c;
        c.bpredSnap = bpred.save();
        d.fetchReadyCycle = now + prm.frontendDepth;

        const StaticInst &si = *d.si;
        if (d.isCondBranch()) {
            const bool taken = bpred.predictDirection(d.pc);
            d.predLowConf = bpred.lowConfidence();
            bpred.speculativeUpdate(taken);
            d.predNextPc = taken ? static_cast<std::uint32_t>(si.imm)
                                 : d.pc + 1;
        } else if (d.isDirectCtrl()) {
            d.predNextPc = static_cast<std::uint32_t>(si.imm);
            if (d.isCall())
                bpred.rasPush(d.pc + 1);
        } else if (d.isIndirectCtrl()) {
            // Indirect targets (RAS or BTB) are where the expensive
            // mispredicts live; always checkpoint-worthy.
            d.predLowConf = true;
            if (si.rs1 == regLink) {
                d.predNextPc = static_cast<std::uint32_t>(bpred.rasPop());
            } else {
                const std::uint64_t t = bpred.btbLookup(d.pc);
                d.predNextPc = t ? static_cast<std::uint32_t>(t)
                                 : d.pc + 1;
                if (!t)
                    ++bpred.btbMisses;
            }
        } else {
            d.predNextPc = d.pc + 1;
        }
        d.actualNextPc = d.predNextPc;  // non-control: always correct

        const bool isHalt = d.isHalt();
        const bool redirects = d.predNextPc != d.pc + 1;
        fetchPc = d.predNextPc;
        if (tracer)
            tracer->event(now, TraceEvent::Fetch, d);
        fetchQueue.push_back(std::move(d));
        fetchColds.push_back(std::move(c));

        if (isHalt) {
            fetchStopped = true;
            return;
        }
        if (redirects)
            return;  // at most one taken branch per fetch cycle
        if (fetchQueue.full())
            return;
    }
}

} // namespace svw
