/**
 * @file
 * DynInst: the per-dynamic-instruction record shared by every pipeline
 * stage, the load/store unit, the re-execution engine, and SVW.
 */

#ifndef SVW_CPU_DYNINST_HH
#define SVW_CPU_DYNINST_HH

#include <cstdint>

#include "base/types.hh"
#include "cpu/bpred.hh"
#include "isa/inst.hh"

namespace svw {

/** Why a load was marked for pre-commit re-execution (bitmask). */
enum RexReason : std::uint8_t {
    RexNone    = 0,
    RexNlqSpec = 1 << 0,  ///< issued past an older unresolved store (NLQ-LS)
    RexSsqAll  = 1 << 1,  ///< SSQ marks every load
    RexRleElim = 1 << 2,  ///< load eliminated by register integration
    RexNlqSm   = 1 << 3,  ///< in-flight during a coherence invalidation
};

/** One in-flight dynamic instruction. */
struct DynInst
{
    // --- identity ----------------------------------------------------
    InstSeqNum seq = 0;
    std::uint64_t pc = 0;
    const StaticInst *si = nullptr;

    // --- control flow -------------------------------------------------
    std::uint64_t predNextPc = 0;
    std::uint64_t actualNextPc = 0;
    bool actualTaken = false;   ///< conditional-branch outcome
    bool mispredicted = false;
    /** Branch-history / RAS snapshot taken at fetch, for squash repair. */
    BPredCheckpoint bpredSnap{};
    /**
     * Fetch-time confidence estimate for control instructions: weak
     * direction counter, BTB-predicted indirect, or return. Dispatch
     * allocates a rename checkpoint only for low-confidence branches
     * (high-confidence ones rarely mispredict; the walk covers them).
     */
    bool predLowConf = false;
    /**
     * Rename-checkpoint tag: pool slot + 1 of the checkpoint taken when
     * this branch dispatched, 0 if none. A mispredicting branch resolves
     * its checkpoint through this tag (RenameState::checkpointByTag),
     * which revalidates the slot by seq before trusting it.
     */
    std::uint16_t ckptTag = 0;

    // --- rename -------------------------------------------------------
    PhysRegIndex prs1 = invalidPhysReg;
    PhysRegIndex prs2 = invalidPhysReg;
    PhysRegIndex prd = invalidPhysReg;
    PhysRegIndex prevPrd = invalidPhysReg;  ///< old mapping of arch rd

    // --- status -------------------------------------------------------
    bool dispatched = false;
    bool issued = false;
    bool completed = false;
    Cycle fetchReadyCycle = 0;   ///< when it exits the front end
    Cycle completeCycle = 0;     ///< result available
    /**
     * Issue-scan sleep: earliest cycle this entry could possibly issue,
     * learned from a failed wakeup check (a source register's readyAt).
     * Purely an iteration-skipping bound — readyAt is written exactly
     * once per producer (at issue) and a waiting consumer's source
     * register cannot be freed or reallocated under it, so sleeping to
     * this cycle never changes which cycle the entry issues.
     */
    Cycle issueRetryCycle = 0;
    /**
     * Issue-scan sleep for a source whose producer has not even issued
     * (readyAt == notReady): the blocking physical register. The scan
     * re-polls only once that register's readyAt leaves notReady —
     * which is exactly its producer's issue (readyAt is written once
     * per allocation, and a squash that kills the producer kills this
     * consumer too) — so the per-register wait skips no issue
     * opportunity and never wakes spuriously.
     */
    PhysRegIndex issueWaitReg = invalidPhysReg;

    // --- memory -------------------------------------------------------
    Addr addr = 0;
    unsigned size = 0;
    bool addrResolved = false;
    bool dataResolved = false;     ///< store data captured (stores only)
    std::uint64_t storeData = 0;   ///< store value (low bytes significant)
    std::uint64_t loadValue = 0;   ///< value obtained at execution
    bool forwarded = false;        ///< got value from an in-flight store
    bool specExecuted = false;     ///< executed past ambiguity / via a
                                   ///< best-effort structure (value may
                                   ///< be stale)
    SSN fwdStoreSSN = 0;           ///< SSN of the forwarding store
    bool committedToCache = false;

    // --- SSN / SVW (paper sections 3, 3.1-3.5) -------------------------
    SSN ssn = 0;        ///< store sequence number (stores only)
    SSN svw = 0;        ///< SSN of youngest older store load is NOT
                        ///< vulnerable to
    bool svwValid = false;

    // --- re-execution -------------------------------------------------
    std::uint8_t rexReasons = RexNone;
    bool rexProcessed = false;   ///< passed the rex SVW stage
    bool rexSvwStageDone = false;///< SVW stage work (test/stats) performed
    bool rexNeedsCache = false;  ///< SVW test positive: awaiting the port
    bool rexFiltered = false;    ///< SVW test negative: skipped cache access
    bool forceRealRex = false;   ///< replacement-mode escape hatch: this
                                 ///< load re-executes for real (it flushed
                                 ///< repeatedly on SSBF hits)
    bool rexDone = false;        ///< re-execution (if any) finished
    bool rexPassed = true;       ///< value matched (false => flush)
    Cycle rexDoneCycle = 0;

    // --- optimization bookkeeping --------------------------------------
    bool eliminated = false;     ///< RLE removed it from execution
    bool elimFromSquash = false; ///< integrated a squashed incarnation
    bool elimFromBypass = false; ///< integrated a store's data register
    bool fsqLoad = false;        ///< steered to the FSQ (SSQ)
    bool fsqStore = false;       ///< allocated an FSQ entry (SSQ)
    InstSeqNum storeSetDep = 0;  ///< store this op must wait for (0 = none)

    bool marked() const { return rexReasons != RexNone; }
    bool isLoad() const { return si->isLoad(); }
    bool isStore() const { return si->isStore(); }
};

} // namespace svw

#endif // SVW_CPU_DYNINST_HH
