/**
 * @file
 * DynInst: the per-dynamic-instruction record shared by every pipeline
 * stage, the load/store unit, the re-execution engine, and SVW.
 *
 * Layout discipline (docs/ARCHITECTURE.md "Data layout"): DynInst is
 * the *hot* record — everything the issue scan, completion drain,
 * commit loop, and LSU associative searches touch — and is budgeted at
 * two cache lines (<= 128 B, enforced below). It is copied once per
 * instruction (fetch queue -> ROB ring) and then walked in place by
 * every stage, so every byte here is multiplied by the window size.
 *
 *  - The ~20 status booleans are 1-bit bitfields sharing one 32-bit
 *    cluster.
 *  - The StaticInst predicate answers (isLoad, writesReg, ...) plus the
 *    instruction class, access size, destination register, and opcode
 *    are pre-decoded into the record at fetch (setStatic), so the
 *    scheduling/completion/commit paths never dereference `si` and the
 *    execute step dispatches through the header-inlined
 *    evalAluOp/evalBranchTakenOp switches on the cached opcode. `si`
 *    itself remains for the immediate and register indices.
 *  - Issue-scan sleep state (retry cycle / blocking register) lives in
 *    the IssueQueue entry mirror, not here: a failed wakeup check is
 *    recorded and re-tested entirely inside the IQ's compact slot
 *    array without touching the DynInst.
 *  - PCs are 32-bit: a "PC" is an index into the program text, which is
 *    nowhere near 4G instructions.
 *  - Load-only and store-only fields overlay each other (anonymous
 *    unions): loadValue/storeData and svw/ssn.
 *  - Rarely-touched state (the fetch-time branch-predictor snapshot,
 *    read only on squash repair and commit-time training) lives in the
 *    DynInstCold side-record, held in arenas parallel to the fetch
 *    queue and the ROB ring (ROB::cold).
 */

#ifndef SVW_CPU_DYNINST_HH
#define SVW_CPU_DYNINST_HH

#include <cstdint>

#include "base/types.hh"
#include "cpu/bpred.hh"
#include "isa/inst.hh"

namespace svw {

/** Why a load was marked for pre-commit re-execution (bitmask). */
enum RexReason : std::uint8_t {
    RexNone    = 0,
    RexNlqSpec = 1 << 0,  ///< issued past an older unresolved store (NLQ-LS)
    RexSsqAll  = 1 << 1,  ///< SSQ marks every load
    RexRleElim = 1 << 2,  ///< load eliminated by register integration
    RexNlqSm   = 1 << 3,  ///< in-flight during a coherence invalidation
};

/**
 * Cold side-record of an in-flight instruction: state no per-cycle loop
 * reads. Lives in a parallel arena (one per fetch-queue slot, one per
 * ROB ring slot — ROB::cold) so the hot record stays within its
 * cache-line budget.
 */
struct DynInstCold
{
    /** Branch-history / RAS snapshot taken at fetch, for squash repair
     * and commit-time direction training. */
    BPredCheckpoint bpredSnap{};
};

/** One in-flight dynamic instruction (hot record; see file comment). */
struct DynInst
{
    // --- identity ----------------------------------------------------
    InstSeqNum seq = 0;
    const StaticInst *si = nullptr;

    // --- cycle fields -------------------------------------------------
    Cycle fetchReadyCycle = 0;   ///< when it exits the front end
    Cycle completeCycle = 0;     ///< result available
    Cycle rexDoneCycle = 0;      ///< re-execution / store rex-stage done

    // --- memory -------------------------------------------------------
    Addr addr = 0;
    union {
        std::uint64_t storeData = 0; ///< store value (stores only)
        std::uint64_t loadValue;     ///< value obtained at execution
                                     ///< (loads only)
    };
    // SSN / SVW (paper sections 3, 3.1-3.5). A store carries its own
    // SSN; a load carries its SVW (SSN of the youngest older store it
    // is NOT vulnerable to). Never both: they overlay.
    union {
        SSN ssn = 0;  ///< store sequence number (stores only)
        SSN svw;      ///< vulnerability-window start (loads only)
    };
    SSN fwdStoreSSN = 0;         ///< SSN of the forwarding store
    InstSeqNum storeSetDep = 0;  ///< store this op must wait for (0 = none)

    // --- control flow (PCs are program-text indices) -------------------
    std::uint32_t pc = 0;
    std::uint32_t predNextPc = 0;
    std::uint32_t actualNextPc = 0;

    // --- rename -------------------------------------------------------
    PhysRegIndex prs1 = invalidPhysReg;
    PhysRegIndex prs2 = invalidPhysReg;
    PhysRegIndex prd = invalidPhysReg;
    PhysRegIndex prevPrd = invalidPhysReg;  ///< old mapping of arch rd
    /**
     * Rename-checkpoint tag: pool slot + 1 of the checkpoint taken when
     * this branch dispatched, 0 if none. A mispredicting branch resolves
     * its checkpoint through this tag (RenameState::checkpointByTag),
     * which revalidates the slot by seq before trusting it.
     */
    std::uint16_t ckptTag = 0;

    // --- pre-decoded static-instruction facts (setStatic) --------------
    std::uint16_t preFlags = 0;       ///< PreFlag bits of *si
    std::uint8_t iclass =
        static_cast<std::uint8_t>(InstClass::Nop);  ///< cached si->cls()
    std::uint8_t size = 0;            ///< access size in bytes (mem ops)
    std::uint8_t archRd = 0;          ///< cached si->rd (commit arch map)
    std::uint8_t execLat = 1;         ///< cached si->execLatency()
    std::uint8_t opByte =
        static_cast<std::uint8_t>(Opcode::Nop);  ///< cached si->op: keys
                                     ///< the inlined evalAluOp /
                                     ///< evalBranchTakenOp switches
    std::uint8_t rexReasons = RexNone;

    // --- status flags (one packed 32-bit cluster) ----------------------
    bool actualTaken : 1 = false;  ///< conditional-branch outcome
    bool mispredicted : 1 = false;
    /**
     * Fetch-time confidence estimate for control instructions: weak
     * direction counter, BTB-predicted indirect, or return. Dispatch
     * allocates a rename checkpoint only for low-confidence branches
     * (high-confidence ones rarely mispredict; the walk covers them).
     */
    bool predLowConf : 1 = false;
    bool dispatched : 1 = false;
    bool issued : 1 = false;
    bool completed : 1 = false;
    bool addrResolved : 1 = false;
    bool dataResolved : 1 = false; ///< store data captured (stores only)
    bool forwarded : 1 = false;    ///< got value from an in-flight store
    bool specExecuted : 1 = false; ///< executed past ambiguity / via a
                                   ///< best-effort structure (value may
                                   ///< be stale)
    bool svwValid : 1 = false;
    bool rexProcessed : 1 = false; ///< passed the rex SVW stage
    bool rexSvwStageDone : 1 = false; ///< SVW stage work performed
    bool rexNeedsCache : 1 = false;///< SVW test positive: awaiting port
    bool rexFiltered : 1 = false;  ///< SVW test negative: skipped cache
    bool forceRealRex : 1 = false; ///< replacement-mode escape hatch:
                                   ///< this load re-executes for real
                                   ///< (it flushed repeatedly on SSBF
                                   ///< hits)
    bool rexDone : 1 = false;      ///< re-execution (if any) finished
    bool rexPassed : 1 = true;     ///< value matched (false => flush)
    bool eliminated : 1 = false;   ///< RLE removed it from execution
    bool elimFromSquash : 1 = false; ///< integrated a squashed incarnation
    bool elimFromBypass : 1 = false; ///< integrated a store's data register
    bool fsqLoad : 1 = false;      ///< steered to the FSQ (SSQ)
    bool fsqStore : 1 = false;     ///< allocated an FSQ entry (SSQ)

    // --- pre-decoded predicate accessors -------------------------------
    /** Bind the static instruction and cache its pre-decoded facts.
     * Every DynInst must be initialized through this (fetch does; so do
     * tests building instructions by hand). */
    void setStatic(const StaticInst *s)
    {
        setStatic(s, predecodeInst(*s));
    }

    /** Same, from a pre-built table entry (Program::predecoded()) —
     * fetch uses this form so binding is a straight field copy with no
     * per-dynamic-instruction predicate switches. */
    void setStatic(const StaticInst *s, const PreDecodedInst &p)
    {
        si = s;
        preFlags = p.flags;
        iclass = p.cls;
        size = p.memSize;
        archRd = p.archRd;
        execLat = p.execLat;
        opByte = p.op;
    }

    InstClass cls() const { return static_cast<InstClass>(iclass); }
    Opcode opc() const { return static_cast<Opcode>(opByte); }
    bool isLoad() const { return preFlags & PfLoad; }
    bool isStore() const { return preFlags & PfStore; }
    bool isMem() const { return preFlags & PfMem; }
    bool isCondBranch() const { return preFlags & PfCondBranch; }
    bool isDirectCtrl() const { return preFlags & PfDirectCtrl; }
    bool isIndirectCtrl() const { return preFlags & PfIndirectCtrl; }
    bool isCtrl() const { return preFlags & PfCtrl; }
    bool isCall() const { return preFlags & PfCall; }
    bool isHalt() const { return preFlags & PfHalt; }
    bool writesReg() const { return preFlags & PfWritesReg; }
    bool readsRs1() const { return preFlags & PfReadsRs1; }
    bool readsRs2() const { return preFlags & PfReadsRs2; }
    unsigned execLatency() const { return execLat; }

    bool marked() const { return rexReasons != RexNone; }
};

/**
 * The hot-record budget: two cache lines. Growing past it silently
 * multiplies across the ROB ring, fetch queue, and every pointer walk —
 * move the new field to DynInstCold instead (or argue the budget up
 * here *and* in docs/ARCHITECTURE.md, and re-measure perf_hotloop).
 */
static_assert(sizeof(DynInst) <= 128,
              "DynInst hot record exceeds its 128-byte budget");

} // namespace svw

#endif // SVW_CPU_DYNINST_HH
