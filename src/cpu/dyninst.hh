/**
 * @file
 * DynInst: the per-dynamic-instruction record shared by every pipeline
 * stage, the load/store unit, the re-execution engine, and SVW.
 */

#ifndef SVW_CPU_DYNINST_HH
#define SVW_CPU_DYNINST_HH

#include <cstdint>

#include "base/types.hh"
#include "isa/inst.hh"

namespace svw {

/** Why a load was marked for pre-commit re-execution (bitmask). */
enum RexReason : std::uint8_t {
    RexNone    = 0,
    RexNlqSpec = 1 << 0,  ///< issued past an older unresolved store (NLQ-LS)
    RexSsqAll  = 1 << 1,  ///< SSQ marks every load
    RexRleElim = 1 << 2,  ///< load eliminated by register integration
    RexNlqSm   = 1 << 3,  ///< in-flight during a coherence invalidation
};

/** One in-flight dynamic instruction. */
struct DynInst
{
    // --- identity ----------------------------------------------------
    InstSeqNum seq = 0;
    std::uint64_t pc = 0;
    const StaticInst *si = nullptr;

    // --- control flow -------------------------------------------------
    std::uint64_t predNextPc = 0;
    std::uint64_t actualNextPc = 0;
    bool actualTaken = false;   ///< conditional-branch outcome
    bool mispredicted = false;
    /** Branch-history / RAS snapshot taken at fetch, for squash repair. */
    std::uint64_t ghistSnap = 0;
    std::uint32_t rasTopSnap = 0;
    std::uint64_t rasTopValSnap = 0;

    // --- rename -------------------------------------------------------
    PhysRegIndex prs1 = invalidPhysReg;
    PhysRegIndex prs2 = invalidPhysReg;
    PhysRegIndex prd = invalidPhysReg;
    PhysRegIndex prevPrd = invalidPhysReg;  ///< old mapping of arch rd

    // --- status -------------------------------------------------------
    bool dispatched = false;
    bool issued = false;
    bool completed = false;
    Cycle fetchReadyCycle = 0;   ///< when it exits the front end
    Cycle completeCycle = 0;     ///< result available
    /**
     * Issue-scan sleep: earliest cycle this entry could possibly issue,
     * learned from a failed wakeup check (a source register's readyAt).
     * Purely an iteration-skipping bound — readyAt is written exactly
     * once per producer (at issue) and a waiting consumer's source
     * register cannot be freed or reallocated under it, so sleeping to
     * this cycle never changes which cycle the entry issues.
     */
    Cycle issueRetryCycle = 0;
    /**
     * Issue-scan sleep for a source whose producer has not even issued
     * (readyAt == notReady): re-poll only after some setReadyAt happened
     * (the core's register-wakeup epoch moved). A sleeping entry's
     * source can only become ready through a setReadyAt, so this skips
     * no issue opportunity.
     */
    std::uint64_t issueWakeEpoch = 0;

    // --- memory -------------------------------------------------------
    Addr addr = 0;
    unsigned size = 0;
    bool addrResolved = false;
    bool dataResolved = false;     ///< store data captured (stores only)
    std::uint64_t storeData = 0;   ///< store value (low bytes significant)
    std::uint64_t loadValue = 0;   ///< value obtained at execution
    bool forwarded = false;        ///< got value from an in-flight store
    bool specExecuted = false;     ///< executed past ambiguity / via a
                                   ///< best-effort structure (value may
                                   ///< be stale)
    SSN fwdStoreSSN = 0;           ///< SSN of the forwarding store
    bool committedToCache = false;

    // --- SSN / SVW (paper sections 3, 3.1-3.5) -------------------------
    SSN ssn = 0;        ///< store sequence number (stores only)
    SSN svw = 0;        ///< SSN of youngest older store load is NOT
                        ///< vulnerable to
    bool svwValid = false;

    // --- re-execution -------------------------------------------------
    std::uint8_t rexReasons = RexNone;
    bool rexProcessed = false;   ///< passed the rex SVW stage
    bool rexSvwStageDone = false;///< SVW stage work (test/stats) performed
    bool rexNeedsCache = false;  ///< SVW test positive: awaiting the port
    bool rexFiltered = false;    ///< SVW test negative: skipped cache access
    bool forceRealRex = false;   ///< replacement-mode escape hatch: this
                                 ///< load re-executes for real (it flushed
                                 ///< repeatedly on SSBF hits)
    bool rexDone = false;        ///< re-execution (if any) finished
    bool rexPassed = true;       ///< value matched (false => flush)
    Cycle rexDoneCycle = 0;

    // --- optimization bookkeeping --------------------------------------
    bool eliminated = false;     ///< RLE removed it from execution
    bool elimFromSquash = false; ///< integrated a squashed incarnation
    bool elimFromBypass = false; ///< integrated a store's data register
    bool fsqLoad = false;        ///< steered to the FSQ (SSQ)
    bool fsqStore = false;       ///< allocated an FSQ entry (SSQ)
    InstSeqNum storeSetDep = 0;  ///< store this op must wait for (0 = none)

    bool marked() const { return rexReasons != RexNone; }
    bool isLoad() const { return si->isLoad(); }
    bool isStore() const { return si->isStore(); }
};

} // namespace svw

#endif // SVW_CPU_DYNINST_HH
