/**
 * @file
 * The out-of-order core: a value-accurate timing model of the paper's
 * two machine configurations (8-wide NLQ/SSQ machine, 4-wide RLE
 * machine), with the re-execution pipeline and SVW attached.
 *
 * Values are computed exactly: wrong-path instructions really execute,
 * premature loads really read stale memory, silent stores really store
 * silently. That is what makes value-based re-execution (and SVW's
 * filtering of it) meaningful to simulate. Every run can be checked
 * against the in-order functional interpreter.
 */

#ifndef SVW_CPU_CORE_HH
#define SVW_CPU_CORE_HH

#include <array>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/bounded_ring.hh"
#include "cpu/bpred.hh"
#include "cpu/completion_wheel.hh"
#include "cpu/iq.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "cpu/tracer.hh"
#include "func/memory_image.hh"
#include "lsu/lsu.hh"
#include "lsu/spct.hh"
#include "lsu/store_sets.hh"
#include "mem/hierarchy.hh"
#include "mem/port.hh"
#include "prog/program.hh"
#include "rex/rex_engine.hh"
#include "rle/rle.hh"
#include "stats/stats.hh"
#include "svw/svw.hh"

namespace svw {

namespace prof { struct StageTimes; }

/** Full machine configuration. */
struct CoreParams
{
    // Widths (paper section 4).
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned intIssue = 5;      ///< integer ALU+mul issue slots
    unsigned loadIssue = 2;
    unsigned branchIssue = 1;

    // Structures.
    unsigned robEntries = 512;
    unsigned iqEntries = 200;
    unsigned numPhysRegs = 448;
    /**
     * Rename-map checkpoint pool for squash recovery (0 disables and
     * every squash takes the youngest-first walk). Host-side recovery
     * machinery only: pool size never changes simulated timing, just
     * how fast the simulator repairs state on a squash.
     */
    unsigned renameCheckpoints = 64;

    // Pipeline shape (15-stage base pipe).
    unsigned frontendDepth = 7;      ///< fetch->dispatch stages
    unsigned mispredictRedirect = 3; ///< execute->refetch bubble (plus
                                     ///< the front-end refill)
    /** Extra pre-commit stages from the rex pipeline (+2 NLQ/SSQ, +4 RLE)
     * and the SVW stage (+1). */
    unsigned rexTransit = 0;

    unsigned dcachePorts = 1;  ///< shared store-commit / rex port

    BPredParams bpred{};
    MemParams mem{};
    LsuParams lsu{};
    SvwConfig svw{};
    RexParams rex{};
    RleParams rle{};

    bool nlqsm = false;  ///< mark in-flight loads on invalidations
};

/** Aggregate outcome of a run. */
struct RunOutcome
{
    bool halted = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
};

/** The out-of-order core. */
class Core
{
  public:
    /**
     * @p sharedImage, when non-null, backs the committed memory
     * instead of a private copy of the program's initial segments
     * (func/memory_image.hh setBacking — copy-on-write, never
     * mutated). It must be exactly the image loadProgram(prog) would
     * build and must outlive the core. Batched co-simulation shares
     * one image across every lane of a workload; simulated state and
     * timing are identical either way.
     */
    Core(const CoreParams &params, const Program &prog,
         stats::StatRegistry &reg,
         const MemoryImage *sharedImage = nullptr);

    /** Run until Halt commits or a cap is reached. */
    RunOutcome run(std::uint64_t maxInsts, std::uint64_t maxCycles);

    /**
     * Bounded run slice: tick up to @p quantum cycles toward run()'s
     * terminal condition. The batched executor interleaves slices of
     * K lanes so their working sets stay co-resident; a sliced run
     * retires exactly the same cycles as one run() call.
     * @return true once finished (halt / instruction / cycle cap).
     */
    bool advance(std::uint64_t maxInsts, std::uint64_t maxCycles,
                 std::uint64_t quantum);

    /** Aggregate outcome so far (valid any time ticking is stopped). */
    RunOutcome outcome() const
    {
        RunOutcome out;
        out.halted = haltCommitted;
        out.cycles = now;
        out.instructions = retired.value();
        return out;
    }

    /** Advance a single cycle (exposed for tests and injectors). */
    void tick();

    bool halted() const { return haltCommitted; }
    Cycle cycle() const { return now; }
    std::uint64_t retiredInstCount() const { return retired.value(); }

    /**
     * Dense hot-loop counter block. Every stats::Scalar below is bound
     * to its like-named field (stats::Scalar::bind), so the per-cycle
     * loops bump plain adjacent uint64s instead of scattered Scalar
     * objects; value()/print()/reset() on the Scalars stay exact.
     */
    struct HotCounters
    {
        std::uint64_t retired = 0;
        std::uint64_t retiredLoads = 0;
        std::uint64_t retiredStores = 0;
        std::uint64_t retiredBranches = 0;
        std::uint64_t cycles = 0;
        std::uint64_t branchSquashes = 0;
        std::uint64_t orderingSquashes = 0;
        std::uint64_t rexFlushes = 0;
        std::uint64_t loadsEliminatedRetired = 0;
        std::uint64_t elimReuseRetired = 0;
        std::uint64_t elimBypassRetired = 0;
        std::uint64_t fsqLoadsRetired = 0;
        std::uint64_t wrapDrainCycles = 0;
        std::uint64_t invalidationsSeen = 0;
        std::uint64_t ckptRestores = 0;
        std::uint64_t ckptWalks = 0;
    };

    /** Architectural view for golden-model comparison. */
    std::uint64_t archReg(RegIndex a) const;
    const MemoryImage &memory() const { return committedMem; }

    /**
     * External (simulated other-agent) store: the NLQ-SM stimulus.
     * Writes memory, invalidates the caches, updates the SSBF with
     * SSNRENAME+1 and marks in-flight loads for re-execution.
     */
    void externalStore(Addr addr, unsigned size, std::uint64_t value);

    /** Hook invoked at the top of every cycle (invalidation injectors). */
    std::function<void(Core &)> perCycleHook;

    /** Attach (or detach, with nullptr) a pipeline event tracer. */
    void setTracer(Tracer *t) { tracer = t; }

    /**
     * Attach (or detach, with nullptr) a per-stage host-time
     * attribution block (base/profile.hh). Host-side observation only:
     * a profiled core retires bit-identical cycles. Costs one
     * predictable branch per tick when detached.
     */
    void setStageProfiler(prof::StageTimes *p) { stageProf = p; }

    // Component access for white-box tests.
    SvwUnit &svwUnit() { return svw; }
    RexEngine &rexEngine() { return rex; }
    LoadStoreUnit &lsuUnit() { return lsu; }
    RleUnit &rleUnit() { return rle; }
    const CoreParams &params() const { return prm; }

  public:
    // --- stats --------------------------------------------------------
    stats::Scalar retired;
    stats::Scalar retiredLoads;
    stats::Scalar retiredStores;
    stats::Scalar retiredBranches;
    stats::Scalar cyclesStat;
    stats::Scalar branchSquashes;
    stats::Scalar orderingSquashes;  ///< LQ-CAM violations (baseline)
    stats::Scalar rexFlushes;        ///< re-execution value mismatches
    stats::Scalar loadsEliminatedRetired;
    stats::Scalar elimReuseRetired;
    stats::Scalar elimBypassRetired;
    stats::Scalar fsqLoadsRetired;
    stats::Scalar wrapDrainCycles;
    stats::Scalar invalidationsSeen;
    stats::Scalar ckptRestores;      ///< squashes recovered via checkpoint
    stats::Scalar ckptWalks;         ///< squashes recovered via the walk

  private:
    // --- pipeline stages (one call each per tick) ----------------------
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /** tick() body with stage timers (stageProf != nullptr). */
    void tickProfiled();
    /** completeStage's event-wheel drain (profiled as wheel_advance). */
    void drainCompletions();

    // --- helpers -------------------------------------------------------
    bool dispatchOne(DynInst &inst, const DynInstCold &cold);
    bool tryIssue(DynInst &inst, unsigned &intUsed, unsigned &loadUsed,
                  unsigned &storeUsed, unsigned &branchUsed);
    void issueLoad(DynInst &load);
    void issueStore(DynInst &store);
    void captureStoreData(DynInst &store);
    void finishBranch(DynInst &inst);

    /**
     * Squash everything younger than @p keepSeq and refetch at
     * @p newFetchPc. @p replay identifies a control instruction whose
     * own predictor effects must be replayed with the real outcome.
     */
    void squashAfter(InstSeqNum keepSeq, std::uint64_t newFetchPc,
                     const DynInst *replay);

    void handleRexFailure(DynInst &load);

    /** Read a source operand value. */
    std::uint64_t srcVal(PhysRegIndex p) const
    {
        return rename.regs().value(p);
    }

    bool srcReady(PhysRegIndex p) const
    {
        return rename.regs().isReady(p, now);
    }

    /** A register became schedulable: record the arrival cycle and
     * wake the IQ entries sleeping on @p p (this is the only operation
     * that moves a register out of notReady, so firing the waiter list
     * here is an exact replacement for re-screening every cycle). */
    void noteReadyAt(PhysRegIndex p, Cycle c)
    {
        rename.regs().setReadyAt(p, c);
        iq.wakeReg(p);
    }

    CoreParams prm;
    const Program &prog;
    /** prog.predecoded().data(), cached at construction: fetch binds
     * DynInst facts from this table (index = PC) with one 8-byte copy. */
    const PreDecodedInst *preText = nullptr;
    Tracer *tracer = nullptr;
    /** Stage-time attribution sink; nullptr = profiler off. */
    prof::StageTimes *stageProf = nullptr;

    MemoryImage committedMem;   ///< committed ("cache") state
    MemHierarchy mem;
    BPred bpred;
    RenameState rename;
    ROB rob;
    IssueQueue iq;
    SvwUnit svw;
    LoadStoreUnit lsu;
    RexEngine rex;
    RleUnit rle;
    StoreSets storeSets;
    SPCT spct;

    CyclePort dcachePort;       ///< shared store-commit / rex port
    std::vector<CyclePort> loadBankPorts;
    CyclePort storeIssuePorts;

    Cycle now = 0;
    InstSeqNum seqCounter = 0;
    bool haltCommitted = false;
    /** Journal IT squash-hygiene markers at load dispatch so checkpoint
     * recovery can replay them (RLE cores with a checkpoint pool). */
    bool hygieneJournalOn = false;

    /** Hot-loop counter block (see HotCounters). */
    HotCounters hot;

    // Fetch state.
    std::uint64_t fetchPc;
    bool fetchStopped = false;   ///< halted / ran off text on this path
    Cycle fetchResumeCycle = 0;
    BoundedRing<DynInst> fetchQueue;
    /** Cold side-records of the fetch queue, same slot order (the queue
     * ring itself carries only the hot records). */
    BoundedRing<DynInstCold> fetchColds;
    Addr lastFetchLine = ~Addr(0);

    // SSN wrap drain (section 3.6).
    bool drainPending = false;

    /**
     * Replacement-mode livelock guard: per-PC streak of consecutive
     * SSBF-hit flushes; past a small threshold the refetched load
     * re-executes for real (section 6 mode stays forward-progressing
     * even when a hot granule keeps its SSBF entry fresh).
     */
    std::unordered_map<std::uint64_t, unsigned> replaceFlushStreak;
    static constexpr unsigned replaceStreakLimit = 2;

    // Completion bookkeeping. Squash does not prune the wheel: stale
    // events miss their findBySeq at drain time and are skipped.
    CompletionWheel completionQueue;
    std::vector<InstSeqNum> elimPending;  ///< eliminated insts awaiting
                                          ///< their shared register
    std::vector<InstSeqNum> storesAwaitingData;

    /** Architectural rename map, updated at commit (golden compare). */
    std::array<PhysRegIndex, numArchRegs> archMap{};

    /** Helper for line alignment without pulling intmath into the header
     * users. */
    static Addr alignDownAddr(Addr a, unsigned align)
    {
        return a & ~static_cast<Addr>(align - 1);
    }
};

} // namespace svw

#endif // SVW_CPU_CORE_HH
