/**
 * @file
 * Integration Table (IT) for register-integration-based redundant load
 * elimination (Petric, Bracy & Roth, MICRO-35; paper section 2.4).
 *
 * Entries describe an operation over physical register inputs and name
 * the physical register holding its result. A later instruction with an
 * identical signature is redundant: rename points its output at the
 * existing register and the instruction never executes. Loads eliminated
 * this way must re-execute before commit (false eliminations happen when
 * an unaccounted-for store intervenes); per section 3.4 each entry
 * carries the SSN marking the start of the consumer's vulnerability
 * window.
 *
 * The table takes a reference on each entry's output register so squash
 * reuse works: a squashed instruction's result survives, pinned by the
 * IT, and its re-fetched incarnation can integrate it. Generation
 * numbers on physical registers invalidate entries lazily when a
 * register is freed and re-allocated.
 */

#ifndef SVW_RLE_INTEGRATION_TABLE_HH
#define SVW_RLE_INTEGRATION_TABLE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "cpu/rename.hh"
#include "isa/inst.hh"
#include "stats/stats.hh"

namespace svw {

/** Operation signature used for matching. */
struct ItKey
{
    Opcode op = Opcode::Nop;
    PhysRegIndex src1 = invalidPhysReg;
    std::uint64_t src1Gen = 0;
    PhysRegIndex src2 = invalidPhysReg;  ///< invalid if unused
    std::uint64_t src2Gen = 0;
    std::int64_t imm = 0;
};

/** One IT entry. */
struct ItEntry
{
    bool valid = false;
    ItKey key{};
    PhysRegIndex dst = invalidPhysReg;
    std::uint64_t dstGen = 0;
    SSN ssn = 0;            ///< vulnerability-window start for consumers
    bool fromSquash = false;///< creator was squashed (squash reuse)
    bool bypass = false;    ///< created by a store (memory bypassing)
    InstSeqNum creatorSeq = 0;
    std::uint64_t lru = 0;
    // Intrusive LRU list links (indices into the table; -1 = none).
    // Valid entries are linked oldest-touch first, so pressure eviction
    // walks candidates in LRU order instead of scanning the whole table.
    int lruPrev = -1;
    int lruNext = -1;
    // Second intrusive LRU list, per release category (load/bypass
    // entries vs ALU entries), maintained in lockstep with the global
    // list. releaseOnePinned's category-priority walk runs over the
    // short per-category list instead of the whole LRU chain; the
    // classification is cached here so the walk never re-decodes
    // opcodes.
    bool loadKey = false;   ///< key.op is a load opcode
    int catPrev = -1;
    int catNext = -1;
};

/** Set-associative integration table. */
class IntegrationTable
{
  public:
    /**
     * @param maxPinned budget of live entries (each pins one physical
     * register reference); inserting beyond it evicts LRU entries first,
     * keeping the rename free list healthy on small register files.
     */
    IntegrationTable(unsigned entries, unsigned assoc, unsigned maxPinned,
                     stats::StatRegistry &reg);

    /**
     * Find a live entry matching @p key. Checks input and output
     * register generations; a squashed-creator entry whose value was
     * never produced is treated as dead.
     */
    ItEntry *lookup(const ItKey &key, const RenameState &rename);

    /**
     * Insert (or overwrite a same-key entry). Takes a reference on
     * @p dst via @p rename; releases the reference of any evicted entry.
     */
    void insert(const ItKey &key, PhysRegIndex dst, SSN ssn,
                InstSeqNum creatorSeq, RenameState &rename,
                bool bypass = false);

    /** Squash: entries created by squashed instructions become
     * squash-reuse candidates (or die if squash reuse is disabled). */
    void onSquash(InstSeqNum keepSeq, bool squashReuseEnabled,
                  RenameState &rename);

    /**
     * Kill the entry matching @p key (a false elimination was detected
     * by re-execution; the refetched load must not re-integrate it).
     */
    void invalidateKey(const ItKey &key, RenameState &rename);

    /**
     * Free-list pressure valve: invalidate one entry whose output
     * register is pinned only by the IT. @return true if one was freed.
     */
    bool releaseOnePinned(RenameState &rename);

    /** Flash clear (SSN wrap drain under RLE, section 3.6). */
    void clear(RenameState &rename);

    std::size_t liveEntries() const;

  public:
    stats::Scalar hits;
    stats::Scalar insertions;
    stats::Scalar pressureReleases;

  private:
    unsigned sets;
    unsigned assoc;
    unsigned maxPinned;
    unsigned livePins = 0;
    std::vector<ItEntry> table;
    std::uint64_t lruCounter = 0;
    int lruHead = -1;  ///< oldest-touched valid entry
    int lruTail = -1;  ///< newest-touched valid entry
    // Per-category LRU lists (same order as the global list, filtered
    // by ItEntry::loadKey).
    int aluHead = -1, aluTail = -1;
    int loadHead = -1, loadTail = -1;

    unsigned indexOf(const ItKey &key) const;
    static bool keyEq(const ItKey &a, const ItKey &b);
    void invalidate(ItEntry &e, RenameState &rename);

    int entryIndex(const ItEntry &e) const
    {
        return static_cast<int>(&e - table.data());
    }
    void lruUnlink(ItEntry &e);
    void lruAppend(ItEntry &e);
    void catUnlink(ItEntry &e);
    void catAppend(ItEntry &e);
    void lruTouch(ItEntry &e)
    {
        lruUnlink(e);
        lruAppend(e);
    }
};

} // namespace svw

#endif // SVW_RLE_INTEGRATION_TABLE_HH
