#include "rle/rle.hh"

#include "base/logging.hh"

namespace svw {

RleUnit::RleUnit(const RleParams &p, stats::StatRegistry &reg)
    : loadsEliminated(reg, "rle.loadsEliminated", "loads removed by RLE"),
      elimByReuse(reg, "rle.elimByReuse", "eliminations via load reuse"),
      elimByBypass(reg, "rle.elimByBypass",
                   "eliminations via speculative memory bypassing"),
      elimBySquashReuse(reg, "rle.elimBySquashReuse",
                        "eliminations integrating a squashed incarnation"),
      aluIntegrated(reg, "rle.aluIntegrated", "ALU operations integrated"),
      prm(p),
      table(p.itEntries, p.itAssoc, p.maxPinnedRegs, reg)
{
}

Opcode
RleUnit::bypassLoadOp(Opcode storeOp)
{
    // Only full-width bypassing is value-safe: a narrower store's data
    // register holds the untruncated value, which a sub-quad load would
    // not zero-extend the same way.
    return storeOp == Opcode::St8 ? Opcode::Ld8 : Opcode::Nop;
}

ItKey
RleUnit::makeKey(Opcode op, PhysRegIndex s1, PhysRegIndex s2,
                 std::int64_t imm, const RenameState &rename) const
{
    ItKey k;
    k.op = op;
    k.src1 = s1;
    k.src1Gen = s1 == invalidPhysReg ? 0 : rename.regs().generation(s1);
    k.src2 = s2;
    k.src2Gen = s2 == invalidPhysReg ? 0 : rename.regs().generation(s2);
    k.imm = imm;
    return k;
}

std::optional<Integration>
RleUnit::tryIntegrate(const StaticInst &si, PhysRegIndex prs1,
                      PhysRegIndex prs2, const RenameState &rename)
{
    if (!prm.enabled)
        return std::nullopt;

    const bool isLoad = si.isLoad();
    const bool isAlu = (si.cls() == InstClass::IntAlu ||
                        si.cls() == InstClass::IntMul) && si.writesReg();
    if (!isLoad && !(prm.integrateAlu && isAlu))
        return std::nullopt;

    const PhysRegIndex s2 = si.readsRs2() ? prs2 : invalidPhysReg;
    ItKey key = makeKey(si.op, si.readsRs1() ? prs1 : invalidPhysReg, s2,
                        si.imm, rename);
    ItEntry *e = table.lookup(key, rename);
    if (!e)
        return std::nullopt;
    if (e->fromSquash && !prm.squashReuse)
        return std::nullopt;

    Integration integ;
    integ.dst = e->dst;
    integ.ssn = e->fromSquash ? 0 : e->ssn;
    integ.fromSquash = e->fromSquash;
    integ.fromStore = e->bypass;

    if (isLoad) {
        ++loadsEliminated;
        if (e->fromSquash)
            ++elimBySquashReuse;
        else if (e->bypass)
            ++elimByBypass;
        else
            ++elimByReuse;
    } else {
        ++aluIntegrated;
    }
    return integ;
}

void
RleUnit::createEntry(const DynInst &inst, RenameState &rename,
                     SSN ssnRename, SSN storeSsn)
{
    if (!prm.enabled)
        return;
    const StaticInst &si = *inst.si;

    if (si.isStore()) {
        const Opcode ldOp = bypassLoadOp(si.op);
        if (ldOp == Opcode::Nop)
            return;
        // Key: the load this store can bypass; result: store data reg.
        ItKey key = makeKey(ldOp, inst.prs1, invalidPhysReg, si.imm, rename);
        table.insert(key, inst.prs2, storeSsn, inst.seq, rename, true);
        return;
    }

    const bool isLoad = si.isLoad();
    const bool isAlu = (si.cls() == InstClass::IntAlu ||
                        si.cls() == InstClass::IntMul) && si.writesReg();
    if (!isLoad && !(prm.integrateAlu && isAlu))
        return;
    if (!si.writesReg())
        return;

    const PhysRegIndex s2 = si.readsRs2() ? inst.prs2 : invalidPhysReg;
    ItKey key = makeKey(si.op, si.readsRs1() ? inst.prs1 : invalidPhysReg,
                        s2, si.imm, rename);
    table.insert(key, inst.prd, ssnRename, inst.seq, rename);
}

void
RleUnit::onFalseElimination(const DynInst &load, RenameState &rename)
{
    if (!prm.enabled)
        return;
    const StaticInst &si = *load.si;
    ItKey key = makeKey(si.op, si.readsRs1() ? load.prs1 : invalidPhysReg,
                        si.readsRs2() ? load.prs2 : invalidPhysReg,
                        si.imm, rename);
    table.invalidateKey(key, rename);
}

void
RleUnit::onSquashedSpeculativeLoad(const DynInst &load,
                                   RenameState &rename)
{
    if (!prm.enabled)
        return;
    const StaticInst &si = *load.si;
    ItKey key = makeKey(si.op, si.readsRs1() ? load.prs1 : invalidPhysReg,
                        si.readsRs2() ? load.prs2 : invalidPhysReg,
                        si.imm, rename);
    table.invalidateKey(key, rename);
}

void
RleUnit::onVerifiedElimination(const DynInst &load, RenameState &rename,
                               SSN ssnRetire)
{
    if (!prm.enabled)
        return;
    const StaticInst &si = *load.si;
    ItKey key = makeKey(si.op, si.readsRs1() ? load.prs1 : invalidPhysReg,
                        si.readsRs2() ? load.prs2 : invalidPhysReg,
                        si.imm, rename);
    if (ItEntry *e = table.lookup(key, rename)) {
        // Refresh only if the entry still names the same result register
        // (i.e., it is the entry that fed this load).
        if (e->dst == load.prd && !e->fromSquash && e->ssn < ssnRetire)
            e->ssn = ssnRetire;
    }
}

void
RleUnit::onSquash(InstSeqNum keepSeq, RenameState &rename)
{
    if (!prm.enabled)
        return;
    table.onSquash(keepSeq, prm.squashReuse, rename);
}

bool
RleUnit::relievePressure(RenameState &rename)
{
    if (!prm.enabled)
        return false;
    // Evict until a register actually frees; multiple entries may pin
    // the same register.
    while (!rename.hasFreeReg()) {
        if (!table.releaseOnePinned(rename))
            return false;
    }
    return true;
}

} // namespace svw
