/**
 * @file
 * RleUnit: redundant load elimination via register integration
 * (paper section 2.4), coordinated at the rename stage.
 *
 * Load reuse: a load creates an IT entry; a later load with the same
 * (opcode, base register, offset) signature integrates its result.
 * Speculative memory bypassing: a store creates an entry keyed like the
 * matching load, whose "result" is the store's data register.
 * Squash reuse: entries of squashed instructions stay integrable
 * (SVW is disabled for those consumers — section 4.3 / SVW-SQU).
 *
 * Paper-term map: the IT is the paper's "integration table"; an
 * eliminated load is "integrated" (it never issues — rename points its
 * output at the table entry's physical register and completion waits
 * on that register's readiness). Because an unaccounted-for store may
 * have intervened since the entry was created, every eliminated load
 * is marked for pre-commit re-execution (RexRleElim) with
 * ld.SVW = IT-entry.SSN per section 3.4; onVerifiedElimination and
 * onFalseElimination maintain the entry's window from commit/flush
 * outcomes.
 */

#ifndef SVW_RLE_RLE_HH
#define SVW_RLE_RLE_HH

#include <optional>

#include "cpu/dyninst.hh"
#include "rle/integration_table.hh"
#include "stats/stats.hh"

namespace svw {

/** RLE configuration. */
struct RleParams
{
    bool enabled = false;
    unsigned itEntries = 512;
    unsigned itAssoc = 2;
    bool squashReuse = true;     ///< SVW-SQU config sets this false
    bool integrateAlu = true;    ///< register integration covers ALU ops
    /** Live-entry (pinned physical register) budget; see
     * IntegrationTable. */
    unsigned maxPinnedRegs = 24;
};

/** Result of a successful integration. */
struct Integration
{
    PhysRegIndex dst;   ///< shared physical register
    SSN ssn;            ///< IT-entry SSN (window start), 0 if squash reuse
    bool fromSquash;
    bool fromStore;     ///< speculative memory bypassing
};

/** The RLE policy unit wrapped around the integration table. */
class RleUnit
{
  public:
    RleUnit(const RleParams &params, stats::StatRegistry &reg);

    bool enabled() const { return prm.enabled; }
    const RleParams &config() const { return prm; }
    IntegrationTable &it() { return table; }

    /**
     * Rename-time integration attempt for @p si with renamed sources.
     * Only loads (any size) and — when integrateAlu — single-output ALU
     * ops are candidates.
     */
    std::optional<Integration> tryIntegrate(const StaticInst &si,
                                            PhysRegIndex prs1,
                                            PhysRegIndex prs2,
                                            const RenameState &rename);

    /**
     * Rename-time entry creation for a non-integrated instruction
     * (loads and ALU ops publish their own result; stores publish a
     * bypass entry for the matching load signature).
     * @param ssnRename current SSNRENAME; @param storeSsn store's own SSN.
     */
    void createEntry(const DynInst &inst, RenameState &rename,
                     SSN ssnRename, SSN storeSsn);

    void onSquash(InstSeqNum keepSeq, RenameState &rename);

    /**
     * A load that executed speculatively (past ambiguous stores or via a
     * best-effort structure) is being squashed: its value was never
     * verified, so its IT entry must not survive as a squash-reuse
     * candidate (a stale value would propagate and flush at rex).
     */
    void onSquashedSpeculativeLoad(const DynInst &load,
                                   RenameState &rename);

    /**
     * A marked eliminated load passed verification at commit: every
     * store older than it has retired, so the entry that fed it can
     * soundly restart its vulnerability window at SSNRETIRE. Keeps
     * long-lived hot entries from accumulating unbounded windows.
     */
    void onVerifiedElimination(const DynInst &load, RenameState &rename,
                               SSN ssnRetire);

    /**
     * Re-execution found this eliminated load's value wrong: kill the
     * IT entry that produced it so the refetched incarnation executes
     * for real instead of looping through the same false elimination.
     */
    void onFalseElimination(const DynInst &load, RenameState &rename);

    /** Free-list pressure valve (see IntegrationTable). */
    bool relievePressure(RenameState &rename);

    /** SSN wrap drain: flash-clear the IT (section 3.6). */
    void wrapClear(RenameState &rename) { table.clear(rename); }

  public:
    stats::Scalar loadsEliminated;
    stats::Scalar elimByReuse;
    stats::Scalar elimByBypass;
    stats::Scalar elimBySquashReuse;
    stats::Scalar aluIntegrated;

  private:
    /** Bypass-compatible load opcode for a store, or Nop if none. */
    static Opcode bypassLoadOp(Opcode storeOp);

    ItKey makeKey(Opcode op, PhysRegIndex s1, PhysRegIndex s2,
                  std::int64_t imm, const RenameState &rename) const;

    RleParams prm;
    IntegrationTable table;
};

} // namespace svw

#endif // SVW_RLE_RLE_HH
