#include "rle/integration_table.hh"

#include "base/hostopt.hh"
#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

IntegrationTable::IntegrationTable(unsigned entries, unsigned a,
                                   unsigned maxPinnedRegs,
                                   stats::StatRegistry &reg)
    : hits(reg, "it.hits", "integration table hits (eliminations)"),
      insertions(reg, "it.insertions", "integration table entry creations"),
      pressureReleases(reg, "it.pressureReleases",
                       "entries dropped to relieve free-list pressure"),
      assoc(a),
      maxPinned(maxPinnedRegs)
{
    svw_assert(entries % a == 0, "IT geometry");
    sets = entries / a;
    svw_assert(isPowerOf2(sets), "IT sets must be a power of two");
    table.resize(entries);
}

unsigned
IntegrationTable::indexOf(const ItKey &key) const
{
    std::uint64_t h = static_cast<std::uint64_t>(key.op) * 0x9e3779b9u;
    h ^= key.src1 * 0x85ebca6bull;
    h ^= static_cast<std::uint64_t>(key.imm) * 0xc2b2ae35ull;
    h ^= h >> 16;
    return static_cast<unsigned>(h & (sets - 1));
}

bool
IntegrationTable::keyEq(const ItKey &a, const ItKey &b)
{
    return a.op == b.op && a.src1 == b.src1 && a.src1Gen == b.src1Gen &&
        a.src2 == b.src2 && a.src2Gen == b.src2Gen && a.imm == b.imm;
}

ItEntry *
IntegrationTable::lookup(const ItKey &key, const RenameState &rename)
{
    const unsigned set = indexOf(key);
    for (unsigned w = 0; w < assoc; ++w) {
        ItEntry &e = table[set * assoc + w];
        if (!e.valid || !keyEq(e.key, key))
            continue;
        const PhysRegFile &f = rename.regs();
        // Stale if any involved register was freed and re-allocated.
        if (f.generation(e.dst) != e.dstGen ||
            (e.key.src1 != invalidPhysReg &&
             f.generation(e.key.src1) != e.key.src1Gen) ||
            (e.key.src2 != invalidPhysReg &&
             f.generation(e.key.src2) != e.key.src2Gen)) {
            continue;
        }
        // A squashed creator that never produced its value leaves the
        // output register permanently not-ready; such entries are dead.
        if (e.fromSquash && f.readyAt(e.dst) == notReady)
            continue;
        e.lru = ++lruCounter;
        lruTouch(e);
        ++hits;
        return &e;
    }
    return nullptr;
}

void
IntegrationTable::lruUnlink(ItEntry &e)
{
    const int i = entryIndex(e);
    if (e.lruPrev != -1)
        table[e.lruPrev].lruNext = e.lruNext;
    else if (lruHead == i)
        lruHead = e.lruNext;
    if (e.lruNext != -1)
        table[e.lruNext].lruPrev = e.lruPrev;
    else if (lruTail == i)
        lruTail = e.lruPrev;
    e.lruPrev = -1;
    e.lruNext = -1;
    catUnlink(e);
}

void
IntegrationTable::lruAppend(ItEntry &e)
{
    const int i = entryIndex(e);
    e.lruPrev = lruTail;
    e.lruNext = -1;
    if (lruTail != -1)
        table[lruTail].lruNext = i;
    else
        lruHead = i;
    lruTail = i;
    catAppend(e);
}

void
IntegrationTable::catUnlink(ItEntry &e)
{
    const int i = entryIndex(e);
    int &head = e.loadKey ? loadHead : aluHead;
    int &tail = e.loadKey ? loadTail : aluTail;
    if (e.catPrev != -1)
        table[e.catPrev].catNext = e.catNext;
    else if (head == i)
        head = e.catNext;
    if (e.catNext != -1)
        table[e.catNext].catPrev = e.catPrev;
    else if (tail == i)
        tail = e.catPrev;
    e.catPrev = -1;
    e.catNext = -1;
}

void
IntegrationTable::catAppend(ItEntry &e)
{
    const int i = entryIndex(e);
    int &head = e.loadKey ? loadHead : aluHead;
    int &tail = e.loadKey ? loadTail : aluTail;
    e.catPrev = tail;
    e.catNext = -1;
    if (tail != -1)
        table[tail].catNext = i;
    else
        head = i;
    tail = i;
}

void
IntegrationTable::insert(const ItKey &key, PhysRegIndex dst, SSN ssn,
                         InstSeqNum creatorSeq, RenameState &rename,
                         bool bypass)
{
    ++insertions;
    // Respect the pin budget: evict before inserting, not after, so the
    // rename stage never sees the free list dip below its slack.
    while (livePins >= maxPinned) {
        if (!releaseOnePinned(rename))
            break;
    }
    const unsigned set = indexOf(key);
    ItEntry *victim = nullptr;
    for (unsigned w = 0; w < assoc; ++w) {
        ItEntry &e = table[set * assoc + w];
        if (e.valid && keyEq(e.key, key)) {
            victim = &e;  // overwrite duplicate key
            break;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lru < victim->lru)) {
            victim = &e;
        }
    }
    if (victim->valid)
        invalidate(*victim, rename);

    victim->valid = true;
    victim->key = key;
    victim->loadKey = key.op == Opcode::Ld1 || key.op == Opcode::Ld2 ||
                      key.op == Opcode::Ld4 || key.op == Opcode::Ld8;
    victim->dst = dst;
    victim->dstGen = rename.regs().generation(dst);
    victim->ssn = ssn;
    victim->fromSquash = false;
    victim->bypass = bypass;
    victim->creatorSeq = creatorSeq;
    victim->lru = ++lruCounter;
    lruAppend(*victim);
    rename.addRef(dst);
    ++livePins;
}

void
IntegrationTable::invalidate(ItEntry &e, RenameState &rename)
{
    svw_assert(e.valid, "invalidate of empty IT entry");
    // Release the pin only if the register was not recycled under us.
    if (rename.regs().generation(e.dst) == e.dstGen)
        rename.deref(e.dst);
    e.valid = false;
    lruUnlink(e);
    svw_assert(livePins > 0, "IT pin underflow");
    --livePins;
}

void
IntegrationTable::invalidateKey(const ItKey &key, RenameState &rename)
{
    const unsigned set = indexOf(key);
    for (unsigned w = 0; w < assoc; ++w) {
        ItEntry &e = table[set * assoc + w];
        if (e.valid && keyEq(e.key, key))
            invalidate(e, rename);
    }
}

void
IntegrationTable::onSquash(InstSeqNum keepSeq, bool squashReuseEnabled,
                           RenameState &rename)
{
    for (ItEntry &e : table) {
        if (!e.valid || e.creatorSeq <= keepSeq)
            continue;
        if (squashReuseEnabled)
            e.fromSquash = true;
        else
            invalidate(e, rename);
    }
}

bool
IntegrationTable::releaseOnePinned(RenameState &rename)
{
    // Eviction priority: (1) LRU ALU entry whose register the IT alone
    // keeps alive, (2) LRU solo-pinned load/bypass entry, (3) LRU any.
    // Load and bypass entries are the ones that eliminate re-executable
    // loads, so they are worth keeping; ALU entries mostly serve squash
    // reuse and are cheap to regenerate.
    //
    // Fast path: each category's own LRU list preserves the global LRU
    // order filtered to that category, so "first solo-pinned entry of
    // the ALU list" is exactly the combined walk's first solo-pinned
    // ALU entry (likewise for loads), and "global LRU head" is the
    // combined walk's fallback victim. Same victim for every state —
    // profile-guided hot-loop work measured this walk at 37-41% of
    // host time on RLE cells (it runs once per dispatch-stage pressure
    // eviction, and the table is mostly load entries, which the
    // combined walk had to step over to reach the first ALU victim).
    ItEntry *victim = nullptr;
    if (hostopt::legacy(hostopt::LegacyRleRelease)) {
        // Legacy combined walk, kept for interleaved A/B measurement
        // (bench/perf_ab --ab --legacy=rle_release).
        ItEntry *soloAlu = nullptr;
        ItEntry *soloLoad = nullptr;
        ItEntry *any = nullptr;
        for (int i = lruHead; i != -1; i = table[i].lruNext) {
            ItEntry &e = table[i];
            if (!any)
                any = &e;
            if (rename.regs().refCount(e.dst) == 1) {
                if (!e.loadKey) {
                    soloAlu = &e;
                    break;
                }
                if (!soloLoad)
                    soloLoad = &e;
            }
        }
        victim = soloAlu ? soloAlu : (soloLoad ? soloLoad : any);
    } else {
        const PhysRegFile &f = rename.regs();
        for (int i = aluHead; i != -1; i = table[i].catNext) {
            if (f.refCount(table[i].dst) == 1) {
                victim = &table[i];
                break;
            }
        }
        if (!victim) {
            for (int i = loadHead; i != -1; i = table[i].catNext) {
                if (f.refCount(table[i].dst) == 1) {
                    victim = &table[i];
                    break;
                }
            }
        }
        if (!victim && lruHead != -1)
            victim = &table[lruHead];
    }
    if (!victim)
        return false;
    ++pressureReleases;
    invalidate(*victim, rename);
    return true;
}

void
IntegrationTable::clear(RenameState &rename)
{
    for (ItEntry &e : table)
        if (e.valid)
            invalidate(e, rename);
}

std::size_t
IntegrationTable::liveEntries() const
{
    std::size_t n = 0;
    for (const ItEntry &e : table)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace svw
