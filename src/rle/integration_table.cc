#include "rle/integration_table.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

IntegrationTable::IntegrationTable(unsigned entries, unsigned a,
                                   unsigned maxPinnedRegs,
                                   stats::StatRegistry &reg)
    : hits(reg, "it.hits", "integration table hits (eliminations)"),
      insertions(reg, "it.insertions", "integration table entry creations"),
      pressureReleases(reg, "it.pressureReleases",
                       "entries dropped to relieve free-list pressure"),
      assoc(a),
      maxPinned(maxPinnedRegs)
{
    svw_assert(entries % a == 0, "IT geometry");
    sets = entries / a;
    svw_assert(isPowerOf2(sets), "IT sets must be a power of two");
    table.resize(entries);
}

unsigned
IntegrationTable::indexOf(const ItKey &key) const
{
    std::uint64_t h = static_cast<std::uint64_t>(key.op) * 0x9e3779b9u;
    h ^= key.src1 * 0x85ebca6bull;
    h ^= static_cast<std::uint64_t>(key.imm) * 0xc2b2ae35ull;
    h ^= h >> 16;
    return static_cast<unsigned>(h & (sets - 1));
}

bool
IntegrationTable::keyEq(const ItKey &a, const ItKey &b)
{
    return a.op == b.op && a.src1 == b.src1 && a.src1Gen == b.src1Gen &&
        a.src2 == b.src2 && a.src2Gen == b.src2Gen && a.imm == b.imm;
}

ItEntry *
IntegrationTable::lookup(const ItKey &key, const RenameState &rename)
{
    const unsigned set = indexOf(key);
    for (unsigned w = 0; w < assoc; ++w) {
        ItEntry &e = table[set * assoc + w];
        if (!e.valid || !keyEq(e.key, key))
            continue;
        const PhysRegFile &f = rename.regs();
        // Stale if any involved register was freed and re-allocated.
        if (f.generation(e.dst) != e.dstGen ||
            (e.key.src1 != invalidPhysReg &&
             f.generation(e.key.src1) != e.key.src1Gen) ||
            (e.key.src2 != invalidPhysReg &&
             f.generation(e.key.src2) != e.key.src2Gen)) {
            continue;
        }
        // A squashed creator that never produced its value leaves the
        // output register permanently not-ready; such entries are dead.
        if (e.fromSquash && f.readyAt(e.dst) == notReady)
            continue;
        e.lru = ++lruCounter;
        lruTouch(e);
        ++hits;
        return &e;
    }
    return nullptr;
}

void
IntegrationTable::lruUnlink(ItEntry &e)
{
    const int i = entryIndex(e);
    if (e.lruPrev != -1)
        table[e.lruPrev].lruNext = e.lruNext;
    else if (lruHead == i)
        lruHead = e.lruNext;
    if (e.lruNext != -1)
        table[e.lruNext].lruPrev = e.lruPrev;
    else if (lruTail == i)
        lruTail = e.lruPrev;
    e.lruPrev = -1;
    e.lruNext = -1;
}

void
IntegrationTable::lruAppend(ItEntry &e)
{
    const int i = entryIndex(e);
    e.lruPrev = lruTail;
    e.lruNext = -1;
    if (lruTail != -1)
        table[lruTail].lruNext = i;
    else
        lruHead = i;
    lruTail = i;
}

void
IntegrationTable::insert(const ItKey &key, PhysRegIndex dst, SSN ssn,
                         InstSeqNum creatorSeq, RenameState &rename,
                         bool bypass)
{
    ++insertions;
    // Respect the pin budget: evict before inserting, not after, so the
    // rename stage never sees the free list dip below its slack.
    while (livePins >= maxPinned) {
        if (!releaseOnePinned(rename))
            break;
    }
    const unsigned set = indexOf(key);
    ItEntry *victim = nullptr;
    for (unsigned w = 0; w < assoc; ++w) {
        ItEntry &e = table[set * assoc + w];
        if (e.valid && keyEq(e.key, key)) {
            victim = &e;  // overwrite duplicate key
            break;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lru < victim->lru)) {
            victim = &e;
        }
    }
    if (victim->valid)
        invalidate(*victim, rename);

    victim->valid = true;
    victim->key = key;
    victim->dst = dst;
    victim->dstGen = rename.regs().generation(dst);
    victim->ssn = ssn;
    victim->fromSquash = false;
    victim->bypass = bypass;
    victim->creatorSeq = creatorSeq;
    victim->lru = ++lruCounter;
    lruAppend(*victim);
    rename.addRef(dst);
    ++livePins;
}

void
IntegrationTable::invalidate(ItEntry &e, RenameState &rename)
{
    svw_assert(e.valid, "invalidate of empty IT entry");
    // Release the pin only if the register was not recycled under us.
    if (rename.regs().generation(e.dst) == e.dstGen)
        rename.deref(e.dst);
    e.valid = false;
    lruUnlink(e);
    svw_assert(livePins > 0, "IT pin underflow");
    --livePins;
}

void
IntegrationTable::invalidateKey(const ItKey &key, RenameState &rename)
{
    const unsigned set = indexOf(key);
    for (unsigned w = 0; w < assoc; ++w) {
        ItEntry &e = table[set * assoc + w];
        if (e.valid && keyEq(e.key, key))
            invalidate(e, rename);
    }
}

void
IntegrationTable::onSquash(InstSeqNum keepSeq, bool squashReuseEnabled,
                           RenameState &rename)
{
    for (ItEntry &e : table) {
        if (!e.valid || e.creatorSeq <= keepSeq)
            continue;
        if (squashReuseEnabled)
            e.fromSquash = true;
        else
            invalidate(e, rename);
    }
}

bool
IntegrationTable::releaseOnePinned(RenameState &rename)
{
    // Eviction priority: (1) LRU ALU entry whose register the IT alone
    // keeps alive, (2) LRU solo-pinned load/bypass entry, (3) LRU any.
    // Load and bypass entries are the ones that eliminate re-executable
    // loads, so they are worth keeping; ALU entries mostly serve squash
    // reuse and are cheap to regenerate.
    //
    // The walk follows the intrusive LRU list oldest-first, so the first
    // match in each category is that category's LRU minimum and the walk
    // can stop at the first solo-pinned ALU entry — same victim as the
    // historical whole-table scan, without touching every entry.
    auto isLoadKey = [](const ItEntry &e) {
        return e.key.op == Opcode::Ld1 || e.key.op == Opcode::Ld2 ||
            e.key.op == Opcode::Ld4 || e.key.op == Opcode::Ld8;
    };
    ItEntry *soloAlu = nullptr;
    ItEntry *soloLoad = nullptr;
    ItEntry *any = nullptr;
    for (int i = lruHead; i != -1; i = table[i].lruNext) {
        ItEntry &e = table[i];
        if (!any)
            any = &e;
        if (rename.regs().refCount(e.dst) == 1) {
            if (!isLoadKey(e)) {
                soloAlu = &e;
                break;
            }
            if (!soloLoad)
                soloLoad = &e;
        }
    }
    ItEntry *victim = soloAlu ? soloAlu : (soloLoad ? soloLoad : any);
    if (!victim)
        return false;
    ++pressureReleases;
    invalidate(*victim, rename);
    return true;
}

void
IntegrationTable::clear(RenameState &rename)
{
    for (ItEntry &e : table)
        if (e.valid)
            invalidate(e, rename);
}

std::size_t
IntegrationTable::liveEntries() const
{
    std::size_t n = 0;
    for (const ItEntry &e : table)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace svw
