/**
 * @file
 * Simple bandwidth-limited resource models: per-cycle ports and
 * occupancy-tracked buses.
 */

#ifndef SVW_MEM_PORT_HH
#define SVW_MEM_PORT_HH

#include <cstdint>

#include "base/types.hh"

namespace svw {

/**
 * A resource usable at most @p width times per cycle (e.g., cache read
 * ports, the single store-retirement port the paper's configurations
 * use). Callers try to claim a slot for the current cycle.
 */
class CyclePort
{
  public:
    explicit CyclePort(unsigned width = 1) : _width(width) {}

    /** Try to claim one slot in @p cycle. @return true on success. */
    bool tryClaim(Cycle cycle);

    /** Slots still free in @p cycle. */
    unsigned freeSlots(Cycle cycle) const;

    unsigned width() const { return _width; }
    void setWidth(unsigned w) { _width = w; }

  private:
    unsigned _width;
    Cycle lastCycle = ~Cycle(0);
    unsigned used = 0;
};

/**
 * A pipelined bus that one transfer occupies for a fixed number of
 * cycles; used for the L2 and memory buses (16 B wide, the latter at a
 * quarter of core frequency per the paper's configuration).
 */
class Bus
{
  public:
    /** @param cyclesPerLine bus occupancy of one cache-line transfer. */
    explicit Bus(unsigned cyclesPerLine) : perLine(cyclesPerLine) {}

    /**
     * Schedule a line transfer requested at @p cycle.
     * @return the cycle at which the transfer completes.
     */
    Cycle schedule(Cycle cycle);

  private:
    unsigned perLine;
    Cycle freeAt = 0;
};

} // namespace svw

#endif // SVW_MEM_PORT_HH
