#include "mem/cache.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

Cache::Cache(std::string name, const CacheParams &p, stats::StatRegistry &reg)
    : params(p),
      hits(reg, name + ".hits", "cache hits"),
      misses(reg, name + ".misses", "cache misses"),
      writebacks(reg, name + ".writebacks", "dirty lines evicted"),
      invalidations(reg, name + ".invalidations", "lines invalidated")
{
    hits.bind(&hot.hits);
    misses.bind(&hot.misses);
    svw_assert(isPowerOf2(p.lineBytes) && isPowerOf2(p.sizeBytes),
               "cache geometry must be powers of two");
    numSets = static_cast<unsigned>(p.sizeBytes / (p.lineBytes * p.assoc));
    svw_assert(numSets > 0 && isPowerOf2(numSets), "bad set count");
    offsetBits = exactLog2(p.lineBytes);
    lineMask = p.lineBytes - 1;
    lines.resize(static_cast<std::size_t>(numSets) * p.assoc);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr tag = addr >> offsetBits;
    const unsigned set = static_cast<unsigned>(tag & (numSets - 1));
    Line *base = &lines[static_cast<std::size_t>(set) * params.assoc];
    for (unsigned w = 0; w < params.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::AccessResult
Cache::access(Addr addr, bool isWrite)
{
    AccessResult res;
    if (Line *line = findLine(addr)) {
        ++hot.hits;
        line->lruStamp = ++lruCounter;
        line->dirty |= isWrite;
        res.hit = true;
        return res;
    }

    ++hot.misses;
    // Fill: choose invalid way or LRU victim.
    const Addr tag = addr >> offsetBits;
    const unsigned set = static_cast<unsigned>(tag & (numSets - 1));
    Line *base = &lines[static_cast<std::size_t>(set) * params.assoc];
    Line *victim = &base[0];
    for (unsigned w = 0; w < params.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        ++writebacks;
        res.writebackVictim = true;
    }
    victim->valid = true;
    victim->dirty = isWrite;
    victim->tag = tag;
    victim->lruStamp = ++lruCounter;
    return res;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        ++invalidations;
        return true;
    }
    return false;
}

} // namespace svw
