#include "mem/port.hh"

#include <algorithm>

namespace svw {

bool
CyclePort::tryClaim(Cycle cycle)
{
    if (cycle != lastCycle) {
        lastCycle = cycle;
        used = 0;
    }
    if (used >= _width)
        return false;
    ++used;
    return true;
}

unsigned
CyclePort::freeSlots(Cycle cycle) const
{
    if (cycle != lastCycle)
        return _width;
    return used >= _width ? 0 : _width - used;
}

Cycle
Bus::schedule(Cycle cycle)
{
    const Cycle start = std::max(cycle, freeAt);
    freeAt = start + perLine;
    return freeAt;
}

} // namespace svw
