#include "mem/hierarchy.hh"

namespace svw {

MemHierarchy::MemHierarchy(const MemParams &p, stats::StatRegistry &reg)
    : params(p),
      l1i("l1i", p.l1i, reg),
      l1d("l1d", p.l1d, reg),
      l2("l2", p.l2, reg),
      l2Bus(p.l2BusCyclesPerLine),
      memBus(p.memBusCyclesPerLine),
      dataAccesses(reg, "mem.dataAccesses", "L1D accesses"),
      instAccesses(reg, "mem.instAccesses", "L1I line fetches")
{
    dataAccesses.bind(&hot.dataAccesses);
    instAccesses.bind(&hot.instAccesses);
}

Cycle
MemHierarchy::accessData(Addr addr, bool isWrite, Cycle cycle)
{
    ++hot.dataAccesses;
    Cycle done = cycle + l1d.latency();
    if (l1d.access(addr, isWrite).hit)
        return done;

    // L1 miss: go to L2 over the L2 bus.
    Cycle l2Start = l2Bus.schedule(done);
    done = l2Start + l2.latency();
    if (l2.access(addr, false).hit)
        return done;

    // L2 miss: go to memory over the memory bus.
    Cycle memStart = memBus.schedule(done);
    return memStart + params.memLatency;
}

Cycle
MemHierarchy::accessInst(Addr addr, Cycle cycle)
{
    ++hot.instAccesses;
    Cycle done = cycle + l1i.latency();
    if (l1i.access(addr, false).hit)
        return done;

    Cycle l2Start = l2Bus.schedule(done);
    done = l2Start + l2.latency();
    if (l2.access(addr, false).hit)
        return done;

    Cycle memStart = memBus.schedule(done);
    return memStart + params.memLatency;
}

void
MemHierarchy::invalidateLine(Addr addr)
{
    l1d.invalidate(addr);
    l2.invalidate(addr);
}

} // namespace svw
