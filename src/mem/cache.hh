/**
 * @file
 * Timing-only set-associative cache model.
 *
 * Caches in this simulator track tags, LRU state, and dirty bits to
 * decide hit/miss and writeback traffic; data always lives in the
 * simulation's MemoryImage (the timing and value planes are separate,
 * which is what makes value-accurate re-execution cheap to model).
 */

#ifndef SVW_MEM_CACHE_HH
#define SVW_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "stats/stats.hh"

namespace svw {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    unsigned latency = 2;       ///< access latency in cycles (hit)
};

/**
 * Tag/LRU/dirty state for one cache. No data storage; see file comment.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheParams &params,
          stats::StatRegistry &reg);

    /** Result of a lookup+fill operation. */
    struct AccessResult
    {
        bool hit = false;
        bool writebackVictim = false;  ///< dirty line evicted
    };

    /**
     * Probe and, on miss, fill the line containing @p addr.
     * @param isWrite marks the line dirty on a write.
     */
    AccessResult access(Addr addr, bool isWrite);

    /** Probe without side effects. */
    bool probe(Addr addr) const;

    /**
     * Invalidate the line containing @p addr if present (coherence).
     * @return true if the line was present.
     */
    bool invalidate(Addr addr);

    unsigned latency() const { return params.latency; }
    unsigned lineBytes() const { return params.lineBytes; }

    /** Line-address (addr with offset bits cleared). */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask; }

    /** Bank index for an interleaved cache with @p banks banks. */
    unsigned bank(Addr addr, unsigned banks) const
    {
        return static_cast<unsigned>((addr >> offsetBits) & (banks - 1));
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    /** Dense hot-loop accumulators, bound to the Scalars below (see
     * stats::Scalar::bind). */
    struct HotCounters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    HotCounters hot;

    CacheParams params;
    unsigned numSets;
    unsigned offsetBits;
    Addr lineMask;
    std::uint64_t lruCounter = 0;
    std::vector<Line> lines;   ///< numSets * assoc, set-major

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

  public:
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar writebacks;
    stats::Scalar invalidations;
};

} // namespace svw

#endif // SVW_MEM_CACHE_HH
