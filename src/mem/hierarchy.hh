/**
 * @file
 * Two-level on-chip memory system matching the paper's configuration:
 * 32 KB 2-way 2-cycle L1 I/D, 2 MB 8-way 15-cycle unified L2, 150-cycle
 * memory, 16 B L2 and memory buses (memory bus at quarter frequency).
 * The L1D is 2-way bank-interleaved for dual load issue.
 */

#ifndef SVW_MEM_HIERARCHY_HH
#define SVW_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/port.hh"
#include "stats/stats.hh"

namespace svw {

/** Parameters for the full hierarchy. */
struct MemParams
{
    CacheParams l1i{32 * 1024, 2, 64, 2};
    CacheParams l1d{32 * 1024, 2, 64, 2};
    CacheParams l2{2 * 1024 * 1024, 8, 64, 15};
    unsigned memLatency = 150;
    unsigned l2BusCyclesPerLine = 4;    ///< 64 B line / 16 B bus
    unsigned memBusCyclesPerLine = 16;  ///< quarter-frequency 16 B bus
    unsigned l1dBanks = 2;
};

/**
 * The memory system seen by the core. All methods are timing-only;
 * values come from the simulation's MemoryImage.
 */
class MemHierarchy
{
  public:
    MemHierarchy(const MemParams &params, stats::StatRegistry &reg);

    /**
     * Timing for a data access issued at @p cycle.
     * @return cycle at which the value is available / write retires.
     */
    Cycle accessData(Addr addr, bool isWrite, Cycle cycle);

    /** Timing for an instruction fetch of the line at @p addr. */
    Cycle accessInst(Addr addr, Cycle cycle);

    /** L1D bank for address (bank conflicts limit dual load issue). */
    unsigned dataBank(Addr addr) const
    {
        return l1d.bank(addr, params.l1dBanks);
    }

    unsigned numDataBanks() const { return params.l1dBanks; }
    unsigned l1dLatency() const { return l1d.latency(); }
    unsigned lineBytes() const { return l1d.lineBytes(); }

    /**
     * Coherence invalidation from another (simulated) agent: drop the
     * line from L1D/L2. Used by the NLQ-SM invalidation injector.
     */
    void invalidateLine(Addr addr);

  private:
    MemParams params;
    Cache l1i;
    Cache l1d;
    Cache l2;
    Bus l2Bus;
    Bus memBus;

  public:
    stats::Scalar dataAccesses;
    stats::Scalar instAccesses;

  private:
    /** Dense hot-loop accumulators (stats::Scalar::bind). */
    struct HotCounters
    {
        std::uint64_t dataAccesses = 0;
        std::uint64_t instAccesses = 0;
    };
    HotCounters hot;
};

} // namespace svw

#endif // SVW_MEM_HIERARCHY_HH
