#include "prog/program.hh"

#include "base/logging.hh"

namespace svw {

void
Program::addSegment(Addr base, std::vector<std::uint8_t> bytes)
{
    _segments.push_back(Segment{base, std::move(bytes)});
}

const std::vector<PreDecodedInst> &
Program::predecoded() const
{
    if (_pre.size() != _text.size()) {
        _pre.resize(_text.size());
        for (std::size_t i = 0; i < _text.size(); ++i)
            _pre[i] = predecodeInst(_text[i]);
    }
    return _pre;
}

void
Program::validate() const
{
    svw_assert(!_text.empty(), "empty program ", _name);
    svw_assert(_entry < _text.size(), "entry out of range in ", _name);

    bool has_halt = false;
    for (std::size_t pc = 0; pc < _text.size(); ++pc) {
        const StaticInst &si = _text[pc];
        svw_assert(si.rd < numArchRegs && si.rs1 < numArchRegs &&
                   si.rs2 < numArchRegs,
                   "bad register in ", _name, " @", pc);
        if (si.isCondBranch() || si.isDirectCtrl()) {
            svw_assert(si.imm >= 0 &&
                       static_cast<std::uint64_t>(si.imm) < _text.size(),
                       "branch target out of range in ", _name, " @", pc,
                       " -> ", si.imm);
        }
        if (si.isHalt())
            has_halt = true;
    }
    svw_assert(has_halt, "program ", _name, " has no halt");
}

} // namespace svw
