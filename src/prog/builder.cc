#include "prog/builder.hh"

#include <cstring>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace svw {

ProgramBuilder::ProgramBuilder(std::string name)
    : prog(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    labelPos.push_back(-1);
    return Label{static_cast<int>(labelPos.size()) - 1};
}

void
ProgramBuilder::bind(Label l)
{
    svw_assert(l.id >= 0 && l.id < static_cast<int>(labelPos.size()),
               "bad label");
    svw_assert(labelPos[l.id] < 0, "label bound twice");
    labelPos[l.id] = static_cast<std::int64_t>(here());
}

Addr
ProgramBuilder::allocData(std::uint64_t bytes, std::uint64_t align)
{
    svw_assert(isPowerOf2(align), "alignment must be a power of two");
    dataCursor = alignUp(dataCursor, align);
    Addr base = dataCursor;
    dataCursor += bytes;
    // Zero-fill is implicit (memory images read as zero), but we record
    // the segment so tooling can see the footprint.
    return base;
}

Addr
ProgramBuilder::allocWords(const std::vector<std::uint64_t> &words)
{
    Addr base = allocData(words.size() * 8, 8);
    std::vector<std::uint8_t> bytes(words.size() * 8);
    for (std::size_t i = 0; i < words.size(); ++i)
        std::memcpy(&bytes[i * 8], &words[i], 8);
    prog.addSegment(base, std::move(bytes));
    return base;
}

Addr
ProgramBuilder::allocBytes(const std::vector<std::uint8_t> &bytes)
{
    Addr base = allocData(bytes.size(), 8);
    prog.addSegment(base, bytes);
    return base;
}

void
ProgramBuilder::emit(StaticInst si)
{
    svw_assert(!finished, "emit after finish");
    prog.text().push_back(si);
}

void
ProgramBuilder::emitBranch(Opcode op, RegIndex rs1, RegIndex rs2, Label t)
{
    svw_assert(t.id >= 0 && t.id < static_cast<int>(labelPos.size()),
               "bad label");
    fixups.push_back(Fixup{here(), t.id});
    emit(StaticInst{op, 0, rs1, rs2, 0});
}

void ProgramBuilder::nop() { emit({Opcode::Nop, 0, 0, 0, 0}); }
void ProgramBuilder::halt() { emit({Opcode::Halt, 0, 0, 0, 0}); }

#define SVW_RRR(fn, OP)                                                      \
    void ProgramBuilder::fn(RegIndex rd, RegIndex rs1, RegIndex rs2)         \
    { emit({Opcode::OP, rd, rs1, rs2, 0}); }

SVW_RRR(add, Add) SVW_RRR(sub, Sub) SVW_RRR(and_, And) SVW_RRR(or_, Or)
SVW_RRR(xor_, Xor) SVW_RRR(sll, Sll) SVW_RRR(srl, Srl) SVW_RRR(sra, Sra)
SVW_RRR(mul, Mul) SVW_RRR(slt, Slt) SVW_RRR(sltu, Sltu)
#undef SVW_RRR

#define SVW_RRI(fn, OP)                                                      \
    void ProgramBuilder::fn(RegIndex rd, RegIndex rs1, std::int64_t imm)     \
    { emit({Opcode::OP, rd, rs1, 0, imm}); }

SVW_RRI(addi, AddI) SVW_RRI(andi, AndI) SVW_RRI(ori, OrI) SVW_RRI(xori, XorI)
SVW_RRI(slli, SllI) SVW_RRI(srli, SrlI) SVW_RRI(srai, SraI) SVW_RRI(slti, SltI)
#undef SVW_RRI

void
ProgramBuilder::movi(RegIndex rd, std::int64_t imm)
{
    emit({Opcode::MovI, rd, 0, 0, imm});
}

void
ProgramBuilder::ld(unsigned size, RegIndex rd, RegIndex base, std::int64_t off)
{
    Opcode op;
    switch (size) {
      case 1: op = Opcode::Ld1; break;
      case 2: op = Opcode::Ld2; break;
      case 4: op = Opcode::Ld4; break;
      case 8: op = Opcode::Ld8; break;
      default: svw_panic("bad load size ", size);
    }
    emit({op, rd, base, 0, off});
}

void
ProgramBuilder::st(unsigned size, RegIndex data, RegIndex base,
                   std::int64_t off)
{
    Opcode op;
    switch (size) {
      case 1: op = Opcode::St1; break;
      case 2: op = Opcode::St2; break;
      case 4: op = Opcode::St4; break;
      case 8: op = Opcode::St8; break;
      default: svw_panic("bad store size ", size);
    }
    emit({op, 0, base, data, off});
}

void ProgramBuilder::ld1(RegIndex rd, RegIndex b, std::int64_t o) { ld(1, rd, b, o); }
void ProgramBuilder::ld2(RegIndex rd, RegIndex b, std::int64_t o) { ld(2, rd, b, o); }
void ProgramBuilder::ld4(RegIndex rd, RegIndex b, std::int64_t o) { ld(4, rd, b, o); }
void ProgramBuilder::ld8(RegIndex rd, RegIndex b, std::int64_t o) { ld(8, rd, b, o); }
void ProgramBuilder::st1(RegIndex d, RegIndex b, std::int64_t o) { st(1, d, b, o); }
void ProgramBuilder::st2(RegIndex d, RegIndex b, std::int64_t o) { st(2, d, b, o); }
void ProgramBuilder::st4(RegIndex d, RegIndex b, std::int64_t o) { st(4, d, b, o); }
void ProgramBuilder::st8(RegIndex d, RegIndex b, std::int64_t o) { st(8, d, b, o); }

void
ProgramBuilder::beq(RegIndex rs1, RegIndex rs2, Label t)
{
    emitBranch(Opcode::Beq, rs1, rs2, t);
}

void
ProgramBuilder::bne(RegIndex rs1, RegIndex rs2, Label t)
{
    emitBranch(Opcode::Bne, rs1, rs2, t);
}

void
ProgramBuilder::blt(RegIndex rs1, RegIndex rs2, Label t)
{
    emitBranch(Opcode::Blt, rs1, rs2, t);
}

void
ProgramBuilder::bge(RegIndex rs1, RegIndex rs2, Label t)
{
    emitBranch(Opcode::Bge, rs1, rs2, t);
}

void
ProgramBuilder::jmp(Label t)
{
    svw_assert(t.id >= 0, "bad label");
    fixups.push_back(Fixup{here(), t.id});
    emit({Opcode::Jmp, 0, 0, 0, 0});
}

void
ProgramBuilder::call(Label t)
{
    svw_assert(t.id >= 0, "bad label");
    fixups.push_back(Fixup{here(), t.id});
    emit({Opcode::Jal, regLink, 0, 0, 0});
}

void
ProgramBuilder::ret()
{
    jr(regLink);
}

void
ProgramBuilder::jr(RegIndex rs1)
{
    emit({Opcode::Jr, 0, rs1, 0, 0});
}

void
ProgramBuilder::pushLink(const std::vector<RegIndex> &extra)
{
    const std::int64_t frame = 8 * static_cast<std::int64_t>(1 + extra.size());
    addi(regSp, regSp, -frame);
    st8(regLink, regSp, 0);
    for (std::size_t i = 0; i < extra.size(); ++i)
        st8(extra[i], regSp, 8 * static_cast<std::int64_t>(i + 1));
}

void
ProgramBuilder::popLinkAndRet(const std::vector<RegIndex> &extra)
{
    const std::int64_t frame = 8 * static_cast<std::int64_t>(1 + extra.size());
    ld8(regLink, regSp, 0);
    for (std::size_t i = 0; i < extra.size(); ++i)
        ld8(extra[i], regSp, 8 * static_cast<std::int64_t>(i + 1));
    addi(regSp, regSp, frame);
    ret();
}

Program
ProgramBuilder::finish()
{
    svw_assert(!finished, "finish called twice");
    finished = true;
    for (const Fixup &f : fixups) {
        svw_assert(labelPos[f.labelId] >= 0, "unbound label ", f.labelId,
                   " in ", prog.name());
        prog.text()[f.instIdx].imm = labelPos[f.labelId];
    }
    prog.validate();
    return std::move(prog);
}

} // namespace svw
