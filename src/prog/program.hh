/**
 * @file
 * A complete mini-RISC program: text, initial data image, entry state.
 */

#ifndef SVW_PROG_PROGRAM_HH
#define SVW_PROG_PROGRAM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"

namespace svw {

/**
 * An executable workload. Text is a flat instruction vector; a PC is an
 * index into it. The initial memory image is a list of (address, bytes)
 * segments applied before execution starts.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    const std::vector<StaticInst> &text() const { return _text; }
    std::vector<StaticInst> &text() { return _text; }

    const StaticInst &inst(std::uint64_t pc) const { return _text.at(pc); }
    std::uint64_t textSize() const { return _text.size(); }

    /** Initial-memory segments (applied in order). */
    struct Segment
    {
        Addr base;
        std::vector<std::uint8_t> bytes;
    };

    const std::vector<Segment> &segments() const { return _segments; }
    void addSegment(Addr base, std::vector<std::uint8_t> bytes);

    /** Initial stack pointer (r30) value. */
    Addr stackTop() const { return _stackTop; }
    void setStackTop(Addr a) { _stackTop = a; }

    /** Entry PC (instruction index). */
    std::uint64_t entry() const { return _entry; }
    void setEntry(std::uint64_t e) { _entry = e; }

    /** Validate control-flow targets and register indices; panics if bad. */
    void validate() const;

    /**
     * Per-instruction pre-decode table, parallel to text(): entry i is
     * predecodeInst(text()[i]). Built lazily on first use and rebuilt
     * if the text has grown or shrunk since — callers that edit
     * instructions in place after a predecoded() call must not exist
     * (programs are built once, then executed). Fetch reads DynInst
     * facts from this table instead of re-running the StaticInst
     * predicate switches per dynamic instruction.
     *
     * NOT thread-safe on first call (it mutates the lazy table): a
     * Program shared across threads must have the table forced before
     * publication — harness::ProgramCache does this inside its
     * build-once slot, so cached programs are safe to share; all
     * later calls are pure reads.
     */
    const std::vector<PreDecodedInst> &predecoded() const;

  private:
    std::string _name;
    std::vector<StaticInst> _text;
    mutable std::vector<PreDecodedInst> _pre;
    std::vector<Segment> _segments;
    Addr _stackTop = 0x7fff'0000;
    std::uint64_t _entry = 0;
};

} // namespace svw

#endif // SVW_PROG_PROGRAM_HH
