#include "prog/trace.hh"

#include <cstring>
#include <fstream>

#include "base/logging.hh"

namespace svw::trace {

namespace {

constexpr char traceMagic[8] = {'S', 'V', 'W', 'T', 'R', 'A', 'C', 'E'};

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Bounds-checked little-endian reader over a byte span. */
struct Reader
{
    const std::uint8_t *p;
    std::size_t len;
    std::size_t pos = 0;
    bool bad = false;

    bool need(std::size_t n)
    {
        if (len - pos < n) { bad = true; return false; }
        return true;
    }

    std::uint8_t u8()
    {
        if (!need(1)) return 0;
        return p[pos++];
    }

    std::uint32_t u32()
    {
        if (!need(4)) return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t u64()
    {
        if (!need(8)) return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (!need(1)) return 0;
            std::uint8_t b = p[pos++];
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80)) return v;
        }
        bad = true;  // varint longer than 64 bits
        return 0;
    }

    std::string str(std::size_t n)
    {
        if (!need(n)) return {};
        std::string s(reinterpret_cast<const char *>(p + pos), n);
        pos += n;
        return s;
    }

    std::vector<std::uint8_t> bytes(std::size_t n)
    {
        if (!need(n)) return {};
        std::vector<std::uint8_t> v(p + pos, p + pos + n);
        pos += n;
        return v;
    }
};

std::vector<std::uint8_t>
encodePayload(const TraceData &t)
{
    std::vector<std::uint8_t> pay;
    putU32(pay, traceVersion);

    putU64(pay, t.sourceWorkload.size());
    pay.insert(pay.end(), t.sourceWorkload.begin(), t.sourceWorkload.end());

    putU64(pay, t.program.entry());
    putU64(pay, t.program.stackTop());

    putU64(pay, t.program.textSize());
    for (const StaticInst &si : t.program.text()) {
        pay.push_back(static_cast<std::uint8_t>(si.op));
        pay.push_back(si.rd);
        pay.push_back(si.rs1);
        pay.push_back(si.rs2);
        putU64(pay, static_cast<std::uint64_t>(si.imm));
    }

    putU64(pay, t.program.segments().size());
    for (const Program::Segment &seg : t.program.segments()) {
        putU64(pay, seg.base);
        putU64(pay, seg.bytes.size());
        pay.insert(pay.end(), seg.bytes.begin(), seg.bytes.end());
    }

    putU64(pay, t.insts);
    putU64(pay, t.counts.insts);
    putU64(pay, t.counts.loads);
    putU64(pay, t.counts.stores);
    putU64(pay, t.counts.branches);
    putU64(pay, t.counts.takenBranches);
    putU64(pay, t.counts.silentStores);
    for (std::uint64_t r : t.finalRegs)
        putU64(pay, r);

    // Committed-PC stream: first PC, then alternating sequential-run
    // lengths and zigzag deltas of each discontinuity from fall-through.
    std::vector<std::uint8_t> stream;
    const std::vector<std::uint64_t> &pcs = t.committedPcs;
    if (!pcs.empty()) {
        putVarint(stream, pcs[0]);
        std::size_t i = 1;
        while (i < pcs.size()) {
            std::uint64_t run = 0;
            while (i < pcs.size() && pcs[i] == pcs[i - 1] + 1) {
                ++run;
                ++i;
            }
            putVarint(stream, run);
            if (i < pcs.size()) {
                std::int64_t delta =
                    static_cast<std::int64_t>(pcs[i]) -
                    static_cast<std::int64_t>(pcs[i - 1] + 1);
                putVarint(stream, zigzag(delta));
                ++i;
            }
        }
    }
    putU64(pay, stream.size());
    pay.insert(pay.end(), stream.begin(), stream.end());

    return pay;
}

/** Parse a whole file image; @return false with a reason on any defect. */
bool
decodeFile(const std::vector<std::uint8_t> &file, TraceData &out,
           std::string &err)
{
    if (file.size() < sizeof(traceMagic) + 16) {
        err = "file too short to be a trace";
        return false;
    }
    if (std::memcmp(file.data(), traceMagic, sizeof(traceMagic)) != 0) {
        err = "bad magic (not an SVWTRACE file)";
        return false;
    }

    Reader hdr{file.data() + sizeof(traceMagic),
               file.size() - sizeof(traceMagic)};
    std::uint64_t payLen = hdr.u64();
    if (hdr.bad || file.size() != sizeof(traceMagic) + 8 + payLen + 8) {
        err = "truncated trace (payload length does not match file size)";
        return false;
    }

    const std::uint8_t *pay = file.data() + sizeof(traceMagic) + 8;
    Reader tail{pay + payLen, 8};
    std::uint64_t stored = tail.u64();
    if (fnv1a(pay, payLen) != stored) {
        err = "checksum mismatch (trace is corrupt)";
        return false;
    }

    Reader r{pay, payLen};
    std::uint32_t version = r.u32();
    if (r.bad) { err = "truncated trace payload"; return false; }
    if (version != traceVersion) {
        err = "trace format version " + std::to_string(version) +
              " (expected " + std::to_string(traceVersion) + ")";
        return false;
    }

    out = TraceData{};
    out.sourceWorkload = r.str(r.u64());
    out.program = Program(out.sourceWorkload);
    out.program.setEntry(r.u64());
    out.program.setStackTop(r.u64());

    std::uint64_t textCount = r.u64();
    if (r.bad || textCount > payLen) {  // 12 bytes/inst; cheap sanity bound
        err = "truncated trace payload";
        return false;
    }
    out.program.text().reserve(textCount);
    for (std::uint64_t i = 0; i < textCount && !r.bad; ++i) {
        StaticInst si;
        std::uint8_t op = r.u8();
        if (op >= static_cast<std::uint8_t>(Opcode::NumOpcodes)) {
            err = "bad opcode in trace text";
            return false;
        }
        si.op = static_cast<Opcode>(op);
        si.rd = r.u8();
        si.rs1 = r.u8();
        si.rs2 = r.u8();
        si.imm = static_cast<std::int64_t>(r.u64());
        if (si.rd >= numArchRegs || si.rs1 >= numArchRegs ||
            si.rs2 >= numArchRegs) {
            err = "bad register in trace text";
            return false;
        }
        out.program.text().push_back(si);
    }

    std::uint64_t segCount = r.u64();
    if (r.bad || segCount > payLen) {
        err = "truncated trace payload";
        return false;
    }
    for (std::uint64_t i = 0; i < segCount && !r.bad; ++i) {
        std::uint64_t base = r.u64();
        std::uint64_t len = r.u64();
        if (len > payLen) { err = "truncated trace payload"; return false; }
        out.program.addSegment(base, r.bytes(len));
    }

    out.insts = r.u64();
    out.counts.insts = r.u64();
    out.counts.loads = r.u64();
    out.counts.stores = r.u64();
    out.counts.branches = r.u64();
    out.counts.takenBranches = r.u64();
    out.counts.silentStores = r.u64();
    for (std::uint64_t &reg : out.finalRegs)
        reg = r.u64();

    std::uint64_t streamBytes = r.u64();
    if (r.bad || streamBytes != payLen - r.pos) {
        err = "truncated trace payload";
        return false;
    }

    if (out.insts > 0) {
        out.committedPcs.reserve(out.insts);
        out.committedPcs.push_back(r.varint());
        while (out.committedPcs.size() < out.insts && !r.bad) {
            std::uint64_t run = r.varint();
            if (run > out.insts - out.committedPcs.size()) {
                err = "corrupt committed-PC stream";
                return false;
            }
            for (std::uint64_t i = 0; i < run; ++i)
                out.committedPcs.push_back(out.committedPcs.back() + 1);
            if (out.committedPcs.size() < out.insts) {
                std::int64_t delta = unzigzag(r.varint());
                out.committedPcs.push_back(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(out.committedPcs.back() + 1) +
                    delta));
            }
        }
    }
    if (r.bad || r.pos != payLen) {
        err = "corrupt committed-PC stream";
        return false;
    }
    for (std::uint64_t pc : out.committedPcs) {
        if (pc >= textCount) {
            err = "committed PC out of text range";
            return false;
        }
    }
    if (out.insts != out.counts.insts) {
        err = "inconsistent instruction counts";
        return false;
    }
    if (textCount == 0 || out.program.entry() >= textCount) {
        err = "bad program entry in trace";
        return false;
    }
    return true;
}

bool
readWhole(const std::string &path, std::vector<std::uint8_t> &out,
          std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open trace file '" + path + "'";
        return false;
    }
    in.seekg(0, std::ios::end);
    std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(out.data()), size);
    if (!in) {
        err = "cannot read trace file '" + path + "'";
        return false;
    }
    return true;
}

} // namespace

TraceData
record(const Program &prog, const std::string &sourceWorkload,
       std::uint64_t maxInsts)
{
    prog.validate();

    TraceData t;
    t.sourceWorkload = sourceWorkload;
    t.program = prog;
    t.program.setName(sourceWorkload);

    Interp interp(prog);
    while (!interp.halted()) {
        if (t.committedPcs.size() >= maxInsts) {
            svw_fatal("workload '", sourceWorkload, "' did not halt within ",
                      maxInsts, " instructions; refusing to record an "
                      "unbounded trace");
        }
        t.committedPcs.push_back(interp.pc());
        interp.step();
    }

    t.counts = interp.counts();
    t.insts = t.counts.insts;
    for (unsigned r = 0; r < numArchRegs; ++r)
        t.finalRegs[r] = interp.reg(static_cast<RegIndex>(r));
    svw_assert(t.committedPcs.size() == t.insts,
               "trace stream/count mismatch for ", sourceWorkload);
    return t;
}

void
writeFile(const std::string &path, const TraceData &t)
{
    std::vector<std::uint8_t> pay = encodePayload(t);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        svw_fatal("cannot open '", path, "' for writing");
    out.write(traceMagic, sizeof(traceMagic));
    std::vector<std::uint8_t> lenAndSum;
    putU64(lenAndSum, pay.size());
    out.write(reinterpret_cast<const char *>(lenAndSum.data()), 8);
    out.write(reinterpret_cast<const char *>(pay.data()),
              static_cast<std::streamsize>(pay.size()));
    lenAndSum.clear();
    putU64(lenAndSum, fnv1a(pay.data(), pay.size()));
    out.write(reinterpret_cast<const char *>(lenAndSum.data()), 8);
    out.flush();
    if (!out)
        svw_fatal("failed writing trace file '", path, "'");
}

TraceData
readFile(const std::string &path)
{
    std::vector<std::uint8_t> file;
    std::string err;
    if (!readWhole(path, file, err))
        svw_fatal(err);
    TraceData t;
    if (!decodeFile(file, t, err))
        svw_fatal("trace file '", path, "': ", err);
    return t;
}

bool
probeFile(const std::string &path, std::string &err)
{
    std::vector<std::uint8_t> file;
    if (!readWhole(path, file, err))
        return false;
    TraceData t;
    if (!decodeFile(file, t, err)) {
        err = "trace file '" + path + "': " + err;
        return false;
    }
    return true;
}

Program
loadProgram(const std::string &path)
{
    TraceData t = readFile(path);
    Program prog = std::move(t.program);
    prog.setName("trace:" + path);
    prog.validate();
    return prog;
}

std::uint64_t
fileChecksum(const std::string &path)
{
    std::vector<std::uint8_t> file;
    std::string err;
    if (!readWhole(path, file, err))
        svw_fatal(err);
    TraceData t;
    if (!decodeFile(file, t, err))
        svw_fatal("trace file '", path, "': ", err);
    // decodeFile verified the trailing checksum matches the payload, so
    // the stored value is the payload's content identity.
    Reader tail{file.data() + file.size() - 8, 8};
    return tail.u64();
}

} // namespace svw::trace
