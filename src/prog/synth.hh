/**
 * @file
 * Seeded synthetic workload generator.
 *
 * The curated suite (prog/workloads) maps each SPEC2000int benchmark to
 * one hand-written kernel; this module generates *families* of
 * workloads from a (kind, seed, params) triple so sweeps and the
 * differential-fuzz harness can cover behaviour space instead of four
 * fixed points. Each kind has a declared behaviour profile — the
 * mispredict/miss/alias phenomena it is built to exercise and the
 * dynamic-mix bounds it promises — and every generated program is
 * differentially checked against the in-order interpreter golden model
 * (tests/test_fuzz.cc).
 *
 * Workload names are stable and fully self-describing:
 *
 *   synth:<kind>:<seed>[:key=val[,key=val...]]
 *
 * e.g. "synth:chase:7" or "synth:hashjoin:3:buckets=128". The name is
 * the complete recipe — two equal names build bit-identical programs —
 * so it participates directly in the persistent ResultCache key and in
 * the sweep engine's per-process ProgramCache, with no extra
 * invalidation plumbing.
 */

#ifndef SVW_PROG_SYNTH_HH
#define SVW_PROG_SYNTH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace svw::synth {

/** Parsed form of a "synth:..." workload name. */
struct SynthParams
{
    std::string kind;
    std::uint64_t seed = 1;
    /** Optional key=val overrides; keys must be known to the kind. */
    std::map<std::string, std::uint64_t> extra;
};

/**
 * Declared behaviour profile of a generator kind: what the kernel is
 * built to stress, plus dynamic-mix bounds (fractions of retired
 * instructions) that hold for every seed and size. The differential
 * harness asserts the bounds against the interpreter's counts, so a
 * generator change that silently alters a kind's character fails a
 * test instead of quietly skewing every figure built on it.
 */
struct Profile
{
    const char *kind;
    const char *summary;
    double minLoadFrac, maxLoadFrac;
    double minStoreFrac, maxStoreFrac;
    double minBranchFrac, maxBranchFrac;
    bool aliasHeavy;       ///< dense same-region load/store overlap
    bool forwardHeavy;     ///< short store-to-load forwarding distance
    bool mispredictHeavy;  ///< data-dependent branch outcomes
    bool missHeavy;        ///< serial pointer loads / large footprint
};

/** Generator kinds in registry order: chase, hashjoin, prodcons,
 * memcpy, branchstorm, mix. */
const std::vector<std::string> &kindNames();

bool isKind(const std::string &kind);

/** Declared profile of @p kind; panics on an unknown kind. */
const Profile &profile(const std::string &kind);

/**
 * Parse a "synth:..." name. @return false (and fill @p err with a
 * one-line reason) on an unknown kind, malformed seed, malformed or
 * unknown key=val parameter; never throws.
 */
bool parseName(const std::string &name, SynthParams &out, std::string &err);

/** Canonical name for @p p ("synth:kind:seed[:k=v,...]", keys sorted). */
std::string canonicalName(const SynthParams &p);

/**
 * Build the workload sized to roughly @p targetInsts dynamic
 * instructions. Deterministic: equal (params, target) build
 * bit-identical programs.
 */
Program make(const SynthParams &p, std::uint64_t targetInsts);

/** Name-keyed convenience; panics (svw_fatal) on a malformed name. */
Program make(const std::string &name, std::uint64_t targetInsts);

/**
 * The adversarial random-program generator (the "mix" kind, exposed
 * directly for the fuzz tests): an outer counted loop whose body is a
 * seeded mix of ALU ops, random-size loads/stores into a tiny 256-byte
 * pool (maximizing partial overlaps, silent stores, forwarding and
 * ordering violations), data-dependent store addresses, unpredictable
 * short branches, and a helper call. Always halts.
 */
Program randomProgram(std::uint64_t seed, unsigned bodyOps, unsigned iters);

} // namespace svw::synth

#endif // SVW_PROG_SYNTH_HH
