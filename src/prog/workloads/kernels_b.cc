/**
 * @file
 * Workload kernels, part B: gzip, mcf, parser, perl.{d,s}.
 */

#include "prog/workloads/workloads.hh"

#include <cstring>

#include "base/random.hh"
#include "prog/builder.hh"

namespace svw::workloads {

/**
 * gzip: LZ-style sliding-window copy. Copy operations read bytes the
 * program wrote a few iterations (a few dynamic stores) earlier, so loads
 * routinely collide with in-flight stores at small distances — heavy
 * forwarding traffic and memory-ordering stress. Literal runs rewrite
 * bytes with values that often match (silent stores).
 */
Program
makeGzip(std::uint64_t iters)
{
    ProgramBuilder b("gzip");
    constexpr std::uint64_t window = 1 << 15;

    Random rng(0x9219);
    std::vector<std::uint8_t> seed(window);
    for (auto &v : seed)
        v = static_cast<std::uint8_t>(rng.nextBounded(16));
    const Addr buf = b.allocBytes(seed);
    // The output cursor lives in memory (as a real encoder's state
    // struct would): each iteration reloads it, so the copy stores'
    // addresses depend on a load and resolve late.
    const Addr cursor = b.allocWords({64});

    const RegIndex rBuf = 1, rI = 2, rN = 3, rS = 4, rK = 5, rC = 6;
    const RegIndex rIdx = 7, rP = 8, rDist = 9, rMode = 10, rByte = 11,
        rQ = 12, rRe = 13, rAcc = 14, rCur = 15;

    b.loadAddr(rBuf, buf);
    b.loadAddr(rCur, cursor);
    b.movi(rN, static_cast<std::int64_t>(iters) + 64);
    b.movi(rS, 0x717a);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);
    b.movi(rAcc, 0);

    Label loop = b.newLabel();
    Label literal = b.newLabel();
    Label after = b.newLabel();

    b.bind(loop);
    b.ld8(rI, rCur, 0);             // reload the cursor (forwards)
    b.mul(rS, rS, rK);
    b.add(rS, rS, rC);
    b.andi(rIdx, rI, window - 1);
    b.add(rP, rBuf, rIdx);
    b.srli(rMode, rS, 13);
    b.andi(rMode, rMode, 3);
    b.beq(rMode, 0, literal);

    // copy: buf[i] = buf[i - dist], dist in [1, 8]
    b.srli(rDist, rS, 9);
    b.andi(rDist, rDist, 7);
    b.addi(rDist, rDist, 1);
    b.sub(rQ, rP, rDist);
    b.ld1(rByte, rQ, 0);            // reads a recently written byte
    b.st1(rByte, rP, 0);
    b.jmp(after);

    b.bind(literal);
    b.srli(rByte, rS, 24);
    b.andi(rByte, rByte, 15);       // small alphabet -> silent stores
    b.st1(rByte, rP, 0);

    b.bind(after);
    b.ld1(rRe, rP, 0);              // reload just-written byte
    b.add(rAcc, rAcc, rRe);
    b.addi(rI, rI, 1);
    b.st8(rI, rCur, 0);             // write the cursor back
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * mcf: serial pointer chase over a shuffled 512 KB node list with a
 * periodic write-back. The dependent-load chain caps IPC well below the
 * machine width and produces the suite's highest cache miss rate.
 */
Program
makeMcf(std::uint64_t iters)
{
    ProgramBuilder b("mcf");
    constexpr std::uint64_t nodes = 1 << 15;  // 16 B each -> 512 KB

    // Build a random Hamiltonian cycle: next[i] = perm successor.
    Random rng(0x3cf);
    std::vector<std::uint64_t> perm(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        perm[i] = i;
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.nextBounded(i + 1)]);

    const Addr pool = 0x0100'0000;  // fixed base so we can link host-side
    std::vector<std::uint64_t> init(nodes * 2);
    for (std::uint64_t i = 0; i < nodes; ++i) {
        const std::uint64_t cur = perm[i];
        const std::uint64_t nxt = perm[(i + 1) % nodes];
        init[cur * 2 + 0] = pool + nxt * 16;     // next pointer
        init[cur * 2 + 1] = rng.nextBounded(4096);  // val
    }
    std::vector<std::uint8_t> bytes(init.size() * 8);
    std::memcpy(bytes.data(), init.data(), bytes.size());

    // Network parameters re-read each iteration (RLE-visible redundancy,
    // like mcf's cost coefficients).
    const Addr params = b.allocWords({3, 17});

    const RegIndex rP = 1, rI = 2, rN = 3, rAcc = 4, rNext = 5, rV = 6,
        rT = 7, rPar = 8, rBias = 9;

    b.loadAddr(rP, pool + perm[0] * 16);
    b.loadAddr(rPar, params);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rAcc, 0);

    Label loop = b.newLabel();
    Label noStore = b.newLabel();
    b.bind(loop);
    b.ld8(rNext, rP, 0);            // serial chain load
    b.ld8(rV, rP, 8);
    b.ld8(rBias, rPar, 0);          // loop-invariant parameter reload
    b.mul(rV, rV, rBias);
    b.add(rAcc, rAcc, rV);
    b.andi(rT, rI, 3);
    b.bne(rT, 0, noStore);
    b.addi(rV, rV, 1);
    b.st8(rV, rP, 8);               // periodic write-back
    b.bind(noStore);
    b.add(rP, rNext, 0);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();

    Program p = b.finish();
    p.addSegment(pool, std::move(bytes));
    return p;
}

/**
 * parser: an expression-stack machine driven by a random opcode tape.
 * Push operations store to an explicit operand stack; pop operations load
 * the values right back — the suite's densest store-to-load forwarding
 * through memory, mirroring parser's deep recursion behaviour.
 */
Program
makeParser(std::uint64_t iters)
{
    ProgramBuilder b("parser");
    constexpr std::uint64_t tapeLen = 1 << 12;

    Random rng(0x9a45e4);
    std::vector<std::uint8_t> tape(tapeLen);
    for (auto &v : tape)
        v = static_cast<std::uint8_t>(rng.nextBounded(256));
    const Addr tapeA = b.allocBytes(tape);
    const Addr stackA = b.allocData(4096 * 8);
    // Grammar globals re-read per token (RLE-visible redundancy).
    const Addr globals = b.allocWords({tapeA});

    const RegIndex rTape = 1, rSp = 2, rI = 3, rN = 4, rOp = 5, rT = 6;
    const RegIndex rA = 7, rB = 8, rDepth = 9, rAcc = 10, rVal = 11,
        rLim = 12, rGlob = 13;

    b.loadAddr(rGlob, globals);
    b.loadAddr(rSp, stackA);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rDepth, 0);
    b.movi(rAcc, 0);
    b.movi(rLim, 512);

    Label loop = b.newLabel();
    Label doPush = b.newLabel();
    Label doPop = b.newLabel();
    Label next = b.newLabel();

    b.bind(loop);
    b.ld8(rTape, rGlob, 0);         // loop-invariant tape pointer
    b.andi(rT, rI, tapeLen - 1);
    b.add(rT, rT, rTape);
    b.ld1(rOp, rT, 0);              // opcode byte
    // pop needs depth >= 2; also force pops when deep
    b.bge(rDepth, rLim, doPop);
    b.slti(rT, rDepth, 2);
    b.bne(rT, 0, doPush);
    b.andi(rT, rOp, 3);
    b.beq(rT, 0, doPop);            // 1-in-4 ops is a reduce

    b.bind(doPush);
    b.add(rVal, rOp, rI);
    b.st8(rVal, rSp, 0);            // push
    b.addi(rSp, rSp, 8);
    b.addi(rDepth, rDepth, 1);
    b.jmp(next);

    b.bind(doPop);
    b.addi(rSp, rSp, -8);
    b.ld8(rA, rSp, 0);              // pop (forwards from recent push)
    b.addi(rSp, rSp, -8);
    b.ld8(rB, rSp, 0);
    b.add(rA, rA, rB);
    b.st8(rA, rSp, 0);              // push result
    b.addi(rSp, rSp, 8);
    b.addi(rDepth, rDepth, -1);
    b.add(rAcc, rAcc, rA);

    b.bind(next);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * perl: string hashing into an association table. The unrolled byte-hash
 * loop issues bursts of loads with a serial multiply chain; the table
 * update is a read-modify-write. Variant d uses longer strings and a
 * small hot table; variant s shorter strings and a large, miss-prone one.
 */
Program
makePerl(std::uint64_t iters, unsigned variant)
{
    ProgramBuilder b(variant == 0 ? "perl.d" : "perl.s");
    constexpr std::uint64_t nStrings = 64;
    const unsigned strLen = variant == 0 ? 16 : 8;
    const std::uint64_t tblEntries = variant == 0 ? 256 : 8192;

    Random rng(0xbe71 + variant);
    std::vector<std::uint8_t> strs(nStrings * 16);
    for (auto &v : strs)
        v = static_cast<std::uint8_t>(rng.nextBounded(96) + 32);
    const Addr strTbl = b.allocBytes(strs);
    const Addr hashTbl = b.allocData(tblEntries * 8);

    const RegIndex rStr = 1, rHt = 2, rI = 3, rN = 4, rS = 5, rK = 6,
        rC = 7;
    const RegIndex rBase = 8, rH = 9, rCh = 10, rT = 11, rBkt = 12,
        rCnt = 13, rAcc = 14;

    b.loadAddr(rStr, strTbl);
    b.loadAddr(rHt, hashTbl);
    b.movi(rI, 0);
    b.movi(rAcc, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rS, 0x9e21 + variant);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);

    Label loop = b.newLabel();
    b.bind(loop);
    b.mul(rS, rS, rK);
    b.add(rS, rS, rC);
    b.srli(rBase, rS, 7);
    b.andi(rBase, rBase, nStrings - 1);
    b.slli(rBase, rBase, 4);        // 16-byte string slots
    b.add(rBase, rBase, rStr);
    b.movi(rH, 0);
    for (unsigned j = 0; j < strLen; ++j) {
        b.ld1(rCh, rBase, j);       // string byte
        b.slli(rT, rH, 5);
        b.sub(rT, rT, rH);          // h*31
        b.add(rH, rT, rCh);
    }
    // Bucket selection hangs off only the first string byte so the
    // table store's address resolves with a short chain; the full hash
    // in rH feeds a checksum register (keeps every byte load live).
    b.ld1(rT, rBase, 0);
    b.slli(rT, rT, 3);
    b.andi(rBkt, rT, static_cast<std::int64_t>((tblEntries - 1) << 3));
    b.add(rBkt, rBkt, rHt);
    b.ld8(rCnt, rBkt, 0);           // table RMW
    b.addi(rCnt, rCnt, 1);
    b.st8(rCnt, rBkt, 0);
    b.add(rAcc, rAcc, rH);          // checksum of the full hash
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

} // namespace svw::workloads
