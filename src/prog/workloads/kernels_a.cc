/**
 * @file
 * Workload kernels, part A: bzip2, crafty, eon.{c,k,r}, gap, gcc.
 * See workloads.hh for the phenomena each kernel is designed to exhibit.
 */

#include "prog/workloads/workloads.hh"

#include "base/random.hh"
#include "prog/builder.hh"

namespace svw::workloads {

/**
 * bzip2: byte histogram + output transform over a 16 KB buffer.
 * Read-modify-write on histogram counters gives short store-to-load
 * forwarding chains whenever a byte value repeats within the window;
 * the out-buffer write/reload pair forwards on every iteration.
 */
Program
makeBzip2(std::uint64_t iters)
{
    ProgramBuilder b("bzip2");
    constexpr std::uint64_t bufBytes = 1 << 14;

    Random rng(0xb21f);
    std::vector<std::uint8_t> data(bufBytes);
    for (auto &v : data)
        v = static_cast<std::uint8_t>(rng.nextBounded(64));  // skewed bytes
    const Addr buf = b.allocBytes(data);
    const Addr tbl = b.allocData(256 * 8);
    const Addr out = b.allocData(bufBytes);

    const RegIndex rBuf = 1, rI = 2, rN = 3, rTbl = 4, rOut = 5;
    const RegIndex rIdx = 6, rPtr = 7, rByte = 8, rTp = 9, rCnt = 10;
    const RegIndex rOp = 11, rRe = 12, rAcc = 13;

    b.loadAddr(rBuf, buf);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.loadAddr(rTbl, tbl);
    b.loadAddr(rOut, out);
    b.movi(rAcc, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(rIdx, rI, bufBytes - 1);
    b.add(rPtr, rBuf, rIdx);
    b.ld1(rByte, rPtr, 0);          // input byte
    b.slli(rTp, rByte, 3);
    b.add(rTp, rTp, rTbl);
    b.ld8(rCnt, rTp, 0);            // histogram RMW
    b.addi(rCnt, rCnt, 1);
    b.st8(rCnt, rTp, 0);
    b.add(rOp, rOut, rIdx);
    b.st1(rByte, rOp, 0);           // transform write...
    b.ld1(rRe, rOp, 0);             // ...and immediate reload (forwarding)
    b.add(rAcc, rAcc, rRe);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * crafty: bitboard-style computation — table lookup followed by a long
 * register-serial popcount. Low store density, moderate load density,
 * high ALU content; a "compute" benchmark with few re-execution hazards.
 */
Program
makeCrafty(std::uint64_t iters)
{
    ProgramBuilder b("crafty");
    constexpr std::uint64_t tblWords = 1024;

    Random rng(0xc4af7e);
    std::vector<std::uint64_t> boards(tblWords);
    for (auto &v : boards)
        v = rng.next();
    const Addr tbl = b.allocWords(boards);
    const Addr res = b.allocData(64);
    // Search-state struct: the board-table pointer is re-read from it
    // every iteration (compilers cannot hoist it past the result spill).
    const Addr state = b.allocWords({tbl});

    const RegIndex rTbl = 1, rI = 2, rN = 3, rS = 4, rIdx = 5, rX = 6;
    const RegIndex rT = 7, rM1 = 8, rM2 = 9, rM3 = 10, rAcc = 11;
    const RegIndex rK = 12, rC = 13, rRes = 14, rT2 = 15, rSt = 16;

    b.loadAddr(rSt, state);
    b.loadAddr(rRes, res);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rS, 0x2545f4914f6cdd1d);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);
    b.movi(rM1, 0x5555555555555555);
    b.movi(rM2, 0x3333333333333333);
    b.movi(rM3, 0x0f0f0f0f0f0f0f0f);
    b.movi(rAcc, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(rTbl, rSt, 0);            // reload the board-table pointer
    b.mul(rS, rS, rK);              // LCG step
    b.add(rS, rS, rC);
    b.srli(rIdx, rS, 22);
    b.andi(rIdx, rIdx, tblWords - 1);
    b.slli(rIdx, rIdx, 3);
    b.add(rIdx, rIdx, rTbl);
    b.ld8(rX, rIdx, 0);             // bitboard fetch
    // popcount(x): x -= (x>>1)&m1; x = (x&m2)+((x>>2)&m2);
    //              x = (x+(x>>4))&m3; x *= 0x0101...; x >>= 56
    b.srli(rT, rX, 1);
    b.and_(rT, rT, rM1);
    b.sub(rX, rX, rT);
    b.srli(rT, rX, 2);
    b.and_(rT, rT, rM2);
    b.and_(rX, rX, rM2);
    b.add(rX, rX, rT);
    b.srli(rT, rX, 4);
    b.add(rX, rX, rT);
    b.and_(rX, rX, rM3);
    b.movi(rT2, 0x0101010101010101);
    b.mul(rX, rX, rT2);
    b.srli(rX, rX, 56);
    b.add(rAcc, rAcc, rX);
    b.andi(rT, rI, 7);
    Label noStore = b.newLabel();
    b.bne(rT, 0, noStore);
    b.st8(rAcc, rRes, 0);           // occasional result spill
    b.bind(noStore);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * eon: per-object "shading" function called in a loop. The call/return
 * discipline pushes and pops the link register and two saved registers
 * through the stack, creating dense, short-distance store-to-load
 * forwarding (the FSQ-heavy behaviour the paper reports for eon).
 * Variants differ in object-set footprint and per-object compute.
 */
Program
makeEon(std::uint64_t iters, unsigned variant)
{
    const char *names[] = {"eon.c", "eon.k", "eon.r"};
    ProgramBuilder b(names[variant]);
    const std::uint64_t objs = variant == 0 ? 256 : variant == 1 ? 1024 : 4096;
    const unsigned shift = variant + 1;

    Random rng(0xe0 + variant);
    std::vector<std::uint64_t> init(objs * 4);
    for (auto &v : init)
        v = rng.next() & 0xffff;
    const Addr arr = b.allocWords(init);

    const RegIndex rArr = 1, rI = 2, rN = 3, rObj = 20, rAcc = 21;
    const RegIndex rX = 22, rY = 4, rZ = 5, rT = 6, rU = 7, rW = 8;

    Label entry = b.newLabel();
    Label shade = b.newLabel();
    b.jmp(entry);

    // --- uint64 shade(rObj): reads x,y,z fields, writes & reloads w ---
    b.bind(shade);
    b.pushLink({rX, rAcc});
    b.ld8(rX, rObj, 0);
    b.ld8(rY, rObj, 8);
    b.ld8(rZ, rObj, 16);
    b.movi(rT, 3);
    b.mul(rT, rX, rT);
    b.add(rT, rT, rY);
    b.xor_(rU, rT, rZ);
    b.srli(rU, rU, shift);
    b.st8(rU, rObj, 24);            // write w field
    b.ld8(rW, rObj, 24);            // reload (in-flight forward)
    b.add(rAcc, rAcc, rW);
    b.st8(rAcc, rObj, 16);          // update z for next visit
    b.popLinkAndRet({rX, rAcc});

    // --- main loop ---
    b.bind(entry);
    b.loadAddr(rArr, arr);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rAcc, 0);
    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(rT, rI, objs - 1);
    b.slli(rT, rT, 5);              // 32-byte objects
    b.add(rObj, rArr, rT);
    b.call(shade);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * gap: dense vector multiply-accumulate, c[i] += a[i] * b[i]. Iterations
 * are independent so baseline IPC is high; store addresses are always
 * known early, so few loads are marked under NLQ.
 */
Program
makeGap(std::uint64_t iters)
{
    ProgramBuilder b("gap");
    constexpr std::uint64_t n = 1 << 13;

    Random rng(0x9a9);
    std::vector<std::uint64_t> va(n), vb(n), vc(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        va[i] = rng.nextBounded(1000);
        vb[i] = rng.nextBounded(1000);
        vc[i] = 0;
    }
    // Stagger the arrays by a few cache lines so the three same-index
    // streams do not land in the same L1D set (the arrays are otherwise
    // a multiple of the set span apart and would conflict-miss forever).
    const Addr a = b.allocWords(va);
    b.allocData(5 * 64);
    const Addr bb = b.allocWords(vb);
    b.allocData(9 * 64);
    const Addr c = b.allocWords(vc);
    // Vector descriptor: the kernel re-reads the base pointers through a
    // stable register every iteration, as compiled code does when alias
    // analysis cannot hoist them — prime redundant-load-elimination food.
    const Addr desc = b.allocWords({a, bb, c});

    const RegIndex rA = 1, rB = 2, rC = 3, rI = 4, rN = 5;
    const RegIndex rT = 6, rX = 7, rY = 8, rZ = 9, rPa = 10, rPb = 11,
        rPc = 12, rDesc = 13;

    b.loadAddr(rDesc, desc);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));

    Label loop = b.newLabel();
    b.bind(loop);
    b.ld8(rA, rDesc, 0);            // loop-invariant pointer reloads
    b.ld8(rB, rDesc, 8);
    b.ld8(rC, rDesc, 16);
    b.andi(rT, rI, n - 1);
    b.slli(rT, rT, 3);
    b.add(rPa, rA, rT);
    b.add(rPb, rB, rT);
    b.add(rPc, rC, rT);
    b.ld8(rX, rPa, 0);
    b.ld8(rY, rPb, 0);
    b.ld8(rZ, rPc, 0);
    b.mul(rX, rX, rY);
    b.add(rZ, rZ, rX);
    b.st8(rZ, rPc, 0);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * gcc: symbol-table hash chains with insertion. Chain walking issues
 * dependent pointer loads; insertions store through just-computed
 * pointers, so younger loads frequently issue past stores with
 * unresolved addresses (NLQ-LS marked loads, occasional violations).
 */
Program
makeGcc(std::uint64_t iters)
{
    ProgramBuilder b("gcc");
    constexpr std::uint64_t buckets = 512;
    constexpr std::uint64_t poolNodes = 2048;  // 32 B stride

    const Addr ht = b.allocData(buckets * 8);
    const Addr pool = b.allocData(poolNodes * 32);

    const RegIndex rHt = 1, rPool = 2, rN = 3, rI = 4, rS = 5, rCur = 6;
    const RegIndex rMax = 7, rK = 8, rC = 9, rKey = 10, rBkt = 11,
        rBp = 12, rP = 13, rSteps = 14, rNk = 15, rV = 16, rNode = 17,
        rHead = 18;

    b.loadAddr(rHt, ht);
    b.loadAddr(rPool, pool);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rI, 0);
    b.movi(rS, 0x6cc);
    b.movi(rCur, 0);
    b.movi(rMax, 8);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);

    Label loop = b.newLabel();
    Label walk = b.newLabel();
    Label found = b.newLabel();
    Label notfound = b.newLabel();
    Label cont = b.newLabel();

    b.bind(loop);
    b.mul(rS, rS, rK);
    b.add(rS, rS, rC);
    b.srli(rKey, rS, 20);
    b.andi(rKey, rKey, 0x3ff);      // 1024 distinct keys
    b.addi(rKey, rKey, 1);          // keys are non-zero
    b.andi(rBkt, rKey, buckets - 1);
    b.slli(rBkt, rBkt, 3);
    b.add(rBp, rBkt, rHt);          // &ht[bucket]
    b.ld8(rP, rBp, 0);              // head
    b.movi(rSteps, 0);
    b.bind(walk);
    b.beq(rP, 0, notfound);
    b.ld8(rNk, rP, 0);              // node.key
    b.beq(rNk, rKey, found);
    b.ld8(rP, rP, 8);               // node.next (dependent pointer load)
    b.addi(rSteps, rSteps, 1);
    b.blt(rSteps, rMax, walk);
    b.jmp(notfound);

    b.bind(found);
    b.ld8(rV, rP, 16);
    b.addi(rV, rV, 1);
    b.st8(rV, rP, 16);              // hit-count RMW
    b.jmp(cont);

    b.bind(notfound);
    b.andi(rNode, rCur, poolNodes - 1);
    b.slli(rNode, rNode, 5);
    b.add(rNode, rNode, rPool);
    b.st8(rKey, rNode, 0);          // node.key = key
    b.ld8(rHead, rBp, 0);
    b.st8(rHead, rNode, 8);         // node.next = head
    b.st8(rNode, rBp, 0);           // ht[bucket] = node
    b.addi(rCur, rCur, 1);

    b.bind(cont);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

} // namespace svw::workloads
