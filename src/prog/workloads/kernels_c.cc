/**
 * @file
 * Workload kernels, part C: twolf, vortex, vpr.{p,r}.
 */

#include "prog/workloads/workloads.hh"

#include "base/random.hh"
#include "prog/builder.hh"

namespace svw::workloads {

/**
 * twolf: simulated-annealing-style cell swaps. Two pseudo-random cells
 * are loaded and conditionally swapped; the swap stores write to the
 * addresses just loaded, and rejected moves store the unchanged value
 * back (silent stores — re-executions that SVW cannot filter). Highly
 * branchy and the suite's most aggressive load-speculation workload.
 */
Program
makeTwolf(std::uint64_t iters)
{
    ProgramBuilder b("twolf");
    constexpr std::uint64_t cells = 4096;  // 16 B each

    Random rng(0x79021f);
    std::vector<std::uint64_t> init(cells * 2);
    for (std::uint64_t i = 0; i < cells; ++i) {
        init[i * 2 + 0] = rng.nextBounded(100000);  // pos
        init[i * 2 + 1] = rng.nextBounded(64);      // gain
    }
    const Addr arr = b.allocWords(init);

    // Candidate cell indices live in a net-list style index array, so a
    // swap's store addresses depend on loads (late store resolution —
    // exactly what makes twolf the paper's most re-execution-heavy
    // NLQ-LS benchmark).
    constexpr std::uint64_t idxLen = 2048;
    std::vector<std::uint64_t> idxInit(idxLen);
    for (auto &v : idxInit)
        v = rng.nextBounded(cells);
    const Addr idxArr = b.allocWords(idxInit);

    const RegIndex rArr = 1, rI = 2, rN = 3, rS = 4, rK = 5, rC = 6;
    const RegIndex rA = 7, rB = 8, rPa = 9, rPb = 10, rXa = 11, rXb = 12,
        rAcc = 13, rT = 14, rIdx = 15;

    b.loadAddr(rArr, arr);
    b.loadAddr(rIdx, idxArr);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rS, 0x7011f);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);
    b.movi(rAcc, 0);

    Label loop = b.newLabel();
    Label reject = b.newLabel();
    Label next = b.newLabel();

    b.bind(loop);
    b.mul(rS, rS, rK);
    b.add(rS, rS, rC);
    b.srli(rA, rS, 10);
    b.andi(rA, rA, idxLen - 1);
    b.srli(rB, rS, 34);
    b.andi(rB, rB, idxLen - 1);
    b.slli(rA, rA, 3);
    b.add(rA, rA, rIdx);
    b.ld8(rA, rA, 0);               // cell id from the index array
    b.slli(rB, rB, 3);
    b.add(rB, rB, rIdx);
    b.ld8(rB, rB, 0);
    b.slli(rPa, rA, 4);
    b.add(rPa, rPa, rArr);
    b.slli(rPb, rB, 4);
    b.add(rPb, rPb, rArr);
    b.ld8(rXa, rPa, 0);
    b.ld8(rXb, rPb, 0);
    b.bge(rXb, rXa, reject);
    b.st8(rXb, rPa, 0);             // accept: swap positions
    b.st8(rXa, rPb, 0);
    b.add(rAcc, rAcc, rXa);
    b.jmp(next);
    b.bind(reject);
    b.st8(rXa, rPa, 0);             // silent store (value unchanged)
    b.addi(rT, rXb, 0);
    b.add(rAcc, rAcc, rT);
    b.bind(next);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * vortex: database record copy with validation reloads. Each iteration
 * moves a 64-byte record field by field (8 loads + 8 stores) and then
 * re-reads two destination fields. Independent iterations give the
 * suite's highest IPC and store density — the workload that saturates a
 * single store-retirement port and suffers most from unfiltered
 * re-execution (the paper's worst SSQ case).
 */
Program
makeVortex(std::uint64_t iters)
{
    ProgramBuilder b("vortex");
    // 16 KB + 16 KB: L1-resident, so throughput is bound by the store
    // ports rather than misses — vortex's high-IPC, store-dense profile.
    constexpr std::uint64_t records = 256;  // 64 B each

    Random rng(0x0047e);
    std::vector<std::uint64_t> init(records * 8);
    for (auto &v : init)
        v = rng.next() & 0xffffff;
    // Offset dst by a few lines so src/dst record pairs do not share an
    // L1D set (the tables are a multiple of the set span apart).
    const Addr src = b.allocWords(init);
    b.allocData(7 * 64);
    const Addr dst = b.allocData(records * 64);

    const RegIndex rSrc = 1, rDst = 2, rI = 3, rN = 4, rT = 5, rPs = 6,
        rPd = 7, rAcc = 8;
    const RegIndex f0 = 9, f1 = 10, f2 = 11, f3 = 12, f4 = 13, f5 = 14,
        f6 = 15, f7 = 16, rV0 = 17, rV1 = 18, rS = 19, rK = 20, rC = 21;

    b.loadAddr(rSrc, src);
    b.loadAddr(rDst, dst);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rAcc, 0);
    b.movi(rS, 0x0047e1);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);

    Label loop = b.newLabel();
    b.bind(loop);
    // Records are visited in query order (pseudo-random), not stride
    // order — a regular stride would structurally alias load granules
    // with fixed-distance store granules in any power-of-two SSBF.
    b.mul(rS, rS, rK);
    b.add(rS, rS, rC);
    b.srli(rT, rS, 17);
    b.andi(rT, rT, records - 1);
    b.slli(rT, rT, 6);
    b.add(rPs, rSrc, rT);
    b.add(rPd, rDst, rT);
    const RegIndex fields[8] = {f0, f1, f2, f3, f4, f5, f6, f7};
    for (int j = 0; j < 8; ++j)
        b.ld8(fields[j], rPs, 8 * j);
    for (int j = 0; j < 8; ++j)
        b.st8(fields[j], rPd, 8 * j);
    b.ld8(rV0, rPd, 0);             // validation reloads (forward)
    b.ld8(rV1, rPd, 56);
    b.add(rAcc, rAcc, rV0);
    b.add(rAcc, rAcc, rV1);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

/**
 * vpr: routing-grid occupancy updates. Random (x, y) cells are read
 * together with a neighbour, then conditionally incremented or written
 * back unchanged (silent store). Variant p favours updates; variant r is
 * read-heavier with a larger grid.
 */
Program
makeVpr(std::uint64_t iters, unsigned variant)
{
    ProgramBuilder b(variant == 0 ? "vpr.p" : "vpr.r");
    const unsigned logDim = variant == 0 ? 6 : 7;  // 64x64 or 128x128
    const std::uint64_t dim = 1ull << logDim;

    Random rng(0x0b90 + variant);
    std::vector<std::uint64_t> init(dim * dim);
    for (auto &v : init)
        v = rng.nextBounded(8);
    const Addr grid = b.allocWords(init);

    const RegIndex rGrid = 1, rI = 2, rN = 3, rS = 4, rK = 5, rC = 6;
    const RegIndex rX = 7, rY = 8, rP = 9, rOcc = 10, rNb = 11, rT = 12,
        rAcc = 13;

    b.loadAddr(rGrid, grid);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rS, 0x09b0e + variant);
    b.movi(rK, 0x5851f42d4c957f2d);
    b.movi(rC, 0x14057b7ef767814f);
    b.movi(rAcc, 0);

    Label loop = b.newLabel();
    Label silent = b.newLabel();
    Label next = b.newLabel();

    b.bind(loop);
    b.mul(rS, rS, rK);
    b.add(rS, rS, rC);
    b.srli(rX, rS, 11);
    b.andi(rX, rX, dim - 1);
    b.srli(rY, rS, 33);
    b.andi(rY, rY, dim - 2);        // keep x+1 neighbour in range
    b.slli(rP, rY, logDim);
    b.or_(rP, rP, rX);
    b.slli(rP, rP, 3);
    b.add(rP, rP, rGrid);
    b.ld8(rOcc, rP, 0);
    b.ld8(rNb, rP, 8);
    b.add(rT, rOcc, rNb);
    b.andi(rT, rT, variant == 0 ? 1 : 3);
    b.bne(rT, 0, silent);
    b.addi(rOcc, rOcc, 1);
    b.st8(rOcc, rP, 0);             // accept: bump occupancy
    b.jmp(next);
    b.bind(silent);
    b.st8(rOcc, rP, 0);             // reject: silent store
    b.bind(next);
    b.add(rAcc, rAcc, rOcc);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

} // namespace svw::workloads
