#include "prog/workloads/workloads.hh"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"
#include "prog/synth.hh"
#include "prog/trace.hh"

namespace svw::workloads {

namespace {

struct Entry
{
    const char *name;
    Program (*make)(std::uint64_t iters);
    /** Rough dynamic instructions per main-loop iteration, used to turn a
     * dynamic-instruction target into a trip count. */
    std::uint64_t instsPerIter;
};

Program makeEonC(std::uint64_t i) { return makeEon(i, 0); }
Program makeEonK(std::uint64_t i) { return makeEon(i, 1); }
Program makeEonR(std::uint64_t i) { return makeEon(i, 2); }
Program makePerlD(std::uint64_t i) { return makePerl(i, 0); }
Program makePerlS(std::uint64_t i) { return makePerl(i, 1); }
Program makeVprP(std::uint64_t i) { return makeVpr(i, 0); }
Program makeVprR(std::uint64_t i) { return makeVpr(i, 1); }

constexpr const char *synthPrefix = "synth:";
constexpr const char *tracePrefix = "trace:";

bool
hasPrefix(const std::string &name, const char *prefix)
{
    return name.rfind(prefix, 0) == 0;
}

const Entry table[] = {
    {"bzip2",  makeBzip2,  24},
    {"crafty", makeCrafty, 30},
    {"eon.c",  makeEonC,   60},
    {"eon.k",  makeEonK,   60},
    {"eon.r",  makeEonR,   60},
    {"gap",    makeGap,    18},
    {"gcc",    makeGcc,    40},
    {"gzip",   makeGzip,   16},
    {"mcf",    makeMcf,    14},
    {"parser", makeParser, 45},
    {"perl.d", makePerlD,  55},
    {"perl.s", makePerlS,  55},
    {"twolf",  makeTwolf,  30},
    {"vortex", makeVortex, 45},
    {"vpr.p",  makeVprP,   28},
    {"vpr.r",  makeVprR,   28},
};

} // namespace

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : table)
            v.push_back(e.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
fig8Names()
{
    static const std::vector<std::string> names = {
        "crafty", "gcc", "perl.d", "vortex", "vpr.r",
    };
    return names;
}

const std::vector<std::string> &
synthSuiteNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const std::string &kind : synth::kindNames())
            v.push_back(std::string(synthPrefix) + kind + ":1");
        return v;
    }();
    return names;
}

bool
validate(const std::string &name, std::string &err)
{
    if (hasPrefix(name, synthPrefix)) {
        synth::SynthParams p;
        return synth::parseName(name, p, err);
    }
    if (hasPrefix(name, tracePrefix))
        return trace::probeFile(name.substr(std::strlen(tracePrefix)), err);
    for (const Entry &e : table)
        if (name == e.name)
            return true;
    err = "unknown workload '" + name + "'";
    return false;
}

bool
isKnown(const std::string &name)
{
    std::string err;
    return validate(name, err);
}

std::string
cacheKeyAugment(const std::string &name)
{
    if (!hasPrefix(name, tracePrefix))
        return "";
    std::uint64_t sum =
        trace::fileChecksum(name.substr(std::strlen(tracePrefix)));
    std::ostringstream os;
    os << "|trace.version=" << trace::traceVersion
       << "|trace.payload=" << std::hex << std::setfill('0') << std::setw(16)
       << sum;
    return os.str();
}

Program
make(const std::string &name, std::uint64_t targetInsts)
{
    if (hasPrefix(name, synthPrefix))
        return synth::make(name, targetInsts);
    if (hasPrefix(name, tracePrefix))
        return trace::loadProgram(name.substr(std::strlen(tracePrefix)));
    for (const Entry &e : table) {
        if (name == e.name) {
            std::uint64_t iters =
                std::max<std::uint64_t>(1, targetInsts / e.instsPerIter);
            return e.make(iters);
        }
    }
    svw_fatal("unknown workload '", name, "'");
}

} // namespace svw::workloads
