/**
 * @file
 * Synthetic SPEC2000int stand-in workloads.
 *
 * The paper evaluates on the SPEC2000 integer suite compiled for Alpha.
 * We cannot run those binaries, so each benchmark on the paper's x-axis
 * is mapped to a mini-RISC kernel whose memory behaviour exercises the
 * phenomena the paper's results depend on:
 *
 *  - store-to-load forwarding density and distance (FSQ pressure, the
 *    "update SVW on store-forward" optimization),
 *  - loads issuing past stores with unresolved addresses (NLQ-LS marked
 *    loads, memory-ordering violations, store-sets training),
 *  - load redundancy visible to register integration (RLE rate),
 *  - silent stores (re-executions that SVW cannot filter),
 *  - baseline IPC and store density (sensitivity to the shared data-cache
 *    commit/re-execute port), and
 *  - cache footprint (miss-rate spread across the suite).
 *
 * See DESIGN.md section 3 for the benchmark-to-kernel mapping rationale.
 */

#ifndef SVW_PROG_WORKLOADS_WORKLOADS_HH
#define SVW_PROG_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace svw::workloads {

/**
 * Names in the paper's figure order: bzip2 crafty eon.c eon.k eon.r gap
 * gcc gzip mcf parser perl.d perl.s twolf vortex vpr.p vpr.r.
 */
const std::vector<std::string> &suiteNames();

/** A short subset used by Figure 8 (crafty gcc perl.d vortex vpr.r). */
const std::vector<std::string> &fig8Names();

/**
 * One "synth:<kind>:1" name per generator kind (prog/synth) — a ready
 * suite for sweeps that want the full behaviour-space spread.
 */
const std::vector<std::string> &synthSuiteNames();

/**
 * Build the named workload sized to roughly @p targetInsts dynamic
 * instructions. Accepts the curated suite names, "synth:..." generator
 * names (prog/synth), and "trace:<file>" replays (prog/trace). Panics
 * (fatal) on an unknown or malformed name and on a bad trace file.
 */
Program make(const std::string &name, std::uint64_t targetInsts);

/**
 * True if @p name resolves to a buildable workload. For "synth:" names
 * this parses the full recipe; for "trace:" names it opens and verifies
 * the file. Never throws.
 */
bool isKnown(const std::string &name);

/**
 * Like isKnown but fills @p err with a one-line reason on failure —
 * the bench flag layer's validation path for --workload=.
 */
bool validate(const std::string &name, std::string &err);

/**
 * Extra material the persistent ResultCache must mix into a cell key
 * for @p name beyond the name itself. Empty for curated and synth
 * workloads (their names are complete recipes); for "trace:<file>" it
 * pins the file's content checksum, so rewriting the trace invalidates
 * cached results even though the name is unchanged. Fatal on an
 * unreadable/corrupt trace file.
 */
std::string cacheKeyAugment(const std::string &name);

// Individual kernel constructors (exposed for unit tests and examples).
// @p iters scales the main loop trip count.
Program makeBzip2(std::uint64_t iters);
Program makeCrafty(std::uint64_t iters);
Program makeEon(std::uint64_t iters, unsigned variant);  // 0=c 1=k 2=r
Program makeGap(std::uint64_t iters);
Program makeGcc(std::uint64_t iters);
Program makeGzip(std::uint64_t iters);
Program makeMcf(std::uint64_t iters);
Program makeParser(std::uint64_t iters);
Program makePerl(std::uint64_t iters, unsigned variant);  // 0=d 1=s
Program makeTwolf(std::uint64_t iters);
Program makeVortex(std::uint64_t iters);
Program makeVpr(std::uint64_t iters, unsigned variant);  // 0=p 1=r

} // namespace svw::workloads

#endif // SVW_PROG_WORKLOADS_WORKLOADS_HH
