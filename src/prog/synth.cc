#include "prog/synth.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "base/random.hh"
#include "prog/builder.hh"

namespace svw::synth {

namespace {

/** Clamp to [lo, hi] and round up to a power of two (mask-indexed
 * tables need it; callers' figure names keep the requested value). */
std::uint64_t
po2Clamp(std::uint64_t v, std::uint64_t lo, std::uint64_t hi)
{
    v = std::clamp(v, lo, hi);
    std::uint64_t p = lo;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint64_t
param(const SynthParams &p, const char *key, std::uint64_t dflt)
{
    auto it = p.extra.find(key);
    return it == p.extra.end() ? dflt : it->second;
}

// -----------------------------------------------------------------------
// chase: serial pointer-chasing over a seeded cyclic permutation. Every
// load's address is the previous load's value, so the chain is fully
// latency-bound; with enough nodes the footprint defeats the last-page
// cache and the data cache (miss-heavy by construction).
// -----------------------------------------------------------------------

Program
makeChase(const SynthParams &p, std::uint64_t iters)
{
    const std::uint64_t nodes =
        std::clamp<std::uint64_t>(param(p, "nodes", 256), 8, 1 << 16);
    ProgramBuilder b(canonicalName(p));
    Random rng(p.seed * 0x9e3779b97f4a7c15ull + 0xc4a5e);

    // Reserve the node table first so its base address is known, then
    // attach the initialized contents as a segment after finish().
    const Addr tbl = b.allocData(nodes * 8);

    // Sattolo's algorithm: a single cycle through all nodes, so the
    // chase visits every slot before repeating. order[] is the visit
    // sequence; each node's word holds its successor's address.
    std::vector<std::uint64_t> order(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        order[i] = i;
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(order[i], order[rng.nextBounded(i)]);
    std::vector<std::uint64_t> words(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        words[order[i]] = tbl + order[(i + 1) % nodes] * 8;

    const RegIndex rPtr = 1, rAcc = 2, rI = 3, rN = 4;
    b.loadAddr(rPtr, tbl + order[0] * 8);  // enter the cycle
    b.movi(rAcc, 0);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));

    Label loop = b.newLabel();
    b.bind(loop);
    for (int u = 0; u < 8; ++u) {
        b.ld8(rPtr, rPtr, 0);
        b.add(rAcc, rAcc, rPtr);
    }
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();

    Program prog = b.finish();
    std::vector<std::uint8_t> bytes(nodes * 8);
    for (std::uint64_t i = 0; i < nodes; ++i)
        std::memcpy(&bytes[i * 8], &words[i], 8);
    prog.addSegment(tbl, std::move(bytes));
    return prog;
}

// -----------------------------------------------------------------------
// hashjoin: hash-probe loop with data-dependent bucket addresses, a
// value-dependent match branch, match emission into an output table,
// an immediate reload of the emitted slot (forwarding on matches), and
// a read-modify-write on the probed bucket (every probe aliases a
// recent store to the same region).
// -----------------------------------------------------------------------

Program
makeHashjoin(const SynthParams &p, std::uint64_t iters)
{
    const std::uint64_t buckets =
        po2Clamp(param(p, "buckets", 64), 16, 4096);
    ProgramBuilder b(canonicalName(p));
    Random rng(p.seed * 0x9e3779b97f4a7c15ull + 0x4a54);

    std::vector<std::uint64_t> init(buckets);
    for (auto &v : init)
        v = rng.next();
    const Addr tbl = b.allocWords(init);
    const Addr out = b.allocData(buckets * 8);

    const RegIndex rTbl = 1, rOut = 2, rI = 3, rN = 4, rKey = 5;
    const RegIndex rMul = 6, rIdx = 7, rB = 8, rV = 9, rCnt = 10;
    const RegIndex rT = 11, rO = 12, rRe = 13;

    b.loadAddr(rTbl, tbl);
    b.loadAddr(rOut, out);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rKey, static_cast<std::int64_t>(rng.next() | 1));
    b.movi(rMul, 0x5851f42d4c957f2d);
    b.movi(rCnt, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    b.mul(rKey, rKey, rMul);
    b.addi(rKey, rKey, 0x9e37);
    b.srli(rIdx, rKey, 17);
    b.andi(rIdx, rIdx, static_cast<std::int64_t>(buckets - 1));
    b.slli(rIdx, rIdx, 3);
    b.add(rB, rTbl, rIdx);   // &tbl[idx]
    b.add(rO, rOut, rIdx);   // &out[idx]
    b.ld8(rV, rB, 0);        // probe
    b.andi(rT, rV, 1);       // data-dependent match test
    Label miss = b.newLabel();
    b.beq(rT, 0, miss);
    b.addi(rCnt, rCnt, 1);
    b.st8(rV, rO, 0);        // emit match
    b.bind(miss);
    b.ld8(rRe, rO, 0);       // reload out slot (forwards on a match)
    b.add(rCnt, rCnt, rRe);
    b.addi(rV, rV, 1);
    b.st8(rV, rB, 0);        // bucket RMW: aliases future probes
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

// -----------------------------------------------------------------------
// prodcons: producer/consumer pairs over a tiny ring. Every slot is
// consumed immediately after it is produced, so nearly every load
// forwards from an in-flight store; one pair per round stores narrow
// and loads wide (partial overlap the forwarding path cannot satisfy).
// -----------------------------------------------------------------------

Program
makeProdcons(const SynthParams &p, std::uint64_t iters)
{
    const std::uint64_t slots = po2Clamp(param(p, "slots", 8), 4, 512);
    ProgramBuilder b(canonicalName(p));
    Random rng(p.seed * 0x9e3779b97f4a7c15ull + 0x9c05);

    const Addr ring = b.allocData(slots * 8);

    const RegIndex rRing = 1, rSlot = 2, rI = 3, rN = 4, rVal = 5;
    const RegIndex rIdx = 6, rA = 7, rGot = 8;

    b.loadAddr(rRing, ring);
    b.movi(rSlot, 0);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rVal, static_cast<std::int64_t>(rng.next() >> 1));

    const unsigned sizes[4] = {8, 8, 4, 8};  // one narrow store per round
    Label loop = b.newLabel();
    b.bind(loop);
    for (unsigned u = 0; u < 4; ++u) {
        b.addi(rSlot, rSlot, 1);
        b.andi(rIdx, rSlot, static_cast<std::int64_t>(slots - 1));
        b.slli(rIdx, rIdx, 3);
        b.add(rA, rRing, rIdx);
        b.st(sizes[u], rVal, rA, 0);  // produce
        b.ld8(rGot, rA, 0);           // consume (forward, or partial)
        b.add(rVal, rVal, rGot);
    }
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

// -----------------------------------------------------------------------
// memcpy: block copy through a seeded source buffer with mixed access
// sizes on the block tail. Load/store dense and streaming — the
// canonical "memory bandwidth" shape, with narrow/wide replays at the
// tail boundaries.
// -----------------------------------------------------------------------

Program
makeMemcpy(const SynthParams &p, std::uint64_t iters)
{
    const std::uint64_t bytes =
        po2Clamp(param(p, "bytes", 4096), 256, 1 << 16);
    ProgramBuilder b(canonicalName(p));
    Random rng(p.seed * 0x9e3779b97f4a7c15ull + 0x3e3c);

    std::vector<std::uint8_t> src(bytes);
    for (auto &v : src)
        v = static_cast<std::uint8_t>(rng.next());
    const Addr srcBuf = b.allocBytes(src);
    const Addr dstBuf = b.allocData(bytes);

    const RegIndex rSrc = 1, rDst = 2, rI = 3, rN = 4, rOff = 5;
    const RegIndex rS = 6, rD = 7, rT = 8;

    b.loadAddr(rSrc, srcBuf);
    b.loadAddr(rDst, dstBuf);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rOff, 0);

    Label loop = b.newLabel();
    b.bind(loop);
    b.add(rS, rSrc, rOff);
    b.add(rD, rDst, rOff);
    b.ld8(rT, rS, 0);
    b.st8(rT, rD, 0);
    b.ld8(rT, rS, 8);
    b.st8(rT, rD, 8);
    b.ld8(rT, rS, 16);
    b.st8(rT, rD, 16);
    b.ld4(rT, rS, 24);
    b.st4(rT, rD, 24);
    b.ld2(rT, rS, 28);
    b.st2(rT, rD, 28);
    b.ld1(rT, rS, 30);
    b.st1(rT, rD, 30);
    b.addi(rOff, rOff, 32);
    b.andi(rOff, rOff, static_cast<std::int64_t>(bytes - 1));
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

// -----------------------------------------------------------------------
// branchstorm: a burst of data-dependent branches per round, each
// keyed to a different bit of an LCG state — individually ~50% taken
// and pattern-free, the worst case for the 2-bit counters. A small
// store/reload keeps the memory pipeline minimally alive (and silent
// whenever the accumulator stalls).
// -----------------------------------------------------------------------

Program
makeBranchstorm(const SynthParams &p, std::uint64_t iters)
{
    const unsigned ops = static_cast<unsigned>(
        std::clamp<std::uint64_t>(param(p, "ops", 8), 2, 24));
    ProgramBuilder b(canonicalName(p));
    Random rng(p.seed * 0x9e3779b97f4a7c15ull + 0xb5a9);

    const Addr slot = b.allocData(64);

    const RegIndex rState = 1, rMul = 2, rI = 3, rN = 4, rAcc = 5;
    const RegIndex rT = 6, rSlot = 7, rGot = 8;

    b.movi(rState, static_cast<std::int64_t>(rng.next() | 1));
    b.movi(rMul, 0x5851f42d4c957f2d);
    b.movi(rI, 0);
    b.movi(rN, static_cast<std::int64_t>(iters));
    b.movi(rAcc, 0);
    b.loadAddr(rSlot, slot);

    Label loop = b.newLabel();
    b.bind(loop);
    b.mul(rState, rState, rMul);
    b.addi(rState, rState, 0x14057b7);
    for (unsigned k = 0; k < ops; ++k) {
        b.srli(rT, rState, static_cast<std::int64_t>(k + 1));
        b.andi(rT, rT, 1);
        Label skip = b.newLabel();
        b.beq(rT, 0, skip);
        b.addi(rAcc, rAcc, static_cast<std::int64_t>(k + 1));
        b.bind(skip);
    }
    b.st8(rAcc, rSlot, 0);
    b.ld8(rGot, rSlot, 0);
    b.add(rAcc, rAcc, rGot);
    b.addi(rI, rI, 1);
    b.blt(rI, rN, loop);
    b.halt();
    return b.finish();
}

// -----------------------------------------------------------------------
// Kind table
// -----------------------------------------------------------------------

Program
makeMix(const SynthParams &p, std::uint64_t iters)
{
    const unsigned ops = static_cast<unsigned>(
        std::clamp<std::uint64_t>(param(p, "ops", 24), 4, 64));
    Program prog = randomProgram(
        p.seed, ops, static_cast<unsigned>(std::max<std::uint64_t>(
                         1, std::min<std::uint64_t>(iters, 1u << 30))));
    prog.setName(canonicalName(p));
    return prog;
}

struct Kind
{
    Profile prof;
    Program (*make)(const SynthParams &, std::uint64_t iters);
    /** Rough dynamic instructions per main-loop iteration (default
     * params), used to turn an instruction target into a trip count. */
    std::uint64_t instsPerIter;
    const char *paramKeys[2];  ///< accepted key=val keys (nullptr pad)
};

const Kind kinds[] = {
    {{"chase",
      "serial pointer-chase over a seeded cyclic permutation "
      "(latency/miss-bound loads)",
      0.30, 0.55, 0.00, 0.02, 0.02, 0.10, false, false, false, true},
     makeChase, 18, {"nodes", nullptr}},
    {{"hashjoin",
      "hash-probe loop: data-dependent bucket addresses, value-"
      "dependent match branch, bucket RMW aliasing",
      0.06, 0.22, 0.04, 0.18, 0.06, 0.22, true, true, true, false},
     makeHashjoin, 17, {"buckets", nullptr}},
    {{"prodcons",
      "producer/consumer ring: near-every load forwards from an "
      "in-flight store; one narrow store per round partially overlaps",
      0.08, 0.22, 0.08, 0.22, 0.01, 0.10, true, true, false, false},
     makeProdcons, 30, {"slots", nullptr}},
    {{"memcpy",
      "streaming block copy with mixed-size tail accesses",
      0.20, 0.45, 0.20, 0.45, 0.02, 0.12, false, false, false, true},
     makeMemcpy, 18, {"bytes", nullptr}},
    {{"branchstorm",
      "bursts of pattern-free data-dependent branches keyed to LCG "
      "bits (mispredict-bound)",
      0.00, 0.10, 0.00, 0.10, 0.15, 0.40, false, false, true, false},
     makeBranchstorm, 36, {"ops", nullptr}},
    {{"mix",
      "adversarial random program: random-size loads/stores over a "
      "256-byte pool, data-dependent addresses, calls, short branches",
      0.00, 0.50, 0.00, 0.50, 0.00, 0.40, true, true, true, false},
     makeMix, 60, {"ops", nullptr}},
};

const Kind *
findKind(const std::string &kind)
{
    for (const Kind &k : kinds)
        if (kind == k.prof.kind)
            return &k;
    return nullptr;
}

bool
parseNumber(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
        return false;
    }
    try {
        out = std::stoull(text);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

} // namespace

const std::vector<std::string> &
kindNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Kind &k : kinds)
            v.push_back(k.prof.kind);
        return v;
    }();
    return names;
}

bool
isKind(const std::string &kind)
{
    return findKind(kind) != nullptr;
}

const Profile &
profile(const std::string &kind)
{
    const Kind *k = findKind(kind);
    svw_assert(k, "unknown synth kind ", kind);
    return k->prof;
}

bool
parseName(const std::string &name, SynthParams &out, std::string &err)
{
    out = SynthParams{};
    if (name.rfind("synth:", 0) != 0) {
        err = "not a synth name: '" + name + "'";
        return false;
    }
    // synth:<kind>:<seed>[:k=v[,k=v...]]
    const std::string rest = name.substr(6);
    const std::size_t c1 = rest.find(':');
    if (c1 == std::string::npos) {
        err = "synth name '" + name + "' needs a seed: synth:<kind>:<seed>";
        return false;
    }
    out.kind = rest.substr(0, c1);
    const Kind *k = findKind(out.kind);
    if (!k) {
        err = "unknown synth kind '" + out.kind + "'";
        return false;
    }
    const std::size_t c2 = rest.find(':', c1 + 1);
    const std::string seedText = rest.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
    if (!parseNumber(seedText, out.seed)) {
        err = "malformed synth seed '" + seedText + "'";
        return false;
    }
    if (c2 == std::string::npos)
        return true;
    // key=val,key=val
    std::string params = rest.substr(c2 + 1);
    while (!params.empty()) {
        const std::size_t comma = params.find(',');
        const std::string kv = params.substr(0, comma);
        params = comma == std::string::npos ? std::string()
                                            : params.substr(comma + 1);
        const std::size_t eq = kv.find('=');
        std::uint64_t val = 0;
        if (eq == std::string::npos || eq == 0 ||
            !parseNumber(kv.substr(eq + 1), val)) {
            err = "malformed synth param '" + kv + "' (want key=value)";
            return false;
        }
        const std::string key = kv.substr(0, eq);
        bool known = false;
        for (const char *pk : k->paramKeys)
            known = known || (pk && key == pk);
        if (!known) {
            err = "unknown synth param '" + key + "' for kind '" +
                  out.kind + "'";
            return false;
        }
        out.extra[key] = val;
    }
    return true;
}

std::string
canonicalName(const SynthParams &p)
{
    std::string n = "synth:" + p.kind + ":" + std::to_string(p.seed);
    if (!p.extra.empty()) {
        n += ":";
        bool first = true;
        for (const auto &[k, v] : p.extra) {  // std::map: sorted keys
            if (!first)
                n += ",";
            first = false;
            n += k + "=" + std::to_string(v);
        }
    }
    return n;
}

Program
make(const SynthParams &p, std::uint64_t targetInsts)
{
    const Kind *k = findKind(p.kind);
    svw_assert(k, "unknown synth kind ", p.kind);
    const std::uint64_t iters =
        std::max<std::uint64_t>(1, targetInsts / k->instsPerIter);
    return k->make(p, iters);
}

Program
make(const std::string &name, std::uint64_t targetInsts)
{
    SynthParams p;
    std::string err;
    if (!parseName(name, p, err))
        svw_fatal("bad synth workload: ", err);
    return make(p, targetInsts);
}

Program
randomProgram(std::uint64_t seed, unsigned bodyOps, unsigned iters)
{
    Random rng(seed);
    ProgramBuilder b("fuzz" + std::to_string(seed));
    const Addr pool = b.allocWords(
        [&] {
            std::vector<std::uint64_t> init(32);
            for (auto &v : init)
                v = rng.next() & 0xffff;
            return init;
        }());

    // Register conventions: r1 pool base, r2 loop counter, r3 bound,
    // r4-r19 random data regs, r20 scratch address reg.
    Label helper = b.newLabel();
    Label entry = b.newLabel();
    b.jmp(entry);

    // Helper: a small function touching the pool through the stack.
    b.bind(helper);
    b.pushLink({4, 5});
    b.ld8(4, 1, 0);
    b.addi(4, 4, 1);
    b.st8(4, 1, 0);
    b.popLinkAndRet({4, 5});

    b.bind(entry);
    b.loadAddr(1, pool);
    b.movi(2, 0);
    b.movi(3, iters);
    for (RegIndex r = 4; r <= 19; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.nextBounded(1000)));

    Label loop = b.newLabel();
    b.bind(loop);
    for (unsigned i = 0; i < bodyOps; ++i) {
        const RegIndex rd = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const RegIndex ra = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const RegIndex rb = static_cast<RegIndex>(4 + rng.nextBounded(16));
        const unsigned size = 1u << rng.nextBounded(4);
        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
            b.add(rd, ra, rb);
            break;
          case 3:
            b.xor_(rd, ra, rb);
            break;
          case 4: {
            // Load from a register-dependent pool slot.
            b.andi(20, ra, 255 - 8);
            b.add(20, 20, 1);
            b.ld(size, rd, 20, 0);
            break;
          }
          case 5:
          case 6: {
            // Store to a register-dependent pool slot (late address).
            b.andi(20, ra, 255 - 8);
            b.add(20, 20, 1);
            b.st(size, rb, 20, 0);
            break;
          }
          case 7: {
            // Fixed-slot load/store pair (forwarding + silent stores).
            const std::int64_t off =
                static_cast<std::int64_t>(rng.nextBounded(31)) * 8;
            b.st8(ra, 1, off);
            b.ld8(rd, 1, off);
            break;
          }
          case 8: {
            // Unpredictable short forward branch.
            Label skip = b.newLabel();
            b.andi(20, ra, 1);
            b.beq(20, 0, skip);
            b.addi(rd, rd, 3);
            b.bind(skip);
            break;
          }
          case 9:
            b.call(helper);
            break;
        }
    }
    b.addi(2, 2, 1);
    b.blt(2, 3, loop);
    b.halt();
    return b.finish();
}

} // namespace svw::synth
