/**
 * @file
 * Committed-instruction trace record/replay.
 *
 * A trace file is a self-contained workload: the full static program
 * (text, initial data segments, entry state) plus the committed
 * dynamic stream captured once via the in-order interpreter — the
 * committed-PC sequence (run-length + delta compressed), the dynamic
 * counts, and the final architectural register file. Replaying
 * "trace:<file>" through the workload registry rebuilds the Program
 * from the file alone, with no dependency on the kernel generators
 * (prog/workloads, prog/synth) that produced it — externally captured
 * or archived streams become first-class workloads, and replay is
 * byte-identical to the live front end because the reconstructed text
 * is bit-exact (wrong-path fetch, branch-predictor indexing and cycle
 * counts all match).
 *
 * The embedded stream doubles as a golden reference: replay harnesses
 * can check a simulation's committed stream and final state against
 * the recording without re-running the functional front end.
 *
 * File layout (little-endian):
 *   magic "SVWTRACE" | u64 payloadBytes | payload | u64 fnv1a(payload)
 * with the payload carrying a u32 format version first. A truncated,
 * stale-version, or bit-rotted file fails loudly (svw_fatal) — never
 * a silent wrong replay.
 */

#ifndef SVW_PROG_TRACE_HH
#define SVW_PROG_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "func/interp.hh"
#include "prog/program.hh"

namespace svw::trace {

/** Bump on any layout change; readers reject other versions loudly. */
inline constexpr std::uint32_t traceVersion = 1;

/** In-memory form of one trace. */
struct TraceData
{
    std::string sourceWorkload;  ///< registry name the trace came from
    Program program;             ///< bit-exact reconstruction source
    std::uint64_t insts = 0;     ///< committed instructions recorded
    InterpCounts counts;         ///< dynamic mix at record time
    std::array<std::uint64_t, numArchRegs> finalRegs{};
    /** Committed text-index sequence, one entry per instruction. */
    std::vector<std::uint64_t> committedPcs;
};

/**
 * Capture @p prog's committed stream by running the interpreter to
 * Halt. Fatal if the program does not halt within @p maxInsts (a
 * non-terminating recording would be an unbounded file).
 */
TraceData record(const Program &prog, const std::string &sourceWorkload,
                 std::uint64_t maxInsts);

/** Serialize to @p path (atomically enough for tests: full rewrite). */
void writeFile(const std::string &path, const TraceData &t);

/**
 * Parse and fully verify @p path: magic, version, payload length
 * (truncation), checksum, and internal consistency (stream length ==
 * insts, PCs within text). Fatal on any defect.
 */
TraceData readFile(const std::string &path);

/**
 * Non-throwing validity probe (flag validation): @return false and
 * fill @p err if @p path is missing, truncated, checksummed wrong, or
 * a different format version.
 */
bool probeFile(const std::string &path, std::string &err);

/**
 * The workload-registry entry point: reconstruct the Program from
 * @p path, named "trace:<path>". Fatal on a bad file.
 */
Program loadProgram(const std::string &path);

/**
 * Content identity of the trace for the persistent ResultCache: the
 * stored payload checksum (content-addressed — rewriting the file
 * with different contents changes it). Fatal on a bad file.
 */
std::uint64_t fileChecksum(const std::string &path);

} // namespace svw::trace

#endif // SVW_PROG_TRACE_HH
