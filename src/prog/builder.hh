/**
 * @file
 * ProgramBuilder: a label-based assembler API for composing mini-RISC
 * programs in C++. Workload kernels are written against this interface.
 *
 * Usage sketch:
 * @code
 *   ProgramBuilder b("demo");
 *   Addr buf = b.allocData(1024);
 *   auto loop = b.newLabel();
 *   b.movi(1, 0);
 *   b.bind(loop);
 *   b.st8(2, 1, 0);
 *   b.addi(1, 1, 8);
 *   b.blt(1, 3, loop);
 *   b.halt();
 *   Program p = b.finish();
 * @endcode
 */

#ifndef SVW_PROG_BUILDER_HH
#define SVW_PROG_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prog/program.hh"

namespace svw {

/** Opaque forward-referenceable code label. */
struct Label
{
    int id = -1;
};

/**
 * Incremental program assembler with forward labels and a simple data
 * allocator. finish() patches all label references and validates.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    // --- labels -----------------------------------------------------
    Label newLabel();
    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);
    /** Current text position (next instruction index). */
    std::uint64_t here() const { return prog.text().size(); }

    // --- data allocation --------------------------------------------
    /**
     * Reserve @p bytes of zero-initialized memory, aligned to @p align,
     * and return its base address.
     */
    Addr allocData(std::uint64_t bytes, std::uint64_t align = 8);

    /** Reserve and initialize an array of 64-bit words. */
    Addr allocWords(const std::vector<std::uint64_t> &words);

    /** Reserve and initialize raw bytes. */
    Addr allocBytes(const std::vector<std::uint8_t> &bytes);

    // --- instruction emission ----------------------------------------
    void nop();
    void halt();

    void add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sra(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void slt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sltu(RegIndex rd, RegIndex rs1, RegIndex rs2);

    void addi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void andi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void ori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void xori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void slli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void srli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void srai(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void slti(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void movi(RegIndex rd, std::int64_t imm);

    void ld(unsigned size, RegIndex rd, RegIndex base, std::int64_t off);
    void st(unsigned size, RegIndex data, RegIndex base, std::int64_t off);
    void ld1(RegIndex rd, RegIndex base, std::int64_t off);
    void ld2(RegIndex rd, RegIndex base, std::int64_t off);
    void ld4(RegIndex rd, RegIndex base, std::int64_t off);
    void ld8(RegIndex rd, RegIndex base, std::int64_t off);
    void st1(RegIndex data, RegIndex base, std::int64_t off);
    void st2(RegIndex data, RegIndex base, std::int64_t off);
    void st4(RegIndex data, RegIndex base, std::int64_t off);
    void st8(RegIndex data, RegIndex base, std::int64_t off);

    void beq(RegIndex rs1, RegIndex rs2, Label target);
    void bne(RegIndex rs1, RegIndex rs2, Label target);
    void blt(RegIndex rs1, RegIndex rs2, Label target);
    void bge(RegIndex rs1, RegIndex rs2, Label target);
    void jmp(Label target);
    /** Call: link register <- return index, jump to target. */
    void call(Label target);
    /** Return through the link register. */
    void ret();
    void jr(RegIndex rs1);

    // --- convenience macros -----------------------------------------
    /** rd <- full 64-bit address constant. */
    void loadAddr(RegIndex rd, Addr a) { movi(rd, static_cast<std::int64_t>(a)); }

    /** Standard prologue/epilogue for leaf-calling functions: push/pop
     * the link register (and optionally extra regs) on the stack. */
    void pushLink(const std::vector<RegIndex> &extra = {});
    void popLinkAndRet(const std::vector<RegIndex> &extra = {});

    /** Finalize: patch labels, validate, and return the program. */
    Program finish();

  private:
    void emit(StaticInst si);
    void emitBranch(Opcode op, RegIndex rs1, RegIndex rs2, Label target);

    Program prog;
    Addr dataCursor = 0x0001'0000;  ///< data region start
    std::vector<std::int64_t> labelPos;  ///< -1 while unbound

    struct Fixup
    {
        std::uint64_t instIdx;
        int labelId;
    };
    std::vector<Fixup> fixups;
    bool finished = false;
};

} // namespace svw

#endif // SVW_PROG_BUILDER_HH
