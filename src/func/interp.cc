#include "func/interp.hh"

#include "base/logging.hh"

namespace svw {

Interp::Interp(const Program &p)
    : prog(p), _pc(p.entry())
{
    mem.loadProgram(p);
    regs.fill(0);
    regs[regSp] = p.stackTop();
}

Interp::Interp(const Program &p, const MemoryImage *sharedImage)
    : prog(p), _pc(p.entry())
{
    if (sharedImage)
        mem.setBacking(sharedImage);
    else
        mem.loadProgram(p);
    regs.fill(0);
    regs[regSp] = p.stackTop();
}

bool
Interp::step()
{
    if (_halted)
        return false;

    svw_assert(_pc < prog.textSize(), "pc out of range ", _pc);
    const StaticInst &si = prog.inst(_pc);
    ++cnt.insts;

    const std::uint64_t a = regs[si.rs1];
    const std::uint64_t b = regs[si.rs2];
    std::uint64_t next_pc = _pc + 1;

    switch (si.cls()) {
      case InstClass::Nop:
        break;
      case InstClass::Halt:
        _halted = true;
        return false;
      case InstClass::IntAlu:
      case InstClass::IntMul:
        setReg(si.rd, evalAlu(si, a, b, _pc));
        break;
      case InstClass::Load: {
        ++cnt.loads;
        const Addr ea = effectiveAddr(si, a);
        setReg(si.rd, mem.read(ea, si.memSize()));
        break;
      }
      case InstClass::Store: {
        ++cnt.stores;
        const Addr ea = effectiveAddr(si, a);
        const unsigned size = si.memSize();
        if (mem.read(ea, size) == (size == 8 ? b
                : (b & ((1ull << (size * 8)) - 1))))
            ++cnt.silentStores;
        mem.write(ea, size, b);
        break;
      }
      case InstClass::Branch: {
        ++cnt.branches;
        if (evalBranchTaken(si, a, b)) {
            ++cnt.takenBranches;
            next_pc = static_cast<std::uint64_t>(si.imm);
        }
        break;
      }
      case InstClass::Jump:
        if (si.isCall())
            setReg(si.rd, _pc + 1);
        next_pc = static_cast<std::uint64_t>(si.imm);
        break;
      case InstClass::JumpReg:
        next_pc = a;
        break;
    }

    _pc = next_pc;
    return true;
}

bool
Interp::run(std::uint64_t maxInsts)
{
    for (std::uint64_t i = 0; i < maxInsts; ++i) {
        if (!step())
            return true;
    }
    return _halted;
}

ArchState
Interp::archState() const
{
    ArchState s;
    s.regs = regs;
    s.pc = _pc;
    return s;
}

} // namespace svw
