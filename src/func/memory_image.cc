#include "func/memory_image.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "prog/program.hh"

namespace svw {

void
MemoryImage::setBacking(const MemoryImage *base)
{
    svw_assert(pages.empty(), "setBacking on a written image");
    svw_assert(!base || !base->backing, "backing images must be flat");
    backing = base;
    clear();  // drop any cached lookups into a previous backing
}

MemoryImage::Page *
MemoryImage::findPage(Addr pageNum) const
{
    if (pageNum == lastPageNum)
        return lastPage;
    const PtabEntry &e = ptab[pageNum & (ptabEntries - 1)];
    if (e.pageNum == pageNum) {
        lastPageNum = pageNum;
        lastPage = e.page;
        lastOwned = e.owned;
        return e.page;
    }
    auto it = pages.find(pageNum);
    if (it == pages.end()) {
        // Absence is not cached: a write may create the page. A
        // backing page *is* cached (marked not-owned so getPage never
        // writes through it); the copy-on-write path replaces the
        // cache entry with the owned copy.
        if (backing) {
            auto bit = backing->pages.find(pageNum);
            if (bit != backing->pages.end()) {
                Page *bp = bit->second.get();
                cachePage(pageNum, bp, false);
                return bp;
            }
        }
        return nullptr;
    }
    Page *p = it->second.get();
    cachePage(pageNum, p, true);
    return p;
}

MemoryImage::Page &
MemoryImage::getPage(Addr pageNum)
{
    Page *p = findPage(pageNum);
    if (p && lastOwned)
        return *p;
    // Absent, or present only in the read-only backing: materialize an
    // owned page (copy-on-write) and repoint the lookup caches at it.
    auto &slot = pages[pageNum];
    slot = std::make_unique<Page>();
    if (p)
        *slot = *p;
    else
        slot->fill(0);
    cachePage(pageNum, slot.get(), true);
    return *slot;
}

const MemoryImage::Page *
MemoryImage::peekPage(Addr pageNum) const
{
    auto it = pages.find(pageNum);
    if (it != pages.end())
        return it->second.get();
    if (backing) {
        auto bit = backing->pages.find(pageNum);
        if (bit != backing->pages.end())
            return bit->second.get();
    }
    return nullptr;
}

std::uint64_t
MemoryImage::read(Addr addr, unsigned size) const
{
    svw_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const std::uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        // Single-page fast path (virtually all simulator accesses).
        std::uint64_t v = 0;
        if (const Page *p = findPage(addr / pageBytes))
            std::memcpy(&v, p->data() + off, size);
        return v;
    }
    std::uint8_t buf[8] = {0};
    readBytes(addr, buf, size);
    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
}

void
MemoryImage::write(Addr addr, unsigned size, std::uint64_t value)
{
    svw_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const std::uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        std::memcpy(getPage(addr / pageBytes).data() + off, &value, size);
        return;
    }
    std::uint8_t buf[8];
    std::memcpy(buf, &value, 8);
    writeBytes(addr, buf, size);
}

void
MemoryImage::readBytes(Addr addr, std::uint8_t *buf, std::uint64_t len) const
{
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(len,
                                                            pageBytes - off);
        if (const Page *p = findPage(addr / pageBytes))
            std::memcpy(buf, p->data() + off, chunk);
        else
            std::memset(buf, 0, chunk);
        buf += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::writeBytes(Addr addr, const std::uint8_t *buf, std::uint64_t len)
{
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(len,
                                                            pageBytes - off);
        Page &p = getPage(addr / pageBytes);
        std::memcpy(p.data() + off, buf, chunk);
        buf += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::loadProgram(const Program &prog)
{
    for (const auto &seg : prog.segments())
        writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
}

bool
MemoryImage::identicalTo(const MemoryImage &other) const
{
    static const Page zeroPage = [] { Page p; p.fill(0); return p; }();
    auto covered = [](const MemoryImage &a, const MemoryImage &b) {
        auto match = [&](Addr pn, const Page *pa) {
            const Page *pb = b.peekPage(pn);
            if (pa == pb)  // same physical page (shared backing)
                return true;
            if (!pa)
                pa = &zeroPage;
            if (!pb)
                pb = &zeroPage;
            return std::memcmp(pa->data(), pb->data(), pageBytes) == 0;
        };
        for (const auto &[pn, page] : a.pages) {
            if (!match(pn, page.get()))
                return false;
        }
        if (a.backing) {
            for (const auto &[pn, page] : a.backing->pages) {
                if (a.pages.count(pn))
                    continue;  // shadowed; compared above
                if (!match(pn, page.get()))
                    return false;
            }
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace svw
