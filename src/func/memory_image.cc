#include "func/memory_image.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "prog/program.hh"

namespace svw {

MemoryImage::Page *
MemoryImage::findPage(Addr pageNum) const
{
    if (pageNum == lastPageNum)
        return lastPage;
    const PtabEntry &e = ptab[pageNum & (ptabEntries - 1)];
    if (e.pageNum == pageNum) {
        lastPageNum = pageNum;
        lastPage = e.page;
        return e.page;
    }
    auto it = pages.find(pageNum);
    if (it == pages.end())
        return nullptr;  // absence is not cached: a write may create it
    Page *p = it->second.get();
    cachePage(pageNum, p);
    return p;
}

MemoryImage::Page &
MemoryImage::getPage(Addr pageNum)
{
    if (Page *p = findPage(pageNum))
        return *p;
    auto &slot = pages[pageNum];
    slot = std::make_unique<Page>();
    slot->fill(0);
    cachePage(pageNum, slot.get());
    return *slot;
}

std::uint64_t
MemoryImage::read(Addr addr, unsigned size) const
{
    svw_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const std::uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        // Single-page fast path (virtually all simulator accesses).
        std::uint64_t v = 0;
        if (const Page *p = findPage(addr / pageBytes))
            std::memcpy(&v, p->data() + off, size);
        return v;
    }
    std::uint8_t buf[8] = {0};
    readBytes(addr, buf, size);
    std::uint64_t v = 0;
    std::memcpy(&v, buf, 8);
    return v;
}

void
MemoryImage::write(Addr addr, unsigned size, std::uint64_t value)
{
    svw_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const std::uint64_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        std::memcpy(getPage(addr / pageBytes).data() + off, &value, size);
        return;
    }
    std::uint8_t buf[8];
    std::memcpy(buf, &value, 8);
    writeBytes(addr, buf, size);
}

void
MemoryImage::readBytes(Addr addr, std::uint8_t *buf, std::uint64_t len) const
{
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(len,
                                                            pageBytes - off);
        if (const Page *p = findPage(addr / pageBytes))
            std::memcpy(buf, p->data() + off, chunk);
        else
            std::memset(buf, 0, chunk);
        buf += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::writeBytes(Addr addr, const std::uint8_t *buf, std::uint64_t len)
{
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(len,
                                                            pageBytes - off);
        Page &p = getPage(addr / pageBytes);
        std::memcpy(p.data() + off, buf, chunk);
        buf += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::loadProgram(const Program &prog)
{
    for (const auto &seg : prog.segments())
        writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
}

bool
MemoryImage::identicalTo(const MemoryImage &other) const
{
    auto covered = [](const MemoryImage &a, const MemoryImage &b) {
        static const Page zeroPage = [] { Page p; p.fill(0); return p; }();
        for (const auto &[pn, page] : a.pages) {
            auto it = b.pages.find(pn);
            const Page &rhs = it == b.pages.end() ? zeroPage : *it->second;
            if (std::memcmp(page->data(), rhs.data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace svw
