/**
 * @file
 * In-order functional interpreter — the golden model.
 *
 * Every timing run in the test suite is cross-checked against this
 * interpreter: the out-of-order core (with any combination of load
 * optimizations and SVW filtering enabled) must retire the same dynamic
 * instruction stream and produce the same final architectural state.
 */

#ifndef SVW_FUNC_INTERP_HH
#define SVW_FUNC_INTERP_HH

#include <array>
#include <cstdint>

#include "func/memory_image.hh"
#include "isa/inst.hh"
#include "prog/program.hh"

namespace svw {

/** Dynamic execution counts gathered by the interpreter. */
struct InterpCounts
{
    std::uint64_t insts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t silentStores = 0;  ///< stores that wrote the existing value
};

/** Architected state snapshot (for golden-model comparison). */
struct ArchState
{
    std::array<std::uint64_t, numArchRegs> regs{};
    std::uint64_t pc = 0;
};

/**
 * Executes a Program to completion (Halt) or an instruction budget.
 */
class Interp
{
  public:
    explicit Interp(const Program &prog);

    /**
     * Share an already-loaded program image instead of copying the
     * initial segments (batched co-simulation: one image backs every
     * lane's golden model and committed state). @p sharedImage must be
     * exactly the image loadProgram would build for @p prog and must
     * outlive the interpreter; it is never written (copy-on-write).
     */
    Interp(const Program &prog, const MemoryImage *sharedImage);

    /** Execute one instruction. @return false once halted. */
    bool step();

    /**
     * Run until Halt or until @p maxInsts more instructions execute.
     * @return true if the program halted.
     */
    bool run(std::uint64_t maxInsts);

    bool halted() const { return _halted; }

    std::uint64_t reg(RegIndex r) const { return regs[r]; }
    void setReg(RegIndex r, std::uint64_t v) { if (r != 0) regs[r] = v; }
    std::uint64_t pc() const { return _pc; }

    const MemoryImage &memory() const { return mem; }
    MemoryImage &memory() { return mem; }

    const InterpCounts &counts() const { return cnt; }

    ArchState archState() const;

  private:
    const Program &prog;
    MemoryImage mem;
    std::array<std::uint64_t, numArchRegs> regs{};
    std::uint64_t _pc;
    bool _halted = false;
    InterpCounts cnt;
};

} // namespace svw

#endif // SVW_FUNC_INTERP_HH
