/**
 * @file
 * Sparse byte-addressable memory image.
 *
 * Used three ways in the reproduction: as the functional interpreter's
 * memory, as the timing simulator's committed ("cache") state, and as the
 * re-execution pipeline's in-order pre-commit view (committed state plus
 * the rex store buffer). Unwritten memory reads as zero.
 *
 * The interpreter, every committed-state load, and every re-execution
 * read hit this class, so page lookup is fronted by a single-entry
 * last-page cache plus a small direct-mapped page table; the backing
 * unordered_map is only consulted on a miss in both. Page storage is
 * unique_ptr, so cached raw Page pointers stay valid as the map grows.
 */

#ifndef SVW_FUNC_MEMORY_IMAGE_HH
#define SVW_FUNC_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace svw {

class Program;

/** Sparse paged memory; little-endian multi-byte accesses. */
class MemoryImage
{
  public:
    static constexpr unsigned pageBytes = 4096;

    /**
     * Attach a shared read-only backing image (batched co-simulation:
     * K lanes of one workload share one program image instead of each
     * copying every initial segment). Reads fall through to the
     * backing where this image has no page of its own; the first write
     * to a backed page copies it in (page-granularity copy-on-write),
     * so the backing is never mutated. The backing must outlive this
     * image, must not change while attached, and must itself be
     * unbacked (one level only). Attach before any access.
     */
    void setBacking(const MemoryImage *base);

    /** Read @p size bytes (1/2/4/8) at @p addr, zero-extended. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    void readBytes(Addr addr, std::uint8_t *buf, std::uint64_t len) const;
    void writeBytes(Addr addr, const std::uint8_t *buf, std::uint64_t len);

    /** Apply a program's initial data segments. */
    void loadProgram(const Program &prog);

    /** Number of pages written into *this* image (footprint metric;
     * pages served read-only from the backing are not counted). */
    std::size_t pageCount() const { return pages.size(); }

    /**
     * Compare with @p other over the union of touched pages, backing
     * included on both sides.
     * @return true if every byte matches (untouched pages read as zero).
     */
    bool identicalTo(const MemoryImage &other) const;

    /** Drop all contents written into this image (the backing, if any,
     * stays attached: state returns to the pristine backed view). */
    void clear()
    {
        pages.clear();
        lastPageNum = badPage;
        lastPage = nullptr;
        lastOwned = false;
        ptab.fill(PtabEntry{});
    }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    static constexpr Addr badPage = ~Addr(0);
    static constexpr std::size_t ptabEntries = 64;  ///< direct-mapped

    struct PtabEntry
    {
        Addr pageNum = badPage;
        Page *page = nullptr;
        /** Page lives in this image (writable), not in the backing. */
        bool owned = false;
    };

    /** Page lookup for reads: last-page cache, then the direct-mapped
     * table, then the hash map, then the backing (filling both caches
     * on a hit). nullptr if absent everywhere. */
    Page *findPage(Addr pageNum) const;

    /** Like findPage but for writes: creates (or copies in from the
     * backing) an owned page if this image has none. */
    Page &getPage(Addr pageNum);

    void cachePage(Addr pageNum, Page *p, bool owned) const
    {
        lastPageNum = pageNum;
        lastPage = p;
        lastOwned = owned;
        ptab[pageNum & (ptabEntries - 1)] = PtabEntry{pageNum, p, owned};
    }

    /** Effective read-view of @p pageNum (own page shadows backing);
     * nullptr when untouched on both levels. Cache-bypassing: used by
     * the comparison walk, not the access fast path. */
    const Page *peekPage(Addr pageNum) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    const MemoryImage *backing = nullptr;

    // Lookup caches (logically const: they never change visible state).
    mutable Addr lastPageNum = badPage;
    mutable Page *lastPage = nullptr;
    mutable bool lastOwned = false;
    mutable std::array<PtabEntry, ptabEntries> ptab{};
};

} // namespace svw

#endif // SVW_FUNC_MEMORY_IMAGE_HH
