/**
 * @file
 * Sparse byte-addressable memory image.
 *
 * Used three ways in the reproduction: as the functional interpreter's
 * memory, as the timing simulator's committed ("cache") state, and as the
 * re-execution pipeline's in-order pre-commit view (committed state plus
 * the rex store buffer). Unwritten memory reads as zero.
 */

#ifndef SVW_FUNC_MEMORY_IMAGE_HH
#define SVW_FUNC_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace svw {

class Program;

/** Sparse paged memory; little-endian multi-byte accesses. */
class MemoryImage
{
  public:
    static constexpr unsigned pageBytes = 4096;

    /** Read @p size bytes (1/2/4/8) at @p addr, zero-extended. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    void readBytes(Addr addr, std::uint8_t *buf, std::uint64_t len) const;
    void writeBytes(Addr addr, const std::uint8_t *buf, std::uint64_t len);

    /** Apply a program's initial data segments. */
    void loadProgram(const Program &prog);

    /** Number of pages ever written (footprint metric). */
    std::size_t pageCount() const { return pages.size(); }

    /**
     * Compare with @p other over the union of touched pages.
     * @return true if every byte matches (untouched pages read as zero).
     */
    bool identicalTo(const MemoryImage &other) const;

    /** Drop all contents. */
    void clear() { pages.clear(); }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace svw

#endif // SVW_FUNC_MEMORY_IMAGE_HH
