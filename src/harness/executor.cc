#include "harness/executor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "harness/serialize.hh"
#include "prog/workloads/workloads.hh"

#if defined(__unix__) || defined(__APPLE__)
#define SVW_HAVE_FORK_POOL 1
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace svw::harness {

double
hostSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

const Program &
ProgramCache::get(const std::string &workload, std::uint64_t targetInsts)
{
    const auto key = std::make_pair(workload, targetInsts);
    auto it = programs_.find(key);
    if (it == programs_.end()) {
        ++builds_;
        it = programs_
                 .emplace(key, workloads::make(workload, targetInsts))
                 .first;
    }
    return it->second;
}

namespace {
std::uint64_t gRunCellCalls = 0;
int gWorkerResultFd = -1;
} // namespace

std::uint64_t
runCellCalls()
{
    return gRunCellCalls;
}

int
workerResultFd()
{
    return gWorkerResultFd;
}

CellOutcome
runCell(const SweepCell &cell, ProgramCache &cache)
{
    ++gRunCellCalls;
    CellOutcome o;
    o.ran = true;
    const Program &prog = cache.get(cell.workload, cell.targetInsts);

    RunRequest req;
    req.workload = cell.workload;
    req.targetInsts = cell.targetInsts;
    req.config = cell.config;
    req.goldenCheck = cell.goldenCheck;
    req.hook = cell.hook;

    const unsigned reps = std::max(1u, cell.timingReps);
    // A stateful hook would make reps non-equivalent simulations (the
    // "metrics identical across reps" assumption below breaks).
    svw_assert(!cell.hook || reps == 1,
               "timingReps > 1 with a per-cycle hook: ", cell.name());
    for (unsigned r = 0; r < reps; ++r) {
        const double t0 = hostSeconds();
        RunResult res = runOne(req, prog);
        const double secs = hostSeconds() - t0;
        o.hostWallSeconds += secs;
        if (r == 0 || secs < o.seconds)
            o.seconds = secs;
        // Cells are deterministic, so metrics are identical across
        // timing reps; keep the last.
        if (r + 1 == reps)
            o.result = std::move(res);
    }
    o.ok = true;
    return o;
}

namespace {

/** Cell indices selected by the shard, in spec order. */
std::deque<std::size_t>
selectCells(const SweepSpec &spec, const SweepOptions &opts)
{
    svw_assert(opts.jobs >= 1, "sweep --jobs must be >= 1");
    svw_assert(opts.shardCount >= 1, "sweep shard count must be >= 1");
    svw_assert(opts.shardIndex < opts.shardCount,
               "sweep shard index ", opts.shardIndex,
               " out of range for /", opts.shardCount);
    std::deque<std::size_t> sel;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const std::size_t g = spec.groupIndex(spec.cell(i).group);
        if (g % opts.shardCount == opts.shardIndex)
            sel.push_back(i);
    }
    // A split wider than the group count leaves trailing shards empty;
    // a silent empty report reads like success, so tell driver users
    // their split is misconfigured.
    if (sel.empty() && opts.shardCount > 1 && spec.size() > 0) {
        std::fprintf(stderr,
                     "warning: --shard=%u/%u selects no groups of sweep"
                     " '%s' (%zu groups; shards beyond the group count"
                     " are empty)\n",
                     opts.shardIndex, opts.shardCount,
                     spec.name().c_str(), spec.groups().size());
    }
    return sel;
}

std::vector<CellOutcome>
runSequential(const SweepSpec &spec, std::deque<std::size_t> pending,
              const SweepOptions &opts)
{
    std::vector<CellOutcome> outcomes(spec.size());
    ProgramCache cache;
    for (std::size_t idx : pending) {
        outcomes[idx] = runCell(spec.cell(idx), cache);
        if (opts.onCellDone)
            opts.onCellDone(idx, outcomes[idx]);
    }
    return outcomes;
}

#ifdef SVW_HAVE_FORK_POOL

constexpr std::uint64_t quitSentinel = ~std::uint64_t(0);

bool
readFull(int fd, void *buf, std::size_t n)
{
    auto *p = static_cast<char *>(buf);
    while (n > 0) {
        const ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false;
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

bool
writeFull(int fd, const void *buf, std::size_t n)
{
    const auto *p = static_cast<const char *>(buf);
    while (n > 0) {
        const ssize_t r = ::write(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

/** Worker main loop: pull cell indices, push result lines. */
[[noreturn]] void
workerLoop(const SweepSpec &spec, int cmdFd, int resFd)
{
    gWorkerResultFd = resFd;  // crash-injection test hooks write here
    ProgramCache cache;
    for (;;) {
        std::uint64_t idx = 0;
        if (!readFull(cmdFd, &idx, sizeof(idx)) || idx == quitSentinel)
            break;
        CellRecord rec;
        rec.cellIndex = static_cast<std::size_t>(idx);
        try {
            CellOutcome o = runCell(spec.cell(rec.cellIndex), cache);
            rec.ok = o.ok;
            rec.seconds = o.seconds;
            rec.hostWallSeconds = o.hostWallSeconds;
            rec.result = std::move(o.result);
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        } catch (...) {
            rec.ok = false;
            rec.error = "unknown exception";
        }
        const std::string line = cellRecordToLine(rec);
        if (!writeFull(resFd, line.data(), line.size()))
            break;
    }
    // _exit: skip the parent's flushed-but-inherited stdio buffers and
    // static destructors; the worker must never emit parent output.
    ::_exit(0);
}

struct Worker
{
    pid_t pid = -1;
    int cmdFd = -1;       ///< parent -> worker cell indices
    int resFd = -1;       ///< worker -> parent result lines
    long inflight = -1;   ///< cell index being executed (-1 = idle)
    bool alive = false;
    std::string buf;      ///< partial result-line accumulator
};

class ForkPool
{
  public:
    ForkPool(const SweepSpec &spec, std::deque<std::size_t> pending,
             const SweepOptions &opts)
        : spec_(spec), opts_(opts), pending_(std::move(pending)),
          outcomes_(spec.size()), remaining_(pending_.size())
    {
        const unsigned jobs = opts.jobs;
        // One worker per job slot, capped by the work available.
        const std::size_t n =
            std::min<std::size_t>(jobs, pending_.size());
        for (std::size_t i = 0; i < n; ++i)
            spawn();
        for (Worker &w : workers_) {
            if (w.alive)
                deal(w);
        }
    }

    /** Exception backstop: a throw escaping run() (e.g. from an
     * onCellDone callback) must not leak live workers blocked on
     * their command pipes for the life of the parent. The normal path
     * reaps everything in shutdown(), leaving this a no-op. */
    ~ForkPool()
    {
        for (Worker &w : workers_) {
            if (!w.alive)
                continue;
            if (w.cmdFd >= 0)
                ::close(w.cmdFd);
            ::close(w.resFd);
            ::kill(w.pid, SIGKILL);
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.alive = false;
        }
    }

    std::vector<CellOutcome> run()
    {
        while (remaining_ > 0) {
            if (!pollOnce()) {
                // No live workers left but cells still pending: the
                // respawn path is exhausted (fork failure). Fail the
                // rest explicitly rather than hang.
                for (std::size_t idx : pending_) {
                    failCell(idx, "no live workers left");
                }
                pending_.clear();
                for (Worker &w : workers_) {
                    if (w.alive && w.inflight >= 0) {
                        failCell(static_cast<std::size_t>(w.inflight),
                                 "sweep pool aborted");
                        w.inflight = -1;
                    }
                }
                break;
            }
        }
        shutdown();
        return std::move(outcomes_);
    }

  private:
    /** @return true when a new worker was actually added. */
    bool spawn()
    {
        int cmd[2], res[2];
        if (::pipe(cmd) != 0)
            return false;
        if (::pipe(res) != 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            return false;
        }
        // Flush before forking so buffered output is not emitted twice.
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            ::close(res[0]);
            ::close(res[1]);
            return false;
        }
        if (pid == 0) {
            // Child: keep only this worker's pipe ends. Closing the
            // siblings' ends is what makes the parent see EOF promptly
            // when a sibling dies.
            ::close(cmd[1]);
            ::close(res[0]);
            for (const Worker &w : workers_) {
                if (w.cmdFd >= 0)
                    ::close(w.cmdFd);
                if (w.resFd >= 0)
                    ::close(w.resFd);
            }
            workerLoop(spec_, cmd[0], res[1]);
        }
        ::close(cmd[0]);
        ::close(res[1]);
        Worker w;
        w.pid = pid;
        w.cmdFd = cmd[1];
        w.resFd = res[0];
        w.alive = true;
        workers_.push_back(std::move(w));
        return true;
    }

    /** Hand the next pending cell to @p w (or quit it when drained). */
    void deal(Worker &w)
    {
        if (!pending_.empty()) {
            const std::uint64_t idx = pending_.front();
            pending_.pop_front();
            if (writeFull(w.cmdFd, &idx, sizeof(idx))) {
                w.inflight = static_cast<long>(idx);
            } else {
                // Write side already broken: requeue and let the
                // resFd EOF path reap the worker.
                pending_.push_front(static_cast<std::size_t>(idx));
            }
            return;
        }
        const std::uint64_t q = quitSentinel;
        writeFull(w.cmdFd, &q, sizeof(q));
        ::close(w.cmdFd);
        w.cmdFd = -1;
    }

    void failCell(std::size_t idx, std::string error)
    {
        CellOutcome &o = outcomes_[idx];
        o.ran = true;
        o.ok = false;
        o.error = std::move(error);
        --remaining_;
        if (opts_.onCellDone)
            opts_.onCellDone(idx, o);
    }

    void recordLine(Worker &w, const std::string &line)
    {
        CellRecord rec;
        if (!cellRecordFromLine(line, rec) ||
            rec.cellIndex >= outcomes_.size() ||
            static_cast<long>(rec.cellIndex) != w.inflight) {
            // Protocol corruption: fail the in-flight cell and retire
            // the worker for real — kill it, reap it (which respawns a
            // replacement if work remains), and let the caller stop
            // reading its now-closed pipe.
            if (w.inflight >= 0) {
                failCell(static_cast<std::size_t>(w.inflight),
                         "malformed worker record");
                w.inflight = -1;
            }
            ::kill(w.pid, SIGKILL);
            reap(w);
            return;
        }
        CellOutcome &o = outcomes_[rec.cellIndex];
        o.ran = true;
        o.ok = rec.ok;
        o.error = std::move(rec.error);
        o.seconds = rec.seconds;
        o.hostWallSeconds = rec.hostWallSeconds;
        o.result = std::move(rec.result);
        --remaining_;
        w.inflight = -1;
        if (opts_.onCellDone)
            opts_.onCellDone(rec.cellIndex, o);
        deal(w);
    }

    /** Reap a worker whose result pipe hit EOF. */
    void reap(Worker &w)
    {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        if (w.inflight >= 0) {
            std::string why = "worker ";
            why += std::to_string(w.pid);
            if (WIFSIGNALED(status)) {
                why += " killed by signal ";
                why += std::to_string(WTERMSIG(status));
            } else {
                why += " exited with status ";
                why += std::to_string(WIFEXITED(status)
                                          ? WEXITSTATUS(status)
                                          : -1);
            }
            why += " while running cell ";
            why += spec_.cell(static_cast<std::size_t>(w.inflight))
                       .name();
            failCell(static_cast<std::size_t>(w.inflight),
                     std::move(why));
            w.inflight = -1;
        }
        if (w.cmdFd >= 0) {
            ::close(w.cmdFd);
            w.cmdFd = -1;
        }
        ::close(w.resFd);
        w.resFd = -1;
        w.alive = false;
        // A worker that died mid-write leaves a truncated trailing
        // line (no '\n') in w.buf. Drop it: only complete lines ever
        // reach the deserializer; the in-flight cell already failed
        // with the exit/signal diagnosis above.
        w.buf.clear();
        // Keep the pool at strength while work remains. A failed spawn
        // (fork/pipe error) must not deal to workers_.back() — that is
        // some existing, possibly busy worker.
        if (!pending_.empty() && spawn())
            deal(workers_.back());
    }

    /** @return false when no live worker remains to wait on. */
    bool pollOnce()
    {
        std::vector<pollfd> fds;
        std::vector<std::size_t> who;
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i].alive) {
                fds.push_back(pollfd{workers_[i].resFd, POLLIN, 0});
                who.push_back(i);
            }
        }
        if (fds.empty())
            return false;
        int n = ::poll(fds.data(), fds.size(), -1);
        if (n < 0) {
            if (errno == EINTR)
                return true;
            return false;
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Worker &w = workers_[who[k]];
            char chunk[4096];
            const ssize_t r = ::read(w.resFd, chunk, sizeof(chunk));
            if (r > 0) {
                w.buf.append(chunk, static_cast<std::size_t>(r));
                std::size_t nl;
                while ((nl = w.buf.find('\n')) != std::string::npos) {
                    const std::string line = w.buf.substr(0, nl);
                    w.buf.erase(0, nl + 1);
                    recordLine(w, line);
                    if (!w.alive)
                        break;  // retired by recordLine
                }
            } else if (r == 0 || (r < 0 && errno != EINTR)) {
                reap(w);
            }
        }
        return true;
    }

    void shutdown()
    {
        for (Worker &w : workers_) {
            if (!w.alive)
                continue;
            if (w.cmdFd >= 0)
                deal(w);  // pending_ is empty: sends quit
            // Drain any trailing output until EOF, then reap.
            char chunk[4096];
            for (;;) {
                const ssize_t r = ::read(w.resFd, chunk, sizeof(chunk));
                if (r <= 0)
                    break;
            }
            reapQuietly(w);
        }
    }

    void reapQuietly(Worker &w)
    {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        if (w.cmdFd >= 0) {
            ::close(w.cmdFd);
            w.cmdFd = -1;
        }
        ::close(w.resFd);
        w.resFd = -1;
        w.alive = false;
    }

    const SweepSpec &spec_;
    const SweepOptions &opts_;
    std::deque<std::size_t> pending_;
    std::vector<CellOutcome> outcomes_;
    std::size_t remaining_;
    // deque: spawn() during iteration must not invalidate references.
    std::deque<Worker> workers_;
};

/** Scope guard: a dead worker's command pipe must raise EPIPE, not
 * kill the pool — and the old disposition must come back even when an
 * exception unwinds past the pool. */
struct SigpipeIgnored
{
    struct sigaction old{};
    SigpipeIgnored()
    {
        struct sigaction ign{};
        ign.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ign, &old);
    }
    ~SigpipeIgnored() { ::sigaction(SIGPIPE, &old, nullptr); }
};

std::vector<CellOutcome>
runPool(const SweepSpec &spec, std::deque<std::size_t> pending,
        const SweepOptions &opts)
{
    SigpipeIgnored guard;
    ForkPool pool(spec, std::move(pending), opts);
    return pool.run();
}

#endif // SVW_HAVE_FORK_POOL

} // namespace

SweepResults
runSweep(const SweepSpec &spec, const SweepOptions &opts)
{
    std::deque<std::size_t> pending = selectCells(spec, opts);

    // Serve cache hits before any cell is dealt to a worker; remember
    // the probed keys so successful misses can be stored without
    // re-deriving them.
    std::optional<ResultCache> cache;
    std::vector<std::pair<std::size_t, CellOutcome>> hits;
    std::vector<std::pair<std::size_t, CellKey>> probed;
    if (!opts.cacheDir.empty()) {
        cache.emplace(opts.cacheDir);
        std::deque<std::size_t> misses;
        for (std::size_t idx : pending) {
            const SweepCell &cell = spec.cell(idx);
            if (!cellCacheable(cell)) {
                misses.push_back(idx);
                continue;
            }
            CellKey key = cellKey(cell);
            CellOutcome o;
            if (cache->get(key, o.result)) {
                o.ran = o.ok = o.cached = true;
                if (opts.onCellDone)
                    opts.onCellDone(idx, o);
                hits.emplace_back(idx, std::move(o));
            } else {
                probed.emplace_back(idx, std::move(key));
                misses.push_back(idx);
            }
        }
        pending = std::move(misses);
    }

    std::vector<CellOutcome> outcomes;
#ifdef SVW_HAVE_FORK_POOL
    // Any --jobs>1 request takes the pool — even for a single selected
    // cell — so the advertised crash/exception containment does not
    // silently depend on the cell count.
    if (opts.jobs > 1 && !pending.empty())
        outcomes = runPool(spec, std::move(pending), opts);
    else
        outcomes = runSequential(spec, std::move(pending), opts);
#else
    if (opts.jobs > 1)
        svw_warn("--jobs requires fork(); running sequentially");
    outcomes = runSequential(spec, std::move(pending), opts);
#endif

    for (auto &[idx, o] : hits)
        outcomes[idx] = std::move(o);
    for (const auto &[idx, key] : probed) {
        const CellOutcome &o = outcomes[idx];
        if (o.ran && o.ok)
            cache->put(key, o.result);
    }
    return SweepResults(spec, std::move(outcomes));
}

} // namespace svw::harness
