#include "harness/executor.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/logging.hh"
#include "prog/workloads/workloads.hh"

namespace svw::harness {

double
hostSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

const Program &
ProgramCache::get(const std::string &workload, std::uint64_t targetInsts)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slot = &slots_[std::make_pair(workload, targetInsts)];
    }
    // Build outside the map mutex so different programs build in
    // parallel; call_once serializes (and de-duplicates) builders of
    // *this* program. A throwing build leaves the flag unset, so the
    // next get() retries instead of serving an empty slot.
    std::call_once(slot->once, [&] {
        slot->program.emplace(workloads::make(workload, targetInsts));
        // Force the lazy per-instruction predecode table NOW, while
        // this thread still owns the program exclusively: once the
        // slot is published, thread-pool workers share the Program
        // const-ref, and a first-use build from two cores at once
        // would race on the mutable table.
        slot->program->predecoded();
        builds_.fetch_add(1, std::memory_order_relaxed);
    });
    return *slot->program;
}

ExecCounters &
execCounters()
{
    static ExecCounters counters;
    return counters;
}

std::uint64_t
runCellCalls()
{
    return execCounters().cellRuns();
}

std::size_t
MemoryResultCache::entryBytes(const Entry &e) const
{
    // Footprint estimate, not an exact malloc accounting: the fixed
    // Entry (RunResult is flat), the key material string, and a small
    // allowance for the map node + list node overhead.
    return sizeof(Entry) + e.material.size() + 64;
}

bool
MemoryResultCache::get(const CellKey &key, RunResult &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key.hash);
    if (it == entries_.end())
        return false;
    if (it->second.material != key.material)
        return false;  // hash collision: never serve a wrong result
    out = it->second.result;
    lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh recency
    ++hits_;
    return true;
}

void
MemoryResultCache::evictOverCapLocked()
{
    // The newest entry survives even a sub-entry cap: a just-stored
    // result must be servable back, and a cap of "less than one
    // entry" should degrade to "cache of one", not "cache of none".
    while (maxBytes_ > 0 && bytes_ > maxBytes_ && entries_.size() > 1) {
        const std::uint64_t victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        lru_.pop_back();
        ++evictions_;
    }
}

void
MemoryResultCache::put(const CellKey &key, const RunResult &r)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
        bytes_ -= it->second.bytes;
        it->second.material = key.material;
        it->second.result = r;
        it->second.bytes = entryBytes(it->second);
        bytes_ += it->second.bytes;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
    } else {
        lru_.push_front(key.hash);
        Entry &e = entries_[key.hash];
        e.material = key.material;
        e.result = r;
        e.lru = lru_.begin();
        e.bytes = entryBytes(e);
        bytes_ += e.bytes;
    }
    evictOverCapLocked();
}

std::size_t
MemoryResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
MemoryResultCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::uint64_t
MemoryResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
MemoryResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
MemoryResultCache::setMaxBytes(std::uint64_t maxBytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxBytes_ = maxBytes;
    evictOverCapLocked();
}

std::uint64_t
MemoryResultCache::maxBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return maxBytes_;
}

void
MemoryResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    hits_ = 0;
    evictions_ = 0;
}

MemoryResultCache &
processMemoryResultCache()
{
    // Function-local static, like processProgramCache: results persist
    // for the process so consecutive cached sweeps never re-read disk.
    static MemoryResultCache cache;
    return cache;
}

ProgramCache &
processProgramCache()
{
    // Function-local static: built programs persist for the process
    // (bench binaries exit after a few sweeps; tests share workloads
    // across many small sweeps). Pool workers fork with a snapshot of
    // the parent's cache and extend their own copy.
    static ProgramCache cache;
    return cache;
}

CellOutcome
runCell(const SweepCell &cell, ProgramCache &cache, bool profile)
{
    execCounters().addCellRuns(1);
    CellOutcome o;
    o.ran = true;
    const Program &prog = cache.get(cell.workload, cell.targetInsts);

    RunRequest req;
    req.workload = cell.workload;
    req.targetInsts = cell.targetInsts;
    req.config = cell.config;
    req.goldenCheck = cell.goldenCheck;
    req.profile = profile;
    req.hook = cell.hook;

    const unsigned reps = std::max(1u, cell.timingReps);
    // A stateful hook would make reps non-equivalent simulations (the
    // "metrics identical across reps" assumption below breaks).
    svw_assert(!cell.hook || reps == 1,
               "timingReps > 1 with a per-cycle hook: ", cell.name());
    for (unsigned r = 0; r < reps; ++r) {
        const double t0 = hostSeconds();
        RunResult res = runOne(req, prog);
        const double secs = hostSeconds() - t0;
        o.hostWallSeconds += secs;
        if (r == 0 || secs < o.seconds)
            o.seconds = secs;
        // Cells are deterministic, so metrics are identical across
        // timing reps; keep the last.
        if (r + 1 == reps)
            o.result = std::move(res);
    }
    o.ok = true;
    return o;
}

} // namespace svw::harness
