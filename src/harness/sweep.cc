#include "harness/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "base/logging.hh"
#include "harness/serialize.hh"
#include "prog/workloads/workloads.hh"

namespace svw::harness {

std::size_t
SweepSpec::add(SweepCell cell)
{
    // Validate before any mutation: the panics throw, and a caught
    // rejection must leave the spec usable.
    const std::string n = cell.name();
    svw_assert(!byName_.count(n), "duplicate sweep cell ", n);
    if (cell.baseline) {
        svw_assert(!baselineByGroup_.count(cell.group),
                   "two baselines in group ", cell.group);
    }

    const std::size_t idx = cells_.size();
    byName_[n] = idx;
    if (!groupIndex_.count(cell.group)) {
        groupIndex_[cell.group] = groups_.size();
        groups_.push_back(cell.group);
    }
    if (cell.baseline)
        baselineByGroup_[cell.group] = idx;
    cells_.push_back(std::move(cell));
    return idx;
}

std::size_t
SweepSpec::groupIndex(const std::string &group) const
{
    auto it = groupIndex_.find(group);
    svw_assert(it != groupIndex_.end(), "unknown sweep group ", group);
    return it->second;
}

std::size_t
SweepSpec::index(const std::string &group, const std::string &label) const
{
    auto it = byName_.find(group + "/" + label);
    svw_assert(it != byName_.end(), "unknown sweep cell ", group, "/",
               label);
    return it->second;
}

std::size_t
SweepSpec::baselineIndex(const std::string &group) const
{
    auto it = baselineByGroup_.find(group);
    svw_assert(it != baselineByGroup_.end(), "group ", group,
               " has no baseline cell");
    return it->second;
}

SweepResults::SweepResults(SweepSpec spec, std::vector<CellOutcome> outcomes)
    : spec_(std::move(spec)), outcomes_(std::move(outcomes))
{
    svw_assert(outcomes_.size() == spec_.size(),
               "outcome count does not match spec ", spec_.name());
}

const RunResult &
SweepResults::result(const std::string &group, const std::string &label) const
{
    const CellOutcome &o = outcomes_.at(spec_.index(group, label));
    svw_assert(o.ran, "cell ", group, "/", label,
               " was not selected by this shard");
    svw_assert(o.ok, "cell ", group, "/", label, " failed: ", o.error);
    return o.result;
}

const RunResult &
SweepResults::baseline(const std::string &group) const
{
    const std::size_t idx = spec_.baselineIndex(group);
    const CellOutcome &o = outcomes_.at(idx);
    svw_assert(o.ran && o.ok, "baseline of group ", group,
               " unavailable: ", o.error);
    return o.result;
}

std::vector<std::string>
SweepResults::shardGroups() const
{
    std::vector<std::string> out;
    for (const std::string &g : spec_.groups()) {
        for (std::size_t i = 0; i < spec_.size(); ++i) {
            if (spec_.cell(i).group == g && outcomes_[i].ran) {
                out.push_back(g);
                break;
            }
        }
    }
    return out;
}

bool
SweepResults::groupOk(const std::string &group) const
{
    bool any = false;
    for (std::size_t i = 0; i < spec_.size(); ++i) {
        if (spec_.cell(i).group != group)
            continue;
        any = true;
        if (!outcomes_[i].ran || !outcomes_[i].ok)
            return false;
    }
    return any;
}

std::size_t
SweepResults::failures() const
{
    std::size_t n = 0;
    for (const CellOutcome &o : outcomes_) {
        if (o.ran && !o.ok)
            ++n;
    }
    return n;
}

// ---------------------------------------------------------------------------
// Persistent result cache
// ---------------------------------------------------------------------------

std::string
CellKey::fileName() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx.json",
                  static_cast<unsigned long long>(hash));
    return buf;
}

CellKey
cellKey(const SweepCell &cell)
{
    std::ostringstream os;
    // The config *label* is keyed alongside the expanded CoreParams:
    // the cached RunResult embeds it, and two ExperimentConfigs can
    // normalize to identical machine knobs while labeling differently
    // (e.g. svwReplace with SVW disabled) — sharing their entry would
    // serve a result stamped with the other experiment's name.
    // Intentional cross-figure sharing is unaffected: identical
    // ExperimentConfigs have identical labels.
    os << "version=" << resultCacheCodeVersion
       << "|workload=" << cell.workload
       << "|insts=" << cell.targetInsts
       << "|golden=" << (cell.goldenCheck ? 1 : 0)
       << "|label=" << configLabel(cell.config)
       << '|' << coreParamsKeyText(buildParams(cell.config))
       // Content identity for workloads whose name is not a complete
       // recipe (trace files); empty for every other workload, so
       // existing cache entries stay valid.
       << workloads::cacheKeyAugment(cell.workload);

    CellKey key;
    key.material = os.str();
    // FNV-1a 64.
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char ch : key.material) {
        h ^= ch;
        h *= 1099511628211ull;
    }
    key.hash = h;
    return key;
}

bool
cellCacheable(const SweepCell &cell)
{
    return !cell.hook && cell.timingReps <= 1 && !cell.neverCache;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec && !std::filesystem::is_directory(dir_)) {
        svw_fatal("cannot create result-cache directory ", dir_, ": ",
                  ec.message());
    }
}

void
ResultCache::collectTempLitter() const
{
    // GC temp droppings from writers that died between open and
    // rename (e.g. an OOM-killed driver shard). An hour of age is far
    // beyond any live put(), so this never races a healthy writer;
    // all errors are ignored — litter is cosmetic, not correctness.
    // Only temp-named files are ever stat'ed, and the walk runs once
    // per process from the first put(), so fully warm (read-only)
    // runs never pay the directory scan.
    namespace fs = std::filesystem;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    for (fs::directory_iterator it(dir_, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->path().filename().string().find(".tmp.") ==
            std::string::npos) {
            continue;
        }
        std::error_code fec;
        const auto mtime = fs::last_write_time(it->path(), fec);
        if (!fec && now - mtime > std::chrono::hours(1))
            fs::remove(it->path(), fec);
    }
}

bool
ResultCache::get(const CellKey &key, RunResult &out) const
{
    const std::string path = dir_ + "/" + key.fileName();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    std::string material;
    RunResult r;
    if (!cacheEntryFromLine(line, material, r))
        return false;  // corruption / foreign file: treat as a miss
    if (material != key.material)
        return false;  // hash collision: never serve a wrong result
    out = std::move(r);
    // Refresh the entry's access stamp so trimToBytes evicts genuinely
    // cold entries first. mtime, not atime: most mounts are noatime/
    // relatime, so atime is not a usable recency signal. Best effort —
    // a read-only cache dir still serves hits, it just trims FIFO.
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return true;
}

void
ResultCache::trimToBytes(std::uint64_t maxBytes) const
{
    namespace fs = std::filesystem;

    // Entry files only: 16 hex digits + ".json". Anything else in the
    // directory — .tmp. files mid-put, user droppings — is not ours to
    // delete here (temp litter has its own age-gated GC).
    auto isEntryName = [](const std::string &name) {
        if (name.size() != 21 || name.compare(16, 5, ".json") != 0)
            return false;
        return name.find_first_not_of("0123456789abcdef") == 16;
    };

    struct Entry
    {
        fs::file_time_type mtime;
        std::uint64_t size;
        fs::path path;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!isEntryName(it->path().filename().string()))
            continue;
        std::error_code fec;
        const auto mtime = fs::last_write_time(it->path(), fec);
        if (fec)
            continue;
        const auto size = fs::file_size(it->path(), fec);
        if (fec)
            continue;
        total += size;
        entries.push_back(Entry{mtime, size, it->path()});
    }
    if (total <= maxBytes)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Entry &e : entries) {
        if (total <= maxBytes)
            break;
        std::error_code rec;
        fs::remove(e.path, rec);
        if (!rec)
            total -= e.size;
    }
}

void
ResultCache::put(const CellKey &key, const RunResult &r) const
{
    namespace fs = std::filesystem;
    if (!gcDone_) {
        gcDone_ = true;
        collectTempLitter();
    }
    const std::string target = dir_ + "/" + key.fileName();
    // Same-directory temp + rename: rename(2) is atomic, so a
    // concurrent reader (or a sibling sweep_driver shard writing the
    // same key) sees a complete entry or none. The hostname+pid
    // suffix keeps concurrent writers off each other's temp files —
    // pid alone is not unique across the hosts of an ssh-launched
    // shard set sharing one cache dir.
    char host[64] = "localhost";
    (void)::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    const std::string tmp = target + ".tmp." + host + "." +
                            std::to_string(::getpid());
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf) {
            svw_warn("result cache: cannot write ", tmp);
            return;
        }
        outf << cacheEntryToLine(key.material, r);
        outf.flush();
        if (!outf) {
            svw_warn("result cache: short write to ", tmp);
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) {
        svw_warn("result cache: rename to ", target, " failed: ",
                 ec.message());
        fs::remove(tmp, ec);
    }
}

} // namespace svw::harness
