#include "harness/sweep.hh"

#include "base/logging.hh"

namespace svw::harness {

std::size_t
SweepSpec::add(SweepCell cell)
{
    // Validate before any mutation: the panics throw, and a caught
    // rejection must leave the spec usable.
    const std::string n = cell.name();
    svw_assert(!byName_.count(n), "duplicate sweep cell ", n);
    if (cell.baseline) {
        svw_assert(!baselineByGroup_.count(cell.group),
                   "two baselines in group ", cell.group);
    }

    const std::size_t idx = cells_.size();
    byName_[n] = idx;
    if (!groupIndex_.count(cell.group)) {
        groupIndex_[cell.group] = groups_.size();
        groups_.push_back(cell.group);
    }
    if (cell.baseline)
        baselineByGroup_[cell.group] = idx;
    cells_.push_back(std::move(cell));
    return idx;
}

std::size_t
SweepSpec::groupIndex(const std::string &group) const
{
    auto it = groupIndex_.find(group);
    svw_assert(it != groupIndex_.end(), "unknown sweep group ", group);
    return it->second;
}

std::size_t
SweepSpec::index(const std::string &group, const std::string &label) const
{
    auto it = byName_.find(group + "/" + label);
    svw_assert(it != byName_.end(), "unknown sweep cell ", group, "/",
               label);
    return it->second;
}

std::size_t
SweepSpec::baselineIndex(const std::string &group) const
{
    auto it = baselineByGroup_.find(group);
    svw_assert(it != baselineByGroup_.end(), "group ", group,
               " has no baseline cell");
    return it->second;
}

SweepResults::SweepResults(SweepSpec spec, std::vector<CellOutcome> outcomes)
    : spec_(std::move(spec)), outcomes_(std::move(outcomes))
{
    svw_assert(outcomes_.size() == spec_.size(),
               "outcome count does not match spec ", spec_.name());
}

const RunResult &
SweepResults::result(const std::string &group, const std::string &label) const
{
    const CellOutcome &o = outcomes_.at(spec_.index(group, label));
    svw_assert(o.ran, "cell ", group, "/", label,
               " was not selected by this shard");
    svw_assert(o.ok, "cell ", group, "/", label, " failed: ", o.error);
    return o.result;
}

const RunResult &
SweepResults::baseline(const std::string &group) const
{
    const std::size_t idx = spec_.baselineIndex(group);
    const CellOutcome &o = outcomes_.at(idx);
    svw_assert(o.ran && o.ok, "baseline of group ", group,
               " unavailable: ", o.error);
    return o.result;
}

std::vector<std::string>
SweepResults::shardGroups() const
{
    std::vector<std::string> out;
    for (const std::string &g : spec_.groups()) {
        for (std::size_t i = 0; i < spec_.size(); ++i) {
            if (spec_.cell(i).group == g && outcomes_[i].ran) {
                out.push_back(g);
                break;
            }
        }
    }
    return out;
}

bool
SweepResults::groupOk(const std::string &group) const
{
    bool any = false;
    for (std::size_t i = 0; i < spec_.size(); ++i) {
        if (spec_.cell(i).group != group)
            continue;
        any = true;
        if (!outcomes_[i].ran || !outcomes_[i].ok)
            return false;
    }
    return any;
}

std::size_t
SweepResults::failures() const
{
    std::size_t n = 0;
    for (const CellOutcome &o : outcomes_) {
        if (o.ran && !o.ok)
            ++n;
    }
    return n;
}

} // namespace svw::harness
