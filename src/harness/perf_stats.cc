#include "harness/perf_stats.hh"

#include <algorithm>
#include <cmath>

namespace svw::harness {

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

MannWhitneyResult
mannWhitneyU(const std::vector<double> &a, const std::vector<double> &b)
{
    MannWhitneyResult res;
    const std::size_t n1 = a.size(), n2 = b.size();
    res.medianShift = median(a) - median(b);
    if (n1 == 0 || n2 == 0)
        return res;

    // Rank the pooled sample with average ranks for ties.
    struct Obs
    {
        double v;
        bool fromA;
    };
    std::vector<Obs> pool;
    pool.reserve(n1 + n2);
    for (double v : a)
        pool.push_back({v, true});
    for (double v : b)
        pool.push_back({v, false});
    std::sort(pool.begin(), pool.end(),
              [](const Obs &x, const Obs &y) { return x.v < y.v; });

    const std::size_t n = pool.size();
    double r1 = 0.0;         // rank sum of sample A
    double tieTerm = 0.0;    // sum over tie groups of t^3 - t
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j < n && pool[j].v == pool[i].v)
            ++j;
        const double t = double(j - i);
        // Average rank of the tied block (ranks are 1-based).
        const double rank = 0.5 * (double(i + 1) + double(j));
        for (std::size_t k = i; k < j; ++k)
            if (pool[k].fromA)
                r1 += rank;
        if (t > 1.0)
            tieTerm += t * t * t - t;
        i = j;
    }

    res.u1 = r1 - 0.5 * double(n1) * double(n1 + 1);
    res.u2 = double(n1) * double(n2) - res.u1;

    const double mu = 0.5 * double(n1) * double(n2);
    const double nn = double(n);
    const double var = double(n1) * double(n2) / 12.0 *
        ((nn + 1.0) - tieTerm / (nn * (nn - 1.0)));
    if (var <= 0.0) {
        // Every observation tied: no evidence of a shift.
        res.z = 0.0;
        res.p = 1.0;
        return res;
    }
    // Continuity correction: shrink |U - mu| by 0.5 toward zero.
    double d = res.u1 - mu;
    if (d > 0.5)
        d -= 0.5;
    else if (d < -0.5)
        d += 0.5;
    else
        d = 0.0;
    res.z = d / std::sqrt(var);
    res.p = std::erfc(std::fabs(res.z) / std::sqrt(2.0));
    return res;
}

} // namespace svw::harness
