#include "harness/batch.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <numeric>
#include <tuple>

#include "base/logging.hh"
#include "func/interp.hh"
#include "harness/executor.hh"

namespace svw::harness {

namespace {

// Atomic: thread-pool workers (--threads=N) run runBatch concurrently
// in one address space. Relaxed is enough — these are test/telemetry
// counters, never synchronization.
std::atomic<std::uint64_t> gBatchRuns{0};
std::atomic<std::uint64_t> gBatchedCells{0};

/** Cells may share a unit iff these match (never across workloads;
 * golden lanes never mix with unchecked lanes). */
using BatchKey = std::tuple<std::string, std::uint64_t, bool>;

BatchKey
batchKeyOf(const SweepCell &cell)
{
    return {cell.workload, cell.targetInsts, cell.goldenCheck};
}

/**
 * Lockstep slice width in cycles. Small enough that the lanes' working
 * sets stay interleaved on one core (the point of co-residence), large
 * enough that the lane-rotation overhead is noise against the ~100+
 * host instructions per simulated cycle. Host-side scheduling only:
 * any value produces the same simulation.
 */
constexpr std::uint64_t laneQuantum = 4096;

} // namespace

std::uint64_t
batchRuns()
{
    return gBatchRuns.load(std::memory_order_relaxed);
}

std::uint64_t
batchedCells()
{
    return gBatchedCells.load(std::memory_order_relaxed);
}

bool
cellBatchable(const SweepCell &cell)
{
    return !cell.hook && cell.timingReps <= 1 && !cell.neverCache;
}

unsigned
resolveBatchK(unsigned requested)
{
    // Auto default: 4 lanes. Figure rows run 5-6 configs per workload,
    // so one row usually makes one or two units; four pipeline states
    // (ROB + LQ/SQ + rename arrays, ~1 MB each after the PR 3 hot/cold
    // split) still fit alongside each other in a desktop L2/L3.
    return requested == 0 ? 4 : requested;
}

std::vector<std::vector<std::size_t>>
planBatches(const SweepSpec &spec, const std::deque<std::size_t> &pending,
            unsigned k)
{
    std::vector<std::vector<std::size_t>> units;
    // Bucket batchable cells by key; map iteration order is irrelevant
    // because finished units are sorted by first spec index below.
    std::map<BatchKey, std::vector<std::size_t>> open;
    for (std::size_t idx : pending) {
        const SweepCell &cell = spec.cell(idx);
        if (k <= 1 || !cellBatchable(cell)) {
            units.push_back({idx});
            continue;
        }
        std::vector<std::size_t> &bucket = open[batchKeyOf(cell)];
        bucket.push_back(idx);
        if (bucket.size() >= k) {
            units.push_back(std::move(bucket));
            bucket.clear();
        }
    }
    for (auto &[key, bucket] : open) {
        if (!bucket.empty())
            units.push_back(std::move(bucket));
    }
    std::sort(units.begin(), units.end(),
              [](const auto &a, const auto &b) { return a[0] < b[0]; });
    return units;
}

std::vector<CellOutcome>
runBatch(const SweepSpec &spec, const std::vector<std::size_t> &unit,
         ProgramCache &cache, bool profile)
{
    svw_assert(!unit.empty(), "empty batch unit");
    const SweepCell &first = spec.cell(unit[0]);
    for (std::size_t idx : unit) {
        const SweepCell &cell = spec.cell(idx);
        svw_assert(cellBatchable(cell),
                   "unbatchable cell in a batch unit: ", cell.name());
        svw_assert(batchKeyOf(cell) == batchKeyOf(first),
                   "batch unit crosses workloads: ", cell.name(),
                   " vs ", first.name());
    }

    const Program &prog = cache.get(first.workload, first.targetInsts);
    if (unit.size() >= 2) {
        gBatchRuns.fetch_add(1, std::memory_order_relaxed);
        gBatchedCells.fetch_add(unit.size(), std::memory_order_relaxed);
    }

    // One read-only program image backs every lane's committed state
    // (and the shared golden model): K cores copy-on-write against it
    // instead of each duplicating the initial segments.
    MemoryImage baseImage;
    baseImage.loadProgram(prog);

    struct Lane
    {
        RunRequest req;
        std::unique_ptr<stats::StatRegistry> reg;
        std::unique_ptr<Core> core;
        RunOutcome out;
        prof::StageTimes stageTimes;  ///< used when profiling
    };
    std::vector<Lane> lanes(unit.size());
    // Lockstep scheduler state, kept as dense parallel arrays so the
    // per-quantum rotation scans flat flags, not the lane objects.
    std::vector<unsigned char> done(unit.size(), 0);

    for (std::size_t i = 0; i < unit.size(); ++i) {
        const SweepCell &cell = spec.cell(unit[i]);
        Lane &l = lanes[i];
        l.req.workload = cell.workload;
        l.req.targetInsts = cell.targetInsts;
        l.req.config = cell.config;
        l.req.goldenCheck = cell.goldenCheck;
        l.reg = std::make_unique<stats::StatRegistry>();
        CoreParams params = buildParams(cell.config);
        l.core = std::make_unique<Core>(params, prog, *l.reg, &baseImage);
        if (profile)
            l.core->setStageProfiler(&l.stageTimes);
    }

    const std::uint64_t maxCycles =
        100 * first.targetInsts + 1'000'000;  // runOne's auto cap
    const double t0 = hostSeconds();
    std::size_t live = lanes.size();
    while (live > 0) {
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            if (done[i])
                continue;
            if (lanes[i].core->advance(~std::uint64_t(0), maxCycles,
                                       laneQuantum)) {
                done[i] = 1;
                --live;
            }
        }
    }
    const double batchSeconds = hostSeconds() - t0;

    std::vector<CellOutcome> outcomes(unit.size());
    std::uint64_t totalCycles = 0;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        Lane &l = lanes[i];
        l.out = l.core->outcome();
        totalCycles += l.out.cycles;
        CellOutcome &o = outcomes[i];
        o.ran = true;
        o.result = extractRunResult(l.req, *l.reg, l.out);
    }

    if (first.goldenCheck) {
        // One interpreter pass serves every lane: advance it to each
        // lane's retired-instruction count in ascending order and
        // compare there. The interpreter is deterministic, so its
        // state at count N is identical to a fresh run(N) — the
        // comparison each lane sees is exactly runOne's.
        std::vector<std::size_t> order(lanes.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return lanes[a].out.instructions <
                                    lanes[b].out.instructions;
                         });
        Interp golden(prog, &baseImage);
        std::uint64_t reached = 0;
        for (std::size_t i : order) {
            Lane &l = lanes[i];
            svw_assert(l.out.instructions >= reached, "golden order");
            golden.run(l.out.instructions - reached);
            reached = l.out.instructions;
            goldenCompare(l.req, *l.core, l.out, golden,
                          outcomes[i].result);
        }
    }

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        CellOutcome &o = outcomes[i];
        o.ok = true;
        o.seconds = totalCycles
            ? batchSeconds * double(lanes[i].out.cycles) /
                  double(totalCycles)
            : batchSeconds;
        o.hostWallSeconds = o.seconds;
        if (profile) {
            // Stage counters are exact per lane (each lane has its own
            // StageTimes); only the shared harness overhead (image
            // load, golden pass, extraction) is apportioned, by the
            // same cycle share as `seconds`.
            RunResult &r = o.result;
            for (unsigned s = 0; s < prof::NumStages; ++s)
                r.profStageNs[s] = lanes[i].stageTimes.ns[s];
            r.profTicks = lanes[i].stageTimes.ticks;
            r.profCellNs =
                static_cast<std::uint64_t>(o.seconds * 1e9);
        }
    }
    return outcomes;
}

} // namespace svw::harness
