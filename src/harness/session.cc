/**
 * @file
 * SweepSession implementation — and the execution machinery behind it.
 *
 * Everything that *orchestrates* a sweep lives here: shard selection,
 * cache probing, unit planning, the sequential / thread-pool / fork-
 * pool execution paths, and the per-cell event stream. What *runs* a
 * cell (runCell, the caches, the counters) stays in executor.cc; the
 * legacy runSweep entry point is defined at the bottom of this file as
 * a one-line wrapper over a blocking session.
 *
 * Fork-pool worker protocol (docs/ARCHITECTURE.md "Sweep engine"): the
 * parent forks N workers after the spec is built (so cells' hooks and
 * configs are inherited), then dynamically deals planned units to idle
 * workers over per-worker command pipes (an 8-byte little-endian lane
 * count, ~0 = quit, followed by that many 8-byte cell indices). A
 * worker executes each unit in isolation and streams back one JSON
 * line per cell in unit order (harness/serialize.hh) on its result
 * pipe. A crashed worker fails only its in-flight unit's unreported
 * cells; the parent reaps it, respawns a replacement, and the merged
 * report stays intact.
 */

#include "harness/session.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fcntl.h>

#include "base/logging.hh"
#include "base/profile.hh"
#include "harness/batch.hh"
#include "harness/serialize.hh"

#if defined(__unix__) || defined(__APPLE__)
#define SVW_HAVE_FORK_POOL 1
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace svw::harness {

namespace {
int gWorkerResultFd = -1;
} // namespace

int
workerResultFd()
{
    return gWorkerResultFd;
}

namespace {

/** Cell indices selected by the shard, in spec order. */
std::deque<std::size_t>
selectCells(const SweepSpec &spec, const SweepOptions &opts)
{
    svw_assert(opts.jobs >= 1, "sweep --jobs must be >= 1");
    // Two parallelism requests for one sweep is a caller bug: which
    // one wins would be silent policy. The flag layer exits 2 with a
    // usage message before this can trip.
    svw_assert(!(opts.threads > 0 && opts.jobs > 1),
               "--jobs and --threads are mutually exclusive; got jobs=",
               opts.jobs, " threads=", opts.threads);
    svw_assert(opts.shardCount >= 1, "sweep shard count must be >= 1");
    svw_assert(opts.shardIndex < opts.shardCount,
               "sweep shard index ", opts.shardIndex,
               " out of range for /", opts.shardCount);
    std::deque<std::size_t> sel;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const std::size_t g = spec.groupIndex(spec.cell(i).group);
        if (g % opts.shardCount == opts.shardIndex)
            sel.push_back(i);
    }
    // A split wider than the group count leaves trailing shards empty;
    // a silent empty report reads like success, so tell driver users
    // their split is misconfigured.
    if (sel.empty() && opts.shardCount > 1 && spec.size() > 0) {
        std::fprintf(stderr,
                     "warning: --shard=%u/%u selects no groups of sweep"
                     " '%s' (%zu groups; shards beyond the group count"
                     " are empty)\n",
                     opts.shardIndex, opts.shardCount,
                     spec.name().c_str(), spec.groups().size());
    }
    return sel;
}

using BatchUnit = std::vector<std::size_t>;

/** Run @p unit in the calling thread; does not catch (the blocking
 * sequential path propagates cell failures like a plain runOne loop). */
std::vector<CellOutcome>
runUnitHere(const SweepSpec &spec, const BatchUnit &unit, bool profile)
{
    ProgramCache &cache = processProgramCache();
    if (unit.size() == 1)
        return {runCell(spec.cell(unit[0]), cache, profile)};
    std::vector<CellOutcome> outs = runBatch(spec, unit, cache, profile);
    execCounters().addCellRuns(unit.size());  // lanes are cells
    return outs;
}

/** Run @p unit with the pool paths' all-or-nothing containment: a
 * throw inside the unit fails every cell of the unit with the
 * exception text, and the caller lives on. */
std::vector<CellOutcome>
runUnitContained(const SweepSpec &spec, const BatchUnit &unit,
                 bool profile)
{
    std::vector<CellOutcome> outs(unit.size());
    try {
        outs = runUnitHere(spec, unit, profile);
    } catch (const std::exception &e) {
        for (CellOutcome &o : outs) {
            o = CellOutcome{};
            o.ran = true;
            o.ok = false;
            o.error = e.what();
        }
    } catch (...) {
        for (CellOutcome &o : outs) {
            o = CellOutcome{};
            o.ran = true;
            o.ok = false;
            o.error = "unknown exception";
        }
    }
    return outs;
}

/**
 * Thread-pool execution: N std::thread workers pull planned units
 * from a shared deque and run them in this address space, sharing the
 * process ProgramCache (thread-safe build-once) and bumping the
 * executor's atomic counters. Everything a unit *writes* is
 * thread-private (its cells' Core/StatRegistry/MemoryImage lanes and
 * its distinct outcome slots); everything shared is immutable or
 * internally synchronized — so merged outcomes are byte-identical to
 * the sequential run by construction.
 *
 * Containment mirrors the fork pool's unit protocol: a throw inside a
 * unit fails all of that unit's cells (all-or-nothing, like a fork
 * worker's catch block) and the thread pulls the next unit. The
 * onCellDone callback is invoked under the pool mutex (callbacks are
 * not required to be thread-safe), in completion order like the fork
 * pool; a callback that throws stops the pool and rethrows to the
 * caller after the join, matching the in-process path where callback
 * exceptions propagate out of runSweep.
 */
std::vector<CellOutcome>
runThreadPool(const SweepSpec &spec, const std::vector<BatchUnit> &units,
              const SweepOptions &opts, unsigned nThreads)
{
    std::vector<CellOutcome> outcomes(spec.size());
    std::deque<BatchUnit> pending(units.begin(), units.end());
    std::mutex mutex;                    // guards pending + record/callback
    std::exception_ptr callbackError;    // first onCellDone throw
    bool stop = false;                   // set when callbackError is set

    auto workerMain = [&] {
        for (;;) {
            BatchUnit unit;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (stop || pending.empty())
                    return;
                unit = std::move(pending.front());
                pending.pop_front();
            }
            std::vector<CellOutcome> outs =
                runUnitContained(spec, unit, opts.profile);
            std::lock_guard<std::mutex> lock(mutex);
            for (std::size_t i = 0; i < unit.size(); ++i)
                outcomes[unit[i]] = std::move(outs[i]);
            if (opts.onCellDone && !stop) {
                try {
                    for (std::size_t idx : unit)
                        opts.onCellDone(idx, outcomes[idx]);
                } catch (...) {
                    callbackError = std::current_exception();
                    stop = true;
                }
            }
        }
    };

    // One thread per slot, capped by the work available (a unit is
    // the deal granularity, exactly like the fork pool).
    const std::size_t n = std::min<std::size_t>(nThreads, units.size());
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers.emplace_back(workerMain);
    for (std::thread &t : workers)
        t.join();
    if (callbackError)
        std::rethrow_exception(callbackError);
    return outcomes;
}

#ifdef SVW_HAVE_FORK_POOL

constexpr std::uint64_t quitSentinel = ~std::uint64_t(0);

bool
readFull(int fd, void *buf, std::size_t n)
{
    auto *p = static_cast<char *>(buf);
    while (n > 0) {
        const ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false;
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

bool
writeFull(int fd, const void *buf, std::size_t n)
{
    const auto *p = static_cast<const char *>(buf);
    while (n > 0) {
        const ssize_t r = ::write(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

/** Worker main loop: pull unit frames (lane count + cell indices),
 * push one result line per cell in unit order. */
[[noreturn]] void
workerLoop(const SweepSpec &spec, int cmdFd, int resFd, bool profile)
{
    gWorkerResultFd = resFd;  // crash-injection test hooks write here
    ProgramCache &cache = processProgramCache();
    for (;;) {
        std::uint64_t count = 0;
        if (!readFull(cmdFd, &count, sizeof(count)) ||
            count == quitSentinel) {
            break;
        }
        std::vector<std::size_t> unit(static_cast<std::size_t>(count));
        bool eof = false;
        for (std::size_t &idx : unit) {
            std::uint64_t v = 0;
            if (!readFull(cmdFd, &v, sizeof(v))) {
                eof = true;
                break;
            }
            idx = static_cast<std::size_t>(v);
        }
        if (eof || unit.empty())
            break;

        std::vector<CellRecord> recs(unit.size());
        for (std::size_t i = 0; i < unit.size(); ++i)
            recs[i].cellIndex = unit[i];
        try {
            std::vector<CellOutcome> outs;
            if (unit.size() == 1) {
                outs.push_back(runCell(spec.cell(unit[0]), cache,
                                       profile));
            } else {
                outs = runBatch(spec, unit, cache, profile);
                execCounters().addCellRuns(unit.size());  // lanes
            }
            for (std::size_t i = 0; i < unit.size(); ++i) {
                recs[i].ok = outs[i].ok;
                recs[i].seconds = outs[i].seconds;
                recs[i].hostWallSeconds = outs[i].hostWallSeconds;
                recs[i].result = std::move(outs[i].result);
            }
        } catch (const std::exception &e) {
            // A batch is all-or-nothing, like a cell: a lane's golden
            // mismatch (or any throw) fails every cell of the unit.
            for (CellRecord &rec : recs) {
                rec.ok = false;
                rec.error = e.what();
            }
        } catch (...) {
            for (CellRecord &rec : recs) {
                rec.ok = false;
                rec.error = "unknown exception";
            }
        }
        bool writeFailed = false;
        for (const CellRecord &rec : recs) {
            const std::string line = cellRecordToLine(rec);
            if (!writeFull(resFd, line.data(), line.size())) {
                writeFailed = true;
                break;
            }
        }
        if (writeFailed)
            break;
    }
    // _exit: skip the parent's flushed-but-inherited stdio buffers and
    // static destructors; the worker must never emit parent output.
    ::_exit(0);
}

struct Worker
{
    pid_t pid = -1;
    int cmdFd = -1;       ///< parent -> worker unit frames
    int resFd = -1;       ///< worker -> parent result lines
    BatchUnit inflight;   ///< unit being executed (empty = idle)
    std::size_t reported = 0;  ///< unit cells already recorded
    bool alive = false;
    std::string buf;      ///< partial result-line accumulator
};

class ForkPool
{
  public:
    ForkPool(const SweepSpec &spec, std::deque<BatchUnit> pending,
             const SweepOptions &opts)
        : spec_(spec), opts_(opts), pending_(std::move(pending)),
          outcomes_(spec.size())
    {
        for (const BatchUnit &u : pending_)
            remaining_ += u.size();
        const unsigned jobs = opts.jobs;
        // One worker per job slot, capped by the work available (a
        // unit is the deal granularity, so batching coarsens this).
        const std::size_t n =
            std::min<std::size_t>(jobs, pending_.size());
        for (std::size_t i = 0; i < n; ++i)
            spawn();
        for (Worker &w : workers_) {
            if (w.alive)
                deal(w);
        }
    }

    /** Exception backstop: a throw escaping run() (e.g. from an
     * onCellDone callback) must not leak live workers blocked on
     * their command pipes for the life of the parent. The normal path
     * reaps everything in shutdown(), leaving this a no-op. */
    ~ForkPool()
    {
        for (Worker &w : workers_) {
            if (!w.alive)
                continue;
            if (w.cmdFd >= 0)
                ::close(w.cmdFd);
            ::close(w.resFd);
            ::kill(w.pid, SIGKILL);
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.alive = false;
        }
    }

    std::vector<CellOutcome> run()
    {
        while (remaining_ > 0) {
            if (!pollOnce()) {
                // No live workers left but cells still pending: the
                // respawn path is exhausted (fork failure). Fail the
                // rest explicitly rather than hang.
                for (const BatchUnit &unit : pending_) {
                    for (std::size_t idx : unit)
                        failCell(idx, "no live workers left");
                }
                pending_.clear();
                for (Worker &w : workers_)
                    failUnitRemainder(w, "sweep pool aborted");
                break;
            }
        }
        shutdown();
        return std::move(outcomes_);
    }

  private:
    /** @return true when a new worker was actually added. */
    bool spawn()
    {
        int cmd[2], res[2];
        if (::pipe(cmd) != 0)
            return false;
        if (::pipe(res) != 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            return false;
        }
        // Flush before forking so buffered output is not emitted twice.
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            ::close(res[0]);
            ::close(res[1]);
            return false;
        }
        if (pid == 0) {
            // Child: keep only this worker's pipe ends. Closing the
            // siblings' ends is what makes the parent see EOF promptly
            // when a sibling dies.
            ::close(cmd[1]);
            ::close(res[0]);
            for (const Worker &w : workers_) {
                if (w.cmdFd >= 0)
                    ::close(w.cmdFd);
                if (w.resFd >= 0)
                    ::close(w.resFd);
            }
            workerLoop(spec_, cmd[0], res[1], opts_.profile);
        }
        ::close(cmd[0]);
        ::close(res[1]);
        Worker w;
        w.pid = pid;
        w.cmdFd = cmd[1];
        w.resFd = res[0];
        w.alive = true;
        workers_.push_back(std::move(w));
        return true;
    }

    /** Hand the next pending unit to @p w (or quit it when drained). */
    void deal(Worker &w)
    {
        if (!pending_.empty()) {
            BatchUnit unit = std::move(pending_.front());
            pending_.pop_front();
            // One frame: lane count, then the cell indices.
            std::vector<std::uint64_t> frame;
            frame.reserve(unit.size() + 1);
            frame.push_back(unit.size());
            for (std::size_t idx : unit)
                frame.push_back(idx);
            if (writeFull(w.cmdFd, frame.data(),
                          frame.size() * sizeof(std::uint64_t))) {
                w.inflight = std::move(unit);
                w.reported = 0;
            } else {
                // Write side already broken: requeue and let the
                // resFd EOF path reap the worker.
                pending_.push_front(std::move(unit));
            }
            return;
        }
        const std::uint64_t q = quitSentinel;
        writeFull(w.cmdFd, &q, sizeof(q));
        ::close(w.cmdFd);
        w.cmdFd = -1;
    }

    void failCell(std::size_t idx, std::string error)
    {
        CellOutcome &o = outcomes_[idx];
        o.ran = true;
        o.ok = false;
        o.error = std::move(error);
        --remaining_;
        if (opts_.onCellDone)
            opts_.onCellDone(idx, o);
    }

    /** Fail every not-yet-reported cell of @p w's in-flight unit and
     * mark it idle (already-recorded lanes keep their outcomes). */
    void failUnitRemainder(Worker &w, const std::string &error)
    {
        for (std::size_t i = w.reported; i < w.inflight.size(); ++i)
            failCell(w.inflight[i], error);
        w.inflight.clear();
        w.reported = 0;
    }

    void recordLine(Worker &w, const std::string &line)
    {
        CellRecord rec;
        const bool expectedOk =
            cellRecordFromLine(line, rec) &&
            rec.cellIndex < outcomes_.size() &&
            w.reported < w.inflight.size() &&
            rec.cellIndex == w.inflight[w.reported];
        if (!expectedOk) {
            // Protocol corruption: fail the unit's unreported cells
            // and retire the worker for real — kill it, reap it
            // (which respawns a replacement if work remains), and let
            // the caller stop reading its now-closed pipe.
            failUnitRemainder(w, "malformed worker record");
            ::kill(w.pid, SIGKILL);
            reap(w);
            return;
        }
        CellOutcome &o = outcomes_[rec.cellIndex];
        o.ran = true;
        o.ok = rec.ok;
        o.error = std::move(rec.error);
        o.seconds = rec.seconds;
        o.hostWallSeconds = rec.hostWallSeconds;
        o.result = std::move(rec.result);
        --remaining_;
        ++w.reported;
        if (opts_.onCellDone)
            opts_.onCellDone(rec.cellIndex, o);
        if (w.reported == w.inflight.size()) {
            w.inflight.clear();
            w.reported = 0;
            deal(w);
        }
    }

    /** Reap a worker whose result pipe hit EOF. */
    void reap(Worker &w)
    {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        if (w.reported < w.inflight.size()) {
            std::string why = "worker ";
            why += std::to_string(w.pid);
            if (WIFSIGNALED(status)) {
                why += " killed by signal ";
                why += std::to_string(WTERMSIG(status));
            } else {
                why += " exited with status ";
                why += std::to_string(WIFEXITED(status)
                                          ? WEXITSTATUS(status)
                                          : -1);
            }
            why += " while running cell ";
            why += spec_.cell(w.inflight[w.reported]).name();
            if (w.inflight.size() - w.reported > 1) {
                why += " (batch unit of ";
                why += std::to_string(w.inflight.size());
                why += ")";
            }
            failUnitRemainder(w, why);
        }
        if (w.cmdFd >= 0) {
            ::close(w.cmdFd);
            w.cmdFd = -1;
        }
        ::close(w.resFd);
        w.resFd = -1;
        w.alive = false;
        // A worker that died mid-write leaves a truncated trailing
        // line (no '\n') in w.buf. Drop it: only complete lines ever
        // reach the deserializer; the in-flight cell already failed
        // with the exit/signal diagnosis above.
        w.buf.clear();
        // Keep the pool at strength while work remains. A failed spawn
        // (fork/pipe error) must not deal to workers_.back() — that is
        // some existing, possibly busy worker.
        if (!pending_.empty() && spawn())
            deal(workers_.back());
    }

    /** @return false when no live worker remains to wait on. */
    bool pollOnce()
    {
        std::vector<pollfd> fds;
        std::vector<std::size_t> who;
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i].alive) {
                fds.push_back(pollfd{workers_[i].resFd, POLLIN, 0});
                who.push_back(i);
            }
        }
        if (fds.empty())
            return false;
        int n = ::poll(fds.data(), fds.size(), -1);
        if (n < 0) {
            if (errno == EINTR)
                return true;
            return false;
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Worker &w = workers_[who[k]];
            char chunk[4096];
            const ssize_t r = ::read(w.resFd, chunk, sizeof(chunk));
            if (r > 0) {
                w.buf.append(chunk, static_cast<std::size_t>(r));
                std::size_t nl;
                while ((nl = w.buf.find('\n')) != std::string::npos) {
                    const std::string line = w.buf.substr(0, nl);
                    w.buf.erase(0, nl + 1);
                    recordLine(w, line);
                    if (!w.alive)
                        break;  // retired by recordLine
                }
            } else if (r == 0 || (r < 0 && errno != EINTR)) {
                reap(w);
            }
        }
        return true;
    }

    void shutdown()
    {
        for (Worker &w : workers_) {
            if (!w.alive)
                continue;
            if (w.cmdFd >= 0)
                deal(w);  // pending_ is empty: sends quit
            // Drain any trailing output until EOF, then reap.
            char chunk[4096];
            for (;;) {
                const ssize_t r = ::read(w.resFd, chunk, sizeof(chunk));
                if (r <= 0)
                    break;
            }
            reapQuietly(w);
        }
    }

    void reapQuietly(Worker &w)
    {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        if (w.cmdFd >= 0) {
            ::close(w.cmdFd);
            w.cmdFd = -1;
        }
        ::close(w.resFd);
        w.resFd = -1;
        w.alive = false;
    }

    const SweepSpec &spec_;
    const SweepOptions &opts_;
    std::deque<BatchUnit> pending_;
    std::vector<CellOutcome> outcomes_;
    std::size_t remaining_ = 0;
    // deque: spawn() during iteration must not invalidate references.
    std::deque<Worker> workers_;
};

/** Scope guard: a dead worker's command pipe must raise EPIPE, not
 * kill the pool — and the old disposition must come back even when an
 * exception unwinds past the pool. */
struct SigpipeIgnored
{
    struct sigaction old{};
    SigpipeIgnored()
    {
        struct sigaction ign{};
        ign.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ign, &old);
    }
    ~SigpipeIgnored() { ::sigaction(SIGPIPE, &old, nullptr); }
};

std::vector<CellOutcome>
runPool(const SweepSpec &spec, std::deque<BatchUnit> pending,
        const SweepOptions &opts)
{
    SigpipeIgnored guard;
    ForkPool pool(spec, std::move(pending), opts);
    return pool.run();
}

#endif // SVW_HAVE_FORK_POOL

} // namespace

// ---------------------------------------------------------------------------
// SweepSession
// ---------------------------------------------------------------------------

SweepSession::SweepSession(SweepSpec spec, SweepOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts))
{
}

SweepSession::~SweepSession()
{
    // A session destroyed mid-flight (daemon error path) must not leak
    // worker threads touching freed state: stop new deals, let
    // in-flight units finish, join, and discard their completions.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        pending_.clear();
    }
    joinWorkers();
    for (int fd : wakePipe_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
SweepSession::emit(CellEventKind kind, std::size_t idx,
                   const CellOutcome *o)
{
    if (!cb_)
        return;
    CellEvent ev;
    ev.kind = kind;
    ev.index = idx;
    ev.cell = &spec_.cell(idx);
    ev.outcome = o;
    if (o && o->ok && kind != CellEventKind::Started)
        ev.resultLine = runResultToJson(o->result);
    cb_(ev);
}

void
SweepSession::record(std::size_t idx, CellOutcome o, CellEventKind kind)
{
    outcomes_[idx] = std::move(o);
    const CellOutcome &out = outcomes_[idx];
    ++done_;
    if (!out.ok)
        ++failures_;
    if (kind == CellEventKind::CachedHit)
        ++cacheHits_;
    if (opts_.onCellDone)
        opts_.onCellDone(idx, out);
    emit(kind, idx, &out);
}

void
SweepSession::probeAndPlan()
{
    std::deque<std::size_t> cells = selectCells(spec_, opts_);
    selected_ = cells.size();
    outcomes_.assign(spec_.size(), CellOutcome{});

    // Serve cache hits before any cell is dealt to a worker; remember
    // the probed keys so successful misses can be stored without
    // re-deriving them.
    // The in-memory front is probed before the disk store, so within
    // one process a warm hit never touches the filesystem; disk hits
    // and fresh results are promoted into it for the next sweep. A
    // daemon session can opt into the memory front alone (memCache)
    // with no cacheDir at all — warm repeats then simulate nothing
    // without ever touching disk.
    // A profiled sweep bypasses the caches entirely: a cached result
    // carries no attribution, and a profiled result's host timings
    // must never be served as a plain run's.
    if ((!opts_.cacheDir.empty() || opts_.memCache) && !opts_.profile) {
        if (!opts_.cacheDir.empty())
            cache_.emplace(opts_.cacheDir);
        MemoryResultCache &mem = processMemoryResultCache();
        std::deque<std::size_t> misses;
        for (std::size_t idx : cells) {
            const SweepCell &cell = spec_.cell(idx);
            if (!cellCacheable(cell)) {
                misses.push_back(idx);
                continue;
            }
            CellKey key = cellKey(cell);
            CellOutcome o;
            if (mem.get(key, o.result)) {
                o.ran = o.ok = o.cached = true;
                record(idx, std::move(o), CellEventKind::CachedHit);
            } else if (cache_ && cache_->get(key, o.result)) {
                mem.put(key, o.result);
                o.ran = o.ok = o.cached = true;
                record(idx, std::move(o), CellEventKind::CachedHit);
            } else {
                probed_.emplace_back(idx, std::move(key));
                misses.push_back(idx);
            }
        }
        cells = std::move(misses);
    }

    // Plan co-simulation units over the cells that actually need to
    // run (cache hits are already out, so warm reruns are unaffected).
    const std::vector<BatchUnit> units =
        planBatches(spec_, cells, resolveBatchK(opts_.batch));
    pending_.assign(units.begin(), units.end());
    plannedUnits_ = pending_.size();
}

void
SweepSession::storeFreshResults()
{
    for (const auto &[idx, key] : probed_) {
        const CellOutcome &o = outcomes_[idx];
        if (o.ran && o.ok) {
            processMemoryResultCache().put(key, o.result);
            if (cache_)
                cache_->put(key, o.result);
        }
    }
    if (cache_ && opts_.cacheMaxMb > 0)
        cache_->trimToBytes(opts_.cacheMaxMb * 1024 * 1024);
    // Parent-side attribution: every profiled outcome (whatever
    // execution path produced it — in-process, thread pool, or a fork
    // worker's result line) lands in the process collector so the
    // binary's --profile= folded-stack file covers the whole sweep.
    if (opts_.profile) {
        for (std::size_t i = 0; i < outcomes_.size(); ++i) {
            const CellOutcome &o = outcomes_[i];
            if (!o.ran || !o.ok || !o.result.profTicks)
                continue;
            prof::StageTimes st;
            for (unsigned s = 0; s < prof::NumStages; ++s)
                st.ns[s] = o.result.profStageNs[s];
            st.ticks = o.result.profTicks;
            prof::collector().add(spec_.cell(i).name(), st,
                                  o.result.profCellNs);
        }
    }
}

SweepResults
SweepSession::run(const SessionCallback &cb)
{
    svw_assert(!started_ && !finishedCalled_,
               "SweepSession::run on an already-driven session");
    cb_ = cb;
    started_ = true;
    probeAndPlan();

    const std::vector<BatchUnit> units(pending_.begin(), pending_.end());
    pending_.clear();

    // Pooled paths record completions through a composed onCellDone:
    // the pool already serializes callback invocations (under its
    // mutex / on the dealing thread), so the counters and the event
    // stream stay coherent. Only Done events fire from pools — a
    // worker's deal time is not observable parent-side; the blocking
    // sequential path and incremental mode do emit Started.
    SweepOptions poolOpts = opts_;
    poolOpts.onCellDone = [this](std::size_t idx, const CellOutcome &o) {
        ++done_;
        if (!o.ok)
            ++failures_;
        if (opts_.onCellDone)
            opts_.onCellDone(idx, o);
        emit(CellEventKind::Done, idx, &o);
    };

    auto mergeFresh = [&](std::vector<CellOutcome> fresh) {
        for (const BatchUnit &unit : units) {
            for (std::size_t idx : unit)
                outcomes_[idx] = std::move(fresh[idx]);
        }
    };

#ifdef SVW_HAVE_FORK_POOL
    // Any --threads>=1 / --jobs>1 request takes its pool — even for a
    // single selected cell — so the advertised exception containment
    // does not silently depend on the cell count. --threads=1 is the
    // thread pool, not the sequential path, for the same reason.
    if (opts_.threads >= 1 && !units.empty()) {
        mergeFresh(runThreadPool(spec_, units, poolOpts, opts_.threads));
    } else if (opts_.jobs > 1 && !units.empty()) {
        mergeFresh(runPool(spec_,
                           std::deque<BatchUnit>(units.begin(),
                                                 units.end()),
                           poolOpts));
    } else {
        for (const BatchUnit &unit : units) {
            for (std::size_t idx : unit)
                emit(CellEventKind::Started, idx, nullptr);
            std::vector<CellOutcome> outs =
                runUnitHere(spec_, unit, opts_.profile);
            for (std::size_t i = 0; i < unit.size(); ++i)
                record(unit[i], std::move(outs[i]), CellEventKind::Done);
        }
    }
#else
    // No fork on this platform: a --jobs=N request degrades to the
    // thread pool at the same width (still parallel, still contained
    // per unit) instead of silently running sequentially.
    unsigned threads = opts_.threads;
    if (opts_.jobs > 1 && threads == 0) {
        svw_warn("--jobs requires fork(); falling back to --threads=",
                 opts_.jobs);
        threads = opts_.jobs;
    }
    if (threads >= 1 && !units.empty()) {
        mergeFresh(runThreadPool(spec_, units, poolOpts, threads));
    } else {
        for (const BatchUnit &unit : units) {
            for (std::size_t idx : unit)
                emit(CellEventKind::Started, idx, nullptr);
            std::vector<CellOutcome> outs =
                runUnitHere(spec_, unit, opts_.profile);
            for (std::size_t i = 0; i < unit.size(); ++i)
                record(unit[i], std::move(outs[i]), CellEventKind::Done);
        }
    }
#endif

    recordedUnits_ = plannedUnits_;
    finishedCalled_ = true;
    storeFreshResults();
    return SweepResults(spec_, std::move(outcomes_));
}

// ---------------------------------------------------------------------------
// Incremental driving
// ---------------------------------------------------------------------------

void
SweepSession::start(SessionCallback cb)
{
    svw_assert(!started_, "SweepSession::start on a started session");
    // The fork pool's blocking poll loop cannot be sliced; incremental
    // callers parallelize with --threads instead.
    svw_assert(opts_.jobs <= 1,
               "incremental sessions cannot drive a fork pool "
               "(--jobs > 1); use threads");
    cb_ = std::move(cb);
    started_ = true;
    probeAndPlan();
    if (opts_.threads >= 1 && !pending_.empty()) {
        svw_assert(::pipe(wakePipe_) == 0,
                   "SweepSession wake pipe: ", std::strerror(errno));
        // Non-blocking on both ends: the driver drains opportunistically
        // and a full pipe just means "already plenty readable".
        for (int fd : wakePipe_)
            ::fcntl(fd, F_SETFL,
                    ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        const std::size_t n =
            std::min<std::size_t>(opts_.threads, pending_.size());
        workers_.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            workers_.emplace_back([this] { workerMain(); });
    }
}

bool
SweepSession::finished() const
{
    if (!started_)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return recordedUnits_ + discardedUnits_ >= plannedUnits_;
}

void
SweepSession::workerMain()
{
    for (;;) {
        BatchUnit unit;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stop_ || pending_.empty())
                return;
            unit = std::move(pending_.front());
            pending_.pop_front();
            // Started notification: queued (not fired) so events
            // always reach the callback on the driving thread.
            completed_.push_back(CompletedUnit{unit, {}, true});
        }
        wakeDriver();
        std::vector<CellOutcome> outs =
            runUnitContained(spec_, unit, opts_.profile);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            completed_.push_back(
                CompletedUnit{std::move(unit), std::move(outs), false});
        }
        wakeDriver();
    }
}

void
SweepSession::wakeDriver()
{
    if (wakePipe_[1] < 0)
        return;
    const char b = 1;
    // Best-effort: EAGAIN means the pipe is already saturated with
    // wake bytes, which is as awake as a driver can be.
    [[maybe_unused]] ssize_t r = ::write(wakePipe_[1], &b, 1);
}

void
SweepSession::drainCompletions()
{
    // Drain the wake bytes FIRST, then the queue until empty. A worker
    // pushes its completion before writing its byte, so a push that
    // happens after the queue looks empty leaves its byte unread and
    // wakeFd() readable — a spurious wakeup at worst, never a lost one.
    if (wakePipe_[0] >= 0) {
        char buf[256];
        while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
        }
    }
    for (;;) {
        std::deque<CompletedUnit> batch;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batch.swap(completed_);
        }
        if (batch.empty())
            break;
        for (CompletedUnit &cu : batch) {
            if (cu.isStart) {
                for (std::size_t idx : cu.unit)
                    emit(CellEventKind::Started, idx, nullptr);
                continue;
            }
            for (std::size_t i = 0; i < cu.unit.size(); ++i)
                record(cu.unit[i], std::move(cu.outcomes[i]),
                       CellEventKind::Done);
            std::lock_guard<std::mutex> lock(mutex_);
            ++recordedUnits_;
        }
    }
}

void
SweepSession::runUnitInCaller(const BatchUnit &unit)
{
    for (std::size_t idx : unit)
        emit(CellEventKind::Started, idx, nullptr);
    // Incremental execution contains exceptions per unit, whatever the
    // thread count: a long-lived daemon must outlive a golden-model
    // mismatch in one client's sweep.
    std::vector<CellOutcome> outs =
        runUnitContained(spec_, unit, opts_.profile);
    for (std::size_t i = 0; i < unit.size(); ++i)
        record(unit[i], std::move(outs[i]), CellEventKind::Done);
    std::lock_guard<std::mutex> lock(mutex_);
    ++recordedUnits_;
}

bool
SweepSession::step()
{
    svw_assert(started_ && !finishedCalled_,
               "SweepSession::step outside start()..finish()");
    if (!workers_.empty()) {
        drainCompletions();
        return !finished();
    }
    BatchUnit unit;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!pending_.empty()) {
            unit = std::move(pending_.front());
            pending_.pop_front();
        }
    }
    if (!unit.empty())
        runUnitInCaller(unit);
    return !finished();
}

void
SweepSession::abort()
{
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    discardedUnits_ += pending_.size();
    pending_.clear();
}

void
SweepSession::joinWorkers()
{
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

SweepResults
SweepSession::finish()
{
    svw_assert(started_ && !finishedCalled_,
               "SweepSession::finish outside start()..finish()");
    finishedCalled_ = true;
    // Workers exit once pending_ drains (or abort() cleared it); the
    // join bounds on the in-flight units, whose completions are still
    // recorded — they cost the simulation time either way, so their
    // results should reach the caches.
    joinWorkers();
    drainCompletions();
    storeFreshResults();
    return SweepResults(spec_, std::move(outcomes_));
}

// ---------------------------------------------------------------------------
// Legacy entry point
// ---------------------------------------------------------------------------

SweepResults
runSweep(const SweepSpec &spec, const SweepOptions &opts)
{
    return SweepSession(spec, opts).run();
}

} // namespace svw::harness
