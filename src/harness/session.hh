/**
 * @file
 * SweepSession: the sweep engine's primary entry point.
 *
 * A session owns one sweep end to end — spec selection (sharding),
 * result-cache probing, co-simulation unit planning, and execution —
 * and streams per-cell events to its caller as the sweep progresses:
 * cell started, cell done, and cached-hit, each carrying the lossless
 * RunResult JSON line (serialize.hh runResultToJson) for completed
 * cells. The legacy one-shot runSweep (executor.hh) is a thin wrapper
 * that opens a session and runs it to completion; the bench binaries
 * and the sweepd service daemon are both clients of this API.
 *
 * Two driving styles:
 *
 *  - Blocking: run(cb) executes the whole sweep (in-process,
 *    --threads thread pool, or --jobs fork pool per the options) and
 *    returns the merged SweepResults. Exceptions keep their runSweep
 *    semantics: the sequential path propagates cell failures, pooled
 *    paths contain them per unit.
 *
 *  - Incremental: start(cb) probes the caches (firing CachedHit
 *    events) and plans the work; step() then advances the sweep one
 *    slice at a time so a single-threaded event loop (sweepd) can
 *    interleave many sessions with socket I/O. With threads == 0 a
 *    step() runs one planned unit in the calling thread; with
 *    threads >= 1 start() launches the worker threads and step()
 *    merely drains completed units — events always fire on the
 *    *driving* thread, and wakeFd() is readable whenever completions
 *    are waiting, so the loop can poll it alongside its sockets.
 *    Unlike the blocking sequential path, incremental execution
 *    contains exceptions per unit (a long-lived daemon must outlive a
 *    golden-model mismatch); abort() discards not-yet-started work so
 *    a disconnected client stops costing simulation time. finish()
 *    joins workers, writes successful fresh results back to the
 *    caches, and returns the merged results.
 *
 * Determinism: outcomes depend only on the cells, so the merged
 * results are byte-identical across every driving style, thread/job
 * count, and batch width — the invariant the CI diff gates enforce.
 */

#ifndef SVW_HARNESS_SESSION_HH
#define SVW_HARNESS_SESSION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/executor.hh"
#include "harness/sweep.hh"

namespace svw::harness {

/** What happened to a cell (CellEvent::kind). */
enum class CellEventKind
{
    Started,   ///< dealt for execution (no outcome yet)
    Done,      ///< executed; outcome records success or failure
    CachedHit, ///< served from a result cache without simulating
};

/** One streamed per-cell event. Pointers are valid only during the
 * callback (they alias session-owned storage). */
struct CellEvent
{
    CellEventKind kind = CellEventKind::Done;
    std::size_t index = 0;            ///< cell index in the spec
    const SweepCell *cell = nullptr;  ///< always set
    /** Outcome for Done/CachedHit; null for Started. */
    const CellOutcome *outcome = nullptr;
    /** Lossless RunResult JSON line (runResultToJson) for successful
     * Done/CachedHit events; empty otherwise. This is the same wire
     * format the worker pool and the result cache use, so a stream
     * consumer (sweepd clients) sees bit-exact metrics. */
    std::string resultLine;
};

using SessionCallback = std::function<void(const CellEvent &)>;

/** One sweep, opened over a spec and execution options. */
class SweepSession
{
  public:
    /** The session owns a copy of @p spec (cells, hooks, and all). */
    SweepSession(SweepSpec spec, SweepOptions opts);
    ~SweepSession();

    SweepSession(const SweepSession &) = delete;
    SweepSession &operator=(const SweepSession &) = delete;

    const SweepSpec &spec() const { return spec_; }
    const SweepOptions &options() const { return opts_; }

    /** Run the whole sweep (blocking) and return merged results.
     * Equivalent to runSweep(spec, opts) plus the event stream. */
    SweepResults run(const SessionCallback &cb = nullptr);

    // -- Incremental driving (sweepd's event loop) --------------------

    /** Probe caches, plan units, and (threads >= 1) launch workers.
     * Fires CachedHit events for cache-served cells. Incremental mode
     * supports threads >= 1 or in-caller execution; a jobs > 1 fork
     * pool is blocking-only (panics here). */
    void start(SessionCallback cb = nullptr);

    bool started() const { return started_; }

    /** True once every planned unit is recorded or discarded. */
    bool finished() const;

    /**
     * Advance the sweep. threads == 0: run the next planned unit in
     * the calling thread (one unit per call — the event-loop slice).
     * threads >= 1: drain completed units from the workers without
     * blocking. Events fire on this thread either way.
     * @return false once the session is finished.
     */
    bool step();

    /**
     * Readable whenever worker completions are waiting to be drained
     * (threads >= 1 incremental mode); -1 otherwise. Poll it next to
     * the sockets: when it fires, call step().
     */
    int wakeFd() const { return wakePipe_[0]; }

    /** Discard all not-yet-started units (a disconnected client). The
     * in-flight unit, if any, still completes and is recorded. */
    void abort();

    /** Join workers, drain remaining events, write fresh results to
     * the caches, and return the merged results. Terminal. */
    SweepResults finish();

    // -- Progress -----------------------------------------------------

    /** Cells selected by this session's shard. */
    std::size_t cellsSelected() const { return selected_; }
    /** Cells recorded so far (cache hits included). */
    std::size_t cellsDone() const { return done_; }
    /** Recorded cells that failed so far. */
    std::size_t failuresSoFar() const { return failures_; }
    /** Cells served from a cache (memory or disk) by this session. */
    std::size_t cacheHits() const { return cacheHits_; }

  private:
    using BatchUnit = std::vector<std::size_t>;

    void probeAndPlan();
    void record(std::size_t idx, CellOutcome o, CellEventKind kind);
    void emit(CellEventKind kind, std::size_t idx, const CellOutcome *o);
    void runUnitInCaller(const BatchUnit &unit);
    void workerMain();
    void wakeDriver();
    void drainCompletions();
    void storeFreshResults();
    void joinWorkers();

    SweepSpec spec_;
    SweepOptions opts_;
    SessionCallback cb_;

    std::vector<CellOutcome> outcomes_;
    std::optional<ResultCache> cache_;
    std::vector<std::pair<std::size_t, CellKey>> probed_;
    std::deque<BatchUnit> pending_;

    bool started_ = false;
    bool finishedCalled_ = false;
    bool aborted_ = false;
    std::size_t selected_ = 0;
    std::size_t done_ = 0;
    std::size_t failures_ = 0;
    std::size_t cacheHits_ = 0;
    std::size_t plannedUnits_ = 0;
    std::size_t recordedUnits_ = 0;
    std::size_t discardedUnits_ = 0;

    // Threaded incremental machinery: workers pull units from
    // pending_ and push finished units here; the driving thread
    // drains them in step(). One byte per completion keeps wakeFd
    // readable while the queue is non-empty.
    struct CompletedUnit
    {
        BatchUnit unit;
        std::vector<CellOutcome> outcomes;
        bool isStart = false;  ///< a Started notification, no outcomes
    };
    mutable std::mutex mutex_;
    std::deque<CompletedUnit> completed_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
    int wakePipe_[2] = {-1, -1};
};

} // namespace svw::harness

#endif // SVW_HARNESS_SESSION_HH
