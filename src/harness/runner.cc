#include "harness/runner.hh"

#include "base/logging.hh"
#include "func/interp.hh"
#include "prog/workloads/workloads.hh"

namespace svw::harness {

namespace {

std::uint64_t
scalarValue(const stats::StatRegistry &reg, const std::string &name)
{
    const auto *s =
        dynamic_cast<const stats::Scalar *>(reg.find(name));
    svw_assert(s, "missing stat ", name);
    return s->value();
}

} // namespace

RunResult
runOne(const RunRequest &req)
{
    const Program prog = workloads::make(req.workload, req.targetInsts);
    return runOne(req, prog);
}

RunResult
extractRunResult(const RunRequest &req, const stats::StatRegistry &reg,
                 const RunOutcome &out)
{
    RunResult res;
    res.workload = req.workload;
    res.config = configLabel(req.config);
    res.halted = out.halted;
    res.cycles = out.cycles;
    res.insts = out.instructions;
    res.loads = scalarValue(reg, "core.retiredLoads");
    res.stores = scalarValue(reg, "core.retiredStores");
    res.ipc = res.cycles ? double(res.insts) / double(res.cycles) : 0.0;

    res.loadsMarked = scalarValue(reg, "rex.loadsMarked");
    res.loadsReExecuted = scalarValue(reg, "rex.loadsReExecuted");
    res.loadsFilteredBySvw = scalarValue(reg, "rex.loadsRexSkippedSvw");
    res.rexFlushes = scalarValue(reg, "core.rexFlushes");
    if (res.loads) {
        res.rexRate = 100.0 * double(res.loadsReExecuted) /
            double(res.loads);
        res.markedRate = 100.0 * double(res.loadsMarked) /
            double(res.loads);
        res.elimRate = 100.0 *
            double(scalarValue(reg, "core.loadsEliminatedRetired")) /
            double(res.loads);
        res.fsqLoadShare = 100.0 *
            double(scalarValue(reg, "core.fsqLoadsRetired")) /
            double(res.loads);
    }
    const std::uint64_t elim =
        scalarValue(reg, "core.loadsEliminatedRetired");
    if (elim) {
        res.bypassShare =
            double(scalarValue(reg, "core.elimBypassRetired")) /
            double(elim);
    }
    res.branchSquashes = scalarValue(reg, "core.branchSquashes");
    res.orderingSquashes = scalarValue(reg, "core.orderingSquashes");
    res.wrapDrains = scalarValue(reg, "svw.wrapDrains");

    if (!out.halted) {
        svw_warn("run did not halt: ", req.workload, " / ", res.config,
                 " after ", out.cycles, " cycles");
    }
    return res;
}

void
goldenCompare(const RunRequest &req, const Core &core,
              const RunOutcome &out, const Interp &golden, RunResult &res)
{
    bool ok = true;
    for (RegIndex a = 0; a < numArchRegs && ok; ++a)
        ok = core.archReg(a) == golden.reg(a);
    if (ok)
        ok = core.memory().identicalTo(golden.memory());
    res.goldenOk = ok;
    if (!ok) {
        svw_fatal("golden-model mismatch: ", req.workload, " / ",
                  res.config, " after ", out.instructions,
                  " instructions");
    }
}

RunResult
runOne(const RunRequest &req, const Program &prog)
{
    const std::uint64_t cellT0 = req.profile ? prof::nowNs() : 0;
    prof::StageTimes stageTimes;

    stats::StatRegistry reg;
    CoreParams params = buildParams(req.config);
    Core core(params, prog, reg);
    if (req.hook)
        core.perCycleHook = req.hook;
    if (req.profile)
        core.setStageProfiler(&stageTimes);

    const std::uint64_t maxCycles =
        req.maxCycles ? req.maxCycles : 100 * req.targetInsts + 1'000'000;
    // Run to halt: every workload is sized by targetInsts already.
    RunOutcome out = core.run(~std::uint64_t(0), maxCycles);

    RunResult res = extractRunResult(req, reg, out);

    if (req.goldenCheck) {
        Interp golden(prog);
        golden.run(out.instructions);
        goldenCompare(req, core, out, golden, res);
    }
    if (req.profile) {
        for (unsigned s = 0; s < prof::NumStages; ++s)
            res.profStageNs[s] = stageTimes.ns[s];
        res.profTicks = stageTimes.ticks;
        res.profCellNs = prof::nowNs() - cellT0;
    }
    return res;
}

double
speedupPercent(const RunResult &base, const RunResult &test)
{
    svw_assert(base.workload == test.workload, "speedup across workloads");
    svw_assert(test.cycles != 0, "zero-cycle run");
    // Same program => same retired instruction count; %IPC improvement
    // reduces to a cycle ratio.
    return (double(base.cycles) / double(test.cycles) - 1.0) * 100.0;
}

} // namespace svw::harness
