#include "harness/report.hh"

#include <iomanip>

#include "base/logging.hh"

namespace svw::harness {

FigureTable::FigureTable(std::string t, std::vector<std::string> colNames)
    : title(std::move(t)), cols(std::move(colNames))
{
}

void
FigureTable::addRow(const std::string &name, const std::vector<double> &vals)
{
    svw_assert(vals.size() == cols.size(), "row width mismatch in ", title);
    rows.push_back(Row{name, vals});
}

void
FigureTable::addAverageRow()
{
    // An empty table is legitimate: a --shard=i/n invocation beyond
    // the group count selects no rows (the executor warns) and must
    // print an empty table, not abort.
    if (rows.empty())
        return;
    std::vector<double> avg(cols.size(), 0.0);
    for (const Row &r : rows)
        for (std::size_t c = 0; c < cols.size(); ++c)
            avg[c] += r.vals[c];
    for (double &v : avg)
        v /= double(rows.size());
    rows.push_back(Row{"avg", std::move(avg)});
}

void
FigureTable::print(std::ostream &os, unsigned precision) const
{
    os << "\n== " << title << " ==\n";
    os << std::left << std::setw(10) << "bench";
    for (const std::string &c : cols)
        os << std::right << std::setw(14) << c;
    os << "\n";
    for (const Row &r : rows) {
        os << std::left << std::setw(10) << r.name;
        for (double v : r.vals) {
            os << std::right << std::setw(14) << std::fixed
               << std::setprecision(precision) << v;
        }
        os << "\n";
    }
}

} // namespace svw::harness
