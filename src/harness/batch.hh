/**
 * @file
 * Batched multi-cell co-simulation.
 *
 * Every paper figure compares K config variants of the *same*
 * workload, and each variant runs the identical program against the
 * identical initial memory image. The batched executor exploits that:
 * runBatch advances the K independent `Core` lanes of one (workload,
 * insts) pair in lockstep cycle-quanta, sharing one `Program` (and its
 * pre-decoded StaticInst stream), one read-only committed-state base
 * image (func/memory_image.hh copy-on-write backing), and — for
 * golden-checked cells — one functional-interpreter pass instead of K.
 *
 * Byte-identity invariant (same discipline as --jobs): a batched
 * cell's RunResult — cycles, every stat, the serialized bytes — is
 * identical to its single-cell run. Lanes never interact: each has its
 * own StatRegistry and Core; the shared structures are read-only. The
 * lockstep quantum only decides *host* interleaving, never a simulated
 * cycle. tests/test_batch.cc and the CI batch diff gate enforce this.
 *
 * Grouping rule (planBatches): only cells with no per-cycle hook, no
 * timing repetitions, and no neverCache mark are batchable — hook
 * cells perturb the simulation from outside, and timing cells exist to
 * measure a *solo* run's wall time, which co-residence would distort.
 * Batchable cells share a unit only when (workload, targetInsts,
 * goldenCheck) all match, so a batch never crosses workloads and
 * golden lanes never mix with unchecked lanes. Result-cache keys stay
 * per-cell (harness/sweep.hh cellKey): planning happens after cache
 * hits are served, so warm reruns are unaffected.
 */

#ifndef SVW_HARNESS_BATCH_HH
#define SVW_HARNESS_BATCH_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "harness/sweep.hh"

namespace svw::harness {

class ProgramCache;

/** May this cell join a co-simulation batch at all? (Hook, timing-rep
 * and neverCache cells always run solo.) */
bool cellBatchable(const SweepCell &cell);

/**
 * Deterministic batch plan over @p pending (spec-order cell indices,
 * cache hits already removed): batchable cells are bucketed by
 * (workload, targetInsts, goldenCheck) and cut into units of at most
 * @p k lanes; everything else becomes a singleton unit. Units are
 * ordered by their first cell's spec index, so sequential execution
 * stays near spec order. @p k <= 1 disables batching (all singletons).
 */
std::vector<std::vector<std::size_t>>
planBatches(const SweepSpec &spec, const std::deque<std::size_t> &pending,
            unsigned k);

/**
 * Resolve a --batch request: 0 (auto) picks the default lane count —
 * enough that a figure row's variants usually co-run, small enough
 * that K pipeline states stay cache-resident. 1 disables batching.
 */
unsigned resolveBatchK(unsigned requested);

/**
 * Co-simulate one planned unit (>= 1 cells, all mutually batchable —
 * panics otherwise) in the calling process. Outcomes are returned in
 * unit order. Like runCell, does not catch: a golden mismatch fatals.
 * The unit's batch wall time is apportioned to the lanes by simulated
 * cycles (a lane's `seconds` is an attribution, not a solo
 * measurement — timing cells never batch).
 */
std::vector<CellOutcome> runBatch(const SweepSpec &spec,
                                  const std::vector<std::size_t> &unit,
                                  ProgramCache &cache,
                                  bool profile = false);

/** Instrumentation (per process, like runCellCalls): number of
 * runBatch invocations with >= 2 lanes, and lanes co-simulated by
 * them. Tests assert batching actually engaged (or stayed out). */
std::uint64_t batchRuns();
std::uint64_t batchedCells();

} // namespace svw::harness

#endif // SVW_HARNESS_BATCH_HH
