/**
 * @file
 * Sweep executor primitives: execution options, the per-cell runner
 * (runCell), the process-wide ProgramCache and in-memory result-cache
 * front, and the legacy one-shot runSweep entry point. Orchestration —
 * shard selection, cache probing, unit planning, the sequential /
 * thread-pool / fork-pool paths, and the streaming per-cell event API
 * — lives in harness/session.hh (SweepSession); runSweep is a thin
 * wrapper that opens a session and runs it to completion. A sweep runs
 * in-process (--jobs=1), across a pool of forked worker processes
 * (--jobs=N), or across a pool of worker threads in one address space
 * (--threads=N), with optional cross-machine sharding (--shard=i/n),
 * and merges per-cell results in spec order.
 *
 * Worker protocol (docs/ARCHITECTURE.md "Sweep engine"): the parent
 * forks N workers after the spec is built (so cells' hooks and configs
 * are inherited), plans the pending cells into co-simulation units
 * (harness/batch.hh planBatches; a unit is one cell, or up to --batch
 * compatible cells of one workload), then dynamically deals units to
 * idle workers over per-worker command pipes (an 8-byte little-endian
 * lane count, ~0 = quit, followed by that many 8-byte cell indices).
 * A worker executes each unit in isolation — runCell for singletons,
 * runBatch for wider units — and streams back one JSON line per cell
 * in unit order (harness/serialize.hh) on its result pipe. The parent
 * polls result pipes, stores outcomes by cell index, and deals the
 * next pending unit once a unit is fully reported. A crashed worker
 * fails only its in-flight unit's unreported cells; the parent reaps
 * it, records the failures, respawns a replacement, and the merged
 * report stays intact.
 *
 * Thread pool (docs/ARCHITECTURE.md "Thread-pool executor"): with
 * --threads=N the same planned units are pulled from a shared deque by
 * N std::thread workers running runCell/runBatch directly — no fork,
 * no pipes, no serialization. All workers share one ProgramCache (one
 * decode per (workload, insts) for the whole sweep, not per worker
 * process) and the process-wide in-memory ResultCache front. A unit
 * that throws fails only its own cells (recorded with the exception
 * text) and the worker thread moves on — the thread analogue of the
 * fork pool's exception containment; a unit that *crashes* the
 * process cannot be contained without fork. --jobs and --threads are
 * mutually exclusive ways to parallelize one sweep: --threads=N (N >=
 * 1) takes the thread pool, else --jobs=N (N > 1) takes the fork
 * pool; both > 1 together is an error. Merged results are
 * byte-identical across all modes and counts.
 *
 * Sharding partitions by *group* (figure row), not by cell, so every
 * row's baseline and variants land in the same shard and speedup
 * columns stay computable; the union of all shards is exactly the full
 * cell set.
 */

#ifndef SVW_HARNESS_EXECUTOR_HH
#define SVW_HARNESS_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "harness/sweep.hh"
#include "prog/program.hh"

namespace svw::harness {

/** Default MemoryResultCache byte cap: generous for a batch binary's
 * handful of sweeps, finite for a daemon (--mem-cache-max-mb). */
inline constexpr std::uint64_t memoryResultCacheDefaultMaxBytes =
    512ull * 1024 * 1024;

/** How to execute a sweep. */
struct SweepOptions
{
    /** Worker processes; 1 = in-process (debug/tracing-friendly,
     * failures propagate as exceptions like a plain runOne loop). */
    unsigned jobs = 1;
    /**
     * Worker threads; 0 = off. When >= 1, cells run on this many
     * std::thread workers in one address space, sharing the process
     * ProgramCache and the in-memory ResultCache front — no fork, no
     * result pipes. Mutually exclusive with jobs > 1 (asserted; the
     * flag layer exits 2). Unlike the fork pool, a crashing cell
     * takes the whole process down (exceptions are still contained
     * per unit); unlike the in-process path, --threads=1 contains
     * exceptions rather than propagating them.
     */
    unsigned threads = 0;
    /**
     * Co-simulation batch width (harness/batch.hh): compatible cells
     * of one workload are advanced in lockstep as one unit of up to
     * this many lanes, sharing the program, the base memory image and
     * the golden-model pass. 0 = auto (resolveBatchK's default), 1 =
     * off. Merged results are byte-identical for every value — the
     * same invariant as `jobs`. Under a pool, one unit is one deal, so
     * large batches coarsen work distribution.
     */
    unsigned batch = 0;
    /**
     * When nonzero and a cacheDir is set: after the sweep's results
     * are stored, LRU-trim the cache directory to at most this many
     * megabytes (oldest access stamp first; in-flight temp files are
     * never touched). See ResultCache::trimToBytes.
     */
    std::uint64_t cacheMaxMb = 0;
    /** Cross-machine split: this invocation runs the groups whose
     * first-appearance index i satisfies i % shardCount == shardIndex. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    /**
     * Persistent result-cache directory (harness/sweep.hh ResultCache);
     * empty disables caching. Cacheable cells are looked up *before*
     * any cell is dealt to a worker — a hit is recorded as a completed
     * outcome (cached=true, zero timing) without running anything —
     * and successful misses are stored after the sweep, so a repeated
     * sweep only simulates changed cells.
     */
    std::string cacheDir;
    /**
     * Probe and populate the process-wide in-memory result-cache front
     * even with no cacheDir (sweepd: warm repeat requests must
     * simulate nothing without the daemon ever touching disk). With a
     * cacheDir set the memory front is always active; this flag adds
     * the disk-less mode.
     */
    bool memCache = false;
    /**
     * Attach the stage profiler (base/profile.hh) to every cell run:
     * per-stage host-ns attribution lands in each RunResult's prof_*
     * fields and, parent-side, in the process collector for folded
     * output. Host observation only — simulated cycles and metrics
     * are byte-identical — but the timer reads make host wall
     * measurements meaningless, so a profiled sweep bypasses the
     * result cache entirely (no probes, no stores).
     */
    bool profile = false;
    /**
     * Progress callback, invoked in the parent as each cell outcome is
     * recorded (completion order under a worker pool; spec order
     * in-process). Long sweeps stream per-cell status through this.
     */
    std::function<void(std::size_t cellIndex, const CellOutcome &)>
        onCellDone;
};

/** Monotonic host wall-clock seconds (arbitrary origin). */
double hostSeconds();

/**
 * Executor-owned execution counters. Atomic because thread-pool
 * workers bump them concurrently; one instance per process
 * (execCounters()), so fork-pool workers still accumulate into their
 * own copy-on-write copies, never the parent's.
 */
class ExecCounters
{
  public:
    /** Cell executions: runCell invocations plus every lane of a
     * runBatch unit. */
    std::uint64_t cellRuns() const
    {
        return cellRuns_.load(std::memory_order_relaxed);
    }

    void addCellRuns(std::uint64_t n)
    {
        cellRuns_.fetch_add(n, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> cellRuns_{0};
};

/** The calling process's executor counters. */
ExecCounters &execCounters();

/** Count of cell executions in the *calling* process — runCell
 * invocations plus every lane of a runBatch unit (a pool worker's
 * executions land in the worker's own copy, not the parent's; a
 * thread worker's land here). Test instrumentation: a fully
 * warm-cache sweep serves hits in the parent, so it must leave the
 * parent's count unchanged, whatever the batch width. Accessor for
 * execCounters().cellRuns(). */
std::uint64_t runCellCalls();

/**
 * Inside a pool worker: the fd of the worker's result pipe; -1 in the
 * parent / in-process path. Crash-injection tests use it to die
 * mid-protocol-line and assert the parent discards the truncated
 * record.
 */
int workerResultFd();

/**
 * Per-process cache of built workload programs: each (workload,
 * targetInsts) program is constructed once and shared by reference
 * across every config cell that uses it ("batch configs per workload").
 *
 * Thread-safe: concurrent get()s for one key build the program exactly
 * once (the others block on its slot), and builds of *different*
 * programs proceed in parallel — the map mutex is held only for slot
 * lookup, never across a build. References stay valid for the cache's
 * lifetime (map nodes are stable under insertion).
 */
class ProgramCache
{
  public:
    /** Build-or-fetch; the reference stays valid for the cache's
     * lifetime. */
    const Program &get(const std::string &workload,
                       std::uint64_t targetInsts);

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return slots_.size();
    }
    std::uint64_t builds() const
    {
        return builds_.load(std::memory_order_relaxed);
    }

  private:
    /** One program's build-once slot; the per-slot once_flag is what
     * lets distinct programs build concurrently. */
    struct Slot
    {
        std::once_flag once;
        std::optional<Program> program;
    };

    mutable std::mutex mutex_;  ///< guards slots_ (lookup/insert only)
    std::map<std::pair<std::string, std::uint64_t>, Slot> slots_;
    std::atomic<std::uint64_t> builds_{0};
};

/**
 * The process-wide workload-program cache used by the in-process
 * sweep path and the pool workers: consecutive sweeps in one process
 * (batched or not) share one build of each (workload, insts) program
 * instead of rebuilding per runSweep call. Callers owning their
 * lifetime (tests) can still construct private ProgramCaches.
 */
ProgramCache &processProgramCache();

/**
 * In-memory front of the persistent ResultCache (harness/sweep.hh):
 * a hash map keyed exactly like the on-disk store (CellKey hash,
 * verified against the full key material so a collision degrades to a
 * miss, never a wrong hit). runSweep probes it before the disk store,
 * so within one process a warm hit never touches the filesystem, and
 * every disk hit or fresh result is promoted so the *next* sweep in
 * this process (bench binaries run several; sweepd runs thousands) is
 * served from memory. Entries are valid independent of which
 * --cache-dir they came from: a cell's RunResult is a pure function
 * of its key material, which already embeds the code-version stamp.
 * Only consulted when a sweep runs with a cacheDir or opts into the
 * memory front (SweepOptions::memCache) — caching stays opt-in.
 * Thread-safe (one mutex; probes happen on the dealing thread, so
 * contention is nil).
 *
 * Bounded: the cache LRU-evicts once its estimated footprint exceeds
 * setMaxBytes (default memoryResultCacheDefaultMaxBytes — generous
 * for a batch binary, but a hard cap so a long-lived daemon serving
 * an unbounded stream of distinct cells cannot grow without limit).
 * get() refreshes recency; put() inserts at the front and evicts from
 * the tail. The newest entry is never evicted, so a just-stored
 * result can always be served back.
 */
class MemoryResultCache
{
  public:
    /** @return true and fill @p out on a verified hit (refreshes the
     * entry's LRU recency). */
    bool get(const CellKey &key, RunResult &out) const;

    /** Insert or overwrite @p key's entry, then LRU-evict down to the
     * byte cap. */
    void put(const CellKey &key, const RunResult &r);

    std::size_t entries() const;
    /** Estimated resident bytes of all entries. */
    std::size_t bytes() const;
    /** Served (verified) hits since process start / clear(). */
    std::uint64_t hits() const;
    /** Entries LRU-evicted since process start / clear(). */
    std::uint64_t evictions() const;
    /** Set the byte cap (--mem-cache-max-mb); 0 = unbounded. Evicts
     * immediately if the cache is already over the new cap. */
    void setMaxBytes(std::uint64_t maxBytes);
    std::uint64_t maxBytes() const;
    /** Drop everything (test isolation); keeps the configured cap. */
    void clear();

  private:
    struct Entry
    {
        std::string material;
        RunResult result;
        std::list<std::uint64_t>::iterator lru; ///< slot in lru_
        std::size_t bytes = 0;
    };

    std::size_t entryBytes(const Entry &e) const;
    void evictOverCapLocked();

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    /** Key hashes, most recently used first. */
    mutable std::list<std::uint64_t> lru_;
    std::size_t bytes_ = 0;
    std::uint64_t maxBytes_ = memoryResultCacheDefaultMaxBytes;
    mutable std::uint64_t hits_ = 0;
    std::uint64_t evictions_ = 0;
};

/** The process-wide in-memory result-cache front. */
MemoryResultCache &processMemoryResultCache();

/**
 * Execute one cell in the calling process (shared by the in-process
 * path and the workers). Does not catch: a golden-model mismatch or
 * other fatal propagates to the caller.
 */
CellOutcome runCell(const SweepCell &cell, ProgramCache &cache,
                    bool profile = false);

/** Execute the sweep per @p opts; outcomes merged in spec order. */
SweepResults runSweep(const SweepSpec &spec, const SweepOptions &opts = {});

} // namespace svw::harness

#endif // SVW_HARNESS_EXECUTOR_HH
