/**
 * @file
 * Sweep executor: runs a SweepSpec's cells in-process (--jobs=1) or
 * across a pool of forked worker processes (--jobs=N), with optional
 * cross-machine sharding (--shard=i/n), and merges per-cell results in
 * spec order.
 *
 * Worker protocol (docs/ARCHITECTURE.md "Sweep engine"): the parent
 * forks N workers after the spec is built (so cells' hooks and configs
 * are inherited), plans the pending cells into co-simulation units
 * (harness/batch.hh planBatches; a unit is one cell, or up to --batch
 * compatible cells of one workload), then dynamically deals units to
 * idle workers over per-worker command pipes (an 8-byte little-endian
 * lane count, ~0 = quit, followed by that many 8-byte cell indices).
 * A worker executes each unit in isolation — runCell for singletons,
 * runBatch for wider units — and streams back one JSON line per cell
 * in unit order (harness/serialize.hh) on its result pipe. The parent
 * polls result pipes, stores outcomes by cell index, and deals the
 * next pending unit once a unit is fully reported. A crashed worker
 * fails only its in-flight unit's unreported cells; the parent reaps
 * it, records the failures, respawns a replacement, and the merged
 * report stays intact.
 *
 * Sharding partitions by *group* (figure row), not by cell, so every
 * row's baseline and variants land in the same shard and speedup
 * columns stay computable; the union of all shards is exactly the full
 * cell set.
 */

#ifndef SVW_HARNESS_EXECUTOR_HH
#define SVW_HARNESS_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "harness/sweep.hh"
#include "prog/program.hh"

namespace svw::harness {

/** How to execute a sweep. */
struct SweepOptions
{
    /** Worker processes; 1 = in-process (debug/tracing-friendly,
     * failures propagate as exceptions like a plain runOne loop). */
    unsigned jobs = 1;
    /**
     * Co-simulation batch width (harness/batch.hh): compatible cells
     * of one workload are advanced in lockstep as one unit of up to
     * this many lanes, sharing the program, the base memory image and
     * the golden-model pass. 0 = auto (resolveBatchK's default), 1 =
     * off. Merged results are byte-identical for every value — the
     * same invariant as `jobs`. Under a pool, one unit is one deal, so
     * large batches coarsen work distribution.
     */
    unsigned batch = 0;
    /**
     * When nonzero and a cacheDir is set: after the sweep's results
     * are stored, LRU-trim the cache directory to at most this many
     * megabytes (oldest access stamp first; in-flight temp files are
     * never touched). See ResultCache::trimToBytes.
     */
    std::uint64_t cacheMaxMb = 0;
    /** Cross-machine split: this invocation runs the groups whose
     * first-appearance index i satisfies i % shardCount == shardIndex. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    /**
     * Persistent result-cache directory (harness/sweep.hh ResultCache);
     * empty disables caching. Cacheable cells are looked up *before*
     * any cell is dealt to a worker — a hit is recorded as a completed
     * outcome (cached=true, zero timing) without running anything —
     * and successful misses are stored after the sweep, so a repeated
     * sweep only simulates changed cells.
     */
    std::string cacheDir;
    /**
     * Progress callback, invoked in the parent as each cell outcome is
     * recorded (completion order under a worker pool; spec order
     * in-process). Long sweeps stream per-cell status through this.
     */
    std::function<void(std::size_t cellIndex, const CellOutcome &)>
        onCellDone;
};

/** Monotonic host wall-clock seconds (arbitrary origin). */
double hostSeconds();

/** Count of cell executions in the *calling* process — runCell
 * invocations plus every lane of a runBatch unit (a pool worker's
 * executions land in the worker's own copy, not the parent's). Test
 * instrumentation: a fully warm-cache sweep serves hits in the parent,
 * so it must leave the parent's count unchanged, whatever the batch
 * width. */
std::uint64_t runCellCalls();

/**
 * Inside a pool worker: the fd of the worker's result pipe; -1 in the
 * parent / in-process path. Crash-injection tests use it to die
 * mid-protocol-line and assert the parent discards the truncated
 * record.
 */
int workerResultFd();

/**
 * Per-process cache of built workload programs: each (workload,
 * targetInsts) program is constructed once and shared by reference
 * across every config cell that uses it ("batch configs per workload").
 */
class ProgramCache
{
  public:
    /** Build-or-fetch; the reference stays valid for the cache's
     * lifetime. */
    const Program &get(const std::string &workload,
                       std::uint64_t targetInsts);

    std::size_t size() const { return programs_.size(); }
    std::uint64_t builds() const { return builds_; }

  private:
    std::map<std::pair<std::string, std::uint64_t>, Program> programs_;
    std::uint64_t builds_ = 0;
};

/**
 * The process-wide workload-program cache used by the in-process
 * sweep path and the pool workers: consecutive sweeps in one process
 * (batched or not) share one build of each (workload, insts) program
 * instead of rebuilding per runSweep call. Callers owning their
 * lifetime (tests) can still construct private ProgramCaches.
 */
ProgramCache &processProgramCache();

/**
 * Execute one cell in the calling process (shared by the in-process
 * path and the workers). Does not catch: a golden-model mismatch or
 * other fatal propagates to the caller.
 */
CellOutcome runCell(const SweepCell &cell, ProgramCache &cache);

/** Execute the sweep per @p opts; outcomes merged in spec order. */
SweepResults runSweep(const SweepSpec &spec, const SweepOptions &opts = {});

} // namespace svw::harness

#endif // SVW_HARNESS_EXECUTOR_HH
