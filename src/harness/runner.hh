/**
 * @file
 * Experiment runner: executes one (workload, configuration) cell,
 * cross-checks the timing simulation against the functional golden
 * model, and extracts the metrics the paper's figures plot.
 */

#ifndef SVW_HARNESS_RUNNER_HH
#define SVW_HARNESS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/profile.hh"
#include "func/interp.hh"
#include "harness/config.hh"
#include "prog/program.hh"

namespace svw::harness {

/** Metrics of a single run (one bar of a paper figure). */
struct RunResult
{
    std::string workload;
    std::string config;
    bool halted = false;
    bool goldenOk = true;

    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    double ipc = 0.0;

    // Re-execution figures of merit.
    std::uint64_t loadsMarked = 0;
    std::uint64_t loadsReExecuted = 0;
    std::uint64_t loadsFilteredBySvw = 0;
    std::uint64_t rexFlushes = 0;
    double rexRate = 0.0;       ///< re-executions / retired loads (%)
    double markedRate = 0.0;    ///< marked loads / retired loads (%)

    // Optimization-specific splits.
    double elimRate = 0.0;      ///< RLE: eliminated / retired loads (%)
    double bypassShare = 0.0;   ///< RLE: bypass fraction of eliminations
    double fsqLoadShare = 0.0;  ///< SSQ: FSQ-steered retired loads (%)

    std::uint64_t branchSquashes = 0;
    std::uint64_t orderingSquashes = 0;
    std::uint64_t wrapDrains = 0;

    // Self-profiler attribution (base/profile.hh), all zero unless
    // the run was profiled (RunRequest::profile): host ns per stage,
    // profiled ticks, and the cell's total host wall (stage time plus
    // harness overhead — construction, golden check, extraction).
    std::uint64_t profStageNs[prof::NumStages] = {};
    std::uint64_t profTicks = 0;
    std::uint64_t profCellNs = 0;
};

/** Run request. */
struct RunRequest
{
    ExperimentConfig config{};
    std::string workload;
    std::uint64_t targetInsts = 100'000;
    std::uint64_t maxCycles = 0;   ///< 0 = auto (generous multiple)
    bool goldenCheck = true;
    /** Attach the stage profiler (host-side only; cycles unchanged). */
    bool profile = false;
    /** Optional per-cycle hook (invalidation injectors). */
    std::function<void(Core &)> hook;
};

/**
 * Execute one cell against an already-built program (the sweep
 * engine's workload cache shares one `Program` across every config of
 * a workload). @p prog must be the program `workloads::make` would
 * build for (req.workload, req.targetInsts). Throws (via svw_fatal) on
 * golden-model mismatch when goldenCheck is set.
 */
RunResult runOne(const RunRequest &req, const Program &prog);

/**
 * Extract a finished run's metrics from its stat registry — the single
 * extraction point shared by runOne and the batched co-simulation
 * path (harness/batch.hh), so a batched cell's RunResult is
 * byte-identical to its single-cell run by construction. Also emits
 * runOne's did-not-halt warning.
 */
RunResult extractRunResult(const RunRequest &req,
                           const stats::StatRegistry &reg,
                           const RunOutcome &out);

/**
 * Golden-model comparison against an interpreter already advanced to
 * exactly out.instructions retired instructions. Sets res.goldenOk
 * and fatals (throws) on mismatch with runOne's message. The batched
 * path advances one shared interpreter lane-by-lane through here;
 * runOne passes a fresh one.
 */
void goldenCompare(const RunRequest &req, const Core &core,
                   const RunOutcome &out, const Interp &golden,
                   RunResult &res);

/** Convenience overload: builds the workload program, then runs. */
RunResult runOne(const RunRequest &req);

/** Paper-style percent speedup of @p test over @p base (same program). */
double speedupPercent(const RunResult &base, const RunResult &test);

} // namespace svw::harness

#endif // SVW_HARNESS_RUNNER_HH
