/**
 * @file
 * Declarative sweep specs for the paper's figures (5-8) and the
 * ablation/extension studies, plus the figure registry that maps a
 * figure name to its spec builder. One builder per figure, shared by
 * the bench binary that formats the figure, by table_machine_config
 * (which prints the configurations these specs materialize), by the
 * sweepd service daemon (which opens sweep sessions by figure name),
 * and by the sweep-engine tests (which assert that parallel execution
 * reproduces the sequential figure byte for byte).
 *
 * Cell labels are stable API: "BASE" is always the figure's baseline
 * column (marked baseline in the spec); optimization columns carry the
 * paper's names ("+SVW-UPD", "+PERFECT", ...).
 */

#ifndef SVW_HARNESS_FIGURES_HH
#define SVW_HARNESS_FIGURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace svw::harness {

/** Figure 5: NLQ-LS re-execution rate and speedup vs 8-wide baseline.
 * Labels: BASE, NLQ, +SVW-UPD, +SVW+UPD, +PERFECT. */
SweepSpec fig5Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Figure 6: SSQ vs the associative-SQ baseline.
 * Labels: BASE, SSQ, +SVW-UPD, +SVW+UPD, +PERFECT. */
SweepSpec fig6Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Figure 7: RLE on the 4-wide machine.
 * Labels: BASE, RLE, +SVW, +SVW-SQU, +PERFECT. */
SweepSpec fig7Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Figure 8: SSBF organization sensitivity under SSQ+SVW+UPD.
 * Labels: 128, 512, 2048, Bloom, 4-byte, Infinite. */
SweepSpec fig8Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Section 2.2 ablation: value-blind vs value-aware LQ search.
 * Labels: blind (baseline), value-aware. */
SweepSpec ablLqValuesSpec(const std::vector<std::string> &suite,
                          std::uint64_t insts);

/** Section 3.6 ablation: speculative vs atomic SSBF update under
 * SSQ+SVW+UPD. Labels: speculative, atomic. */
SweepSpec ablSpecSsbfSpec(const std::vector<std::string> &suite,
                          std::uint64_t insts);

/** Section 3.6 ablation: SSN width sweep under SSQ+SVW+UPD.
 * Labels: 8b, 10b, 12b, 16b, 64b (baseline = 64b). */
SweepSpec ablSsnWidthSpec(const std::vector<std::string> &suite,
                          std::uint64_t insts);

/** Section 4 ablation: D$ commit/re-execution port width under the
 * baseline and SSQ+SVW. Labels: base-1p, base-2p, ssq-1p, ssq-2p. */
SweepSpec ablStorePortsSpec(const std::vector<std::string> &suite,
                            std::uint64_t insts);

/** Section 3.2 extension: NLQ-SM under an injected invalidation
 * stream (per-cycle hook). Labels: inv@200, inv@1000, inv@5000. */
SweepSpec extNlqsmSpec(const std::vector<std::string> &suite,
                       std::uint64_t insts);

/** Section 6 extension: SVW as a re-execution replacement under NLQ
 * and SSQ. Labels: nlq-rex, nlq-repl, ssq-rex, ssq-repl. */
SweepSpec extSvwReplaceSpec(const std::vector<std::string> &suite,
                            std::uint64_t insts);

/**
 * Differential-fuzz grid over the synthetic generator: every synth
 * kind x seeds [1, seedsPerKind] with the aggressive config rotated by
 * seed (8-wide baseline, NLQ+SVW, SSQ+SVW, RLE+SVW+UPD on 4-wide, and
 * the fully composed machine), goldenCheck on for every cell so each
 * run is verified against the interpreter. Group = workload name,
 * label = config label — the spec slots straight into runSweep and the
 * CI fuzz job.
 */
SweepSpec synthDiffSpec(std::uint64_t seedsPerKind, std::uint64_t insts);

// -- Workload families --------------------------------------------------

/** Which workload rows a figure sweeps (the --families= selector). */
enum class Families
{
    Paper, ///< the figure's paper suite (default; byte-identical output)
    Synth, ///< the synthetic generator suite (synth:<kind>:1 per kind)
    All,   ///< paper rows followed by the synth rows
};

/** Resolve a family selection against a figure's paper suite. Paper
 * returns @p paper unchanged; Synth returns workloads::synthSuiteNames;
 * All concatenates paper then synth. */
std::vector<std::string> familySuite(Families fam,
                                     const std::vector<std::string> &paper);

/** Parse "paper"/"synth"/"all" into @p out; false on anything else. */
bool parseFamilies(const std::string &text, Families &out);

// -- Figure registry ----------------------------------------------------

/**
 * One openable figure: a stable name, its default (paper) suite, and
 * the spec builder. The registry is how a sweep can be opened by name
 * alone — sweepd resolves "POST /sweep" figure names through it, and
 * the bench binaries use the same entries so daemon and CLI can never
 * disagree about what a figure means.
 */
struct FigureDef
{
    const char *name;  ///< registry key, e.g. "fig5"
    const char *title; ///< one-line description for listings
    /** The figure's paper-suite rows (workloads.hh accessor). */
    const std::vector<std::string> &(*paperSuite)();
    /** Build the spec over @p suite rows at @p insts per cell. */
    SweepSpec (*build)(const std::vector<std::string> &suite,
                       std::uint64_t insts);
};

/** All registered figures, in a stable listing order. */
const std::vector<FigureDef> &figureRegistry();

/** Look up a figure by name; null if unknown. */
const FigureDef *findFigure(const std::string &name);

} // namespace svw::harness

#endif // SVW_HARNESS_FIGURES_HH
