/**
 * @file
 * Declarative sweep specs for the paper's figures (5-8). One builder
 * per figure, shared by the bench binary that formats the figure, by
 * table_machine_config (which prints the configurations these specs
 * materialize), and by the sweep-engine tests (which assert that
 * parallel execution reproduces the sequential figure byte for byte).
 *
 * Cell labels are stable API: "BASE" is always the figure's baseline
 * column (marked baseline in the spec); optimization columns carry the
 * paper's names ("+SVW-UPD", "+PERFECT", ...).
 */

#ifndef SVW_HARNESS_FIGURES_HH
#define SVW_HARNESS_FIGURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace svw::harness {

/** Figure 5: NLQ-LS re-execution rate and speedup vs 8-wide baseline.
 * Labels: BASE, NLQ, +SVW-UPD, +SVW+UPD, +PERFECT. */
SweepSpec fig5Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Figure 6: SSQ vs the associative-SQ baseline.
 * Labels: BASE, SSQ, +SVW-UPD, +SVW+UPD, +PERFECT. */
SweepSpec fig6Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Figure 7: RLE on the 4-wide machine.
 * Labels: BASE, RLE, +SVW, +SVW-SQU, +PERFECT. */
SweepSpec fig7Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/** Figure 8: SSBF organization sensitivity under SSQ+SVW+UPD.
 * Labels: 128, 512, 2048, Bloom, 4-byte, Infinite. */
SweepSpec fig8Spec(const std::vector<std::string> &suite,
                   std::uint64_t insts);

/**
 * Differential-fuzz grid over the synthetic generator: every synth
 * kind x seeds [1, seedsPerKind] with the aggressive config rotated by
 * seed (8-wide baseline, NLQ+SVW, SSQ+SVW, RLE+SVW+UPD on 4-wide, and
 * the fully composed machine), goldenCheck on for every cell so each
 * run is verified against the interpreter. Group = workload name,
 * label = config label — the spec slots straight into runSweep and the
 * CI fuzz job.
 */
SweepSpec synthDiffSpec(std::uint64_t seedsPerKind, std::uint64_t insts);

} // namespace svw::harness

#endif // SVW_HARNESS_FIGURES_HH
