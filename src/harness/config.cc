#include "harness/config.hh"

#include "base/logging.hh"

namespace svw::harness {

std::string
configLabel(const ExperimentConfig &cfg)
{
    std::string s;
    switch (cfg.opt) {
      case OptMode::Baseline: s = "BASE"; break;
      case OptMode::BaselineAssocSq: s = "BASE-ASSOC-SQ"; break;
      case OptMode::Nlq: s = "NLQ"; break;
      case OptMode::Ssq: s = "SSQ"; break;
      case OptMode::Rle: s = "RLE"; break;
      case OptMode::Composed: s = "NLQ+SSQ+RLE"; break;
    }
    const bool baseline = cfg.opt == OptMode::Baseline ||
        cfg.opt == OptMode::BaselineAssocSq;
    if (!baseline) {
        switch (cfg.svw) {
          case SvwMode::None: break;
          case SvwMode::NoUpd: s += "+SVW-UPD"; break;
          case SvwMode::Upd: s += "+SVW+UPD"; break;
          case SvwMode::Perfect: s += "+PERFECT"; break;
        }
        if (cfg.svwReplace)
            s += "-REPL";
    }
    if (!cfg.rleSquashReuse)
        s += "-SQU";
    return s;
}

CoreParams
buildParams(const ExperimentConfig &cfg)
{
    CoreParams p;

    // ---- machine shell (paper section 4) ------------------------------
    if (cfg.machine == Machine::EightWide) {
        p.fetchWidth = p.dispatchWidth = p.issueWidth = p.commitWidth = 8;
        p.intIssue = 5;
        p.loadIssue = 2;
        p.branchIssue = 1;
        p.robEntries = 512;
        p.iqEntries = 200;
        p.numPhysRegs = 448;
        p.lsu.lqEntries = 128;
        p.lsu.sqEntries = 64;
    } else {
        p.fetchWidth = p.dispatchWidth = p.issueWidth = p.commitWidth = 4;
        p.intIssue = 3;
        p.loadIssue = 1;
        p.branchIssue = 1;
        p.robEntries = 128;
        p.iqEntries = 50;
        p.numPhysRegs = 160;
        p.lsu.lqEntries = 32;
        p.lsu.sqEntries = 16;
    }
    p.dcachePorts = cfg.dcachePorts;

    // ---- optimization -----------------------------------------------------
    const bool baseline = cfg.opt == OptMode::Baseline ||
        cfg.opt == OptMode::BaselineAssocSq;

    switch (cfg.opt) {
      case OptMode::Baseline:
        break;
      case OptMode::BaselineAssocSq:
        // Loads serialize with the large associative SQ: 4-cycle loads.
        p.lsu.loadExtraLatency = 2;
        break;
      case OptMode::Nlq:
        p.lsu.nlq = true;
        p.lsu.storeIssueWidth = 2;  // the freed LQ CAM port
        break;
      case OptMode::Ssq:
        p.lsu.ssq = true;
        break;
      case OptMode::Rle:
        p.rle.enabled = true;
        break;
      case OptMode::Composed:
        p.lsu.nlq = true;
        p.lsu.storeIssueWidth = 2;
        p.lsu.ssq = true;
        p.rle.enabled = true;
        break;
    }
    p.rle.squashReuse = cfg.rleSquashReuse;
    // Full register integration (ALU ops included): squash reuse of a
    // load requires its recomputed address chain to integrate too, so
    // the load's key matches its squashed incarnation.
    p.rle.integrateAlu = true;
    p.rle.maxPinnedRegs = cfg.machine == Machine::FourWide ? 48 : 96;

    // ---- re-execution + SVW ------------------------------------------------
    p.rex.enabled = !baseline;
    p.rex.perfect = cfg.svw == SvwMode::Perfect;
    p.rex.cacheLatency = p.mem.l1d.latency;
    // Stores that passed the rex SVW stage stay architecturally visible
    // in the SQ until they commit; the engine's internal buffer is
    // bounded by the SQ, not a separate small structure.
    p.rex.storeBufferEntries = p.lsu.sqEntries;

    p.svw.enabled = !baseline &&
        (cfg.svw == SvwMode::NoUpd || cfg.svw == SvwMode::Upd);
    p.svw.updateOnForward = cfg.svw == SvwMode::Upd;
    p.svw.ssnBits = cfg.ssnBits;
    p.svw.ssbf = cfg.ssbf;
    p.svw.speculativeSsbfUpdate = cfg.speculativeSsbfUpdate;
    p.rex.svwReplacesReExecution = cfg.svwReplace && p.svw.enabled;
    p.lsu.lqValueCheck = cfg.lqValueCheck;

    if (p.rex.enabled) {
        // "If no loads re-execute, the re-execution pipeline acts as a
        // trivial one-stage extension to the commit pipeline" (section
        // 2.1): the +2/+4 stages are the re-executing loads' cache /
        // register-file latency, which the rex engine models per load.
        p.rexTransit = 1;
        const bool rle = cfg.opt == OptMode::Rle ||
            cfg.opt == OptMode::Composed;
        p.rex.regfileReadLatency = rle ? 2 : 0;
    }

    p.nlqsm = cfg.nlqsm;
    return p;
}

} // namespace svw::harness
