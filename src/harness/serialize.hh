/**
 * @file
 * Exact-round-trip JSON serialization of RunResult — the sweep engine's
 * worker wire format.
 *
 * A worker process streams one JSON line per finished cell back to the
 * pool parent; the parent merges lines in spec order. The merged report
 * must be byte-identical to a sequential in-process run for any job
 * count, so every double is printed with %.17g (guaranteed lossless for
 * IEEE-754 binary64) and every integer as a full-width decimal. The
 * parser accepts exactly the flat two-level objects the writer emits —
 * it is a wire format between two halves of one binary, not a general
 * JSON implementation.
 */

#ifndef SVW_HARNESS_SERIALIZE_HH
#define SVW_HARNESS_SERIALIZE_HH

#include <cstddef>
#include <string>

#include "harness/runner.hh"

namespace svw::harness {

/** One-line JSON object with every RunResult field. */
std::string runResultToJson(const RunResult &r);

/** Parse runResultToJson output. @return false on malformed input. */
bool runResultFromJson(const std::string &json, RunResult &out);

/** Escape a string for embedding in a JSON literal (quotes excluded). */
std::string jsonEscape(const std::string &s);

/** Lossless double literal (%.17g). */
std::string jsonDouble(double v);

/**
 * Worker-protocol record: the per-cell execution envelope around the
 * RunResult (identity, success, error text, host timing).
 */
struct CellRecord
{
    std::size_t cellIndex = 0;
    bool ok = false;
    std::string error;
    double seconds = 0.0;          ///< best timing rep
    double hostWallSeconds = 0.0;  ///< total wall time across reps
    RunResult result{};
};

/** One protocol line (newline-terminated) for @p rec. */
std::string cellRecordToLine(const CellRecord &rec);

/** Parse cellRecordToLine output (with or without the trailing
 * newline). @return false on malformed input. */
bool cellRecordFromLine(const std::string &line, CellRecord &out);

} // namespace svw::harness

#endif // SVW_HARNESS_SERIALIZE_HH
