/**
 * @file
 * Exact-round-trip JSON serialization of RunResult — the sweep engine's
 * worker wire format.
 *
 * A worker process streams one JSON line per finished cell back to the
 * pool parent; the parent merges lines in spec order. The merged report
 * must be byte-identical to a sequential in-process run for any job
 * count, so every double is printed with %.17g (guaranteed lossless for
 * IEEE-754 binary64) and every integer as a full-width decimal. The
 * parser accepts exactly the flat two-level objects the writer emits —
 * it is a wire format between two halves of one binary, not a general
 * JSON implementation.
 */

#ifndef SVW_HARNESS_SERIALIZE_HH
#define SVW_HARNESS_SERIALIZE_HH

#include <cstddef>
#include <string>

#include "harness/runner.hh"

namespace svw::harness {

/** One-line JSON object with every RunResult field. */
std::string runResultToJson(const RunResult &r);

/** Parse runResultToJson output. @return false on malformed input. */
bool runResultFromJson(const std::string &json, RunResult &out);

/** Escape a string for embedding in a JSON literal (quotes excluded). */
std::string jsonEscape(const std::string &s);

/**
 * Lossless double literal (%.17g). Non-finite values are encoded as
 * the distinguished strings "NaN"/"Infinity"/"-Infinity" — %.17g's
 * bare `nan`/`inf` tokens are not JSON, and a cached stat file must
 * stay parseable by any JSON reader. The parser maps them back, so
 * the round trip is exact for every double.
 */
std::string jsonDouble(double v);

/**
 * Deterministic flat rendering of every CoreParams field (nested
 * param structs included), `name=value` joined with `|`. This is the
 * result cache's key material (harness/sweep.hh cellKey): any
 * configuration difference — including a newly added knob, once it is
 * listed here — changes the text and therefore the key. A
 * static_assert on sizeof(CoreParams) in serialize.cc forces this
 * list to be revisited whenever the struct changes shape.
 */
std::string coreParamsKeyText(const CoreParams &p);

/**
 * Result-cache entry: one JSON line holding the schema version, the
 * full key material (so a reader can verify the hash-named file
 * really belongs to its key — a collision or corruption degrades to a
 * cache miss, never a wrong result), and the RunResult.
 */
std::string cacheEntryToLine(const std::string &material,
                             const RunResult &r);

/** Parse cacheEntryToLine output (with or without the trailing
 * newline). @return false on malformed input or schema mismatch. */
bool cacheEntryFromLine(const std::string &line, std::string &material,
                        RunResult &r);

/**
 * Worker-protocol record: the per-cell execution envelope around the
 * RunResult (identity, success, error text, host timing).
 */
struct CellRecord
{
    std::size_t cellIndex = 0;
    bool ok = false;
    std::string error;
    double seconds = 0.0;          ///< best timing rep
    double hostWallSeconds = 0.0;  ///< total wall time across reps
    RunResult result{};
};

/** One protocol line (newline-terminated) for @p rec. */
std::string cellRecordToLine(const CellRecord &rec);

/** Parse cellRecordToLine output (with or without the trailing
 * newline). @return false on malformed input. */
bool cellRecordFromLine(const std::string &line, CellRecord &out);

} // namespace svw::harness

#endif // SVW_HARNESS_SERIALIZE_HH
