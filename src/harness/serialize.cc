#include "harness/serialize.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

namespace svw::harness {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    // Non-finite doubles as distinguished strings: %.17g would emit
    // bare nan/inf tokens, which are not JSON, and the result cache
    // persists these lines for external tools to read.
    if (std::isnan(v))
        return "\"NaN\"";
    if (std::isinf(v))
        return v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
runResultToJson(const RunResult &r)
{
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(r.workload) << "\""
       << ",\"config\":\"" << jsonEscape(r.config) << "\""
       << ",\"halted\":" << (r.halted ? "true" : "false")
       << ",\"golden_ok\":" << (r.goldenOk ? "true" : "false")
       << ",\"cycles\":" << r.cycles
       << ",\"insts\":" << r.insts
       << ",\"loads\":" << r.loads
       << ",\"stores\":" << r.stores
       << ",\"ipc\":" << jsonDouble(r.ipc)
       << ",\"loads_marked\":" << r.loadsMarked
       << ",\"loads_reexecuted\":" << r.loadsReExecuted
       << ",\"loads_filtered_by_svw\":" << r.loadsFilteredBySvw
       << ",\"rex_flushes\":" << r.rexFlushes
       << ",\"rex_rate\":" << jsonDouble(r.rexRate)
       << ",\"marked_rate\":" << jsonDouble(r.markedRate)
       << ",\"elim_rate\":" << jsonDouble(r.elimRate)
       << ",\"bypass_share\":" << jsonDouble(r.bypassShare)
       << ",\"fsq_load_share\":" << jsonDouble(r.fsqLoadShare)
       << ",\"branch_squashes\":" << r.branchSquashes
       << ",\"ordering_squashes\":" << r.orderingSquashes
       << ",\"wrap_drains\":" << r.wrapDrains;
    // Profile attribution keys ("prof_<stage>_ns") are emitted only
    // for profiled runs: profiled results never enter the result
    // cache, and unprofiled lines stay byte-identical to the pre-
    // profiler wire format.
    if (r.profTicks) {
        for (unsigned s = 0; s < prof::NumStages; ++s) {
            os << ",\"prof_" << prof::stageName(prof::Stage(s))
               << "_ns\":" << r.profStageNs[s];
        }
        os << ",\"prof_ticks\":" << r.profTicks
           << ",\"prof_cell_ns\":" << r.profCellNs;
    }
    os << "}";
    return os.str();
}

namespace {

/**
 * Cursor over the wire format. Values are strings, numbers, booleans,
 * or one level of nested object; that is everything the writers above
 * produce.
 */
struct Cursor
{
    const char *p;
    const char *end;

    bool atEnd() const { return p >= end; }
    void skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r')) {
            ++p;
        }
    }
    bool consume(char c)
    {
        skipWs();
        if (atEnd() || *p != c)
            return false;
        ++p;
        return true;
    }
    bool peek(char c)
    {
        skipWs();
        return !atEnd() && *p == c;
    }
};

bool
parseString(Cursor &c, std::string &out)
{
    if (!c.consume('"'))
        return false;
    out.clear();
    while (!c.atEnd() && *c.p != '"') {
        char ch = *c.p++;
        if (ch == '\\') {
            if (c.atEnd())
                return false;
            char esc = *c.p++;
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'u': {
                if (c.end - c.p < 4)
                    return false;
                char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], 0};
                out += static_cast<char>(std::strtoul(hex, nullptr, 16));
                c.p += 4;
                break;
              }
              default:
                return false;
            }
        } else {
            out += ch;
        }
    }
    return c.consume('"');
}

bool
parseNumberToken(Cursor &c, std::string &tok)
{
    c.skipWs();
    tok.clear();
    while (!c.atEnd() &&
           (std::strchr("+-.0123456789eE", *c.p) != nullptr ||
            std::isalpha(static_cast<unsigned char>(*c.p)))) {
        // isalpha admits true/false (and legacy bare inf/nan tokens;
        // the writer now encodes non-finite doubles as strings).
        tok += *c.p++;
    }
    return !tok.empty();
}

bool parseValueInto(Cursor &c, const std::string &key, RunResult &r);

/** Skip any scalar or (one-level) object value we don't recognize. */
bool
skipValue(Cursor &c)
{
    c.skipWs();
    if (c.peek('"')) {
        std::string s;
        return parseString(c, s);
    }
    if (c.peek('{')) {
        c.consume('{');
        if (c.consume('}'))
            return true;
        do {
            std::string k;
            if (!parseString(c, k) || !c.consume(':') || !skipValue(c))
                return false;
        } while (c.consume(','));
        return c.consume('}');
    }
    std::string tok;
    return parseNumberToken(c, tok);
}

bool
parseU64(Cursor &c, std::uint64_t &v)
{
    std::string tok;
    if (!parseNumberToken(c, tok))
        return false;
    v = std::strtoull(tok.c_str(), nullptr, 10);
    return true;
}

bool
parseDouble(Cursor &c, double &v)
{
    c.skipWs();
    if (c.peek('"')) {
        // jsonDouble's non-finite encoding.
        std::string s;
        if (!parseString(c, s))
            return false;
        if (s == "NaN") {
            v = std::numeric_limits<double>::quiet_NaN();
            return true;
        }
        if (s == "Infinity") {
            v = std::numeric_limits<double>::infinity();
            return true;
        }
        if (s == "-Infinity") {
            v = -std::numeric_limits<double>::infinity();
            return true;
        }
        return false;
    }
    std::string tok;
    if (!parseNumberToken(c, tok))
        return false;
    v = std::strtod(tok.c_str(), nullptr);
    return true;
}

bool
parseBool(Cursor &c, bool &v)
{
    std::string tok;
    if (!parseNumberToken(c, tok))
        return false;
    if (tok == "true") {
        v = true;
        return true;
    }
    if (tok == "false") {
        v = false;
        return true;
    }
    return false;
}

bool
parseValueInto(Cursor &c, const std::string &key, RunResult &r)
{
    if (key == "workload")
        return parseString(c, r.workload);
    if (key == "config")
        return parseString(c, r.config);
    if (key == "halted")
        return parseBool(c, r.halted);
    if (key == "golden_ok")
        return parseBool(c, r.goldenOk);
    if (key == "cycles")
        return parseU64(c, r.cycles);
    if (key == "insts")
        return parseU64(c, r.insts);
    if (key == "loads")
        return parseU64(c, r.loads);
    if (key == "stores")
        return parseU64(c, r.stores);
    if (key == "ipc")
        return parseDouble(c, r.ipc);
    if (key == "loads_marked")
        return parseU64(c, r.loadsMarked);
    if (key == "loads_reexecuted")
        return parseU64(c, r.loadsReExecuted);
    if (key == "loads_filtered_by_svw")
        return parseU64(c, r.loadsFilteredBySvw);
    if (key == "rex_flushes")
        return parseU64(c, r.rexFlushes);
    if (key == "rex_rate")
        return parseDouble(c, r.rexRate);
    if (key == "marked_rate")
        return parseDouble(c, r.markedRate);
    if (key == "elim_rate")
        return parseDouble(c, r.elimRate);
    if (key == "bypass_share")
        return parseDouble(c, r.bypassShare);
    if (key == "fsq_load_share")
        return parseDouble(c, r.fsqLoadShare);
    if (key == "branch_squashes")
        return parseU64(c, r.branchSquashes);
    if (key == "ordering_squashes")
        return parseU64(c, r.orderingSquashes);
    if (key == "wrap_drains")
        return parseU64(c, r.wrapDrains);
    if (key == "prof_ticks")
        return parseU64(c, r.profTicks);
    if (key == "prof_cell_ns")
        return parseU64(c, r.profCellNs);
    if (key.size() > 8 && key.compare(0, 5, "prof_") == 0 &&
        key.compare(key.size() - 3, 3, "_ns") == 0) {
        const std::string stage = key.substr(5, key.size() - 8);
        for (unsigned s = 0; s < prof::NumStages; ++s)
            if (stage == prof::stageName(prof::Stage(s)))
                return parseU64(c, r.profStageNs[s]);
    }
    return skipValue(c);  // unknown key: tolerate (forward compat)
}

bool
parseRunResultObject(Cursor &c, RunResult &r)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    do {
        std::string key;
        if (!parseString(c, key) || !c.consume(':'))
            return false;
        if (!parseValueInto(c, key, r))
            return false;
    } while (c.consume(','));
    return c.consume('}');
}

} // namespace

bool
runResultFromJson(const std::string &json, RunResult &out)
{
    Cursor c{json.data(), json.data() + json.size()};
    RunResult r;
    if (!parseRunResultObject(c, r))
        return false;
    out = r;
    return true;
}

std::string
cellRecordToLine(const CellRecord &rec)
{
    std::ostringstream os;
    os << "{\"cell\":" << rec.cellIndex
       << ",\"ok\":" << (rec.ok ? "true" : "false")
       << ",\"error\":\"" << jsonEscape(rec.error) << "\""
       << ",\"seconds\":" << jsonDouble(rec.seconds)
       << ",\"host_wall_seconds\":" << jsonDouble(rec.hostWallSeconds)
       << ",\"result\":" << runResultToJson(rec.result)
       << "}\n";
    return os.str();
}

// Key material must enumerate EVERY field: a knob missing from this
// list would let two different machines share one cache entry. The
// size checks cannot prove the lists are complete, but they force a
// human through this file whenever either struct changes shape —
// update coreParamsKeyText (and, for RunResult, the JSON
// writer/parser: parseValueInto tolerates missing keys, so an
// unlisted new metric would re-parse from old cache entries as its
// default) AND bump resultCacheCodeVersion (harness/sweep.hh) if the
// change alters results. The sizes are ABI-specific, so the tripwire
// is pinned to the toolchain CI enforces rather than breaking other
// builds over std::string layout.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(CoreParams) == 280,
              "CoreParams changed: revisit coreParamsKeyText and the "
              "result-cache code version");
static_assert(sizeof(RunResult) == 288,
              "RunResult changed: update the JSON writer/parser and "
              "bump the result-cache code version");
#endif

std::string
coreParamsKeyText(const CoreParams &p)
{
    std::ostringstream os;
    auto cache = [&os](const char *name, const CacheParams &c) {
        os << '|' << name << '=' << c.sizeBytes << '/' << c.assoc << '/'
           << c.lineBytes << '/' << c.latency;
    };
    os << "fetchWidth=" << p.fetchWidth
       << "|dispatchWidth=" << p.dispatchWidth
       << "|issueWidth=" << p.issueWidth
       << "|commitWidth=" << p.commitWidth
       << "|intIssue=" << p.intIssue
       << "|loadIssue=" << p.loadIssue
       << "|branchIssue=" << p.branchIssue
       << "|robEntries=" << p.robEntries
       << "|iqEntries=" << p.iqEntries
       << "|numPhysRegs=" << p.numPhysRegs
       << "|renameCheckpoints=" << p.renameCheckpoints
       << "|frontendDepth=" << p.frontendDepth
       << "|mispredictRedirect=" << p.mispredictRedirect
       << "|rexTransit=" << p.rexTransit
       << "|dcachePorts=" << p.dcachePorts
       << "|bpred.hybridEntries=" << p.bpred.hybridEntries
       << "|bpred.btbEntries=" << p.bpred.btbEntries
       << "|bpred.btbAssoc=" << p.bpred.btbAssoc
       << "|bpred.rasEntries=" << p.bpred.rasEntries;
    cache("mem.l1i", p.mem.l1i);
    cache("mem.l1d", p.mem.l1d);
    cache("mem.l2", p.mem.l2);
    os << "|mem.memLatency=" << p.mem.memLatency
       << "|mem.l2BusCyclesPerLine=" << p.mem.l2BusCyclesPerLine
       << "|mem.memBusCyclesPerLine=" << p.mem.memBusCyclesPerLine
       << "|mem.l1dBanks=" << p.mem.l1dBanks
       << "|lsu.lqEntries=" << p.lsu.lqEntries
       << "|lsu.sqEntries=" << p.lsu.sqEntries
       << "|lsu.nlq=" << p.lsu.nlq
       << "|lsu.ssq=" << p.lsu.ssq
       << "|lsu.fsqEntries=" << p.lsu.fsqEntries
       << "|lsu.fsqPorts=" << p.lsu.fsqPorts
       << "|lsu.fwdBufEntriesPerBank=" << p.lsu.fwdBufEntriesPerBank
       << "|lsu.loadExtraLatency=" << p.lsu.loadExtraLatency
       << "|lsu.lqValueCheck=" << p.lsu.lqValueCheck
       << "|lsu.storeIssueWidth=" << p.lsu.storeIssueWidth
       << "|lsu.steeringEntries=" << p.lsu.steeringEntries
       << "|svw.enabled=" << p.svw.enabled
       << "|svw.updateOnForward=" << p.svw.updateOnForward
       << "|svw.ssnBits=" << p.svw.ssnBits
       << "|svw.ssbf.entries=" << p.svw.ssbf.entries
       << "|svw.ssbf.granularityBytes=" << p.svw.ssbf.granularityBytes
       << "|svw.ssbf.dualHash=" << p.svw.ssbf.dualHash
       << "|svw.ssbf.infinite=" << p.svw.ssbf.infinite
       << "|svw.speculativeSsbfUpdate=" << p.svw.speculativeSsbfUpdate
       << "|rex.enabled=" << p.rex.enabled
       << "|rex.perfect=" << p.rex.perfect
       << "|rex.width=" << p.rex.width
       << "|rex.storeBufferEntries=" << p.rex.storeBufferEntries
       << "|rex.cacheLatency=" << p.rex.cacheLatency
       << "|rex.regfileReadLatency=" << p.rex.regfileReadLatency
       << "|rex.svwReplacesReExecution=" << p.rex.svwReplacesReExecution
       << "|rle.enabled=" << p.rle.enabled
       << "|rle.itEntries=" << p.rle.itEntries
       << "|rle.itAssoc=" << p.rle.itAssoc
       << "|rle.squashReuse=" << p.rle.squashReuse
       << "|rle.integrateAlu=" << p.rle.integrateAlu
       << "|rle.maxPinnedRegs=" << p.rle.maxPinnedRegs
       << "|nlqsm=" << p.nlqsm;
    return os.str();
}

std::string
cacheEntryToLine(const std::string &material, const RunResult &r)
{
    std::ostringstream os;
    os << "{\"v\":1"
       << ",\"material\":\"" << jsonEscape(material) << "\""
       << ",\"result\":" << runResultToJson(r)
       << "}\n";
    return os.str();
}

bool
cacheEntryFromLine(const std::string &line, std::string &material,
                   RunResult &r)
{
    Cursor c{line.data(), line.data() + line.size()};
    std::uint64_t version = 0;
    std::string mat;
    RunResult res;
    bool sawMaterial = false, sawResult = false;
    if (!c.consume('{'))
        return false;
    do {
        std::string key;
        if (!parseString(c, key) || !c.consume(':'))
            return false;
        bool good;
        if (key == "v") {
            good = parseU64(c, version);
        } else if (key == "material") {
            good = parseString(c, mat);
            sawMaterial = good;
        } else if (key == "result") {
            good = parseRunResultObject(c, res);
            sawResult = good;
        } else {
            good = skipValue(c);
        }
        if (!good)
            return false;
    } while (c.consume(','));
    if (!c.consume('}') || version != 1 || !sawMaterial || !sawResult)
        return false;
    material = std::move(mat);
    r = res;
    return true;
}

bool
cellRecordFromLine(const std::string &line, CellRecord &out)
{
    Cursor c{line.data(), line.data() + line.size()};
    CellRecord rec;
    if (!c.consume('{'))
        return false;
    if (!c.consume('}')) {
        do {
            std::string key;
            if (!parseString(c, key) || !c.consume(':'))
                return false;
            bool good;
            if (key == "cell") {
                std::uint64_t v;
                good = parseU64(c, v);
                rec.cellIndex = static_cast<std::size_t>(v);
            } else if (key == "ok") {
                good = parseBool(c, rec.ok);
            } else if (key == "error") {
                good = parseString(c, rec.error);
            } else if (key == "seconds") {
                good = parseDouble(c, rec.seconds);
            } else if (key == "host_wall_seconds") {
                good = parseDouble(c, rec.hostWallSeconds);
            } else if (key == "result") {
                good = parseRunResultObject(c, rec.result);
            } else {
                good = skipValue(c);
            }
            if (!good)
                return false;
        } while (c.consume(','));
        if (!c.consume('}'))
            return false;
    }
    out = std::move(rec);
    return true;
}

} // namespace svw::harness
