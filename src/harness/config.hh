/**
 * @file
 * Experiment configurations: the paper's two machines (section 4) and
 * the per-figure optimization/SVW variants.
 */

#ifndef SVW_HARNESS_CONFIG_HH
#define SVW_HARNESS_CONFIG_HH

#include <string>

#include "cpu/core.hh"

namespace svw::harness {

/** Machine width class (paper section 4). */
enum class Machine
{
    EightWide,  ///< NLQ/SSQ machine: 8-way, 512 ROB, 128 LQ, 64 SQ
    FourWide,   ///< RLE machine: 4-way, 128 ROB, 32 LQ, 16 SQ
};

/** Which load optimization is active. */
enum class OptMode
{
    Baseline,      ///< conventional LSU, no re-execution
    BaselineAssocSq,///< conventional with the 4-cycle assoc-SQ load path
    Nlq,           ///< non-associative LQ (Figure 5)
    Ssq,           ///< speculative SQ (Figure 6)
    Rle,           ///< redundant load elimination (Figure 7)
    Composed,      ///< NLQ + SSQ + RLE together (section 3.5 extension)
};

/** Re-execution filtering variant. */
enum class SvwMode
{
    None,     ///< natural filter only
    NoUpd,    ///< SVW without the store-forward update
    Upd,      ///< SVW with the store-forward update
    Perfect,  ///< ideal re-execution: zero latency, infinite bandwidth
};

/** One experiment cell. */
struct ExperimentConfig
{
    Machine machine = Machine::EightWide;
    OptMode opt = OptMode::Baseline;
    SvwMode svw = SvwMode::Upd;

    // Knobs for the sensitivity/ablation studies.
    unsigned ssnBits = 16;
    SsbfParams ssbf{};
    bool speculativeSsbfUpdate = true;
    unsigned dcachePorts = 1;
    bool rleSquashReuse = true;
    bool nlqsm = false;
    /** Section 6 future work: SSBF hits flush instead of re-executing. */
    bool svwReplace = false;
    /** Ablation: value-aware LQ search ignores silent-store violations
     * (section 2.2's "if the LQ contains values" remark). */
    bool lqValueCheck = false;
};

/** Human-readable label ("NLQ+SVW+UPD" etc.). */
std::string configLabel(const ExperimentConfig &cfg);

/** Expand an experiment cell into full core parameters. */
CoreParams buildParams(const ExperimentConfig &cfg);

} // namespace svw::harness

#endif // SVW_HARNESS_CONFIG_HH
