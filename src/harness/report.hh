/**
 * @file
 * Paper-style result tables: one row per benchmark, one column per
 * configuration, plus the arithmetic mean row the figures report.
 */

#ifndef SVW_HARNESS_REPORT_HH
#define SVW_HARNESS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace svw::harness {

/** A benchmark x configuration matrix of doubles with pretty printing. */
class FigureTable
{
  public:
    FigureTable(std::string title, std::vector<std::string> colNames);

    void addRow(const std::string &name, const std::vector<double> &vals);

    /** Append an "avg" row of per-column arithmetic means. */
    void addAverageRow();

    void print(std::ostream &os, unsigned precision = 1) const;

    const std::vector<double> &row(std::size_t i) const
    {
        return rows[i].vals;
    }
    std::size_t numRows() const { return rows.size(); }

  private:
    struct Row
    {
        std::string name;
        std::vector<double> vals;
    };

    std::string title;
    std::vector<std::string> cols;
    std::vector<Row> rows;
};

} // namespace svw::harness

#endif // SVW_HARNESS_REPORT_HH
