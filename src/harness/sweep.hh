/**
 * @file
 * Declarative figure sweeps.
 *
 * Every paper figure (and ablation, and the perf tracker) is a
 * (workload x configuration) grid of independent cells. A SweepSpec
 * names each cell up front — its group (figure row, usually the
 * workload), column label, workload, instruction budget, configuration,
 * and whether it is the row's speedup baseline — and the executor
 * (harness/executor.hh) runs the cells in-process or across a worker
 * pool and hands back a SweepResults merged in spec order. The bench
 * binaries only declare cells and format tables; iteration, sharding,
 * parallelism, and workload-program caching all live behind runSweep.
 *
 * Determinism invariant: cell outcomes depend only on the cell (runs
 * are single-threaded and seeded), so the merged results — and any
 * report formatted from them — are byte-identical for every --jobs
 * value and equal to the sequential in-process run.
 */

#ifndef SVW_HARNESS_SWEEP_HH
#define SVW_HARNESS_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/config.hh"
#include "harness/runner.hh"

namespace svw::harness {

/** One named (workload, configuration) cell of a sweep. */
struct SweepCell
{
    std::string group;    ///< figure row key (usually the workload)
    std::string label;    ///< column label, unique within the group
    std::string workload; ///< workloads::make name
    std::uint64_t targetInsts = 100'000;
    ExperimentConfig config{};
    bool baseline = false;    ///< the group's speedup reference
    bool goldenCheck = true;  ///< cross-check against the interpreter
    /** Timing repetitions (perf tracking); metrics are identical across
     * reps, the executor reports the best rep's wall time. */
    unsigned timingReps = 1;
    /** Optional per-cycle hook (invalidation injectors). Runs in the
     * executing process — workers inherit it through fork. */
    std::function<void(Core &)> hook;

    /** Unique cell name: "group/label". */
    std::string name() const { return group + "/" + label; }
};

/** An ordered, named collection of sweep cells. */
class SweepSpec
{
  public:
    explicit SweepSpec(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a cell; names must be unique (panics otherwise).
     * @return the cell's index. */
    std::size_t add(SweepCell cell);

    std::size_t size() const { return cells_.size(); }
    const SweepCell &cell(std::size_t i) const { return cells_.at(i); }
    const std::vector<SweepCell> &cells() const { return cells_; }

    /** Group keys in first-appearance order. */
    const std::vector<std::string> &groups() const { return groups_; }

    /** Zero-based first-appearance index of @p group (panics if
     * unknown); the shard selector partitions on this. */
    std::size_t groupIndex(const std::string &group) const;

    /** Cell index by (group, label); panics if unknown. */
    std::size_t index(const std::string &group,
                      const std::string &label) const;

    /** Index of @p group's baseline cell; panics if none was marked. */
    std::size_t baselineIndex(const std::string &group) const;

  private:
    std::string name_;
    std::vector<SweepCell> cells_;
    std::vector<std::string> groups_;
    std::map<std::string, std::size_t> byName_;
    std::map<std::string, std::size_t> groupIndex_;
    std::map<std::string, std::size_t> baselineByGroup_;
};

/** Execution outcome of one cell. */
struct CellOutcome
{
    bool ran = false;  ///< selected by the shard and attempted
    bool ok = false;   ///< completed; result is valid
    std::string error; ///< failure description when !ok
    double seconds = 0.0;          ///< best timing rep (host wall)
    double hostWallSeconds = 0.0;  ///< total host wall across reps
    RunResult result{};
};

/** Merged, spec-ordered results of a sweep. */
class SweepResults
{
  public:
    SweepResults(SweepSpec spec, std::vector<CellOutcome> outcomes);

    const SweepSpec &spec() const { return spec_; }

    const CellOutcome &outcome(std::size_t i) const
    {
        return outcomes_.at(i);
    }
    const CellOutcome &outcome(const std::string &group,
                               const std::string &label) const
    {
        return outcomes_.at(spec_.index(group, label));
    }

    /** Result of a completed cell; panics if the cell did not run or
     * failed (callers gate rows on groupOk first). */
    const RunResult &result(const std::string &group,
                            const std::string &label) const;

    /** The group's baseline-cell result (same gating as result()). */
    const RunResult &baseline(const std::string &group) const;

    /** Groups selected by this run's shard, in spec order. */
    std::vector<std::string> shardGroups() const;

    /** True if every cell of @p group ran and succeeded. */
    bool groupOk(const std::string &group) const;

    /** Number of cells that ran and failed. */
    std::size_t failures() const;

  private:
    SweepSpec spec_;
    std::vector<CellOutcome> outcomes_;
};

} // namespace svw::harness

#endif // SVW_HARNESS_SWEEP_HH
