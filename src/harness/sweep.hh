/**
 * @file
 * Declarative figure sweeps.
 *
 * Every paper figure (and ablation, and the perf tracker) is a
 * (workload x configuration) grid of independent cells. A SweepSpec
 * names each cell up front — its group (figure row, usually the
 * workload), column label, workload, instruction budget, configuration,
 * and whether it is the row's speedup baseline — and the executor
 * (harness/executor.hh) runs the cells in-process or across a worker
 * pool and hands back a SweepResults merged in spec order. The bench
 * binaries only declare cells and format tables; iteration, sharding,
 * parallelism, and workload-program caching all live behind runSweep.
 *
 * Determinism invariant: cell outcomes depend only on the cell (each
 * cell's simulation runs on one thread and is seeded), so the merged
 * results — and any report formatted from them — are byte-identical
 * for every --jobs and --threads value and equal to the sequential
 * in-process run. Parallelism only reorders *when* cells run, never
 * what they compute.
 */

#ifndef SVW_HARNESS_SWEEP_HH
#define SVW_HARNESS_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/config.hh"
#include "harness/runner.hh"

namespace svw::harness {

/** One named (workload, configuration) cell of a sweep. */
struct SweepCell
{
    std::string group;    ///< figure row key (usually the workload)
    std::string label;    ///< column label, unique within the group
    std::string workload; ///< workloads::make name
    std::uint64_t targetInsts = 100'000;
    ExperimentConfig config{};
    bool baseline = false;    ///< the group's speedup reference
    bool goldenCheck = true;  ///< cross-check against the interpreter
    /** Timing repetitions (perf tracking); metrics are identical across
     * reps, the executor reports the best rep's wall time. */
    unsigned timingReps = 1;
    /**
     * Opt out of the persistent result cache even when the sweep runs
     * with one. Spec builders set this on cells whose *wall time* is
     * the product (perf tracking): a cached cell reports zero seconds,
     * which would silently poison a throughput trajectory. timingReps
     * > 1 implies the same exclusion; this flag covers --reps=1.
     */
    bool neverCache = false;
    /** Optional per-cycle hook (invalidation injectors). Runs in the
     * executing process — workers inherit it through fork. */
    std::function<void(Core &)> hook;

    /** Unique cell name: "group/label". */
    std::string name() const { return group + "/" + label; }
};

/** An ordered, named collection of sweep cells. */
class SweepSpec
{
  public:
    explicit SweepSpec(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a cell; names must be unique (panics otherwise).
     * @return the cell's index. */
    std::size_t add(SweepCell cell);

    std::size_t size() const { return cells_.size(); }
    const SweepCell &cell(std::size_t i) const { return cells_.at(i); }
    const std::vector<SweepCell> &cells() const { return cells_; }

    /** Group keys in first-appearance order. */
    const std::vector<std::string> &groups() const { return groups_; }

    /** Zero-based first-appearance index of @p group (panics if
     * unknown); the shard selector partitions on this. */
    std::size_t groupIndex(const std::string &group) const;

    /** Cell index by (group, label); panics if unknown. */
    std::size_t index(const std::string &group,
                      const std::string &label) const;

    /** Index of @p group's baseline cell; panics if none was marked. */
    std::size_t baselineIndex(const std::string &group) const;

  private:
    std::string name_;
    std::vector<SweepCell> cells_;
    std::vector<std::string> groups_;
    std::map<std::string, std::size_t> byName_;
    std::map<std::string, std::size_t> groupIndex_;
    std::map<std::string, std::size_t> baselineByGroup_;
};

/** Execution outcome of one cell. */
struct CellOutcome
{
    bool ran = false;  ///< selected by the shard and attempted
    bool ok = false;   ///< completed; result is valid
    /** Served from the persistent ResultCache: no simulation ran and
     * the timing fields are zero. */
    bool cached = false;
    std::string error; ///< failure description when !ok
    double seconds = 0.0;          ///< best timing rep (host wall)
    double hostWallSeconds = 0.0;  ///< total host wall across reps
    RunResult result{};
};

// ---------------------------------------------------------------------------
// Persistent result cache
// ---------------------------------------------------------------------------

/**
 * Code-version stamp baked into every cache key. The key material
 * already covers every CoreParams knob (serialize.hh
 * coreParamsKeyText), so parameter changes self-invalidate; bump this
 * stamp for changes that alter simulated timing or metrics *without*
 * touching any parameter — a new scheduling rule, a bug fix in the
 * core, a workload-generator change. Stale entries are never deleted,
 * just never matched again.
 */
inline constexpr const char *resultCacheCodeVersion = "svw-sim-2";

/**
 * Content-addressed identity of a cell's RunResult: a 64-bit FNV-1a
 * hash over the human-readable key material
 * (version | workload | insts | goldenCheck | full CoreParams text).
 * The material rides along so stores can embed it and lookups can
 * verify it — a hash collision degrades to a miss, never a wrong hit.
 * Group/label/baseline naming is deliberately NOT part of the key:
 * identical (workload, insts, config) cells share one entry across
 * figures.
 */
struct CellKey
{
    std::uint64_t hash = 0;
    std::string material;

    /** Cache file name: 16 hex digits + ".json". */
    std::string fileName() const;
};

/** Derive the cache key for @p cell (expands the cell's
 * ExperimentConfig through buildParams so every machine knob counts). */
CellKey cellKey(const SweepCell &cell);

/**
 * True when the cell's outcome is a pure function of its key: no
 * injected per-cycle hook (hooks perturb the simulation and cannot be
 * serialized) and no timing repetitions (perf cells exist to measure
 * *this* host run's wall time). Non-cacheable cells always execute.
 */
bool cellCacheable(const SweepCell &cell);

/**
 * On-disk store: one JSON-line file per key under a directory
 * (serialize.hh cacheEntryToLine — the sweep engine's lossless wire
 * format, so a warm read is bit-exact). Writes go to a temp file in
 * the same directory and are renamed into place, so concurrent
 * writers (sweep_driver shards sharing one --cache-dir) and crashed
 * writers can never leave a reader a partial entry: a reader sees the
 * old entry, a complete new entry, or a miss.
 */
class ResultCache
{
  public:
    /** Creates @p dir (and parents) if missing; fatal if impossible. */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** @return true and fill @p out on a verified hit. */
    bool get(const CellKey &key, RunResult &out) const;

    /** Best-effort atomic store; I/O failures warn and drop the entry
     * (the cache is an accelerator, never a correctness dependency).
     * The first store also garbage-collects orphaned temp files from
     * writers killed mid-store (age > 1 h) — put-side so fully warm
     * runs never pay the directory walk. */
    void put(const CellKey &key, const RunResult &r) const;

    /**
     * Size-bounded LRU eviction (--cache-max-mb): delete
     * least-recently-used entries until the directory's entry files
     * total at most @p maxBytes. "Used" is the file's write stamp —
     * get() refreshes it on every hit (most mounts are noatime, so
     * the cache keeps its own access stamp in mtime) — so the oldest
     * stamps really are the least recently served. Only `<hash>.json`
     * entry files are candidates: in-flight `.tmp.` files (a
     * concurrent writer mid-put) are never collected. Best-effort
     * like put(); all I/O errors are ignored.
     */
    void trimToBytes(std::uint64_t maxBytes) const;

  private:
    void collectTempLitter() const;

    std::string dir_;
    mutable bool gcDone_ = false;
};

/** Merged, spec-ordered results of a sweep. */
class SweepResults
{
  public:
    SweepResults(SweepSpec spec, std::vector<CellOutcome> outcomes);

    const SweepSpec &spec() const { return spec_; }

    const CellOutcome &outcome(std::size_t i) const
    {
        return outcomes_.at(i);
    }
    const CellOutcome &outcome(const std::string &group,
                               const std::string &label) const
    {
        return outcomes_.at(spec_.index(group, label));
    }

    /** Result of a completed cell; panics if the cell did not run or
     * failed (callers gate rows on groupOk first). */
    const RunResult &result(const std::string &group,
                            const std::string &label) const;

    /** The group's baseline-cell result (same gating as result()). */
    const RunResult &baseline(const std::string &group) const;

    /** Groups selected by this run's shard, in spec order. */
    std::vector<std::string> shardGroups() const;

    /** True if every cell of @p group ran and succeeded. */
    bool groupOk(const std::string &group) const;

    /** Number of cells that ran and failed. */
    std::size_t failures() const;

  private:
    SweepSpec spec_;
    std::vector<CellOutcome> outcomes_;
};

} // namespace svw::harness

#endif // SVW_HARNESS_SWEEP_HH
