#include "harness/figures.hh"

#include <memory>

#include "base/random.hh"
#include "cpu/core.hh"
#include "prog/synth.hh"
#include "prog/workloads/workloads.hh"

namespace svw::harness {

namespace {

SweepCell
cell(const std::string &w, std::uint64_t insts, const std::string &label,
     const ExperimentConfig &cfg, bool baseline = false)
{
    SweepCell c;
    c.group = w;
    c.label = label;
    c.workload = w;
    c.targetInsts = insts;
    c.config = cfg;
    c.baseline = baseline;
    return c;
}

} // namespace

SweepSpec
fig5Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::Baseline;

    auto nlq = base;
    nlq.opt = OptMode::Nlq;
    nlq.svw = SvwMode::None;
    auto noUpd = nlq;
    noUpd.svw = SvwMode::NoUpd;
    auto upd = nlq;
    upd.svw = SvwMode::Upd;
    auto perfect = nlq;
    perfect.svw = SvwMode::Perfect;

    SweepSpec spec("fig5");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "BASE", base, true));
        spec.add(cell(w, insts, "NLQ", nlq));
        spec.add(cell(w, insts, "+SVW-UPD", noUpd));
        spec.add(cell(w, insts, "+SVW+UPD", upd));
        spec.add(cell(w, insts, "+PERFECT", perfect));
    }
    return spec;
}

SweepSpec
fig6Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::BaselineAssocSq;  // 4-cycle loads (assoc SQ)

    ExperimentConfig ssq = base;
    ssq.opt = OptMode::Ssq;
    ssq.svw = SvwMode::None;
    auto noUpd = ssq;
    noUpd.svw = SvwMode::NoUpd;
    auto upd = ssq;
    upd.svw = SvwMode::Upd;
    auto perfect = ssq;
    perfect.svw = SvwMode::Perfect;

    SweepSpec spec("fig6");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "BASE", base, true));
        spec.add(cell(w, insts, "SSQ", ssq));
        spec.add(cell(w, insts, "+SVW-UPD", noUpd));
        spec.add(cell(w, insts, "+SVW+UPD", upd));
        spec.add(cell(w, insts, "+PERFECT", perfect));
    }
    return spec;
}

SweepSpec
fig7Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::FourWide;
    base.opt = OptMode::Baseline;
    // Inert while rex is off (buildParams disables SVW on baselines);
    // cleared so the machine-config table prints +upd=0 for 4w BASE.
    base.svw = SvwMode::None;

    ExperimentConfig rle = base;
    rle.opt = OptMode::Rle;
    auto withSvw = rle;
    withSvw.svw = SvwMode::Upd;
    auto noSqu = withSvw;
    noSqu.rleSquashReuse = false;
    auto perfect = rle;
    perfect.svw = SvwMode::Perfect;

    SweepSpec spec("fig7");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "BASE", base, true));
        spec.add(cell(w, insts, "RLE", rle));
        spec.add(cell(w, insts, "+SVW", withSvw));
        spec.add(cell(w, insts, "+SVW-SQU", noSqu));
        spec.add(cell(w, insts, "+PERFECT", perfect));
    }
    return spec;
}

SweepSpec
fig8Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    auto mk = [](unsigned entries, bool dual, unsigned gran, bool inf) {
        ExperimentConfig c;
        c.machine = Machine::EightWide;
        c.opt = OptMode::Ssq;
        c.svw = SvwMode::Upd;
        c.ssbf.entries = entries;
        c.ssbf.dualHash = dual;
        c.ssbf.granularityBytes = gran;
        c.ssbf.infinite = inf;
        return c;
    };

    SweepSpec spec("fig8");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "128", mk(128, false, 8, false)));
        spec.add(cell(w, insts, "512", mk(512, false, 8, false)));
        spec.add(cell(w, insts, "2048", mk(2048, false, 8, false)));
        spec.add(cell(w, insts, "Bloom", mk(512, true, 8, false)));
        spec.add(cell(w, insts, "4-byte", mk(512, false, 4, false)));
        spec.add(cell(w, insts, "Infinite", mk(512, false, 4, true)));
    }
    return spec;
}

SweepSpec
ablLqValuesSpec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig blind;
    blind.machine = Machine::EightWide;
    blind.opt = OptMode::Baseline;
    auto aware = blind;
    aware.lqValueCheck = true;

    SweepSpec spec("abl_lq_values");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "blind", blind, true));
        spec.add(cell(w, insts, "value-aware", aware));
    }
    return spec;
}

SweepSpec
ablSpecSsbfSpec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig spec8;
    spec8.machine = Machine::EightWide;
    spec8.opt = OptMode::Ssq;
    spec8.svw = SvwMode::Upd;
    spec8.speculativeSsbfUpdate = true;
    auto atomic = spec8;
    atomic.speculativeSsbfUpdate = false;

    SweepSpec spec("abl_spec_ssbf");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "speculative", spec8));
        spec.add(cell(w, insts, "atomic", atomic));
    }
    return spec;
}

SweepSpec
ablSsnWidthSpec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    const unsigned widths[] = {8, 10, 12, 16, 64};

    SweepSpec spec("abl_ssn_width");
    for (const auto &w : suite) {
        for (unsigned bits : widths) {
            ExperimentConfig cfg;
            cfg.machine = Machine::EightWide;
            cfg.opt = OptMode::Ssq;
            cfg.svw = SvwMode::Upd;
            cfg.ssnBits = bits;
            // 64-bit SSNs are the slowdown reference column.
            spec.add(cell(w, insts, std::to_string(bits) + "b", cfg,
                          bits == 64));
        }
    }
    return spec;
}

SweepSpec
ablStorePortsSpec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    SweepSpec spec("abl_store_ports");
    for (const auto &w : suite) {
        for (OptMode opt : {OptMode::Baseline, OptMode::Ssq}) {
            const char *tag = opt == OptMode::Baseline ? "base" : "ssq";
            ExperimentConfig cfg;
            cfg.machine = Machine::EightWide;
            cfg.opt = opt;
            cfg.svw = opt == OptMode::Baseline ? SvwMode::None
                                               : SvwMode::Upd;
            for (unsigned ports = 1; ports <= 2; ++ports) {
                cfg.dcachePorts = ports;
                spec.add(cell(w, insts,
                              std::string(tag) + "-" +
                                  std::to_string(ports) + "p",
                              cfg));
            }
        }
    }
    return spec;
}

SweepSpec
extNlqsmSpec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    const Cycle intervals[] = {200, 1000, 5000};

    SweepSpec spec("ext_nlqsm");
    for (const auto &w : suite) {
        for (Cycle interval : intervals) {
            ExperimentConfig cfg;
            cfg.machine = Machine::EightWide;
            cfg.opt = OptMode::Nlq;
            cfg.svw = SvwMode::Upd;
            cfg.nlqsm = true;
            SweepCell c =
                cell(w, insts, "inv@" + std::to_string(interval), cfg);

            // Invalidation injector: every `interval` cycles another
            // agent "writes" (silently) a pseudo-random data line.
            auto rng = std::make_shared<Random>(0x5111d + interval);
            c.hook = [rng, interval](Core &core) {
                if (core.cycle() == 0 || core.cycle() % interval != 0)
                    return;
                const Addr addr = 0x10000 +
                    (rng->nextBounded(1 << 14) & ~Addr(7));
                const std::uint64_t v = core.memory().read(addr, 8);
                core.externalStore(addr, 8, v);  // silent external write
            };
            spec.add(c);
        }
    }
    return spec;
}

SweepSpec
extSvwReplaceSpec(const std::vector<std::string> &suite,
                  std::uint64_t insts)
{
    SweepSpec spec("ext_svw_replace");
    for (const auto &w : suite) {
        for (OptMode opt : {OptMode::Nlq, OptMode::Ssq}) {
            const char *tag = opt == OptMode::Nlq ? "nlq" : "ssq";
            ExperimentConfig rex;
            rex.machine = Machine::EightWide;
            rex.opt = opt;
            rex.svw = SvwMode::Upd;
            auto repl = rex;
            repl.svwReplace = true;

            spec.add(cell(w, insts, std::string(tag) + "-rex", rex));
            spec.add(cell(w, insts, std::string(tag) + "-repl", repl));
        }
    }
    return spec;
}

SweepSpec
synthDiffSpec(std::uint64_t seedsPerKind, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::Baseline;

    ExperimentConfig nlqSvw = base;
    nlqSvw.opt = OptMode::Nlq;
    nlqSvw.svw = SvwMode::Upd;

    ExperimentConfig ssqSvw = base;
    ssqSvw.opt = OptMode::Ssq;
    ssqSvw.svw = SvwMode::Upd;

    ExperimentConfig rleSvw;
    rleSvw.machine = Machine::FourWide;
    rleSvw.opt = OptMode::Rle;
    rleSvw.svw = SvwMode::Upd;

    ExperimentConfig composed = base;
    composed.opt = OptMode::Composed;
    composed.svw = SvwMode::Upd;

    struct Cfg { const char *label; ExperimentConfig cfg; };
    const Cfg configs[] = {
        {"BASE", base},
        {"NLQ+SVW", nlqSvw},
        {"SSQ+SVW", ssqSvw},
        {"RLE+SVW", rleSvw},
        {"COMPOSED", composed},
    };
    constexpr std::size_t numConfigs = sizeof(configs) / sizeof(configs[0]);

    SweepSpec spec("synthdiff");
    for (const std::string &kind : synth::kindNames()) {
        for (std::uint64_t seed = 1; seed <= seedsPerKind; ++seed) {
            // Rotate the config by seed: every kind meets every config
            // without a full (kind x seed x config) product blowup.
            const Cfg &c = configs[seed % numConfigs];
            synth::SynthParams p;
            p.kind = kind;
            p.seed = seed;
            SweepCell cc;
            cc.group = synth::canonicalName(p);
            cc.label = c.label;
            cc.workload = cc.group;
            cc.targetInsts = insts;
            cc.config = c.cfg;
            cc.goldenCheck = true;
            spec.add(cc);
        }
    }
    return spec;
}

std::vector<std::string>
familySuite(Families fam, const std::vector<std::string> &paper)
{
    switch (fam) {
      case Families::Paper:
        return paper;
      case Families::Synth:
        return workloads::synthSuiteNames();
      case Families::All: {
        std::vector<std::string> all = paper;
        const auto &synth = workloads::synthSuiteNames();
        all.insert(all.end(), synth.begin(), synth.end());
        return all;
      }
    }
    return paper;  // unreachable
}

bool
parseFamilies(const std::string &text, Families &out)
{
    if (text == "paper")
        out = Families::Paper;
    else if (text == "synth")
        out = Families::Synth;
    else if (text == "all")
        out = Families::All;
    else
        return false;
    return true;
}

const std::vector<FigureDef> &
figureRegistry()
{
    static const std::vector<FigureDef> defs = {
        {"fig5", "NLQ-LS re-execution rate and speedup (figure 5)",
         &workloads::suiteNames, &fig5Spec},
        {"fig6", "SSQ vs associative-SQ baseline (figure 6)",
         &workloads::suiteNames, &fig6Spec},
        {"fig7", "RLE on the 4-wide machine (figure 7)",
         &workloads::suiteNames, &fig7Spec},
        {"fig8", "SSBF organization sensitivity (figure 8)",
         &workloads::fig8Names, &fig8Spec},
        {"abl_lq_values", "value-aware LQ search ablation",
         &workloads::suiteNames, &ablLqValuesSpec},
        {"abl_spec_ssbf", "speculative vs atomic SSBF update ablation",
         &workloads::fig8Names, &ablSpecSsbfSpec},
        {"abl_ssn_width", "SSN width ablation",
         &workloads::fig8Names, &ablSsnWidthSpec},
        {"abl_store_ports", "store retirement port ablation",
         &workloads::suiteNames, &ablStorePortsSpec},
        {"ext_nlqsm", "NLQ-SM invalidation-stream extension",
         &workloads::fig8Names, &extNlqsmSpec},
        {"ext_svw_replace", "SVW-as-replacement extension",
         &workloads::suiteNames, &extSvwReplaceSpec},
    };
    return defs;
}

const FigureDef *
findFigure(const std::string &name)
{
    for (const FigureDef &def : figureRegistry())
        if (name == def.name)
            return &def;
    return nullptr;
}

} // namespace svw::harness
