#include "harness/figures.hh"

#include "prog/synth.hh"

namespace svw::harness {

namespace {

SweepCell
cell(const std::string &w, std::uint64_t insts, const std::string &label,
     const ExperimentConfig &cfg, bool baseline = false)
{
    SweepCell c;
    c.group = w;
    c.label = label;
    c.workload = w;
    c.targetInsts = insts;
    c.config = cfg;
    c.baseline = baseline;
    return c;
}

} // namespace

SweepSpec
fig5Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::Baseline;

    auto nlq = base;
    nlq.opt = OptMode::Nlq;
    nlq.svw = SvwMode::None;
    auto noUpd = nlq;
    noUpd.svw = SvwMode::NoUpd;
    auto upd = nlq;
    upd.svw = SvwMode::Upd;
    auto perfect = nlq;
    perfect.svw = SvwMode::Perfect;

    SweepSpec spec("fig5");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "BASE", base, true));
        spec.add(cell(w, insts, "NLQ", nlq));
        spec.add(cell(w, insts, "+SVW-UPD", noUpd));
        spec.add(cell(w, insts, "+SVW+UPD", upd));
        spec.add(cell(w, insts, "+PERFECT", perfect));
    }
    return spec;
}

SweepSpec
fig6Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::BaselineAssocSq;  // 4-cycle loads (assoc SQ)

    ExperimentConfig ssq = base;
    ssq.opt = OptMode::Ssq;
    ssq.svw = SvwMode::None;
    auto noUpd = ssq;
    noUpd.svw = SvwMode::NoUpd;
    auto upd = ssq;
    upd.svw = SvwMode::Upd;
    auto perfect = ssq;
    perfect.svw = SvwMode::Perfect;

    SweepSpec spec("fig6");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "BASE", base, true));
        spec.add(cell(w, insts, "SSQ", ssq));
        spec.add(cell(w, insts, "+SVW-UPD", noUpd));
        spec.add(cell(w, insts, "+SVW+UPD", upd));
        spec.add(cell(w, insts, "+PERFECT", perfect));
    }
    return spec;
}

SweepSpec
fig7Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::FourWide;
    base.opt = OptMode::Baseline;
    // Inert while rex is off (buildParams disables SVW on baselines);
    // cleared so the machine-config table prints +upd=0 for 4w BASE.
    base.svw = SvwMode::None;

    ExperimentConfig rle = base;
    rle.opt = OptMode::Rle;
    auto withSvw = rle;
    withSvw.svw = SvwMode::Upd;
    auto noSqu = withSvw;
    noSqu.rleSquashReuse = false;
    auto perfect = rle;
    perfect.svw = SvwMode::Perfect;

    SweepSpec spec("fig7");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "BASE", base, true));
        spec.add(cell(w, insts, "RLE", rle));
        spec.add(cell(w, insts, "+SVW", withSvw));
        spec.add(cell(w, insts, "+SVW-SQU", noSqu));
        spec.add(cell(w, insts, "+PERFECT", perfect));
    }
    return spec;
}

SweepSpec
fig8Spec(const std::vector<std::string> &suite, std::uint64_t insts)
{
    auto mk = [](unsigned entries, bool dual, unsigned gran, bool inf) {
        ExperimentConfig c;
        c.machine = Machine::EightWide;
        c.opt = OptMode::Ssq;
        c.svw = SvwMode::Upd;
        c.ssbf.entries = entries;
        c.ssbf.dualHash = dual;
        c.ssbf.granularityBytes = gran;
        c.ssbf.infinite = inf;
        return c;
    };

    SweepSpec spec("fig8");
    for (const auto &w : suite) {
        spec.add(cell(w, insts, "128", mk(128, false, 8, false)));
        spec.add(cell(w, insts, "512", mk(512, false, 8, false)));
        spec.add(cell(w, insts, "2048", mk(2048, false, 8, false)));
        spec.add(cell(w, insts, "Bloom", mk(512, true, 8, false)));
        spec.add(cell(w, insts, "4-byte", mk(512, false, 4, false)));
        spec.add(cell(w, insts, "Infinite", mk(512, false, 4, true)));
    }
    return spec;
}

SweepSpec
synthDiffSpec(std::uint64_t seedsPerKind, std::uint64_t insts)
{
    ExperimentConfig base;
    base.machine = Machine::EightWide;
    base.opt = OptMode::Baseline;

    ExperimentConfig nlqSvw = base;
    nlqSvw.opt = OptMode::Nlq;
    nlqSvw.svw = SvwMode::Upd;

    ExperimentConfig ssqSvw = base;
    ssqSvw.opt = OptMode::Ssq;
    ssqSvw.svw = SvwMode::Upd;

    ExperimentConfig rleSvw;
    rleSvw.machine = Machine::FourWide;
    rleSvw.opt = OptMode::Rle;
    rleSvw.svw = SvwMode::Upd;

    ExperimentConfig composed = base;
    composed.opt = OptMode::Composed;
    composed.svw = SvwMode::Upd;

    struct Cfg { const char *label; ExperimentConfig cfg; };
    const Cfg configs[] = {
        {"BASE", base},
        {"NLQ+SVW", nlqSvw},
        {"SSQ+SVW", ssqSvw},
        {"RLE+SVW", rleSvw},
        {"COMPOSED", composed},
    };
    constexpr std::size_t numConfigs = sizeof(configs) / sizeof(configs[0]);

    SweepSpec spec("synthdiff");
    for (const std::string &kind : synth::kindNames()) {
        for (std::uint64_t seed = 1; seed <= seedsPerKind; ++seed) {
            // Rotate the config by seed: every kind meets every config
            // without a full (kind x seed x config) product blowup.
            const Cfg &c = configs[seed % numConfigs];
            synth::SynthParams p;
            p.kind = kind;
            p.seed = seed;
            SweepCell cc;
            cc.group = synth::canonicalName(p);
            cc.label = c.label;
            cc.workload = cc.group;
            cc.targetInsts = insts;
            cc.config = c.cfg;
            cc.goldenCheck = true;
            spec.add(cc);
        }
    }
    return spec;
}

} // namespace svw::harness
