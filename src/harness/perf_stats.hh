/**
 * @file
 * Statistics for the perf-regression harness (bench/perf_ab): the
 * Mann-Whitney U test over host-time samples.
 *
 * Container timing noise is heavy-tailed and occasionally bimodal
 * (page-cache state, CPU-frequency excursions, sibling load), so a
 * mean comparison over a handful of reps is nearly meaningless. The
 * Mann-Whitney U test is rank-based: it asks only whether one sample
 * set stochastically dominates the other, is exact under exchange of
 * labels, and is immune to outlier magnitude — the right tool for
 * "did this commit make cell X slower" on shared hardware.
 */

#ifndef SVW_HARNESS_PERF_STATS_HH
#define SVW_HARNESS_PERF_STATS_HH

#include <cstddef>
#include <vector>

namespace svw::harness {

/** Result of a two-sided Mann-Whitney U test. */
struct MannWhitneyResult
{
    double u1 = 0.0;      ///< U statistic of sample A
    double u2 = 0.0;      ///< U statistic of sample B (n1*n2 - u1)
    double z = 0.0;       ///< normal approximation (tie-corrected,
                          ///< continuity-corrected)
    double p = 1.0;       ///< two-sided p-value
    /** A's median minus B's median (sign = direction of any shift;
     * the test itself is rank-based). */
    double medianShift = 0.0;
};

/**
 * Two-sided Mann-Whitney U test of @p a vs @p b via the normal
 * approximation with tie correction and 0.5 continuity correction.
 * Degenerate inputs (either sample empty, or every value tied) return
 * p = 1. The approximation is standard for n >= ~8 per side; perf_ab
 * runs 10+ reps per arm.
 */
MannWhitneyResult mannWhitneyU(const std::vector<double> &a,
                               const std::vector<double> &b);

/** Sample median (averaged middle pair for even sizes; 0 if empty). */
double median(std::vector<double> v);

} // namespace svw::harness

#endif // SVW_HARNESS_PERF_STATS_HH
