/**
 * @file
 * Self-profiler implementation: stage metadata, the monotonic clock,
 * the process-wide collector, and the atexit folded-stack writer.
 */

#include "base/profile.hh"

#include <time.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace svw::prof {

const char *
stageName(Stage s)
{
    static const std::array<const char *, NumStages> names = {
        "commit", "rex", "complete", "wheel_advance",
        "issue", "lsu_search", "dispatch", "fetch",
    };
    return s < NumStages ? names[s] : "?";
}

Stage
stageParent(Stage s)
{
    switch (s) {
      case WheelAdvance:
        return Complete;
      case LsuSearch:
        return Issue;
      default:
        return NumStages;
    }
}

std::uint64_t
nowNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return std::uint64_t(ts.tv_sec) * 1'000'000'000u +
           std::uint64_t(ts.tv_nsec);
}

std::uint64_t
StageTimes::totalNs() const
{
    std::uint64_t sum = 0;
    for (unsigned s = 0; s < NumStages; ++s)
        if (stageParent(Stage(s)) == NumStages)
            sum += ns[s];
    return sum;
}

void
Collector::add(const std::string &cell, const StageTimes &t,
               std::uint64_t cellNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CellEntry &e = cells_[cell];
    for (unsigned s = 0; s < NumStages; ++s)
        e.t.ns[s] += t.ns[s];
    e.t.ticks += t.ticks;
    e.cellNs += cellNs;
}

std::string
Collector::folded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    for (const auto &[cell, e] : cells_) {
        for (unsigned s = 0; s < NumStages; ++s) {
            // A parent's folded line carries its *self* time; the
            // children's lines carry theirs. Nesting is one level deep,
            // so self = counter - sum of direct children.
            std::uint64_t self = e.t.ns[s];
            for (unsigned c = 0; c < NumStages; ++c)
                if (stageParent(Stage(c)) == Stage(s))
                    self -= self >= e.t.ns[c] ? e.t.ns[c] : self;
            if (!self)
                continue;
            out << "svw_sim;" << cell << ";tick;";
            const Stage parent = stageParent(Stage(s));
            if (parent != NumStages)
                out << stageName(parent) << ';';
            out << stageName(Stage(s)) << ' ' << self << '\n';
        }
        // Harness residual: run construction, golden check, result
        // extraction — everything in the cell's wall outside the tick
        // stages.
        const std::uint64_t stageNs = e.t.totalNs();
        if (e.cellNs > stageNs)
            out << "svw_sim;" << cell << ";harness "
                << (e.cellNs - stageNs) << '\n';
    }
    return out.str();
}

bool
Collector::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.empty();
}

void
Collector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.clear();
}

Collector &
collector()
{
    static Collector c;
    return c;
}

namespace {

std::string outputPath_;

void
writeFolded()
{
    if (outputPath_.empty())
        return;
    std::FILE *f = std::fopen(outputPath_.c_str(), "w");
    if (!f)
        return;
    const std::string text = collector().folded();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // anonymous namespace

bool
enableFoldedOutput(const std::string &path)
{
    if (path.empty())
        return false;
    // Touch the collector first so it is constructed before the atexit
    // handler registers: static destruction runs in reverse order, so
    // the collector then outlives the writer.
    collector();
    // Truncate-create now so flag validation fails fast on an
    // unwritable path.
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fclose(f);
    static bool registered = false;
    if (!registered) {
        registered = true;
        std::atexit(writeFolded);
    }
    outputPath_ = path;
    return true;
}

const std::string &
foldedOutputPath()
{
    return outputPath_;
}

} // namespace svw::prof
