/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef SVW_BASE_TYPES_HH
#define SVW_BASE_TYPES_HH

#include <cstdint>

namespace svw {

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Store sequence number (paper section 3: monotonic numbering). */
using SSN = std::uint64_t;

/** Global, monotonically increasing dynamic instruction sequence number. */
using InstSeqNum = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint16_t;

/** Physical register index. */
using PhysRegIndex = std::uint16_t;

/** Sentinel for "no physical register". */
constexpr PhysRegIndex invalidPhysReg = 0xffff;

/** Maximum access size in bytes for a single load/store. */
constexpr unsigned maxAccessSize = 8;

} // namespace svw

#endif // SVW_BASE_TYPES_HH
