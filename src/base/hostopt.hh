/**
 * @file
 * Host-optimization toggles: run-time switches that select the
 * *legacy* (pre-optimization) host code path for specific simulator
 * optimizations.
 *
 * Purpose: interleaved A/B benchmarking (bench/perf_ab --ab). A fair
 * significance test needs both arms in one binary, alternating rep by
 * rep, so container noise (frequency excursions, page cache, sibling
 * load) hits both arms alike; comparing two builds or two commits
 * cannot do that. Every optimization guarded here MUST be
 * host-side-only — simulated cycles and metrics byte-identical with
 * the toggle on or off (tests/test_profile.cc asserts this per
 * toggle) — so the toggles can never change results, only speed.
 *
 * The flags are process-global and meant to be set once before a
 * measurement rep, never concurrently with a running core.
 */

#ifndef SVW_BASE_HOSTOPT_HH
#define SVW_BASE_HOSTOPT_HH

namespace svw::hostopt {

/** One bit per guarded optimization; a set bit selects the LEGACY
 * (slower, pre-optimization) path. */
enum Opt : unsigned
{
    /** rle/integration_table.cc releaseOnePinned: legacy single
     * global-LRU walk instead of the per-category LRU lists. */
    LegacyRleRelease = 1u << 0,
    /** cpu/completion_wheel.hh drain: legacy unconditional bucket load
     * instead of the occupancy-bitmap test that skips empty slots. */
    LegacyWheelDrain = 1u << 1,
};

/** Bitmask of optimizations forced to their legacy path. */
inline unsigned &
legacyMask()
{
    static unsigned mask = 0;
    return mask;
}

inline bool
legacy(Opt o)
{
    return (legacyMask() & o) != 0;
}

} // namespace svw::hostopt

#endif // SVW_BASE_HOSTOPT_HH
