/**
 * @file
 * Small integer math helpers (powers of two, alignment, log2).
 */

#ifndef SVW_BASE_INTMATH_HH
#define SVW_BASE_INTMATH_HH

#include <cstdint>

#include "base/logging.hh"

namespace svw {

/** True if @p n is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log base 2; @p n must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** log2 of a power of two. */
inline unsigned
exactLog2(std::uint64_t n)
{
    svw_assert(isPowerOf2(n), "exactLog2 of non power of two ", n);
    return floorLog2(n);
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** True if two byte ranges [a, a+asz) and [b, b+bsz) overlap. */
constexpr bool
rangesOverlap(std::uint64_t a, unsigned asz, std::uint64_t b, unsigned bsz)
{
    return a < b + bsz && b < a + asz;
}

/** True if range [inner, inner+isz) is fully contained in [outer, outer+osz). */
constexpr bool
rangeContains(std::uint64_t outer, unsigned osz,
              std::uint64_t inner, unsigned isz)
{
    return outer <= inner && inner + isz <= outer + osz;
}

} // namespace svw

#endif // SVW_BASE_INTMATH_HH
