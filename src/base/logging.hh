/**
 * @file
 * Error and status reporting in the style of gem5's base/logging.hh.
 *
 * panic()  — simulator bug, should never happen regardless of user input.
 * fatal()  — the simulation cannot continue due to a user error.
 * warn()   — functionality that might not be modeled exactly.
 * inform() — normal status messages.
 */

#ifndef SVW_BASE_LOGGING_HH
#define SVW_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace svw {

/** Internal helpers; use the macros below. */
namespace logging_detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace logging_detail

/** Toggle for inform() output (quiet mode for benches). */
extern bool verboseLogging;

} // namespace svw

#define svw_panic(...)                                                       \
    ::svw::logging_detail::panicImpl(                                        \
        __FILE__, __LINE__, ::svw::logging_detail::format(__VA_ARGS__))

#define svw_fatal(...)                                                       \
    ::svw::logging_detail::fatalImpl(                                        \
        __FILE__, __LINE__, ::svw::logging_detail::format(__VA_ARGS__))

#define svw_warn(...)                                                        \
    ::svw::logging_detail::warnImpl(::svw::logging_detail::format(__VA_ARGS__))

#define svw_inform(...)                                                      \
    ::svw::logging_detail::informImpl(                                       \
        ::svw::logging_detail::format(__VA_ARGS__))

/** Assert-like check that is always on; reports as a panic. */
#define svw_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            svw_panic("assertion '" #cond "' failed ", ##__VA_ARGS__);       \
        }                                                                    \
    } while (0)

#endif // SVW_BASE_LOGGING_HH
