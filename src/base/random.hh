/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All simulator randomness (workload data, injected invalidations, etc.)
 * flows through Random so that every run is bit-reproducible from a seed.
 */

#ifndef SVW_BASE_RANDOM_HH
#define SVW_BASE_RANDOM_HH

#include <cstdint>

namespace svw {

/**
 * xorshift128+ generator. Small, fast, and good enough for workload
 * synthesis; not intended for cryptographic use.
 */
class Random
{
  public:
    /** Construct from a non-zero seed; zero seeds are remapped. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw with probability @p permille / 1000. */
    bool chancePermille(unsigned permille);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    std::uint64_t state0;
    std::uint64_t state1;
};

} // namespace svw

#endif // SVW_BASE_RANDOM_HH
