/**
 * @file
 * Self-profiler: host-nanosecond attribution of simulator time to
 * pipeline stage (docs/ARCHITECTURE.md "Self-profiling &
 * perf-regression harness").
 *
 * The tick loop is the simulator's hot path, so the profiler must
 * never cost anything when it is off: Core keeps a single nullable
 * pointer to a StageTimes block, and every instrumentation site is one
 * predictable `if (stageProf)` branch (the profiled tick body is a
 * separate function, so the unprofiled path's code layout is
 * untouched). When it is on, stage boundaries read a monotonic clock
 * and charge the delta to the stage's counter — pure host-side
 * observation that never touches timing-visible simulated state, so a
 * profiled run retires bit-identical cycles and metrics.
 *
 * Two stages are nested scopes: LsuSearch (the LQ/SQ/SSQ associative
 * walks, charged inside Issue) and WheelAdvance (the completion event
 * wheel drain plus its completion callbacks — branch resolution and
 * squash recovery fire from inside the drain — charged inside
 * Complete). Folded-stack output keeps the nesting
 * (`...;issue;lsu_search`), and a parent's self time is its counter
 * minus its children's, which is non-negative by construction (a
 * nested interval is measured inside the parent's interval on one
 * monotonic clock).
 */

#ifndef SVW_BASE_PROFILE_HH
#define SVW_BASE_PROFILE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace svw::prof {

/**
 * Stage taxonomy. Top-level stages mirror Core::tick's calls (rename
 * runs inside dispatchOne and is charged to Dispatch); LsuSearch and
 * WheelAdvance are nested children of Issue and Complete.
 */
enum Stage : unsigned {
    Commit,        ///< in-order retirement (incl. rename deref, stores)
    Rex,           ///< re-execution engine tick
    Complete,      ///< completion bookkeeping outside the wheel drain
    WheelAdvance,  ///< event-wheel drain + completion callbacks (nested
                   ///< in Complete; includes branch squash recovery)
    Issue,         ///< IQ scan + operand checks + execute
    LsuSearch,     ///< LQ/SQ/SSQ associative searches (nested in Issue)
    Dispatch,      ///< rename, RLE integration, queue allocation
    Fetch,         ///< predictor-driven fetch + I-cache timing
    NumStages
};

/** Stable lower-case stage name ("commit", "lsu_search", ...). */
const char *stageName(Stage s);

/** Parent stage for folded-stack nesting; NumStages = top level. */
Stage stageParent(Stage s);

/** Monotonic host nanoseconds (arbitrary origin). */
std::uint64_t nowNs();

/** Per-run stage attribution block, owned by the harness and attached
 * to a Core for the run's lifetime. */
struct StageTimes
{
    std::uint64_t ns[NumStages] = {};
    std::uint64_t ticks = 0;  ///< profiled tick() calls

    /** Sum of the top-level stage counters (nested stages excluded —
     * their time is already inside their parents'). */
    std::uint64_t totalNs() const;
};

/**
 * Process-wide accumulator of per-cell attributions, filled by the
 * sweep executor on profiled runs and drained into one
 * flamegraph.pl-compatible folded-stack file at exit
 * (enableFoldedOutput). Cells accumulate by name — a binary running
 * several sweeps (or several reps) over the same cells folds them into
 * one stack set. Thread-safe (thread-pool workers record through the
 * parent thread, but keep it safe regardless).
 */
class Collector
{
  public:
    /** Accumulate @p t (and the cell's total host wall @p cellNs —
     * stage time plus harness overhead: construction, golden check,
     * extraction) under @p cell. */
    void add(const std::string &cell, const StageTimes &t,
             std::uint64_t cellNs);

    /**
     * Folded-stack rendering: one "frame;frame;... <ns>" line per
     * non-zero counter, cells sorted by name and stages in enum order,
     * so equal inputs produce byte-identical output. Frames are
     * `svw_sim;<cell>;tick;<stage>[;<child>]`, plus a
     * `svw_sim;<cell>;harness` line for the cell's residual
     * (cellNs minus stage time, clamped at zero).
     */
    std::string folded() const;

    bool empty() const;
    void clear();

  private:
    struct CellEntry
    {
        StageTimes t;
        std::uint64_t cellNs = 0;
    };

    mutable std::mutex mutex_;
    std::map<std::string, CellEntry> cells_;
};

/** The process-wide collector. */
Collector &collector();

/**
 * Arm folded-stack output: truncate-create @p path now (so flag
 * validation can fail fast) and register an atexit writer that dumps
 * the collector into it. @return false when the path cannot be
 * created. Calling again replaces the path.
 */
bool enableFoldedOutput(const std::string &path);

/** The armed output path ("" = off). */
const std::string &foldedOutputPath();

} // namespace svw::prof

#endif // SVW_BASE_PROFILE_HH
