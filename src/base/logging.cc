#include "base/logging.hh"

#include <stdexcept>

namespace svw {

bool verboseLogging = false;

namespace logging_detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("panic: ") + msg + " @ " + file + ":" +
        std::to_string(line);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw std::logic_error(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("fatal: ") + msg + " @ " + file + ":" +
        std::to_string(line);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw std::runtime_error(full);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseLogging)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail
} // namespace svw
