#include "base/random.hh"

#include "base/logging.hh"

namespace svw {

Random::Random(std::uint64_t s)
{
    seed(s);
}

void
Random::seed(std::uint64_t s)
{
    if (s == 0)
        s = 0x9e3779b97f4a7c15ull;
    // splitmix64 expansion of the seed into the two state words
    auto mix = [](std::uint64_t &z) {
        z += 0x9e3779b97f4a7c15ull;
        std::uint64_t x = z;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    state0 = mix(s);
    state1 = mix(s);
    if (state0 == 0 && state1 == 0)
        state1 = 1;
}

std::uint64_t
Random::next()
{
    std::uint64_t x = state0;
    const std::uint64_t y = state1;
    state0 = y;
    x ^= x << 23;
    state1 = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state1 + y;
}

std::uint64_t
Random::nextBounded(std::uint64_t bound)
{
    svw_assert(bound != 0, "nextBounded(0)");
    return next() % bound;
}

std::uint64_t
Random::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    svw_assert(lo <= hi, "bad range");
    return lo + nextBounded(hi - lo + 1);
}

bool
Random::chancePermille(unsigned permille)
{
    return nextBounded(1000) < permille;
}

double
Random::nextDouble()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace svw
