/**
 * @file
 * Fixed-capacity FIFO ring over a power-of-two slot array.
 *
 * A drop-in for the bounded std::deque uses on the simulator's hot path
 * (e.g. the fetch queue): no per-push allocation, and slot addresses are
 * stable while an element is live. Capacity is fixed at construction;
 * pushing past it is a programming error (svw_assert).
 */

#ifndef SVW_BASE_BOUNDED_RING_HH
#define SVW_BASE_BOUNDED_RING_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace svw {

/** Bounded FIFO; push at the back, pop at the front. */
template <typename T>
class BoundedRing
{
  public:
    explicit BoundedRing(std::size_t capacity) : cap(capacity)
    {
        std::size_t ring = 1;
        while (ring < cap)
            ring <<= 1;
        mask = ring - 1;
        slots.resize(ring);
    }

    bool empty() const { return count == 0; }
    bool full() const { return count >= cap; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }

    void push_back(T &&v)
    {
        svw_assert(count < cap, "BoundedRing overflow");
        slots[(headPos + count) & mask] = std::move(v);
        ++count;
    }

    T &front() { return slots[headPos & mask]; }
    const T &front() const { return slots[headPos & mask]; }
    T &back() { return slots[(headPos + count - 1) & mask]; }

    void pop_front()
    {
        ++headPos;
        --count;
    }

    void clear()
    {
        headPos = 0;
        count = 0;
    }

  private:
    std::size_t cap;
    std::size_t mask = 0;
    std::uint64_t headPos = 0;
    std::size_t count = 0;
    std::vector<T> slots;
};

} // namespace svw

#endif // SVW_BASE_BOUNDED_RING_HH
