#include "service/http.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace svw::service {

HttpParser::Status
HttpParser::fail(const std::string &why)
{
    error_ = why;
    status_ = Status::Error;
    return status_;
}

HttpParser::Status
HttpParser::feed(const char *data, std::size_t n)
{
    if (status_ != Status::NeedMore)
        return status_;
    buf_.append(data, n);

    if (!headDone_) {
        const std::size_t end = buf_.find("\r\n\r\n");
        if (end == std::string::npos) {
            if (buf_.size() > maxHead_)
                return fail("request head too large");
            return status_;
        }
        if (end + 4 > maxHead_)
            return fail("request head too large");
        if (parseHead() == Status::Error)
            return status_;
        headDone_ = true;
        buf_.erase(0, end + 4);
    }

    if (buf_.size() > bodyNeeded_)
        return fail("unexpected bytes after request body");
    if (buf_.size() < bodyNeeded_)
        return status_;
    req_.body = std::move(buf_);
    buf_.clear();
    status_ = Status::Complete;
    return status_;
}

HttpParser::Status
HttpParser::parseHead()
{
    // Request line: METHOD SP TARGET SP HTTP/1.x
    std::size_t lineEnd = buf_.find("\r\n");
    std::string line = buf_.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos)
        return fail("malformed request line");
    req_.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    if (req_.method.empty() || target.empty() || target[0] != '/')
        return fail("malformed request line");
    if (version.rfind("HTTP/1.", 0) != 0)
        return fail("unsupported protocol version");
    const std::size_t q = target.find('?');
    if (q != std::string::npos) {
        req_.query = target.substr(q + 1);
        target.resize(q);
    }
    req_.target = target;

    // Header lines until the blank line (already found by the caller).
    std::size_t pos = lineEnd + 2;
    while (true) {
        lineEnd = buf_.find("\r\n", pos);
        if (lineEnd == pos)
            break;  // blank line: end of head
        line = buf_.substr(pos, lineEnd - pos);
        pos = lineEnd + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return fail("malformed header line");
        std::string name = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        std::transform(name.begin(), name.end(), name.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        const std::size_t first = value.find_first_not_of(" \t");
        const std::size_t last = value.find_last_not_of(" \t");
        value = first == std::string::npos
                    ? std::string()
                    : value.substr(first, last - first + 1);
        req_.headers[name] = value;
    }

    if (req_.headers.count("transfer-encoding"))
        return fail("chunked request bodies unsupported");
    bodyNeeded_ = 0;
    auto it = req_.headers.find("content-length");
    if (it != req_.headers.end()) {
        const std::string &v = it->second;
        if (v.empty() ||
            v.find_first_not_of("0123456789") != std::string::npos)
            return fail("malformed content-length");
        // 20+ digits cannot be honest; reject before stoull range UB.
        if (v.size() > 19)
            return fail("request body too large");
        bodyNeeded_ = std::stoull(v);
        if (bodyNeeded_ > maxBody_)
            return fail("request body too large");
    }
    return Status::NeedMore;
}

std::string
formUrlDecode(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '+') {
            out.push_back(' ');
        } else if (c == '%' && i + 2 < text.size() &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
            const std::string hex = text.substr(i + 1, 2);
            out.push_back(
                static_cast<char>(std::stoi(hex, nullptr, 16)));
            i += 2;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::map<std::string, std::string>
parseFormBody(const std::string &body)
{
    std::map<std::string, std::string> params;
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t amp = body.find('&', pos);
        if (amp == std::string::npos)
            amp = body.size();
        const std::string pair = body.substr(pos, amp - pos);
        pos = amp + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            params[formUrlDecode(pair)] = "";
        else
            params[formUrlDecode(pair.substr(0, eq))] =
                formUrlDecode(pair.substr(eq + 1));
    }
    return params;
}

std::string
simpleResponse(int status, const std::string &reason,
               const std::string &contentType, const std::string &body)
{
    char head[256];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n"
                  "\r\n",
                  status, reason.c_str(), contentType.c_str(),
                  body.size());
    return std::string(head) + body;
}

std::string
chunkedResponseHead(int status, const std::string &reason,
                    const std::string &contentType)
{
    char head[256];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Transfer-Encoding: chunked\r\n"
                  "Connection: close\r\n"
                  "\r\n",
                  status, reason.c_str(), contentType.c_str());
    return head;
}

std::string
encodeChunk(const std::string &data)
{
    char size[32];
    std::snprintf(size, sizeof(size), "%zx\r\n", data.size());
    return std::string(size) + data + "\r\n";
}

std::string
finalChunk()
{
    return "0\r\n\r\n";
}

} // namespace svw::service
