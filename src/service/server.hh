/**
 * @file
 * sweepd: the long-lived sweep service daemon's server core. A
 * single-threaded poll(2) event loop (modeled on pazpar2's
 * single-process metasearch server) multiplexes non-blocking client
 * sockets with per-connection state machines, keeping the process-wide
 * ProgramCache / MemoryResultCache / disk ResultCache warm across
 * requests — a warm repeat request simulates nothing.
 *
 * Protocol (one request per connection, Connection: close):
 *
 *  - POST /sweep — form-urlencoded body selects the work:
 *      figure=fig5         figure-registry name (required)
 *      quick=1             20k insts per cell (else insts=N, def 100k)
 *      insts=N             explicit per-cell instruction target
 *      bench=W             restrict to one workload row
 *      families=paper|synth|all   row families (default paper)
 *      batch=K             co-simulation lanes (0 = auto)
 *      threads=N           per-session worker threads (0 = run cells
 *                          on the event-loop thread, the default)
 *    The response streams chunked JSON lines as the session advances:
 *    {"event":"started"|"done"|"cached"...} progress lines, each
 *    successful cell's lossless RunResult JSON line (byte-identical
 *    to the CLI binaries' --emit-cells output), and a final
 *    {"event":"finished",...} trailer.
 *
 *  - GET /status — JSON: cache occupancy (entries/bytes/hits/
 *    evictions), program-cache builds, total cell simulations,
 *    in-flight and served session counts.
 *
 *  - GET /figures — JSON list of openable figure names and titles.
 *
 * Sessions run incrementally (SweepSession::start/step): with
 * threads=0 each loop turn runs one co-simulation unit of one runnable
 * session, so many sessions and socket I/O interleave on one thread;
 * with threads=N the session's workers simulate while the loop polls
 * the session wakeFd and drains completions as they land. A client
 * that disconnects mid-stream (EPIPE) aborts only its own session.
 * requestStop() (the SIGTERM path) closes the listener and drains:
 * in-flight sessions finish streaming, then run() returns.
 */

#ifndef SVW_SERVICE_SERVER_HH
#define SVW_SERVICE_SERVER_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>

namespace svw::service {

struct SweepdOptions
{
    /** TCP port; 0 = ephemeral (tests read the bound port back). */
    unsigned port = 8573;
    std::string bindAddr = "127.0.0.1";
    std::string cacheDir;  ///< optional persistent result cache
    /** In-memory result cache cap in MB; 0 = unbounded. */
    std::uint64_t memCacheMaxMb = 512;
    std::size_t maxHeadBytes = 16 * 1024;
    std::size_t maxBodyBytes = 64 * 1024;
    bool quiet = false;  ///< suppress per-request stderr log lines
};

/**
 * Parse sweepd's command line:
 *   --port=N --bind=ADDR --cache-dir=D --mem-cache-max-mb=N --quiet
 * Unknown flags, malformed numbers, and out-of-range ports are usage
 * errors (exit 2), matching the bench binaries' contract.
 */
SweepdOptions parseSweepdArgs(int argc, char **argv);

/**
 * The server. Construction binds and listens (throws std::runtime_error
 * on failure); run() drives the event loop until requestStop() — which
 * is async-signal-safe — has been called and every connection drained.
 */
class SweepServer
{
  public:
    explicit SweepServer(SweepdOptions opts);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** The bound port (resolves port=0 to the kernel's pick). */
    unsigned port() const { return port_; }

    /** Event loop; blocks until stopped and drained. */
    void run();

    /** Begin graceful shutdown. Safe from signal handlers and other
     * threads: writes one byte to the loop's stop pipe. */
    void requestStop();

    /** Sweep sessions completed (finished or aborted) so far. */
    std::uint64_t sessionsServed() const { return sessionsServed_; }

  private:
    struct Conn;

    void acceptClients();
    void readConn(Conn &c);
    void dispatch(Conn &c);
    void startSweep(Conn &c);
    void stepConn(Conn &c);
    void finishSession(Conn &c);
    void failConn(Conn &c);
    void flushConn(Conn &c);
    std::string statusJson() const;

    SweepdOptions opts_;
    unsigned port_ = 0;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    bool stopping_ = false;
    std::uint64_t sessionsServed_ = 0;
    std::list<std::unique_ptr<Conn>> conns_;
};

} // namespace svw::service

#endif // SVW_SERVICE_SERVER_HH
