/**
 * @file
 * Minimal HTTP/1.1 plumbing for the sweepd service daemon: an
 * incremental request parser sized for one-request-per-connection use,
 * application/x-www-form-urlencoded body decoding, and response
 * formatting helpers (simple Content-Length responses and chunked
 * transfer encoding for the streamed sweep results).
 *
 * Deliberately not a general HTTP stack: no keep-alive, no pipelining,
 * no multipart, no percent-encoded request targets beyond the query
 * split. sweepd's protocol surface is three endpoints driven by curl
 * and the test harness; everything else is a 400/404.
 */

#ifndef SVW_SERVICE_HTTP_HH
#define SVW_SERVICE_HTTP_HH

#include <cstddef>
#include <map>
#include <string>

namespace svw::service {

/** One parsed request. Header names are lower-cased. */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET", "POST"
    std::string target;  ///< path only (query string split off)
    std::string query;   ///< raw query string, no leading '?'
    std::map<std::string, std::string> headers;
    std::string body;
};

/**
 * Incremental single-request parser. Feed it bytes as they arrive;
 * it reports NeedMore until the head and the declared body are
 * complete, Error (with a one-line reason) on malformed or oversized
 * input. Limits are enforced *while reading*, so an abusive client
 * cannot balloon the connection buffer before being rejected.
 */
class HttpParser
{
  public:
    enum class Status
    {
        NeedMore,
        Complete,
        Error,
    };

    HttpParser(std::size_t maxHeadBytes, std::size_t maxBodyBytes)
        : maxHead_(maxHeadBytes), maxBody_(maxBodyBytes)
    {}

    /** Consume @p n bytes; @return the parse status so far. */
    Status feed(const char *data, std::size_t n);

    /** Valid once feed returned Complete. */
    const HttpRequest &request() const { return req_; }

    /** One-line reason once feed returned Error. */
    const std::string &error() const { return error_; }

  private:
    Status fail(const std::string &why);
    Status parseHead();

    std::size_t maxHead_;
    std::size_t maxBody_;
    std::string buf_;
    HttpRequest req_;
    std::string error_;
    std::size_t bodyNeeded_ = 0;
    bool headDone_ = false;
    Status status_ = Status::NeedMore;
};

/** Decode one application/x-www-form-urlencoded value ('+' and %XX). */
std::string formUrlDecode(const std::string &text);

/** Parse a form-urlencoded body into key -> decoded value (last key
 * wins). Malformed escapes decode literally rather than erroring. */
std::map<std::string, std::string> parseFormBody(const std::string &body);

/** A complete non-streamed response with Content-Length and
 * Connection: close. @p status like 200, @p reason like "OK". */
std::string simpleResponse(int status, const std::string &reason,
                           const std::string &contentType,
                           const std::string &body);

/** The head of a chunked streaming response (headers only). */
std::string chunkedResponseHead(int status, const std::string &reason,
                                const std::string &contentType);

/** One transfer-encoding chunk framing @p data (must be non-empty). */
std::string encodeChunk(const std::string &data);

/** The terminating zero-length chunk. */
std::string finalChunk();

} // namespace svw::service

#endif // SVW_SERVICE_HTTP_HH
